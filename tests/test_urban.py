"""Tests for the urban dispersion application (Sec 5)."""

import numpy as np
import pytest

from repro.urban import (DispersionScenario, northeasterly,
                         power_law_profile, times_square_like, voxelize_city)
from repro.urban.city import Building
from repro.urban.voxelize import footprint_cells, occupancy


class TestCityGenerator:
    def test_paper_statistics(self):
        """Sec 5: 1.66 x 1.13 km, 91 blocks, ~850 buildings."""
        c = times_square_like()
        assert c.extent_m == (1660.0, 1130.0)
        assert c.n_blocks == 91
        assert 780 <= c.n_buildings <= 950

    def test_deterministic_given_seed(self):
        a = times_square_like(seed=7)
        b = times_square_like(seed=7)
        assert a.n_buildings == b.n_buildings
        assert a.buildings[0] == b.buildings[0]

    def test_different_seeds_differ(self):
        a = times_square_like(seed=1)
        b = times_square_like(seed=2)
        assert any(x != y for x, y in zip(a.buildings, b.buildings))

    def test_heights_plausible(self):
        stats = times_square_like().height_stats()
        assert 20 < stats["mean"] < 90
        assert stats["max"] <= 280.0

    def test_buildings_inside_blocks(self):
        c = times_square_like()
        for b in c.buildings[:50]:
            assert any(x0 <= b.x0 and b.x0 + b.w <= x0 + w
                       and y0 <= b.y0 and b.y0 + b.d <= y0 + d
                       for (x0, y0, w, d) in c.blocks)

    def test_too_wide_streets_rejected(self):
        with pytest.raises(ValueError):
            times_square_like(avenue_width_m=200.0)

    def test_building_footprint(self):
        b = Building(0, 0, 10, 20, 50)
        assert b.footprint_m2 == 200


class TestVoxelizer:
    def test_ground_plane_solid(self):
        c = times_square_like()
        solid = voxelize_city(c, (40, 30, 8), 48.0)
        assert solid[:, :, 0].all()

    def test_taller_resolution_more_occupancy(self):
        c = times_square_like()
        low = voxelize_city(c, (40, 30, 6), 48.0)
        high = voxelize_city(c, (40, 30, 12), 48.0)
        # Same footprint; more z-cells covered in the taller domain.
        assert high.sum() >= low.sum()

    def test_footprint_scales_with_resolution(self):
        c = times_square_like()
        coarse = voxelize_city(c, (40, 30, 6), 48.0)
        fine = voxelize_city(c, (80, 60, 6), 24.0)
        # Footprint fraction is roughly resolution independent.
        f_c = footprint_cells(coarse) / (40 * 30)
        f_f = footprint_cells(fine) / (80 * 60)
        assert f_f == pytest.approx(f_c, rel=0.3)

    def test_rotation_changes_layout(self):
        c0 = times_square_like(rotation_deg=0.0)
        c1 = times_square_like(rotation_deg=29.0)
        s0 = voxelize_city(c0, (48, 40, 6), 40.0)
        s1 = voxelize_city(c1, (48, 40, 6), 40.0)
        assert (s0 != s1).any()

    def test_occupancy_reasonable(self):
        c = times_square_like()
        solid = voxelize_city(c, (64, 56, 12), 28.2)
        assert 0.02 < occupancy(solid) < 0.5


class TestWind:
    def test_power_law_profile_monotone(self):
        u = power_law_profile(16, 0.06)
        assert u[0] == 0.0                 # in the ground
        assert (np.diff(u[1:]) >= 0).all()
        assert u.max() <= 0.3

    def test_unstable_speed_rejected(self):
        with pytest.raises(ValueError):
            power_law_profile(16, 0.5)

    def test_northeasterly_direction(self):
        v = northeasterly(0.1, bearing_deg=45.0)
        assert v[0] < 0 and v[1] < 0        # blows toward southwest
        assert np.linalg.norm(v) == pytest.approx(0.1)

    def test_bearing_90_is_pure_easterly(self):
        v = northeasterly(0.1, bearing_deg=90.0)
        assert v[0] == pytest.approx(-0.1)
        assert abs(v[1]) < 1e-12


class TestScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return DispersionScenario(shape=(32, 28, 8), resolution_m=56.0,
                                  wind_speed=0.06, tau=0.65)

    def test_solid_cached(self, scenario):
        assert scenario.solid is scenario.solid

    def test_inlet_on_high_x(self, scenario):
        axis, side, v, rho = scenario.inlet
        assert axis == 0 and side == "high"
        assert v[0] < 0                      # wind blows inward (-x)

    def test_flow_develops_downwind(self, scenario):
        s = scenario.make_single_solver()
        s.step(60)
        _, u = s.macroscopic()
        assert u[0][~scenario.solid].mean() < -0.001

    def test_tracers_disperse_and_drift(self, scenario):
        s = scenario.make_single_solver()
        s.step(60)
        cloud = scenario.release_tracers(400)
        var0 = cloud.positions.var(axis=0).sum()
        for _ in range(25):
            s.step(1)
            cloud.step(s.f)
        assert cloud.positions.var(axis=0).sum() > var0
        assert len(cloud) == 400

    def test_tracers_avoid_solid_release(self, scenario):
        cloud = scenario.release_tracers(200)
        p = cloud.positions
        assert not scenario.solid[p[:, 0], p[:, 1], p[:, 2]].any()

    def test_cluster_timing_mode_paper_headline(self):
        """480x400x80 on 30 nodes: ~0.31 s/step (Sec 5)."""
        sc = DispersionScenario(shape=(480, 400, 80))
        t = sc.make_cluster((6, 5, 1), timing_only=True).step()
        assert t.total_s == pytest.approx(0.31, rel=0.05)

    def test_cluster_numeric_mode_small(self, rng):
        """The scenario also runs on the numeric cluster path."""
        sc = DispersionScenario(shape=(24, 16, 8), resolution_m=72.0,
                                wind_speed=0.05, tau=0.7)
        cluster = sc.make_cluster((2, 2, 1))
        cluster.step(3)
        rho, u = cluster.gather_macroscopic()
        assert np.isfinite(rho).all()
        assert np.isfinite(u).all()
