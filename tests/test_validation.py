"""Configuration-validation and failure-injection tests: the library
must fail loudly on inconsistent setups, not corrupt results."""

import numpy as np
import pytest

from repro.core.cluster_lbm import ClusterConfig, GPUClusterLBM


class TestClusterConfigValidation:
    def _base(self, **kw):
        defaults = dict(sub_shape=(8, 8, 8), arrangement=(2, 1, 1))
        defaults.update(kw)
        return ClusterConfig(**defaults)

    def test_valid_config_ok(self):
        self._base()

    def test_bad_sub_shape(self):
        with pytest.raises(ValueError, match="sub_shape"):
            self._base(sub_shape=(8, 8))
        with pytest.raises(ValueError, match="sub_shape"):
            self._base(sub_shape=(8, 1, 8))

    def test_bad_arrangement(self):
        with pytest.raises(ValueError, match="arrangement"):
            self._base(arrangement=(0, 1, 1))

    def test_bad_tau(self):
        with pytest.raises(ValueError, match="tau"):
            self._base(tau=0.5)

    def test_inlet_on_periodic_axis_rejected(self):
        with pytest.raises(ValueError, match="periodic"):
            self._base(inlet=(0, "high", (-0.05, 0, 0), 1.0))

    def test_inlet_ok_on_non_periodic_axis(self):
        self._base(inlet=(0, "high", (-0.05, 0, 0), 1.0),
                   periodic=(False, True, True))

    def test_outflow_axis_range(self):
        with pytest.raises(ValueError, match="axis"):
            self._base(outflow=(5, "low"), periodic=(False, False, False))

    def test_solid_shape_must_match_global(self):
        with pytest.raises(ValueError, match="solid"):
            self._base(solid=np.zeros((8, 8, 8), bool))  # global is 16x8x8

    def test_indivisible_scenario_cluster_rejected(self):
        from repro.urban import DispersionScenario
        sc = DispersionScenario(shape=(30, 20, 8), resolution_m=60.0)
        with pytest.raises(ValueError):
            sc.make_cluster((4, 1, 1), timing_only=True)


class TestSolverFailureModes:
    def test_gpu_solver_rejects_bad_mode(self):
        from repro.gpu.lbm_gpu import GPULBMSolver
        with pytest.raises(ValueError, match="mode"):
            GPULBMSolver((8, 8, 8), tau=0.7, mode="magic")

    def test_gpu_solver_rejects_2d_shape(self):
        from repro.gpu.lbm_gpu import GPULBMSolver
        with pytest.raises(ValueError, match="3D"):
            GPULBMSolver((8, 8), tau=0.7)

    def test_gpu_solver_rejects_bad_distribution_shape(self):
        from repro.gpu.lbm_gpu import GPULBMSolver
        s = GPULBMSolver((6, 6, 6), tau=0.7)
        with pytest.raises(ValueError, match="shape"):
            s.load_distributions(np.zeros((19, 5, 5, 5), np.float32))

    def test_load_global_distributions_shape_checked(self):
        cfg = ClusterConfig(sub_shape=(6, 6, 6), arrangement=(2, 1, 1))
        cluster = GPUClusterLBM(cfg)
        with pytest.raises(ValueError):
            cluster.load_global_distributions(
                np.zeros((19, 6, 6, 6), np.float32))

    def test_nan_input_propagates_visibly(self):
        """Garbage in must be *detectably* garbage out (NaN), never a
        silent wrong answer."""
        from repro.lbm.solver import LBMSolver
        s = LBMSolver((6, 6, 6), tau=0.8)
        s.f[0, 2, 2, 2] = np.nan
        s.step(2)
        assert np.isnan(s.f).any()

    def test_tracer_rng_reproducible(self):
        from repro.lbm.lattice import D3Q19
        from repro.lbm.tracers import TracerCloud
        from repro.lbm.equilibrium import equilibrium_site
        shape = (8, 8, 8)
        feq = equilibrium_site(D3Q19, 1.0, (0.05, 0, 0)).astype(np.float32)
        f = np.broadcast_to(feq.reshape(19, 1, 1, 1), (19,) + shape).copy()
        a = TracerCloud(D3Q19, np.full((50, 3), 4), shape, rng=42)
        b = TracerCloud(D3Q19, np.full((50, 3), 4), shape, rng=42)
        for _ in range(10):
            a.step(f)
            b.step(f)
        assert np.array_equal(a.positions, b.positions)


class TestDeterminism:
    def test_cluster_run_is_deterministic(self, rng):
        cfg = ClusterConfig(sub_shape=(6, 6, 4), arrangement=(2, 2, 1),
                            tau=0.8)
        f0 = None
        outs = []
        for _ in range(2):
            c = GPUClusterLBM(cfg)
            if f0 is None:
                from repro.lbm.solver import LBMSolver
                ref = LBMSolver((12, 12, 4), tau=0.8)
                u0 = (0.02 * rng.standard_normal((3, 12, 12, 4))).astype(np.float32)
                ref.initialize(rho=np.ones((12, 12, 4), np.float32), u=u0)
                f0 = ref.f.copy()
            c.load_global_distributions(f0)
            t = c.step(3)
            outs.append((c.gather_distributions(), t.total_s))
        assert np.array_equal(outs[0][0], outs[1][0])
        assert outs[0][1] == outs[1][1]

    def test_timing_model_deterministic(self):
        from repro.perf.model import table1_row
        a = table1_row(32)
        b = table1_row(32)
        assert a == b
