"""Tests for the Lowe-Succi tracer propagation (Sec 5)."""

import numpy as np
import pytest

from repro.lbm.equilibrium import equilibrium_site
from repro.lbm.lattice import D3Q19
from repro.lbm.solver import LBMSolver
from repro.lbm.tracers import TracerCloud


def _uniform_flow_f(shape, u):
    feq = equilibrium_site(D3Q19, 1.0, u).astype(np.float32)
    return np.broadcast_to(feq.reshape(19, 1, 1, 1), (19,) + shape).copy()


class TestProbabilities:
    def test_sum_to_one(self, rng):
        shape = (6, 6, 6)
        f = _uniform_flow_f(shape, (0.05, 0.0, 0.0))
        cloud = TracerCloud(D3Q19, [(3, 3, 3)], shape)
        p = cloud.transition_probabilities(f)
        assert p.sum(axis=0) == pytest.approx(1.0)

    def test_rest_dominates_at_zero_velocity(self):
        shape = (4, 4, 4)
        f = _uniform_flow_f(shape, (0, 0, 0))
        cloud = TracerCloud(D3Q19, [(2, 2, 2)], shape)
        p = cloud.transition_probabilities(f)
        assert p[0, 0] == pytest.approx(1 / 3, rel=1e-5)

    def test_negative_distributions_clipped(self):
        shape = (4, 4, 4)
        f = _uniform_flow_f(shape, (0, 0, 0))
        f[1] = -0.5
        cloud = TracerCloud(D3Q19, [(2, 2, 2)], shape)
        p = cloud.transition_probabilities(f)
        assert (p >= 0).all()
        assert p.sum(axis=0) == pytest.approx(1.0)


class TestDrift:
    def test_mean_drift_equals_flow_velocity(self):
        """The ensemble-average hop equals u: that is what makes the
        scheme a valid advection model."""
        shape = (32, 32, 8)
        u = (0.08, -0.04, 0.0)
        f = _uniform_flow_f(shape, u)
        n = 4000
        cloud = TracerCloud(D3Q19, np.full((n, 3), (16, 16, 4)), shape,
                            periodic=True, rng=1)
        steps = 50
        # Track unwrapped drift via per-step mean displacement.
        drift = np.zeros(3)
        for _ in range(steps):
            before = cloud.positions.copy()
            cloud.step(f)
            d = cloud.positions - before
            # unwrap periodic jumps
            d = (d + np.array(shape) // 2) % np.array(shape) - np.array(shape) // 2
            drift += d.mean(axis=0)
        drift /= steps
        assert drift[0] == pytest.approx(u[0], abs=0.01)
        assert drift[1] == pytest.approx(u[1], abs=0.01)
        assert abs(drift[2]) < 0.01

    def test_dispersion_grows_diffusively(self):
        """Tracer variance grows with time (molecular-like dispersion)."""
        shape = (24, 24, 8)
        f = _uniform_flow_f(shape, (0, 0, 0))
        cloud = TracerCloud(D3Q19, np.full((2000, 3), (12, 12, 4)), shape,
                            periodic=True, rng=2)
        var = []
        for _ in range(3):
            for _ in range(10):
                cloud.step(f)
            var.append(cloud.positions[:, 0].astype(float).var())
        assert var[0] < var[1] < var[2]


class TestBookkeeping:
    def test_count_conserved(self):
        shape = (8, 8, 8)
        f = _uniform_flow_f(shape, (0.05, 0, 0))
        cloud = TracerCloud(D3Q19, np.full((100, 3), (4, 4, 4)), shape)
        for _ in range(20):
            cloud.step(f)
        assert len(cloud) == 100

    def test_positions_stay_in_bounds_clamped(self):
        shape = (6, 6, 6)
        f = _uniform_flow_f(shape, (0.1, 0, 0))
        cloud = TracerCloud(D3Q19, np.full((50, 3), (5, 3, 3)), shape,
                            periodic=False)
        for _ in range(30):
            cloud.step(f)
        assert (cloud.positions >= 0).all()
        assert (cloud.positions < np.array(shape)).all()

    def test_concentration_histogram_sums_to_count(self):
        shape = (6, 6, 6)
        cloud = TracerCloud(D3Q19, np.full((77, 3), (3, 3, 3)), shape)
        conc = cloud.concentration()
        assert conc.sum() == 77
        assert conc[3, 3, 3] == 77

    def test_bad_positions_rejected(self):
        with pytest.raises(ValueError):
            TracerCloud(D3Q19, [(9, 0, 0)], (4, 4, 4))
        with pytest.raises(ValueError):
            TracerCloud(D3Q19, [(1, 1)], (4, 4, 4))


class TestWithRealFlow:
    def test_tracers_follow_channel_flow(self):
        """Tracers released in a forced channel drift downstream."""
        from repro.lbm.boundaries import box_walls
        shape = (16, 10, 4)
        solid = box_walls(shape, axes=[1])
        s = LBMSolver(shape, tau=0.8, solid=solid, force=(5e-5, 0, 0),
                      dtype=np.float64)
        s.step(400)
        cloud = TracerCloud(D3Q19, np.full((500, 3), (8, 5, 2)), shape,
                            periodic=True, rng=3)
        x0 = cloud.center_of_mass()[0]
        drift = 0.0
        for _ in range(30):
            before = cloud.positions[:, 0].copy()
            cloud.step(s.f.astype(np.float32))
            d = cloud.positions[:, 0] - before
            d = (d + 8) % 16 - 8
            drift += d.mean()
        assert drift > 0.1
