"""AA-pattern (swap-free, two-phase) kernel: equivalence + contracts.

The AA kernel streams in place on a single distribution array: even
steps collide pointwise with reversed-direction writes, odd steps
gather-collide-scatter through neighbour cells.  These tests pin the
contracts the rest of the repo relies on:

* bit-identical macroscopic fields after *every* step and bit-identical
  distributions after every step (odd parity via the read-only
  reconstruction) against the phase-split reference;
* exactly one full-size distribution array (the lazy back buffer stays
  unallocated);
* the cluster drivers' forward/reverse halo protocol reproduces the
  reference bits with the periodic fold replaced by real exchanges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM, GPUClusterLBM
from repro.lbm import AAStepKernel, LBMSolver
from repro.lbm.lattice import D3Q19
from repro.lbm.boundaries import Boundary, OutflowBoundary

SHAPE = (16, 12, 6)


def _city(shape=SHAPE):
    from repro.urban.city import times_square_like
    from repro.urban.voxelize import voxelize_city
    return voxelize_city(times_square_like(seed=7), shape,
                         resolution_m=24.0, ground_layers=2)


def _pair(shape=SHAPE, solid=None, seed=0, **kwargs):
    """(reference split solver, AA solver) on identical initial state."""
    rng = np.random.default_rng(seed)
    u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
    if solid is not None:
        u0[:, solid] = 0
    solvers = []
    for kernel in ("split", "aa"):
        s = LBMSolver(shape, tau=0.7, solid=solid, kernel=kernel, **kwargs)
        s.initialize(rho=np.ones(shape, np.float32), u=u0)
        solvers.append(s)
    return solvers


class TestSingleDomain:
    def test_bit_identical_every_step(self):
        solid = _city()
        ref, aa = _pair(solid=solid)
        for step in range(1, 7):
            ref.step(1)
            aa.step(1)
            assert aa.kernel_used == "aa"
            assert np.array_equal(aa.f, ref.f), f"f diverged at step {step}"
            rho_r, u_r = ref.macroscopic()
            rho_a, u_a = aa.macroscopic()
            assert np.array_equal(rho_a, rho_r)
            assert np.array_equal(u_a, u_r)

    def test_bit_identical_with_force(self):
        ref, aa = _pair(force=(1e-5, 0.0, 0.0))
        ref.step(4)
        aa.step(4)
        assert np.array_equal(aa.f, ref.f)

    def test_single_distribution_array(self):
        _, aa = _pair(solid=_city())
        aa.step(4)
        # The swap-free kernel must never touch the lazy back buffer.
        assert aa._fg_next_buf is None
        assert aa._aa_kernel is not None

    def test_workspace_allocs_counted(self):
        _, aa = _pair(solid=_city())
        aa.step(2)
        summary = aa.counters.summary()
        assert summary["aa.workspace"]["allocs"] == 10  # 9 scratch + solid
        _, aa_fluid = _pair()
        aa_fluid.step(2)
        summary = aa_fluid.counters.summary()
        assert summary["aa.workspace"]["allocs"] == 9

    def test_odd_parity_reconstruction_read_only(self):
        _, aa = _pair()
        aa.step(1)
        f = aa.f
        assert not f.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            f[...] = 0.0
        aa.step(1)          # back to even parity: writable live view
        assert aa.f.flags.writeable

    def test_phase_driven_split_pipeline_matches(self):
        """Driving the AA solver phase by phase (the cluster protocol
        shape) is bit-identical to whole steps."""
        solid = _city()
        ref, aa = _pair(solid=solid)
        for _ in range(4):
            ref.step(1)
            aa.collide()
            aa.fill_ghosts()   # forward fill (even) / ghost fold (odd)
            aa.stream()
            aa.post_stream()
            aa.time_step += 1
            assert np.array_equal(aa.f, ref.f)

    def test_forced_aa_ineligible_falls_back_to_split(self):
        # An unsupported handler type (one the rotated closure cannot
        # fold) still forces the split fallback.
        class CustomBoundary(Boundary):
            def apply(self, fg):
                pass

        s = LBMSolver(SHAPE, tau=0.7, periodic=False, kernel="aa",
                      boundaries=[CustomBoundary()])
        s.initialize(rho=np.ones(SHAPE, np.float32), u=None)
        s.step(1)
        assert s.kernel_used == "split"
        assert "ineligible" in s.kernel_reason

    def test_eligibility_rules(self):
        s = LBMSolver(SHAPE, tau=0.7)
        assert AAStepKernel.eligible(s)
        # Bounded domains are eligible (zero-gradient fill/fold closure).
        bounded = LBMSolver(SHAPE, tau=0.7, periodic=False)
        assert AAStepKernel.eligible(bounded)
        # Inlet/outflow handlers run through the rotated applicator ...
        open_box = LBMSolver(
            SHAPE, tau=0.7, periodic=False,
            boundaries=[OutflowBoundary(D3Q19, 0, "low")])
        assert AAStepKernel.eligible(open_box)
        # ... but arbitrary handlers do not.
        class CustomBoundary(Boundary):
            def apply(self, fg):
                pass

        custom = LBMSolver(SHAPE, tau=0.7, periodic=False,
                           boundaries=[CustomBoundary()])
        assert not AAStepKernel.eligible(custom)

    def test_counters_mark_aa_kernel(self):
        _, aa = _pair()
        aa.step(2)
        summary = aa.counters.summary()
        assert "kernel.aa" in summary
        assert "aa.even" in summary and "aa.odd" in summary


class TestCluster:
    def _reference(self, shape, solid, seed=0):
        rng = np.random.default_rng(seed)
        u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
        u0[:, solid] = 0
        ref = LBMSolver(shape, tau=0.7, solid=solid, kernel="split")
        ref.initialize(rho=np.ones(shape, np.float32), u=u0)
        return ref

    @pytest.mark.parametrize("backend,workers", [("serial", 1),
                                                 ("threads", 4)])
    def test_cluster_aa_matches_reference(self, backend, workers):
        shape = (16, 12, 6)
        solid = _city(shape)
        ref = self._reference(shape, solid)
        f0 = ref.f.copy()
        cfg = ClusterConfig(sub_shape=(8, 6, 6), arrangement=(2, 2, 1),
                            tau=0.7, solid=solid, backend=backend,
                            max_workers=workers, kernel="aa")
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            for step in range(1, 6):     # both parities, every step count
                ref.step(1)
                cluster.step(1)
                assert np.array_equal(cluster.gather_distributions(), ref.f), \
                    f"cluster AA diverged at step {step} ({backend})"
            kinds = {row["kernel"] for row in cluster.kernel_report()}
        assert kinds == {"aa"}

    def test_cluster_aa_no_overlap_identical(self):
        shape = (16, 12, 6)
        solid = _city(shape)
        ref = self._reference(shape, solid)
        f0 = ref.f.copy()
        ref.step(3)
        cfg = ClusterConfig(sub_shape=(8, 6, 6), arrangement=(2, 2, 1),
                            tau=0.7, solid=solid, overlap=False, kernel="aa")
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(3)
            assert np.array_equal(cluster.gather_distributions(), ref.f)

    def test_load_at_odd_parity_rejected(self):
        cfg = ClusterConfig(sub_shape=(6, 6, 4), arrangement=(2, 1, 1),
                            tau=0.7, kernel="aa")
        with CPUClusterLBM(cfg) as cluster:
            f0 = cluster.gather_distributions().copy()
            cluster.load_global_distributions(f0)
            cluster.step(1)
            with pytest.raises(ValueError, match="odd AA parity"):
                cluster.load_global_distributions(f0)
            cluster.step(1)              # even again: loading works
            cluster.load_global_distributions(f0)

    def test_gpu_cluster_rejects_aa(self):
        cfg = ClusterConfig(sub_shape=(6, 6, 4), arrangement=(2, 1, 1),
                            tau=0.7, kernel="aa")
        with pytest.raises(ValueError, match="CPU-only"):
            GPUClusterLBM(cfg)

    def test_aa_accepts_bounded_domains(self):
        # Non-periodic axes are handled by the boundary-aware reverse
        # protocol (local zero-gradient folds at true domain edges).
        cfg = ClusterConfig(sub_shape=(6, 6, 4), arrangement=(2, 1, 1),
                            tau=0.7, kernel="aa",
                            periodic=(True, True, False))
        assert cfg.kernel == "aa"


def test_gate_runs():
    """The check-aa gate itself (serial backend; processes is covered
    by the CLI gate to keep the tier-1 suite fast)."""
    from repro.lbm.aa import run_aa_equivalence_check
    report = run_aa_equivalence_check(steps=2, backends=("serial",))
    assert report["occupancy"] > 0
    assert set(report["cases"]) == {"periodic", "bounded"}
    for case, info in report["cases"].items():
        assert set(info["backends"]) == {"serial"}
        for row in info["backends"]["serial"]:
            assert row["case"] == case
            assert row["kernel"] == "aa"
