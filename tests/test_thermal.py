"""Tests for the hybrid thermal LBM (MRT + FD temperature, Sec 4.1)."""

import numpy as np
import pytest

from repro.lbm.boundaries import box_walls
from repro.lbm.thermal import HybridThermalLBM, _central_gradient, _laplacian


class TestFDOperators:
    def test_gradient_of_linear_field_is_exact(self):
        x = np.arange(10, dtype=float)
        T = np.broadcast_to(3.0 * x[:, None, None], (10, 4, 4)).copy()
        g = _central_gradient(T, 0)
        assert np.allclose(g, 3.0)

    def test_gradient_other_axes_zero(self):
        T = np.broadcast_to(np.arange(10.0)[:, None, None], (10, 4, 4)).copy()
        assert np.allclose(_central_gradient(T, 1), 0.0)
        assert np.allclose(_central_gradient(T, 2), 0.0)

    def test_laplacian_of_quadratic(self):
        x = np.arange(12, dtype=float)
        T = np.broadcast_to((x ** 2)[:, None, None], (12, 4, 4)).copy()
        lap = _laplacian(T)
        assert np.allclose(lap[2:-2], 2.0)

    def test_laplacian_conserves_heat_interior(self):
        rng = np.random.default_rng(0)
        T = rng.random((8, 8, 8))
        # With insulating boundaries the Laplacian integrates to ~0.
        assert abs(_laplacian(T).sum()) < 1e-9


class TestHybridThermal:
    def test_temperature_diffuses(self):
        m = HybridThermalLBM((12, 4, 4), tau=0.8, kappa=0.1, g_beta=0.0)
        T = np.zeros((12, 4, 4))
        T[6] = 1.0
        m.set_temperature(T)
        m.step(30)
        assert m.T.max() < 0.9          # peak spread out
        assert m.T.sum() == pytest.approx(T.sum(), rel=1e-9)  # heat conserved

    def test_buoyancy_impulse_is_upward(self):
        """One step from rest: the Boussinesq force must push the warm
        blob up (before box acoustics start sloshing)."""
        shape = (8, 4, 16)
        walls = box_walls(shape, axes=[2])
        m = HybridThermalLBM(shape, tau=0.8, kappa=0.05, g_beta=1e-3,
                             solid=walls)
        T = np.zeros(shape)
        T[3:5, :, 2:5] = 1.0            # warm blob near the floor
        m.set_temperature(T)
        m.step(1)
        _, u, _ = m.macroscopic()
        assert u[2][3:5, :, 2:5].mean() > 0

    def test_cold_impulse_is_downward(self):
        shape = (8, 4, 16)
        walls = box_walls(shape, axes=[2])
        m = HybridThermalLBM(shape, tau=0.8, kappa=0.05, g_beta=1e-3,
                             solid=walls)
        T = np.zeros(shape)
        T[3:5, :, 10:13] = -1.0
        m.set_temperature(T)
        m.step(1)
        _, u, _ = m.macroscopic()
        assert u[2][3:5, :, 10:13].mean() < 0

    def test_warm_plume_rises_over_time(self):
        """The thermal centre of mass climbs as convection develops —
        the long-run buoyancy check that survives box acoustics."""
        shape = (8, 4, 20)
        walls = box_walls(shape, axes=[2])
        m = HybridThermalLBM(shape, tau=0.7, kappa=0.03, g_beta=4e-3,
                             solid=walls)
        T = np.zeros(shape)
        T[3:5, :, 2:5] = 1.0
        m.set_temperature(T)
        z = np.arange(20)[None, None, :]

        def com():
            return float((m.T * z).sum() / m.T.sum())

        z0 = com()
        m.step(300)
        assert com() > z0 + 0.5

    def test_advection_carries_temperature(self):
        """With a uniform background flow the temperature blob must
        drift downstream."""
        shape = (24, 4, 4)
        m = HybridThermalLBM(shape, tau=0.8, kappa=0.02, g_beta=0.0)
        m.flow.initialize(rho=1.0, u=(0.08, 0, 0))
        T = np.zeros(shape)
        T[4:7] = 1.0
        m.set_temperature(T)
        m.step(40)
        x_com = (m.T * np.arange(24)[:, None, None]).sum() / m.T.sum()
        assert x_com > 7.0              # started at ~5

    def test_energy_coupling_runs_and_conserves_mass(self):
        m = HybridThermalLBM((8, 4, 8), tau=0.8, kappa=0.05, g_beta=1e-4,
                             energy_coupling=1e-3)
        T = np.zeros((8, 4, 8))
        T[:, :, :2] = 0.5
        m.set_temperature(T)
        rho0 = m.flow.total_mass()
        m.step(30)
        assert np.isfinite(m.T).all()
        assert m.flow.total_mass() == pytest.approx(rho0, rel=1e-5)

    def test_unstable_kappa_rejected(self):
        with pytest.raises(ValueError, match="kappa"):
            HybridThermalLBM((4, 4, 4), tau=0.8, kappa=0.2)
        with pytest.raises(ValueError, match="kappa"):
            HybridThermalLBM((4, 4, 4), tau=0.8, kappa=-0.1)

    def test_uses_mrt_collision(self):
        from repro.lbm.mrt import MRTCollision
        m = HybridThermalLBM((4, 4, 4), tau=0.8, kappa=0.05)
        assert isinstance(m.flow.collision, MRTCollision)
