"""Tests for the D3Q19 / D2Q9 velocity sets."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.lbm.lattice import D2Q9, D3Q19, Lattice


class TestD3Q19Structure:
    def test_counts(self):
        assert D3Q19.Q == 19
        assert D3Q19.D == 3

    def test_one_rest_velocity(self):
        rest = (np.abs(D3Q19.c).sum(axis=1) == 0).sum()
        assert rest == 1
        assert tuple(D3Q19.c[0]) == (0, 0, 0)

    def test_six_axial_and_twelve_diagonal(self):
        norms = np.abs(D3Q19.c).sum(axis=1)
        assert (norms == 1).sum() == 6
        assert (norms == 2).sum() == 12

    def test_axial_links_come_first(self):
        """The halo logic relies on axial links at indices 1..6."""
        norms = np.abs(D3Q19.c).sum(axis=1)
        assert (norms[1:7] == 1).all()
        assert (norms[7:] == 2).all()

    def test_weights(self):
        w = D3Q19.w
        assert w[0] == pytest.approx(1 / 3)
        assert np.allclose(w[1:7], 1 / 18)
        assert np.allclose(w[7:], 1 / 36)
        assert w.sum() == pytest.approx(1.0)

    def test_opposites_are_involution(self):
        opp = D3Q19.opp
        assert (opp[opp] == np.arange(19)).all()
        for i in range(19):
            assert (D3Q19.c[opp[i]] == -D3Q19.c[i]).all()

    def test_second_moment_isotropy(self):
        m2 = np.einsum("q,qa,qb->ab", D3Q19.w, D3Q19.c.astype(float),
                       D3Q19.c.astype(float))
        assert np.allclose(m2, np.eye(3) / 3.0)

    def test_fourth_moment_isotropy(self):
        """sum w c^4 must satisfy the Navier-Stokes isotropy relation:
        <cccc> = cs^4 (d_ab d_cd + d_ac d_bd + d_ad d_bc)."""
        c = D3Q19.c.astype(float)
        m4 = np.einsum("q,qa,qb,qc,qd->abcd", D3Q19.w, c, c, c, c)
        cs4 = D3Q19.cs2 ** 2
        eye = np.eye(3)
        expected = cs4 * (np.einsum("ab,cd->abcd", eye, eye)
                          + np.einsum("ac,bd->abcd", eye, eye)
                          + np.einsum("ad,bc->abcd", eye, eye))
        assert np.allclose(m4, expected)


class TestLinkSubsets:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_five_links_per_face_direction(self, axis):
        """The origin of the 5 N^2 face message (Sec 4.3)."""
        assert len(D3Q19.links_with_positive(axis)) == 5
        assert len(D3Q19.links_with_negative(axis)) == 5

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_positive_negative_are_opposites(self, axis):
        pos = set(D3Q19.links_with_positive(axis))
        neg = {int(D3Q19.opp[i]) for i in pos}
        assert neg == set(D3Q19.links_with_negative(axis))

    def test_one_link_per_signed_edge(self):
        """The origin of the N-sized diagonal message (Sec 4.3)."""
        for aa in range(3):
            for ab in range(aa + 1, 3):
                for da in (-1, 1):
                    for db in (-1, 1):
                        links = D3Q19.edge_links(aa, da, ab, db)
                        assert len(links) == 1

    def test_edge_links_cover_all_diagonals(self):
        found = set()
        for aa in range(3):
            for ab in range(aa + 1, 3):
                for da in (-1, 1):
                    for db in (-1, 1):
                        found.add(int(D3Q19.edge_links(aa, da, ab, db)[0]))
        assert found == set(range(7, 19))

    def test_face_union_is_axial_plus_edges(self):
        pos = set(D3Q19.links_with_positive(0))
        # +x face carries the +x axial link plus 4 diagonals.
        norms = {int(np.abs(D3Q19.c[i]).sum()) for i in pos}
        assert norms == {1, 2}


class TestD2Q9:
    def test_counts(self):
        assert D2Q9.Q == 9
        assert D2Q9.D == 2

    def test_weights_sum(self):
        assert D2Q9.w.sum() == pytest.approx(1.0)

    def test_opposites(self):
        assert (D2Q9.opp[D2Q9.opp] == np.arange(9)).all()

    def test_three_links_per_face(self):
        assert len(D2Q9.links_with_positive(0)) == 3
        assert len(D2Q9.links_with_negative(1)) == 3


class TestValidation:
    def test_bad_weights_rejected(self):
        c = D2Q9.c.copy()
        w = D2Q9.w.copy()
        w[0] += 0.1
        with pytest.raises(ValueError, match="sum"):
            Lattice("bad", c, w)

    def test_asymmetric_set_rejected(self):
        c = np.array([[0, 0], [1, 0]])
        w = np.array([0.5, 0.5])
        with pytest.raises(ValueError):
            Lattice("bad", c, w)

    @given(st.integers(min_value=1, max_value=18))
    def test_dropping_any_moving_link_breaks_symmetry(self, drop):
        keep = [i for i in range(19) if i != drop]
        c = D3Q19.c[keep]
        w = D3Q19.w[keep] / D3Q19.w[keep].sum()
        with pytest.raises(ValueError):
            Lattice("broken", c, w)
