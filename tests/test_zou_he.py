"""Tests for the Zou-He D2Q9 boundary conditions and the 2D benchmark
flows they enable (lid-driven cavity, pressure-driven channel)."""

import numpy as np
import pytest

from repro.lbm.boundaries import box_walls
from repro.lbm.collision import tau_to_viscosity
from repro.lbm.lattice import D2Q9
from repro.lbm.solver import LBMSolver
from repro.lbm.zou_he import ZouHePressure2D, ZouHeVelocity2D


def _cavity(n=24, lid_u=0.08, tau=0.7, steps=1200):
    """Lid-driven cavity: solid side/bottom walls, Zou-He moving lid."""
    shape = (n, n)
    solid = np.zeros(shape, bool)
    solid[0, :] = solid[-1, :] = True
    solid[:, 0] = True
    lid = ZouHeVelocity2D(axis=1, side="high", velocity=(lid_u, 0.0),
                          exclude=solid[:, -1])
    s = LBMSolver(shape, tau=tau, lattice=D2Q9, solid=solid,
                  boundaries=[lid], periodic=False, dtype=np.float64)
    s.step(steps)
    return s


class TestZouHeVelocity:
    def test_imposes_velocity_exactly(self):
        s = LBMSolver((8, 8), tau=0.8, lattice=D2Q9, periodic=False,
                      boundaries=[ZouHeVelocity2D(1, "high", (0.05, -0.01))],
                      dtype=np.float64)
        s.step(3)
        rho, u = s.macroscopic()
        assert np.allclose(u[0, 1:-1, -1], 0.05, atol=1e-12)
        assert np.allclose(u[1, 1:-1, -1], -0.01, atol=1e-12)

    def test_mass_flux_consistent_with_density(self):
        """Zou-He's density closure: rho on the layer stays finite and
        near the bulk value."""
        s = LBMSolver((8, 8), tau=0.8, lattice=D2Q9, periodic=False,
                      boundaries=[ZouHeVelocity2D(1, "high", (0.05, 0.0))],
                      dtype=np.float64)
        s.step(50)
        rho = s.density()
        assert np.all(np.abs(rho[1:-1, -1] - 1.0) < 0.05)

    @pytest.mark.parametrize("axis,side", [(0, "low"), (0, "high"),
                                           (1, "low"), (1, "high")])
    def test_all_faces_supported(self, axis, side):
        v = [0.0, 0.0]
        v[1 - axis] = 0.03   # tangential drive
        s = LBMSolver((10, 10), tau=0.8, lattice=D2Q9, periodic=False,
                      boundaries=[ZouHeVelocity2D(axis, side, v)],
                      dtype=np.float64)
        s.step(5)
        _, u = s.macroscopic()
        idx = [slice(1, -1)] * 2
        idx[axis] = 0 if side == "low" else -1
        assert np.allclose(u[1 - axis][tuple(idx)], 0.03, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZouHeVelocity2D(2, "low", (0, 0))
        with pytest.raises(ValueError):
            ZouHeVelocity2D(0, "mid", (0, 0))
        with pytest.raises(ValueError):
            ZouHeVelocity2D(0, "low", (0, 0, 0))


class TestLidDrivenCavity:
    @pytest.fixture(scope="class")
    def cavity(self):
        return _cavity()

    def test_lid_velocity_held(self, cavity):
        _, u = cavity.macroscopic()
        assert np.allclose(u[0, 1:-1, -1], 0.08, atol=1e-10)

    def test_pressure_bc_respects_exclude(self):
        from repro.lbm.zou_he import ZouHePressure2D
        excl = np.zeros(8, bool)
        excl[0] = True
        s = LBMSolver((10, 8), tau=0.8, lattice=D2Q9, periodic=False,
                      boundaries=[ZouHePressure2D(0, "low", 1.05,
                                                  exclude=excl)],
                      dtype=np.float64)
        s.step(2)
        rho = s.density()
        assert np.allclose(rho[0, 1:], 1.05, atol=1e-12)
        assert not np.isclose(rho[0, 0], 1.05)

    def test_primary_vortex_forms(self, cavity):
        """The hallmark of the cavity: circulation — flow to the right
        under the lid, back to the left near the bottom."""
        _, u = cavity.macroscopic()
        n = cavity.shape[0]
        assert u[0, n // 2, n - 3] > 0          # near-lid flow with the lid
        assert u[0, n // 2, n // 4] < 0          # return flow below

    def test_vortex_center_above_middle(self, cavity):
        """At this Reynolds number the primary vortex centre (the
        streamfunction extremum) sits in the upper half — the classic
        cavity result."""
        _, u = cavity.macroscopic()
        # psi(x, y) = integral of u_x over y; the primary vortex is its
        # interior extremum.
        psi = np.cumsum(u[0], axis=1)
        psi[cavity.solid] = 0.0
        interior = psi[2:-2, 2:-2]
        idx = np.unravel_index(np.argmax(np.abs(interior)), interior.shape)
        cy = idx[1] + 2
        assert cy > cavity.shape[1] // 2

    def test_steady_state_reached(self, cavity):
        _, u0 = cavity.macroscopic()
        cavity.step(100)
        _, u1 = cavity.macroscopic()
        assert np.abs(u1 - u0).max() < 1e-4


class TestZouHePressure:
    def test_imposes_density_exactly(self):
        s = LBMSolver((10, 6), tau=0.8, lattice=D2Q9, periodic=False,
                      boundaries=[ZouHePressure2D(0, "low", 1.02),
                                  ZouHePressure2D(0, "high", 0.98)],
                      dtype=np.float64)
        s.step(5)
        rho = s.density()
        assert np.allclose(rho[0, 1:-1], 1.02, atol=1e-12)
        assert np.allclose(rho[-1, 1:-1], 0.98, atol=1e-12)

    def test_pressure_gradient_drives_poiseuille(self):
        """Pressure-driven channel: parabolic profile between walls,
        flow from high to low pressure."""
        nx, ny = 32, 18
        solid = box_walls((nx, ny), axes=[1])
        tau = 0.9
        drho = 0.02
        s = LBMSolver((nx, ny), tau=tau, lattice=D2Q9, solid=solid,
                      periodic=False, dtype=np.float64,
                      boundaries=[ZouHePressure2D(0, "low", 1.0 + drho / 2),
                                  ZouHePressure2D(0, "high", 1.0 - drho / 2)])
        s.step(4000)
        _, u = s.macroscopic()
        prof = u[0, nx // 2, 1:-1]
        assert prof.min() > 0                       # everything downstream
        # Parabolic: centreline max, near-symmetric, matches the exact
        # solution u = G H^2/(8 nu) * (1 - (2y/H - 1)^2) within a few %.
        assert prof.argmax() in (len(prof) // 2 - 1, len(prof) // 2,
                                 len(prof) // 2 + 1 - len(prof) % 2)
        assert np.allclose(prof, prof[::-1], rtol=0.05)
        nu = tau_to_viscosity(tau)
        G = (drho / 3.0) / (nx - 1)                  # dp/dx, p = rho cs^2
        H = ny - 2
        y = np.arange(H) + 0.5
        exact = G / (2 * nu) * y * (H - y)
        assert np.abs(prof - exact).max() / exact.max() < 0.05
