"""End-to-end integration: the full Sec-5 pipeline at test scale.

city -> voxelize -> GPU-cluster flow (numeric) -> tracer release ->
streamlines + distributed volume rendering, with cross-checks between
the independent paths at every stage.
"""

import numpy as np
import pytest

from repro.core.decomposition import BlockDecomposition
from repro.core.spmd import SPMDClusterLBM
from repro.lbm.solver import LBMSolver
from repro.urban import DispersionScenario
from repro.viz import seed_streamlines
from repro.viz.compositing import distributed_volume_render, render_slab


@pytest.fixture(scope="module")
def scenario():
    return DispersionScenario(shape=(24, 16, 8), resolution_m=72.0,
                              wind_speed=0.06, tau=0.7)


@pytest.fixture(scope="module")
def flows(scenario):
    """The same scenario solved on the single solver and the cluster."""
    single = scenario.make_single_solver()
    cluster = scenario.make_cluster((2, 2, 1))
    cluster.load_global_distributions(single.f.copy())
    single.step(25)
    cluster.step(25)
    return single, cluster


class TestPipelineConsistency:
    def test_cluster_equals_single(self, flows):
        single, cluster = flows
        assert np.allclose(cluster.gather_distributions(), single.f,
                           atol=2e-7)

    def test_spmd_equals_single(self, scenario):
        single = scenario.make_single_solver()
        f0 = single.f.copy()
        # SPMD path supports periodic/zero-gradient domains; compare on
        # the same bounded domain without inlet for an exact check.
        ref = LBMSolver(scenario.shape, scenario.tau, solid=scenario.solid,
                        periodic=False)
        ref.f[...] = f0
        ref.step(6)
        decomp = BlockDecomposition(scenario.shape, (2, 2, 1),
                                    periodic=(False, False, False))
        out, _ = SPMDClusterLBM(decomp, scenario.tau, solid=scenario.solid,
                                f0=f0).run(6)
        assert np.array_equal(out, ref.f)

    def test_flow_is_physical(self, flows):
        single, _ = flows
        rho, u = single.macroscopic()
        fluid = ~scenario_solid(single)
        assert np.isfinite(rho).all() and np.isfinite(u).all()
        assert 0.8 < rho[fluid].mean() < 1.2
        assert np.abs(u).max() < 0.3    # subsonic


def scenario_solid(solver):
    return solver.solid


class TestDownstreamArtifacts:
    def test_tracers_on_cluster_flow(self, scenario, flows):
        _, cluster = flows
        f = cluster.gather_distributions()
        cloud = scenario.release_tracers(300)
        for _ in range(15):
            cloud.step(f)
        assert len(cloud) == 300
        conc = cloud.concentration()
        assert conc.sum() == 300

    def test_streamlines_from_cluster_velocity(self, flows):
        _, cluster = flows
        _, u = cluster.gather_macroscopic()
        lines = seed_streamlines(np.asarray(u, dtype=np.float64), n=8,
                                 n_steps=60)
        assert len(lines) >= 4
        for pts, vert in lines:
            assert np.isfinite(pts).all()
            assert ((vert >= 0) & (vert <= 1)).all()

    def test_distributed_render_of_tracer_density(self, scenario, flows):
        single, _ = flows
        cloud = scenario.release_tracers(400)
        for _ in range(10):
            single.step(1)
            cloud.step(single.f)
        conc = cloud.concentration()
        full = render_slab(conc, axis=0)
        dist = distributed_volume_render(conc, 2, axis=0)
        assert np.allclose(dist[0], full[0], atol=1e-12)

    def test_timing_decomposition_available(self, flows):
        _, cluster = flows
        t = cluster.last_timing
        assert t is not None
        assert t.total_s > 0
        assert t.compute_s > 0
