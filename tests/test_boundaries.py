"""Tests for boundary conditions: bounce-back, inlets, curved walls."""

import numpy as np
import pytest

from repro.lbm.boundaries import (BounceBackNodes, BouzidiCurvedBoundary,
                                  EquilibriumVelocityInlet, OutflowBoundary,
                                  box_walls)
from repro.lbm.equilibrium import equilibrium_site
from repro.lbm.lattice import D3Q19
from repro.lbm.solver import LBMSolver
from repro.lbm.streaming import interior, pad_with_ghosts


class TestBoxWalls:
    def test_single_axis(self):
        m = box_walls((5, 6, 7), axes=[1])
        assert m[:, 0, :].all() and m[:, -1, :].all()
        assert not m[:, 1:-1, :].any()

    def test_multiple_axes(self):
        m = box_walls((5, 5, 5), axes=[0, 2])
        assert m[0].all() and m[-1].all()
        assert m[:, :, 0].all() and m[:, :, -1].all()
        assert not m[2, 2, 2]


class TestBounceBack:
    def test_swaps_opposites_at_solid(self, rng):
        shape = (4, 4, 4)
        solid = np.zeros(shape, bool)
        solid[1, 1, 1] = True
        f = rng.random((19,) + shape).astype(np.float32)
        fg = pad_with_ghosts(f)
        before = fg[(slice(None),) + interior(3)][:, 1, 1, 1].copy()
        BounceBackNodes(D3Q19, solid).apply(fg)
        after = fg[(slice(None),) + interior(3)][:, 1, 1, 1]
        assert np.array_equal(after, before[D3Q19.opp])

    def test_fluid_cells_untouched(self, rng):
        shape = (4, 4, 4)
        solid = np.zeros(shape, bool)
        solid[1, 1, 1] = True
        f = rng.random((19,) + shape).astype(np.float32)
        fg = pad_with_ghosts(f)
        snapshot = fg.copy()
        BounceBackNodes(D3Q19, solid).apply(fg)
        inner = (slice(None),) + interior(3)
        fluid = ~solid
        assert np.array_equal(fg[inner][:, fluid], snapshot[inner][:, fluid])

    def test_channel_no_slip_and_mass_conservation(self):
        """A driven channel with bounce-back walls conserves mass and
        produces zero velocity at the walls (midway, so the first fluid
        node moves slowly)."""
        shape = (4, 12, 4)
        solid = box_walls(shape, axes=[1])
        s = LBMSolver(shape, tau=0.8, solid=solid, force=(1e-5, 0, 0),
                      dtype=np.float64)
        m0 = s.total_mass()
        s.step(200)
        assert s.total_mass() == pytest.approx(m0, rel=1e-10)
        u = s.velocity()
        # Centreline much faster than near-wall fluid nodes.
        assert u[0, 2, 6, 2] > 3 * u[0, 2, 1, 2] > 0


class TestInletOutflow:
    def test_inlet_sets_equilibrium(self, rng):
        shape = (6, 4, 4)
        s = LBMSolver(shape, tau=0.7, periodic=False,
                      boundaries=[EquilibriumVelocityInlet(
                          D3Q19, 0, "high", (-0.05, 0, 0))])
        s.step(1)
        feq = equilibrium_site(D3Q19, 1.0, (-0.05, 0, 0)).astype(np.float32)
        assert np.allclose(s.f[:, -1, :, :],
                           feq.reshape(19, 1, 1), atol=1e-7)

    def test_outflow_copies_neighbor_layer(self, rng):
        shape = (6, 4, 4)
        s = LBMSolver(shape, tau=0.7, periodic=False,
                      boundaries=[EquilibriumVelocityInlet(
                          D3Q19, 0, "high", (-0.05, 0, 0)),
                          OutflowBoundary(D3Q19, 0, "low")])
        s.step(5)
        assert np.allclose(s.f[:, 0], s.f[:, 1])

    def test_inlet_drives_flow(self):
        shape = (10, 6, 6)
        s = LBMSolver(shape, tau=0.7, periodic=False,
                      boundaries=[EquilibriumVelocityInlet(
                          D3Q19, 0, "high", (-0.05, 0, 0)),
                          OutflowBoundary(D3Q19, 0, "low")])
        s.step(100)
        u = s.velocity()
        assert u[0].mean() < -0.01   # bulk flow in -x

    def test_bad_side_rejected(self):
        with pytest.raises(ValueError):
            EquilibriumVelocityInlet(D3Q19, 0, "middle", (0, 0, 0))
        with pytest.raises(ValueError):
            OutflowBoundary(D3Q19, 0, "middle")

    def test_bad_velocity_shape_rejected(self):
        with pytest.raises(ValueError):
            EquilibriumVelocityInlet(D3Q19, 0, "low", (0.1, 0.0))


class TestBouzidi:
    def _setup(self, q):
        shape = (6, 4, 4)
        links = [((2, 2, 2), 1, q)]   # +x link cut at fraction q
        return shape, BouzidiCurvedBoundary(D3Q19, links, shape)

    def test_q_half_equals_halfway_bounce_back(self, rng):
        """At q = 1/2 the scheme reduces to plain half-way bounce-back:
        f_opp(x_f) after streaming equals the post-collision f_i(x_f)."""
        shape, bc = self._setup(0.5)
        fg = pad_with_ghosts(rng.random((19,) + shape).astype(np.float32))
        expected = fg[(1,) + tuple(np.array((2, 2, 2)) + 1)]
        bc.pre_stream(fg)
        bc.apply(fg)
        got = fg[(int(D3Q19.opp[1]),) + tuple(np.array((2, 2, 2)) + 1)]
        assert got == pytest.approx(expected, rel=1e-6)

    @pytest.mark.parametrize("q", [0.1, 0.3, 0.5, 0.7, 0.95, 1.0])
    def test_interpolation_is_convex_for_small_q(self, q, rng):
        """The interpolated value lies between the values it blends."""
        shape, bc = self._setup(q)
        fg = pad_with_ghosts(rng.random((19,) + shape).astype(np.float32))
        here = fg[1, 3, 3, 3]
        up = fg[1, 2, 3, 3]
        opp_here = fg[int(D3Q19.opp[1]), 3, 3, 3]
        bc.pre_stream(fg)
        bc.apply(fg)
        got = fg[int(D3Q19.opp[1]), 3, 3, 3]
        lo = min(here, up, opp_here) - 1e-6
        hi = max(here, up, opp_here) + 1e-6
        assert lo <= got <= hi

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            BouzidiCurvedBoundary(D3Q19, [((1, 1, 1), 1, 0.0)], (4, 4, 4))
        with pytest.raises(ValueError):
            BouzidiCurvedBoundary(D3Q19, [((1, 1, 1), 1, 1.5)], (4, 4, 4))

    def test_out_of_grid_cell_rejected(self):
        with pytest.raises(ValueError):
            BouzidiCurvedBoundary(D3Q19, [((9, 1, 1), 1, 0.5)], (4, 4, 4))

    def test_apply_without_prestream_raises(self, rng):
        shape, bc = self._setup(0.5)
        fg = pad_with_ghosts(rng.random((19,) + shape).astype(np.float32))
        with pytest.raises(RuntimeError):
            bc.apply(fg)

    def test_cylinder_flow_runs_stably(self):
        """Curved cylinder via per-link q fractions: stable flow, mass
        bounded."""
        shape = (16, 12, 3)
        cx, cy, r = 6.0, 6.0, 2.3
        solid = np.zeros(shape, bool)
        X, Y = np.meshgrid(np.arange(16), np.arange(12), indexing="ij")
        inside2d = (X - cx) ** 2 + (Y - cy) ** 2 < r ** 2
        solid[inside2d] = True
        links = []
        for x in range(16):
            for y in range(12):
                if inside2d[x, y]:
                    continue
                for i in range(1, 19):
                    c = D3Q19.c[i]
                    nx_, ny_ = x + c[0], y + c[1]
                    if 0 <= nx_ < 16 and 0 <= ny_ < 12 and inside2d[nx_, ny_]:
                        # distance fraction along the link to the circle
                        d0 = np.hypot(x - cx, y - cy) - r
                        dlink = np.hypot(c[0], c[1])
                        q = float(np.clip(d0 / dlink, 0.05, 1.0))
                        for z in range(3):
                            links.append(((x, y, z), i, q))
        bc = BouzidiCurvedBoundary(D3Q19, links, shape)
        s = LBMSolver(shape, tau=0.8, solid=solid, force=(2e-5, 0, 0),
                      boundaries=[bc], dtype=np.float64)
        m0 = s.total_mass()
        s.step(100)
        assert np.isfinite(s.f).all()
        assert abs(s.total_mass() - m0) / m0 < 0.05
