"""Tests for the Fig-7 communication schedule."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decomposition import BlockDecomposition
from repro.core.halo import HaloPlan
from repro.core.schedule import CommSchedule, naive_schedule


def _setup(arrangement, periodic=(False, False, False), sub=(8, 8, 8)):
    shape = tuple(s * a for s, a in zip(sub, arrangement))
    d = BlockDecomposition(shape, arrangement, periodic=periodic)
    return d, CommSchedule(d, HaloPlan(sub))


class TestStructure:
    def test_paper_4x4_has_4_steps(self):
        """Fig 7: a 2D arrangement exchanges in exactly 4 steps."""
        _, s = _setup((4, 4, 1))
        assert s.n_steps == 4

    def test_3d_has_6_steps(self):
        _, s = _setup((4, 4, 3))
        assert s.n_steps == 6

    def test_two_plane_axis_needs_single_step(self):
        # With only two z planes one matching covers the axis.
        _, s = _setup((4, 4, 2))
        assert s.n_steps == 5

    def test_1d_has_2_steps(self):
        _, s = _setup((4, 1, 1))
        assert s.n_steps == 2

    def test_single_node_has_no_steps(self):
        _, s = _setup((1, 1, 1))
        assert s.n_steps == 0

    def test_fig7_16node_step_pattern(self):
        """The exact Fig-7 pairs for 4x4: step 1 pairs columns (1,2),
        step 2 pairs (0,1) and (2,3)."""
        d, s = _setup((4, 4, 1))
        step1 = s.steps[0]
        cols = {(d.coords_of(p.lo)[0], d.coords_of(p.hi)[0])
                for p in step1.pairs}
        assert cols == {(1, 2)}
        step2 = s.steps[1]
        cols2 = {(d.coords_of(p.lo)[0], d.coords_of(p.hi)[0])
                 for p in step2.pairs}
        assert cols2 == {(0, 1), (2, 3)}


class TestValidity:
    @given(w=st.integers(1, 6), h=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_steps_are_matchings(self, w, h):
        """No node talks to two partners in one step, ever."""
        _, s = _setup((w, h, 1))
        for step in s.steps:
            nodes = [r for p in step.pairs for r in (p.lo, p.hi)]
            assert len(nodes) == len(set(nodes))

    @given(w=st.integers(2, 6), h=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_every_adjacent_pair_exactly_once(self, w, h):
        d, s = _setup((w, h, 1))
        seen = set()
        for step in s.steps:
            for p in step.pairs:
                key = (min(p.lo, p.hi), max(p.lo, p.hi), p.axis)
                assert key not in seen
                seen.add(key)
        expected = set()
        for r in range(d.n_nodes):
            for (axis, _), nb in d.face_neighbors(r).items():
                expected.add((min(r, nb), max(r, nb), axis))
        assert seen == expected

    def test_periodic_wrap_pairs_included(self):
        d, s = _setup((4, 1, 1), periodic=(True, True, True))
        pairs = {(min(p.lo, p.hi), max(p.lo, p.hi)) for st_ in s.steps
                 for p in st_.pairs}
        assert (0, 3) in pairs

    def test_odd_periodic_ring_needs_three_steps(self):
        _, s = _setup((5, 1, 1), periodic=(True, False, False))
        assert s.n_steps == 3
        for step in s.steps:
            nodes = [r for p in step.pairs for r in (p.lo, p.hi)]
            assert len(nodes) == len(set(nodes))


class TestBytes:
    def test_pair_bytes_include_piggyback(self):
        """In a full 2D arrangement each face message carries 2 edge
        lines (the paper's c = 2)."""
        _, s = _setup((4, 4, 1))
        face = 5 * 8 * 8 * 4
        edge = 8 * 4
        assert s.steps[0].pairs[0].nbytes == face + 2 * edge

    def test_round_bytes_shape(self):
        _, s = _setup((4, 2, 1))
        rb = s.round_bytes()
        assert len(rb) == len(s.steps)
        assert all(isinstance(b, int) for row in rb for b in row)

    def test_total_pairs_2d(self):
        d, s = _setup((4, 4, 1))
        # 4x4 grid: 3*4 x-adjacencies + 3*4 y-adjacencies = 24.
        assert s.total_pairs() == 24


class TestNaive:
    def test_every_node_fires_all_neighbors(self):
        d, _ = _setup((4, 4, 1))
        plan = HaloPlan((8, 8, 8))
        sends = naive_schedule(d, plan)
        interior = d.rank_of((1, 1, 0))
        # 4 faces + 4 diagonals fired at once.
        assert len(sends[interior]) == 8

    def test_diagonal_messages_are_small(self):
        d, _ = _setup((2, 2, 1))
        plan = HaloPlan((8, 8, 8))
        sends = naive_schedule(d, plan)
        sizes = sorted(nb for msgs in sends.values() for _, nb in msgs)
        assert sizes[0] == 8 * 4          # one edge line
        assert sizes[-1] == 5 * 8 * 8 * 4  # one face

    def test_direct_pattern_rejected_in_scheduler(self):
        d, _ = _setup((2, 2, 1))
        with pytest.raises(ValueError):
            CommSchedule(d, HaloPlan((8, 8, 8)), indirect_diagonal=False)
