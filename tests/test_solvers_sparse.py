"""Tests for the Fig-15 sparse decomposition and iterative solvers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.solvers.krylov import (conjugate_gradient, jacobi, poisson_2d,
                                  red_black_gauss_seidel)
from repro.solvers.sparse import DistributedCSR, partition_rows


class TestPartition:
    def test_even_split(self):
        blocks = partition_rows(12, 4)
        assert [len(b) for b in blocks] == [3, 3, 3, 3]

    def test_uneven_split_covers_all(self):
        blocks = partition_rows(10, 3)
        assert sum(len(b) for b in blocks) == 10
        ids = [i for b in blocks for i in b]
        assert ids == list(range(10))

    def test_too_many_parts_rejected(self):
        with pytest.raises(ValueError):
            partition_rows(3, 5)


class TestDistributedMatvec:
    def test_poisson_matvec_exact(self, rng):
        A, _ = poisson_2d(8)
        d = DistributedCSR(A, 4)
        x = rng.random(64)
        assert np.allclose(d.matvec(x), A @ x, atol=1e-13)

    @given(seed=st.integers(0, 200), ranks=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_random_sparse_matvec_property(self, seed, ranks):
        r = np.random.default_rng(seed)
        n = 30
        A = sparse.random(n, n, density=0.15, random_state=seed,
                          format="csr")
        d = DistributedCSR(A, ranks)
        x = r.random(n)
        assert np.allclose(d.matvec(x), A @ x, atol=1e-12)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            DistributedCSR(sparse.random(4, 5, density=0.5), 2)

    def test_block_diagonal_needs_no_communication(self):
        A = sparse.block_diag([np.ones((5, 5))] * 4, format="csr")
        d = DistributedCSR(A, 4)
        assert d.total_proxy_elements == 0
        assert d.communication_ratio() == 0.0

    def test_communication_ratio_shrinks_with_problem_size(self):
        """Sec 6: the network/local ratio is O(1/N)."""
        small = DistributedCSR(poisson_2d(8)[0], 2).communication_ratio()
        large = DistributedCSR(poisson_2d(24)[0], 2).communication_ratio()
        assert large < small


class TestIterativeSolvers:
    @pytest.fixture(scope="class")
    def system(self):
        A, color = poisson_2d(8)
        rng = np.random.default_rng(9)
        x = rng.random(64)
        return A, color, x, A @ x

    def test_cg_solves(self, system):
        A, _, x_true, b = system
        d = DistributedCSR(A, 4)
        x, it = conjugate_gradient(d, b, tol=1e-10)
        assert np.allclose(x, x_true, atol=1e-8)
        assert it < 100

    def test_cg_single_rank_matches_multirank(self, system):
        A, _, _, b = system
        x1, _ = conjugate_gradient(DistributedCSR(A, 1), b, tol=1e-10)
        x4, _ = conjugate_gradient(DistributedCSR(A, 4), b, tol=1e-10)
        assert np.allclose(x1, x4, atol=1e-8)

    def test_cg_matches_scipy(self, system):
        A, _, _, b = system
        from scipy.sparse.linalg import spsolve
        ref = spsolve(A.tocsc(), b)
        x, _ = conjugate_gradient(DistributedCSR(A, 2), b, tol=1e-12)
        assert np.allclose(x, ref, atol=1e-8)

    def test_jacobi_solves(self, system):
        A, _, x_true, b = system
        d = DistributedCSR(A, 2)
        x, it = jacobi(d, b, A.diagonal(), tol=1e-9, maxiter=4000)
        assert np.allclose(x, x_true, atol=1e-6)

    def test_jacobi_zero_diag_rejected(self, system):
        A, _, _, b = system
        d = DistributedCSR(A, 2)
        with pytest.raises(ValueError):
            jacobi(d, b, np.zeros(64))

    def test_rbgs_solves(self, system):
        A, color, x_true, b = system
        x, it = red_black_gauss_seidel(A, b, color, n_ranks=2, tol=1e-9,
                                       maxiter=3000)
        assert np.allclose(x, x_true, atol=1e-6)

    def test_rbgs_converges_faster_than_jacobi(self, system):
        A, color, _, b = system
        _, it_j = jacobi(DistributedCSR(A, 2), b, A.diagonal(), tol=1e-7,
                         maxiter=5000)
        _, it_gs = red_black_gauss_seidel(A, b, color, n_ranks=2, tol=1e-7,
                                          maxiter=5000)
        assert it_gs < it_j               # the classical 2x

    def test_coloring_is_proper(self):
        A, color = poisson_2d(6)
        coo = (A - sparse.diags(A.diagonal())).tocoo()
        for i, j in zip(coo.row, coo.col):
            if coo.data[0] is not None and i != j:
                assert color[i] != color[j]
