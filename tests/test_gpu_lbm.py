"""The texture-path LBM vs the plain-numpy reference — the core Sec 4.2
correctness claim — plus its timing anchors."""

import numpy as np
import pytest

from repro.gpu.device import SimulatedGPU
from repro.gpu.lbm_gpu import GPULBMSolver
from repro.gpu.specs import GEFORCE_6800_ULTRA
from repro.gpu.texture import OutOfTextureMemory
from repro.lbm.solver import LBMSolver


def _random_init(rng, shape, solid=None):
    u0 = (0.03 * rng.standard_normal((3,) + shape)).astype(np.float32)
    if solid is not None:
        u0[:, solid] = 0
    return np.ones(shape, np.float32), u0


class TestEquivalence:
    @pytest.mark.parametrize("mode", ["wrap", "padded"])
    def test_matches_reference_periodic(self, rng, mode, small_shape):
        rho0, u0 = _random_init(rng, small_shape)
        ref = LBMSolver(small_shape, tau=0.7)
        ref.initialize(rho=rho0, u=u0)
        gpu = GPULBMSolver(small_shape, tau=0.7, mode=mode)
        gpu.load_distributions(ref.f.copy())
        ref.step(5)
        gpu.step(5)
        assert np.array_equal(gpu.distributions(), ref.f)

    @pytest.mark.parametrize("mode", ["wrap", "padded"])
    def test_matches_reference_with_obstacle(self, rng, mode, small_shape,
                                             small_solid):
        rho0, u0 = _random_init(rng, small_shape, small_solid)
        ref = LBMSolver(small_shape, tau=0.7, solid=small_solid)
        ref.initialize(rho=rho0, u=u0)
        gpu = GPULBMSolver(small_shape, tau=0.7, solid=small_solid, mode=mode)
        gpu.load_distributions(ref.f.copy())
        ref.step(6)
        gpu.step(6)
        assert np.array_equal(gpu.distributions(), ref.f)

    def test_matches_reference_with_force(self, rng, small_shape):
        force = (1e-5, -2e-5, 0.0)
        rho0, u0 = _random_init(rng, small_shape)
        ref = LBMSolver(small_shape, tau=0.8, force=force)
        ref.initialize(rho=rho0, u=u0)
        gpu = GPULBMSolver(small_shape, tau=0.8, force=force)
        gpu.load_distributions(ref.f.copy())
        ref.step(5)
        gpu.step(5)
        assert np.allclose(gpu.distributions(), ref.f, atol=1e-7)

    def test_macro_pass_matches_reference_moments(self, rng, small_shape):
        rho0, u0 = _random_init(rng, small_shape)
        ref = LBMSolver(small_shape, tau=0.7)
        ref.initialize(rho=rho0, u=u0)
        gpu = GPULBMSolver(small_shape, tau=0.7)
        gpu.load_distributions(ref.f.copy())
        gpu.run_macro_pass()
        rho_g, u_g = gpu.macroscopic()
        rho_r, u_r = ref.macroscopic()
        assert np.allclose(rho_g, rho_r, rtol=1e-6)
        assert np.allclose(u_g, u_r, atol=1e-6)


class TestGhostProtocol:
    def test_border_layer_round_trip(self, rng):
        shape = (6, 5, 4)
        gpu = GPULBMSolver(shape, tau=0.7, mode="padded")
        f = rng.random((19,) + shape).astype(np.float32)
        gpu.load_distributions(f)
        for axis in range(3):
            for side in ("low", "high"):
                layer = gpu.get_border_layer(axis, side)
                expect_shape = {
                    0: (19, 5 + 2, 4 + 2), 1: (19, 6 + 2, 4 + 2),
                    2: (19, 6 + 2, 5 + 2)}[axis]
                assert layer.shape == expect_shape

    def test_set_ghost_then_stream_pulls_it(self, rng):
        shape = (4, 4, 4)
        gpu = GPULBMSolver(shape, tau=0.7, mode="padded")
        gpu.load_distributions(np.zeros((19,) + shape, dtype=np.float32))
        ghost = np.zeros((19, 6, 6), dtype=np.float32)
        ghost[1, 2 + 1, 2 + 1] = 9.0   # +x link at (y=2, z=2), padded coords
        gpu.set_ghost_layer(ghost, axis=0, side="low")
        gpu.run_stream_passes()
        f = gpu.distributions()
        assert f[1, 0, 2, 2] == 9.0

    def test_ghost_ops_require_padded(self):
        gpu = GPULBMSolver((4, 4, 4), tau=0.7, mode="wrap")
        with pytest.raises(RuntimeError):
            gpu.get_border_layer(0, "low")

    def test_ghost_shape_validated(self):
        gpu = GPULBMSolver((4, 4, 4), tau=0.7, mode="padded")
        with pytest.raises(ValueError):
            gpu.set_ghost_layer(np.zeros((19, 3, 3), np.float32), 0, "low")


class TestDeclaredCosts:
    def test_kernels_fetch_exactly_what_they_declare(self, rng, small_shape,
                                                     small_solid):
        """Honesty check for the timing model: count actual fetches."""
        from repro.gpu.fragment import RenderContext, Rect
        gpu = GPULBMSolver(small_shape, tau=0.7, solid=small_solid)
        rho0, u0 = _random_init(rng, small_shape, small_solid)
        bindings = gpu.bindings()
        rect = gpu._rect
        for name in (["macro"] + [f"collide{s}" for s in range(5)]
                     + [f"stream{s}" for s in range(5)]
                     + [f"bounce{s}" for s in range(5)]):
            prog = gpu._programs[name]
            ctx = RenderContext(bindings, z=1, rect=rect, wrap=True)
            prog.kernel(ctx)
            assert ctx.fetch_count == prog.tex_fetches, name


class TestTimingAnchors:
    def test_80cube_step_is_214ms(self):
        """The paper's Table-1 compute anchor, from the full pass suite
        with boundary handling."""
        dev = SimulatedGPU(enforce_memory=False)
        solid = np.zeros((80, 80, 80), bool)
        solid[10:14, 10:14, :6] = True
        gpu = GPULBMSolver((80, 80, 80), tau=0.6, device=dev, solid=solid)
        gpu.step(1)
        assert dev.clock_s * 1e3 == pytest.approx(214.0, rel=0.01)

    def test_memory_budget_enforced(self):
        with pytest.raises(OutOfTextureMemory):
            GPULBMSolver((96, 96, 96), tau=0.6)  # > 92^3 limit

    def test_92cube_fits(self):
        gpu = GPULBMSolver((92, 92, 92), tau=0.6, mode="wrap")
        assert gpu.device.memory.free_bytes >= 0

    def test_faster_card_faster_step(self):
        d1 = SimulatedGPU(enforce_memory=False)
        d2 = SimulatedGPU(spec=GEFORCE_6800_ULTRA, enforce_memory=False)
        g1 = GPULBMSolver((16, 16, 16), tau=0.6, device=d1)
        g2 = GPULBMSolver((16, 16, 16), tau=0.6, device=d2)
        g1.step(1)
        g2.step(1)
        # Sec 4.4: the 6800 Ultra is "at least 2.5 times faster".
        assert d1.clock_s / d2.clock_s == pytest.approx(2.5, rel=1e-6)


class TestBoundaryLayers:
    def test_inlet_outflow_drive_flow(self):
        shape = (12, 6, 6)
        gpu = GPULBMSolver(shape, tau=0.7, mode="padded",
                           inlet=(0, "high", (-0.05, 0.0, 0.0), 1.0),
                           outflow=(0, "low"))
        gpu.step(60)
        gpu.run_macro_pass()
        _, u = gpu.macroscopic()
        assert u[0].mean() < -0.005

    def test_inlet_matches_reference_solver(self, rng):
        """Same inlet/outflow on both paths on a bounded domain."""
        from repro.lbm.boundaries import (EquilibriumVelocityInlet,
                                          OutflowBoundary)
        from repro.lbm.lattice import D3Q19
        shape = (10, 6, 4)
        inlet = (0, "high", (-0.04, 0.0, 0.0), 1.0)
        ref = LBMSolver(shape, tau=0.7, periodic=False,
                        boundaries=[EquilibriumVelocityInlet(D3Q19, *inlet),
                                    OutflowBoundary(D3Q19, 0, "low")])
        gpu = GPULBMSolver(shape, tau=0.7, mode="padded", inlet=inlet,
                           outflow=(0, "low"))
        gpu.load_distributions(ref.f.copy())
        # Drive the padded ghosts the same way (zero-gradient).
        for _ in range(5):
            ref.step(1)
        # The GPU padded path wraps ghosts periodically by default; for a
        # bounded comparison, step the passes with zero-gradient ghosts.
        for _ in range(5):
            gpu.run_macro_pass()
            gpu.run_collide_passes()
            for axis in range(3):
                for side in ("low", "high"):
                    gpu.set_ghost_layer(gpu.get_border_layer(axis, side),
                                        axis, side)
            gpu.run_stream_passes()
            if gpu.has_solid:
                gpu.run_bounce_passes()
            gpu._apply_inlet()
            gpu._apply_outflow()
        assert np.allclose(gpu.distributions(), ref.f, atol=1e-6)
