"""Smoke tests: every example must run end to end (small arguments)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600)


class TestExamples:
    def test_quickstart(self):
        res = _run("quickstart.py", "--shape", "16,12,8", "--steps", "8")
        assert res.returncode == 0, res.stderr
        assert "all three paths agree" in res.stdout

    def test_urban_dispersion(self, tmp_path):
        res = _run("urban_dispersion.py", "--shape", "48,40,10",
                   "--spinup", "20", "--steps", "10", "--tracers", "300",
                   "--outdir", str(tmp_path))
        assert res.returncode == 0, res.stderr
        assert (tmp_path / "urban_streamlines.ppm").exists()
        assert (tmp_path / "urban_density.pgm").exists()
        assert (tmp_path / "urban_footprint.pgm").exists()

    def test_urban_dispersion_timing_mode(self):
        res = _run("urban_dispersion.py", "--shape", "480,400,80",
                   "--timing-only")
        assert res.returncode == 0, res.stderr
        assert "0.31" in res.stdout or "0.32" in res.stdout

    def test_scaling_study(self):
        res = _run("scaling_study.py", "--nodes", "1,2,8", "--quick")
        assert res.returncode == 0, res.stderr
        assert "Table 1" in res.stdout
        assert "Table 2" in res.stdout
        assert "Strong scaling" in res.stdout

    def test_thermal_convection(self):
        res = _run("thermal_convection.py", "--shape", "16,6,12",
                   "--steps", "80")
        assert res.returncode == 0, res.stderr
        assert "convective heat flux" in res.stdout

    def test_cluster_solvers(self):
        res = _run("cluster_solvers.py", "--ranks", "2", "--n", "12")
        assert res.returncode == 0, res.stderr
        assert "CG:" in res.stdout
        assert "indirection" in res.stdout.lower()

    def test_lid_driven_cavity(self, tmp_path):
        res = _run("lid_driven_cavity.py", "--n", "24", "--steps", "800",
                   "--outdir", str(tmp_path))
        assert res.returncode == 0, res.stderr
        assert "vortex centre" in res.stdout
        assert (tmp_path / "cavity_speed.pgm").exists()
