"""Tests for the live-telemetry subsystem (repro.perf.telemetry).

Covers the metrics registry (typed instruments, enable short-circuit,
per-rank views, snapshot/merge/reset semantics), the histogram bucket
scheme, the Prometheus/JSONL exposition validators, the health monitor
state machine with synthetic heartbeats, the overhead microbenchmark,
and a small serial end-to-end run through ``enable_telemetry``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
from repro.perf.counters import KernelCounters
from repro.perf.report import format_telemetry_summary, telemetry_summary_rows
from repro.perf.telemetry import (
    DEFAULT_TIME_BOUNDS,
    NULL_REGISTRY,
    HealthMonitor,
    MetricsRegistry,
    StatusLine,
    disabled_record_overhead_ns,
    log_bounds,
    rss_bytes,
    sync_counters,
    validate_prometheus,
    validate_snapshot,
)


class TestRegistry:
    def test_counter_gauge_histogram_basic(self):
        reg = MetricsRegistry()
        reg.counter("steps").inc()
        reg.counter("steps").inc(4)
        reg.gauge("imb").set(1.5)
        reg.gauge("imb").set(1.25)
        reg.histogram("dt").observe(0.01)
        assert reg.counter("steps").value == 5
        assert reg.gauge("imb").value == 1.25
        assert reg.histogram("dt").count == 1
        assert reg.histogram("dt").sum == pytest.approx(0.01)

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c, g, h = reg.counter("c"), reg.gauge("g"), reg.histogram("h")
        c.inc(10)
        g.set(3.0)
        h.observe(1.0)
        assert c.value == 0 and g.value == 0.0 and h.count == 0
        snap = reg.snapshot()
        assert snap["counters"]["c"][reg.rank] == 0
        assert snap["histograms"]["h"][reg.rank]["count"] == 0

    def test_enable_flag_is_live_on_existing_instruments(self):
        # Instruments consult the registry flag at record time, so
        # toggling after creation takes effect without re-fetching.
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c")
        c.inc()
        assert c.value == 0
        reg.enabled = True
        c.inc(2)
        assert c.value == 2
        reg.enabled = False
        c.inc(5)
        assert c.value == 2

    def test_null_registry_is_shared_and_disabled(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("x").inc()
        assert NULL_REGISTRY.counter("x").value == 0

    def test_for_rank_view_delegates_and_tracks_enable(self):
        reg = MetricsRegistry(rank=-1)
        v0, v1 = reg.for_rank(0), reg.for_rank(1)
        v0.counter("w").inc(2)
        v1.counter("w").inc(3)
        snap = reg.snapshot()
        assert snap["counters"]["w"] == {0: 2, 1: 3}
        reg.enabled = False
        v0.counter("w").inc(100)  # no-op: views share the parent flag
        assert reg.snapshot()["counters"]["w"] == {0: 2, 1: 3}

    def test_snapshot_reset_is_delta_shipping(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(0.5)
        first = reg.snapshot(reset=True)
        assert first["counters"]["c"][reg.rank] == 7
        second = reg.snapshot()
        # Counters and histograms zeroed; gauges keep their last value.
        assert second["counters"].get("c", {}).get(reg.rank, 0) == 0
        assert second["gauges"]["g"][reg.rank] == 2.0
        assert second["histograms"]["h"][reg.rank]["count"] == 0

    def test_merge_adds_counters_overwrites_gauges(self):
        a, b = MetricsRegistry(rank=-1), MetricsRegistry(rank=0)
        a.counter("c").inc(1)
        a.gauge("g").set(1.0)
        b.counter("c").inc(2)
        b.gauge("g").set(9.0)
        b.histogram("h").observe(0.2)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == {-1: 1, 0: 2}
        assert snap["gauges"]["g"][0] == 9.0
        assert snap["histograms"]["h"][0]["count"] == 1
        # Merging the same delta twice adds again (deltas, not states).
        a.merge(b.snapshot(reset=True))
        assert a.snapshot()["counters"]["c"][0] == 4

    def test_merge_into_disabled_registry_drops(self):
        a = MetricsRegistry(enabled=False)
        b = MetricsRegistry(rank=0)
        b.counter("c").inc(5)
        a.merge(b.snapshot())
        a.enabled = True
        assert a.snapshot()["counters"] == {}

    def test_counter_reset_to_is_idempotent(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.reset_to(10)
        c.reset_to(10)
        assert c.value == 10
        c.reset_to(12)
        assert c.value == 12


class TestHistogramBuckets:
    def test_log_bounds_shape(self):
        bounds = log_bounds(1e-3, 1.0, per_decade=3)
        assert bounds[0] == pytest.approx(1e-3)
        assert bounds[-1] == pytest.approx(1.0)
        assert len(bounds) == 10  # 3 decades * 3 + fencepost
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(10 ** (1 / 3)) for r in ratios)

    def test_observe_places_values_in_log_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("dt", bounds=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.05, 0.5):
            h.observe(v)
        # counts has len(bounds)+1 cells: (-inf,1ms], .., (100ms, inf)
        assert list(h.counts) == [1, 1, 1, 1]
        h.observe(0.01)  # boundary value lands in its own bucket
        assert list(h.counts) == [1, 2, 1, 1]
        assert h.count == 5

    def test_default_time_bounds_cover_step_range(self):
        assert DEFAULT_TIME_BOUNDS[0] <= 1e-5
        assert DEFAULT_TIME_BOUNDS[-1] >= 10.0
        assert all(b < c for b, c in
                   zip(DEFAULT_TIME_BOUNDS, DEFAULT_TIME_BOUNDS[1:]))

    def test_bounds_fixed_per_name_for_mergeability(self):
        reg = MetricsRegistry()
        h1 = reg.for_rank(0).histogram("dt", bounds=(1.0, 2.0))
        h2 = reg.for_rank(1).histogram("dt", bounds=(5.0, 6.0))  # ignored
        assert tuple(h2.bounds) == tuple(h1.bounds)


class TestExposition:
    def _populated(self):
        reg = MetricsRegistry(rank=-1)
        reg.counter("steps.total").inc(3)
        reg.for_rank(0).gauge("rank.rss_bytes").set(1024.0)
        reg.for_rank(0).histogram("step.seconds").observe(0.02)
        return reg

    def test_prometheus_text_schema(self):
        text = self._populated().to_prometheus()
        assert validate_prometheus(text) >= 3
        assert "# TYPE repro_steps_total counter" in text
        assert 'repro_steps_total{rank="-1"} 3' in text
        assert 'repro_rank_rss_bytes{rank="0"} 1024' in text
        # Histogram: cumulative buckets, +Inf, _sum/_count series.
        assert 'le="+Inf"' in text
        assert "repro_step_seconds_count" in text
        assert "repro_step_seconds_sum" in text

    def test_prometheus_histogram_buckets_cumulative(self):
        reg = MetricsRegistry(rank=0)
        h = reg.histogram("h", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.to_prometheus()
        rows = [ln for ln in text.splitlines() if "_bucket" in ln]
        counts = [float(ln.rsplit(" ", 1)[1]) for ln in rows]
        assert counts == [1.0, 2.0, 3.0]  # monotone cumulative

    def test_validate_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_prometheus("repro_x{rank=} nope")
        with pytest.raises(ValueError):
            validate_prometheus("no_prefix_metric 1")

    def test_validate_snapshot_roundtrips_jsonl(self):
        reg = self._populated()
        obj = {"t": 1.0, "step": 3, "metrics": reg.snapshot()}
        line = json.dumps(obj)
        back = json.loads(line)  # rank keys become strings
        assert validate_snapshot(back) == 3

    def test_validate_snapshot_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_snapshot({"metrics": {"counters": {}}})  # no t/step
        with pytest.raises(ValueError):  # counter without a per-rank map
            validate_snapshot({"t": 1.0, "step": 1,
                               "metrics": {"counters": {"c": 3},
                                           "gauges": {}, "histograms": {}}})
        bad_hist = {"t": 1.0, "step": 1, "metrics": {
            "counters": {}, "gauges": {},
            "histograms": {"h": {0: {"bounds": [1.0],
                                     "counts": [1],  # needs len 2
                                     "sum": 0.5, "count": 1}}}}}
        with pytest.raises(ValueError):
            validate_snapshot(bad_hist)


class TestHealthMonitor:
    def _obs(self, mon, rank, hb, step=1, busy=False, step_s=0.1, rss=10**6):
        mon.observe(rank, hb, step, busy=busy, step_seconds=step_s, rss=rss)

    def test_unknown_until_observed(self):
        mon = HealthMonitor(n_ranks=2)
        report = mon.check(now=0.0)
        assert [r.status for r in report.rows] == ["unknown", "unknown"]
        assert report.worst == "unknown"
        assert report.flagged() == []

    def test_ok_and_blocked(self):
        mon = HealthMonitor(n_ranks=2, stall_timeout_s=1.0)
        self._obs(mon, 0, hb=10.0, busy=False)
        self._obs(mon, 1, hb=10.0, busy=True)
        report = mon.check(now=10.5)
        assert [r.status for r in report.rows] == ["ok", "ok"]
        # Rank 1 stays busy past the timeout -> blocked mid-step.
        report = mon.check(now=12.0)
        statuses = {r.rank: r.status for r in report.rows}
        assert statuses[0] == "ok" and statuses[1] == "blocked"
        assert report.worst == "blocked"
        assert [r.rank for r in report.flagged()] == [1]

    def test_stalled_after_command_without_heartbeat(self):
        mon = HealthMonitor(n_ranks=1, stall_timeout_s=1.0)
        self._obs(mon, 0, hb=5.0)
        mon.note_command(now=6.0)
        # No new heartbeat after the command, well past the timeout.
        report = mon.check(now=9.0)
        assert report.rows[0].status == "stalled"
        # Heartbeat newer than the command clears the stall.
        self._obs(mon, 0, hb=9.5)
        assert mon.check(now=9.6).rows[0].status == "ok"
        mon.note_done()
        assert mon.check(now=20.0).rows[0].status == "ok"

    def test_slow_rank_vs_median(self):
        mon = HealthMonitor(n_ranks=3, slow_factor=3.0)
        self._obs(mon, 0, hb=10.0, step_s=0.1)
        self._obs(mon, 1, hb=10.0, step_s=0.1)
        self._obs(mon, 2, hb=10.0, step_s=0.9)
        report = mon.check(now=10.1)
        statuses = {r.rank: r.status for r in report.rows}
        assert statuses == {0: "ok", 1: "ok", 2: "slow"}
        assert report.worst == "slow"

    def test_worst_priority_order(self):
        mon = HealthMonitor(n_ranks=3, stall_timeout_s=1.0)
        self._obs(mon, 0, hb=10.0, busy=True, step_s=0.1)
        self._obs(mon, 1, hb=14.9, step_s=0.1)
        self._obs(mon, 2, hb=14.9, step_s=0.9)
        # blocked (rank 0) outranks slow (rank 2) in the aggregate.
        report = mon.check(now=15.0)
        assert {r.rank: r.status for r in report.rows} == \
            {0: "blocked", 1: "ok", 2: "slow"}
        assert report.worst == "blocked"
        assert "cluster health: blocked" in report.summary()


class TestCountersBridge:
    def test_sync_counters_maps_and_is_idempotent(self):
        kc = KernelCounters()
        kc.add("cluster.exchange", 0.25)
        kc.add("cluster.exchange", 0.25)
        kc.metric("halo.wire_bytes", 4096.0, calls=2)
        reg = MetricsRegistry(rank=-1)
        sync_counters(reg, kc)
        sync_counters(reg, kc)  # absolute reset_to, not += twice
        snap = reg.snapshot()
        assert snap["counters"]["phase.cluster.exchange.seconds"][-1] \
            == pytest.approx(0.5)
        assert snap["counters"]["phase.cluster.exchange.calls"][-1] == 2
        assert snap["counters"]["halo.wire_bytes.total"][-1] == 4096

    def test_report_shows_value_columns_only_when_present(self):
        kc = KernelCounters()
        kc.add("collide", 0.1)
        assert "mean value" not in kc.report()
        kc.metric("halo.bytes", 2048.0)
        rep = kc.report()
        assert "mean value" in rep and "2048.0" in rep


class TestOverheadAndRss:
    def test_disabled_record_overhead_under_budget(self):
        ns = disabled_record_overhead_ns(calls=5000)
        assert set(ns) == {"counter", "gauge", "histogram"}
        # The check-telemetry gate budget is 1 us; be generous here to
        # keep CI machines with noisy clocks green.
        assert all(v < 5000.0 for v in ns.values())

    def test_rss_bytes_positive_and_plausible(self):
        rss = rss_bytes()
        assert rss > 1024 * 1024  # a python process is at least a MiB
        assert rss < 1 << 40


class TestStatusLine:
    def test_non_tty_emits_plain_lines(self):
        import io
        buf = io.StringIO()
        sl = StatusLine(stream=buf, min_interval_s=0.0)
        sl.update("step 1")
        sl.update("step 2", force=True)
        sl.close()
        out = buf.getvalue()
        assert "step 1\n" in out and "step 2\n" in out
        assert "\r" not in out


class TestSerialIntegration:
    def test_enable_telemetry_end_to_end(self):
        cfg = ClusterConfig(sub_shape=(6, 6, 4), arrangement=(2, 1, 1),
                            tau=0.7, backend="serial")
        with CPUClusterLBM(cfg) as cluster:
            session = cluster.enable_telemetry()
            cluster.step(3)
            snap = session.snapshot()
            metrics = snap["metrics"]
            assert metrics["counters"]["steps.total"][-1] == 3
            # Both ranks report busy time and memory.
            assert set(metrics["counters"]["rank.busy_seconds"]) == {0, 1}
            assert set(metrics["gauges"]["rank.rss_bytes"]) == {0, 1}
            assert metrics["histograms"]["step.seconds"][-1]["count"] == 3
            assert validate_snapshot(snap) > 0
            assert validate_prometheus(session.to_prometheus()) > 0
            txt = session.status_text()
            assert "steps/s" in txt and "MLUPS" in txt
            rows = telemetry_summary_rows(metrics)
            assert any(r["name"] == "steps.total" for r in rows)
            summary = format_telemetry_summary(snap)
            assert "steps.total" in summary
            assert {r["rank"] for r in snap["health"]} == {0, 1}
            assert all(r["status"] == "ok" for r in snap["health"])

    def test_telemetry_is_observational_only(self):
        import numpy as np
        cfg = ClusterConfig(sub_shape=(6, 6, 4), arrangement=(2, 1, 1),
                            tau=0.7, backend="serial")
        with CPUClusterLBM(cfg) as plain:
            plain.step(4)
            base = plain.gather_distributions().copy()
        with CPUClusterLBM(cfg) as monitored:
            monitored.enable_telemetry()
            monitored.step(4)
            got = monitored.gather_distributions().copy()
        assert np.array_equal(base, got)

    def test_jsonl_export_stream(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        cfg = ClusterConfig(sub_shape=(6, 6, 4), arrangement=(1, 1, 1),
                            tau=0.7, backend="serial")
        with CPUClusterLBM(cfg) as cluster:
            cluster.enable_telemetry(jsonl_path=str(path))
            cluster.step(3)
        lines = [ln for ln in path.read_text().splitlines() if ln]
        assert len(lines) == 3
        for ln in lines:
            obj = json.loads(ln)
            assert obj["step"] >= 1
            assert validate_snapshot(obj) > 0
