"""Tests for the thread-per-rank SimMPI message layer."""

import numpy as np
import pytest

from repro.net.simmpi import SimCluster
from repro.net.switch import GigabitSwitch


class TestPointToPoint:
    def test_send_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(5, dtype=np.float64), dest=1, tag=3)
                return None
            return comm.Recv(source=0, tag=3)

        res = SimCluster(2).run(main)
        assert np.array_equal(res[1], np.arange(5.0))

    def test_send_copies_buffer(self):
        """Mutating the send buffer after Send must not corrupt the
        message (MPI buffer semantics)."""
        def main(comm):
            if comm.rank == 0:
                data = np.ones(4)
                comm.Send(data, dest=1)
                data[:] = 99.0
                return None
            return comm.Recv(source=0)

        res = SimCluster(2).run(main)
        assert (res[1] == 1.0).all()

    def test_ring_sendrecv(self):
        def main(comm):
            data = np.full(3, float(comm.rank))
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = comm.sendrecv(data, dest=right, source=left)
            return float(got[0])

        res = SimCluster(5).run(main)
        assert res == [4.0, 0.0, 1.0, 2.0, 3.0]

    def test_tag_matching(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.array([1.0]), dest=1, tag=7)
                comm.Send(np.array([2.0]), dest=1, tag=8)
                return None
            b = comm.Recv(source=0, tag=8)
            a = comm.Recv(source=0, tag=7)
            return (float(a[0]), float(b[0]))

        res = SimCluster(2).run(main)
        assert res[1] == (1.0, 2.0)

    def test_recv_advances_clock_to_arrival(self):
        def main(comm):
            if comm.rank == 0:
                comm.compute(0.5)
                comm.Send(np.zeros(1000), dest=1)
                return comm.clock_s
            got = comm.Recv(source=0)
            return comm.clock_s

        cl = SimCluster(2)
        res = cl.run(main)
        assert res[1] >= 0.5           # receiver waited for the sender
        assert res[1] == pytest.approx(res[0])

    def test_isend_cheaper_than_send_for_sender(self):
        def main(comm):
            if comm.rank == 0:
                comm.Isend(np.zeros(10 ** 6), dest=1)
                return comm.clock_s
            comm.Recv(source=0)
            return comm.clock_s

        res = SimCluster(2).run(main)
        assert res[0] < res[1]

    def test_deadlock_detected(self):
        def main(comm):
            # Everyone receives, nobody sends.
            return comm.Recv(source=(comm.rank + 1) % comm.size)

        with pytest.raises(RuntimeError, match="rank"):
            SimCluster(2, timeout_s=0.5).run(main)

    def test_worker_exception_propagates(self):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="boom"):
            SimCluster(2, timeout_s=2.0).run(main)


class TestCollectives:
    def test_allreduce_sum(self):
        res = SimCluster(4).run(lambda comm: comm.allreduce(comm.rank + 1))
        assert res == [10, 10, 10, 10]

    def test_allreduce_arrays(self):
        def main(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        res = SimCluster(3).run(main)
        assert np.array_equal(res[0], np.full(3, 3.0))

    def test_gather(self):
        def main(comm):
            return comm.gather(comm.rank * 2, root=1)

        res = SimCluster(3).run(main)
        assert res[0] is None
        assert res[1] == [0, 2, 4]
        assert res[2] is None

    def test_allgather(self):
        res = SimCluster(3).run(lambda c: c.allgather(c.rank))
        assert res == [[0, 1, 2]] * 3

    def test_bcast(self):
        def main(comm):
            val = f"hello-{comm.rank}" if comm.rank == 2 else None
            return comm.bcast(val, root=2)

        res = SimCluster(4).run(main)
        assert res == ["hello-2"] * 4

    def test_barrier_synchronizes_clocks(self):
        def main(comm):
            comm.compute(0.1 * comm.rank)
            comm.barrier()
            return comm.clock_s

        res = SimCluster(4).run(main)
        assert max(res) - min(res) < 1e-12
        assert min(res) >= 0.3        # slowest rank's compute

    def test_repeated_collectives(self):
        def main(comm):
            total = 0
            for k in range(5):
                total += comm.allreduce(comm.rank + k)
            return total

        res = SimCluster(3).run(main)
        # sum over k of (0+1+2 + 3k) = 3+3k -> 15 + 30 = ... compute:
        expect = sum(3 + 3 * k for k in range(5))
        assert res == [expect] * 3


class TestClockModel:
    def test_compute_advances_clock(self):
        res = SimCluster(1).run(lambda c: (c.compute(1.5), c.clock_s)[1])
        assert res[0] == 1.5

    def test_negative_compute_rejected(self):
        with pytest.raises(RuntimeError, match="negative"):
            SimCluster(1).run(lambda c: c.compute(-1))

    def test_contention_emerges_from_shared_port(self):
        """Two senders to one receiver: the switch serializes them —
        Sec 4.3 finding 1 reproduced mechanistically."""
        sw = GigabitSwitch()

        def main(comm):
            if comm.rank in (0, 1):
                comm.Send(np.zeros(100_000), dest=2, tag=comm.rank)
                return None
            a = comm.Recv(source=0, tag=0)
            b = comm.Recv(source=1, tag=1)
            return comm.clock_s

        cl = SimCluster(3, switch=sw)
        res = cl.run(main)
        assert sw.contention_events >= 1
        assert res[2] > sw.message_time(400_000)   # paid the serialization
