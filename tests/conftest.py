"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, seeded generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_shape() -> tuple[int, int, int]:
    """A cheap 3D lattice for numeric tests."""
    return (10, 8, 6)


@pytest.fixture
def small_solid(small_shape) -> np.ndarray:
    """An off-centre box obstacle inside the small lattice."""
    solid = np.zeros(small_shape, dtype=bool)
    solid[3:5, 2:4, 1:3] = True
    return solid


def random_state(rng: np.random.Generator, shape, lattice=None, amp: float = 0.03):
    """A near-equilibrium random (rho, u) initial condition."""
    rho = np.ones(shape, dtype=np.float32)
    u = (amp * rng.standard_normal((3,) + tuple(shape))).astype(np.float32)
    return rho, u
