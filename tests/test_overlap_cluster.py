"""Executed communication/computation overlap in the cluster drivers.

``ClusterConfig.overlap`` (the default) makes numeric steps collide the
boundary shell, run the halo exchange on a communication thread, and
collide the inner core concurrently.  These tests pin the contract:
results stay bit-identical to the sequential protocol and to the
single-domain reference, and the *measured* overlap window is reported
alongside the modeled one.
"""

import numpy as np
import pytest

from repro.core import ClusterConfig, CPUClusterLBM, GPUClusterLBM
from repro.core.cluster_lbm import StepTiming
from repro.core.decomposition import BlockDecomposition
from repro.core.spmd import SPMDClusterLBM
from repro.lbm.solver import LBMSolver

SUB, ARR = (8, 6, 4), (2, 2, 1)
SHAPE = tuple(s * a for s, a in zip(SUB, ARR))


def _initial_state(rng, solid=None):
    ref = LBMSolver(SHAPE, tau=0.7, solid=solid)
    u0 = (0.02 * rng.standard_normal((3,) + SHAPE)).astype(np.float32)
    if solid is not None:
        u0[:, solid] = 0
    ref.initialize(rho=np.ones(SHAPE, np.float32), u=u0)
    return ref


def _run(cls, f0, steps=4, solid=None, **cfg_kw):
    cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                        solid=solid, **cfg_kw)
    with cls(cfg) as cluster:
        cluster.load_global_distributions(f0)
        timing = cluster.step(steps)
        f = cluster.gather_distributions()
    return f, timing


@pytest.mark.parametrize("cls", [CPUClusterLBM, GPUClusterLBM])
class TestOverlappedEqualsSequential:
    def test_overlap_matches_no_overlap(self, rng, cls):
        solid = np.zeros(SHAPE, bool)
        solid[3:6, 4:7, 1:3] = True
        f0 = _initial_state(rng, solid=solid).f.copy()
        f_seq, _ = _run(cls, f0, solid=solid, overlap=False)
        f_ovl, _ = _run(cls, f0, solid=solid, overlap=True)
        assert np.array_equal(f_seq, f_ovl)

    def test_overlap_matches_reference_solver(self, rng, cls):
        ref = _initial_state(rng)
        f0 = ref.f.copy()
        ref.step(5)
        f_ovl, _ = _run(cls, f0, steps=5, overlap=True)
        assert np.array_equal(f_ovl, ref.f)

    def test_overlap_matches_reference_with_threads(self, rng, cls):
        ref = _initial_state(rng)
        f0 = ref.f.copy()
        ref.step(4)
        f_ovl, _ = _run(cls, f0, overlap=True, max_workers=4)
        assert np.array_equal(f_ovl, ref.f)

    def test_measured_window_reported(self, rng, cls):
        f0 = _initial_state(rng).f.copy()
        _, timing = _run(cls, f0, overlap=True)
        assert timing.measured_exchange_s > 0.0
        assert timing.measured_window_s >= 0.0
        assert timing.measured_window_s <= timing.measured_exchange_s
        _, t_seq = _run(cls, f0, overlap=False)
        assert t_seq.measured_exchange_s == 0.0
        assert t_seq.measured_window_s == 0.0

    def test_modeled_timing_unchanged_by_overlap(self, rng, cls):
        f0 = _initial_state(rng).f.copy()
        _, t_ovl = _run(cls, f0, overlap=True)
        _, t_seq = _run(cls, f0, overlap=False)
        assert t_ovl.nodes == t_seq.nodes
        assert t_ovl.net_total_s == t_seq.net_total_s
        assert t_ovl.agp_s == t_seq.agp_s
        # ms() is the deterministic Table-1 view: measured wall values
        # must not leak into it.
        assert set(t_ovl.ms()) == {"compute", "agp", "net_total",
                                   "net_nonoverlap", "total"}


class TestMeasuredWindowSemantics:
    def test_defaults_are_zero(self):
        t = StepTiming(nodes=2, compute_s=1.0, agp_s=0.1, net_total_s=0.2,
                       overlap_window_s=0.5)
        assert t.measured_window_s == 0.0
        assert t.measured_exchange_s == 0.0

    def test_timing_only_mode_measures_nothing(self):
        cfg = ClusterConfig(sub_shape=(80, 80, 80), arrangement=(2, 2, 1),
                            timing_only=True)
        with GPUClusterLBM(cfg) as cluster:
            t = cluster.step(1)
        assert t.measured_window_s == 0.0
        assert t.measured_exchange_s == 0.0
        assert t.overlap_window_s > 0.0

    def test_interval_intersection_is_wall_window(self, rng):
        # A larger sub-domain so the inner collide reliably spans a
        # nonzero wall interval concurrent with the exchange.
        sub = (16, 16, 8)
        shape = tuple(s * a for s, a in zip(sub, (2, 1, 1)))
        ref = LBMSolver(shape, tau=0.7)
        u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
        ref.initialize(rho=np.ones(shape, np.float32), u=u0)
        cfg = ClusterConfig(sub_shape=sub, arrangement=(2, 1, 1), tau=0.7)
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(ref.f.copy())
            windows = [cluster.step(1).measured_window_s for _ in range(5)]
        # The window is wall-clock, hence noisy; but over several steps
        # the concurrent protocol must exhibit an overlap at least once.
        assert max(windows) > 0.0


class TestSPMDOverlap:
    @pytest.mark.parametrize("arrangement", [(2, 1, 1), (2, 2, 1)])
    def test_spmd_nonblocking_matches_reference(self, rng, arrangement):
        sub = (6, 6, 5)
        shape = tuple(s * a for s, a in zip(sub, arrangement))
        ref = LBMSolver(shape, tau=0.7)
        u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
        ref.initialize(rho=np.ones(shape, np.float32), u=u0)
        f0 = ref.f.copy()
        ref.step(4)
        decomp = BlockDecomposition(shape, arrangement)
        spmd = SPMDClusterLBM(decomp, tau=0.7, f0=f0)
        f, clocks = spmd.run(4)
        assert np.array_equal(f, ref.f)
        assert all(c > 0 for c in clocks)

    def test_spmd_with_solid_matches_reference(self, rng):
        sub, arrangement = (6, 5, 4), (2, 2, 1)
        shape = tuple(s * a for s, a in zip(sub, arrangement))
        solid = np.zeros(shape, bool)
        solid[2:5, 3:6, 1:3] = True
        ref = LBMSolver(shape, tau=0.7, solid=solid)
        u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
        u0[:, solid] = 0
        ref.initialize(rho=np.ones(shape, np.float32), u=u0)
        f0 = ref.f.copy()
        ref.step(3)
        decomp = BlockDecomposition(shape, arrangement)
        spmd = SPMDClusterLBM(decomp, tau=0.7, solid=solid, f0=f0)
        f, _ = spmd.run(3)
        assert np.array_equal(f, ref.f)


class TestContextManager:
    @pytest.mark.parametrize("cls", [CPUClusterLBM, GPUClusterLBM])
    def test_with_block_releases_pools(self, rng, cls):
        f0 = _initial_state(rng).f.copy()
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                            backend="threads", max_workers=3)
        with cls(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(2)
            assert cluster._comm_executor is not None
            assert cluster._executor is not None
        assert cluster._comm_executor is None
        assert cluster._executor is None
