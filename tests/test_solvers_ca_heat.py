"""Tests for the Sec-6 cellular automata and proxy-point heat solver."""

import numpy as np
import pytest

from repro.net import SimCluster
from repro.solvers.ca import (DistributedCA, greenberg_hastings_rule,
                              life_rule, majority_rule, step_reference)
from repro.solvers.heat import DistributedHeat2D
from repro.solvers.heat import step_reference as heat_reference


class TestRules:
    def test_life_blinker_oscillates(self):
        g = np.zeros((5, 5), np.int8)
        g[2, 1:4] = 1
        g1 = step_reference(g, life_rule)
        g2 = step_reference(g1, life_rule)
        assert np.array_equal(g1, g.T)      # blinker flips orientation
        assert np.array_equal(g2, g)

    def test_life_block_is_still(self):
        g = np.zeros((6, 6), np.int8)
        g[2:4, 2:4] = 1
        assert np.array_equal(step_reference(g, life_rule), g)

    def test_majority_fills_dense_region(self):
        g = np.zeros((8, 8), np.int8)
        g[2:7, 2:7] = 1
        g[4, 4] = 0                         # a hole in a solid block
        out = step_reference(g, majority_rule)
        assert out[4, 4] == 1

    def test_greenberg_hastings_cycles_states(self):
        g = np.zeros((5, 5), np.int8)
        g[2, 2] = 1
        out = step_reference(g, greenberg_hastings_rule)
        assert out[2, 2] == 2               # excited -> refractory
        assert out[2, 1] == 1               # neighbour excited
        out2 = step_reference(out, greenberg_hastings_rule)
        assert out2[2, 2] == 0              # refractory -> quiescent


class TestDistributedCA:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    @pytest.mark.parametrize("periodic", [True, False])
    def test_matches_reference(self, rng, ranks, periodic):
        g = (rng.random((12, 10)) < 0.35).astype(np.int8)
        ref = g.copy()
        for _ in range(6):
            ref = step_reference(ref, life_rule, periodic=periodic)
        out = DistributedCA(g, ranks, life_rule, periodic=periodic).run(6)
        assert np.array_equal(out, ref)

    def test_other_rules_distributed(self, rng):
        g = (rng.random((8, 8)) < 0.5).astype(np.int8)
        for rule in (majority_rule, greenberg_hastings_rule):
            ref = g.copy()
            for _ in range(4):
                ref = step_reference(ref, rule, periodic=True)
            out = DistributedCA(g, 2, rule).run(4)
            assert np.array_equal(out, ref)

    def test_glider_crosses_rank_boundary(self):
        """A glider moving through the cut line must survive intact —
        the sharpest halo-exchange test."""
        g = np.zeros((16, 16), np.int8)
        glider = np.array([[0, 1, 0], [0, 0, 1], [1, 1, 1]], dtype=np.int8)
        g[5:8, 5:8] = glider
        ref = g.copy()
        for _ in range(16):
            ref = step_reference(ref, life_rule, periodic=True)
        out = DistributedCA(g, 4, life_rule).run(16)
        assert np.array_equal(out, ref)
        assert out.sum() == 5               # glider alive

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ValueError):
            DistributedCA(np.zeros((10, 10), np.int8), 3)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            DistributedCA(np.zeros(10, np.int8), 2)


class TestDistributedHeat:
    def test_matches_reference(self, rng):
        u0 = rng.random((16, 12))
        ref = heat_reference(u0, 0.2, 10)
        out = DistributedHeat2D(u0, (2, 2), kappa=0.2).run(10)
        assert np.allclose(out, ref, atol=1e-12)

    @pytest.mark.parametrize("ranks", [(1, 1), (4, 1), (1, 3), (2, 3)])
    def test_any_rank_grid(self, rng, ranks):
        u0 = rng.random((12, 12))
        ref = heat_reference(u0, 0.25, 5)
        out = DistributedHeat2D(u0, ranks, kappa=0.25).run(5)
        assert np.allclose(out, ref, atol=1e-12)

    def test_heat_conserved_insulated(self, rng):
        u0 = rng.random((8, 8))
        out = DistributedHeat2D(u0, (2, 2), kappa=0.2).run(30)
        assert out.sum() == pytest.approx(u0.sum(), rel=1e-12)

    def test_converges_to_uniform(self):
        u0 = np.zeros((8, 8))
        u0[0, 0] = 64.0
        out = DistributedHeat2D(u0, (2, 2), kappa=0.25).run(600)
        assert np.allclose(out, 1.0, atol=0.05)

    def test_unstable_kappa_rejected(self):
        with pytest.raises(ValueError):
            DistributedHeat2D(np.zeros((4, 4)), (2, 2), kappa=0.3)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            DistributedHeat2D(np.zeros((10, 10)), (3, 2))

    def test_clocks_advance(self, rng):
        u0 = rng.random((8, 8))
        cl = SimCluster(4)
        DistributedHeat2D(u0, (2, 2), kappa=0.2).run(3, cluster=cl)
        assert all(c > 0 for c in cl.clocks)
