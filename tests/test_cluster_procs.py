"""Process-backend cluster stepping: equivalence, lifecycle, teardown.

``ClusterConfig.backend = "processes"`` runs one persistent worker
process per rank with all bulk data in shared memory.  The gathered
result must match the serial backend bit for bit, counters must
aggregate across ranks, and — mirroring ``test_simmpi_robustness`` —
a killed worker must surface as one clear error from ``step()``
(never a hang), with the driver still cleanly closable and no shared
segments or worker processes left behind.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import ClusterConfig, CPUClusterLBM, GPUClusterLBM, leaked_segments
from repro.core.procpool import run_equivalence_check
from repro.lbm.solver import LBMSolver

SUB, ARR = (8, 6, 4), (2, 2, 1)
SHAPE = tuple(s * a for s, a in zip(SUB, ARR))
N_RANKS = int(np.prod(ARR))


def _initial_state(rng, solid=None):
    ref = LBMSolver(SHAPE, tau=0.7, solid=solid)
    u0 = (0.02 * rng.standard_normal((3,) + SHAPE)).astype(np.float32)
    if solid is not None:
        u0[:, solid] = 0
    ref.initialize(rho=np.ones(SHAPE, np.float32), u=u0)
    return ref.f.copy()


def _run(cls, f0, steps=4, solid=None, **cfg_kw):
    cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                        solid=solid, **cfg_kw)
    cluster = cls(cfg)
    try:
        cluster.load_global_distributions(f0)
        timing = cluster.step(steps)
        f = cluster.gather_distributions().copy()
    finally:
        cluster.shutdown()
    return f, timing


def _assert_all_dead(pids):
    deadline = time.monotonic() + 5.0
    for pid in pids:
        if pid is None:
            continue
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                break
            time.sleep(0.02)
        else:
            pytest.fail(f"worker pid {pid} survived shutdown")


@pytest.mark.parametrize("cls", [CPUClusterLBM, GPUClusterLBM])
class TestProcessesEqualsSerial:
    def test_gather_bit_identical_with_solid(self, rng, cls):
        solid = np.zeros(SHAPE, bool)
        solid[3:6, 4:7, 1:3] = True
        f0 = _initial_state(rng, solid=solid)
        f_serial, _ = _run(cls, f0, solid=solid, backend="serial")
        f_procs, _ = _run(cls, f0, solid=solid, backend="processes")
        assert np.array_equal(f_serial, f_procs)

    def test_step_timing_decomposition_identical(self, rng, cls):
        f0 = _initial_state(rng)
        # overlap=False so the serial driver runs the same sequential
        # per-rank protocol the workers execute.
        _, t_serial = _run(cls, f0, backend="serial", overlap=False)
        _, t_procs = _run(cls, f0, backend="processes")
        assert t_serial.nodes == t_procs.nodes
        assert t_serial.compute_s == t_procs.compute_s
        assert t_serial.agp_s == t_procs.agp_s
        assert t_serial.net_total_s == t_procs.net_total_s


class TestProcessesMatchesReference:
    def test_process_cpu_cluster_matches_reference(self, rng):
        ref = LBMSolver(SHAPE, tau=0.7)
        u0 = (0.02 * rng.standard_normal((3,) + SHAPE)).astype(np.float32)
        ref.initialize(rho=np.ones(SHAPE, np.float32), u=u0)
        f0 = ref.f.copy()
        ref.step(5)
        f, _ = _run(CPUClusterLBM, f0, steps=5, backend="processes")
        assert np.array_equal(f, ref.f)

    def test_counters_aggregate_across_ranks(self, rng):
        f0 = _initial_state(rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                            backend="processes")
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(2)
            cluster.step(1)
            stats = cluster.counters.stats
            # Worker-side phases merged back: one call per rank per step.
            assert stats["cluster.collide"].calls == 3 * N_RANKS
            assert stats["cluster.exchange"].calls == 3 * N_RANKS
            assert stats["cluster.finish"].calls == 3 * N_RANKS
            # Coordinator-side envelope: one record per step() call.
            assert stats["cluster.proc_step"].calls == 2


class TestLifecycle:
    def test_shutdown_leaves_nothing_behind(self, rng):
        f0 = _initial_state(rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                            backend="processes")
        cluster = CPUClusterLBM(cfg)
        pids = cluster._proc_backend.worker_pids()
        assert len(pids) == N_RANKS
        cluster.load_global_distributions(f0)
        cluster.step(2)
        assert leaked_segments()  # live driver owns segments
        cluster.shutdown()
        assert leaked_segments() == []
        _assert_all_dead(pids)

    def test_shutdown_idempotent_and_step_after_raises(self, rng):
        f0 = _initial_state(rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                            backend="processes")
        cluster = CPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(1)
        cluster.shutdown()
        cluster.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            cluster.step(1)

    def test_context_manager_shuts_down(self, rng):
        f0 = _initial_state(rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                            backend="processes")
        with GPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(1)
            pids = cluster._proc_backend.worker_pids()
        assert leaked_segments() == []
        _assert_all_dead(pids)

    def test_verify_gate_passes(self):
        run_equivalence_check(steps=2)


class TestKilledWorker:
    def test_killed_worker_raises_not_hangs(self, rng):
        f0 = _initial_state(rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                            backend="processes", backend_timeout_s=30.0)
        cluster = CPUClusterLBM(cfg)
        try:
            cluster.load_global_distributions(f0)
            cluster.step(1)
            backend = cluster._proc_backend
            pids = backend.worker_pids()
            os.kill(pids[1], signal.SIGKILL)
            t0 = time.monotonic()
            with pytest.raises(RuntimeError,
                               match=r"process backend failed.*rank 1"):
                cluster.step(2)
            # Liveness detection + barrier abort, not a timeout wait.
            assert time.monotonic() - t0 < 10.0
            with pytest.raises(RuntimeError, match="broken"):
                cluster.step(1)
        finally:
            cluster.shutdown()
        assert leaked_segments() == []
        _assert_all_dead(pids)


class TestConfigValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ClusterConfig(sub_shape=(8, 8, 8), arrangement=(1, 1, 1),
                          backend="gpu-direct")

    def test_processes_with_timing_only_rejected(self):
        with pytest.raises(ValueError, match="timing_only"):
            ClusterConfig(sub_shape=(8, 8, 8), arrangement=(2, 1, 1),
                          timing_only=True, backend="processes")

    def test_timeout_validated(self):
        with pytest.raises(ValueError, match="backend_timeout_s"):
            ClusterConfig(sub_shape=(8, 8, 8), arrangement=(2, 1, 1),
                          backend="processes", backend_timeout_s=0.0)
