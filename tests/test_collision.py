"""Tests for BGK collision: conservation, relaxation, forcing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lbm.collision import BGKCollision, tau_to_viscosity, viscosity_to_tau
from repro.lbm.equilibrium import equilibrium
from repro.lbm.lattice import D3Q19
from repro.lbm.macroscopic import density, momentum


def _random_f(rng, shape=(4, 4, 4), amp=0.02):
    base = D3Q19.w.reshape(19, 1, 1, 1)
    noise = amp * rng.standard_normal((19,) + shape) * base
    return (base + noise).astype(np.float64)


class TestConservation:
    def test_mass_conserved(self, rng):
        f = _random_f(rng)
        rho0 = density(f).copy()
        BGKCollision(D3Q19, tau=0.7)(f)
        assert np.allclose(density(f), rho0, rtol=1e-12)

    def test_momentum_conserved(self, rng):
        f = _random_f(rng)
        j0 = momentum(D3Q19, f).copy()
        BGKCollision(D3Q19, tau=0.7)(f)
        assert np.allclose(momentum(D3Q19, f), j0, atol=1e-14)

    @given(tau=st.floats(0.51, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_conservation_for_any_tau(self, tau):
        rng = np.random.default_rng(0)
        f = _random_f(rng)
        rho0, j0 = density(f).copy(), momentum(D3Q19, f).copy()
        BGKCollision(D3Q19, tau=tau)(f)
        assert np.allclose(density(f), rho0, rtol=1e-11)
        assert np.allclose(momentum(D3Q19, f), j0, atol=1e-12)


class TestRelaxation:
    def test_equilibrium_is_fixed_point(self, rng):
        rho = rng.uniform(0.9, 1.1, (3, 3, 3))
        u = rng.uniform(-0.05, 0.05, (3, 3, 3, 3)).transpose(3, 0, 1, 2)
        f = equilibrium(D3Q19, rho, u)
        before = f.copy()
        BGKCollision(D3Q19, tau=0.8)(f)
        assert np.allclose(f, before, atol=1e-13)

    def test_tau_one_reaches_equilibrium_in_one_step(self, rng):
        f = _random_f(rng)
        BGKCollision(D3Q19, tau=1.0)(f)
        rho = density(f)
        u = momentum(D3Q19, f) / rho
        feq = equilibrium(D3Q19, rho, u)
        assert np.allclose(f, feq, atol=1e-12)

    def test_nonequilibrium_decays_geometrically(self, rng):
        tau = 2.0
        f = _random_f(rng)
        rho, j = density(f), momentum(D3Q19, f)
        feq = equilibrium(D3Q19, rho, j / rho)
        neq0 = f - feq
        BGKCollision(D3Q19, tau=tau)(f)
        neq1 = f - feq
        assert np.allclose(neq1, (1 - 1 / tau) * neq0, atol=1e-13)

    def test_mask_skips_cells(self, rng):
        f = _random_f(rng)
        frozen = f[:, 0, 0, 0].copy()
        mask = np.ones(f.shape[1:], dtype=bool)
        mask[0, 0, 0] = False
        BGKCollision(D3Q19, tau=0.7)(f, mask=mask)
        assert np.array_equal(f[:, 0, 0, 0], frozen)


class TestForcing:
    def test_force_shifts_momentum_by_f_per_step(self, rng):
        f = _random_f(rng)
        j0 = momentum(D3Q19, f)
        F = np.array([1e-4, -2e-4, 5e-5])
        BGKCollision(D3Q19, tau=0.7, force=F)(f)
        dj = momentum(D3Q19, f) - j0
        for a in range(3):
            assert np.allclose(dj[a], F[a], atol=1e-12)

    def test_force_conserves_mass(self, rng):
        f = _random_f(rng)
        rho0 = density(f).copy()
        BGKCollision(D3Q19, tau=0.7, force=(1e-4, 0, 0))(f)
        assert np.allclose(density(f), rho0, rtol=1e-12)


class TestValidation:
    @pytest.mark.parametrize("tau", [0.5, 0.4, 0.0, -1.0])
    def test_unstable_tau_rejected(self, tau):
        with pytest.raises(ValueError, match="tau"):
            BGKCollision(D3Q19, tau=tau)

    def test_bad_force_shape_rejected(self):
        with pytest.raises(ValueError, match="force"):
            BGKCollision(D3Q19, tau=0.7, force=(1.0, 2.0))

    def test_viscosity_roundtrip(self):
        for nu in (0.01, 0.1, 1.0):
            assert tau_to_viscosity(viscosity_to_tau(nu)) == pytest.approx(nu)

    def test_viscosity_positive(self):
        assert BGKCollision(D3Q19, tau=0.51).viscosity > 0
