"""Tests for trace-driven weighted decomposition (the load-balance loop).

Covers the cut solvers (:mod:`repro.core.decomposition`), the cost
models (:mod:`repro.core.balance`) and the cluster-level guarantee the
whole feature rests on: *any* shared-per-axis cut layout is bit-exact
against the single-domain reference, so rebalancing is purely a
performance decision.  The heavyweight measured-imbalance gate lives in
``python -m repro check-balance``; these tests stay model-driven and
deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ClusterConfig, GPUClusterLBM
from repro.core.balance import (IMBALANCE_TARGET, imbalance,
                                measured_cost_field, occupancy_cost_field,
                                predicted_imbalance, predicted_rank_costs)
from repro.core.decomposition import (BlockDecomposition, partition_axis,
                                      uniform_cuts, weighted_cuts)
from repro.lbm.solver import LBMSolver


class TestPartitionAxis:
    def test_uniform_costs_give_near_equal_cuts(self):
        assert partition_axis(np.ones(16), 4) == (4, 4, 4, 4)
        # Same multiset as uniform_cuts; only the remainder placement
        # differs (greedy fills from the low end).
        assert sorted(partition_axis(np.ones(10), 3)) == \
            sorted(uniform_cuts(10, 3))

    def test_deterministic(self, rng):
        costs = rng.random(40)
        assert partition_axis(costs, 5) == partition_axis(costs.copy(), 5)

    def test_expensive_planes_get_short_chunks(self):
        # First 4 planes carry 10x the cost: the first chunk must be
        # much shorter than the second.
        costs = np.r_[np.full(4, 10.0), np.ones(12)]
        a, b = partition_axis(costs, 2)
        assert a < b
        assert a + b == 16

    def test_zero_cost_region_not_degenerate(self):
        """All-solid slabs with zero modeled weight must still be split
        near-equally, not squeezed to min_extent."""
        assert partition_axis(np.zeros(12), 3) == (4, 4, 4)

    @given(n=st.integers(8, 48), parts=st.integers(1, 4),
           seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_partition_properties(self, n, parts, seed):
        if n < 2 * parts:
            return
        costs = np.random.default_rng(seed).random(n)
        cuts = partition_axis(costs, parts)
        assert len(cuts) == parts
        assert sum(cuts) == n
        assert all(c >= 2 for c in cuts)

    def test_minimises_max_chunk(self):
        costs = np.array([1.0, 1, 1, 1, 9, 1, 1, 1])
        cuts = partition_axis(costs, 2)
        bounds = np.cumsum((0,) + cuts)
        worst = max(costs[a:b].sum() for a, b in zip(bounds, bounds[1:]))
        # Any other legal split must be at least as bad.
        for k in range(2, 7):
            alt = max(costs[:k].sum(), costs[k:].sum())
            assert worst <= alt + 1e-9

    def test_axis_too_short_raises(self):
        with pytest.raises(ValueError, match="too short"):
            partition_axis(np.ones(5), 3)

    def test_negative_cost_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            partition_axis([1.0, -1.0, 1.0, 1.0], 2)

    def test_single_part_returns_whole_axis(self):
        assert partition_axis(np.ones(7), 1) == (7,)


class TestWeightedCuts:
    def test_uniform_field_matches_uniform_cuts(self):
        cuts = weighted_cuts(np.ones((12, 8, 4)), (3, 2, 1))
        assert cuts == (uniform_cuts(12, 3), uniform_cuts(8, 2), (4,))

    def test_dense_half_gets_smaller_blocks(self):
        cost = np.ones((16, 8, 4))
        cost[:8] *= 5.0                    # x-low half is 5x as expensive
        (a, b), ycuts, zcuts = weighted_cuts(cost, (2, 2, 1))
        assert a < b
        assert ycuts == (4, 4) and zcuts == (4,)

    def test_axes_partition_independently(self):
        """Tensor-product restriction: a y-localised hotspot must not
        perturb the x cuts."""
        cost = np.ones((12, 12, 4))
        cost[:, :3] *= 10.0
        xcuts, ycuts, _ = weighted_cuts(cost, (2, 2, 1))
        assert xcuts == (6, 6)
        assert ycuts[0] < ycuts[1]

    def test_non_3d_field_rejected(self):
        with pytest.raises(ValueError, match="3D"):
            weighted_cuts(np.ones((4, 4)), (2, 2, 1))


class TestCostModels:
    def test_occupancy_defaults_to_uniform(self):
        assert (occupancy_cost_field((4, 4, 2)) == 1.0).all()

    def test_occupancy_discounts_solids(self):
        solid = np.zeros((4, 4, 2), bool)
        solid[0] = True
        cost = occupancy_cost_field((4, 4, 2), solid)
        assert (cost[0] < 1.0).all() and (cost[1:] == 1.0).all()

    def test_occupancy_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="solid mask shape"):
            occupancy_cost_field((4, 4, 2), np.zeros((4, 4, 3), bool))

    def test_measured_field_preserves_block_totals(self):
        d = BlockDecomposition((8, 4, 4), (2, 1, 1))
        busy = {0: 0.25, 1: 0.75}
        cost = measured_cost_field(d, busy)
        for b in d.blocks:
            assert cost[b.slices].sum() == pytest.approx(busy[b.rank])

    def test_measured_field_base_shapes_interior(self):
        """With a base field the measured total is distributed by the
        occupancy shape, so the density varies inside a block while the
        block total still equals the measurement."""
        d = BlockDecomposition((8, 4, 4), (2, 1, 1))
        solid = np.zeros((8, 4, 4), bool)
        solid[:2] = True
        base = occupancy_cost_field((8, 4, 4), solid)
        cost = measured_cost_field(d, {0: 1.0, 1: 1.0}, base=base)
        assert cost[0, 0, 0] < cost[3, 0, 0]       # solid planes cheaper
        for b in d.blocks:
            assert cost[b.slices].sum() == pytest.approx(1.0)

    def test_measured_field_missing_rank_raises(self):
        d = BlockDecomposition((8, 4, 4), (2, 1, 1))
        with pytest.raises(ValueError, match="ranks \\[1\\]"):
            measured_cost_field(d, {0: 1.0})

    def test_imbalance_basics(self):
        assert imbalance([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert imbalance([3.0, 1.0]) == pytest.approx(1.5)
        assert imbalance([]) == 0.0

    def test_weighted_cuts_beat_uniform_on_model(self):
        """The modeled rebalance-improves property: re-cutting by the
        occupancy field lowers the predicted imbalance on a skewed
        domain (the measured version is the check-balance gate)."""
        shape, arrangement = (48, 8, 4), (4, 1, 1)
        solid = np.zeros(shape, bool)
        solid[:24] = True                  # half the domain nearly free
        cost = occupancy_cost_field(shape, solid)
        uni = BlockDecomposition(shape, arrangement)
        wei = BlockDecomposition(shape, arrangement,
                                 cuts=weighted_cuts(cost, arrangement))
        assert predicted_imbalance(wei, cost) < predicted_imbalance(uni, cost)
        assert predicted_imbalance(wei, cost) <= IMBALANCE_TARGET
        assert len(predicted_rank_costs(wei, cost)) == 4


def _reference(shape, tau, rng, solid=None, steps=4):
    ref = LBMSolver(shape, tau=tau, solid=solid, periodic=True)
    u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
    if solid is not None:
        u0[:, solid] = 0
    ref.initialize(rho=np.ones(shape, np.float32), u=u0)
    f0 = ref.f.copy()
    ref.step(steps)
    return ref, f0


class TestUnequalCutsBitIdentity:
    """The central guarantee: shared per-axis cuts of *any* profile are
    bit-exact against the single-domain reference on every backend."""

    SHAPE = (16, 12, 4)
    ARRANGEMENT = (2, 2, 1)
    CUTS = ((6, 10), (7, 5), (4,))

    def _solid(self):
        solid = np.zeros(self.SHAPE, bool)
        solid[2:7, 3:9, 1:3] = True
        return solid

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_explicit_unequal_cuts_match_reference(self, rng, backend):
        solid = self._solid()
        ref, f0 = _reference(self.SHAPE, 0.7, rng, solid=solid)
        cfg = ClusterConfig(sub_shape=(8, 6, 4), arrangement=self.ARRANGEMENT,
                            tau=0.7, solid=solid, cuts=self.CUTS,
                            backend=backend, max_workers=4,
                            autotune="heuristic")
        cluster = GPUClusterLBM(cfg)
        try:
            assert cluster.decomp.cuts == self.CUTS
            assert not cluster.decomp.uniform
            cluster.load_global_distributions(f0)
            cluster.step(4)
            assert np.array_equal(cluster.gather_distributions(), ref.f)
        finally:
            cluster.shutdown()

    def test_weighted_decomposition_matches_reference(self, rng):
        """decomposition='weighted' picks non-uniform cuts from the
        occupancy model and still matches the reference bit for bit."""
        solid = np.zeros(self.SHAPE, bool)
        solid[:8] = True                   # x-low half is all obstacle
        ref, f0 = _reference(self.SHAPE, 0.8, rng, solid=solid)
        cfg = ClusterConfig(sub_shape=(8, 6, 4), arrangement=self.ARRANGEMENT,
                            tau=0.8, solid=solid, decomposition="weighted",
                            autotune="heuristic")
        cluster = GPUClusterLBM(cfg)
        uni_x = uniform_cuts(self.SHAPE[0], self.ARRANGEMENT[0])
        assert cluster.decomp.cuts[0] != uni_x     # the model moved a cut
        cluster.load_global_distributions(f0)
        cluster.step(4)
        assert np.array_equal(cluster.gather_distributions(), ref.f)

    def test_all_solid_rank_matches_reference(self, rng):
        """A rank whose whole block is obstacle is the degenerate end
        of the cost model; it must still step bit-exactly."""
        solid = np.zeros(self.SHAPE, bool)
        solid[:6, :7] = True               # exactly rank (0, 0, 0)'s block
        ref, f0 = _reference(self.SHAPE, 0.7, rng, solid=solid, steps=3)
        cfg = ClusterConfig(sub_shape=(8, 6, 4), arrangement=self.ARRANGEMENT,
                            tau=0.7, solid=solid, cuts=self.CUTS,
                            autotune="heuristic")
        cluster = GPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(3)
        assert np.array_equal(cluster.gather_distributions(), ref.f)

    def test_one_cell_slab_rejected(self):
        with pytest.raises(ValueError, match=">= 2"):
            ClusterConfig(sub_shape=(8, 6, 4), arrangement=(2, 2, 1),
                          cuts=((15, 1), (6, 6), (4,)))

    def test_cuts_must_cover_axis(self):
        with pytest.raises(ValueError, match="sums to"):
            ClusterConfig(sub_shape=(8, 6, 4), arrangement=(2, 2, 1),
                          cuts=((6, 8), (6, 6), (4,)))


class TestRebalanceLoop:
    def test_rebalance_recuts_and_preserves_state(self, rng):
        """Closing the loop with an explicit (deterministic) busy-time
        signal: the successor driver gets the asked-for cuts and its
        physics stays bit-identical to the uninterrupted reference."""
        shape = (16, 12, 4)
        solid = np.zeros(shape, bool)
        solid[2:5, 3:9, 1:3] = True
        ref, f0 = _reference(shape, 0.7, rng, solid=solid, steps=6)
        cfg = ClusterConfig(sub_shape=(8, 6, 4), arrangement=(2, 2, 1),
                            tau=0.7, solid=solid, autotune="heuristic")
        cluster = GPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(3)
        # Pretend x-low ranks ran 3x as long as x-high ranks.
        busy = {r: (3.0 if cluster.decomp.blocks[r].lo[0] == 0 else 1.0)
                for r in range(4)}
        asked = cluster.rebalance_cuts(busy_s=busy)
        assert asked[0][0] < asked[0][1]   # slow half shrinks
        cluster, info = cluster.rebalance(busy_s=busy)
        assert info["changed"] and info["new_cuts"] == asked
        assert cluster.decomp.cuts == asked
        cluster.step(3)
        assert cluster.time_step == 6
        assert np.array_equal(cluster.gather_distributions(), ref.f)

    def test_rebalance_noop_when_cuts_already_optimal(self, rng):
        shape = (16, 12, 4)
        cfg = ClusterConfig(sub_shape=(8, 6, 4), arrangement=(2, 2, 1),
                            tau=0.7, autotune="heuristic")
        cluster = GPUClusterLBM(cfg)
        _, f0 = _reference(shape, 0.7, rng, steps=0)
        cluster.load_global_distributions(f0)
        cluster.step(1)
        same = cluster.rebalance_cuts(busy_s={r: 1.0 for r in range(4)})
        successor, info = cluster.rebalance(busy_s={r: 1.0 for r in range(4)})
        assert same == cluster.decomp.cuts
        assert successor is cluster and not info["changed"]

    def test_rebalance_cuts_without_trace_raises(self):
        cfg = ClusterConfig(sub_shape=(8, 6, 4), arrangement=(2, 2, 1),
                            tau=0.7, autotune="heuristic")
        cluster = GPUClusterLBM(cfg)
        with pytest.raises(ValueError, match="enable_tracing"):
            cluster.rebalance_cuts()

    def test_balance_report_surfaces_cuts_and_prediction(self, rng):
        solid = np.zeros((16, 12, 4), bool)
        solid[:8] = True
        cfg = ClusterConfig(sub_shape=(8, 6, 4), arrangement=(2, 2, 1),
                            tau=0.7, solid=solid, decomposition="weighted",
                            autotune="heuristic")
        cluster = GPUClusterLBM(cfg)
        rep = cluster.balance_report()
        assert rep["uniform"] is False
        assert rep["cuts"] == cluster.decomp.cuts
        assert rep["predicted_imbalance"] >= 1.0
        assert rep["measured_imbalance"] is None   # no trace yet
        assert len(rep["rows"]) == 4
        assert all("predicted_cost" in r for r in rep["rows"])
