"""The decomposed-solver-equals-reference guarantees: the central
correctness property of the paper's parallelization (Sec 4.3)."""

import numpy as np
import pytest

from repro.core import ClusterConfig, CPUClusterLBM, GPUClusterLBM
from repro.lbm.boundaries import EquilibriumVelocityInlet, OutflowBoundary
from repro.lbm.lattice import D3Q19
from repro.lbm.solver import LBMSolver


def _reference(shape, tau, rng, solid=None, steps=4, force=None,
               periodic=True, boundaries=(), kernel="auto"):
    ref = LBMSolver(shape, tau=tau, solid=solid, force=force,
                    periodic=periodic, boundaries=list(boundaries),
                    kernel=kernel)
    u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
    if solid is not None:
        u0[:, solid] = 0
    ref.initialize(rho=np.ones(shape, np.float32), u=u0)
    f0 = ref.f.copy()
    ref.step(steps)
    return ref, f0


@pytest.mark.parametrize("arrangement,sub", [
    ((2, 1, 1), (8, 8, 4)),     # 1D
    ((2, 2, 1), (8, 6, 4)),     # 2D (the paper's Table-1 layout)
    ((4, 2, 1), (4, 8, 4)),     # wider 2D
    ((2, 2, 2), (6, 6, 4)),     # 3D
])
class TestGPUClusterEquivalence:
    def test_matches_reference(self, rng, arrangement, sub):
        shape = tuple(s * a for s, a in zip(sub, arrangement))
        solid = np.zeros(shape, bool)
        solid[shape[0] // 3:shape[0] // 3 + 3,
              shape[1] // 2:shape[1] // 2 + 2, 1:3] = True
        ref, f0 = _reference(shape, 0.8, rng, solid=solid)
        cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.8,
                            solid=solid)
        cluster = GPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(4)
        assert np.array_equal(cluster.gather_distributions(), ref.f)


class TestCPUClusterEquivalence:
    def test_matches_reference_2d(self, rng):
        sub, arrangement = (8, 6, 4), (2, 2, 1)
        shape = tuple(s * a for s, a in zip(sub, arrangement))
        solid = np.zeros(shape, bool)
        solid[3:6, 4:7, 1:3] = True
        ref, f0 = _reference(shape, 0.7, rng, solid=solid, steps=5)
        cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.7,
                            solid=solid)
        cluster = CPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(5)
        assert np.array_equal(cluster.gather_distributions(), ref.f)

    def test_gpu_and_cpu_clusters_agree(self, rng):
        sub, arrangement = (6, 6, 4), (2, 2, 1)
        shape = tuple(s * a for s, a in zip(sub, arrangement))
        _, f0 = _reference(shape, 0.8, rng, steps=0)
        cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.8)
        g = GPUClusterLBM(cfg)
        c = CPUClusterLBM(cfg)
        g.load_global_distributions(f0)
        c.load_global_distributions(f0)
        g.step(4)
        c.step(4)
        assert np.array_equal(g.gather_distributions(),
                              c.gather_distributions())


class TestDiagonalRouting:
    def test_corner_data_crosses_diagonally(self):
        """A tagged distribution on a diagonal link placed at a
        sub-domain corner must arrive in the diagonal neighbour after
        one step — through the two-hop indirect route."""
        sub, arrangement = (4, 4, 4), (2, 2, 1)
        shape = (8, 8, 4)
        cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.8)
        cluster = GPUClusterLBM(cfg)
        link = int(D3Q19.edge_links(0, 1, 1, 1)[0])   # c = (1, 1, 0)
        f = np.zeros((19,) + shape, dtype=np.float32)
        # Corner cell of node (0,0): global (3,3,2); equilibrium is not
        # needed — pure streaming test, collide with tau makes it decay,
        # so place a big marker and only check where mass went.
        f[link, 3, 3, 2] = 1.0
        cluster.load_global_distributions(f)
        # Disable collision effects by checking against the reference.
        ref = LBMSolver(shape, tau=0.8)
        ref.f[...] = f
        ref.step(1)
        cluster.step(1)
        out = cluster.gather_distributions()
        assert np.array_equal(out, ref.f)
        # The marker's mass moved into node (1,1)'s block at (4,4,2).
        assert out[link, 4, 4, 2] != 0.0

    def test_many_steps_periodic_wrap(self, rng):
        """Long run: data crosses node boundaries many times and wraps
        around the torus; must still match the reference exactly."""
        sub, arrangement = (4, 4, 2), (2, 2, 2)
        shape = (8, 8, 4)
        ref, f0 = _reference(shape, 0.9, rng, steps=12)
        cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.9)
        cluster = GPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(12)
        assert np.array_equal(cluster.gather_distributions(), ref.f)


_BOUNDED_INLET = (0, "low", (0.04, 0.0, 0.0), 1.0)
_BOUNDED_OUTFLOW = (0, "high")


def _bounded_city(rng, shape=(16, 12, 6), half=False):
    """Voxelized-city solid + bounded inlet/outflow reference pair.

    With ``half`` the city covers only the downstream (high-x) half —
    the occupancy-skewed domain that makes weighted cuts non-uniform.
    """
    from repro.urban.city import times_square_like
    from repro.urban.voxelize import voxelize_city
    if half:
        nx = shape[0] // 2
        city = voxelize_city(times_square_like(seed=7),
                             (nx,) + shape[1:],
                             resolution_m=24.0, ground_layers=2)
        solid = np.zeros(shape, dtype=bool)
        solid[nx:] = city
        solid[:nx, :, :1] = True    # bare ground plane upstream
    else:
        solid = voxelize_city(times_square_like(seed=7), shape,
                              resolution_m=24.0, ground_layers=2)
    bcs = [EquilibriumVelocityInlet(D3Q19, *_BOUNDED_INLET),
           OutflowBoundary(D3Q19, *_BOUNDED_OUTFLOW)]
    ref, f0 = _reference(shape, 0.7, rng, solid=solid, steps=0,
                         periodic=False, boundaries=bcs, kernel="split")
    return solid, ref, f0


class TestBoundedDomain:
    def test_inlet_outflow_cluster_matches_reference(self, rng):
        """Non-periodic domain with the urban-style inlet/outflow."""
        sub, arrangement = (6, 4, 4), (2, 2, 1)
        shape = (12, 8, 4)
        inlet = (0, "high", (-0.04, 0.0, 0.0), 1.0)
        bcs = [EquilibriumVelocityInlet(D3Q19, *inlet),
               OutflowBoundary(D3Q19, 0, "low")]
        ref, f0 = _reference(shape, 0.7, rng, steps=6, periodic=False,
                             boundaries=bcs)
        cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.7,
                            periodic=(False, False, False), inlet=inlet,
                            outflow=(0, "low"))
        cluster = GPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(6)
        assert np.allclose(cluster.gather_distributions(), ref.f, atol=2e-7)

    def test_bounded_aa_matches_reference_all_backends(self, rng):
        """Forced-AA bounded domain (inlet + outflow): the boundary-
        aware reverse protocol must reproduce the reference bits on
        every execution backend, at every step parity."""
        for backend, workers in (("serial", 1), ("threads", 4),
                                 ("processes", 2)):
            solid, ref, f0 = _bounded_city(rng)
            cfg = ClusterConfig(sub_shape=(8, 6, 6), arrangement=(2, 2, 1),
                                tau=0.7, solid=solid, backend=backend,
                                max_workers=workers, kernel="aa",
                                periodic=(False, False, False),
                                inlet=_BOUNDED_INLET,
                                outflow=_BOUNDED_OUTFLOW)
            with CPUClusterLBM(cfg) as cluster:
                cluster.load_global_distributions(f0)
                for step in range(1, 5):
                    ref.step(1)
                    cluster.step(1)
                    assert np.array_equal(cluster.gather_distributions(),
                                          ref.f), (
                        f"bounded AA cluster diverged at step {step} "
                        f"({backend})")
                rows = cluster.kernel_report()
            assert {r["kernel"] for r in rows} == {"aa"}

    def test_bounded_aa_weighted_cuts_match_reference(self, rng):
        """Bounded AA under occupancy-weighted (unequal) cuts: the
        reverse folds and exchanges follow the shifted cut positions."""
        # Dense city downstream, open terrain upstream: the occupancy
        # skew pushes the x cut off centre, so ranks get unequal blocks.
        shape = (16, 12, 6)
        solid, ref, f0 = _bounded_city(rng, shape=shape, half=True)
        cfg = ClusterConfig(sub_shape=(8, 6, 6), arrangement=(2, 2, 1),
                            tau=0.7, solid=solid, kernel="aa",
                            decomposition="weighted",
                            periodic=(False, False, False),
                            inlet=_BOUNDED_INLET, outflow=_BOUNDED_OUTFLOW)
        with CPUClusterLBM(cfg) as cluster:
            assert not cluster.decomp.uniform, \
                "weighted cuts degenerated to uniform on the city mask"
            cluster.load_global_distributions(f0)
            ref.step(4)
            cluster.step(4)
            assert np.array_equal(cluster.gather_distributions(), ref.f)

    def test_macroscopic_gather(self, rng):
        sub, arrangement = (6, 6, 4), (2, 1, 1)
        shape = (12, 6, 4)
        ref, f0 = _reference(shape, 0.8, rng, steps=3)
        cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.8)
        cluster = GPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(3)
        rho_c, u_c = cluster.gather_macroscopic()
        rho_r, u_r = ref.macroscopic()
        assert np.allclose(rho_c, rho_r, rtol=1e-6)
        assert np.allclose(u_c, u_r, atol=1e-6)


class TestSolidHeavyCity:
    """A voxelized-city global domain whose ranks *mix* sparse and
    dense kernels: local solid fractions straddle the threshold, each
    rank selects independently, and the result must still equal the
    single-domain dense reference bit for bit."""

    SHAPE = (24, 20, 4)
    SUB, ARR = (12, 10, 4), (2, 2, 1)

    @classmethod
    def _city(cls):
        from repro.urban.city import times_square_like
        from repro.urban.voxelize import voxelize_city
        return voxelize_city(times_square_like(seed=7), cls.SHAPE,
                             resolution_m=24.0, ground_layers=2)

    @classmethod
    def _mixing_threshold(cls, solid) -> float:
        fracs = sorted(
            float(solid[i * cls.SUB[0]:(i + 1) * cls.SUB[0],
                        j * cls.SUB[1]:(j + 1) * cls.SUB[1]].mean())
            for i in range(2) for j in range(2))
        assert fracs[0] < fracs[-1]
        return (fracs[0] + fracs[-1]) / 2.0

    @pytest.mark.parametrize("backend,workers", [("serial", 1),
                                                 ("threads", 4)])
    def test_mixed_kernels_match_reference(self, rng, backend, workers):
        solid = self._city()
        ref, f0 = _reference(self.SHAPE, 0.7, rng, solid=solid, steps=4,
                             kernel="split")
        cfg = ClusterConfig(sub_shape=self.SUB, arrangement=self.ARR,
                            tau=0.7, solid=solid, backend=backend,
                            max_workers=workers, autotune="heuristic",
                            sparse_threshold=self._mixing_threshold(solid))
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(4)
            got = cluster.gather_distributions()
            kinds = {row["kernel"] for row in cluster.kernel_report()}
        assert np.array_equal(got, ref.f)
        # Ranks above the threshold ran sparse; the rest ran the dense
        # phase-split path (the fused single-pass kernel cannot
        # interleave the halo exchange).
        assert {"sparse", "split"} <= kinds

    def test_all_sparse_ranks_match_reference(self, rng):
        solid = self._city()
        ref, f0 = _reference(self.SHAPE, 0.7, rng, solid=solid, steps=4,
                             kernel="split")
        cfg = ClusterConfig(sub_shape=self.SUB, arrangement=self.ARR,
                            tau=0.7, solid=solid, kernel="sparse")
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(4)
            got = cluster.gather_distributions()
            kinds = {row["kernel"] for row in cluster.kernel_report()}
        assert np.array_equal(got, ref.f)
        assert kinds == {"sparse"}

    def test_no_overlap_protocol_identical(self, rng):
        """overlap=False takes the single collide pass; sparse ranks
        must land on the same bits either way."""
        solid = self._city()
        ref, f0 = _reference(self.SHAPE, 0.7, rng, solid=solid, steps=3,
                             kernel="split")
        threshold = self._mixing_threshold(solid)
        cfg = ClusterConfig(sub_shape=self.SUB, arrangement=self.ARR,
                            tau=0.7, solid=solid, overlap=False,
                            autotune="heuristic",
                            sparse_threshold=threshold)
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(3)
            assert np.array_equal(cluster.gather_distributions(), ref.f)


class TestModes:
    def test_timing_only_has_no_numeric_state(self):
        cfg = ClusterConfig(sub_shape=(8, 8, 8), arrangement=(2, 1, 1),
                            timing_only=True)
        cluster = GPUClusterLBM(cfg)
        cluster.step()
        with pytest.raises(RuntimeError, match="timing_only"):
            cluster.gather_distributions()

    def test_cells_total(self):
        cfg = ClusterConfig(sub_shape=(8, 8, 8), arrangement=(2, 2, 1),
                            timing_only=True)
        assert GPUClusterLBM(cfg).cells_total() == 4 * 512
