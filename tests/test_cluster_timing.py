"""Timing reproduction tests: the shapes of Tables 1-2 and Figs 8-10."""

import numpy as np
import pytest

from repro.perf.metrics import cells_per_second, efficiency, speedup, weak_scaling_speedup
from repro.perf.model import (PAPER_NODE_COUNTS, PAPER_TABLE1, PAPER_TABLE2,
                              cluster_timings, strong_scaling_rows,
                              table1_row, table1_rows, table2_rows)


@pytest.fixture(scope="module")
def rows():
    return {r.nodes: r for r in table1_rows()}


@pytest.fixture(scope="module")
def t2rows():
    return {r.nodes: r for r in table2_rows()}


class TestTable1Anchors:
    def test_single_node_values(self, rows):
        r = rows[1]
        assert r.gpu_total == pytest.approx(214, rel=0.01)
        assert r.cpu_total == pytest.approx(1420, rel=0.01)
        assert r.speedup == pytest.approx(6.64, rel=0.01)

    def test_totals_within_tolerance_of_paper(self, rows):
        """Every simulated Table-1 total within 10% of the published
        value (the known worst case is n=4, see EXPERIMENTS.md)."""
        for n, (cpu, _, _, _, gpu_total, _) in PAPER_TABLE1.items():
            r = rows[n]
            assert r.gpu_total == pytest.approx(gpu_total, rel=0.10), n
            assert r.cpu_total == pytest.approx(cpu, rel=0.02), n

    def test_speedup_plateau_near_five(self, rows):
        for n in (8, 12, 16, 20, 24):
            assert 4.8 < rows[n].speedup < 5.9

    def test_speedup_drops_past_28_nodes(self, rows):
        """Fig 9's knee: network stops being hidden."""
        assert rows[28].speedup < rows[24].speedup
        assert rows[32].speedup < rows[28].speedup
        assert rows[32].speedup == pytest.approx(4.54, rel=0.06)

    def test_agp_plateau_near_50ms(self, rows):
        for n in (12, 16, 20, 24, 28, 30, 32):
            assert rows[n].gpu_agp == pytest.approx(50, rel=0.06)

    def test_agp_small_for_two_nodes(self, rows):
        assert rows[2].gpu_agp == pytest.approx(13, rel=0.15)

    def test_network_fully_overlapped_below_28(self, rows):
        """Fig 8: the non-overlapping remainder appears only at 28+."""
        for n in (2, 4, 8, 12, 16, 20, 24):
            assert rows[n].net_nonoverlap == 0.0
        for n in (28, 30, 32):
            assert rows[n].net_nonoverlap > 0.0

    def test_nonoverlap_equals_excess_over_window(self, rows):
        gpu, _ = cluster_timings(30)
        assert gpu.net_nonoverlap_s == pytest.approx(
            max(0.0, gpu.net_total_s - gpu.overlap_window_s))

    def test_overlap_window_near_120ms(self):
        """'collision operation on inner cells ... takes roughly 120 ms'."""
        gpu, _ = cluster_timings(16)
        assert gpu.overlap_window_s * 1e3 == pytest.approx(120, rel=0.02)

    def test_network_monotone_with_nodes(self, rows):
        nets = [rows[n].net_total for n in PAPER_NODE_COUNTS[1:]]
        assert all(b >= a - 1e-9 for a, b in zip(nets, nets[1:]))


class TestTable2:
    def test_single_node_throughput(self, t2rows):
        # Paper: 2.3M cells/s on one node (80^3 / 214 ms).
        assert t2rows[1].cells_per_s / 1e6 == pytest.approx(2.39, rel=0.02)

    def test_32_node_throughput_near_paper(self, t2rows):
        assert t2rows[32].cells_per_s / 1e6 == pytest.approx(49.2, rel=0.06)

    def test_efficiency_decreases(self, t2rows):
        effs = [t2rows[n].efficiency for n in PAPER_NODE_COUNTS[1:]]
        assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))

    def test_efficiency_endpoints(self, t2rows):
        """Fig 10: ~94% at 2 nodes falling to ~67% at 32."""
        assert t2rows[2].efficiency == pytest.approx(0.935, abs=0.045)
        assert t2rows[32].efficiency == pytest.approx(0.668, abs=0.045)

    def test_matches_published_within_tolerance(self, t2rows):
        for n, (mcells, _, eff) in PAPER_TABLE2.items():
            assert t2rows[n].cells_per_s / 1e6 == pytest.approx(
                mcells, rel=0.15), n


class TestStrongScaling:
    def test_sec44_fixed_problem_size(self):
        """Speedup 5.3 -> 2.4 from 4 to 16 nodes (paper), converging
        toward CPU parity beyond."""
        rows = {r["nodes"]: r for r in strong_scaling_rows()}
        assert rows[4]["speedup"] == pytest.approx(5.3, rel=0.12)
        assert rows[16]["speedup"] == pytest.approx(2.4, rel=0.15)
        assert rows[32]["speedup"] < 1.5
        assert rows[4]["speedup"] > rows[8]["speedup"] > rows[16]["speedup"]


class TestMetrics:
    def test_cells_per_second(self):
        assert cells_per_second(1000, 0.5) == 2000

    def test_speedup(self):
        assert speedup(2.0, 0.5) == 4.0

    def test_weak_scaling(self):
        assert weak_scaling_speedup(20e6, 2e6) == 10.0

    def test_efficiency(self):
        assert efficiency(8.0, 10) == pytest.approx(0.8)

    @pytest.mark.parametrize("fn,args", [
        (cells_per_second, (100, 0)),
        (speedup, (0, 1)),
        (efficiency, (1.0, 0)),
        (weak_scaling_speedup, (1.0, 0)),
    ])
    def test_invalid_inputs_rejected(self, fn, args):
        with pytest.raises(ValueError):
            fn(*args)


class TestNumericModeTimingConsistency:
    def test_numeric_and_timing_modes_agree_on_compute(self):
        """The numeric path's device clock must land near the closed
        model for the same sub-domain (same calibration)."""
        from repro.core import ClusterConfig, GPUClusterLBM
        sub, arrangement = (12, 12, 12), (2, 1, 1)
        num = GPUClusterLBM(ClusterConfig(sub_shape=sub,
                                          arrangement=arrangement, tau=0.8))
        t_num = num.step()
        mod = GPUClusterLBM(ClusterConfig(sub_shape=sub,
                                          arrangement=arrangement, tau=0.8,
                                          timing_only=True))
        t_mod = mod.step()
        # No solid -> numeric path skips bounce passes; allow 25%.
        assert t_num.compute_s == pytest.approx(t_mod.compute_s, rel=0.25)
        assert t_num.agp_s == pytest.approx(t_mod.agp_s, rel=1e-6)
        assert t_num.net_total_s == pytest.approx(t_mod.net_total_s, rel=1e-9)
