"""Tests for the SPMD-over-SimMPI cluster LBM (the paper's MPI shape)."""

import numpy as np
import pytest

from repro.core.cluster_lbm import ClusterConfig, GPUClusterLBM
from repro.core.decomposition import BlockDecomposition
from repro.core.spmd import SPMDClusterLBM
from repro.lbm.solver import LBMSolver
from repro.net.simmpi import SimCluster


def _initial(rng, shape, solid=None):
    ref = LBMSolver(shape, tau=0.8, solid=solid)
    u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
    if solid is not None:
        u0[:, solid] = 0
    ref.initialize(rho=np.ones(shape, np.float32), u=u0)
    return ref.f.copy()


@pytest.mark.parametrize("arrangement,sub", [
    ((2, 1, 1), (6, 8, 4)),
    ((2, 2, 1), (6, 6, 4)),
    ((3, 2, 1), (4, 6, 4)),
    ((2, 2, 2), (4, 4, 4)),
])
def test_spmd_matches_reference_periodic(rng, arrangement, sub):
    shape = tuple(s * a for s, a in zip(sub, arrangement))
    solid = np.zeros(shape, bool)
    solid[1:3, 2:4, 1:3] = True
    f0 = _initial(rng, shape, solid)
    ref = LBMSolver(shape, tau=0.8, solid=solid)
    ref.f[...] = f0
    ref.step(5)
    decomp = BlockDecomposition(shape, arrangement)
    spmd = SPMDClusterLBM(decomp, tau=0.8, solid=solid, f0=f0)
    out, clocks = spmd.run(5)
    assert np.array_equal(out, ref.f)
    assert len(clocks) == decomp.n_nodes


def test_spmd_matches_reference_bounded(rng):
    """Non-periodic global domain (zero-gradient edges)."""
    sub, arrangement = (6, 4, 4), (2, 2, 1)
    shape = (12, 8, 4)
    f0 = _initial(rng, shape)
    ref = LBMSolver(shape, tau=0.7, periodic=False)
    ref.f[...] = f0
    ref.step(4)
    decomp = BlockDecomposition(shape, arrangement,
                                periodic=(False, False, False))
    out, _ = SPMDClusterLBM(decomp, tau=0.7, f0=f0).run(4)
    assert np.array_equal(out, ref.f)


def test_spmd_matches_coordinator_path(rng):
    """The two parallel architectures (coordinator vs SPMD) agree."""
    sub, arrangement = (6, 6, 4), (2, 2, 1)
    shape = (12, 12, 4)
    f0 = _initial(rng, shape)
    cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.8)
    coord = GPUClusterLBM(cfg)
    coord.load_global_distributions(f0)
    coord.step(4)
    decomp = BlockDecomposition(shape, arrangement)
    out, _ = SPMDClusterLBM(decomp, tau=0.8, f0=f0).run(4)
    assert np.array_equal(out, coord.gather_distributions())


def test_spmd_clocks_include_communication(rng):
    """Ranks accumulate simulated network time (more than compute-free
    zero) and stay loosely synchronized by the exchange pattern."""
    sub, arrangement = (6, 6, 4), (2, 2, 1)
    shape = (12, 12, 4)
    f0 = _initial(rng, shape)
    decomp = BlockDecomposition(shape, arrangement)
    cluster = SimCluster(4)
    _, clocks = SPMDClusterLBM(decomp, tau=0.8, f0=f0).run(3, cluster=cluster)
    assert all(c > 0 for c in clocks)
    assert max(clocks) < 10.0   # sane magnitude (simulated seconds)


def test_spmd_single_rank_degenerates_to_reference(rng):
    shape = (8, 8, 4)
    f0 = _initial(rng, shape)
    ref = LBMSolver(shape, tau=0.9)
    ref.f[...] = f0
    ref.step(6)
    decomp = BlockDecomposition(shape, (1, 1, 1))
    out, _ = SPMDClusterLBM(decomp, tau=0.9, f0=f0).run(6)
    assert np.array_equal(out, ref.f)
