"""Direct tests for the macroscopic-moment and analytic-solution helpers."""

import numpy as np
import pytest

from repro.lbm.analytic import (poiseuille_profile, taylor_green_decay_rate,
                                taylor_green_velocity)
from repro.lbm.equilibrium import equilibrium
from repro.lbm.lattice import D2Q9, D3Q19
from repro.lbm.macroscopic import density, macroscopic, momentum


class TestMoments:
    def test_density_of_equilibrium(self, rng):
        rho = rng.uniform(0.8, 1.2, (4, 3, 2))
        u = rng.uniform(-0.05, 0.05, (3, 4, 3, 2))
        f = equilibrium(D3Q19, rho, u)
        assert np.allclose(density(f), rho)

    def test_momentum_of_equilibrium(self, rng):
        rho = rng.uniform(0.8, 1.2, (4, 3, 2))
        u = rng.uniform(-0.05, 0.05, (3, 4, 3, 2))
        f = equilibrium(D3Q19, rho, u)
        assert np.allclose(momentum(D3Q19, f), rho * u, atol=1e-12)

    def test_macroscopic_velocity(self, rng):
        rho = rng.uniform(0.8, 1.2, (4, 4, 4))
        u = rng.uniform(-0.05, 0.05, (3, 4, 4, 4))
        f = equilibrium(D3Q19, rho, u)
        rho2, u2 = macroscopic(D3Q19, f)
        assert np.allclose(rho2, rho)
        assert np.allclose(u2, u, atol=1e-12)

    def test_zero_density_guarded(self):
        f = np.zeros((19, 2, 2, 2), dtype=np.float32)
        rho, u = macroscopic(D3Q19, f)
        assert (rho == 0).all()
        assert (u == 0).all()           # no NaN from 0/0

    def test_d2q9_moments(self, rng):
        rho = rng.uniform(0.9, 1.1, (5, 5))
        u = rng.uniform(-0.05, 0.05, (2, 5, 5))
        f = equilibrium(D2Q9, rho, u)
        rho2, u2 = macroscopic(D2Q9, f)
        assert np.allclose(rho2, rho)
        assert np.allclose(u2, u, atol=1e-12)


class TestAnalytic:
    def test_poiseuille_symmetric_parabola(self):
        prof = poiseuille_profile(10, 1e-6, 0.1)
        assert np.allclose(prof, prof[::-1])
        assert prof.argmax() in (4, 5)
        assert prof.min() > 0

    def test_poiseuille_scales_linearly_with_force(self):
        a = poiseuille_profile(8, 1e-6, 0.1)
        b = poiseuille_profile(8, 2e-6, 0.1)
        assert np.allclose(b, 2 * a)

    def test_poiseuille_scales_inverse_with_viscosity(self):
        a = poiseuille_profile(8, 1e-6, 0.1)
        b = poiseuille_profile(8, 1e-6, 0.2)
        assert np.allclose(a, 2 * b)

    def test_taylor_green_is_divergence_free(self):
        ux, uy = taylor_green_velocity((32, 32), 0.02, 0.0, 0.1)
        div = (np.roll(ux, -1, 0) - np.roll(ux, 1, 0)) / 2 \
            + (np.roll(uy, -1, 1) - np.roll(uy, 1, 1)) / 2
        assert np.abs(div).max() < 1e-3

    def test_taylor_green_decays(self):
        u0, u1 = (taylor_green_velocity((16, 16), 0.02, t, 0.05)[0]
                  for t in (0.0, 50.0))
        assert np.abs(u1).max() < np.abs(u0).max()

    def test_decay_rate_formula(self):
        rate = taylor_green_decay_rate((16, 16), 0.05)
        k2 = 2 * (2 * np.pi / 16) ** 2     # kx^2 + ky^2
        assert rate == pytest.approx(2 * 0.05 * k2)


class TestModelRowValidation:
    def test_strong_scaling_rejects_indivisible(self):
        from repro.perf.model import strong_scaling_rows
        with pytest.raises(ValueError, match="divisible"):
            strong_scaling_rows(global_shape=(150, 160, 80),
                                node_counts=(28,))

    def test_table1_custom_subshape(self):
        from repro.perf.model import table1_row
        small = table1_row(4, sub_shape=(40, 40, 40))
        big = table1_row(4, sub_shape=(80, 80, 80))
        assert small.gpu_compute < big.gpu_compute
