"""Tests for texture memory accounting and stacks (Sec 2 memory limits)."""

import numpy as np
import pytest

from repro.gpu.packing import (D3Q19Packing, PACKED_BYTES_PER_CELL,
                               link_location, max_cubic_lattice, stack_links)
from repro.gpu.specs import GEFORCE_FX_5800_ULTRA, GEFORCE_FX_5900_ULTRA
from repro.gpu.texture import (OutOfTextureMemory, Texture2D, TextureMemory,
                               TextureStack)


class TestTextureMemory:
    def test_accounting(self):
        mem = TextureMemory(1000)
        h = mem.allocate(400)
        assert mem.allocated_bytes == 400
        assert mem.free_bytes == 600
        mem.free(h)
        assert mem.allocated_bytes == 0

    def test_over_allocation_raises(self):
        mem = TextureMemory(100)
        mem.allocate(90)
        with pytest.raises(OutOfTextureMemory):
            mem.allocate(20)

    def test_double_free_raises(self):
        mem = TextureMemory(100)
        h = mem.allocate(10)
        mem.free(h)
        with pytest.raises(KeyError):
            mem.free(h)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            TextureMemory(100).allocate(-1)


class TestTextures:
    def test_texture2d_bytes(self):
        mem = TextureMemory(1 << 20)
        t = Texture2D(mem, 16, 8)
        assert t.nbytes == 16 * 8 * 4 * 4
        assert t.data.shape == (8, 16, 4)
        assert t.data.dtype == np.float32

    def test_stack_bytes_and_release(self):
        mem = TextureMemory(1 << 24)
        s = TextureStack(mem, 10, 10, 5)
        assert mem.allocated_bytes == s.nbytes == 10 * 10 * 5 * 16
        s.release()
        assert mem.allocated_bytes == 0

    def test_stack_slice_is_view(self):
        mem = TextureMemory(1 << 20)
        s = TextureStack(mem, 4, 4, 3)
        s.slice(1)[2, 2, 0] = 5.0
        assert s.data[1, 2, 2, 0] == 5.0


class TestPackedLayout:
    def test_bytes_per_cell(self):
        # 5 f stacks + macro + scratch, RGBA float32.
        assert PACKED_BYTES_PER_CELL == 7 * 16 == 112

    def test_paper_max_lattice_92(self):
        """Sec 2: 'at most 86MB ... our maximum lattice size was 92^3'."""
        n = max_cubic_lattice(GEFORCE_FX_5800_ULTRA.usable_lattice_bytes)
        assert n == 92

    def test_bigger_card_bigger_lattice(self):
        n = max_cubic_lattice(GEFORCE_FX_5900_ULTRA.usable_lattice_bytes)
        assert n > 92

    def test_link_location_round_trip(self):
        seen = set()
        for i in range(19):
            s, ch = link_location(i)
            assert 0 <= s < 5 and 0 <= ch < 4
            seen.add((s, ch))
        assert len(seen) == 19

    def test_stack_links_partition(self):
        all_links = [i for s in range(5) for i in stack_links(s)]
        assert sorted(all_links) == list(range(19))

    def test_link_location_bounds(self):
        with pytest.raises(ValueError):
            link_location(19)
        with pytest.raises(ValueError):
            stack_links(5)


class TestPackingRoundTrip:
    def test_distributions_round_trip(self, rng):
        mem = TextureMemory(1 << 26)
        shape = (6, 5, 4)
        stacks = [TextureStack(mem, 6, 5, 4) for _ in range(5)]
        f = rng.random((19,) + shape).astype(np.float32)
        p = D3Q19Packing()
        p.pack_distributions(f, stacks)
        out = p.unpack_distributions(stacks, shape)
        assert np.array_equal(out, f)

    def test_round_trip_with_offset(self, rng):
        mem = TextureMemory(1 << 26)
        shape = (4, 3, 2)
        stacks = [TextureStack(mem, 6, 5, 4) for _ in range(5)]
        f = rng.random((19,) + shape).astype(np.float32)
        p = D3Q19Packing()
        p.pack_distributions(f, stacks, offset=(1, 1, 1))
        out = p.unpack_distributions(stacks, shape, offset=(1, 1, 1))
        assert np.array_equal(out, f)

    def test_macroscopic_round_trip(self, rng):
        mem = TextureMemory(1 << 26)
        shape = (5, 4, 3)
        stack = TextureStack(mem, 5, 4, 3)
        rho = rng.random(shape).astype(np.float32)
        u = rng.random((3,) + shape).astype(np.float32)
        p = D3Q19Packing()
        p.pack_macroscopic(rho, u, stack)
        rho2, u2 = p.unpack_macroscopic(stack, shape)
        assert np.array_equal(rho2, rho)
        assert np.array_equal(u2, u)

    def test_texture_orientation(self, rng):
        """f[i][x, y, z] must land at stack.data[z, y, x, ch]."""
        mem = TextureMemory(1 << 26)
        shape = (4, 3, 2)
        stacks = [TextureStack(mem, 4, 3, 2) for _ in range(5)]
        f = np.zeros((19,) + shape, dtype=np.float32)
        f[1, 3, 2, 1] = 7.0
        p = D3Q19Packing()
        p.pack_distributions(f, stacks)
        s, ch = link_location(1)
        assert stacks[s].data[1, 2, 3, ch] == 7.0
