"""Tests for the span tracing subsystem (repro.perf.trace).

Covers the ISSUE acceptance criteria: strict no-op behaviour when
disabled, span nesting, cross-process/cross-backend span aggregation,
bit-identical numerics with tracing on, SimMPI message events, export
schema validity, and the derived analytics.  Also covers the
KernelCounters satellite fixes (adaptive report width, documented
merge short-circuit).
"""

import json

import numpy as np
import pytest

from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
from repro.core.decomposition import BlockDecomposition
from repro.core.spmd import SPMDClusterLBM
from repro.lbm.solver import LBMSolver
from repro.net.simmpi import SimCluster
from repro.perf.counters import KernelCounters
from repro.perf.report import (
    trace_imbalance_rows,
    trace_network_summary,
    trace_overlap_rows,
    trace_step_breakdown,
)
from repro.perf.trace import (
    COORDINATOR_RANK,
    NETWORK_RANK,
    NULL_TRACER,
    SIM_CLOCK,
    WALL_CLOCK,
    SpanEvent,
    Tracer,
    _NULL_SPAN,
    disabled_overhead_ns,
    estimate_clock_offset,
    validate_chrome,
)

SUB = (6, 6, 4)
ARR = (2, 1, 1)
SHAPE = tuple(s * a for s, a in zip(SUB, ARR))


def _seed_field():
    rng = np.random.default_rng(5)
    ref = LBMSolver(SHAPE, tau=0.7)
    ref.initialize(rho=np.ones(SHAPE, np.float32),
                   u=(0.02 * rng.standard_normal((3,) + SHAPE)
                      ).astype(np.float32))
    return ref.f.copy()


def _traced_run(backend, steps=2, f0=None, **cfg_kw):
    cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                        backend=backend, **cfg_kw)
    with CPUClusterLBM(cfg) as cluster:
        if f0 is not None:
            cluster.load_global_distributions(f0)
        tracer = cluster.enable_tracing()
        cluster.step(steps)
        out = cluster.gather_distributions().copy()
    return tracer, out


class TestDisabledTracer:
    def test_disabled_span_is_shared_noop(self):
        tr = Tracer(enabled=False)
        s1 = tr.span("a")
        s2 = tr.span("b", step=3, bytes=10)
        assert s1 is s2 is _NULL_SPAN
        with s1:
            pass
        assert tr.events == []

    def test_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.begin_step(7)
        tr.add_span("x", 0.0, 1.0)
        tr.instant("y")
        tr.message(0, 1, 42, 128, 0.0, 0.1)
        assert tr.events == []
        assert tr.drain() == []

    def test_null_tracer_singleton_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_disabled_overhead_under_budget(self):
        # The check-trace gate budget is 25 us/call; the real figure is
        # a few hundred ns.  Use a loose bound to stay CI-safe.
        assert disabled_overhead_ns(calls=5000) < 25_000


class TestSpanRecording:
    def test_span_nesting_containment(self):
        tr = Tracer()
        tr.begin_step(0)
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        # Exit order: inner closes first.
        inner, outer = tr.events
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.t0 <= inner.t0 <= inner.t1 <= outer.t1

    def test_span_metadata_and_step(self):
        tr = Tracer(rank=3)
        tr.begin_step(11)
        with tr.span("k", bytes=64, kernel="fused"):
            pass
        (e,) = tr.events
        assert e.rank == 3 and e.step == 11
        assert e.meta["bytes"] == 64 and e.meta["kernel"] == "fused"
        # Live spans also record the thread-CPU delta for the
        # contention-immune busy-time analytics.
        assert e.meta["cpu_s"] >= 0.0
        assert set(e.meta) == {"bytes", "kernel", "cpu_s"}
        assert e.clock == WALL_CLOCK

    def test_for_rank_views_share_events(self):
        tr = Tracer()
        tr.begin_step(2)
        v0, v1 = tr.for_rank(0), tr.for_rank(1)
        with v0.span("a"):
            pass
        with v1.span("b"):
            pass
        assert [e.rank for e in tr.events] == [0, 1]
        assert all(e.step == 2 for e in tr.events)

    def test_drain_extend_roundtrip_with_offset(self):
        src = Tracer(rank=1)
        src.begin_step(0)
        src.add_span("w", 10.0, 11.0)
        raw = src.drain()
        assert src.events == []
        dst = Tracer()
        dst.extend(raw, offset_s=2.5)
        (e,) = dst.events
        assert e.name == "w" and (e.t0, e.t1) == (12.5, 13.5)

    def test_extend_does_not_rebase_sim_clock(self):
        src = Tracer()
        src.begin_step(0)
        src.add_span("net", 1.0, 2.0, rank=NETWORK_RANK, clock=SIM_CLOCK)
        dst = Tracer()
        dst.extend(src.drain(), offset_s=100.0)
        (e,) = dst.events
        assert (e.t0, e.t1) == (1.0, 2.0)

    def test_extend_rebases_with_negative_offset(self):
        # A worker whose perf_counter clock runs *ahead* of the
        # coordinator's yields a negative offset; re-basing must shift
        # spans backwards, preserving durations and ordering.
        src = Tracer(rank=0)
        src.begin_step(3)
        src.add_span("collide", 100.0, 100.25)
        src.add_span("stream", 100.25, 100.4)
        dst = Tracer()
        dst.extend(src.drain(), offset_s=-97.5)
        a, b = dst.events
        assert (a.t0, a.t1) == pytest.approx((2.5, 2.75))
        assert (b.t0, b.t1) == pytest.approx((2.75, 2.9))
        assert a.t1 - a.t0 == pytest.approx(0.25)

    def test_estimate_clock_offset_signs_and_midpoint(self):
        # Remote clock *behind* local by 10 s: remote reads 5.0 when
        # the local midpoint is 15.0 -> offset +10.
        assert estimate_clock_offset(14.0, 16.0, 5.0) == pytest.approx(10.0)
        # Remote clock *ahead* of local by 10 s -> negative offset.
        assert estimate_clock_offset(14.0, 16.0, 25.0) == pytest.approx(-10.0)
        # Perfectly synchronised clocks -> zero, error bounded by half
        # the round trip regardless of its size.
        assert estimate_clock_offset(10.0, 14.0, 12.0) == pytest.approx(0.0)
        rtt_err = estimate_clock_offset(10.0, 14.0, 10.0)  # sampled at send
        assert abs(rtt_err) <= (14.0 - 10.0) / 2

    def test_extend_tracks_drifting_offsets_per_handshake(self):
        # A remote clock that drifts between handshakes: each batch is
        # re-based with its own freshly estimated offset, so spans land
        # on the local timeline even though the offset changes sign.
        dst = Tracer()
        drifts = (-2.0, 0.5, 3.25)  # remote = local + drift, per batch
        for step, drift in enumerate(drifts):
            local_t0 = 10.0 * step + 1.0
            remote_t0 = local_t0 + drift
            src = Tracer(rank=1)
            src.begin_step(step)
            src.add_span("w", remote_t0, remote_t0 + 0.5)
            # Handshake: remote samples its clock at the local midpoint.
            t_send, t_recv = local_t0 - 0.2, local_t0 + 0.2
            off = estimate_clock_offset(t_send, t_recv, local_t0 + drift)
            assert off == pytest.approx(-drift)
            dst.extend(src.drain(), offset_s=off)
        assert [e.t0 for e in dst.events] == pytest.approx(
            [1.0, 11.0, 21.0])
        assert all(e.t1 - e.t0 == pytest.approx(0.5) for e in dst.events)


class TestChromeExport:
    def test_schema_valid_and_tracks(self, tmp_path):
        tr = Tracer()
        tr.begin_step(0)
        tr.add_span("c", 0.0, 1e-3, rank=COORDINATOR_RANK)
        tr.add_span("a", 0.0, 1e-3, rank=0)
        tr.add_span("b", 0.0, 1e-3, rank=1)
        tr.message(0, 1, 7, 256, 0.0, 1e-4)
        obj = tr.to_chrome()
        assert validate_chrome(obj) == 4
        x = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        # Wall spans under pid 1 (coordinator tid 0, rank r tid r+1);
        # network events under pid 2.
        assert {(e["pid"], e["tid"]) for e in x} >= {(1, 0), (1, 1), (1, 2)}
        assert any(e["pid"] == 2 for e in x)
        p = tmp_path / "t.json"
        tr.write_chrome(p)
        assert validate_chrome(json.loads(p.read_text())) == 4

    def test_jsonl_roundtrip(self, tmp_path):
        tr = Tracer()
        tr.begin_step(4)
        tr.add_span("phase", 0.5, 0.75, rank=2, bytes=99)
        p = tmp_path / "t.jsonl"
        tr.write_jsonl(p)
        rows = [json.loads(line) for line in p.read_text().splitlines()]
        assert rows[0]["name"] == "phase"
        assert rows[0]["rank"] == 2 and rows[0]["step"] == 4
        assert rows[0]["meta"]["bytes"] == 99

    def test_validate_chrome_rejects_bad(self):
        with pytest.raises(ValueError):
            validate_chrome({"nope": []})
        with pytest.raises(ValueError):
            validate_chrome({"traceEvents": [
                {"ph": "X", "name": "a", "pid": 1, "tid": 0,
                 "ts": 0, "dur": 1, "args": {}}]})  # missing args.step


class TestClusterTracing:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_all_backends_emit_per_rank_spans(self, backend):
        kw = {"max_workers": 2} if backend == "threads" else {}
        tracer, _ = _traced_run(backend, **kw)
        ranks = {e.rank for e in tracer.events if e.rank >= 0}
        assert ranks == {0, 1}
        assert {e.rank for e in tracer.events} >= {COORDINATOR_RANK}
        assert validate_chrome(tracer.to_chrome()) == len(tracer.events)

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_tracing_bit_identical(self, backend):
        f0 = _seed_field()
        kw = {"max_workers": 2} if backend == "threads" else {}
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                            backend=backend, **kw)
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(2)
            plain = cluster.gather_distributions().copy()
        _, traced = _traced_run(backend, f0=f0, **kw)
        assert np.array_equal(plain, traced)

    def test_processes_spans_are_rebased(self):
        tracer, _ = _traced_run("processes")
        wall = [e for e in tracer.events if e.clock == WALL_CLOCK]
        # Worker spans must land inside the coordinator's observation
        # window after re-basing (same CLOCK_MONOTONIC on Linux, but
        # the offset path must not corrupt timestamps either).
        t0 = min(e.t0 for e in wall)
        t1 = max(e.t1 for e in wall)
        worker = [e for e in wall if e.rank >= 0]
        assert worker
        assert all(t0 <= e.t0 <= e.t1 <= t1 for e in worker)

    def test_network_rounds_traced_on_sim_clock(self):
        tracer, _ = _traced_run("serial")
        net = [e for e in tracer.events if e.rank == NETWORK_RANK]
        assert any(e.name == "net.phase" for e in net)
        assert any(e.name == "net.round" for e in net)
        assert all(e.clock == SIM_CLOCK for e in net)
        # Phases advance monotonically on the simulated clock.
        phases = sorted((e for e in net if e.name == "net.phase"),
                        key=lambda e: e.t0)
        for a, b in zip(phases, phases[1:]):
            assert b.t0 >= a.t1 - 1e-12


class TestSimMPIMessages:
    def test_spmd_run_records_messages(self):
        decomp = BlockDecomposition(SHAPE, ARR, periodic=(True, True, True))
        tracer = Tracer()
        tracer.begin_step(0)
        sim = SimCluster(decomp.n_nodes, tracer=tracer)
        SPMDClusterLBM(decomp, tau=0.7).run(1, cluster=sim)
        msgs = [e for e in tracer.events if e.name == "mpi.msg"]
        assert msgs
        for e in msgs:
            assert e.clock == SIM_CLOCK
            assert e.meta["bytes"] > 0
            assert 0 <= e.meta["src"] < decomp.n_nodes
            assert 0 <= e.meta["dst"] < decomp.n_nodes
            assert e.meta["src"] != e.meta["dst"]
        # Both ranks of the 2x1x1 decomposition send.
        assert {e.meta["src"] for e in msgs} == set(range(decomp.n_nodes))


class TestAnalytics:
    def _tracer(self):
        tracer, _ = _traced_run("serial", steps=3)
        return tracer

    def test_overlap_rows_bounded(self):
        rows = trace_overlap_rows(self._tracer())
        assert rows
        for r in rows:
            assert 0.0 <= r["efficiency"] <= 1.0
            assert r["hidden_ms"] <= r["exchange_ms"] + 1e-9

    def test_imbalance_summary(self):
        rows, summary = trace_imbalance_rows(self._tracer())
        assert {r["rank"] for r in rows} == {0, 1}
        assert summary["max_over_mean"] >= 1.0
        assert summary["max_ms"] >= summary["mean_ms"]

    def test_step_breakdown_and_network(self):
        tr = self._tracer()
        phases = {r["phase"] for r in trace_step_breakdown(tr)}
        assert "cluster.exchange" in phases
        assert any(p.startswith("solver.") for p in phases)
        # Cluster-only run: scheduled rounds but no per-message events
        # (those come from the SimMPI pass).
        net = trace_network_summary(tr)
        assert net["rounds"] > 0 and net["messages"] == 0

    def test_network_summary_with_messages(self):
        tr = Tracer()
        tr.begin_step(0)
        tr.message(0, 1, 7, 1000, 0.0, 0.002)
        tr.message(1, 0, 7, 500, 0.002, 0.003)
        net = trace_network_summary(tr)
        assert net["messages"] == 2 and net["bytes"] == 1500
        assert net["busy_ms"] == pytest.approx(3.0)

    def test_synthetic_overlap_efficiency(self):
        tr = Tracer()
        tr.begin_step(0)
        # 10 ms exchange, compute covering 6 ms of it => 60%.
        tr.add_span("cluster.exchange", 0.000, 0.010, rank=COORDINATOR_RANK)
        tr.add_span("cluster.collide_inner", 0.002, 0.008, rank=0)
        (row,) = trace_overlap_rows(tr)
        assert row["efficiency"] == pytest.approx(0.6, abs=1e-6)


    def test_kernel_attribution_tracks_changes(self):
        """A rank that flips kernels mid-trace (e.g. after a rebalance
        moved a cut across the sparse threshold) must not be labelled by
        its last step alone: the row carries first/last and a marker."""
        tr = Tracer()
        for step, kern in enumerate(["dense", "dense", "sparse"]):
            tr.begin_step(step)
            tr.add_span("cluster.collide", 0.0, 0.001, rank=0, kernel=kern)
            tr.add_span("cluster.collide", 0.0, 0.001, rank=1,
                        kernel="sparse")
        rows, _ = trace_imbalance_rows(tr)
        flipped = next(r for r in rows if r["rank"] == 0)
        steady = next(r for r in rows if r["rank"] == 1)
        assert flipped["kernel"] == "dense->sparse"
        assert flipped["kernel_first"] == "dense"
        assert flipped["kernel_last"] == "sparse"
        assert flipped["kernel_changed"] is True
        assert steady["kernel"] == "sparse"
        assert steady["kernel_changed"] is False

    def test_busy_prefers_thread_cpu_over_wall(self):
        """When compute spans carry ``cpu_s`` the busy column must sum
        it (contention-immune) instead of unioning wall intervals."""
        tr = Tracer()
        tr.begin_step(0)
        # Wall says 10 ms, but the thread only computed for 2 ms.
        tr.add_span("cluster.collide", 0.0, 0.010, rank=0, cpu_s=0.002)
        tr.add_span("cluster.collide", 0.0, 0.010, rank=1, cpu_s=0.004)
        rows, summary = trace_imbalance_rows(tr)
        busy = {r["rank"]: r["busy_ms"] for r in rows}
        assert busy[0] == pytest.approx(2.0)
        assert busy[1] == pytest.approx(4.0)
        assert summary["max_over_mean"] == pytest.approx(4.0 / 3.0)

    def test_busy_falls_back_to_wall_union(self):
        """Spans without cpu_s (old traces, replayed JSON) keep the
        wall-clock union semantics."""
        tr = Tracer()
        tr.begin_step(0)
        tr.add_span("cluster.collide", 0.000, 0.004, rank=0)
        tr.add_span("cluster.finish", 0.003, 0.006, rank=0)  # overlaps
        rows, _ = trace_imbalance_rows(tr)
        (row,) = rows
        assert row["busy_ms"] == pytest.approx(6.0)


class TestKernelCountersSatellites:
    def test_report_aligns_long_phase_names(self):
        c = KernelCounters()
        c.add("collide", 1e-3)
        c.add("cluster.collide_boundary.very_long_phase_name", 2e-3)
        header, *rows = c.report().splitlines()
        # Numeric columns must start at the same offset on every line.
        anchor = header.index(" calls")
        for row in rows:
            name_field = row[:anchor + 1]
            assert len(name_field) == anchor + 1
        assert all(len(r) == len(header) for r in rows)

    def test_merge_disabled_short_circuit(self):
        worker = KernelCounters()
        worker.add("phase", 1.0, allocs=2)
        coord = KernelCounters(enabled=False)
        coord.merge(worker.summary())
        assert coord.stats == {}
        coord.enabled = True
        coord.merge(worker.summary())
        assert coord.stats["phase"].calls == 1
        assert coord.stats["phase"].allocs == 2

    def test_merge_accumulates_across_ranks(self):
        coord = KernelCounters()
        for _ in range(3):
            w = KernelCounters()
            w.add("x", 0.5)
            coord.merge(w.summary())
        assert coord.stats["x"].calls == 3
        assert coord.stats["x"].seconds == pytest.approx(1.5)


class TestSpanEvent:
    def test_tuple_roundtrip(self):
        e = SpanEvent("n", 4, 9, 1.0, 2.0, SIM_CLOCK, {"k": 1})
        tr = Tracer()
        tr.extend([e.as_tuple()])
        assert tr.events[0] == e
        assert e.duration_s == pytest.approx(1.0)
