"""SimMPI robustness: error aggregation, reuse, nonblocking requests,
and the cost model's degenerate cases.

Regression tests for the failure-masking bugs that blocked the executed
overlap work: ``SimCluster.run`` used to raise only the first rank's
error (hiding concurrent failures), leave hung ranks behind as silent
``None`` results, and permanently break its barrier after any abort;
size-1 collectives charged network time for messages that never touch a
wire, and every probed mailbox key leaked an empty deque.
"""

import threading

import numpy as np
import pytest

from repro.net.simmpi import SimCluster


class TestErrorAggregation:
    def test_all_real_errors_reported(self):
        def main(comm):
            if comm.rank in (0, 2):
                raise ValueError(f"boom-{comm.rank}")
            comm.barrier()

        with pytest.raises(RuntimeError) as exc_info:
            SimCluster(3, timeout_s=2.0).run(main)
        msg = str(exc_info.value)
        assert "rank 0 failed" in msg and "boom-0" in msg
        assert "rank 2 failed" in msg and "boom-2" in msg
        # Rank 1 only suffered the broken barrier; it is not a failure.
        assert "rank 1 failed" not in msg

    def test_cause_chain_points_at_first_real_error(self):
        def main(comm):
            if comm.rank == 1:
                raise KeyError("first")
            comm.barrier()

        with pytest.raises(RuntimeError) as exc_info:
            SimCluster(2, timeout_s=2.0).run(main)
        assert isinstance(exc_info.value.__cause__, KeyError)

    def test_hung_rank_raises_instead_of_none(self):
        release = threading.Event()

        def main(comm):
            if comm.rank == 1:
                release.wait(10.0)  # neither returns nor raises in time
            return comm.rank

        cluster = SimCluster(2, timeout_s=0.3)
        try:
            with pytest.raises(RuntimeError, match="hung"):
                cluster.run(main)
        finally:
            release.set()


class TestReuseAfterFailure:
    def test_cluster_usable_after_worker_exception(self):
        cluster = SimCluster(3, timeout_s=2.0)

        def bad(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="boom"):
            cluster.run(bad)

        def good(comm):
            comm.barrier()
            return comm.allreduce(comm.rank)

        assert cluster.run(good) == [3, 3, 3]

    def test_repeated_failures_then_success(self):
        cluster = SimCluster(2, timeout_s=2.0)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                cluster.run(lambda comm: (_ for _ in ()).throw(ValueError()))
        assert cluster.run(lambda comm: comm.rank) == [0, 1]

    def test_stale_mail_dropped_between_runs(self):
        cluster = SimCluster(2, timeout_s=2.0)

        def leaky(comm):
            # Rank 0 sends a message nobody receives, then rank 1 fails.
            if comm.rank == 0:
                comm.Isend(np.arange(4.0), dest=1, tag=9)
            else:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="boom"):
            cluster.run(leaky)

        def probe(comm):
            if comm.rank == 1:
                return comm.Irecv(source=0, tag=9).test()
            return None

        # The undelivered tag-9 message must not survive into this run.
        assert cluster.run(probe)[1] is False


class TestNonblockingRequests:
    def test_irecv_wait_returns_payload(self):
        def main(comm):
            if comm.rank == 0:
                comm.Isend(np.arange(5.0), dest=1)
                return None
            req = comm.Irecv(source=0)
            return req.wait().sum()

        assert SimCluster(2).run(main)[1] == 10.0

    def test_irecv_defers_clock_to_wait(self):
        def main(comm):
            if comm.rank == 0:
                comm.compute(1e-3)
                comm.Send(np.zeros(1 << 16), dest=1)
                return comm.clock_s
            req = comm.Irecv(source=0)
            posted_clock = comm.clock_s
            payload = req.wait()
            assert payload.shape == (1 << 16,)
            return posted_clock, comm.clock_s

        res = SimCluster(2).run(main)
        posted, waited = res[1]
        assert posted == 0.0          # posting the receive is free
        assert waited > 0.0           # wait() advances to arrival

    def test_compute_between_irecv_and_wait_hides_network(self):
        nbytes_arr = np.zeros(1 << 14)

        def main(comm, hide):
            if comm.rank == 0:
                comm.Send(nbytes_arr, dest=1)
                return comm.clock_s
            req = comm.Irecv(source=0)
            if hide:
                comm.compute(10.0)    # modeled work >> transfer time
            req.wait()
            return comm.clock_s

        overlapped = SimCluster(2).run(main, True)[1]
        assert overlapped == 10.0     # arrival fully hidden by compute

    def test_waitall_orders_payloads(self):
        def main(comm):
            if comm.rank == 0:
                comm.Isend(np.array([1.0]), dest=1, tag=1)
                comm.Isend(np.array([2.0]), dest=1, tag=2)
                return None
            reqs = [comm.Irecv(source=0, tag=2), comm.Irecv(source=0, tag=1)]
            return [float(p[0]) for p in comm.Waitall(reqs)]

        assert SimCluster(2).run(main)[1] == [2.0, 1.0]

    def test_isend_returns_completed_request(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.Isend(np.arange(3.0), dest=1)
                assert req.test()
                assert req.wait() is None
            else:
                comm.Recv(source=0)

        SimCluster(2).run(main)


class TestDegenerateCosts:
    def test_size_one_collectives_are_free(self):
        def main(comm):
            comm.barrier()
            comm.allreduce(np.float64(3.0))
            comm.gather(np.zeros(1000))
            comm.allgather(np.zeros(1000))
            comm.bcast(np.zeros(1000))
            return comm.clock_s

        assert SimCluster(1).run(main) == [0.0]

    def test_multi_rank_collectives_still_charged(self):
        def main(comm):
            comm.barrier()
            comm.allreduce(np.float64(3.0))
            return comm.clock_s

        clocks = SimCluster(2).run(main)
        assert all(c > 0.0 for c in clocks)

    def test_mailbox_table_stays_bounded(self):
        def main(comm):
            if comm.rank == 1:
                for tag in range(200):
                    comm.Irecv(source=0, tag=tag).test()   # probe misses
            comm.barrier()
            if comm.rank == 0:
                comm.Send(np.zeros(1), dest=1, tag=500)
            elif comm.rank == 1:
                comm.Recv(source=0, tag=500)
            comm.barrier()

        cluster = SimCluster(2, timeout_s=5.0)
        cluster.run(main)
        # Probes must not materialise mailboxes, and drained boxes are
        # dropped: after the run the table is empty.
        assert cluster.mail._boxes == {}
