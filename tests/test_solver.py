"""Physics validation of the reference solver (the paper's Sec 4.1 claims)."""

import numpy as np
import pytest

from repro.lbm.analytic import (poiseuille_profile, taylor_green_decay_rate,
                                taylor_green_velocity)
from repro.lbm.boundaries import box_walls
from repro.lbm.collision import tau_to_viscosity
from repro.lbm.solver import LBMSolver


class TestBasics:
    def test_uniform_equilibrium_is_steady(self, small_shape):
        s = LBMSolver(small_shape, tau=0.8)
        f0 = s.f.copy()
        s.step(10)
        assert np.allclose(s.f, f0, atol=1e-6)

    def test_mass_conservation_periodic(self, rng, small_shape):
        s = LBMSolver(small_shape, tau=0.8, dtype=np.float64)
        u0 = 0.03 * rng.standard_normal((3,) + small_shape)
        s.initialize(rho=np.ones(small_shape), u=u0)
        m0 = s.total_mass()
        s.step(50)
        assert s.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_momentum_conservation_periodic(self, rng, small_shape):
        s = LBMSolver(small_shape, tau=0.8, dtype=np.float64)
        u0 = 0.03 * rng.standard_normal((3,) + small_shape)
        s.initialize(rho=np.ones(small_shape), u=u0)
        j0 = (s.f * 1.0).reshape(19, -1).T @ np.zeros(19)  # placeholder
        from repro.lbm.macroscopic import momentum
        from repro.lbm.lattice import D3Q19
        j0 = momentum(D3Q19, s.f).sum(axis=(1, 2, 3))
        s.step(50)
        j1 = momentum(D3Q19, s.f).sum(axis=(1, 2, 3))
        assert np.allclose(j0, j1, atol=1e-10)

    def test_mass_conservation_with_obstacle(self, rng, small_shape, small_solid):
        s = LBMSolver(small_shape, tau=0.8, solid=small_solid, dtype=np.float64)
        u0 = 0.02 * rng.standard_normal((3,) + small_shape)
        u0[:, small_solid] = 0
        s.initialize(rho=np.ones(small_shape), u=u0)
        m0 = s.total_mass() + float(s.f[:, small_solid].sum())
        s.step(50)
        m1 = s.total_mass() + float(s.f[:, small_solid].sum())
        assert m1 == pytest.approx(m0, rel=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LBMSolver((4, 4), tau=0.8)   # 2D shape with D3Q19

    def test_unknown_collision_rejected(self):
        with pytest.raises(ValueError):
            LBMSolver((4, 4, 4), tau=0.8, collision="magic")

    def test_solid_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LBMSolver((4, 4, 4), tau=0.8, solid=np.zeros((3, 3, 3), bool))

    def test_mrt_with_force_rejected(self):
        with pytest.raises(ValueError):
            LBMSolver((4, 4, 4), tau=0.8, collision="mrt", force=(1e-5, 0, 0))


class TestPoiseuille:
    """Body-force channel flow vs the exact parabola — the second-order
    accuracy claim of Sec 4.1."""

    def _solve(self, ny, steps=4000, tau=0.9, F=1e-6):
        shape = (4, ny, 4)
        solid = box_walls(shape, axes=[1])
        s = LBMSolver(shape, tau=tau, solid=solid, force=(F, 0, 0),
                      dtype=np.float64)
        s.step(steps)
        return s.velocity()[0, 2, 1:-1, 2]

    def test_profile_matches_analytic(self):
        ny, F, tau = 18, 1e-6, 0.9
        u = self._solve(ny)
        ref = poiseuille_profile(ny - 2, F, tau_to_viscosity(tau))
        assert np.abs(u - ref).max() / ref.max() < 0.01

    def test_profile_is_symmetric(self):
        u = self._solve(18)
        assert np.allclose(u, u[::-1], rtol=1e-6)

    def test_second_order_convergence(self):
        """Halving the lattice spacing should cut the relative error by
        about 4x (second order).  Accept anything clearly better than
        first order."""
        errs = []
        for ny in (10, 18):
            u = self._solve(ny, steps=6000)
            ref = poiseuille_profile(ny - 2, 1e-6, tau_to_viscosity(0.9))
            errs.append(np.abs(u - ref).max() / ref.max())
        order = np.log(errs[0] / errs[1]) / np.log((18 - 2) / (10 - 2))
        assert order > 1.5


class TestTaylorGreen:
    def test_energy_decay_rate(self):
        tau = 0.9
        nu = tau_to_viscosity(tau)
        nx = ny = 32
        ux, uy = taylor_green_velocity((nx, ny), 0.02, 0.0, nu)
        u0 = np.zeros((3, nx, ny, 1))
        u0[0, :, :, 0], u0[1, :, :, 0] = ux, uy
        s = LBMSolver((nx, ny, 1), tau=tau, dtype=np.float64)
        s.initialize(rho=np.ones((nx, ny, 1)), u=u0)
        E0 = float((s.velocity() ** 2).sum())
        steps = 200
        s.step(steps)
        E1 = float((s.velocity() ** 2).sum())
        rate = -np.log(E1 / E0) / steps
        expected = taylor_green_decay_rate((nx, ny), nu)
        assert rate == pytest.approx(expected, rel=0.02)

    def test_vortex_pattern_preserved(self):
        """The velocity field stays proportional to the initial pattern
        (TG is an exact eigenmode of NS)."""
        tau, nx, ny = 0.8, 24, 24
        nu = tau_to_viscosity(tau)
        ux, uy = taylor_green_velocity((nx, ny), 0.02, 0.0, nu)
        u0 = np.zeros((3, nx, ny, 1))
        u0[0, :, :, 0], u0[1, :, :, 0] = ux, uy
        s = LBMSolver((nx, ny, 1), tau=tau, dtype=np.float64)
        s.initialize(rho=np.ones((nx, ny, 1)), u=u0)
        s.step(100)
        u = s.velocity()[0, :, :, 0]
        corr = np.corrcoef(u.ravel(), ux.ravel())[0, 1]
        assert corr > 0.999


class TestGalilean:
    def test_uniform_advection_is_exact(self):
        """A uniform flow must stay exactly uniform (no spurious
        gradients) — a discrete Galilean invariance check."""
        s = LBMSolver((8, 8, 8), tau=0.7, dtype=np.float64)
        s.initialize(rho=1.0, u=(0.05, -0.02, 0.01))
        s.step(20)
        rho, u = s.macroscopic()
        assert np.allclose(u[0], 0.05, atol=1e-12)
        assert np.allclose(u[1], -0.02, atol=1e-12)
        assert np.allclose(rho, 1.0, atol=1e-12)
