"""Fused vs phase-split step equivalence.

The fused collide-stream kernel must be *bit-identical* to the
phase-split pipeline: the distributed cluster drivers step their nodes
through the split phases with the halo exchange in between, and the
cluster equality tests compare them against ``LBMSolver.step()`` with
``np.array_equal``.  These tests pin that contract directly, across
solids, body forces, inlet/outflow boundaries and both lattices.
"""

import numpy as np
import pytest

from repro.lbm import FusedStepKernel, LBMSolver
from repro.lbm.boundaries import (BouzidiCurvedBoundary,
                                  EquilibriumVelocityInlet, OutflowBoundary,
                                  box_walls)
from repro.lbm.lattice import D2Q9, D3Q19

SHAPE = (12, 10, 8)


def _pair(rng, steps=20, **kw):
    """Step a fused and an unfused solver from the same initial state."""
    fused = LBMSolver(fused=True, **kw)
    split = LBMSolver(fused=False, **kw)
    u0 = (0.03 * rng.standard_normal((fused.lattice.D,) + fused.shape)
          ).astype(np.float32)
    u0[:, fused.solid] = 0
    for s in (fused, split):
        s.initialize(rho=np.ones(s.shape, np.float32), u=u0.copy())
    fused.step(steps)
    split.step(steps)
    return fused, split


class TestFusedEquivalence:
    def test_periodic_plain(self, rng):
        fused, split = _pair(rng, shape=SHAPE, tau=0.7)
        assert fused._fused_kernel is not None
        assert split._fused_kernel is None
        assert np.array_equal(fused.f, split.f)

    def test_periodic_with_solid(self, rng, small_solid):
        fused, split = _pair(rng, shape=(10, 8, 6), tau=0.8, solid=small_solid)
        assert np.array_equal(fused.f, split.f)

    def test_periodic_with_force(self, rng):
        fused, split = _pair(rng, shape=SHAPE, tau=0.7, force=(1e-5, 0, 0))
        assert np.array_equal(fused.f, split.f)

    def test_solid_and_force(self, rng, small_solid):
        fused, split = _pair(rng, shape=(10, 8, 6), tau=0.7,
                             solid=small_solid, force=(1e-5, 0, 0))
        assert np.array_equal(fused.f, split.f)

    def test_inlet_outflow_nonperiodic(self, rng):
        def bcs():
            return [EquilibriumVelocityInlet(D3Q19, 0, "low", (0.05, 0, 0)),
                    OutflowBoundary(D3Q19, 0, "high")]
        fused, split = _pair(rng, shape=SHAPE, tau=0.7, periodic=False,
                             boundaries=bcs())
        assert fused._fused_kernel is not None
        assert np.array_equal(fused.f, split.f)

    def test_inlet_outflow_with_obstacle(self, rng):
        solid = np.zeros(SHAPE, bool)
        solid[4:7, 3:6, 2:5] = True
        def bcs():
            return [EquilibriumVelocityInlet(D3Q19, 0, "low", (0.05, 0, 0)),
                    OutflowBoundary(D3Q19, 0, "high")]
        fused, split = _pair(rng, shape=SHAPE, tau=0.7, periodic=False,
                             boundaries=bcs(), solid=solid)
        assert np.array_equal(fused.f, split.f)

    def test_walled_channel_nonperiodic(self, rng):
        fused, split = _pair(rng, shape=SHAPE, tau=0.6, periodic=False,
                             solid=box_walls(SHAPE, [1, 2]))
        assert np.array_equal(fused.f, split.f)

    def test_d2q9(self, rng):
        fused, split = _pair(rng, shape=(16, 12), tau=0.7, lattice=D2Q9)
        assert np.array_equal(fused.f, split.f)

    def test_tolerance_documented_bound(self, rng):
        """The acceptance bound (rtol 1e-5) holds trivially given bit
        equality; keep it pinned in case the kernel ever loosens."""
        fused, split = _pair(rng, shape=SHAPE, tau=0.7, force=(1e-5, 0, 0))
        np.testing.assert_allclose(fused.f, split.f, rtol=1e-5, atol=0)


class TestFusedMachinery:
    def test_escape_hatch_disables_kernel(self, rng):
        s = LBMSolver(SHAPE, tau=0.7, fused=False)
        s.step(3)
        assert s._fused_kernel is None

    def test_mrt_falls_back_to_phase_split(self):
        s = LBMSolver((8, 8, 8), tau=0.7, collision="mrt")
        s.step(2)
        assert s._fused_kernel is None

    def test_pre_stream_boundary_falls_back(self):
        """Bouzidi snapshots post-collision state, which fusion never
        materialises -- the solver must detect this and fall back."""
        bb = BouzidiCurvedBoundary(D3Q19, [((2, 2, 2), 1, 0.5)], (8, 8, 8))
        s = LBMSolver((8, 8, 8), tau=0.7, boundaries=[bb])
        assert s.fused
        s.step(2)
        assert s._fused_kernel is None

    def test_boundary_added_after_construction_falls_back(self):
        s = LBMSolver((8, 8, 8), tau=0.7)
        s.step(1)
        assert s._fused_kernel is not None
        s.boundaries.append(
            BouzidiCurvedBoundary(D3Q19, [((2, 2, 2), 1, 0.5)], (8, 8, 8)))
        assert s._fused_kernel_for_step() is None

    def test_workspace_reused_across_steps(self):
        s = LBMSolver(SHAPE, tau=0.7)
        s.step(1)
        kern = s._fused_kernel
        rho_buf, u_buf = kern.rho, kern.u
        s.step(5)
        assert s._fused_kernel is kern
        assert kern.rho is rho_buf and kern.u is u_buf
        # allocation counters: workspace allocated exactly once
        assert s.counters.stats["fused.workspace"].allocs == 8

    def test_counters_record_phases(self):
        s = LBMSolver(SHAPE, tau=0.7)
        s.step(4)
        stats = s.counters.stats
        assert stats["fused.relax_stream"].calls == 4
        assert stats["fused.ghosts"].calls == 4
        assert s.counters.total_seconds() > 0
        report = s.counters.report()
        assert "fused.relax_stream" in report

    def test_counters_disabled_short_circuits(self):
        s = LBMSolver(SHAPE, tau=0.7)
        s.counters.enabled = False
        s.step(2)
        assert "fused.relax_stream" not in s.counters.stats

    def test_mass_conserved_fused(self, rng):
        s = LBMSolver(SHAPE, tau=0.7)
        u0 = (0.03 * rng.standard_normal((3,) + SHAPE)).astype(np.float32)
        s.initialize(rho=np.ones(SHAPE, np.float32), u=u0)
        m0 = s.total_mass()
        s.step(10)
        assert s.total_mass() == pytest.approx(m0, rel=1e-5)

    def test_kernel_rejects_non_bgk(self):
        s = LBMSolver((8, 8, 8), tau=0.7, collision="mrt")
        with pytest.raises(TypeError):
            FusedStepKernel(s)


class TestMomentsSlowPath:
    """The guarded-division slow path of ``_moments`` (any rho <= 0
    site) must stay bit-identical to the unfused ``macroscopic()`` and
    allocate nothing per call: the masked writes use preallocated
    ``np.copyto(..., where=)`` buffers, not boolean fancy indexing."""

    SHAPE3 = (12, 10, 8)

    @classmethod
    def _zero_rho_solver(cls, u0, fused=True):
        solid = np.zeros(cls.SHAPE3, bool)
        solid[3:6, 2:5, 1:4] = True   # 3x3x3: one fully-interior core cell
        s = LBMSolver(cls.SHAPE3, tau=0.7, solid=solid, fused=fused)
        v = u0.copy()
        v[:, solid] = 0
        s.initialize(rho=np.ones(cls.SHAPE3, np.float32), u=v)
        # Zero the solid distributions: the block's core cell only ever
        # pulls from solid neighbours, so its rho stays exactly 0 and
        # the slow path runs every step.
        s.f[:, s.solid] = 0
        return s

    @classmethod
    def _u0(cls, rng):
        return (0.03 * rng.standard_normal((3,) + cls.SHAPE3)
                ).astype(np.float32)

    @staticmethod
    def _moments_peak(kern) -> int:
        import tracemalloc
        kern._moments()                 # page everything in first
        tracemalloc.start()
        kern._moments()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    def test_zero_rho_sites_bit_equal(self, rng):
        u0 = self._u0(rng)
        fused = self._zero_rho_solver(u0, fused=True)
        split = self._zero_rho_solver(u0, fused=False)
        fused.step(6)
        split.step(6)
        assert fused._fused_kernel is not None
        assert fused.f[:, 4, 3, 2].sum() == 0.0   # slow path stayed live
        assert np.array_equal(fused.f, split.f)

    def test_moments_slow_path_allocation_free(self, rng):
        slow = self._zero_rho_solver(self._u0(rng))
        fast = LBMSolver(slow.shape, tau=0.7, solid=slow.solid.copy())
        for s in (slow, fast):
            s.step(2)
            s.counters.enabled = False
        kern_slow, kern_fast = slow._fused_kernel, fast._fused_kernel
        kern_slow._moments()
        assert not np.greater(kern_slow.rho, 0).all()   # slow path taken
        kern_fast._moments()
        assert np.greater(kern_fast.rho, 0).all()       # fast path taken
        # Identical transient footprint: the guarded division adds no
        # allocation over the unguarded divide (the old wr[bl] = 1 /
        # u[:, bl] = 0 spellings allocated index lists scaling with the
        # solid count on every call).
        assert self._moments_peak(kern_slow) <= self._moments_peak(kern_fast)


class TestCollisionSatellites:
    def test_all_fluid_mask_equals_none(self, rng):
        """The all-fluid mask path must skip fancy indexing yet match
        the unmasked update exactly."""
        from repro.lbm import BGKCollision
        f = (D3Q19.w.reshape(19, 1, 1, 1)
             * (1 + 0.01 * rng.standard_normal((19, 6, 5, 4)))).astype(np.float32)
        op_a = BGKCollision(D3Q19, tau=0.7)
        op_b = BGKCollision(D3Q19, tau=0.7)
        fa, fb = f.copy(), f.copy()
        op_a(fa, mask=np.ones((6, 5, 4), bool))
        op_b(fb, mask=None)
        assert np.array_equal(fa, fb)

    def test_force_add_vector_cached(self):
        from repro.lbm import BGKCollision
        op = BGKCollision(D3Q19, tau=0.7, force=(1e-5, 0, 2e-5))
        a = op._force_add(np.dtype(np.float32))
        b = op._force_add(np.dtype(np.float32))
        assert a is b
        c64 = op._force_add(np.dtype(np.float64))
        assert c64.dtype == np.float64
        # expected values: w_i * 3 (c_i . F)
        expect = (D3Q19.c.astype(np.float64) @ np.array([1e-5, 0, 2e-5])
                  ) * 3.0 * D3Q19.w
        np.testing.assert_allclose(c64, expect, rtol=1e-12)
