"""Tests for the BGK equilibrium distribution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lbm.equilibrium import equilibrium, equilibrium_site
from repro.lbm.lattice import D2Q9, D3Q19


def _rand_fields(rng, shape):
    rho = rng.uniform(0.8, 1.2, shape)
    u = rng.uniform(-0.08, 0.08, (3,) + shape)
    return rho, u


class TestMoments:
    def test_density_moment(self, rng):
        rho, u = _rand_fields(rng, (5, 4, 3))
        feq = equilibrium(D3Q19, rho, u)
        assert np.allclose(feq.sum(axis=0), rho, rtol=1e-12)

    def test_momentum_moment(self, rng):
        rho, u = _rand_fields(rng, (5, 4, 3))
        feq = equilibrium(D3Q19, rho, u)
        j = np.einsum("qa,q...->a...", D3Q19.c.astype(float), feq)
        assert np.allclose(j, rho * u, rtol=1e-12)

    def test_rest_state_equals_weights(self):
        feq = equilibrium_site(D3Q19, 1.0, (0, 0, 0))
        assert np.allclose(feq, D3Q19.w)

    def test_stress_moment_at_rest(self):
        """Second moment at rest must be the isotropic pressure cs^2 rho."""
        feq = equilibrium_site(D3Q19, 1.0, (0, 0, 0))
        c = D3Q19.c.astype(float)
        p = np.einsum("q,qa,qb->ab", feq, c, c)
        assert np.allclose(p, np.eye(3) / 3.0)

    @given(ux=st.floats(-0.1, 0.1), uy=st.floats(-0.1, 0.1),
           uz=st.floats(-0.1, 0.1),
           rho=st.floats(0.5, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_moments_property(self, ux, uy, uz, rho):
        feq = equilibrium_site(D3Q19, rho, (ux, uy, uz))
        assert feq.sum() == pytest.approx(rho, rel=1e-10)
        j = D3Q19.c.astype(float).T @ feq
        assert np.allclose(j, rho * np.array([ux, uy, uz]), atol=1e-12)


class TestSymmetries:
    def test_velocity_reversal_swaps_opposites(self):
        u = np.array([0.05, -0.02, 0.03])
        f1 = equilibrium_site(D3Q19, 1.0, u)
        f2 = equilibrium_site(D3Q19, 1.0, -u)
        assert np.allclose(f1, f2[D3Q19.opp])

    def test_axis_permutation_symmetry(self):
        """Permuting velocity components permutes distributions
        consistently with the link permutation."""
        f_x = equilibrium_site(D3Q19, 1.0, (0.07, 0, 0))
        f_y = equilibrium_site(D3Q19, 1.0, (0, 0.07, 0))
        # Link pointing +x in f_x must equal link pointing +y in f_y.
        ix = int(np.flatnonzero((D3Q19.c == [1, 0, 0]).all(axis=1))[0])
        iy = int(np.flatnonzero((D3Q19.c == [0, 1, 0]).all(axis=1))[0])
        assert f_x[ix] == pytest.approx(f_y[iy])

    def test_positivity_for_moderate_velocity(self):
        feq = equilibrium_site(D3Q19, 1.0, (0.1, 0.1, 0.1))
        assert (feq > 0).all()


class TestAPI:
    def test_out_buffer_reused(self, rng):
        rho, u = _rand_fields(rng, (4, 4, 4))
        out = np.empty((19, 4, 4, 4))
        res = equilibrium(D3Q19, rho, u, out=out)
        assert res is out

    def test_dtype_preserved(self, rng):
        rho = np.ones((3, 3, 3), dtype=np.float32)
        u = np.zeros((3, 3, 3, 3), dtype=np.float32).reshape(3, 3, 3, 3)
        feq = equilibrium(D3Q19, rho, u)
        assert feq.dtype == np.float32

    def test_wrong_velocity_dim_rejected(self):
        with pytest.raises(ValueError, match="leading dim"):
            equilibrium(D3Q19, np.ones((3, 3, 3)), np.zeros((2, 3, 3, 3)))

    def test_d2q9_supported(self, rng):
        rho = rng.uniform(0.9, 1.1, (6, 5))
        u = rng.uniform(-0.05, 0.05, (2, 6, 5))
        feq = equilibrium(D2Q9, rho, u)
        assert feq.shape == (9, 6, 5)
        assert np.allclose(feq.sum(axis=0), rho)
