"""Tests for the gigabit-switch timing model (Sec 4.3 findings)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.switch import GigabitSwitch
from repro.perf import calibration as cal

FACE = 5 * 80 * 80 * 4   # the paper's 5 N^2 face message at N = 80


@pytest.fixture
def switch():
    return GigabitSwitch()


class TestMessageTime:
    def test_monotone_in_bytes(self, switch):
        assert switch.message_time(2 * FACE) > switch.message_time(FACE)

    @given(a=st.integers(0, 10 ** 7), b=st.integers(0, 10 ** 7))
    @settings(max_examples=30, deadline=None)
    def test_monotonicity_property(self, a, b):
        sw = GigabitSwitch()
        if a <= b:
            assert sw.message_time(a) <= sw.message_time(b)

    def test_overhead_dominates_small_messages(self, switch):
        """Sec 4.3 finding 2: many small messages cost more than their
        bytes — fixed costs dominate."""
        one_big = switch.message_time(10 * FACE)
        ten_small = 10 * switch.message_time(FACE)
        assert ten_small > one_big


class TestRounds:
    def test_empty_round_is_free(self, switch):
        assert switch.round_time([]).seconds == 0.0

    def test_round_grows_with_pairs(self, switch):
        t1 = switch.round_time([FACE]).seconds
        t8 = switch.round_time([FACE] * 8).seconds
        assert t8 > t1

    def test_round_set_by_slowest_pair(self, switch):
        t = switch.round_time([FACE, 4 * FACE, FACE])
        assert t.max_bytes == 4 * FACE
        assert t.seconds > switch.message_time(4 * FACE)

    def test_phase_includes_fixed_overhead(self, switch):
        t = switch.phase_time([[FACE]], nodes=2)
        assert t > cal.NET_PHASE_OVERHEAD_S

    def test_phase_empty_rounds_skipped(self, switch):
        t1 = switch.phase_time([[FACE], [], [], []], nodes=2)
        t2 = switch.phase_time([[FACE]], nodes=2)
        assert t1 == pytest.approx(t2)

    def test_drift_penalty_only_past_free_zone(self, switch):
        rounds = [[FACE] * 12] * 4
        below = switch.phase_time(rounds, nodes=cal.NET_DRIFT_FREE_NODES)
        above = switch.phase_time(rounds, nodes=cal.NET_DRIFT_FREE_NODES + 6)
        assert above > below
        assert above - below == pytest.approx(
            cal.drift_penalty_s(cal.NET_DRIFT_FREE_NODES + 6))


class TestNaiveBaseline:
    def _sends(self, fan_out, nodes=8):
        """Every node sends to `fan_out` distinct destinations."""
        return {src: [((src + k + 1) % nodes, FACE) for k in range(fan_out)]
                for src in range(nodes)}

    def test_scheduled_beats_naive(self, switch):
        """The central Sec 4.3 claim: the scheduled pairwise pattern is
        faster than everyone firing at once."""
        naive = switch.naive_time(self._sends(4), nodes=8)
        rounds = [[FACE] * 4] * 4   # 4 disjoint-pair steps
        sched = switch.phase_time(rounds, nodes=8)
        assert sched < naive

    def test_more_neighbors_cost_more_at_equal_volume(self, switch):
        """Finding 2: equal total bytes, more destinations -> slower."""
        few = switch.naive_time(
            {s: [((s + 1) % 8, 4 * FACE)] for s in range(8)}, nodes=8)
        many = switch.naive_time(self._sends(4), nodes=8)
        assert many > few

    def test_interruptions_hurt(self, switch):
        """Finding 1: a third node sending to a busy port delays it."""
        two_pair = switch.naive_time({0: [(1, FACE)], 2: [(3, FACE)]}, nodes=4)
        third_interrupts = switch.naive_time(
            {0: [(1, FACE)], 2: [(1, FACE)]}, nodes=4)
        assert third_interrupts > two_pair

    def test_empty(self, switch):
        assert switch.naive_time({}, nodes=4) == 0.0


class TestPortReservation:
    def test_disjoint_ports_overlap(self, switch):
        s1 = switch.reserve(1, ready_s=0.0, nbytes=FACE)
        s2 = switch.reserve(2, ready_s=0.0, nbytes=FACE)
        assert s1[0] == s2[0] == 0.0
        assert switch.contention_events == 0

    def test_same_port_serializes(self, switch):
        a = switch.reserve(1, ready_s=0.0, nbytes=FACE)
        b = switch.reserve(1, ready_s=0.0, nbytes=FACE)
        assert b[0] == pytest.approx(a[1])
        assert switch.contention_events == 1

    def test_reset(self, switch):
        switch.reserve(1, 0.0, FACE)
        switch.reserve(1, 0.0, FACE)
        switch.reset()
        assert switch.contention_events == 0
        s = switch.reserve(1, 0.0, FACE)
        assert s[0] == 0.0


class TestDriftPenalty:
    def test_zero_below_threshold(self):
        for n in (2, 8, 16, 24):
            assert cal.drift_penalty_s(n) == 0.0

    def test_monotone_above(self):
        assert (cal.drift_penalty_s(32) > cal.drift_penalty_s(30)
                > cal.drift_penalty_s(28) > 0)


class TestMyrinetSwitch:
    """The Myrinet what-if is a re-parameterised GigabitSwitch: same
    timing structure, same tracing (it used to bypass both)."""

    def _myrinet(self):
        from repro.perf.whatif import MyrinetSwitch
        return MyrinetSwitch()

    def test_scales_shrink_fixed_overheads(self):
        sw = self._myrinet()
        assert sw.message_overhead_scale == pytest.approx(0.1)
        assert sw.phase_overhead_scale == pytest.approx(0.1)
        assert sw.drift_scale == pytest.approx(0.1)
        assert sw.message_time(FACE) < GigabitSwitch().message_time(FACE)

    def test_no_overrides_left(self):
        """The refactor's point: Myrinet must inherit the base methods,
        so tracing and future timing changes apply to both fabrics."""
        from repro.perf.whatif import MyrinetSwitch
        for name in ("message_time", "phase_time", "round_time",
                     "naive_time"):
            assert name not in vars(MyrinetSwitch)

    def test_traced_phase_emits_rounds_and_advances_clock(self):
        from repro.perf.trace import SIM_CLOCK, Tracer
        sw = self._myrinet()
        sw.tracer = Tracer()
        rounds = [[FACE, FACE], [FACE]]
        t = sw.phase_time(rounds, nodes=4)
        assert t > 0.0
        names = [e.name for e in sw.tracer.events]
        assert names.count("net.round") == 2
        assert names.count("net.phase") == 1
        assert all(e.clock == SIM_CLOCK for e in sw.tracer.events)
        assert sw._trace_clock_s == pytest.approx(t)
        phase = [e for e in sw.tracer.events if e.name == "net.phase"][0]
        assert phase.t1 - phase.t0 == pytest.approx(t)
        # A second phase starts where the first ended.
        sw.phase_time(rounds, nodes=4)
        assert sw._trace_clock_s == pytest.approx(2 * t)

    def test_untraced_time_unchanged_by_tracing(self):
        from repro.perf.trace import Tracer
        rounds = [[FACE, 2 * FACE], [FACE]]
        quiet = self._myrinet().phase_time(rounds, nodes=8)
        traced_sw = self._myrinet()
        traced_sw.tracer = Tracer()
        assert traced_sw.phase_time(rounds, nodes=8) == quiet

    def test_gbe_scales_default_to_unity(self):
        sw = GigabitSwitch()
        assert (sw.message_overhead_scale, sw.phase_overhead_scale,
                sw.drift_scale) == (1.0, 1.0, 1.0)
