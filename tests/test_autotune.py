"""Measured/heuristic kernel autotuning: boundary and determinism tests.

Covers the ``kernel="auto"`` selection boundaries ISSUE 6 pins: a solid
fraction *exactly* at ``sparse_threshold`` (the heuristic rule is
``>=``), all-fluid and all-solid sub-domains, the deterministic
margin/priority tie-break of the measured probe, and the decision cache
that keeps a many-rank cluster from probing once per rank.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lbm import (LBMSolver, choose_kernel, clear_autotune_cache)
from repro.lbm import autotune
from repro.lbm.autotune import (MARGIN, PRIORITY, candidate_kernels,
                                candidate_pairs, rate_key,
                                _active_faces, _probe_shape)
from repro.lbm.boundaries import EquilibriumVelocityInlet, OutflowBoundary
from repro.lbm.lattice import D3Q19

SHAPE = (10, 10, 4)  # 400 cells: exact halves are representable


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_autotune_cache()
    yield
    clear_autotune_cache()


def _solver(n_solid: int = 0, shape=SHAPE, **kwargs):
    solid = np.zeros(shape, bool)
    solid.reshape(-1)[:n_solid] = True
    return LBMSolver(shape, tau=0.7, solid=solid, **kwargs)


class TestHeuristicBoundary:
    def test_exactly_at_threshold_picks_sparse(self):
        s = _solver(n_solid=200, kernel="auto", sparse_threshold=0.5)
        assert s.solid_fraction == 0.5
        s.step(1)
        assert s.kernel_used == "sparse"
        assert ">= sparse_threshold" in s.kernel_reason

    def test_just_below_threshold_picks_fused(self):
        s = _solver(n_solid=199, kernel="auto", sparse_threshold=0.5)
        s.step(1)
        assert s.kernel_used == "fused"
        assert "< sparse_threshold" in s.kernel_reason

    def test_invalid_autotune_rejected(self):
        with pytest.raises(ValueError, match="autotune"):
            LBMSolver(SHAPE, tau=0.7, autotune="fastest")


class TestOccupancyExtremes:
    def test_all_fluid_excludes_sparse_candidate(self):
        s = _solver(n_solid=0, kernel="auto", autotune="measured")
        assert "sparse" not in candidate_kernels(s)
        s.step(2)
        assert s.kernel_used in ("aa", "fused", "split")
        assert s.kernel_reason.startswith("measured:")

    def test_all_solid_probe_picks_sparse(self):
        # With every site solid the compacted kernel does (almost) no
        # work while the dense candidates sweep every cell; at this size
        # the probe's verdict is decisive, not a timing race.
        shape = (32, 32, 16)
        s = _solver(n_solid=int(np.prod(shape)), shape=shape,
                    kernel="auto", autotune="measured")
        assert s.solid_fraction == 1.0
        s.step(2)
        assert s.kernel_used == "sparse"
        assert s.kernel_rates["sparse"] == max(s.kernel_rates.values())

    def test_all_solid_choice_agrees_across_backends(self):
        from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
        shape = (32, 32, 8)
        solid = np.ones(shape, bool)
        per_backend = {}
        for backend in ("serial", "processes"):
            clear_autotune_cache()
            cfg = ClusterConfig(sub_shape=(16, 32, 8), arrangement=(2, 1, 1),
                                tau=0.7, solid=solid, backend=backend,
                                kernel="auto", autotune="measured")
            with CPUClusterLBM(cfg) as cluster:
                cluster.step(2)
                rows = cluster.kernel_report()
            per_backend[backend] = [r["kernel"] for r in rows]
            for row in rows:
                assert row["reason"].startswith("measured:")
        assert per_backend["serial"] == per_backend["processes"]
        assert set(per_backend["serial"]) == {"sparse"}


class TestMeasuredDeterminism:
    """Pin the margin/priority rule with a deterministic fake probe."""

    def _measured(self, rates, monkeypatch):
        monkeypatch.setattr(autotune, "_probe_rates",
                            lambda solver, cands: dict(rates))
        s = _solver(n_solid=0, kernel="auto", autotune="measured")
        return choose_kernel(s)

    def test_margin_keeps_earlier_priority_kernel(self, monkeypatch):
        # aa is within 8% of the best rate, so priority wins the tie.
        choice = self._measured({"aa": 9.3, "fused": 10.0}, monkeypatch)
        assert choice.kernel == "aa"
        assert choice.probed

    def test_decisive_win_displaces_priority(self, monkeypatch):
        choice = self._measured({"aa": 5.0, "fused": 10.0, "split": 3.0},
                                monkeypatch)
        assert choice.kernel == "fused"
        assert "MLUPS" in choice.reason

    def test_same_domain_same_choice_across_runs(self):
        shape = (32, 32, 16)
        chosen = {}
        for run in range(2):
            clear_autotune_cache()
            s = _solver(n_solid=int(np.prod(shape)), shape=shape,
                        kernel="auto", autotune="measured")
            s.step(1)
            chosen[run] = s.kernel_used
        assert chosen[0] == chosen[1] == "sparse"

    def test_priority_and_margin_constants(self):
        assert PRIORITY == ("aa", "fused", "sparse", "split")
        assert 0.9 <= MARGIN < 1.0


class TestCacheAndProbeShape:
    def test_second_same_shaped_solver_hits_cache(self):
        a = _solver(n_solid=400, kernel="auto", autotune="measured")
        a.step(1)
        assert "autotune.probe" in a.counters.summary()
        b = _solver(n_solid=400, kernel="auto", autotune="measured")
        b.step(1)
        summary = b.counters.summary()
        assert "autotune.cached" in summary
        assert "autotune.probe" not in summary
        assert b.kernel_used == a.kernel_used
        assert b.kernel_reason == a.kernel_reason
        assert b.kernel_rates == a.kernel_rates

    def test_single_candidate_skips_probe(self):
        # A phase-driven, low-occupancy rank has only the split path:
        # the autotuner must not pay for a probe with nothing to decide.
        s = _solver(n_solid=0, kernel="auto", autotune="measured")
        s.phase_driven = True
        assert candidate_kernels(s) == ("split",)
        choice = choose_kernel(s)
        assert choice.kernel == "split"
        assert not choice.probed
        assert "only candidate" in choice.reason

    def test_probe_shape_crops_to_budget(self):
        assert _probe_shape((64, 64, 64)) == (32, 32, 32)
        assert _probe_shape((24, 20, 4)) == (24, 20, 4)
        nx, ny, nz = _probe_shape((512, 8, 8))
        assert nx * ny * nz <= autotune.PROBE_MAX_CELLS

    def test_probe_shape_never_crops_away_boundary_faces(self):
        # Free axes absorb the whole crop; the inlet/outflow axis keeps
        # its full extent so both handlers stay inside the probe.
        both = ((0, "low"), (0, "high"))
        shape = _probe_shape((256, 32, 32), both)
        assert shape[0] == 256
        assert int(np.prod(shape)) <= autotune.PROBE_MAX_CELLS
        # With a face on only one side the axis may shrink (the crop is
        # anchored to that side), but only after the free axes are
        # exhausted.
        shape = _probe_shape((65536, 2, 2), ((0, "low"),))
        assert shape == (8192, 2, 2)
        # Faces on both sides of the only croppable axis: the budget is
        # unreachable and the shape is returned whole rather than a
        # face being sliced off.
        assert _probe_shape((65536, 2, 2), both) == (65536, 2, 2)

    def test_active_faces_and_probe_crop_keep_handlers(self):
        bcs = [EquilibriumVelocityInlet(D3Q19, 0, "low", (0.04, 0, 0), 1.0),
               OutflowBoundary(D3Q19, 0, "high")]
        s = LBMSolver((64, 64, 16), tau=0.7, periodic=False, boundaries=bcs,
                      kernel="auto", autotune="measured")
        assert _active_faces(s) == ((0, "low"), (0, "high"))
        pshape = _probe_shape(s.shape, _active_faces(s))
        assert pshape[0] == 64  # the bounded axis survives the crop
        assert int(np.prod(pshape)) <= autotune.PROBE_MAX_CELLS

    def test_bc_signature_separates_cached_decisions(self):
        # Same shape and occupancy, different boundary configuration:
        # the bounded solver must probe for itself, not inherit the
        # periodic box's cached decision.
        a = _solver(n_solid=0, kernel="auto", autotune="measured")
        a.step(1)
        assert "autotune.probe" in a.counters.summary()
        bcs = [EquilibriumVelocityInlet(D3Q19, 0, "low", (0.04, 0, 0), 1.0),
               OutflowBoundary(D3Q19, 0, "high")]
        b = LBMSolver(SHAPE, tau=0.7, periodic=False, boundaries=bcs,
                      kernel="auto", autotune="measured")
        b.step(1)
        summary = b.counters.summary()
        assert "autotune.probe" in summary
        assert "autotune.cached" not in summary

    def test_measured_auto_bit_identical_to_split(self):
        from repro.urban.city import times_square_like
        from repro.urban.voxelize import voxelize_city
        shape = (16, 12, 6)
        solid = voxelize_city(times_square_like(seed=7), shape,
                              resolution_m=24.0, ground_layers=2)
        rng = np.random.default_rng(3)
        u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
        u0[:, solid] = 0
        ref = LBMSolver(shape, tau=0.7, solid=solid, kernel="split")
        auto = LBMSolver(shape, tau=0.7, solid=solid, kernel="auto",
                         autotune="measured")
        for s in (ref, auto):
            s.initialize(rho=np.ones(shape, np.float32), u=u0)
        ref.step(6)
        auto.step(6)
        assert np.array_equal(auto.f, ref.f)


class TestLayoutAxis:
    """The SoA/AoS layout as a second autotune axis."""

    def test_candidate_pairs_expand_layouts_only_on_auto(self):
        s = _solver(n_solid=0, kernel="auto", autotune="measured",
                    layout="auto")
        pairs = candidate_pairs(s)
        for k in autotune.LAYOUT_KERNELS:
            if k in candidate_kernels(s):
                assert (k, "soa") in pairs and (k, "aos") in pairs
        fixed = _solver(n_solid=0, kernel="auto", autotune="measured")
        assert all(layout == "soa" for _, layout in candidate_pairs(fixed))

    def test_rate_key_convention(self):
        assert rate_key("aa", "soa") == "aa"
        assert rate_key("fused", "aos") == "fused/aos"

    def test_aos_win_switches_layout(self, monkeypatch):
        monkeypatch.setattr(autotune, "_probe_rates",
                            lambda solver, cands: {"aa": 5.0, "aa/aos": 10.0,
                                                   "fused": 4.0, "split": 1.0})
        s = _solver(n_solid=0, kernel="auto", autotune="measured",
                    layout="auto")
        s.step(2)
        assert s.kernel_used == "aa"
        assert s.layout == "aos"
        assert "aa/aos" in s.kernel_reason

    def test_layout_auto_bit_identical_to_split(self):
        rng = np.random.default_rng(11)
        shape = (12, 10, 6)
        u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
        ref = LBMSolver(shape, tau=0.7, kernel="split")
        auto = LBMSolver(shape, tau=0.7, kernel="auto", autotune="measured",
                         layout="auto")
        for s in (ref, auto):
            s.initialize(rho=np.ones(shape, np.float32), u=u0)
        ref.step(6)
        auto.step(6)
        assert np.array_equal(auto.f, ref.f)

    def test_cluster_layout_auto_flows_into_reports(self):
        from repro.core.balance import rate_for_row
        from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
        cfg = ClusterConfig(sub_shape=(8, 6, 6), arrangement=(2, 1, 1),
                            tau=0.7, kernel="aa", layout="auto",
                            autotune="measured")
        with CPUClusterLBM(cfg) as cluster:
            cluster.step(2)
            rows = cluster.kernel_report()
            report = cluster.balance_report()
        for row in rows:
            assert row["layout"] in ("soa", "aos")
            # The forced-kernel layout probe measured both variants.
            assert set(row["rates"]) == {"aa", "aa/aos"}
            assert rate_for_row(row) == row["rates"][
                rate_key(row["kernel"], row["layout"])]
        # balance_report refines predicted cost from the pair rate.
        for row in report["rows"]:
            assert row["predicted_cost"] == pytest.approx(
                row["cells"] / (rate_for_row(row) * 1e6))

    def test_rate_for_row_pair_lookup_and_fallback(self):
        from repro.core.balance import rate_for_row
        row = {"kernel": "aa", "layout": "aos",
               "rates": {"aa": 5.0, "aa/aos": 8.0}}
        assert rate_for_row(row) == 8.0
        assert rate_for_row({**row, "layout": "soa"}) == 5.0
        # Pre-layout reports (no pair key) fall back to the bare kernel.
        assert rate_for_row({"kernel": "aa", "layout": "aos",
                             "rates": {"aa": 5.0}}) == 5.0
        assert rate_for_row({"kernel": "aa", "rates": {}}) is None
