"""Tests for streamlines and volume rendering."""

import numpy as np
import pytest

from repro.viz import (emission_absorption, max_intensity_projection,
                       seed_streamlines, trace_streamline, write_pgm,
                       write_ppm)
from repro.viz.volume import colorize_vertical


def _uniform_field(shape, v):
    u = np.zeros((3,) + shape)
    for a in range(3):
        u[a] = v[a]
    return u


class TestStreamlines:
    def test_follows_uniform_flow(self):
        u = _uniform_field((20, 10, 10), (1.0, 0.0, 0.0))
        pts, vert = trace_streamline(u, (2.0, 5.0, 5.0), n_steps=10, h=1.0)
        assert len(pts) == 10
        assert (np.diff(pts[:, 0]) > 0.9).all()
        assert np.allclose(pts[:, 1], 5.0, atol=1e-9)
        assert (vert == 0).all()

    def test_vertical_fraction(self):
        u = _uniform_field((10, 10, 10), (1.0, 0.0, 1.0))
        _, vert = trace_streamline(u, (2.0, 5.0, 2.0), n_steps=5)
        assert np.allclose(vert, 1 / np.sqrt(2), atol=1e-9)

    def test_stops_at_domain_exit(self):
        u = _uniform_field((8, 8, 8), (1.0, 0.0, 0.0))
        pts, _ = trace_streamline(u, (6.0, 4.0, 4.0), n_steps=100, h=1.0)
        assert len(pts) < 100
        assert (pts[:, 0] <= 7.0).all()

    def test_stops_in_solid(self):
        u = _uniform_field((12, 8, 8), (1.0, 0.0, 0.0))
        solid = np.zeros((12, 8, 8), bool)
        solid[6:, :, :] = True
        pts, _ = trace_streamline(u, (1.0, 4.0, 4.0), n_steps=100, h=1.0,
                                  solid=solid)
        assert pts[:, 0].max() < 6.5

    def test_stops_at_stagnation(self):
        u = _uniform_field((8, 8, 8), (0.0, 0.0, 0.0))
        pts, _ = trace_streamline(u, (4.0, 4.0, 4.0), n_steps=50)
        assert len(pts) == 0

    def test_seed_streamlines_yields_lines(self):
        u = _uniform_field((16, 12, 8), (-1.0, 0.0, 0.0))
        lines = seed_streamlines(u, n=10, n_steps=40)
        assert len(lines) == 10
        for pts, vert in lines:
            assert len(pts) == len(vert) > 3


class TestVolume:
    def test_mip(self):
        vol = np.zeros((4, 5, 6))
        vol[2, 3, 4] = 7.0
        img = max_intensity_projection(vol, axis=2)
        assert img.shape == (4, 5)
        assert img[2, 3] == 7.0

    def test_emission_absorption_positive_and_bounded(self, rng):
        vol = rng.random((6, 6, 6))
        img = emission_absorption(vol, axis=2)
        assert img.shape == (6, 6)
        assert (img >= 0).all()
        assert np.isfinite(img).all()

    def test_opaque_foreground_hides_background(self):
        vol = np.zeros((1, 1, 4))
        vol[0, 0, 0] = 100.0     # dense slab in front
        vol[0, 0, 3] = 100.0
        front_only = vol.copy()
        front_only[0, 0, 3] = 0.0
        a = emission_absorption(vol, axis=2, absorption=5.0)
        b = emission_absorption(front_only, axis=2, absorption=5.0)
        assert a[0, 0] == pytest.approx(b[0, 0], rel=1e-3)

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            max_intensity_projection(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            emission_absorption(np.zeros((4, 4)))

    def test_colorize_vertical_endpoints(self):
        assert colorize_vertical(0.0) == (0.0, 0.0, 1.0)   # blue
        assert colorize_vertical(1.0) == (1.0, 1.0, 1.0)   # white


class TestImageIO:
    def test_pgm_header_and_size(self, tmp_path, rng):
        img = rng.random((10, 14))
        p = tmp_path / "x.pgm"
        write_pgm(str(p), img)
        data = p.read_bytes()
        assert data.startswith(b"P5\n14 10\n255\n")
        assert len(data) == len(b"P5\n14 10\n255\n") + 140

    def test_ppm_header_and_size(self, tmp_path, rng):
        img = rng.random((6, 8, 3))
        p = tmp_path / "x.ppm"
        write_ppm(str(p), img)
        data = p.read_bytes()
        assert data.startswith(b"P6\n8 6\n255\n")
        assert len(data) == len(b"P6\n8 6\n255\n") + 6 * 8 * 3

    def test_constant_image_ok(self, tmp_path):
        write_pgm(str(tmp_path / "c.pgm"), np.ones((4, 4)))

    def test_ppm_shape_validated(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(str(tmp_path / "bad.ppm"), np.zeros((4, 4)))
