"""Tests for the indirection-texture unstructured-grid method (Sec 6)."""

import numpy as np
import pytest

from repro.gpu.device import SimulatedGPU
from repro.solvers.unstructured import IndirectionTextureGrid, build_disk_mesh


@pytest.fixture(scope="module")
def mesh():
    return build_disk_mesh(5, seed=3)


class TestMesh:
    def test_connected_and_symmetric(self, mesh):
        pts, adj = mesh
        assert len(pts) == len(adj)
        for p, nbrs in enumerate(adj):
            for q in nbrs:
                assert p in adj[q]

    def test_irregular_valence(self, mesh):
        _, adj = mesh
        degrees = {len(a) for a in adj}
        assert len(degrees) > 1           # genuinely unstructured

    def test_no_self_loops(self, mesh):
        _, adj = mesh
        for p, nbrs in enumerate(adj):
            assert p not in nbrs


class TestIndirectionGrid:
    def test_load_read_round_trip(self, mesh, rng):
        _, adj = mesh
        g = IndirectionTextureGrid(adj)
        x = rng.random(len(adj)).astype(np.float32)
        g.load(x)
        assert np.array_equal(g.read(), x)

    def test_smooth_matches_reference(self, mesh, rng):
        _, adj = mesh
        g = IndirectionTextureGrid(adj)
        x = rng.random(len(adj)).astype(np.float32)
        g.load(x)
        g.smooth(6, lam=0.4)
        ref = g.reference_smooth(x, adj, 6, lam=0.4)
        assert np.allclose(g.read(), ref, atol=1e-6)

    def test_two_fetches_per_neighbor_declared(self, mesh):
        """Sec 6: 'accessing neighbor variables will require two
        texture fetch operations'."""
        _, adj = mesh
        g = IndirectionTextureGrid(adj)
        max_deg = max(len(a) for a in adj)
        assert g._program.tex_fetches == 2 * max_deg + 1

    def test_smoothing_contracts_range(self, mesh, rng):
        _, adj = mesh
        g = IndirectionTextureGrid(adj)
        x = rng.random(len(adj)).astype(np.float32)
        g.load(x)
        g.smooth(40, lam=0.5)
        out = g.read()
        assert out.max() - out.min() < x.max() - x.min()

    def test_constant_field_is_fixed_point(self, mesh):
        _, adj = mesh
        g = IndirectionTextureGrid(adj)
        g.load(np.full(len(adj), 2.5, dtype=np.float32))
        g.smooth(5)
        assert np.allclose(g.read(), 2.5, atol=1e-6)

    def test_time_charged_on_device(self, mesh, rng):
        _, adj = mesh
        dev = SimulatedGPU(enforce_memory=False)
        g = IndirectionTextureGrid(adj, device=dev)
        g.load(rng.random(len(adj)).astype(np.float32))
        g.smooth(3)
        assert dev.clock_s > 0
        assert dev.pass_counts["unstructured-diffuse"] == 3

    def test_bad_value_shape_rejected(self, mesh):
        _, adj = mesh
        g = IndirectionTextureGrid(adj)
        with pytest.raises(ValueError):
            g.load(np.zeros(3, dtype=np.float32))

    def test_edgeless_graph_rejected(self):
        with pytest.raises(ValueError):
            IndirectionTextureGrid([[], []])
