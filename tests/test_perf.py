"""Tests for calibration provenance, cost model, comparisons, what-ifs."""

import numpy as np
import pytest

from repro.gpu.specs import (AGP_8X, GEFORCE_FX_5800_ULTRA, PCIE_X16,
                             PENTIUM4_2_53, XEON_2_4)
from repro.perf import calibration as cal
from repro.perf.comparisons import GPU_CLUSTER_HEADLINE, SUPERCOMPUTER_RESULTS
from repro.perf.cost import ClusterCost, paper_cluster_cost
from repro.perf.whatif import (barrier_crossover, barrier_tradeoff,
                               enhancement_speedups, subdomain_shape_study)


class TestCalibration:
    def test_internal_consistency(self):
        cal.validate()

    def test_compute_anchor(self):
        total_ms = cal.lbm_step_compute_ns_per_cell() * 80 ** 3 * 1e-6
        assert total_ms == pytest.approx(214, rel=0.01)

    def test_cpu_anchor(self):
        assert cal.CPU_NS_PER_CELL * 80 ** 3 * 1e-6 == pytest.approx(1420)

    def test_bus_asymmetry(self):
        """Sec 3: upstream an order of magnitude slower than downstream."""
        assert AGP_8X.downstream_bytes_per_s / AGP_8X.upstream_bytes_per_s > 10
        up = AGP_8X.upstream_time(1 << 20)
        down = AGP_8X.downstream_time(1 << 20)
        assert up > down

    def test_pcie_symmetric(self):
        assert PCIE_X16.upstream_bytes_per_s == PCIE_X16.downstream_bytes_per_s

    def test_effective_rates_below_peak(self):
        assert (cal.effective_upstream_bytes_per_s(AGP_8X)
                < AGP_8X.upstream_bytes_per_s)
        assert (cal.effective_downstream_bytes_per_s(AGP_8X)
                < AGP_8X.downstream_bytes_per_s)

    def test_single_gpu_8x_over_p4(self):
        """Sec 4.2: FX 5900 Ultra ~8x a P4 2.53 GHz (no SSE)."""
        gpu_ns = cal.lbm_step_compute_ns_per_cell()
        assert PENTIUM4_2_53.lbm_ns_per_cell / gpu_ns == pytest.approx(8.0,
                                                                       rel=0.01)

    def test_geforce4_era_cpu_slower_than_xeon_model(self):
        assert PENTIUM4_2_53.lbm_ns_per_cell > XEON_2_4.lbm_ns_per_cell


class TestCost:
    def test_paper_numbers(self):
        """Sec 3: +512 GFlops for $12,768; 832 GFlops total."""
        c = paper_cluster_cost()
        assert c.gpu_peak_gflops == 512.0
        assert c.gpu_price_usd == 12_768.0
        assert c.total_peak_gflops == pytest.approx(832.0)
        # 512000 MFlops / $12768 = 40.1 (the paper prints 41.1; its own
        # arithmetic gives 40.1 — see EXPERIMENTS.md).
        assert c.gpu_mflops_per_dollar == pytest.approx(40.1, abs=0.1)

    def test_scales_with_nodes(self):
        c16 = ClusterCost(nodes=16, gpu=GEFORCE_FX_5800_ULTRA, cpu=XEON_2_4)
        assert c16.gpu_peak_gflops == 256.0


class TestComparisons:
    def test_headline(self):
        assert GPU_CLUSTER_HEADLINE.mcells_per_s == 49.2
        assert GPU_CLUSTER_HEADLINE.seconds_per_step == 0.317

    def test_literature_points(self):
        by_ref = {r.reference: r for r in SUPERCOMPUTER_RESULTS}
        assert by_ref["Martys et al. [21]"].mcells_per_s == 0.8
        assert by_ref["Massaioli & Amati [23]"].mcells_per_s == 108.1

    def test_gpu_cluster_beats_2002_sp_but_not_2004_power4(self):
        vals = sorted(r.mcells_per_s for r in SUPERCOMPUTER_RESULTS)
        assert vals[-1] > GPU_CLUSTER_HEADLINE.mcells_per_s > vals[-2]


class TestWhatIf:
    @pytest.fixture(scope="class")
    def speedups(self):
        return enhancement_speedups(nodes=32)

    def test_every_enhancement_helps(self, speedups):
        base = speedups["baseline (GbE + AGP 8x + 128MB)"]
        for label, value in speedups.items():
            if label != "baseline (GbE + AGP 8x + 128MB)":
                assert value > base, label

    def test_combined_best(self, speedups):
        assert speedups["all three"] == max(speedups.values())

    def test_combined_approaches_ideal(self, speedups):
        """With all bottlenecks eased the speedup should head toward
        the single-node 6.64 ceiling."""
        assert speedups["all three"] > 5.8

    def test_cube_minimizes_step_time(self):
        rows = subdomain_shape_study()
        cube = rows[0]
        assert all(cube["total_ms"] <= r["total_ms"] for r in rows)
        s2v = [r["surface_to_volume"] for r in rows]
        net = [r["net_total_ms"] for r in rows]
        assert np.argsort(s2v).tolist() == np.argsort(net).tolist()

    def test_barrier_crossover_near_16(self):
        """Sec 4.3: barrier helps below 16 nodes, hurts above."""
        assert 16 < barrier_crossover() <= 20
        assert barrier_tradeoff(8)["barrier_wins"]
        assert not barrier_tradeoff(32)["barrier_wins"]


class TestTimingDataclass:
    def test_step_timing_totals(self):
        from repro.core.cluster_lbm import StepTiming
        t = StepTiming(nodes=4, compute_s=0.2, agp_s=0.05, net_total_s=0.15,
                       overlap_window_s=0.12)
        assert t.net_nonoverlap_s == pytest.approx(0.03)
        assert t.total_s == pytest.approx(0.28)
        ms = t.ms()
        assert ms["total"] == pytest.approx(280.0)

    def test_fully_overlapped(self):
        from repro.core.cluster_lbm import StepTiming
        t = StepTiming(nodes=2, compute_s=0.2, agp_s=0.01, net_total_s=0.05,
                       overlap_window_s=0.12)
        assert t.net_nonoverlap_s == 0.0
