"""Tests for the Sec-4.3 halo-compression extension."""

import numpy as np
import pytest

from repro.core.compression import (CompressionStats, DeltaDesyncError,
                                    HaloCompressor,
                                    compression_whatif,
                                    measure_flow_halo_ratio)


class TestCodec:
    def test_round_trip_plain(self, rng):
        codec = HaloCompressor(mode="plain")
        a = rng.random((19, 10, 8)).astype(np.float32)
        out = codec.decompress("k", codec.compress("k", a), a.shape)
        assert np.array_equal(out, a)

    def test_round_trip_delta_sequence(self, rng):
        """The delta codec must reconstruct a whole evolving sequence."""
        codec = HaloCompressor(mode="delta")
        a = rng.random((19, 6, 6)).astype(np.float32)
        for step in range(6):
            a = a + (0.001 * rng.standard_normal(a.shape)).astype(np.float32)
            out = codec.decompress("face", codec.compress("face", a), a.shape)
            assert np.array_equal(out, a), step

    def test_none_mode_is_identity(self, rng):
        codec = HaloCompressor(mode="none")
        a = rng.random((5, 4)).astype(np.float32)
        payload = codec.compress("k", a)
        assert len(payload) == a.nbytes
        assert np.array_equal(codec.decompress("k", payload, a.shape), a)
        assert codec.cpu_seconds(1000) == 0.0

    def test_independent_channels(self, rng):
        codec = HaloCompressor(mode="delta")
        a = rng.random((4, 4)).astype(np.float32)
        b = rng.random((4, 4)).astype(np.float32)
        pa = codec.compress("a", a)
        pb = codec.compress("b", b)
        assert np.array_equal(codec.decompress("a", pa, a.shape), a)
        assert np.array_equal(codec.decompress("b", pb, b.shape), b)

    def test_smooth_data_compresses_well(self):
        codec = HaloCompressor(mode="plain")
        a = np.full((19, 80, 80), 1 / 19, dtype=np.float32)
        payload = codec.compress("k", a)
        assert len(payload) < a.nbytes / 20

    def test_random_data_compresses_poorly(self, rng):
        codec = HaloCompressor(mode="plain")
        a = rng.random((19, 40, 40)).astype(np.float32)
        payload = codec.compress("k", a)
        assert len(payload) > a.nbytes / 3     # float noise is incompressible

    def test_stats_accumulate(self, rng):
        codec = HaloCompressor(mode="plain")
        a = rng.random((8, 8)).astype(np.float32)
        codec.compress("k", a)
        codec.compress("k", a)
        assert codec.stats.messages == 2
        assert codec.stats.raw_bytes == 2 * a.nbytes
        assert 0 < codec.stats.ratio

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            HaloCompressor(mode="lossy")

    def test_cpu_cost_positive(self):
        codec = HaloCompressor(mode="delta")
        assert codec.cpu_seconds(128_000) > 0


class TestMeasuredRatio:
    def test_real_flow_halo_compresses(self):
        """Genuine LBM border data (near-equilibrium flow) is highly
        coherent: the measured ratio beats 2:1 easily."""
        stats = measure_flow_halo_ratio(steps=4, sub=(8, 8, 6))
        assert stats.messages > 0
        assert stats.ratio < 0.5

    def test_whatif_reports_both_sides(self):
        w = compression_whatif(nodes=32, ratio=0.15)
        assert w["net_compressed_ms"] < w["net_base_ms"]
        assert w["codec_cpu_ms"] > 0
        assert isinstance(w["worth_it"], (bool, np.bool_))

    def test_compression_useless_when_network_already_hidden(self):
        """Below the 28-node knee the network is fully overlapped, so
        compression cannot improve the step time."""
        w = compression_whatif(nodes=16, ratio=0.15)
        assert w["total_compressed_ms"] == pytest.approx(w["total_base_ms"])

    def test_compression_helps_at_32_nodes(self):
        w = compression_whatif(nodes=32, ratio=0.15)
        assert w["worth_it"]


class TestDeltaDesync:
    """Dropped / duplicated / reordered delta messages must raise, not
    silently decode against the wrong temporal base."""

    def _payloads(self, rng, n=4):
        codec = HaloCompressor(mode="delta")
        arrays, payloads = [], []
        a = rng.random((19, 6, 6)).astype(np.float32)
        for _ in range(n):
            a = a + (0.001 * rng.standard_normal(a.shape)).astype(np.float32)
            arrays.append(a)
            payloads.append(codec.compress("face", a))
        return arrays, payloads

    def test_skip_raises(self, rng):
        arrays, payloads = self._payloads(rng)
        codec = HaloCompressor(mode="delta")
        assert np.array_equal(
            codec.decompress("face", payloads[0], arrays[0].shape),
            arrays[0])
        with pytest.raises(DeltaDesyncError, match="expected 1"):
            codec.decompress("face", payloads[2], arrays[2].shape)

    def test_replay_raises(self, rng):
        arrays, payloads = self._payloads(rng)
        codec = HaloCompressor(mode="delta")
        codec.decompress("face", payloads[0], arrays[0].shape)
        codec.decompress("face", payloads[1], arrays[1].shape)
        with pytest.raises(DeltaDesyncError, match="dropped, duplicated"):
            codec.decompress("face", payloads[1], arrays[1].shape)

    def test_reorder_raises(self, rng):
        arrays, payloads = self._payloads(rng)
        codec = HaloCompressor(mode="delta")
        with pytest.raises(DeltaDesyncError):
            codec.decompress("face", payloads[1], arrays[1].shape)

    def test_channels_sequence_independently(self, rng):
        codec = HaloCompressor(mode="delta")
        rx = HaloCompressor(mode="delta")
        state = {k: rng.random((4, 4)).astype(np.float32)
                 for k in ("a", "b")}
        for step in range(3):
            for key in ("a", "b"):
                arr = state[key] = state[key] + (
                    0.001 * rng.standard_normal((4, 4))).astype(np.float32)
                out = rx.decompress(key, codec.compress(key, arr), arr.shape)
                assert np.array_equal(out, arr), (key, step)

    def test_plain_mode_has_no_sequencing(self, rng):
        codec = HaloCompressor(mode="plain")
        a = rng.random((4, 4)).astype(np.float32)
        p = codec.compress("k", a)
        for _ in range(2):     # replay is fine: the codec is stateless
            assert np.array_equal(codec.decompress("k", p, a.shape), a)


class TestResyncRecovery:
    """DeltaDesyncError must be recoverable: both ends call resync()
    and the channel keeps working with exact round-trips."""

    def _stream(self, rng, tx, rx, key, n=3, start=None):
        a = rng.random((5, 6)).astype(np.float32) if start is None else start
        for step in range(n):
            a = a + (0.001 * rng.standard_normal(a.shape)).astype(np.float32)
            out = rx.decompress(key, tx.compress(key, a), a.shape)
            assert np.array_equal(out, a), step
        return a

    def test_resync_recovers_after_skip(self, rng):
        tx = HaloCompressor(mode="delta")
        rx = HaloCompressor(mode="delta")
        a = self._stream(rng, tx, rx, "face")
        tx.compress("face", a + 1)            # dropped on the floor
        with pytest.raises(DeltaDesyncError):
            rx.decompress("face", tx.compress("face", a + 2), a.shape)
        tx.resync("face")
        rx.resync("face")
        self._stream(rng, tx, rx, "face", start=a + 3)

    def test_resync_single_channel_leaves_others(self, rng):
        tx = HaloCompressor(mode="delta")
        rx = HaloCompressor(mode="delta")
        a = self._stream(rng, tx, rx, "a")
        b = self._stream(rng, tx, rx, "b")
        tx.resync("a")
        rx.resync("a")
        # Channel b's sequence numbers and delta base must be intact.
        self._stream(rng, tx, rx, "b", start=b)
        self._stream(rng, tx, rx, "a", start=a)

    def test_resync_all_channels(self, rng):
        tx = HaloCompressor(mode="delta")
        rx = HaloCompressor(mode="delta")
        for key in ("a", "b"):
            self._stream(rng, tx, rx, key)
        tx.resync()
        rx.resync()
        for key in ("a", "b"):
            self._stream(rng, tx, rx, key)

    def test_resync_restarts_sequence_at_zero(self, rng):
        codec = HaloCompressor(mode="delta")
        a = rng.random((4, 4)).astype(np.float32)
        codec.compress("k", a)
        codec.compress("k", a)
        codec.resync("k")
        payload = codec.compress("k", a)
        rx = HaloCompressor(mode="delta")   # fresh receiver expects seq 0
        assert np.array_equal(rx.decompress("k", payload, a.shape), a)


class TestProbeRatio:
    """Probes must measure without committing channel state — a probed
    channel's next real message may not desync the receiver."""

    def test_probe_matches_committed_ratio(self, rng):
        codec = HaloCompressor(mode="delta")
        a = rng.random((19, 8, 8)).astype(np.float32)
        probed = codec.probe_ratio("k", a)
        committed = len(codec.compress("k", a)) / a.nbytes
        assert probed == committed

    def test_probe_does_not_advance_state(self, rng):
        tx = HaloCompressor(mode="delta")
        rx = HaloCompressor(mode="delta")
        a = rng.random((5, 6)).astype(np.float32)
        out = rx.decompress("k", tx.compress("k", a), a.shape)
        assert np.array_equal(out, a)
        for _ in range(3):                    # rx never sees the probes
            tx.probe_ratio("k", a + 1)
        b = a + np.float32(0.01)
        assert np.array_equal(
            rx.decompress("k", tx.compress("k", b), b.shape), b)

    def test_probe_does_not_touch_stats(self, rng):
        codec = HaloCompressor(mode="delta")
        a = rng.random((5, 6)).astype(np.float32)
        codec.compress("k", a)
        before = (codec.stats.raw_bytes, codec.stats.compressed_bytes,
                  codec.stats.messages)
        codec.probe_ratio("k", a)
        assert (codec.stats.raw_bytes, codec.stats.compressed_bytes,
                codec.stats.messages) == before


class TestBitSpaceDelta:
    """The delta stage differences uint32 bit patterns, so the round
    trip is exact for *any* floats — including values where float
    subtraction would not be."""

    def test_special_values_round_trip(self, rng):
        tx = HaloCompressor(mode="delta")
        rx = HaloCompressor(mode="delta")
        a = rng.random((4, 8)).astype(np.float32)
        a[0, 0] = np.inf
        a[1, 2] = -np.inf
        a[2, 4] = np.nan
        a[3, 6] = np.float32(1e-45)   # subnormal
        rx.decompress("k", tx.compress("k", a), a.shape)
        b = a * np.float32(1.5)
        out = rx.decompress("k", tx.compress("k", b), b.shape)
        assert np.array_equal(out.view(np.uint32), b.view(np.uint32))

    def test_extreme_magnitude_gap_is_exact(self, rng):
        """(a - p) + p in float space would lose bits here; bit-space
        deltas cannot."""
        tx = HaloCompressor(mode="delta")
        rx = HaloCompressor(mode="delta")
        a = np.full((6, 6), 1e30, dtype=np.float32)
        rx.decompress("k", tx.compress("k", a), a.shape)
        b = np.full((6, 6), 1e-30, dtype=np.float32)
        out = rx.decompress("k", tx.compress("k", b), b.shape)
        assert np.array_equal(out, b)
