"""Tests for the MRT collision model (d'Humieres D3Q19 basis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lbm.collision import BGKCollision
from repro.lbm.equilibrium import equilibrium
from repro.lbm.lattice import D2Q9, D3Q19
from repro.lbm.macroscopic import density, momentum
from repro.lbm.mrt import (CONSERVED, MOMENT_NAMES, MRTCollision,
                           default_rates, moment_equilibrium, mrt_matrix)


class TestMomentMatrix:
    def test_shape_and_rank(self):
        M = mrt_matrix()
        assert M.shape == (19, 19)
        assert np.linalg.matrix_rank(M) == 19

    def test_rows_orthogonal(self):
        """The Gram-Schmidt basis rows are mutually orthogonal."""
        M = mrt_matrix()
        G = M @ M.T
        off = G - np.diag(np.diag(G))
        assert np.abs(off).max() < 1e-9

    def test_density_row_is_ones(self):
        assert np.allclose(mrt_matrix()[0], 1.0)

    def test_momentum_rows_are_velocities(self):
        M = mrt_matrix()
        c = D3Q19.c.astype(float)
        assert np.allclose(M[3], c[:, 0])
        assert np.allclose(M[5], c[:, 1])
        assert np.allclose(M[7], c[:, 2])

    def test_moment_names_count(self):
        assert len(MOMENT_NAMES) == 19

    def test_d2q9_rejected(self):
        with pytest.raises(ValueError):
            mrt_matrix(D2Q9)


class TestMomentEquilibrium:
    @given(rho=st.floats(0.6, 1.5), ux=st.floats(-0.08, 0.08),
           uy=st.floats(-0.08, 0.08), uz=st.floats(-0.08, 0.08))
    @settings(max_examples=40, deadline=None)
    def test_meq_equals_M_feq(self, rho, ux, uy, uz):
        """The chosen constants make m_eq identical to the moments of
        the BGK equilibrium — the key consistency property."""
        u = np.array([ux, uy, uz]).reshape(3, 1)
        r = np.array([rho])
        feq = equilibrium(D3Q19, r, u)
        meq = moment_equilibrium(D3Q19, r, r * u)
        M = mrt_matrix()
        assert np.allclose(M @ feq, meq, atol=1e-11)


class TestMRTOperator:
    def _random_f(self, amp=0.02):
        rng = np.random.default_rng(3)
        base = D3Q19.w.reshape(19, 1, 1, 1)
        return (base * (1 + amp * rng.standard_normal((19, 4, 3, 2)))).astype(np.float64)

    def test_reduces_to_bgk_with_uniform_rates(self):
        tau = 0.77
        s = np.full(19, 1.0 / tau)
        s[list(CONSERVED)] = 0.0
        fa = self._random_f()
        fb = fa.copy()
        MRTCollision(D3Q19, tau, rates=s)(fa)
        BGKCollision(D3Q19, tau)(fb)
        assert np.allclose(fa, fb, atol=1e-13)

    def test_mass_momentum_conserved(self):
        f = self._random_f()
        rho0, j0 = density(f).copy(), momentum(D3Q19, f).copy()
        MRTCollision(D3Q19, tau=0.7)(f)
        assert np.allclose(density(f), rho0, rtol=1e-12)
        assert np.allclose(momentum(D3Q19, f), j0, atol=1e-13)

    def test_equilibrium_fixed_point(self):
        rng = np.random.default_rng(1)
        rho = rng.uniform(0.9, 1.1, (3, 3, 3))
        u = rng.uniform(-0.04, 0.04, (3, 3, 3, 3)).transpose(3, 0, 1, 2)
        f = equilibrium(D3Q19, rho, u)
        before = f.copy()
        MRTCollision(D3Q19, tau=0.9)(f)
        assert np.allclose(f, before, atol=1e-12)

    def test_mask(self):
        f = self._random_f()
        frozen = f[:, 0, 0, 0].copy()
        mask = np.ones(f.shape[1:], dtype=bool)
        mask[0, 0, 0] = False
        MRTCollision(D3Q19, tau=0.7)(f, mask=mask)
        assert np.array_equal(f[:, 0, 0, 0], frozen)

    def test_energy_source_injects_energy_moment_only(self):
        f = self._random_f()
        M = mrt_matrix()
        src_val = 1e-3

        def src(grid):
            return np.full(grid, src_val)

        mrt = MRTCollision(D3Q19, tau=0.7, energy_source=src)
        f2 = f.copy()
        MRTCollision(D3Q19, tau=0.7)(f2)   # same rates, no source
        mrt(f)
        dm = M @ (f - f2).reshape(19, -1)
        assert np.allclose(dm[1], src_val, atol=1e-12)   # e moment shifted
        others = np.delete(np.arange(19), 1)
        assert np.abs(dm[others]).max() < 1e-12

    def test_default_rates_structure(self):
        s = default_rates(0.8)
        assert s[list(CONSERVED)].max() == 0.0
        assert s[9] == pytest.approx(1.0 / 0.8)
        assert s[13] == s[14] == s[15] == s[9]

    def test_nonzero_conserved_rate_rejected(self):
        s = default_rates(0.8)
        s[0] = 0.5
        with pytest.raises(ValueError, match="conserved"):
            MRTCollision(D3Q19, tau=0.8, rates=s)

    def test_bad_tau_rejected(self):
        with pytest.raises(ValueError):
            MRTCollision(D3Q19, tau=0.5)

    def test_viscosity(self):
        assert MRTCollision(D3Q19, tau=0.8).viscosity == pytest.approx(0.1)

    def test_stability_advantage_over_bgk(self):
        """MRT's raison d'etre (Sec 4.1): at low viscosity it damps the
        ghost modes BGK leaves underdamped.  Check the non-hydrodynamic
        moments decay faster under MRT."""
        tau = 0.51
        f = self._random_f(amp=0.1)
        fb = f.copy()
        MRTCollision(D3Q19, tau=tau)(f)
        BGKCollision(D3Q19, tau=tau)(fb)
        M = mrt_matrix()
        # Energy moments: BGK over-relaxes them at |1 - 1/tau| ~ 0.96,
        # MRT pins them at the stable rates 1.19 / 1.4.
        energy = [1, 2]
        rho = density(f).reshape(-1)
        j = momentum(D3Q19, f).reshape(3, -1)
        meq = moment_equilibrium(D3Q19, rho, j)[energy]
        m_mrt = (M @ f.reshape(19, -1))[energy] - meq
        m_bgk = (M @ fb.reshape(19, -1))[energy] - meq
        assert np.abs(m_mrt).max() < np.abs(m_bgk).max()
