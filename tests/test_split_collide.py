"""Boundary-shell / inner-core split collide must equal the full pass.

The executed-overlap protocol (Sec 4.4) relies on colliding the depth-1
boundary shell first so the halo exchange can run while the inner core
collides.  Collision is pointwise, so visiting the cells as disjoint
slabs must be *bit-identical* to the single full pass — in the
reference operator path, the fused BGK region kernel, and the GPU
texture pipeline alike.
"""

import numpy as np
import pytest

from repro.lbm.solver import LBMSolver
from repro.lbm.streaming import shell_partition


class TestShellPartition:
    @pytest.mark.parametrize("shape", [(5, 4, 3), (2, 2, 2), (1, 3, 4),
                                       (6, 6, 6), (3, 1, 1), (4, 4),
                                       (2, 9, 2, 3)])
    def test_slabs_and_core_tile_exactly(self, shape):
        slabs, inner = shell_partition(shape)
        cover = np.zeros(shape, dtype=int)
        for sl in slabs:
            cover[sl] += 1
        cover[inner] += 1
        assert (cover == 1).all()

    def test_slices_have_concrete_bounds(self):
        slabs, inner = shell_partition((6, 5, 4))
        for region in slabs + [inner]:
            for sl in region:
                assert sl.start is not None and sl.stop is not None

    def test_depth_two_core(self):
        _, inner = shell_partition((8, 8, 8), depth=2)
        assert inner == (slice(2, 6),) * 3

    def test_thin_axis_has_empty_core(self):
        slabs, inner = shell_partition((2, 6, 6))
        assert inner[0].start == inner[0].stop
        cover = np.zeros((2, 6, 6), dtype=int)
        for sl in slabs:
            cover[sl] += 1
        assert (cover == 1).all()


def _randomized(solver, rng):
    shape = solver.shape
    rho = (1 + 0.05 * rng.standard_normal(shape)).astype(np.float32)
    u = (0.04 * rng.standard_normal((3,) + shape)).astype(np.float32)
    solver.initialize(rho, u)
    return solver


@pytest.mark.parametrize("fused", [True, False])
class TestSplitEqualsFull:
    SHAPE = (7, 6, 5)

    def _pair(self, rng, fused, **kw):
        a = _randomized(LBMSolver(self.SHAPE, tau=0.8, fused=fused, **kw),
                        np.random.default_rng(7))
        b = _randomized(LBMSolver(self.SHAPE, tau=0.8, fused=fused, **kw),
                        np.random.default_rng(7))
        return a, b

    def test_bgk(self, rng, fused):
        a, b = self._pair(rng, fused)
        a.collide()
        b.collide_split()
        assert np.array_equal(a.fg, b.fg)

    def test_bgk_with_force(self, rng, fused):
        a, b = self._pair(rng, fused, force=(1e-4, -2e-5, 0.0))
        a.collide()
        b.collide_split()
        assert np.array_equal(a.fg, b.fg)

    def test_bgk_with_solids(self, rng, fused):
        solid = np.zeros(self.SHAPE, bool)
        solid[1:3, 2:4, 0:2] = True
        solid[0, 0, 0] = True  # solid on the shell itself
        a, b = self._pair(rng, fused, solid=solid)
        a.collide()
        b.collide_split()
        assert np.array_equal(a.fg, b.fg)

    def test_mrt(self, rng, fused):
        a, b = self._pair(rng, fused, collision="mrt")
        a.collide()
        b.collide_split()
        assert np.array_equal(a.fg, b.fg)

    def test_full_steps_after_split_collide(self, rng, fused):
        # Interleave: one solver steps normally, the other replaces each
        # step's collide with the split pair, sharing the rest of the
        # phase pipeline.
        a, b = self._pair(rng, fused)
        for _ in range(3):
            a.collide()
            a.fill_ghosts()
            a.stream()
            a.post_stream()
            b.collide_boundary()
            b.collide_inner()
            b.fill_ghosts()
            b.stream()
            b.post_stream()
        assert np.array_equal(a.fg, b.fg)

    def test_thin_domain(self, rng, fused):
        a = _randomized(LBMSolver((2, 6, 5), tau=0.8, fused=fused),
                        np.random.default_rng(3))
        b = _randomized(LBMSolver((2, 6, 5), tau=0.8, fused=fused),
                        np.random.default_rng(3))
        a.collide()
        b.collide_split()
        assert np.array_equal(a.fg, b.fg)


class TestGPUSplit:
    def test_texture_split_pieces_tile_interior(self):
        from repro.gpu.lbm_gpu import GPULBMSolver
        s = GPULBMSolver((6, 5, 4), tau=0.7, mode="padded")
        shell, inner = s.split_pieces()
        tw, th, td = 6 + 2, 5 + 2, 4 + 2
        cover = np.zeros((td, th, tw), dtype=int)
        for rect, zr in shell + inner:
            for z in zr:
                cover[z, rect.y0:rect.y1, rect.x0:rect.x1] += 1
        assert (cover[1:-1, 1:-1, 1:-1] == 1).all()
        assert cover.sum() == 6 * 5 * 4

    def test_gpu_split_collide_matches_full(self, rng):
        from repro.gpu.lbm_gpu import GPULBMSolver
        f0 = (np.float32(1) / 19
              + 0.01 * rng.standard_normal((19, 6, 5, 4)).astype(np.float32))
        full = GPULBMSolver((6, 5, 4), tau=0.7, mode="padded")
        split = GPULBMSolver((6, 5, 4), tau=0.7, mode="padded")
        full.load_distributions(f0)
        split.load_distributions(f0)
        full.run_macro_pass()
        full.run_collide_passes()
        for rect, zr in split.split_pieces()[0]:
            split.run_macro_pass(rect=rect, z_range=zr)
            split.run_collide_passes(rect=rect, z_range=zr)
        for rect, zr in split.split_pieces()[1]:
            split.run_macro_pass(rect=rect, z_range=zr)
            split.run_collide_passes(rect=rect, z_range=zr)
        assert np.array_equal(full.distributions(), split.distributions())
