"""Tests for the fragment-program render engine."""

import numpy as np
import pytest

from repro.gpu.device import SimulatedGPU
from repro.gpu.fragment import FragmentProgram, Rect, RenderContext
from repro.gpu.texture import TextureMemory, TextureStack


@pytest.fixture
def device():
    return SimulatedGPU(enforce_memory=False)


def _stack(device, w=6, h=5, d=4, name="s"):
    s = device.new_stack(w, h, d, name)
    s.data[...] = np.arange(s.data.size, dtype=np.float32).reshape(s.data.shape)
    return s


class TestRect:
    def test_properties(self):
        r = Rect(1, 4, 2, 6)
        assert r.height == 3 and r.width == 4 and r.fragments == 12

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect(2, 2, 0, 4)


class TestFetch:
    def test_zero_offset_identity(self, device):
        s = _stack(device)
        ctx = RenderContext({"s": s}, z=1, rect=Rect(0, 5, 0, 6), wrap=True)
        assert np.array_equal(ctx.fetch("s"), s.data[1])

    def test_wrap_offsets(self, device):
        s = _stack(device)
        rect = Rect(0, 5, 0, 6)
        ctx = RenderContext({"s": s}, z=0, rect=rect, wrap=True)
        got = ctx.fetch("s", dx=1, dy=0, dz=-1)
        expect = np.roll(s.data[-1], shift=-1, axis=1)
        assert np.array_equal(got, expect)

    def test_padded_offsets(self, device):
        s = _stack(device)
        rect = Rect(1, 4, 1, 5)
        ctx = RenderContext({"s": s}, z=2, rect=rect, wrap=False)
        got = ctx.fetch("s", dx=-1, dy=1)
        assert np.array_equal(got, s.data[2, 2:5, 0:4])

    def test_padded_out_of_bounds_raises(self, device):
        s = _stack(device)
        ctx = RenderContext({"s": s}, z=0, rect=Rect(0, 5, 0, 6), wrap=False)
        with pytest.raises(IndexError):
            ctx.fetch("s", dx=1)
        with pytest.raises(IndexError):
            ctx.fetch("s", dz=-1)

    def test_channel_selection(self, device):
        s = _stack(device)
        ctx = RenderContext({"s": s}, z=1, rect=Rect(0, 5, 0, 6), wrap=True)
        got = ctx.fetch("s", channels=2)
        assert got.shape == (5, 6)
        assert np.array_equal(got, s.data[1, :, :, 2])

    def test_fetch_count_increments(self, device):
        s = _stack(device)
        ctx = RenderContext({"s": s}, z=0, rect=Rect(0, 5, 0, 6), wrap=True)
        ctx.fetch("s")
        ctx.fetch("s", dx=1)
        assert ctx.fetch_count == 2


class TestRunPass:
    def test_kernel_output_written(self, device):
        s = device.new_stack(4, 4, 2, "t")
        prog = FragmentProgram("fill", lambda ctx: np.full((4, 4, 4), 3.0,
                                                           dtype=np.float32),
                               alu_ops=1, tex_fetches=0)
        device.run_pass(prog, s, {}, Rect(0, 4, 0, 4))
        assert (s.data == 3.0).all()

    def test_bad_output_shape_raises(self, device):
        s = device.new_stack(4, 4, 1, "t")
        prog = FragmentProgram("bad", lambda ctx: np.zeros((2, 2, 4)),
                               alu_ops=1, tex_fetches=0)
        with pytest.raises(ValueError, match="produced"):
            device.run_pass(prog, s, {}, Rect(0, 4, 0, 4))

    def test_no_read_own_writes_across_slices(self, device):
        """Z-streaming hazard: a pass reading slice z-1 of its own
        target must see pre-pass contents even after slice z-1 was
        computed (commit-after-pass semantics)."""
        s = device.new_stack(2, 2, 3, "t")
        s.data[...] = 1.0

        def kernel(ctx):
            below = ctx.fetch("t", dz=-1)
            return below + 1.0

        prog = FragmentProgram("shift", kernel, alu_ops=1, tex_fetches=1)
        device.run_pass(prog, s, {"t": s}, Rect(0, 2, 0, 2), wrap=True)
        # Every slice read the OLD value (1.0) of its lower neighbour.
        assert (s.data == 2.0).all()

    def test_timing_charged(self, device):
        s = device.new_stack(8, 8, 4, "t")
        prog = FragmentProgram("work", lambda ctx: np.zeros((8, 8, 4),
                                                            dtype=np.float32),
                               alu_ops=10, tex_fetches=2)
        t0 = device.clock_s
        device.run_pass(prog, s, {}, Rect(0, 8, 0, 8))
        dt = device.clock_s - t0
        assert dt == pytest.approx(
            8 * 8 * 4 * device.pass_time_s(prog, 1), rel=1e-9)
        assert device.pass_seconds["work"] == pytest.approx(dt)

    def test_charge_flag_skips_timing(self, device):
        s = device.new_stack(4, 4, 1, "t")
        prog = FragmentProgram("free", lambda ctx: np.zeros((4, 4, 4),
                                                            dtype=np.float32),
                               alu_ops=5, tex_fetches=0)
        device.run_pass(prog, s, {}, Rect(0, 4, 0, 4), charge=False)
        assert device.clock_s == 0.0


class TestBatchedRendering:
    """`batchable` programs render a contiguous Z block in one kernel
    invocation; texels and modeled time must match the per-slice loop."""

    @staticmethod
    def _gather_kernel(ctx):
        # Elementwise over the leading axes, with spatial + Z offsets.
        return (ctx.fetch("s", dx=1, dy=-1, dz=1) * np.float32(2.0)
                + ctx.fetch("s", dz=-1))

    @pytest.mark.parametrize("wrap", [True, False])
    def test_batched_matches_looped(self, wrap):
        rect = Rect(0, 5, 0, 6) if wrap else Rect(1, 4, 1, 5)
        zr = range(5) if wrap else range(1, 4)
        results = []
        clocks = []
        for batchable in (False, True):
            dev = SimulatedGPU(enforce_memory=False)
            src = _stack(dev, d=5, name="s")
            tgt = dev.new_stack(6, 5, 5, "t")
            prog = FragmentProgram("gather", self._gather_kernel,
                                   alu_ops=3, tex_fetches=2,
                                   batchable=batchable)
            dev.run_pass(prog, tgt, {"s": src}, rect, zr, wrap=wrap)
            results.append(tgt.data.copy())
            clocks.append(dev.clock_s)
        assert np.array_equal(results[0], results[1])
        assert clocks[0] == clocks[1]

    def test_batched_pass_group_matches_looped(self):
        results = []
        for batchable in (False, True):
            dev = SimulatedGPU(enforce_memory=False)
            a = _stack(dev, d=4, name="a")
            b = _stack(dev, d=4, name="b")
            b.data *= np.float32(0.5)
            pa = FragmentProgram("pa", lambda ctx: ctx.fetch("b") + 1.0,
                                 alu_ops=1, tex_fetches=1, batchable=batchable)
            pb = FragmentProgram("pb", lambda ctx: ctx.fetch("a") * 2.0,
                                 alu_ops=1, tex_fetches=1, batchable=batchable)
            bindings = {"a": a, "b": b}
            dev.run_pass_group([(pa, a, bindings), (pb, b, bindings)],
                               Rect(0, 5, 0, 6), range(4), wrap=True)
            results.append((a.data.copy(), b.data.copy()))
        assert np.array_equal(results[0][0], results[1][0])
        assert np.array_equal(results[0][1], results[1][1])

    def test_batched_respects_commit_after_pass(self):
        """The z-batched path must still read pre-pass target contents."""
        dev = SimulatedGPU(enforce_memory=False)
        s = dev.new_stack(2, 2, 3, "t")
        s.data[...] = 1.0
        prog = FragmentProgram("shift", lambda ctx: ctx.fetch("t", dz=-1) + 1.0,
                               alu_ops=1, tex_fetches=1, batchable=True)
        dev.run_pass(prog, s, {"t": s}, Rect(0, 2, 0, 2), wrap=True)
        assert (s.data == 2.0).all()

    def test_single_slice_and_lists_take_loop_path(self):
        """Non-contiguous z iterations still work for batchable programs."""
        dev = SimulatedGPU(enforce_memory=False)
        s = _stack(dev, d=4, name="s")
        t = dev.new_stack(6, 5, 4, "t")
        prog = FragmentProgram("copy", lambda ctx: ctx.fetch("s") + 0.0,
                               alu_ops=1, tex_fetches=1, batchable=True)
        dev.run_pass(prog, t, {"s": s}, Rect(0, 5, 0, 6), [0, 3], wrap=True)
        assert np.array_equal(t.data[0], s.data[0])
        assert np.array_equal(t.data[3], s.data[3])
        assert (t.data[1:3] == 0).all()


class TestRunPassGroup:
    def test_swap_is_atomic(self, device):
        """Two passes that swap each other's stacks must both read the
        pre-group snapshot."""
        a = device.new_stack(2, 2, 1, "a")
        b = device.new_stack(2, 2, 1, "b")
        a.data[...] = 1.0
        b.data[...] = 2.0

        def read_b(ctx):
            return ctx.fetch("b").copy()

        def read_a(ctx):
            return ctx.fetch("a").copy()

        pa = FragmentProgram("pa", read_b, alu_ops=1, tex_fetches=1)
        pb = FragmentProgram("pb", read_a, alu_ops=1, tex_fetches=1)
        bindings = {"a": a, "b": b}
        device.run_pass_group([(pa, a, bindings), (pb, b, bindings)],
                              Rect(0, 2, 0, 2), wrap=True)
        assert (a.data == 2.0).all()
        assert (b.data == 1.0).all()


class TestTransfers:
    def test_readback_slower_than_upload_on_agp(self, device):
        data = np.zeros(1 << 20, dtype=np.float32)
        up = device.readback(data)
        down = device.upload(data)
        assert up > down   # the Sec-3 asymmetry

    def test_bytes_accounted(self, device):
        data = np.zeros(1000, dtype=np.float32)
        device.readback(data)
        device.upload(data)
        assert device.bytes_up == 4000
        assert device.bytes_down == 4000

    def test_reset_clock(self, device):
        device.charge("x", 1.0)
        device.readback(np.zeros(10, dtype=np.float32))
        device.reset_clock()
        assert device.clock_s == 0.0
        assert device.bytes_up == 0
        assert not device.pass_seconds
