"""Threaded cluster stepping and allocation-free halo exchange.

The driver may advance its nodes from a thread pool (the explicit
``ClusterConfig.backend="threads"`` opt-in with ``max_workers > 1``);
since nodes only touch their own sub-domain between exchanges, the
gathered result and the StepTiming decomposition must be identical to
the serial driver, bit for bit.
"""

import numpy as np
import pytest

from repro.core import ClusterConfig, CPUClusterLBM, GPUClusterLBM
from repro.lbm.solver import LBMSolver

SUB, ARR = (8, 6, 4), (2, 2, 1)
SHAPE = tuple(s * a for s, a in zip(SUB, ARR))


def _initial_state(rng, solid=None):
    ref = LBMSolver(SHAPE, tau=0.7, solid=solid)
    u0 = (0.02 * rng.standard_normal((3,) + SHAPE)).astype(np.float32)
    if solid is not None:
        u0[:, solid] = 0
    ref.initialize(rho=np.ones(SHAPE, np.float32), u=u0)
    return ref.f.copy()


def _run(cls, f0, steps=4, solid=None, **cfg_kw):
    cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                        solid=solid, **cfg_kw)
    cluster = cls(cfg)
    cluster.load_global_distributions(f0)
    timing = cluster.step(steps)
    f = cluster.gather_distributions()
    cluster.shutdown()
    return f, timing


@pytest.mark.parametrize("cls", [CPUClusterLBM, GPUClusterLBM])
class TestThreadedEqualsSerial:
    def test_gather_bit_identical(self, rng, cls):
        solid = np.zeros(SHAPE, bool)
        solid[3:6, 4:7, 1:3] = True
        f0 = _initial_state(rng, solid=solid)
        f_serial, t_serial = _run(cls, f0, solid=solid, max_workers=1)
        f_thread, t_thread = _run(cls, f0, solid=solid,
                                  backend="threads", max_workers=4)
        assert np.array_equal(f_serial, f_thread)

    def test_step_timing_decomposition_identical(self, rng, cls):
        f0 = _initial_state(rng)
        _, t_serial = _run(cls, f0, max_workers=1)
        _, t_thread = _run(cls, f0, backend="threads", max_workers=4)
        assert t_serial.nodes == t_thread.nodes
        assert t_serial.compute_s == t_thread.compute_s
        assert t_serial.agp_s == t_thread.agp_s
        assert t_serial.net_total_s == t_thread.net_total_s
        assert t_serial.overlap_window_s == t_thread.overlap_window_s
        assert t_serial.ms() == t_thread.ms()


class TestThreadedMatchesReference:
    def test_threaded_cpu_cluster_matches_reference(self, rng):
        ref = LBMSolver(SHAPE, tau=0.7)
        u0 = (0.02 * rng.standard_normal((3,) + SHAPE)).astype(np.float32)
        ref.initialize(rho=np.ones(SHAPE, np.float32), u=u0)
        f0 = ref.f.copy()
        ref.step(5)
        f, _ = _run(CPUClusterLBM, f0, steps=5,
                    backend="threads", max_workers=3)
        assert np.array_equal(f, ref.f)


class TestExchangeBuffers:
    def test_border_buffers_allocated_once(self, rng):
        f0 = _initial_state(rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                            wire="perface")
        cluster = CPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(1)
        bufs = cluster._border_bufs
        assert bufs is not None
        buf_ids = {id(bufs[r][a][d]) for r in range(len(bufs))
                   for a in range(3) for d in (-1, 1)}
        cluster.step(3)
        assert cluster._border_bufs is bufs
        after = {id(bufs[r][a][d]) for r in range(len(bufs))
                 for a in range(3) for d in (-1, 1)}
        assert after == buf_ids
        # alloc counter recorded the one-time buffer build
        assert (cluster.counters.stats["exchange.border_bufs"].allocs
                == 6 * len(cluster.nodes))
        cluster.shutdown()

    def test_wire_buffers_allocated_once(self, rng):
        """The merged wire preallocates per-neighbor buffers the same
        way the per-face path preallocates face buffers."""
        f0 = _initial_state(rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7)
        cluster = CPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(1)
        bufs = cluster._wire_bufs
        assert bufs is not None
        buf_ids = {id(b) for per_rank in bufs for b in per_rank.values()}
        cluster.step(3)
        assert cluster._wire_bufs is bufs
        after = {id(b) for per_rank in bufs for b in per_rank.values()}
        assert after == buf_ids
        assert cluster.counters.stats["exchange.wire_bufs"].allocs == len(buf_ids)
        cluster.shutdown()

    def test_cluster_counters_record_phases(self, rng):
        f0 = _initial_state(rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7)
        with GPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(2)
            stats = cluster.counters.stats
            assert stats["cluster.collide_boundary"].calls == 2
            assert stats["cluster.collide_inner"].calls == 2
            assert stats["cluster.exchange"].calls == 2
            assert stats["cluster.finish"].calls == 2

    def test_sequential_protocol_records_legacy_phases(self, rng):
        f0 = _initial_state(rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARR, tau=0.7,
                            overlap=False)
        with GPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(2)
            stats = cluster.counters.stats
            assert stats["cluster.collide"].calls == 2
            assert stats["cluster.exchange"].calls == 2
            assert "cluster.collide_boundary" not in stats


class TestConfigValidation:
    def test_max_workers_validated(self):
        with pytest.raises(ValueError, match="max_workers"):
            ClusterConfig(sub_shape=(8, 8, 8), arrangement=(1, 1, 1),
                          max_workers=0)

    def test_backend_must_be_known(self):
        with pytest.raises(ValueError, match="backend"):
            ClusterConfig(sub_shape=(8, 8, 8), arrangement=(1, 1, 1),
                          backend="mpi")

    def test_shutdown_idempotent(self):
        cfg = ClusterConfig(sub_shape=(4, 4, 4), arrangement=(2, 1, 1),
                            tau=0.7, backend="threads", max_workers=2)
        cluster = CPUClusterLBM(cfg)
        cluster.step(1)
        cluster.shutdown()
        cluster.shutdown()
        # stepping again lazily rebuilds the pool
        cluster.step(1)
        cluster.shutdown()
