"""Tests for the Smagorinsky LES collision."""

import numpy as np
import pytest

from repro.lbm.collision import BGKCollision
from repro.lbm.equilibrium import equilibrium
from repro.lbm.lattice import D3Q19
from repro.lbm.les import SmagorinskyBGK
from repro.lbm.macroscopic import density, momentum
from repro.lbm.solver import LBMSolver


def _sheared_f(rng, shape=(8, 8, 4), amp=0.08):
    """A strongly sheared state (big non-equilibrium stress)."""
    rho = np.ones(shape)
    u = np.zeros((3,) + shape)
    u[0] = amp * np.sin(2 * np.pi * np.arange(shape[1]) / shape[1])[None, :, None]
    f = equilibrium(D3Q19, rho, u)
    f += 0.02 * rng.standard_normal(f.shape) * D3Q19.w.reshape(-1, 1, 1, 1)
    return f


class TestReduction:
    def test_zero_constant_equals_bgk(self, rng):
        f1 = _sheared_f(rng)
        f2 = f1.copy()
        SmagorinskyBGK(D3Q19, tau0=0.7, c_smago=0.0)(f1)
        BGKCollision(D3Q19, tau=0.7)(f2)
        assert np.array_equal(f1, f2)

    def test_equilibrium_state_unmodified_tau(self, rng):
        """At equilibrium the non-equilibrium stress vanishes, so
        tau_eff == tau0 everywhere."""
        rho = np.ones((4, 4, 4))
        u = 0.02 * rng.standard_normal((3, 4, 4, 4))
        f = equilibrium(D3Q19, rho, u)
        op = SmagorinskyBGK(D3Q19, tau0=0.8, c_smago=0.16)
        tau_eff = op.effective_tau(f, f, rho)
        assert np.allclose(tau_eff, 0.8, atol=1e-9)


class TestEddyViscosity:
    def test_positive_under_shear(self, rng):
        f = _sheared_f(rng)
        op = SmagorinskyBGK(D3Q19, tau0=0.55, c_smago=0.16)
        nu_t = op.eddy_viscosity(f)
        assert (nu_t >= -1e-12).all()
        assert nu_t.max() > 0

    def test_grows_with_constant(self, rng):
        f = _sheared_f(rng)
        small = SmagorinskyBGK(D3Q19, tau0=0.55, c_smago=0.1).eddy_viscosity(f)
        large = SmagorinskyBGK(D3Q19, tau0=0.55, c_smago=0.2).eddy_viscosity(f)
        assert large.max() > small.max()

    def test_conservation(self, rng):
        f = _sheared_f(rng)
        rho0, j0 = density(f).copy(), momentum(D3Q19, f).copy()
        SmagorinskyBGK(D3Q19, tau0=0.55, c_smago=0.16)(f)
        assert np.allclose(density(f), rho0, rtol=1e-12)
        assert np.allclose(momentum(D3Q19, f), j0, atol=1e-13)


class TestStabilisation:
    def test_les_stabilizes_underresolved_flow(self, rng):
        """At tau near 0.5 with a strong shear + noise, plain BGK blows
        up while the LES closure keeps the run finite — the whole point
        of the model for the urban flow."""
        shape = (16, 16, 4)

        def run(collision):
            s = LBMSolver(shape, tau=0.501, collision=collision,
                          dtype=np.float64)
            u0 = np.zeros((3,) + shape)
            u0[0] = 0.15 * np.sin(
                2 * np.pi * np.arange(16) / 16)[None, :, None]
            u0 += 0.02 * rng.standard_normal((3,) + shape)
            s.initialize(rho=np.ones(shape), u=u0)
            s.step(300)
            return s.f

        from repro.lbm.collision import BGKCollision
        f_bgk = run(BGKCollision(D3Q19, tau=0.501))
        f_les = run(SmagorinskyBGK(D3Q19, tau0=0.501, c_smago=0.2))
        bgk_blown = (~np.isfinite(f_bgk)).any() or np.abs(f_bgk).max() > 1e3
        assert np.isfinite(f_les).all()
        assert np.abs(f_les).max() < 10
        assert bgk_blown            # BGK really was unstable here

    def test_works_in_solver_with_obstacle(self, rng, small_shape, small_solid):
        op = SmagorinskyBGK(D3Q19, tau0=0.6, c_smago=0.16,
                            force=(1e-5, 0, 0))
        s = LBMSolver(small_shape, tau=0.6, collision=op, solid=small_solid,
                      dtype=np.float64)
        s.step(50)
        assert np.isfinite(s.f).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            SmagorinskyBGK(D3Q19, tau0=0.5)
        with pytest.raises(ValueError):
            SmagorinskyBGK(D3Q19, tau0=0.7, c_smago=-0.1)
