"""Unit tests for the per-node drivers (GPUNode / CPUNode)."""

import numpy as np
import pytest

from repro.core.cpu_node import CPUNode
from repro.core.gpu_node import GPUNode
from repro.gpu.specs import GEFORCE_6800_ULTRA, PCIE_X16
from repro.perf import calibration as cal


class TestGPUNodeTimingModel:
    def _node(self, sub=(80, 80, 80), dirs=4, edges=4, **kw):
        face_dirs = [(0, 1), (0, -1), (1, 1), (1, -1)][:dirs]
        edge_dirs = [(0, 1, 1, 1), (0, 1, 1, -1),
                     (0, -1, 1, 1), (0, -1, 1, -1)][:edges]
        return GPUNode(0, sub, tau=0.6, face_dirs=face_dirs,
                       edge_dirs=edge_dirs, timing_only=True, **kw)

    def test_isolated_node_is_the_214ms_anchor(self):
        n = self._node(dirs=0, edges=0)
        n.begin_step()
        n.collide_phase()
        n.charge_transfers()
        n.finish_step()
        assert n.compute_s * 1e3 == pytest.approx(214, rel=0.01)
        assert n.agp_s == 0.0

    def test_overlap_window_near_120ms(self):
        n = self._node()
        n.begin_step()
        n.collide_phase()
        assert n.overlap_window_s * 1e3 == pytest.approx(120, rel=0.02)

    def test_agp_plateau(self):
        n = self._node(dirs=4, edges=4)
        n.begin_step()
        n.charge_transfers()
        assert n.agp_s * 1e3 == pytest.approx(50, rel=0.06)

    def test_agp_single_direction(self):
        n = self._node(dirs=1, edges=0)
        n.begin_step()
        n.charge_transfers()
        assert n.agp_s * 1e3 == pytest.approx(13, rel=0.15)

    def test_agp_scales_with_face_area(self):
        big = self._node(sub=(80, 80, 80), dirs=1, edges=0)
        small = self._node(sub=(40, 40, 80), dirs=1, edges=0)
        for n in (big, small):
            n.begin_step()
            n.charge_transfers()
        assert small.agp_s < big.agp_s

    def test_pcie_cheaper_than_agp(self):
        agp = self._node(dirs=4, edges=0)
        pcie = self._node(dirs=4, edges=0, bus=PCIE_X16)
        for n in (agp, pcie):
            n.begin_step()
            n.charge_transfers()
        assert pcie.agp_s < agp.agp_s

    def test_faster_card_faster_compute(self):
        slow = self._node(dirs=0, edges=0)
        fast = self._node(dirs=0, edges=0, gpu_spec=GEFORCE_6800_ULTRA)
        for n in (slow, fast):
            n.begin_step()
            n.collide_phase()
            n.finish_step()
        assert fast.compute_s < slow.compute_s

    def test_geometry_helpers(self):
        n = self._node(sub=(40, 20, 10), dirs=0, edges=0)
        assert n.cells == 8000
        assert n.inner_cells() == 38 * 18 * 8
        assert n.face_cells(0) == 200
        assert n.face_cells(2) == 800


class TestCPUNodeTimingModel:
    def test_isolated_node_is_1420ms(self):
        n = CPUNode(0, (80, 80, 80), tau=0.6, timing_only=True)
        n.begin_step()
        n.collide_phase()
        n.charge_transfers()
        n.finish_step()
        assert n.compute_s * 1e3 == pytest.approx(1420, rel=0.005)
        assert n.agp_s == 0.0

    def test_overlap_window_is_whole_compute(self):
        """The second-thread design: the CPU can hide the network under
        its entire computation."""
        n = CPUNode(0, (80, 80, 80), tau=0.6, timing_only=True)
        n.begin_step()
        n.collide_phase()
        n.finish_step()
        assert n.overlap_window_s == n.compute_s

    def test_sse_speedup(self):
        """Sec 4.4: SSE would make the CPU code 'about 2 to 3 times
        faster'."""
        plain = CPUNode(0, (80, 80, 80), tau=0.6, timing_only=True)
        sse = CPUNode(0, (80, 80, 80), tau=0.6, timing_only=True,
                      use_sse=True)
        for n in (plain, sse):
            n.begin_step()
            n.finish_step()
        ratio = plain.compute_s / sse.compute_s
        assert 2.0 <= ratio <= 3.0

    def test_border_compute_grows_with_dirs(self):
        bare = CPUNode(0, (80, 80, 80), tau=0.6, timing_only=True)
        busy = CPUNode(0, (80, 80, 80), tau=0.6, timing_only=True,
                       face_dirs=[(0, 1), (0, -1), (1, 1), (1, -1)],
                       edge_dirs=[(0, 1, 1, 1)] * 4)
        for n in (bare, busy):
            n.begin_step()
            n.finish_step()
        assert busy.compute_s > bare.compute_s


class TestSSEWhatIf:
    def test_sse_cluster_narrows_the_gap(self):
        """With SSE the CPU cluster closes in but the GPU still wins at
        80^3 (the paper's forward-looking caveat)."""
        from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM, GPUClusterLBM
        cfg = ClusterConfig(sub_shape=(80, 80, 80), arrangement=(4, 4, 1),
                            timing_only=True, periodic=(False, False, False))
        cfg_sse = ClusterConfig(sub_shape=(80, 80, 80), arrangement=(4, 4, 1),
                                timing_only=True,
                                periodic=(False, False, False), use_sse=True)
        gpu = GPUClusterLBM(cfg).step()
        cpu = CPUClusterLBM(cfg).step()
        cpu_sse = CPUClusterLBM(cfg_sse).step()
        assert cpu_sse.total_s < cpu.total_s
        sp = cpu.total_s / gpu.total_s
        sp_sse = cpu_sse.total_s / gpu.total_s
        assert sp_sse < sp
        assert sp_sse > 1.5     # GPU still ahead
