"""Sparse fluid-compacted kernel: equivalence, selection, machinery.

The sparse kernel (:mod:`repro.lbm.sparse`) must be *bit-identical* to
the dense phase-split pipeline — the same contract the fused kernel
pins in ``tests/test_fused.py`` — because the cluster drivers mix
per-rank sparse/dense selection and the equality tests compare them
with ``np.array_equal``.  These tests pin that contract on the real
voxelized-city mask the kernel exists for, plus the selection rules
(``kernel=``/``sparse_threshold=``) and the workspace bookkeeping.
"""

import numpy as np
import pytest

from repro.lbm import LBMSolver, SparseStepKernel
from repro.lbm.boundaries import (BouzidiCurvedBoundary,
                                  EquilibriumVelocityInlet, OutflowBoundary)
from repro.lbm.lattice import D2Q9, D3Q19

CITY_SHAPE = (24, 20, 4)


def _city_solid(shape=CITY_SHAPE):
    """Solid-heavy (~55%) voxelization of the procedural city."""
    from repro.urban.city import times_square_like
    from repro.urban.voxelize import voxelize_city
    return voxelize_city(times_square_like(seed=7), shape,
                         resolution_m=24.0, ground_layers=2)


def _pair(rng, steps=8, ref_kernel="split", **kw):
    """Step a sparse and a reference solver from the same initial state."""
    sparse = LBMSolver(kernel="sparse", **kw)
    ref = LBMSolver(kernel=ref_kernel, **kw)
    u0 = (0.03 * rng.standard_normal((sparse.lattice.D,) + sparse.shape)
          ).astype(np.float32)
    u0[:, sparse.solid] = 0
    for s in (sparse, ref):
        s.initialize(rho=np.ones(s.shape, np.float32), u=u0.copy())
    sparse.step(steps)
    ref.step(steps)
    return sparse, ref


class TestSparseEquivalence:
    def test_city_periodic(self, rng):
        sparse, split = _pair(rng, shape=CITY_SHAPE, tau=0.7,
                              solid=_city_solid())
        assert sparse.kernel_used == "sparse"
        assert split.kernel_used == "split"
        assert sparse._sparse_kernel is not None
        assert np.array_equal(sparse.f, split.f)

    def test_city_periodic_with_force(self, rng):
        sparse, split = _pair(rng, shape=CITY_SHAPE, tau=0.7,
                              solid=_city_solid(), force=(1e-5, 0, 0))
        assert np.array_equal(sparse.f, split.f)

    def test_city_nonperiodic_inlet_outflow(self, rng):
        bcs = [EquilibriumVelocityInlet(D3Q19, 0, "low", (0.05, 0, 0)),
               OutflowBoundary(D3Q19, 0, "high")]
        sparse, split = _pair(rng, shape=CITY_SHAPE, tau=0.7,
                              solid=_city_solid(), periodic=False,
                              boundaries=bcs)
        assert sparse.kernel_used == "sparse"
        assert np.array_equal(sparse.f, split.f)

    def test_city_nonperiodic_with_force(self, rng):
        sparse, split = _pair(rng, shape=CITY_SHAPE, tau=0.7,
                              solid=_city_solid(), periodic=False,
                              force=(1e-5, 0, 0))
        assert np.array_equal(sparse.f, split.f)

    def test_city_matches_fused(self, rng):
        """Sparse == fused directly (both already == split)."""
        sparse, fused = _pair(rng, ref_kernel="fused", shape=CITY_SHAPE,
                              tau=0.7, solid=_city_solid())
        assert fused.kernel_used == "fused"
        assert np.array_equal(sparse.f, fused.f)

    def test_no_solid_degenerates_to_pure_streaming(self, rng):
        """kernel="sparse" with an empty mask: every site is fluid,
        the fold has no solid destinations, still bit-identical."""
        sparse, split = _pair(rng, shape=(10, 8, 6), tau=0.7)
        assert sparse._sparse_kernel.n_solid == 0
        assert np.array_equal(sparse.f, split.f)

    def test_d2q9(self, rng):
        solid = np.zeros((16, 12), bool)
        solid[4:9, 3:8] = True
        sparse, split = _pair(rng, shape=(16, 12), tau=0.7, lattice=D2Q9,
                              solid=solid)
        assert sparse.kernel_used == "sparse"
        assert np.array_equal(sparse.f, split.f)

    def test_mass_conserved(self, rng):
        # Solid-free: with obstacles, fluid-only mass fluctuates by
        # whatever full-way bounce-back parks in the solid layer each
        # step (identically in every kernel — the equivalence tests
        # above pin that); without them it must be conserved outright.
        s = LBMSolver(CITY_SHAPE, tau=0.7, kernel="sparse")
        u0 = (0.03 * rng.standard_normal((3,) + CITY_SHAPE)).astype(np.float32)
        s.initialize(rho=np.ones(CITY_SHAPE, np.float32), u=u0)
        m0 = s.total_mass()
        s.step(10)
        assert s.total_mass() == pytest.approx(m0, rel=1e-5)

    def test_gate_passes_with_mixed_ranks(self):
        """The ``check-sparse`` gate: single-domain + mixed-kernel
        cluster equivalence on the city mask, serial and processes."""
        from repro.lbm.sparse import run_sparse_equivalence_check
        report = run_sparse_equivalence_check(
            steps=2, backends=("serial", "processes"))
        assert report["occupancy"] > 0.5
        for rows in report["backends"].values():
            assert {r["kernel"] for r in rows} == {"sparse", "split"}


class TestKernelSelection:
    def test_auto_picks_sparse_above_threshold(self):
        s = LBMSolver(CITY_SHAPE, tau=0.7, solid=_city_solid())
        assert s.solid_fraction >= s.sparse_threshold
        s.step(1)
        assert s.kernel_used == "sparse"

    def test_auto_picks_fused_below_threshold(self, small_solid):
        s = LBMSolver((10, 8, 6), tau=0.7, solid=small_solid)
        assert s.solid_fraction < s.sparse_threshold
        s.step(1)
        assert s.kernel_used == "fused"

    def test_auto_threshold_is_tunable(self, small_solid):
        s = LBMSolver((10, 8, 6), tau=0.7, solid=small_solid,
                      sparse_threshold=0.0)
        s.step(1)
        assert s.kernel_used == "sparse"

    def test_auto_honours_fused_escape_hatch(self):
        s = LBMSolver(CITY_SHAPE, tau=0.7, solid=_city_solid(), fused=False)
        s.step(1)
        assert s.kernel_used == "split"
        assert s._sparse_kernel is None

    def test_mrt_falls_back_to_split(self):
        s = LBMSolver((8, 8, 8), tau=0.7, collision="mrt", kernel="sparse")
        s.step(2)
        assert s.kernel_used == "split"
        assert s._sparse_kernel is None

    def test_pre_stream_boundary_falls_back(self):
        bb = BouzidiCurvedBoundary(D3Q19, [((2, 2, 2), 1, 0.5)], (8, 8, 8))
        s = LBMSolver((8, 8, 8), tau=0.7, boundaries=[bb], kernel="sparse")
        s.step(2)
        assert s.kernel_used == "split"

    def test_invalid_kernel_name_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            LBMSolver((8, 8, 8), tau=0.7, kernel="dense")

    def test_kernel_rejects_non_bgk(self):
        s = LBMSolver((8, 8, 8), tau=0.7, collision="mrt")
        with pytest.raises(TypeError):
            SparseStepKernel(s)


class TestSparseMachinery:
    def test_workspace_reused_across_steps(self):
        s = LBMSolver(CITY_SHAPE, tau=0.7, solid=_city_solid(),
                      kernel="sparse")
        s.step(1)
        kern = s._sparse_kernel
        rho_buf, fc_buf = kern.rho, kern._fc
        s.step(5)
        assert s._sparse_kernel is kern
        assert kern.rho is rho_buf and kern._fc is fc_buf
        # allocation counters: workspace and gather tables built once
        assert s.counters.stats["sparse.workspace"].allocs == 12
        assert s.counters.stats["sparse.gather_tables"].allocs == 3

    def test_counters_record_kernel_marker(self):
        s = LBMSolver(CITY_SHAPE, tau=0.7, solid=_city_solid(),
                      kernel="sparse")
        s.step(4)
        assert s.counters.stats["kernel.sparse"].calls == 4
        assert "kernel.fused" not in s.counters.stats

    def test_compact_site_counts(self):
        solid = _city_solid()
        s = LBMSolver(CITY_SHAPE, tau=0.7, solid=solid, kernel="sparse")
        s.step(1)
        kern = s._sparse_kernel
        assert kern.n_fluid == int((~solid).sum())
        assert kern.n_solid == int(solid.sum())
        assert kern.n_fluid + kern.n_solid == int(np.prod(CITY_SHAPE))

    def test_shell_core_partition_tiles_fluid(self):
        s = LBMSolver(CITY_SHAPE, tau=0.7, solid=_city_solid(),
                      kernel="sparse")
        s.step(1)
        kern = s._sparse_kernel
        shell, core = kern._shell_core_idx()
        both = np.concatenate([shell, core])
        assert len(np.unique(both)) == both.size            # disjoint
        assert np.array_equal(np.sort(both), np.sort(kern._fl))

    def test_split_collide_phases_match_step(self, rng):
        """The cluster drivers step sparse ranks through
        collide_boundary/collide_inner + stream; that phase spelling
        must equal the single-call ``step()``."""
        solid = _city_solid()
        whole = LBMSolver(CITY_SHAPE, tau=0.7, solid=solid, kernel="sparse")
        phased = LBMSolver(CITY_SHAPE, tau=0.7, solid=solid, kernel="sparse")
        u0 = (0.03 * rng.standard_normal((3,) + CITY_SHAPE)).astype(np.float32)
        u0[:, solid] = 0
        for s in (whole, phased):
            s.initialize(rho=np.ones(CITY_SHAPE, np.float32), u=u0.copy())
        whole.step(3)
        for _ in range(3):
            phased.collide_boundary()
            phased.collide_inner()
            phased.fill_ghosts()
            phased.stream()
            phased.post_stream()
        assert np.array_equal(whole.f, phased.f)
