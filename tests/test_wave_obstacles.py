"""Tests for the distributed wave equation and obstacle helpers."""

import numpy as np
import pytest

from repro.lbm.obstacles import (backward_facing_step, cut_links_for_sphere,
                                 cylinder, sphere)
from repro.lbm.solver import LBMSolver
from repro.solvers.wave import (DistributedWave2D, step_reference,
                                wave_energy)


def _gaussian(n):
    x = np.arange(n)
    g = np.exp(-((x - n / 2) ** 2) / 8.0)
    return np.outer(g, g)


class TestWaveReference:
    def test_energy_conserved(self):
        u0 = _gaussian(24)
        up, u = step_reference(u0, u0, 0.25, steps=1)
        e0 = wave_energy(up, u, 0.25)
        for _ in range(5):
            up, u = step_reference(up, u, 0.25, steps=20)
            assert wave_energy(up, u, 0.25) == pytest.approx(e0, rel=1e-6)

    def test_pulse_propagates_outward(self):
        u0 = _gaussian(32)
        _, u = step_reference(u0, u0, 0.25, steps=20)
        # Centre amplitude drops as the ring expands.
        assert abs(u[16, 16]) < u0[16, 16]
        assert np.abs(u).max() > 0.01

    def test_standing_mode_frequency(self):
        """The (1,1) eigenmode of the fixed square oscillates at
        omega = C * pi * sqrt(2)/n: check the half-period sign flip."""
        n = 16
        courant = 0.5
        x = (np.arange(n) + 1) / (n + 1)
        mode = np.sin(np.pi * x)[:, None] * np.sin(np.pi * x)[None, :]
        # period T = 2 pi / (omega), omega = C*pi*sqrt(2)/(n+1) per step
        omega = courant * np.pi * np.sqrt(2.0) / (n + 1)
        half_period = int(round(np.pi / omega))
        up, u = step_reference(mode, mode, courant ** 2, steps=half_period)
        corr = float((u * mode).sum() / (mode * mode).sum())
        assert corr == pytest.approx(-1.0, abs=0.08)


class TestDistributedWave:
    @pytest.mark.parametrize("ranks", [(1, 1), (2, 2), (4, 1), (2, 3)])
    def test_matches_reference(self, ranks):
        u0 = _gaussian(24)
        ref_up, ref_u = step_reference(u0, u0, 0.25, steps=12)
        out = DistributedWave2D(u0, ranks, courant=0.5).run(12)
        assert np.allclose(out, ref_u, atol=1e-12)

    def test_unstable_courant_rejected(self):
        with pytest.raises(ValueError):
            DistributedWave2D(np.zeros((8, 8)), (2, 2), courant=0.9)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            DistributedWave2D(np.zeros((9, 8)), (2, 2))


class TestObstacles:
    def test_sphere_volume(self):
        s = sphere((20, 20, 20), (10, 10, 10), 6.0)
        vol = s.sum()
        expect = 4.0 / 3.0 * np.pi * 6 ** 3
        assert vol == pytest.approx(expect, rel=0.1)

    def test_cylinder_invariant_along_axis(self):
        c = cylinder((12, 12, 8), (6, 6), 3.0, axis=2)
        for z in range(1, 8):
            assert np.array_equal(c[:, :, z], c[:, :, 0])

    def test_step_geometry(self):
        s = backward_facing_step((20, 6, 10), step_height=4, step_length=8)
        assert s[:8, :, :4].all()
        assert not s[8:, :, :].any()
        assert not s[:, :, 4:].any()

    def test_cut_links_fractions_valid(self):
        links = cut_links_for_sphere((12, 12, 12), (6, 6, 6), 3.5)
        assert len(links) > 0
        for cell, i, q in links:
            assert 0.05 <= q <= 1.0
            assert 1 <= i <= 18

    def test_cut_links_only_at_surface(self):
        shape = (12, 12, 12)
        solid = sphere(shape, (6, 6, 6), 3.5)
        links = cut_links_for_sphere(shape, (6, 6, 6), 3.5)
        for cell, i, q in links:
            assert not solid[cell]          # fluid side
        # every listed link's neighbour is solid
        from repro.lbm.lattice import D3Q19
        for cell, i, q in links[:50]:
            nb = tuple(np.array(cell) + D3Q19.c[i])
            assert solid[nb]

    def test_sphere_flow_with_curved_boundary_stable(self):
        from repro.lbm.boundaries import BouzidiCurvedBoundary
        shape = (16, 12, 12)
        solid = sphere(shape, (8, 6, 6), 3.0)
        links = cut_links_for_sphere(shape, (8, 6, 6), 3.0)
        bc = BouzidiCurvedBoundary(
            __import__("repro.lbm.lattice", fromlist=["D3Q19"]).D3Q19,
            links, shape)
        s = LBMSolver(shape, tau=0.8, solid=solid, force=(2e-5, 0, 0),
                      boundaries=[bc], dtype=np.float64)
        s.step(80)
        assert np.isfinite(s.f).all()
        _, u = s.macroscopic()
        assert u[0][~solid].mean() > 0   # flow past the sphere develops
