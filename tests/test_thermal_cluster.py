"""Distributed HTLBM must match the single-domain hybrid thermal model."""

import numpy as np
import pytest

from repro.core.decomposition import BlockDecomposition
from repro.core.thermal_cluster import DistributedThermalLBM
from repro.lbm.thermal import HybridThermalLBM


def _setup(shape, rng, g_beta=1e-3, coupling=0.0, solid=None):
    ref = HybridThermalLBM(shape, tau=0.8, kappa=0.05, g_beta=g_beta,
                           energy_coupling=coupling, solid=solid)
    T0 = rng.random(shape)
    ref.set_temperature(T0)
    u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
    if solid is not None:
        u0[:, solid] = 0
    ref.flow.initialize(rho=np.ones(shape, np.float32), u=u0)
    return ref, T0, ref.flow.f.copy()


@pytest.mark.parametrize("arrangement", [(2, 1, 1), (2, 2, 1), (1, 2, 2)])
def test_distributed_matches_reference(rng, arrangement):
    sub = (6, 6, 6)
    shape = tuple(s * a for s, a in zip(sub, arrangement))
    ref, T0, f0 = _setup(shape, rng)
    decomp = BlockDecomposition(shape, arrangement)
    dist = DistributedThermalLBM(decomp, tau=0.8, kappa=0.05, g_beta=1e-3)
    dist.set_temperature(T0)
    dist.load_flow(f0)
    ref.step(5)
    dist.step(5)
    assert np.allclose(dist.gather_temperature(), ref.T, atol=1e-12)
    assert np.array_equal(dist.gather_flow(), ref.flow.f)


def test_distributed_with_energy_coupling_and_solid(rng):
    sub, arrangement = (6, 6, 6), (2, 2, 1)
    shape = (12, 12, 6)
    solid = np.zeros(shape, bool)
    solid[4:7, 4:7, 1:3] = True
    ref, T0, f0 = _setup(shape, rng, coupling=1e-3, solid=solid)
    decomp = BlockDecomposition(shape, arrangement)
    dist = DistributedThermalLBM(decomp, tau=0.8, kappa=0.05, g_beta=1e-3,
                                 energy_coupling=1e-3, solid=solid)
    dist.set_temperature(T0)
    dist.load_flow(f0)
    ref.step(4)
    dist.step(4)
    assert np.allclose(dist.gather_temperature(), ref.T, atol=1e-12)
    assert np.array_equal(dist.gather_flow(), ref.flow.f)


def test_heat_conserved_distributed(rng):
    """Insulating boundaries: total heat is invariant under the
    distributed advection-diffusion (zero-velocity flow)."""
    sub, arrangement = (6, 6, 6), (2, 1, 1)
    shape = (12, 6, 6)
    decomp = BlockDecomposition(shape, arrangement)
    dist = DistributedThermalLBM(decomp, tau=0.8, kappa=0.1, g_beta=0.0)
    T0 = rng.random(shape)
    dist.set_temperature(T0)
    dist.step(20)
    assert dist.gather_temperature().sum() == pytest.approx(T0.sum(),
                                                            rel=1e-10)


def test_convection_develops_distributed():
    """Hot floor drives upward motion across node boundaries."""
    from repro.lbm.boundaries import box_walls
    sub, arrangement = (8, 4, 10), (2, 1, 1)
    shape = (16, 4, 10)
    walls = box_walls(shape, axes=[2])
    decomp = BlockDecomposition(shape, arrangement)
    dist = DistributedThermalLBM(decomp, tau=0.8, kappa=0.04, g_beta=2e-3,
                                 solid=walls)
    T = np.zeros(shape)
    T[6:10, :, 1:3] = 1.0     # warm blob straddling the node boundary
    dist.set_temperature(T)
    dist.step(1)
    f = dist.gather_flow()
    from repro.lbm.macroscopic import macroscopic
    from repro.lbm.lattice import D3Q19
    _, u = macroscopic(D3Q19, f)
    assert u[2][6:10, :, 1:3].mean() > 0
