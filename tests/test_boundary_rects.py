"""Tests for the per-slice boundary rectangle coverage (Sec 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpu.boundary_rects import (BoundaryRectangles, boundary_region,
                                      cover_slice_with_rectangles)


class TestSliceCover:
    def test_single_rectangle(self):
        m = np.zeros((8, 8), bool)
        m[2:5, 3:6] = True
        rects = cover_slice_with_rectangles(m)
        assert len(rects) == 1
        r = rects[0]
        assert (r.y0, r.y1, r.x0, r.x1) == (2, 5, 3, 6)

    def test_two_separate_boxes(self):
        m = np.zeros((8, 8), bool)
        m[0:2, 0:2] = True
        m[5:7, 5:8] = True
        rects = cover_slice_with_rectangles(m)
        assert len(rects) == 2
        assert sum(r.area for r in rects) == 4 + 6

    def test_l_shape_cover_is_exact(self):
        m = np.zeros((6, 6), bool)
        m[1:5, 1:3] = True
        m[1:3, 3:5] = True
        rects = cover_slice_with_rectangles(m)
        cover = np.zeros_like(m)
        for r in rects:
            assert not cover[r.y0:r.y1, r.x0:r.x1].any()  # disjoint
            cover[r.y0:r.y1, r.x0:r.x1] = True
        assert np.array_equal(cover, m)

    def test_empty_mask(self):
        assert cover_slice_with_rectangles(np.zeros((4, 4), bool)) == []

    @given(hnp.arrays(bool, (12, 10)))
    @settings(max_examples=60, deadline=None)
    def test_cover_property(self, m):
        """Exact disjoint cover for arbitrary masks."""
        rects = cover_slice_with_rectangles(m)
        cover = np.zeros_like(m)
        for r in rects:
            assert not cover[r.y0:r.y1, r.x0:r.x1].any()
            cover[r.y0:r.y1, r.x0:r.x1] = True
        assert np.array_equal(cover, m)

    def test_1d_mask_rejected(self):
        with pytest.raises(ValueError):
            cover_slice_with_rectangles(np.zeros(5, bool))


class TestBoundaryRegion:
    def test_shell_around_box(self):
        solid = np.zeros((8, 8, 8), bool)
        solid[3:5, 3:5, 3:5] = True
        region = boundary_region(solid)
        assert not (region & solid).any()      # fluid only
        assert region[2, 3, 3] and region[5, 4, 4]
        assert not region[0, 0, 0]

    def test_empty_solid(self):
        assert not boundary_region(np.zeros((4, 4, 4), bool)).any()


class TestBoundaryRectangles:
    def test_memory_saving_for_sparse_city(self):
        """The Sec 4.2 rationale: boundary textures are far smaller
        than full-lattice storage for realistic geometry."""
        from repro.urban import times_square_like, voxelize_city
        solid = voxelize_city(times_square_like(), (64, 56, 12), 28.2)
        br = BoundaryRectangles(boundary_region(solid))
        assert br.covered_cells == br.boundary_cells     # exact
        assert br.memory_fraction() < 0.35               # big saving

    def test_covered_equals_boundary_cells(self):
        solid = np.zeros((10, 10, 4), bool)
        solid[4:6, 4:6, 1:3] = True
        br = BoundaryRectangles(boundary_region(solid))
        assert br.covered_cells == br.boundary_cells
        assert br.n_rectangles > 0

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            BoundaryRectangles(np.zeros((4, 4), bool))
