"""Tests for the online-visualization compositing extension (Sec 5)."""

import numpy as np
import pytest

from repro.viz.compositing import (CompositingTiming, binary_swap_time,
                                   composite_chain, composite_pair,
                                   distributed_volume_render,
                                   online_visualization_timing, render_slab)


class TestCompositingMath:
    def test_distributed_equals_single_volume(self, rng):
        """The crux: per-node slab rendering + over-compositing must be
        *exactly* the full-volume rendering."""
        vol = rng.random((16, 10, 8))
        full = render_slab(vol, axis=0)
        for n in (2, 4, 8):
            dist = distributed_volume_render(vol, n, axis=0)
            assert np.allclose(dist[0], full[0], atol=1e-12)
            assert np.allclose(dist[1], full[1], atol=1e-12)

    def test_over_operator_associative(self, rng):
        pairs = [(rng.random((5, 5)), rng.random((5, 5))) for _ in range(3)]
        left = composite_pair(composite_pair(pairs[0], pairs[1]), pairs[2])
        right = composite_pair(pairs[0], composite_pair(pairs[1], pairs[2]))
        assert np.allclose(left[0], right[0])
        assert np.allclose(left[1], right[1])

    def test_empty_volume_is_transparent(self):
        C, T = render_slab(np.zeros((4, 4, 4)))
        assert np.allclose(C, 0.0)
        assert np.allclose(T, 1.0)

    def test_dense_volume_is_opaque(self):
        C, T = render_slab(np.full((20, 4, 4), 50.0), absorption=1.0)
        assert (T < 1e-6).all()

    def test_indivisible_split_rejected(self, rng):
        with pytest.raises(ValueError):
            distributed_volume_render(rng.random((10, 4, 4)), 3)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            composite_chain([])

    def test_render_slab_validates(self):
        with pytest.raises(ValueError):
            render_slab(np.zeros((4, 4)))

    def test_matches_emission_absorption_module(self, rng):
        """render_slab agrees with the simpler viz.volume renderer."""
        from repro.viz import emission_absorption
        vol = rng.random((8, 6, 5))
        C, _ = render_slab(vol, axis=2)
        # emission_absorption composites along axis moving front=index 0.
        ref = emission_absorption(vol, axis=2)
        assert np.allclose(C.T, ref.T, atol=1e-12)


class TestSepiaModel:
    def test_binary_swap_grows_logarithmically(self):
        img = 1024 * 768 * 16
        t2 = binary_swap_time(2, img)
        t16 = binary_swap_time(16, img)
        t32 = binary_swap_time(32, img)
        assert t2 < t16 < t32
        assert t32 < 3 * t2        # log, not linear

    def test_single_node_free(self):
        assert binary_swap_time(1, 10 ** 6) == 0.0

    def test_online_visualization_keeps_up_with_simulation(self):
        """The Sec-5 claim: with the results already on the GPUs and a
        475 MB/s composing network, visual feedback is feasible — the
        frame pipeline is much faster than the 0.31 s simulation step."""
        t = online_visualization_timing(nodes=30)
        assert t.frame_s < 0.31
        assert t.fps > 3
        # Compositing itself is cheap: the GPU render pass dominates,
        # which is why "the simulation results already reside in the
        # GPUs" makes the scheme attractive.
        assert t.composite_s < t.render_s

    def test_decomposition_fields(self):
        t = online_visualization_timing(nodes=8, image_shape=(640, 480))
        assert isinstance(t, CompositingTiming)
        assert t.frame_s == pytest.approx(t.render_s + t.readout_s
                                          + t.composite_s)
        assert t.image_bytes == 640 * 480 * 16
