"""Tests for the merged per-neighbor halo wire.

Covers the packing manifests (:mod:`repro.core.halo`), the pack/unpack
runtime and adaptive compression controller (:mod:`repro.core.wire`),
the schedule/switch envelope accounting, merged-exchange bit-identity
on weighted cuts across every backend, the AA forward/reverse protocol
under merging, and the executed SPMD message counts.  The heavyweight
end-to-end sweep lives in ``python -m repro check-exchange``.
"""

import numpy as np
import pytest

from repro.core import ClusterConfig, CPUClusterLBM
from repro.core.decomposition import BlockDecomposition, uniform_cuts
from repro.core.halo import HaloPlan, PACK_MODES
from repro.core.schedule import CommSchedule
from repro.core.wire import (AdaptiveCompressionController, pack_halo,
                             unpack_halo)
from repro.lbm.solver import LBMSolver
from repro.net.switch import GigabitSwitch
from repro.perf.counters import KernelCounters

SUB = (6, 6, 4)
ARRANGEMENT = (2, 2, 1)
SHAPE = tuple(s * a for s, a in zip(SUB, ARRANGEMENT))


def _reference(shape, tau, rng, solid=None, steps=4):
    ref = LBMSolver(shape, tau=tau, solid=solid)
    ref.initialize(rho=np.ones(shape, np.float32),
                   u=(0.02 * rng.standard_normal((3,) + shape)
                      ).astype(np.float32))
    f0 = ref.f.copy()
    ref.step(steps)
    return ref.f.copy(), f0


class TestNeighborManifest:
    def setup_method(self):
        self.plan = HaloPlan(SUB)

    def test_segment_layout_is_deterministic(self):
        m = self.plan.neighbor_manifest(0, (1, -1), "pull")
        assert m.sides == (-1, 1)                  # side -1 always first
        offset = 0
        for seg in m.segments:
            assert seg.offset == offset
            assert seg.links == tuple(sorted(seg.links))
            assert seg.floats == len(seg.links) * int(
                np.prod(m.plane_shape))
            offset += seg.floats
        assert m.total_floats == offset
        assert m.nbytes == 4 * offset

    def test_plane_spans_padded_cross_section(self):
        for axis in range(3):
            m = self.plan.neighbor_manifest(axis, (1,), "pull")
            want = tuple(s + 2 for a, s in enumerate(SUB) if a != axis)
            assert m.plane_shape == want

    def test_five_links_per_segment(self):
        for axis in range(3):
            for mode in PACK_MODES:
                m = self.plan.neighbor_manifest(axis, (-1, 1), mode)
                assert all(len(seg.links) == 5 for seg in m.segments)

    def test_mode_link_selection(self):
        # pull / aa_reverse carry the links streaming *out* of the
        # side; aa_forward mirrors (reversed-slot layout).
        for axis in range(3):
            pull = set(self.plan.pack_links(axis, 1, "pull"))
            rev = set(self.plan.pack_links(axis, 1, "aa_reverse"))
            fwd = set(self.plan.pack_links(axis, 1, "aa_forward"))
            assert pull == rev
            assert fwd == set(self.plan.face_links(axis, -1))
            assert pull.isdisjoint(fwd)

    def test_manifests_are_cached(self):
        a = self.plan.neighbor_manifest(1, (1,), "pull")
        b = self.plan.neighbor_manifest(1, (1,), "pull")
        assert a is b

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            self.plan.neighbor_manifest(0, (1,), "push")
        with pytest.raises(ValueError, match="sides"):
            self.plan.neighbor_manifest(0, (), "pull")
        with pytest.raises(ValueError, match="sides"):
            self.plan.neighbor_manifest(0, (2,), "pull")

    def test_wire_message_count(self):
        assert self.plan.wire_message_count("merged", 4) == 1
        assert self.plan.wire_message_count("perface", 4) == 5
        with pytest.raises(ValueError, match="wire"):
            self.plan.wire_message_count("bulk")


class TestPackUnpack:
    def _fg(self, rng):
        padded = (19,) + tuple(s + 2 for s in SUB)
        return rng.random(padded).astype(np.float32)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    @pytest.mark.parametrize("side", [-1, 1])
    def test_pull_round_trip(self, rng, axis, side):
        plan = HaloPlan(SUB)
        sender = self._fg(rng)
        receiver = self._fg(rng)
        m = plan.neighbor_manifest(axis, (side,), "pull")
        buf = np.empty(m.total_floats, np.float32)
        pack_halo(sender, SUB, m, buf)
        unpack_halo(receiver, SUB, m, buf)
        border = 1 if side == -1 else SUB[axis]       # sender border layer
        ghost = SUB[axis] + 1 if side == -1 else 0    # receiver ghost at -side
        for q in m.segments[0].links:
            src = np.take(sender[q], border, axis=axis)
            dst = np.take(receiver[q], ghost, axis=axis)
            assert np.array_equal(dst, src), q

    def test_aa_reverse_writes_only_carried_links(self, rng):
        plan = HaloPlan(SUB)
        sender = self._fg(rng)
        receiver = self._fg(rng)
        before = receiver.copy()
        m = plan.neighbor_manifest(0, (1,), "aa_reverse")
        buf = np.empty(m.total_floats, np.float32)
        pack_halo(sender, SUB, m, buf)    # reads the sender's ghost shell
        unpack_halo(receiver, SUB, m, buf)
        carried = set(m.segments[0].links)
        for q in range(19):
            src = np.take(sender[q], SUB[0] + 1, axis=0)   # sender ghost
            dst = np.take(receiver[q], 1, axis=0)          # receiver border
            old = np.take(before[q], 1, axis=0)
            if q in carried:
                assert np.array_equal(dst, src), q
            else:
                # Uncarried border slots hold this rank's own scatter
                # and must survive the fold.
                assert np.array_equal(dst, old), q

    def test_both_sides_message_round_trips(self, rng):
        plan = HaloPlan(SUB)
        fg = self._fg(rng)
        m = plan.neighbor_manifest(2, (-1, 1), "pull")
        buf = np.empty(m.total_floats, np.float32)
        pack_halo(fg, SUB, m, buf)
        out = self._fg(rng)
        unpack_halo(out, SUB, m, buf)
        for seg in m.segments:
            border = 1 if seg.side == -1 else SUB[2]
            ghost = SUB[2] + 1 if seg.side == -1 else 0
            for q in seg.links:
                assert np.array_equal(np.take(out[q], ghost, axis=2),
                                      np.take(fg[q], border, axis=2))


class TestMergedBitIdentity:
    """The merged wire must reproduce the single-domain bits on every
    backend — including non-uniform (weighted) cuts and the AA
    forward/reverse protocol."""

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_weighted_cuts(self, rng, backend):
        solid = np.zeros(SHAPE, bool)
        solid[:SHAPE[0] // 3] = True      # x-low third all obstacle
        ref_f, f0 = _reference(SHAPE, 0.8, rng, solid=solid)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARRANGEMENT, tau=0.8,
                            solid=solid, decomposition="weighted",
                            backend=backend, autotune="heuristic",
                            max_workers=4 if backend == "threads" else 1)
        with CPUClusterLBM(cfg) as cluster:
            assert cluster.config.wire == "merged"
            assert (cluster.decomp.cuts[0]
                    != uniform_cuts(SHAPE[0], ARRANGEMENT[0]))
            cluster.load_global_distributions(f0)
            cluster.step(4)
            assert np.array_equal(cluster.gather_distributions(), ref_f)

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_aa_forward_reverse(self, rng, backend):
        ref_f, f0 = _reference(SHAPE, 0.7, rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARRANGEMENT, tau=0.7,
                            kernel="aa", backend=backend,
                            max_workers=4 if backend == "threads" else 1)
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(4)
            assert np.array_equal(cluster.gather_distributions(), ref_f)

    def test_compression_always_is_bit_identical(self, rng):
        ref_f, f0 = _reference(SHAPE, 0.7, rng)
        cfg = ClusterConfig(sub_shape=SUB, arrangement=ARRANGEMENT, tau=0.7,
                            compression="always")
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(4)
            assert np.array_equal(cluster.gather_distributions(), ref_f)
            saved = cluster.counters.stats["comm.compress.saved_bytes"]
            assert saved.value > 0        # the codec really engaged

    def test_wire_validation(self):
        with pytest.raises(ValueError, match="wire"):
            ClusterConfig(sub_shape=SUB, arrangement=ARRANGEMENT, tau=0.7,
                          wire="bulk")
        with pytest.raises(ValueError, match="compression"):
            ClusterConfig(sub_shape=SUB, arrangement=ARRANGEMENT, tau=0.7,
                          compression="sometimes")
        with pytest.raises(ValueError, match="merged"):
            ClusterConfig(sub_shape=SUB, arrangement=ARRANGEMENT, tau=0.7,
                          wire="perface", compression="always")


class TestAdaptiveController:
    def _halo(self, rng):
        # Smooth, near-uniform data: compresses far below break-even.
        return (np.full((5, 8, 6), 1 / 19, np.float32)
                + (1e-4 * rng.standard_normal((5, 8, 6))).astype(np.float32))

    def test_always_engages(self, rng):
        ctl = AdaptiveCompressionController(policy="always")
        wp = ctl.encode("k", self._halo(rng))
        assert wp.compressed and wp.data.dtype == np.uint8
        assert wp.wire_bytes < wp.raw_bytes

    def test_off_passes_through(self, rng):
        ctl = AdaptiveCompressionController(policy="off")
        arr = self._halo(rng)
        wp = ctl.encode("k", arr)
        assert not wp.compressed and wp.data.dtype == np.float32
        assert np.array_equal(ctl.decode("k", wp.data, arr.shape), arr)

    def test_adaptive_engages_on_slow_link(self, rng):
        ctl = AdaptiveCompressionController(policy="adaptive",
                                            bandwidth_bytes_per_s=1e4)
        wp = ctl.encode("k", self._halo(rng))
        st = ctl.channels["k"]
        assert st.probes == 1 and st.engaged and wp.compressed

    def test_adaptive_bypasses_on_fast_link(self, rng):
        # Fast interconnect: the codec can't keep up with the wire, so
        # even a perfect ratio loses once encode+decode time is charged.
        ctl = AdaptiveCompressionController(policy="adaptive",
                                            bandwidth_bytes_per_s=1e9)
        assert not ctl.worth_it(0.0)      # even a free lunch loses
        wp = ctl.encode("k", self._halo(rng))
        assert not wp.compressed
        assert ctl.channels["k"].probes == 1

    def test_bypassed_channel_reprobes_periodically(self, rng):
        ctl = AdaptiveCompressionController(policy="adaptive",
                                            bandwidth_bytes_per_s=1e12,
                                            probe_interval=4)
        arr = self._halo(rng)
        for _ in range(9):
            ctl.encode("k", arr)
        assert ctl.channels["k"].probes == 3    # msg 1, 5, 9

    def test_probes_do_not_desync_receiver(self, rng):
        tx = AdaptiveCompressionController(policy="adaptive",
                                           bandwidth_bytes_per_s=1e4)
        rx = AdaptiveCompressionController(policy="adaptive",
                                           bandwidth_bytes_per_s=1e4)
        arr = self._halo(rng)
        for step in range(4):
            a = arr + np.float32(1e-3 * step)
            out = rx.decode("k", tx.encode("k", a).data, a.shape)
            assert np.array_equal(out, a), step

    def test_counters_record_decisions(self, rng):
        counters = KernelCounters()
        ctl = AdaptiveCompressionController(policy="always",
                                            counters=counters)
        ctl.encode("k", self._halo(rng))
        assert counters.stats["comm.compress.engaged"].value == 1
        assert counters.stats["comm.bytes_wire"].value \
            < counters.stats["comm.bytes_raw"].value

    def test_summary_aggregates_channels(self, rng):
        ctl = AdaptiveCompressionController(policy="always")
        for key in ("a", "b"):
            ctl.encode(key, self._halo(rng))
        s = ctl.summary()
        assert s["channels"] == 2 and s["messages"] == 2
        assert s["engaged_channels"] == 2
        assert 0.0 < s["ratio"] < 1.0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            AdaptiveCompressionController(policy="maybe")


class TestScheduleEnvelopes:
    def _schedule(self, wire):
        decomp = BlockDecomposition(SHAPE, ARRANGEMENT,
                                    periodic=(True, True, True))
        return CommSchedule(decomp, HaloPlan(SUB), wire=wire)

    def test_merged_is_one_envelope_per_pair(self):
        sched = self._schedule("merged")
        assert all(m == 1 for rnd in sched.round_messages() for m in rnd)

    def test_perface_counts_piggybacked_edges(self):
        sched = self._schedule("perface")
        # 2D arrangement: each face message forwards 2 edge lines.
        assert all(m == 3 for rnd in sched.round_messages() for m in rnd)

    def test_round_messages_parallel_to_round_bytes(self):
        sched = self._schedule("merged")
        assert [len(r) for r in sched.round_messages()] \
            == [len(r) for r in sched.round_bytes()]

    def test_switch_single_message_expression_unchanged(self):
        sw = GigabitSwitch()
        assert sw.message_time(4096) == sw.message_time(4096, messages=1)
        assert sw.message_time(4096, messages=3) > sw.message_time(4096)

    def test_merged_phase_is_cheaper(self):
        sw = GigabitSwitch()
        merged = self._schedule("merged")
        perface = self._schedule("perface")
        assert merged.round_bytes() == perface.round_bytes()  # same volume
        t_merged = sw.phase_time(merged.round_bytes(), 4,
                                 round_messages=merged.round_messages())
        t_perface = sw.phase_time(perface.round_bytes(), 4,
                                  round_messages=perface.round_messages())
        assert t_merged < t_perface

    def test_invalid_wire_rejected(self):
        decomp = BlockDecomposition(SHAPE, ARRANGEMENT,
                                    periodic=(True, True, True))
        with pytest.raises(ValueError, match="wire"):
            CommSchedule(decomp, HaloPlan(SUB), wire="bulk")


class TestSPMDWire:
    def _run(self, rng, wire, compression="off", steps=2):
        from repro.core.spmd import SPMDClusterLBM
        from repro.net.simmpi import SimCluster
        from repro.perf.trace import Tracer

        decomp = BlockDecomposition(SHAPE, ARRANGEMENT,
                                    periodic=(True, True, True))
        ref_f, f0 = _reference(SHAPE, 0.7, rng, steps=steps)
        tracer = Tracer(enabled=True)
        spmd = SPMDClusterLBM(decomp, tau=0.7, f0=f0, wire=wire,
                              compression=compression)
        got, _ = spmd.run(steps, cluster=SimCluster(decomp.n_nodes,
                                                    tracer=tracer))
        assert np.array_equal(got, ref_f)
        return [e for e in tracer.events if e.name == "mpi.msg"], spmd

    def test_merged_sends_one_message_per_neighbor(self, rng):
        msgs, _ = self._run(rng, "merged")
        # (2,2,1) periodic: 4 ranks x 2 active axes x 1 both-sides
        # message = 8 per step.
        assert len(msgs) == 8 * 2
        per_channel: dict = {}
        for e in msgs:
            ch = (e.meta["src"], e.meta["dst"], e.meta["tag"])
            per_channel[ch] = per_channel.get(ch, 0) + 1
        assert all(n == 2 for n in per_channel.values())

    def test_merged_halves_perface_envelopes(self, rng):
        merged, _ = self._run(rng, "merged")
        perface, _ = self._run(rng, "perface")
        assert len(merged) < len(perface)
        assert len(perface) == 16 * 2

    def test_compressed_messages_carry_raw_bytes(self, rng):
        msgs, spmd = self._run(rng, "merged", compression="always")
        compressed = [e for e in msgs if "raw_bytes" in e.meta]
        assert compressed
        for e in compressed:
            assert e.meta["bytes"] < e.meta["raw_bytes"]
        assert all(s and s["engaged_channels"] > 0
                   for s in spmd.compression_summaries)

    def test_spmd_validation(self):
        from repro.core.spmd import SPMDClusterLBM
        decomp = BlockDecomposition(SHAPE, ARRANGEMENT,
                                    periodic=(True, True, True))
        with pytest.raises(ValueError, match="wire"):
            SPMDClusterLBM(decomp, tau=0.7, wire="bulk")
        with pytest.raises(ValueError, match="merged"):
            SPMDClusterLBM(decomp, tau=0.7, wire="perface",
                           compression="always")
