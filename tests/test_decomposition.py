"""Tests for block domain decomposition (Sec 4.3, Fig 6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decomposition import (BlockDecomposition, arrange_nodes_2d,
                                      arrange_nodes_3d, surface_to_volume)


class TestArrangements:
    @pytest.mark.parametrize("n,expect", [
        (1, (1, 1, 1)), (2, (2, 1, 1)), (4, (2, 2, 1)), (8, (4, 2, 1)),
        (12, (4, 3, 1)), (16, (4, 4, 1)), (20, (5, 4, 1)), (24, (6, 4, 1)),
        (28, (7, 4, 1)), (30, (6, 5, 1)), (32, (8, 4, 1)),
    ])
    def test_paper_2d_arrangements(self, n, expect):
        """The exact node grids of Table 1 (e.g. 32 = 8x4)."""
        assert arrange_nodes_2d(n) == expect

    @given(n=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_2d_product_property(self, n):
        w, h, d = arrange_nodes_2d(n)
        assert w * h * d == n and d == 1 and w >= h

    @pytest.mark.parametrize("n,expect", [(8, (2, 2, 2)), (27, (3, 3, 3)),
                                          (12, (3, 2, 2))])
    def test_3d_arrangements(self, n, expect):
        assert arrange_nodes_3d(n) == expect

    def test_cube_minimizes_surface_to_volume(self):
        cube = surface_to_volume((80, 80, 80))
        for shape in [(160, 80, 40), (320, 80, 20), (640, 40, 20)]:
            assert surface_to_volume(shape) > cube


class TestBlocks:
    def _decomp(self, periodic=(True, True, True)):
        return BlockDecomposition((16, 12, 8), (4, 3, 2), periodic=periodic)

    def test_partition_covers_lattice_exactly(self):
        d = self._decomp()
        counts = np.zeros((16, 12, 8), dtype=int)
        for b in d.blocks:
            counts[b.slices] += 1
        assert (counts == 1).all()

    @given(w=st.integers(1, 4), h=st.integers(1, 3), dd=st.integers(1, 2))
    @settings(max_examples=30, deadline=None)
    def test_partition_property(self, w, h, dd):
        shape = (w * 3, h * 2, dd * 4)
        d = BlockDecomposition(shape, (w, h, dd))
        counts = np.zeros(shape, dtype=int)
        for b in d.blocks:
            counts[b.slices] += 1
        assert (counts == 1).all()

    def test_rank_coords_round_trip(self):
        d = self._decomp()
        for r in range(d.n_nodes):
            assert d.rank_of(d.coords_of(r)) == r

    def test_indivisible_shape_gets_near_equal_cuts(self):
        """Non-divisible extents no longer hard-fail: the default cut
        profile is near-equal with the remainder on the first blocks."""
        d = BlockDecomposition((10, 10, 10), (3, 1, 1))
        assert d.cuts[0] == (4, 3, 3)
        assert d.sub_shape is None and not d.uniform
        counts = np.zeros((10, 10, 10), dtype=int)
        for b in d.blocks:
            counts[b.slices] += 1
        assert (counts == 1).all()

    def test_too_small_shape_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            BlockDecomposition((2, 10, 10), (3, 1, 1))

    def test_scatter_gather_round_trip(self, rng):
        d = self._decomp()
        field = rng.random((5, 16, 12, 8))
        parts = d.scatter_field(field)
        assert len(parts) == 24
        assert np.array_equal(d.gather_field(parts), field)


class TestNeighbors:
    def test_periodic_wrap(self):
        d = BlockDecomposition((8, 8, 4), (4, 2, 1))
        assert d.neighbor(0, 0, -1) == 3      # wraps in x
        assert d.neighbor(3, 0, +1) == 0

    def test_non_periodic_edge_is_none(self):
        d = BlockDecomposition((8, 8, 4), (4, 2, 1),
                               periodic=(False, False, False))
        assert d.neighbor(0, 0, -1) is None
        assert d.neighbor(3, 0, +1) is None
        assert d.neighbor(1, 0, +1) == 2

    def test_singleton_axis_has_no_neighbors(self):
        d = BlockDecomposition((8, 8, 4), (4, 2, 1))
        assert d.neighbor(0, 2, 1) is None

    def test_face_neighbor_counts_interior_vs_corner(self):
        d = BlockDecomposition((16, 12, 4), (4, 3, 1),
                               periodic=(False, False, False))
        corner = d.rank_of((0, 0, 0))
        interior = d.rank_of((1, 1, 0))
        assert len(d.face_neighbors(corner)) == 2
        assert len(d.face_neighbors(interior)) == 4

    def test_edge_neighbors_2d(self):
        d = BlockDecomposition((16, 12, 4), (4, 3, 1),
                               periodic=(False, False, False))
        interior = d.rank_of((1, 1, 0))
        assert len(d.edge_neighbors(interior)) == 4
        corner = d.rank_of((0, 0, 0))
        assert len(d.edge_neighbors(corner)) == 1

    def test_edge_neighbors_3d(self):
        d = BlockDecomposition((8, 8, 8), (2, 2, 2))
        # Fully periodic 2^3: every node has edge neighbours on all
        # 3 axis pairs x 4 sign combinations = 12 of Sec 4.3.
        assert len(d.edge_neighbors(0)) == 12

    def test_neighbor_symmetry(self):
        d = BlockDecomposition((16, 12, 8), (4, 3, 2))
        for r in range(d.n_nodes):
            for (axis, direction), nb in d.face_neighbors(r).items():
                back = d.face_neighbors(nb).get((axis, -direction))
                assert back == r
