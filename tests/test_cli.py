"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1", "--nodes", "1,4,32"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out
        assert "6.6" in out                 # the single-node speedup

    def test_table2(self, capsys):
        assert main(["table2", "--nodes", "1,32"]) == 0
        out = capsys.readouterr().out
        assert "Mcells/s" in out
        assert "IBM" in out                 # supercomputer context

    @pytest.mark.parametrize("fig", ["fig8", "fig9", "fig10"])
    def test_figures(self, capsys, fig):
        assert main([fig, "--nodes", "2,16,32"]) == 0
        out = capsys.readouterr().out
        assert any(ch in out for ch in "#*=")

    def test_strong(self, capsys):
        assert main(["strong"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_whatif(self, capsys):
        assert main(["whatif"]) == 0
        out = capsys.readouterr().out
        assert "Myrinet" in out
        assert "GPU(s)/node" in out

    def test_cost(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "512.0" in out
        assert "12,768" in out

    def test_dispersion(self, capsys):
        assert main(["dispersion"]) == 0
        out = capsys.readouterr().out
        assert "0.31" in out or "0.32" in out

    def test_report_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Strong scaling" in out
        assert "Cost accounting" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["report", "--out", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("# Reproduction report")
        assert "| 32 |" in text

    def test_verify_parser_wiring(self):
        args = build_parser().parse_args(["verify", "--skip-bench",
                                          "--threshold", "0.5"])
        assert args.command == "verify"
        assert args.skip_bench is True
        assert args.threshold == 0.5

    def test_verify_invokes_stages(self, monkeypatch, capsys):
        import subprocess
        calls = []
        monkeypatch.setattr(subprocess, "call",
                            lambda cmd, **kw: calls.append(cmd) or 0)
        assert main(["verify"]) == 0
        assert len(calls) == 9
        assert calls[0][-2:] == ["-x", "-q"]
        assert calls[1][-2:] == ["repro", "check-procs"]
        assert calls[2][-2:] == ["repro", "check-sparse"]
        assert calls[3][-2:] == ["repro", "check-aa"]
        assert calls[4][-2:] == ["repro", "check-trace"]
        assert calls[5][-2:] == ["repro", "check-balance"]
        assert calls[6][-2:] == ["repro", "check-exchange"]
        assert calls[7][-2:] == ["repro", "check-telemetry"]
        assert any("check_regression" in part for part in calls[8])
        assert "verify OK" in capsys.readouterr().out

    def test_verify_stops_on_failure(self, monkeypatch, capsys):
        import subprocess
        calls = []
        monkeypatch.setattr(subprocess, "call",
                            lambda cmd, **kw: calls.append(cmd) or 1)
        assert main(["verify"]) == 1
        assert len(calls) == 1  # bench guard never runs after test failure
        assert "FAILED" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])
