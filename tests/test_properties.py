"""Cross-module property-based tests (hypothesis).

These go beyond per-module invariants: random configurations of the
*composed* system must preserve the guarantees the reproduction rests
on — distributed == reference, bytes conserved, codecs lossless,
schedules valid.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cluster_lbm import ClusterConfig, GPUClusterLBM
from repro.core.compression import HaloCompressor
from repro.core.decomposition import BlockDecomposition
from repro.core.halo import HaloPlan
from repro.core.schedule import CommSchedule
from repro.lbm.equilibrium import equilibrium_site
from repro.lbm.lattice import D3Q19
from repro.lbm.solver import LBMSolver
from repro.net.switch import GigabitSwitch

arrangements = st.sampled_from([(2, 1, 1), (1, 2, 1), (2, 2, 1),
                                (3, 1, 1), (1, 1, 2), (2, 1, 2)])


class TestComposedSystem:
    @given(arrangement=arrangements, seed=st.integers(0, 10 ** 6),
           steps=st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_cluster_equals_reference_for_random_states(self, arrangement,
                                                        seed, steps):
        """The headline guarantee, hammered with random decompositions,
        random initial states and random step counts."""
        rng = np.random.default_rng(seed)
        sub = (4, 4, 4)
        shape = tuple(s * a for s, a in zip(sub, arrangement))
        ref = LBMSolver(shape, tau=0.8)
        u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
        ref.initialize(rho=np.ones(shape, np.float32), u=u0)
        f0 = ref.f.copy()
        ref.step(steps)
        cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.8)
        cluster = GPUClusterLBM(cfg)
        cluster.load_global_distributions(f0)
        cluster.step(steps)
        assert np.array_equal(cluster.gather_distributions(), ref.f)

    @given(w=st.integers(1, 5), h=st.integers(1, 4),
           periodic=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_schedule_bytes_conserved(self, w, h, periodic):
        """Every face adjacency is priced exactly once, so the summed
        schedule bytes equal the decomposition's adjacency bytes."""
        sub = (6, 6, 6)
        shape = tuple(s * a for s, a in zip(sub, (w, h, 1)))
        d = BlockDecomposition(shape, (w, h, 1),
                               periodic=(periodic, periodic, False))
        plan = HaloPlan(sub)
        sched = CommSchedule(d, plan)
        priced_pairs = sched.total_pairs()
        adjacency = sum(len(d.face_neighbors(r)) for r in range(d.n_nodes))
        # Each bidirectional pair covers two directed adjacencies,
        # except 2-node periodic rings where both faces map to one pair.
        assert priced_pairs <= adjacency
        assert priced_pairs >= adjacency // 2 - d.n_nodes

    @given(seed=st.integers(0, 10 ** 6),
           shape=st.tuples(st.integers(1, 20), st.integers(1, 20)))
    @settings(max_examples=30, deadline=None)
    def test_compression_lossless_property(self, seed, shape):
        rng = np.random.default_rng(seed)
        codec = HaloCompressor(mode="delta")
        a = rng.standard_normal(shape).astype(np.float32)
        for _ in range(3):
            a = a + rng.standard_normal(shape).astype(np.float32) * 0.01
            out = codec.decompress("k", codec.compress("k", a), a.shape)
            assert np.array_equal(out, a)

    @given(bytes_a=st.integers(0, 10 ** 6), bytes_b=st.integers(0, 10 ** 6),
           extra=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_switch_phase_monotone(self, bytes_a, bytes_b, extra):
        sw = GigabitSwitch()
        small, big = sorted((bytes_a, bytes_b))
        assert (sw.phase_time([[small]], 2)
                <= sw.phase_time([[big]], 2) + 1e-15)
        assert (sw.phase_time([[big]], 2)
                <= sw.phase_time([[big] * extra], 2) + 1e-15)

    @given(ux=st.floats(-0.1, 0.1), uy=st.floats(-0.1, 0.1),
           uz=st.floats(-0.1, 0.1))
    @settings(max_examples=30, deadline=None)
    def test_uniform_flow_is_invariant_distributed(self, ux, uy, uz):
        """Galilean invariance survives decomposition: a uniform flow
        stays uniform across node boundaries."""
        cfg = ClusterConfig(sub_shape=(4, 4, 4), arrangement=(2, 1, 1),
                            tau=0.8)
        cluster = GPUClusterLBM(cfg)
        feq = equilibrium_site(D3Q19, 1.0, (ux, uy, uz)).astype(np.float32)
        f0 = np.broadcast_to(feq.reshape(19, 1, 1, 1),
                             (19, 8, 4, 4)).copy()
        cluster.load_global_distributions(f0)
        cluster.step(3)
        out = cluster.gather_distributions()
        assert np.allclose(out, f0, atol=1e-6)

    @given(n=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_arrangement_covers_n(self, n):
        from repro.core.decomposition import arrange_nodes_2d, arrange_nodes_3d
        for arr in (arrange_nodes_2d(n), arrange_nodes_3d(n)):
            assert int(np.prod(arr)) == n


class TestTimingModelProperties:
    @given(nodes=st.sampled_from([2, 4, 8, 16, 24, 32]),
           edge=st.sampled_from([20, 40, 80]))
    @settings(max_examples=12, deadline=None)
    def test_bigger_subdomains_better_ratio(self, nodes, edge):
        """The compute/communication argument of Sec 4.4: larger
        sub-domains raise the GPU/CPU speedup (toward the 6.64 cap)."""
        from repro.perf.model import cluster_timings
        g_small, c_small = cluster_timings(nodes, (edge, edge, edge))
        g_big, c_big = cluster_timings(nodes, (edge * 2,) * 3)
        sp_small = c_small.total_s / g_small.total_s
        sp_big = c_big.total_s / g_big.total_s
        assert sp_big >= sp_small - 1e-9

    @given(nodes=st.sampled_from([1, 2, 4, 8, 12, 16, 20, 24, 28, 30, 32]))
    @settings(max_examples=11, deadline=None)
    def test_gpu_always_beats_cpu_at_80cubed(self, nodes):
        from repro.perf.model import cluster_timings
        gpu, cpu = cluster_timings(nodes)
        assert gpu.total_s < cpu.total_s

    @given(nodes=st.sampled_from([2, 8, 16, 32]))
    @settings(max_examples=4, deadline=None)
    def test_timing_decomposition_consistent(self, nodes):
        from repro.perf.model import cluster_timings
        gpu, _ = cluster_timings(nodes)
        assert gpu.total_s == pytest.approx(
            gpu.compute_s + gpu.agp_s + gpu.net_nonoverlap_s)
        assert gpu.net_nonoverlap_s <= gpu.net_total_s
