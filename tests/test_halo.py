"""Tests for the D3Q19 halo plan: the 5 N^2 / N message accounting."""

import numpy as np
import pytest

from repro.core.halo import HaloPlan
from repro.lbm.lattice import D3Q19


@pytest.fixture
def plan():
    return HaloPlan((80, 80, 80))


class TestLinkSets:
    def test_face_links_count(self, plan):
        for axis in range(3):
            for direction in (-1, 1):
                assert len(plan.face_links(axis, direction)) == 5

    def test_face_links_point_outward(self, plan):
        links = plan.face_links(0, +1)
        assert (D3Q19.c[links, 0] == 1).all()

    def test_edge_link_is_single(self, plan):
        assert len(plan.edge_links(0, 1, 1, -1)) == 1

    def test_bad_direction(self, plan):
        with pytest.raises(ValueError):
            plan.face_links(0, 0)


class TestLinkCaching:
    """face_links/edge_links are memoised per (axis, direction)."""

    def test_cached_face_links_match_fresh_scan(self, plan):
        for axis in range(3):
            assert np.array_equal(plan.face_links(axis, 1),
                                  D3Q19.links_with_positive(axis))
            assert np.array_equal(plan.face_links(axis, -1),
                                  D3Q19.links_with_negative(axis))

    def test_cached_edge_links_match_fresh_scan(self, plan):
        assert np.array_equal(plan.edge_links(0, 1, 1, -1),
                              D3Q19.edge_links(0, 1, 1, -1))

    def test_same_object_returned_twice(self, plan):
        assert plan.face_links(1, -1) is plan.face_links(1, -1)
        assert plan.edge_links(0, 1, 2, 1) is plan.edge_links(0, 1, 2, 1)

    def test_cached_arrays_are_read_only(self, plan):
        with pytest.raises(ValueError):
            plan.face_links(0, 1)[0] = 99
        with pytest.raises(ValueError):
            plan.edge_links(0, 1, 1, -1)[0] = 99


class TestByteAccounting:
    def test_face_bytes_are_5N2(self, plan):
        """The paper's 5 N^2 values (x4 bytes/float)."""
        assert plan.face_bytes(0) == 5 * 80 * 80 * 4

    def test_edge_bytes_are_N(self, plan):
        assert plan.edge_bytes(0, 1) == 80 * 4

    def test_anisotropic_subdomain(self):
        p = HaloPlan((40, 80, 20))
        assert p.face_cells(0) == 80 * 20
        assert p.face_cells(1) == 40 * 20
        assert p.edge_cells(0, 1) == 20

    def test_face_message_with_piggyback(self, plan):
        msg = plan.face_message(0, +1, piggyback_edges=2)
        assert msg.nbytes == (5 * 80 * 80 + 2 * 80) * 4
        assert len(msg.links) == 5

    def test_indirect_overhead_is_c_over_5N(self, plan):
        """Sec 4.3: 'increases the packet size ... only by c/(5N)'."""
        for c in (1, 2, 4):
            assert plan.indirect_overhead_fraction(0, c) == pytest.approx(
                c / (5 * 80))

    def test_indirect_overhead_is_small(self, plan):
        assert plan.indirect_overhead_fraction(0, 4) < 0.011
