"""Tests for streaming (propagation) kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lbm.lattice import D3Q19
from repro.lbm.streaming import (fill_ghosts_periodic, interior,
                                 pad_with_ghosts, stream_periodic, stream_pull)


def _delta_f(shape, link, pos):
    f = np.zeros((19,) + shape, dtype=np.float32)
    f[(link,) + pos] = 1.0
    return f


class TestPeriodicStreaming:
    def test_single_particle_moves_by_link_velocity(self):
        shape = (6, 5, 4)
        for link in (1, 7, 18):
            f = _delta_f(shape, link, (2, 2, 2))
            out = stream_periodic(D3Q19, f)
            c = D3Q19.c[link]
            expect = (2 + c[0], 2 + c[1], 2 + c[2])
            assert out[(link,) + expect] == 1.0
            assert out.sum() == 1.0

    def test_wraps_around(self):
        shape = (4, 4, 4)
        f = _delta_f(shape, 1, (3, 0, 0))   # +x link at x edge
        out = stream_periodic(D3Q19, f)
        assert out[1, 0, 0, 0] == 1.0

    def test_rest_link_stays(self):
        f = _delta_f((4, 4, 4), 0, (1, 2, 3))
        out = stream_periodic(D3Q19, f)
        assert out[0, 1, 2, 3] == 1.0

    def test_mass_conserved(self, rng):
        f = rng.random((19, 5, 4, 3)).astype(np.float32)
        out = stream_periodic(D3Q19, f)
        assert out.sum(dtype=np.float64) == pytest.approx(f.sum(dtype=np.float64))

    def test_stream_then_reverse_is_identity(self, rng):
        f = rng.random((19, 5, 4, 3)).astype(np.float32)
        out = stream_periodic(D3Q19, f)
        # Streaming the opposite links backward undoes the shift.
        back = np.empty_like(out)
        for i in range(19):
            shift = tuple(-int(s) for s in D3Q19.c[i])
            back[i] = np.roll(out[i], shift, axis=(0, 1, 2))
        assert np.array_equal(back, f)


class TestPullStreaming:
    def test_matches_periodic_with_wrapped_ghosts(self, rng):
        f = rng.random((19, 6, 5, 4)).astype(np.float32)
        ref = stream_periodic(D3Q19, f)
        fg = pad_with_ghosts(f)
        fill_ghosts_periodic(fg)
        out = stream_pull(D3Q19, fg)
        inner = (slice(None),) + interior(3)
        assert np.array_equal(out[inner], ref)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_property(self, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(rng.integers(3, 7, 3))
        f = rng.random((19,) + shape).astype(np.float32)
        fg = pad_with_ghosts(f)
        fill_ghosts_periodic(fg)
        out = stream_pull(D3Q19, fg)
        inner = (slice(None),) + interior(3)
        assert np.array_equal(out[inner], stream_periodic(D3Q19, f))

    def test_ghost_values_stream_into_interior(self):
        shape = (4, 4, 4)
        fg = np.zeros((19,) + tuple(s + 2 for s in shape), dtype=np.float32)
        # Put a value in the low-x ghost face on a +x link; it must
        # arrive at the first interior layer.
        fg[1, 0, 2, 2] = 7.0
        out = stream_pull(D3Q19, fg)
        assert out[1, 1, 2, 2] == 7.0

    def test_corner_ghost_streams_diagonally(self):
        shape = (4, 4, 4)
        link = int(D3Q19.edge_links(0, 1, 1, 1)[0])  # c = (1, 1, 0)
        fg = np.zeros((19,) + tuple(s + 2 for s in shape), dtype=np.float32)
        fg[link, 0, 0, 3] = 5.0
        out = stream_pull(D3Q19, fg)
        assert out[link, 1, 1, 3] == 5.0


class TestGhostHelpers:
    def test_pad_shape(self):
        f = np.ones((19, 3, 4, 5), dtype=np.float32)
        fg = pad_with_ghosts(f)
        assert fg.shape == (19, 5, 6, 7)
        inner = (slice(None),) + interior(3)
        assert np.array_equal(fg[inner], f)

    def test_fill_ghosts_periodic_faces(self):
        f = np.arange(2 * 3 * 3 * 3, dtype=np.float32).reshape(2, 3, 3, 3)
        fg = pad_with_ghosts(f)
        fill_ghosts_periodic(fg)
        assert np.array_equal(fg[:, 0, 1:-1, 1:-1], f[:, -1])
        assert np.array_equal(fg[:, -1, 1:-1, 1:-1], f[:, 0])

    def test_fill_ghosts_periodic_corners(self):
        f = np.arange(27, dtype=np.float32).reshape(1, 3, 3, 3)
        fg = pad_with_ghosts(f)
        fill_ghosts_periodic(fg)
        assert fg[0, 0, 0, 0] == f[0, -1, -1, -1]
        assert fg[0, -1, -1, -1] == f[0, 0, 0, 0]
