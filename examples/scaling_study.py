#!/usr/bin/env python
"""Reproduce the paper's scaling study (Tables 1-2, Figs 8-10, Sec 4.4).

Sweeps the simulated GPU cluster and its CPU-cluster baseline over the
paper's node counts (80^3 sub-domain per node, 2D arrangement) and
prints:

* Table 1  — per-step times and GPU/CPU speedup;
* Table 2  — cells/s, weak-scaling speedup, efficiency;
* Fig 8    — network time: overlapped vs non-overlapping remainder;
* the strong-scaling experiment (fixed 160x160x80 lattice);
* the Sec 4.4 what-if enhancements (Myrinet / PCI-Express / 256 MB).

Usage:  python examples/scaling_study.py [--nodes 1,2,4,...] [--quick]
"""

from __future__ import annotations

import argparse

from repro.perf.model import (PAPER_NODE_COUNTS, PAPER_TABLE1, PAPER_TABLE2,
                              strong_scaling_rows, table1_rows, table2_rows)
from repro.perf.whatif import enhancement_speedups


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nodes", default=None,
                    help="comma-separated node counts (default: paper's)")
    ap.add_argument("--quick", action="store_true",
                    help="skip the what-if sweep")
    args = ap.parse_args()
    counts = (tuple(int(n) for n in args.nodes.split(","))
              if args.nodes else PAPER_NODE_COUNTS)

    print("=== Table 1: per-step execution time (ms), 80^3 per node ===")
    print(f"{'nodes':>5} {'CPU total':>9} {'GPU comp':>8} {'GPU<->CPU':>9} "
          f"{'net(total)':>10} {'non-ovl':>7} {'GPU total':>9} {'speedup':>7}"
          f"   paper(total/speedup)")
    for row in table1_rows(counts):
        ref = PAPER_TABLE1.get(row.nodes)
        ptxt = f"{ref[4]:>6} / {ref[5]:.2f}" if ref else "      -"
        print(f"{row.nodes:>5} {row.cpu_total:>9.0f} {row.gpu_compute:>8.0f} "
              f"{row.gpu_agp:>9.0f} {row.net_total:>10.0f} "
              f"{row.net_nonoverlap:>7.0f} {row.gpu_total:>9.0f} "
              f"{row.speedup:>7.2f}   {ptxt}")

    print("\n=== Table 2: throughput and efficiency ===")
    print(f"{'nodes':>5} {'Mcells/s':>9} {'speedup':>8} {'efficiency':>10}"
          f"   paper(Mcells/s, eff%)")
    for row in table2_rows(counts):
        ref = PAPER_TABLE2.get(row.nodes)
        sp = f"{row.speedup:8.2f}" if row.speedup else "       -"
        ef = f"{row.efficiency * 100:9.1f}%" if row.efficiency else "         -"
        ptxt = (f"{ref[0]:>5.1f}, {ref[2] if ref[2] else '-'}"
                if ref else "-")
        print(f"{row.nodes:>5} {row.cells_per_s / 1e6:>9.1f} {sp} {ef}   {ptxt}")

    print("\n=== Strong scaling: fixed 160x160x80 lattice (Sec 4.4) ===")
    for r in strong_scaling_rows():
        print(f"  {r['nodes']:>2} nodes, sub-domain {r['sub_shape']}: "
              f"GPU {r['gpu_total_ms']:.0f} ms, CPU {r['cpu_total_ms']:.0f} ms, "
              f"speedup {r['speedup']:.2f} "
              f"{'(paper: 5.3)' if r['nodes'] == 4 else ''}"
              f"{'(paper: 2.4)' if r['nodes'] == 16 else ''}")

    if not args.quick:
        print("\n=== What-if enhancements at 32 nodes (Sec 4.4) ===")
        for label, speedup in enhancement_speedups().items():
            print(f"  {label}: {speedup:.2f}x")


if __name__ == "__main__":
    main()
