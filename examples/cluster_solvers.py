#!/usr/bin/env python
"""The Sec-6 computations on the simulated cluster.

Runs the paper's "other potential applications" end to end on the
SimMPI message-passing layer:

* a cellular automaton (Game of Life) with halo exchange;
* the explicit heat equation with proxy points (Fig 14);
* a distributed sparse system A x = y solved with Conjugate Gradient,
  Jacobi and red-black Gauss-Seidel over the Fig-15 matrix/vector
  decomposition;
* an unstructured-grid diffusion via indirection textures on the
  simulated GPU.

Usage:  python examples/cluster_solvers.py [--ranks 4] [--n 24]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.net import SimCluster
from repro.solvers import (DistributedCA, DistributedCSR, DistributedHeat2D,
                           IndirectionTextureGrid, build_disk_mesh,
                           conjugate_gradient, jacobi, life_rule,
                           red_black_gauss_seidel)
from repro.solvers.krylov import poisson_2d


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--n", type=int, default=24,
                    help="grid edge for the PDE/CA problems")
    args = ap.parse_args()
    rng = np.random.default_rng(42)
    n, ranks = args.n, args.ranks

    print(f"== Game of Life on {ranks} ranks ({n}x{n} torus) ==")
    grid = (rng.random((n, n)) < 0.3).astype(np.int8)
    cluster = SimCluster(ranks)
    out = DistributedCA(grid, ranks, life_rule).run(20, cluster=cluster)
    print(f"   alive after 20 generations: {int(out.sum())} "
          f"(started with {int(grid.sum())}); "
          f"max simulated node clock: {max(cluster.clocks) * 1e3:.1f} ms")

    print(f"== Explicit heat equation with proxy points, {ranks} ranks ==")
    u0 = np.zeros((n, n))
    u0[n // 4:n // 2, n // 4:n // 2] = 1.0
    out = DistributedHeat2D(u0, (2, ranks // 2), kappa=0.2).run(50)
    print(f"   peak {u0.max():.2f} -> {out.max():.3f}, "
          f"heat conserved: {np.isclose(out.sum(), u0.sum())}")

    print(f"== Distributed sparse solvers (Fig 15), {ranks} ranks ==")
    A, color = poisson_2d(n)
    x_true = rng.random(n * n)
    b = A @ x_true
    dist = DistributedCSR(A, ranks)
    print(f"   proxy/local communication ratio: "
          f"{dist.communication_ratio():.4f} (O(1/N), Sec 6)")
    x, it = conjugate_gradient(dist, b, tol=1e-9)
    print(f"   CG:           {it:>4} iters, err {np.abs(x - x_true).max():.2e}")
    x, it = jacobi(dist, b, A.diagonal(), tol=1e-7, maxiter=4000)
    print(f"   Jacobi:       {it:>4} iters, err {np.abs(x - x_true).max():.2e}")
    x, it = red_black_gauss_seidel(A, b, color, n_ranks=2, tol=1e-7,
                                   maxiter=3000)
    print(f"   RB Gauss-Seidel: {it} iters, err {np.abs(x - x_true).max():.2e}")

    print("== Unstructured grid via indirection textures (Sec 6) ==")
    pts, adj = build_disk_mesh(6)
    g = IndirectionTextureGrid(adj)
    x0 = rng.random(len(adj)).astype(np.float32)
    g.load(x0)
    g.smooth(10, lam=0.5)
    ref = g.reference_smooth(x0, adj, 10, lam=0.5)
    print(f"   {len(adj)} points, max valence "
          f"{max(len(a) for a in adj)}; GPU vs reference diff "
          f"{np.abs(g.read() - ref).max():.1e}; "
          f"fetches/pass/point = {g._program.tex_fetches} "
          "(2 per neighbour: indirection + dependent)")


if __name__ == "__main__":
    main()
