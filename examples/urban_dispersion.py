#!/usr/bin/env python
"""Urban airborne dispersion in a Times-Square-like city (paper Sec 5).

Builds a seeded synthetic midtown-Manhattan city (91 blocks, ~850
buildings), voxelizes it onto the lattice, spins up a northeasterly
wind with the D3Q19 BGK LBM, then releases tracer particles that
propagate along lattice links with probabilities f_i / rho (Lowe &
Succi), and writes three images:

* ``urban_streamlines.ppm``  — streamlines colored blue (horizontal)
  to white (vertical), the Fig-12 analogue;
* ``urban_density.pgm``      — volume-rendered contaminant density,
  the Fig-13 analogue;
* ``urban_footprint.pgm``    — the voxelized city footprint.

The default runs a downscaled domain so it finishes in seconds; pass
``--shape 480,400,80 --timing-only`` to see the paper-scale per-step
cost on 30 simulated GPU nodes (0.31 s/step in the paper).

Usage:  python examples/urban_dispersion.py [--shape 96,80,16]
            [--spinup 80] [--steps 60] [--tracers 2000] [--outdir .]
"""

from __future__ import annotations

import argparse
import os

import numpy as np

from repro.urban import DispersionScenario, times_square_like
from repro.viz import (emission_absorption, seed_streamlines, write_pgm,
                       write_ppm)
from repro.viz.volume import colorize_vertical


def render_streamlines(u, solid, path: str, n: int = 24) -> int:
    """Project streamlines to the ground plane as an RGB image."""
    nx, ny, _ = solid.shape
    img = np.zeros((ny, nx, 3))
    img[solid.any(axis=2).T] = (0.25, 0.25, 0.25)   # buildings in gray
    lines = seed_streamlines(u, n=n, solid=solid)
    for pts, vert in lines:
        for (x, y, _z), v in zip(pts, vert):
            img[int(np.clip(y, 0, ny - 1)), int(np.clip(x, 0, nx - 1))] = (
                colorize_vertical(v * 4))
    write_ppm(path, img[::-1])
    return len(lines)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--shape", default="96,80,16")
    ap.add_argument("--spinup", type=int, default=80,
                    help="flow steps before the release (paper: 1000)")
    ap.add_argument("--steps", type=int, default=60,
                    help="tracer propagation steps")
    ap.add_argument("--tracers", type=int, default=2000)
    ap.add_argument("--outdir", default=".")
    ap.add_argument("--timing-only", action="store_true",
                    help="paper-scale timing on 30 simulated GPU nodes")
    args = ap.parse_args()
    shape = tuple(int(s) for s in args.shape.split(","))

    if args.timing_only:
        scenario = DispersionScenario(shape=shape)
        cluster = scenario.make_cluster((6, 5, 1), timing_only=True)
        t = cluster.step()
        print(f"paper-scale {shape} on 30 GPU nodes: "
              f"{t.total_s:.3f} s/step (paper: 0.31 s/step)")
        return

    # Scale the resolution so the same-sized city fits the lattice.
    resolution = 1660.0 / (shape[0] * 0.92)
    city = times_square_like()
    scenario = DispersionScenario(shape=shape, resolution_m=resolution,
                                  city=city, wind_speed=0.06, tau=0.6)
    print(f"city: {city.n_blocks} blocks, {city.n_buildings} buildings; "
          f"lattice {shape} at {resolution:.1f} m/cell, "
          f"{scenario.solid.mean() * 100:.1f}% solid")

    solver = scenario.make_single_solver()
    print(f"spinning up the wind field ({args.spinup} steps) ...")
    solver.step(args.spinup)
    rho, u = solver.macroscopic()
    print(f"  mean |u| above ground: "
          f"{np.linalg.norm(u, axis=0)[~scenario.solid].mean():.3f} "
          "(lattice units)")

    print(f"releasing {args.tracers} tracers, propagating {args.steps} steps ...")
    cloud = scenario.release_tracers(args.tracers)
    start = cloud.center_of_mass().copy()
    for _ in range(args.steps):
        solver.step(1)
        cloud.step(solver.f)
    drift = cloud.center_of_mass() - start
    print(f"  plume drift: {drift.round(2)} cells "
          "(expect downwind: -x, -y, upward mixing)")

    os.makedirs(args.outdir, exist_ok=True)
    n_lines = render_streamlines(u, scenario.solid,
                                 os.path.join(args.outdir, "urban_streamlines.ppm"))
    conc = cloud.concentration()
    write_pgm(os.path.join(args.outdir, "urban_density.pgm"),
              emission_absorption(conc, axis=2).T[::-1])
    write_pgm(os.path.join(args.outdir, "urban_footprint.pgm"),
              scenario.solid.any(axis=2).astype(float).T[::-1])
    print(f"wrote urban_streamlines.ppm ({n_lines} lines), "
          "urban_density.pgm, urban_footprint.pgm")


if __name__ == "__main__":
    main()
