#!/usr/bin/env python
"""Quickstart: parallel LBM flow around an obstacle on the GPU cluster.

Runs a small wind-tunnel problem three ways and shows they agree:

1. the single-domain reference solver (plain numpy);
2. the *texture* path — the same LBM as fragment programs on one
   simulated GeForce FX 5800 Ultra (Sec 4.2 of the paper);
3. the GPU *cluster* — four simulated GPU nodes with the paper's
   scheduled halo exchange (Sec 4.3) — plus the per-step timing
   decomposition the paper reports in Table 1.

Usage:  python examples/quickstart.py [--shape 24,16,8] [--steps 20]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import ClusterConfig, GPUClusterLBM
from repro.gpu import GPULBMSolver
from repro.lbm import LBMSolver


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--shape", default="24,16,8",
                    help="lattice shape nx,ny,nz (each even)")
    ap.add_argument("--steps", type=int, default=20)
    ap.add_argument("--tau", type=float, default=0.8)
    args = ap.parse_args()
    shape = tuple(int(s) for s in args.shape.split(","))

    # A box obstacle in a periodic domain with a gentle body force
    # driving flow in +x (the numerical content is identical on all
    # three paths, so we can diff the results exactly).
    solid = np.zeros(shape, dtype=bool)
    cx, cy, cz = (s // 2 for s in shape)
    solid[cx - 2:cx + 2, cy - 2:cy + 2, max(0, cz - 2):cz + 2] = True
    force = (1e-5, 0.0, 0.0)

    print(f"lattice {shape}, {args.steps} steps, tau={args.tau}")
    print("1) single-domain reference solver ...")
    ref = LBMSolver(shape, tau=args.tau, solid=solid, force=force)
    ref.step(args.steps)
    rho, u = ref.macroscopic()
    print(f"   mean streamwise velocity: {u[0][~solid].mean():.3e}")

    print("2) texture path on one simulated GeForce FX 5800 Ultra ...")
    gpu = GPULBMSolver(shape, tau=args.tau, solid=solid, force=force)
    gpu.step(args.steps)
    diff = np.abs(gpu.distributions() - ref.f).max()
    print(f"   max |GPU - reference| over all distributions: {diff:.2e}")
    print(f"   modeled GPU time/step: "
          f"{gpu.device.clock_s / args.steps * 1e3:.2f} ms "
          f"(paper: 214 ms at 80^3)")

    print("3) 2x2 GPU cluster with scheduled halo exchange ...")
    cfg = ClusterConfig(sub_shape=tuple(s // a for s, a in zip(shape, (2, 2, 1))),
                        arrangement=(2, 2, 1), tau=args.tau, solid=solid,
                        force=force)
    with GPUClusterLBM(cfg) as cluster:
        cluster.load_global_distributions(
            LBMSolver(shape, tau=args.tau, solid=solid, force=force).f.copy())
        timing = cluster.step(args.steps)
        diff = np.abs(cluster.gather_distributions() - ref.f).max()
    print(f"   max |cluster - reference|: {diff:.2e}")
    t = timing.ms()
    print(f"   per-step timing decomposition (Table-1 columns): "
          f"compute {t['compute']:.2f} ms, GPU<->CPU {t['agp']:.2f} ms, "
          f"network {t['net_total']:.2f} ms "
          f"({t['net_nonoverlap']:.2f} ms not overlapped)")
    print(f"   measured overlap: exchange ran {timing.measured_exchange_s * 1e3:.2f} ms "
          f"on the comm thread, {timing.measured_window_s * 1e3:.2f} ms of it "
          f"concurrent with the inner collide")
    assert diff < 1e-5, "cluster must match the reference bit-for-bit"
    print("OK: all three paths agree.")


if __name__ == "__main__":
    main()
