#!/usr/bin/env python
"""Lid-driven cavity: the classic LBM validation flow (2D, D2Q9).

Demonstrates the exact-velocity Zou-He boundary (the moving lid) with
bounce-back walls, runs to steady state, reports the primary-vortex
diagnostics, and writes ``cavity_speed.pgm`` (speed magnitude with the
vortex visible) — a compact end-to-end check of the 2D machinery the
Sec-6 solvers and tests build on.

Usage:  python examples/lid_driven_cavity.py [--n 48] [--re 100]
            [--steps 4000] [--outdir .]
"""

from __future__ import annotations

import argparse
import os

import numpy as np

from repro.lbm import D2Q9, LBMSolver, ZouHeVelocity2D
from repro.lbm.collision import viscosity_to_tau
from repro.viz import write_pgm


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n", type=int, default=48, help="cavity edge (cells)")
    ap.add_argument("--re", type=float, default=100.0, help="Reynolds number")
    ap.add_argument("--steps", type=int, default=4000)
    ap.add_argument("--lid-u", type=float, default=0.08)
    ap.add_argument("--outdir", default=".")
    args = ap.parse_args()

    n, lid_u = args.n, args.lid_u
    nu = lid_u * n / args.re
    tau = viscosity_to_tau(nu)
    if tau <= 0.51:
        raise SystemExit(f"Re={args.re} needs tau={tau:.3f} <= 0.51: "
                         "increase --n or --lid-u")
    print(f"cavity {n}x{n}, Re={args.re}, lid u={lid_u}, tau={tau:.3f}")

    solid = np.zeros((n, n), bool)
    solid[0, :] = solid[-1, :] = True
    solid[:, 0] = True
    lid = ZouHeVelocity2D(axis=1, side="high", velocity=(lid_u, 0.0),
                          exclude=solid[:, -1])
    s = LBMSolver((n, n), tau=tau, lattice=D2Q9, solid=solid,
                  boundaries=[lid], periodic=False, dtype=np.float64)

    for chunk in range(4):
        s.step(args.steps // 4)
        _, u = s.macroscopic()
        print(f"  step {s.time_step:>5}: max|u| = {np.abs(u).max():.4f}, "
              f"centre u_x = {u[0, n // 2, n // 2]:+.4f}")

    _, u = s.macroscopic()
    # Primary-vortex centre from the streamfunction extremum.
    psi = np.cumsum(u[0], axis=1)
    psi[solid] = 0.0
    cx, cy = np.unravel_index(np.argmax(np.abs(psi[2:-2, 2:-2])),
                              psi[2:-2, 2:-2].shape)
    print(f"primary vortex centre ~ ({(cx + 2) / n:.2f}, {(cy + 2) / n:.2f}) "
          "(Ghia et al. Re=100: (0.62, 0.74))")

    os.makedirs(args.outdir, exist_ok=True)
    speed = np.hypot(u[0], u[1])
    write_pgm(os.path.join(args.outdir, "cavity_speed.pgm"), speed.T[::-1])
    print("wrote cavity_speed.pgm")
    assert np.isfinite(u).all()


if __name__ == "__main__":
    main()
