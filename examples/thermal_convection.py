#!/usr/bin/env python
"""Hybrid thermal LBM: Rayleigh-Benard-style convection (paper Sec 4.1).

The paper extends the flow model to thermal convection with the hybrid
thermal LBM: the MRT collision model coupled to a finite-difference
advection-diffusion equation for temperature through a buoyancy term.
This demo heats the bottom of a closed box and watches convective
transport beat pure diffusion.

Usage:  python examples/thermal_convection.py [--shape 32,8,24]
            [--steps 400] [--g-beta 3e-4]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.lbm import HybridThermalLBM
from repro.lbm.boundaries import box_walls


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--shape", default="32,8,24")
    ap.add_argument("--steps", type=int, default=400)
    ap.add_argument("--g-beta", type=float, default=3e-4)
    ap.add_argument("--kappa", type=float, default=0.05)
    ap.add_argument("--cluster", type=int, default=0, metavar="N",
                    help="run distributed over N nodes (0 = single domain)")
    args = ap.parse_args()
    shape = tuple(int(s) for s in args.shape.split(","))
    nx, ny, nz = shape

    walls = box_walls(shape, axes=[2])          # floor and ceiling
    if args.cluster:
        from repro.core import BlockDecomposition, DistributedThermalLBM
        from repro.core.decomposition import arrange_nodes_2d
        arrangement = arrange_nodes_2d(args.cluster)
        decomp = BlockDecomposition(shape, arrangement)
        dist = DistributedThermalLBM(decomp, tau=0.7, kappa=args.kappa,
                                     g_beta=args.g_beta,
                                     energy_coupling=1e-3, solid=walls)
        T = np.zeros(shape)
        T[:, :, 1] = 1.0
        T[nx // 3:nx // 2, :, 1:nz // 3] = 1.0
        dist.set_temperature(T)
        print(f"distributed HTLBM on {args.cluster} nodes "
              f"(arrangement {arrangement}) ...")
        dist.step(args.steps)
        from repro.lbm.macroscopic import macroscopic
        from repro.lbm.lattice import D3Q19
        _, u = macroscopic(D3Q19, dist.gather_flow())
        Tg = dist.gather_temperature()
        flux = float((u[2] * Tg)[~walls].mean())
        print(f"convective heat flux <u_z T> = {flux:.3e}")
        assert np.isfinite(flux)
        return

    model = HybridThermalLBM(shape, tau=0.7, kappa=args.kappa,
                             g_beta=args.g_beta, energy_coupling=1e-3,
                             solid=walls)
    # Hot floor, cold ceiling, a warm blob to break symmetry.
    T = np.zeros(shape)
    T[:, :, 1] = 1.0
    T[nx // 3:nx // 2, :, 1:nz // 3] = 1.0
    model.set_temperature(T)

    print(f"lattice {shape}, g*beta={args.g_beta}, kappa={args.kappa}, "
          f"MRT tau={model.flow.collision.tau}")
    probe = (nx // 2, ny // 2)
    for chunk in range(4):
        model.step(args.steps // 4)
        rho, u, T = model.macroscopic()
        uz = u[2][~walls]
        col = T[probe[0], probe[1], :]
        print(f"  step {model.flow.time_step:>4}: "
              f"max|u_z| = {np.abs(uz).max():.4f}, "
              f"T(z) mid-column: {np.array2string(col[::max(1, nz // 6)], precision=2)}")
    # Convective heat flux: <u_z T> over the fluid.
    flux = float((u[2] * T)[~walls].mean())
    print(f"convective heat flux <u_z T> = {flux:.3e} "
          "(positive: hot fluid rising)")
    assert np.isfinite(flux)


if __name__ == "__main__":
    main()
