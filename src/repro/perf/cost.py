"""Price/performance arithmetic of Sec 3.

"by plugging 32 GPUs into this cluster, we increase its theoretical
peak performance by 16 x 32 = 512 GFlops at a price of $399 x 32 =
$12,768.  We therefore get in principle 41.1 Mflops peak/$."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GEFORCE_FX_5800_ULTRA, XEON_2_4, CPUSpec, GPUSpec


@dataclass(frozen=True)
class ClusterCost:
    """Peak-performance and cost accounting for a GPU+CPU cluster."""

    nodes: int
    gpu: GPUSpec
    cpu: CPUSpec
    cpus_per_node: int = 2
    cluster_price_usd: float = 136_000.0   # Sec 3, excluding Sepia/VolumePro

    @property
    def gpu_peak_gflops(self) -> float:
        """Added fragment-stage peak across all GPUs (512 for the paper)."""
        return self.gpu.fragment_gflops * self.nodes

    @property
    def cpu_peak_gflops(self) -> float:
        """Host peak: ~10 GFlops per dual-Xeon node (Sec 3)."""
        return self.cpu.peak_gflops * self.cpus_per_node * self.nodes

    @property
    def total_peak_gflops(self) -> float:
        """(16 + 10) x nodes = 832 GFlops for the paper's 32 nodes."""
        return self.gpu_peak_gflops + self.cpu_peak_gflops

    @property
    def gpu_price_usd(self) -> float:
        """$399 x nodes = $12,768."""
        return self.gpu.price_usd * self.nodes

    @property
    def gpu_mflops_per_dollar(self) -> float:
        """Peak MFlops added per GPU dollar (41.1 for the paper)."""
        return self.gpu_peak_gflops * 1e3 / self.gpu_price_usd


def paper_cluster_cost() -> ClusterCost:
    """The Stony Brook Visual Computing Cluster's accounting."""
    return ClusterCost(nodes=32, gpu=GEFORCE_FX_5800_ULTRA, cpu=XEON_2_4)
