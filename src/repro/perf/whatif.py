"""The Sec 4.4 "three enhancements" and other what-if studies.

"Three enhancements can further improve this speedup factor ...
(1) Using a faster network, such as Myrinet.  (2) Using the
PCI-Express bus ...  (3) Using GPUs with larger texture memories ...
so that each GPU can compute a larger sub-domain of the lattice and
thereby increase the computation/communication ratio."

Plus: the sub-domain shape study (cube vs slab — "the cube has the
smallest ratio between boundary surface area and volume", Sec 4.3) and
the MPI_Barrier trade-off ("synchronizing the nodes by calling
MPI_barrier() at each scheduled step improves the network performance
[below 16 nodes]; ... [above,] the overhead of the synchronization
overwhelms the performance gained", Sec 4.3).
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM, GPUClusterLBM
from repro.core.decomposition import arrange_nodes_2d, surface_to_volume
from repro.gpu.packing import PACKED_BYTES_PER_CELL
from repro.gpu.specs import GEFORCE_FX_5800_ULTRA, PCIE_X16, BusSpec, GPUSpec
from repro.net.switch import GigabitSwitch
from repro.perf import calibration as cal

#: Myrinet (2004): ~2 Gb/s links, microsecond latencies, OS-bypass.
#: Modeled as 8x the effective per-flow throughput and 1/10 the fixed
#: overheads of the TCP/GbE stack.
MYRINET_EFFECTIVE_BYTES_PER_S = 8 * cal.NET_EFFECTIVE_BYTES_PER_S

#: OS-bypass shrinks the fixed envelope/phase/drift overheads ~10x.
MYRINET_OVERHEAD_SCALE = 0.1


class MyrinetSwitch(GigabitSwitch):
    """A low-latency SAN in place of the gigabit Ethernet switch.

    Purely a re-parameterisation of :class:`GigabitSwitch` — the base
    class owns the timing structure *and* the span tracing, so a traced
    Myrinet what-if emits the same ``net.round``/``net.phase`` spans
    (and advances the simulated network clock) as the GbE baseline.
    """

    def __init__(self) -> None:
        super().__init__(effective_bytes_per_s=MYRINET_EFFECTIVE_BYTES_PER_S,
                         message_overhead_scale=MYRINET_OVERHEAD_SCALE,
                         phase_overhead_scale=MYRINET_OVERHEAD_SCALE,
                         drift_scale=MYRINET_OVERHEAD_SCALE)


def enhancement_speedups(nodes: int = 32, sub_shape=(80, 80, 80)) -> dict[str, float]:
    """GPU/CPU speedup under each Sec-4.4 enhancement (and baseline)."""
    out: dict[str, float] = {}

    def run(label: str, **cfg_kwargs) -> None:
        arrangement = cfg_kwargs.pop("arrangement", arrange_nodes_2d(nodes))
        shape = cfg_kwargs.pop("sub_shape", sub_shape)
        cfg = ClusterConfig(sub_shape=shape, arrangement=arrangement,
                            timing_only=True, periodic=(False, False, False),
                            **cfg_kwargs)
        gpu = GPUClusterLBM(cfg).step()
        cpu_cfg = ClusterConfig(sub_shape=shape, arrangement=arrangement,
                                timing_only=True, periodic=(False, False, False))
        cpu = CPUClusterLBM(cpu_cfg).step()
        out[label] = cpu.total_s / gpu.total_s

    run("baseline (GbE + AGP 8x + 128MB)")
    run("(1) Myrinet network", switch=MyrinetSwitch())
    run("(2) PCI-Express x16 bus", bus=PCIE_X16)
    # (3) 256 MB GPUs: the largest cubic sub-domain that fits doubles
    # the compute/communication ratio.  104^3 fits 2x the 5800's budget.
    big = largest_cube_for_memory(2 * GEFORCE_FX_5800_ULTRA.usable_lattice_bytes)
    big -= big % 2
    run(f"(3) 256MB GPUs ({big}^3 sub-domains)", sub_shape=(big, big, big))
    run("all three",
        switch=MyrinetSwitch(), bus=PCIE_X16, sub_shape=(big, big, big))
    return out


def largest_cube_for_memory(usable_bytes: int) -> int:
    """Largest cubic sub-domain fitting the packed layout (Sec 2)."""
    from repro.gpu.packing import max_cubic_lattice
    return max_cubic_lattice(usable_bytes)


def subdomain_shape_study(cells: int = 80 ** 3, nodes: int = 8) -> list[dict]:
    """Cube vs slab sub-domains at equal volume (Sec 4.3).

    Equal cells per node, different block shapes, in a 3D node
    arrangement (so every face is a communicated face, as the paper's
    argument assumes): the cube minimises surface/volume and hence
    communication bytes, so its step time is the smallest.
    """
    from repro.core.decomposition import arrange_nodes_3d

    shapes = []
    n = round(cells ** (1 / 3))
    shapes.append((n, n, n))                        # cube
    shapes.append((n * 2, n, n // 2))               # brick
    shapes.append((n * 4, n, n // 4))               # slab-ish
    shapes.append((n * 4, n * 2, n // 8))           # thin slab
    rows = []
    arrangement = arrange_nodes_3d(nodes)
    for shape in shapes:
        cfg = ClusterConfig(sub_shape=shape, arrangement=arrangement,
                            timing_only=True, periodic=(False, False, False))
        t = GPUClusterLBM(cfg).step()
        rows.append({
            "sub_shape": shape,
            "surface_to_volume": surface_to_volume(shape),
            "net_total_ms": t.net_total_s * 1e3,
            "total_ms": t.total_s * 1e3,
        })
    return rows


def multi_gpu_per_node(total_gpus: int = 32, sub_shape=(80, 80, 80),
                       gpus_per_node=(1, 2, 4)) -> list[dict]:
    """Sec 3's PCI-Express prediction, quantified.

    "the PCI-Express will allow multiple GPUs to be plugged into one
    PC.  The interconnection of these GPUs will greatly reduce the
    network load."

    With ``k`` GPUs per host, sub-domains that share a host exchange
    their faces over the PCI-Express bus instead of the Ethernet
    switch; only host-boundary faces touch the network.  The model
    keeps the total GPU count (and lattice) fixed and varies k: the
    network phase shrinks (fewer hosts, fewer and larger-grained
    exchanges), while the intra-host transfers ride the symmetric
    4 GB/s bus.
    """
    from repro.core.decomposition import BlockDecomposition
    from repro.core.halo import HaloPlan
    from repro.core.schedule import CommSchedule
    from repro.net.switch import GigabitSwitch
    from repro.perf.model import cluster_timings

    rows = []
    plan = HaloPlan(sub_shape)
    sw = GigabitSwitch()
    face_bytes = plan.face_bytes(0)
    for k in gpus_per_node:
        if total_gpus % k:
            raise ValueError(f"{total_gpus} GPUs not divisible into {k}/node")
        hosts = total_gpus // k
        # GPUs tile x within a host; hosts form the paper's 2D grid.
        host_arr = arrange_nodes_2d(hosts)
        # Network schedule over the *host* grid: each host face carries
        # one sub-domain face per perpendicular GPU (k along x for the
        # y-direction boundaries, 1 for x boundaries).
        host_shape = (sub_shape[0] * k * host_arr[0],
                      sub_shape[1] * host_arr[1], sub_shape[2])
        host_sub = (sub_shape[0] * k, sub_shape[1], sub_shape[2])
        decomp = BlockDecomposition(host_shape, host_arr,
                                    periodic=(False, False, False))
        schedule = CommSchedule(decomp, HaloPlan(host_sub))
        net = sw.phase_time(schedule.round_bytes(), hosts) if hosts > 1 else 0.0
        # Intra-host exchanges over PCI-Express (k-1 internal faces,
        # both directions, symmetric bus).
        intra = 0.0
        if k > 1:
            per_face = (cal.UPLOAD_OVERHEAD_S
                        + face_bytes / cal.effective_downstream_bytes_per_s(PCIE_X16)
                        + face_bytes / cal.effective_upstream_bytes_per_s(PCIE_X16)
                        + cal.READBACK_FLUSH_S / 4.0)
            intra = 2.0 * per_face     # worst GPU: two internal faces
        gpu, cpu = cluster_timings(total_gpus, sub_shape, bus=PCIE_X16)
        window = gpu.overlap_window_s
        nonoverlap = max(0.0, net - window)
        total = gpu.compute_s + gpu.agp_s + intra + nonoverlap
        rows.append({
            "gpus_per_node": k,
            "hosts": hosts,
            "net_total_ms": net * 1e3,
            "intra_node_ms": intra * 1e3,
            "total_ms": total * 1e3,
            "speedup_vs_cpu": cpu.total_s / total,
        })
    return rows


# ---------------------------------------------------------------------------
# MPI_Barrier trade-off (Sec 4.3)
# ---------------------------------------------------------------------------
#: Modeled per-step barrier cost: a TCP-tree barrier whose straggler
#: tail grows superlinearly with participants on a non-dedicated OS.
BARRIER_STEP_COEF_S = 0.09e-3
BARRIER_STEP_EXPONENT = 1.5

#: Modeled desynchronisation cost when steps free-run: drift between
#: schedule steps lets a third sender interrupt a busy port; grows
#: sublinearly (stalls partially overlap).
DESYNC_COEF_S = 4.4e-3
DESYNC_EXPONENT = 0.62


def barrier_tradeoff(nodes: int, n_steps: int = 4) -> dict[str, float]:
    """Per-phase extra cost (s) with and without per-step barriers.

    Calibrated so the crossover sits at the paper's 16 nodes: below it
    the barrier is cheaper than the desync it prevents, above it the
    barrier overhead overwhelms the gain.
    """
    barrier = n_steps * BARRIER_STEP_COEF_S * nodes ** BARRIER_STEP_EXPONENT
    desync = DESYNC_COEF_S * nodes ** DESYNC_EXPONENT
    return {
        "nodes": nodes,
        "barrier_cost_s": barrier,
        "desync_cost_s": desync,
        "barrier_wins": barrier < desync,
    }


def barrier_crossover() -> int:
    """Smallest node count at which barriers stop paying off."""
    for n in range(2, 65):
        if not barrier_tradeoff(n)["barrier_wins"]:
            return n
    return 65
