"""Performance models and table/figure generators.

The evaluation of the paper (Tables 1-2, Figs 8-10, Sec 4.4) is a set
of *time decompositions* measured on 2004 hardware.  This package holds

* :mod:`repro.perf.calibration` — every fitted constant, each with its
  provenance (a published number from the paper or a documented fit to
  a Table-1 column);
* :mod:`repro.perf.metrics` — cells/s, speedup and efficiency
  computations (Table 2);
* :mod:`repro.perf.model` — the closed-form per-step model used to
  cross-check the event-driven cluster simulation;
* :mod:`repro.perf.comparisons` — the supercomputer data points quoted
  in Sec 4.4 (IBM SP2/SP/Power4);
* :mod:`repro.perf.cost` — the price/performance arithmetic of Sec 3;
* :mod:`repro.perf.whatif` — the Sec 4.4 "three enhancements"
  (Myrinet, PCI-Express, 256 MB GPUs) and the barrier-synchronisation
  trade-off;
* :mod:`repro.perf.counters` — per-phase wall-time and allocation
  counters for this reproduction's own numeric hot paths (wired into
  the reference solver and both cluster drivers);
* :mod:`repro.perf.trace` — span-based step tracing across ranks,
  backends and the simulated network (Chrome trace-event / JSONL
  export, overlap-efficiency and load-imbalance analytics in
  :mod:`repro.perf.report`).
"""

from repro.perf import calibration
from repro.perf.counters import KernelCounters, PhaseStat
from repro.perf.metrics import cells_per_second, efficiency, speedup
from repro.perf.trace import NULL_TRACER, SpanEvent, Tracer

__all__ = ["calibration", "cells_per_second", "efficiency", "speedup",
           "KernelCounters", "PhaseStat",
           "NULL_TRACER", "SpanEvent", "Tracer"]
