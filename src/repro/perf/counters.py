"""Lightweight per-phase kernel counters for the numeric hot paths.

The paper's evaluation lives and dies by per-step time decompositions
(Table 1).  This module gives the *reproduction's own substrate* the
same observability: every solver phase (collision, streaming, halo
exchange, ...) is timed with :func:`time.perf_counter`, and kernels
report the temporary-array allocations they knowingly perform, so the
fused/preallocated paths can prove they are allocation-free after
warm-up.

The counters are deliberately cheap: one ``perf_counter`` pair per
phase per step, dict upserts only, and a single ``enabled`` flag that
short-circuits everything when profiling is not wanted.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class PhaseStat:
    """Accumulated statistics for one named phase.

    ``value`` is a free numeric accumulator for non-time metrics
    (payload bytes, message counts, compression ratios); phases that
    only time calls leave it at 0.
    """

    calls: int = 0
    seconds: float = 0.0
    allocs: int = 0
    value: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean wall time per call (0 if never called)."""
        return self.seconds / self.calls if self.calls else 0.0

    @property
    def mean_value(self) -> float:
        """Mean accumulated value per call (0 if never called)."""
        return self.value / self.calls if self.calls else 0.0


class KernelCounters:
    """Per-phase wall-time and allocation counters.

    Attributes
    ----------
    enabled:
        When False every record call is a no-op, so instrumented code
        can stay instrumented with negligible overhead.
    stats:
        Mapping of phase name to :class:`PhaseStat`.
    """

    __slots__ = ("enabled", "stats")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.stats: dict[str, PhaseStat] = {}

    # -- recording ------------------------------------------------------
    def add(self, name: str, seconds: float, allocs: int = 0) -> None:
        """Record one timed call of ``name`` (plus optional allocations)."""
        if not self.enabled:
            return
        st = self.stats.get(name)
        if st is None:
            st = self.stats[name] = PhaseStat()
        st.calls += 1
        st.seconds += seconds
        st.allocs += allocs

    def alloc(self, name: str, n: int = 1) -> None:
        """Record ``n`` temporary/buffer allocations attributed to ``name``."""
        if not self.enabled:
            return
        st = self.stats.get(name)
        if st is None:
            st = self.stats[name] = PhaseStat()
        st.allocs += n

    def metric(self, name: str, value: float, calls: int = 1) -> None:
        """Accumulate a numeric metric (bytes, messages, ratios).

        Metrics share the phase table so they merge across processes and
        show up in the same report; ``calls`` counts the contributing
        events so per-event means stay available.
        """
        if not self.enabled:
            return
        st = self.stats.get(name)
        if st is None:
            st = self.stats[name] = PhaseStat()
        st.calls += calls
        st.value += value

    @contextmanager
    def phase(self, name: str):
        """Context manager timing one phase (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def merge(self, summary: dict[str, dict]) -> None:
        """Fold another counter's :meth:`summary` into this one.

        Used for cross-process aggregation: worker ranks serialize
        their per-phase stats as plain dicts (pipe-friendly) and the
        coordinator merges them here, so multi-process runs report the
        same phase names as in-process runs.  Seconds add up across
        ranks (CPU-time-like for concurrent phases).

        When this counter is *disabled* the summary is dropped, exactly
        like :meth:`add` — the coordinator's ``enabled`` flag is the
        single switch for the whole aggregate, so workers that recorded
        stats anyway (their flag is independent) do not resurrect
        profiling output the coordinator opted out of.
        """
        if not self.enabled:
            return
        for name, entry in summary.items():
            st = self.stats.get(name)
            if st is None:
                st = self.stats[name] = PhaseStat()
            st.calls += int(entry.get("calls", 0))
            st.seconds += float(entry.get("seconds", 0.0))
            st.allocs += int(entry.get("allocs", 0))
            st.value += float(entry.get("value", 0.0))

    # -- inspection -----------------------------------------------------
    def reset(self) -> None:
        """Drop all accumulated statistics."""
        self.stats.clear()

    def total_seconds(self) -> float:
        """Sum of recorded wall time over all phases."""
        return sum(st.seconds for st in self.stats.values())

    def total_allocs(self) -> int:
        """Sum of recorded allocations over all phases."""
        return sum(st.allocs for st in self.stats.values())

    def summary(self) -> dict[str, dict[str, float]]:
        """Plain-dict view (JSON-friendly) of all phase statistics."""
        return {
            name: {
                "calls": st.calls,
                "seconds": st.seconds,
                "mean_ms": st.mean_s * 1e3,
                "allocs": st.allocs,
                "value": st.value,
            }
            for name, st in sorted(self.stats.items())
        }

    def report(self) -> str:
        """Formatted table, one line per phase.

        The phase column widens to the longest recorded name so the
        numeric columns stay aligned (dotted span names such as
        ``cluster.collide_boundary`` exceed the old fixed width).  The
        ``value``/``mean value`` columns (bytes, message counts —
        whatever :meth:`metric` accumulated) appear only when at least
        one phase recorded a value, so time-only tables stay compact.
        """
        width = max([len("phase")] + [len(n) for n in self.stats])
        has_values = any(st.value for st in self.stats.values())
        header = (f"{'phase':<{width}} {'calls':>8} {'total ms':>10} "
                  f"{'mean ms':>10} {'allocs':>8}")
        if has_values:
            header += f" {'value':>14} {'mean value':>12}"
        lines = [header]
        for name, st in sorted(self.stats.items()):
            line = (f"{name:<{width}} {st.calls:>8d} "
                    f"{st.seconds * 1e3:>10.3f} "
                    f"{st.mean_s * 1e3:>10.4f} {st.allocs:>8d}")
            if has_values:
                line += f" {st.value:>14.1f} {st.mean_value:>12.2f}"
            lines.append(line)
        return "\n".join(lines)
