"""Row generators for the paper's tables and figures.

Every bench in ``benchmarks/`` prints rows produced here, so the table
shapes live in one place.  The rows come from the cluster drivers in
``timing_only`` mode (same code path as the numeric runs, minus the
arithmetic), which keeps the benches fast at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM, GPUClusterLBM, StepTiming
from repro.core.decomposition import arrange_nodes_2d
from repro.perf.metrics import cells_per_second, efficiency, weak_scaling_speedup

#: The node counts of Tables 1-2 / Figs 8-10.
PAPER_NODE_COUNTS = (1, 2, 4, 8, 12, 16, 20, 24, 28, 30, 32)

#: The paper's published Table 1, for residual reporting:
#: n -> (cpu_total, gpu_compute, agp, net_total, gpu_total, speedup).
PAPER_TABLE1 = {
    1: (1420, 214, 0, 0, 214, 6.64),
    2: (1424, 216, 13, 38, 229, 6.22),
    4: (1430, 224, 42, 47, 266, 5.38),
    8: (1429, 222, 50, 68, 272, 5.25),
    12: (1431, 230, 50, 80, 280, 5.11),
    16: (1433, 235, 50, 85, 285, 5.03),
    20: (1436, 237, 50, 87, 287, 5.00),
    24: (1437, 238, 50, 90, 288, 4.99),
    28: (1439, 237, 50, 131, 298, 4.83),
    30: (1440, 237, 50, 145, 312, 4.62),
    32: (1440, 237, 49, 151, 317, 4.54),
}

#: The paper's published Table 2: n -> (Mcells/s, speedup, efficiency %).
PAPER_TABLE2 = {
    1: (2.3, None, None),
    2: (4.3, 1.87, 93.5),
    4: (7.3, 3.17, 79.3),
    8: (14.4, 6.26, 78.3),
    12: (20.9, 9.09, 75.8),
    16: (27.4, 11.91, 74.4),
    20: (34.0, 14.78, 73.9),
    24: (40.7, 17.70, 73.8),
    28: (45.9, 19.96, 71.3),
    30: (47.0, 20.43, 68.1),
    32: (49.2, 21.39, 66.8),
}


@dataclass(frozen=True)
class Table1Row:
    """One weak-scaling data point (all times in ms)."""

    nodes: int
    cpu_total: float
    gpu_compute: float
    gpu_agp: float
    net_total: float
    net_nonoverlap: float
    gpu_total: float

    @property
    def speedup(self) -> float:
        return self.cpu_total / self.gpu_total


def cluster_timings(nodes: int, sub_shape=(80, 80, 80), arrangement=None,
                    **config_kwargs) -> tuple[StepTiming, StepTiming]:
    """(GPU, CPU) per-step timings for one configuration."""
    if arrangement is None:
        arrangement = arrange_nodes_2d(nodes)
    cfg = ClusterConfig(sub_shape=tuple(sub_shape), arrangement=arrangement,
                        timing_only=True, periodic=(False, False, False),
                        **config_kwargs)
    gpu = GPUClusterLBM(cfg).step()
    cpu = CPUClusterLBM(cfg).step()
    return gpu, cpu


def table1_row(nodes: int, sub_shape=(80, 80, 80), **config_kwargs) -> Table1Row:
    """One simulated Table-1 row."""
    gpu, cpu = cluster_timings(nodes, sub_shape, **config_kwargs)
    return Table1Row(
        nodes=nodes,
        cpu_total=cpu.total_s * 1e3,
        gpu_compute=gpu.compute_s * 1e3,
        gpu_agp=gpu.agp_s * 1e3,
        net_total=gpu.net_total_s * 1e3,
        net_nonoverlap=gpu.net_nonoverlap_s * 1e3,
        gpu_total=gpu.total_s * 1e3,
    )


def table1_rows(node_counts=PAPER_NODE_COUNTS, sub_shape=(80, 80, 80),
                **config_kwargs) -> list[Table1Row]:
    """The full Table-1 sweep."""
    return [table1_row(n, sub_shape, **config_kwargs) for n in node_counts]


@dataclass(frozen=True)
class Table2Row:
    """One throughput/efficiency data point."""

    nodes: int
    cells_per_s: float
    speedup: float | None
    efficiency: float | None


def table2_rows(node_counts=PAPER_NODE_COUNTS, sub_shape=(80, 80, 80),
                **config_kwargs) -> list[Table2Row]:
    """The full Table-2 sweep (cells/s, weak-scaling speedup, efficiency)."""
    cells_each = int(np.prod(sub_shape))
    rows: list[Table2Row] = []
    base_cps = None
    for n in node_counts:
        gpu, _ = cluster_timings(n, sub_shape, **config_kwargs)
        cps = cells_per_second(n * cells_each, gpu.total_s)
        if base_cps is None:
            base_cps = cps
            rows.append(Table2Row(n, cps, None, None))
        else:
            sp = weak_scaling_speedup(cps, base_cps)
            rows.append(Table2Row(n, cps, sp, efficiency(sp, n)))
    return rows


def strong_scaling_rows(global_shape=(160, 160, 80),
                        node_counts=(4, 8, 16, 32)) -> list[dict]:
    """The Sec 4.4 fixed-problem-size experiment.

    The lattice stays fixed; more nodes mean smaller sub-domains, a
    lower computation/communication ratio, and a collapsing GPU/CPU
    speedup (5.3 -> 2.4 from 4 to 16 nodes in the paper).
    """
    rows = []
    for n in node_counts:
        arrangement = arrange_nodes_2d(n)
        sub = tuple(int(g // a) for g, a in zip(global_shape, arrangement))
        for g, a in zip(global_shape, arrangement):
            if g % a:
                raise ValueError(f"{global_shape} not divisible by {arrangement}")
        gpu, cpu = cluster_timings(n, sub, arrangement=arrangement)
        rows.append({
            "nodes": n,
            "sub_shape": sub,
            "gpu_total_ms": gpu.total_s * 1e3,
            "cpu_total_ms": cpu.total_s * 1e3,
            "speedup": cpu.total_s / gpu.total_s,
        })
    return rows
