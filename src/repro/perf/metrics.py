"""Throughput, speedup and efficiency metrics (Table 2).

Table 2 of the paper reports, per node count: cells computed per
second, speedup relative to one node, and parallel efficiency
(speedup / nodes).  These helpers compute the same quantities from
per-step times.
"""

from __future__ import annotations


def cells_per_second(total_cells: int, step_seconds: float) -> float:
    """Lattice site updates per second for one time step."""
    if step_seconds <= 0:
        raise ValueError("step time must be positive")
    return total_cells / step_seconds


def speedup(baseline_seconds: float, seconds: float) -> float:
    """How many times faster than the baseline."""
    if seconds <= 0 or baseline_seconds <= 0:
        raise ValueError("times must be positive")
    return baseline_seconds / seconds


def weak_scaling_speedup(cells_per_s: float, single_node_cells_per_s: float) -> float:
    """Table-2 style speedup: throughput relative to one node.

    Table 2 computes speedup as (cells/s at n nodes) / (cells/s at one
    node) because each node keeps a constant 80^3 sub-domain (weak
    scaling); at perfect scaling this equals n.
    """
    if single_node_cells_per_s <= 0:
        raise ValueError("baseline throughput must be positive")
    return cells_per_s / single_node_cells_per_s


def efficiency(speedup_value: float, nodes: int) -> float:
    """Parallel efficiency in [0, 1]: speedup / nodes."""
    if nodes <= 0:
        raise ValueError("nodes must be positive")
    return speedup_value / nodes
