"""The supercomputer comparison points of Sec 4.4.

"Our simulation computes ... 49.2M cells/second.  This performance is
comparable with supercomputers [21, 22, 23]." — the quoted literature
numbers, used by the Table-2 bench to print the same comparison.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LiteratureResult:
    """A published LBM throughput data point."""

    system: str
    year: int
    processors: int
    lattice: tuple[int, int, int] | None
    seconds_per_step: float | None
    mcells_per_s: float
    reference: str


SUPERCOMPUTER_RESULTS = (
    LiteratureResult(
        system="IBM SP2 (16 processors)", year=1999, processors=16,
        lattice=(128, 128, 256), seconds_per_step=5.0, mcells_per_s=0.8,
        reference="Martys et al. [21]"),
    LiteratureResult(
        system="IBM SP Nighthawk II, Power3 375 MHz (16-way, OpenMP)",
        year=2002, processors=16, lattice=(128, 128, 256),
        seconds_per_step=0.26, mcells_per_s=15.4,
        reference="Massaioli & Amati [22]"),
    LiteratureResult(
        system="IBM SP Power3 (optimized: fused stream/collide, at-rest"
               " distributions, SLB/TLB bundling)",
        year=2002, processors=16, lattice=(128, 128, 256),
        seconds_per_step=None, mcells_per_s=20.0,
        reference="Massaioli & Amati [22]"),
    LiteratureResult(
        system="IBM Power4 (32 processors, vector codes)", year=2004,
        processors=32, lattice=None, seconds_per_step=None,
        mcells_per_s=108.1, reference="Massaioli & Amati [23]"),
)

#: The paper's own headline (Sec 4.4): 32 GPU nodes.
GPU_CLUSTER_HEADLINE = LiteratureResult(
    system="Stony Brook GPU cluster (32x GeForce FX 5800 Ultra)",
    year=2004, processors=32, lattice=(640, 320, 80),
    seconds_per_step=0.317, mcells_per_s=49.2,
    reference="Fan et al. (this paper)")
