"""Live cluster telemetry: metrics registry, health monitoring, exposition.

:mod:`repro.perf.counters` aggregates per-phase cost and
:mod:`repro.perf.trace` replays a finished run as a timeline — both are
*post-hoc*.  This module is the *live* layer: what is the cluster doing
**right now**, is any rank stalled, and how fast is the run going —
the observability substrate the dispersion job-queue service (ROADMAP
item 1) and intra-run patch migration (item 2) both consume.

Three cooperating pieces:

``MetricsRegistry``
    Typed Counter / Gauge / Histogram instruments.  Histograms use
    *fixed log-scale buckets* chosen at creation, so observing is one
    bisect into a static bounds tuple.  Registries are lock-free by
    construction (every record is a scalar upsert, atomic under the
    GIL) and per-rank: each worker process owns its own registry and
    ships plain-dict snapshot deltas over the existing result pipes;
    the coordinator :meth:`~MetricsRegistry.merge`\\ s them keyed by
    ``(name, rank)``.  A single ``enabled`` flag short-circuits every
    record call, exactly like :class:`~repro.perf.counters.KernelCounters`
    — the ``check-telemetry`` gate asserts the disabled path stays
    under a microsecond per record.

``HealthMonitor``
    Per-rank heartbeats and a step watchdog.  Worker heartbeats ride
    the existing procpool shared-memory channel (a tiny per-rank
    ``health`` segment, single writer, read by the coordinator at any
    time — even mid-step, which is what makes a real watchdog
    possible) and are re-based onto the coordinator clock with the
    same midpoint handshake the tracer uses
    (:func:`repro.perf.trace.estimate_clock_offset`).  The watchdog
    flags ranks as *stalled* (commanded but never started within the
    threshold), *blocked* (mid-step with a stale heartbeat — stuck in
    compute or waiting on a stalled peer) or *slow* (step time beyond
    ``slow_factor`` × the median), and aggregates everything into a
    :class:`HealthReport`.

Exposition
    :meth:`TelemetrySession.export_jsonl` streams periodic JSON
    snapshots (one object per line), :meth:`MetricsRegistry.to_prometheus`
    renders the Prometheus text format, and :class:`StatusLine` drives
    the live TTY line behind ``repro dispersion --live``.  Both export
    formats have schema checks (:func:`validate_prometheus`,
    :func:`validate_snapshot`) enforced by ``repro check-telemetry``.

Telemetry is observational only: enabled runs are bit-identical to
disabled ones on every backend (gate-enforced, like tracing).
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.perf.trace import COORDINATOR_RANK

__all__ = [
    "MetricsRegistry", "NULL_REGISTRY", "Counter", "Gauge", "Histogram",
    "log_bounds", "DEFAULT_TIME_BOUNDS", "HealthMonitor", "HealthReport",
    "RankHealth", "TelemetrySession", "StatusLine", "rss_bytes",
    "sync_counters", "validate_prometheus", "validate_snapshot",
    "disabled_record_overhead_ns", "run_telemetry_check",
]


# ---------------------------------------------------------------------------
# instruments


def log_bounds(lo: float, hi: float, per_decade: int = 3) -> tuple[float, ...]:
    """Fixed log-scale histogram bucket bounds from ``lo`` to ``hi``.

    ``per_decade`` bounds per factor of 10; the last bound is >= ``hi``.
    Values above the top bound land in the implicit overflow bucket.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got ({lo}, {hi})")
    n = int(math.ceil(round(math.log10(hi / lo) * per_decade, 9)))
    return tuple(lo * 10 ** (i / per_decade) for i in range(n + 1))


#: Default step/phase-time buckets: 10 µs .. 10 s, 3 per decade.
DEFAULT_TIME_BOUNDS = log_bounds(1e-5, 10.0, per_decade=3)


class Counter:
    """Monotone accumulator (events, bytes, steps)."""

    __slots__ = ("_reg", "value")

    def __init__(self, reg: "MetricsRegistry") -> None:
        self._reg = reg
        self.value = 0.0

    def inc(self, v: float = 1.0) -> None:
        if not self._reg.enabled:
            return
        self.value += v

    def reset_to(self, v: float) -> None:
        """Set the absolute total (sync path for already-aggregated
        sources such as :func:`sync_counters`; not for hot-path use)."""
        if not self._reg.enabled:
            return
        self.value = float(v)


class Gauge:
    """Last-value instrument (MLUPS, imbalance, RSS)."""

    __slots__ = ("_reg", "value")

    def __init__(self, reg: "MetricsRegistry") -> None:
        self._reg = reg
        self.value = 0.0

    def set(self, v: float) -> None:
        if not self._reg.enabled:
            return
        self.value = v


class Histogram:
    """Fixed log-scale-bucket distribution (step/phase seconds).

    ``counts`` has ``len(bounds) + 1`` slots: one per ``le`` bound plus
    the overflow bucket.  Observing is one bisect into the static
    bounds tuple plus three scalar upserts — lock-free under the GIL.
    """

    __slots__ = ("_reg", "bounds", "counts", "sum", "count")

    def __init__(self, reg: "MetricsRegistry",
                 bounds: tuple[float, ...]) -> None:
        self._reg = reg
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        if not self._reg.enabled:
            return
        self.counts[bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1


# ---------------------------------------------------------------------------
# registry


class MetricsRegistry:
    """Typed instruments keyed by ``(name, rank)``, one flag to rule them.

    Parameters
    ----------
    enabled:
        When False every record call on every owned instrument is a
        no-op (the single-flag short-circuit of
        :class:`~repro.perf.counters.KernelCounters`); toggling the
        flag flips all existing instruments at once, because they hold
        a reference to this registry rather than a copied flag.
    rank:
        Default rank stamped on instruments created without an explicit
        one.  Worker processes run one registry at their own rank;
        the coordinator registry accumulates all ranks after
        :meth:`merge`.
    """

    __slots__ = ("enabled", "rank", "_counters", "_gauges", "_hists",
                 "_hist_bounds")

    def __init__(self, enabled: bool = True,
                 rank: int = COORDINATOR_RANK) -> None:
        self.enabled = bool(enabled)
        self.rank = int(rank)
        self._counters: dict[tuple[str, int], Counter] = {}
        self._gauges: dict[tuple[str, int], Gauge] = {}
        self._hists: dict[tuple[str, int], Histogram] = {}
        #: Per-name bucket bounds: fixed by the first creation so every
        #: rank's histogram of one name is merge-compatible.
        self._hist_bounds: dict[str, tuple[float, ...]] = {}

    # -- instrument creation (get-or-create, cheap enough per step) ----
    def counter(self, name: str, rank: int | None = None) -> Counter:
        key = (name, self.rank if rank is None else int(rank))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(self)
        return inst

    def gauge(self, name: str, rank: int | None = None) -> Gauge:
        key = (name, self.rank if rank is None else int(rank))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(self)
        return inst

    def histogram(self, name: str, bounds: tuple[float, ...] | None = None,
                  rank: int | None = None) -> Histogram:
        key = (name, self.rank if rank is None else int(rank))
        inst = self._hists.get(key)
        if inst is None:
            fixed = self._hist_bounds.get(name)
            if fixed is None:
                fixed = self._hist_bounds[name] = tuple(
                    DEFAULT_TIME_BOUNDS if bounds is None else bounds)
            inst = self._hists[key] = Histogram(self, fixed)
        return inst

    def for_rank(self, rank: int) -> "_RankView":
        """A view defaulting instruments to ``rank``.

        Shares this registry's instrument tables *and* its ``enabled``
        flag (views delegate, they do not copy), so one coordinator
        registry serves a whole in-process cluster the way
        :meth:`repro.perf.trace.Tracer.for_rank` serves its solvers.
        """
        return _RankView(self, rank)

    # -- serialization ---------------------------------------------------
    def snapshot(self, reset: bool = False) -> dict:
        """Plain-dict (pipe/JSON-friendly) view of every instrument.

        Layout: ``{"counters": {name: {rank: value}}, "gauges": {...},
        "histograms": {name: {rank: {"bounds", "counts", "sum",
        "count"}}}}``.  With ``reset=True`` counters and histograms are
        zeroed after the snapshot (delta shipping — what the worker
        step replies use); gauges keep their last value.
        """
        counters: dict[str, dict[int, float]] = {}
        for (name, rank), inst in self._counters.items():
            counters.setdefault(name, {})[rank] = inst.value
            if reset:
                inst.value = 0.0
        gauges: dict[str, dict[int, float]] = {}
        for (name, rank), inst in self._gauges.items():
            gauges.setdefault(name, {})[rank] = inst.value
        hists: dict[str, dict[int, dict]] = {}
        for (name, rank), inst in self._hists.items():
            hists.setdefault(name, {})[rank] = {
                "bounds": list(inst.bounds),
                "counts": list(inst.counts),
                "sum": inst.sum,
                "count": inst.count,
            }
            if reset:
                inst.counts = [0] * len(inst.counts)
                inst.sum = 0.0
                inst.count = 0
        return {"counters": counters, "gauges": gauges, "histograms": hists}

    def merge(self, snap: dict) -> None:
        """Fold a snapshot (typically a worker delta) into this registry.

        Counters and histograms add; gauges overwrite (last write
        wins).  Like :meth:`KernelCounters.merge`, a disabled
        coordinator registry drops the snapshot — the coordinator flag
        is the single aggregate switch.
        """
        if not self.enabled:
            return
        for name, per_rank in snap.get("counters", {}).items():
            for rank, value in per_rank.items():
                self.counter(name, rank=int(rank)).value += float(value)
        for name, per_rank in snap.get("gauges", {}).items():
            for rank, value in per_rank.items():
                self.gauge(name, rank=int(rank)).value = float(value)
        for name, per_rank in snap.get("histograms", {}).items():
            for rank, entry in per_rank.items():
                bounds = tuple(entry["bounds"])
                inst = self.histogram(name, bounds=bounds, rank=int(rank))
                if inst.bounds != bounds:
                    raise ValueError(
                        f"histogram {name!r}: merge with mismatched "
                        f"bucket bounds")
                for i, c in enumerate(entry["counts"]):
                    inst.counts[i] += int(c)
                inst.sum += float(entry["sum"])
                inst.count += int(entry["count"])

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()

    # -- exposition ------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition of every instrument.

        Metric names are sanitized (dots become underscores, ``repro_``
        prefix); ranks become a ``rank`` label; histogram buckets are
        cumulative with the mandatory ``+Inf`` bound.
        """
        lines: list[str] = []
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges)):
            seen: set[str] = set()
            for (name, rank), inst in sorted(table.items()):
                pname = _prom_name(name)
                if pname not in seen:
                    seen.add(pname)
                    lines.append(f"# TYPE {pname} {kind}")
                lines.append(f'{pname}{{rank="{rank}"}} {_prom_num(inst.value)}')
        seen = set()
        for (name, rank), inst in sorted(self._hists.items()):
            pname = _prom_name(name)
            if pname not in seen:
                seen.add(pname)
                lines.append(f"# TYPE {pname} histogram")
            cum = 0
            for bound, c in zip(inst.bounds, inst.counts):
                cum += c
                lines.append(f'{pname}_bucket{{rank="{rank}",'
                             f'le="{_prom_num(bound)}"}} {cum}')
            lines.append(f'{pname}_bucket{{rank="{rank}",le="+Inf"}} '
                         f'{inst.count}')
            lines.append(f'{pname}_sum{{rank="{rank}"}} {_prom_num(inst.sum)}')
            lines.append(f'{pname}_count{{rank="{rank}"}} {inst.count}')
        return "\n".join(lines) + ("\n" if lines else "")


class _RankView:
    """Per-rank facade over a shared :class:`MetricsRegistry`.

    Unlike a tracer view this holds no copied state at all — the
    ``enabled`` flag and every instrument table belong to the parent,
    so toggling the parent toggles recording through every view.
    """

    __slots__ = ("_reg", "rank")

    def __init__(self, reg: MetricsRegistry, rank: int) -> None:
        self._reg = reg
        self.rank = int(rank)

    @property
    def enabled(self) -> bool:
        return self._reg.enabled

    def counter(self, name: str, rank: int | None = None) -> Counter:
        return self._reg.counter(name, self.rank if rank is None else rank)

    def gauge(self, name: str, rank: int | None = None) -> Gauge:
        return self._reg.gauge(name, self.rank if rank is None else rank)

    def histogram(self, name: str, bounds=None,
                  rank: int | None = None) -> Histogram:
        return self._reg.histogram(name, bounds=bounds,
                                   rank=self.rank if rank is None else rank)


#: Shared disabled registry — the default target of instrumented layers
#: (e.g. ``LBMSolver.metrics``), so un-monitored runs never allocate.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def _prom_name(name: str) -> str:
    out = ["repro_"]
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    return "".join(out)


def _prom_num(v: float) -> str:
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def sync_counters(registry, counters) -> None:
    """Mirror :class:`KernelCounters` aggregates into registry counters.

    The per-phase timings, halo byte/message metrics (``comm.*``) and
    autotune decision markers (``autotune.*`` / ``kernel.*``) are
    already accumulated by the existing counters on every backend, so
    the live layer re-exports them instead of double-instrumenting the
    hot paths: phases become ``phase.<name>.seconds`` / ``.calls``
    counters, value metrics become ``<name>.total``, and pure markers
    (calls with no time or value) become ``<name>.calls``.  Values are
    absolute (``reset_to``), so re-syncing at every snapshot is
    idempotent.
    """
    if not registry.enabled:
        return
    for name, st in counters.stats.items():
        if st.seconds:
            registry.counter(f"phase.{name}.seconds").reset_to(st.seconds)
            registry.counter(f"phase.{name}.calls").reset_to(st.calls)
        if st.value:
            registry.counter(f"{name}.total").reset_to(st.value)
        if not st.seconds and not st.value and st.calls:
            registry.counter(f"{name}.calls").reset_to(st.calls)


# ---------------------------------------------------------------------------
# exposition schema checks


def validate_prometheus(text: str) -> int:
    """Schema-check a Prometheus text exposition; returns the series count.

    Asserts every sample line parses as ``name{labels} value``, every
    series name was declared by a preceding ``# TYPE`` line (histogram
    suffixes resolve to their base declaration), histogram buckets are
    cumulative and end at ``le="+Inf"`` matching ``_count``.  Raises
    ``ValueError`` on any violation.
    """
    declared: dict[str, str] = {}
    series = 0
    hist_state: dict[str, tuple[float, int]] = {}  # series key -> (prev cum)
    counts: dict[str, int] = {}
    inf_buckets: dict[str, int] = {}
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram"):
                    raise ValueError(f"line {i}: unknown type {parts[3]!r}")
                declared[parts[2]] = parts[3]
            continue
        brace = line.find("{")
        if brace < 0 or "}" not in line:
            raise ValueError(f"line {i}: sample without labels: {line!r}")
        name = line[:brace]
        labels, _, value = line[brace:].partition("} ")
        try:
            val = float(value)
        except ValueError:
            raise ValueError(f"line {i}: non-numeric value {value!r}")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in declared:
                base = name[:-len(suffix)]
                break
        if base not in declared:
            raise ValueError(f"line {i}: series {name!r} has no TYPE")
        if declared[base] == "histogram" and name.endswith("_bucket"):
            key = base + labels.split(',le=')[0]
            if 'le="+Inf"' in labels:
                inf_buckets[key] = int(val)
            else:
                prev = hist_state.get(key, (-1.0, -1))[1]
                if int(val) < prev:
                    raise ValueError(
                        f"line {i}: non-cumulative histogram bucket")
                hist_state[key] = (0.0, int(val))
        if declared[base] == "histogram" and name.endswith("_count"):
            counts[base + labels] = int(val)
        series += 1
    for key, inf_v in inf_buckets.items():
        prev = hist_state.get(key, (0.0, 0))[1]
        if inf_v < prev:
            raise ValueError(f"histogram {key}: +Inf bucket below a bound")
    if series == 0:
        raise ValueError("no series in exposition")
    return series


def validate_snapshot(obj: dict) -> int:
    """Schema-check one JSONL telemetry snapshot; returns instrument count.

    A snapshot is ``{"t": wall seconds, "step": int, "metrics":
    <registry snapshot>}`` with optional ``"health"`` rows and
    ``"phases"`` (the raw :meth:`KernelCounters.summary`).  Raises
    ``ValueError`` on any malformed entry.  JSON round-trips turn int
    rank keys into strings; both spellings validate.
    """
    if not isinstance(obj, dict):
        raise ValueError("snapshot is not an object")
    if not isinstance(obj.get("t"), (int, float)):
        raise ValueError("snapshot missing numeric 't'")
    if not isinstance(obj.get("step"), int):
        raise ValueError("snapshot missing integer 'step'")
    metrics = obj.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("snapshot missing 'metrics' object")
    n = 0
    for section in ("counters", "gauges", "histograms"):
        table = metrics.get(section)
        if not isinstance(table, dict):
            raise ValueError(f"metrics missing {section!r} table")
        for name, per_rank in table.items():
            if not isinstance(per_rank, dict):
                raise ValueError(f"{section}.{name} is not a per-rank map")
            for rank, entry in per_rank.items():
                int(rank)  # raises on a non-integer rank key
                if section == "histograms":
                    for key in ("bounds", "counts", "sum", "count"):
                        if key not in entry:
                            raise ValueError(
                                f"histogram {name} missing {key!r}")
                    if len(entry["counts"]) != len(entry["bounds"]) + 1:
                        raise ValueError(
                            f"histogram {name}: counts/bounds mismatch")
                    if sum(entry["counts"]) != entry["count"]:
                        raise ValueError(
                            f"histogram {name}: count total mismatch")
                elif not isinstance(entry, (int, float)):
                    raise ValueError(f"{section}.{name}[{rank}] non-numeric")
                n += 1
    health = obj.get("health")
    if health is not None:
        if not isinstance(health, list):
            raise ValueError("'health' is not a list")
        for row in health:
            for key in ("rank", "status"):
                if key not in row:
                    raise ValueError(f"health row missing {key!r}")
    if n == 0:
        raise ValueError("snapshot carries no instruments")
    return n


# ---------------------------------------------------------------------------
# health monitoring


def rss_bytes() -> int:
    """This process's resident set size in bytes (0 if unknowable).

    Reads ``/proc/self/statm`` (Linux); falls back to
    ``resource.getrusage`` peak RSS elsewhere.  No third-party deps.
    """
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * (os.sysconf("SC_PAGE_SIZE")
                                                if hasattr(os, "sysconf")
                                                else 4096)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return 0


@dataclass
class RankHealth:
    """One rank's latest vital signs as the watchdog saw them."""

    rank: int
    status: str            # "ok" | "slow" | "blocked" | "stalled" | "unknown"
    age_s: float           # seconds since the last (re-based) heartbeat
    step: int              # last completed step count
    busy: bool             # mid-step when the heartbeat was written
    step_seconds: float    # last per-step wall time
    rss_bytes: int

    def as_dict(self) -> dict:
        return {"rank": self.rank, "status": self.status,
                "age_s": self.age_s, "step": self.step, "busy": self.busy,
                "step_seconds": self.step_seconds,
                "rss_bytes": self.rss_bytes}


@dataclass
class HealthReport:
    """Aggregated cluster health at one watchdog check."""

    rows: list[RankHealth] = field(default_factory=list)

    @property
    def worst(self) -> str:
        order = ("stalled", "blocked", "unknown", "slow", "ok")
        statuses = {r.status for r in self.rows}
        for s in order:
            if s in statuses:
                return s
        return "ok"

    def flagged(self) -> list[RankHealth]:
        return [r for r in self.rows if r.status not in ("ok", "unknown")]

    def summary(self) -> str:
        """One formatted line per rank (see also
        :func:`repro.perf.report.format_health_summary`)."""
        lines = [f"cluster health: {self.worst}"]
        for r in self.rows:
            lines.append(
                f"  rank {r.rank:>3}: {r.status:<8} step {r.step:>6} "
                f"hb {r.age_s * 1e3:8.1f} ms ago  "
                f"step {r.step_seconds * 1e3:8.2f} ms  "
                f"rss {r.rss_bytes / 1e6:7.1f} MB")
        return "\n".join(lines)


class HealthMonitor:
    """Step watchdog over re-based per-rank heartbeats.

    The coordinator feeds observations (from the shared health segments
    on the processes backend, or its own per-step bookkeeping on the
    in-process backends) and asks :meth:`check` for a
    :class:`HealthReport` at any time — including while a step command
    is outstanding, which is when stall detection matters.

    Parameters
    ----------
    n_ranks:
        Cluster width; ranks never observed report ``"unknown"``.
    stall_timeout_s:
        Heartbeat age beyond which a commanded-but-idle rank is
        ``"stalled"`` and a mid-step rank is ``"blocked"``.
    slow_factor:
        A rank whose last step took more than this multiple of the
        median per-step time is ``"slow"``.
    """

    def __init__(self, n_ranks: int, stall_timeout_s: float = 2.0,
                 slow_factor: float = 3.0) -> None:
        self.n_ranks = int(n_ranks)
        self.stall_timeout_s = float(stall_timeout_s)
        self.slow_factor = float(slow_factor)
        self._obs: dict[int, dict] = {}
        self._command_t: float | None = None

    def observe(self, rank: int, hb_time: float, step: int, busy: bool,
                step_seconds: float, rss: int) -> None:
        """Record one (re-based) heartbeat for ``rank``."""
        self._obs[int(rank)] = {
            "hb_time": float(hb_time), "step": int(step), "busy": bool(busy),
            "step_seconds": float(step_seconds), "rss": int(rss)}

    def note_command(self, now: float | None = None) -> None:
        """Mark a step command as outstanding (watchdog arming point)."""
        self._command_t = time.perf_counter() if now is None else float(now)

    def note_done(self) -> None:
        """Mark the outstanding command as completed."""
        self._command_t = None

    def check(self, now: float | None = None) -> HealthReport:
        """Classify every rank against the thresholds, right now."""
        now = time.perf_counter() if now is None else float(now)
        steps = sorted(o["step_seconds"] for o in self._obs.values()
                       if o["step_seconds"] > 0.0)
        median = steps[len(steps) // 2] if steps else 0.0
        report = HealthReport()
        for rank in range(self.n_ranks):
            o = self._obs.get(rank)
            if o is None:
                report.rows.append(RankHealth(rank, "unknown", math.inf,
                                              -1, False, 0.0, 0))
                continue
            age = now - o["hb_time"]
            status = "ok"
            cmd = self._command_t
            if o["busy"] and age > self.stall_timeout_s:
                status = "blocked"
            elif (not o["busy"] and cmd is not None
                  and o["hb_time"] < cmd
                  and now - cmd > self.stall_timeout_s):
                status = "stalled"
            elif (median > 0.0
                  and o["step_seconds"] > self.slow_factor * median):
                status = "slow"
            report.rows.append(RankHealth(
                rank, status, age, o["step"], o["busy"],
                o["step_seconds"], o["rss"]))
        return report


# ---------------------------------------------------------------------------
# TTY status line


class StatusLine:
    """Carriage-return live status line for interactive runs.

    Writes are rate-limited (``min_interval_s``) and padded so a
    shorter update fully overwrites a longer one; on a non-TTY stream
    every update becomes a plain line, so piped output stays readable.
    """

    def __init__(self, stream=None, min_interval_s: float = 0.1) -> None:
        self.stream = sys.stderr if stream is None else stream
        self.min_interval_s = float(min_interval_s)
        self._last_t = 0.0
        self._last_len = 0
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    def update(self, text: str, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_t < self.min_interval_s:
            return
        self._last_t = now
        if self._tty:
            pad = " " * max(0, self._last_len - len(text))
            self.stream.write("\r" + text + pad)
        else:
            self.stream.write(text + "\n")
        self._last_len = len(text)
        self.stream.flush()

    def close(self) -> None:
        if self._tty and self._last_len:
            self.stream.write("\n")
            self.stream.flush()
        self._last_len = 0


# ---------------------------------------------------------------------------
# the cluster session


class TelemetrySession:
    """Live telemetry attached to one cluster driver.

    Created by ``cluster.enable_telemetry()``; the driver calls
    :meth:`record_step` (in-process backends) or
    :meth:`note_step_command` / :meth:`record_proc_batch` (processes
    backend) from its step loop.  Everything here observes; nothing
    writes solver state, so monitored runs stay bit-identical.

    Parameters
    ----------
    cluster:
        The driver (``_ClusterLBMBase`` subclass) being observed.
    registry:
        Optional externally-owned :class:`MetricsRegistry`.
    jsonl_path:
        When set, a snapshot line is appended every
        ``jsonl_every_steps`` steps (and once at :meth:`close`).
    stall_timeout_s / slow_factor:
        Watchdog thresholds (see :class:`HealthMonitor`).
    """

    def __init__(self, cluster, registry: MetricsRegistry | None = None,
                 jsonl_path=None, jsonl_every_steps: int = 1,
                 stall_timeout_s: float = 2.0,
                 slow_factor: float = 3.0) -> None:
        self.cluster = cluster
        self.registry = (MetricsRegistry(enabled=True)
                         if registry is None else registry)
        n_ranks = len(cluster.nodes)
        self.health = HealthMonitor(n_ranks, stall_timeout_s=stall_timeout_s,
                                    slow_factor=slow_factor)
        self.jsonl_path = jsonl_path
        self.jsonl_every_steps = max(1, int(jsonl_every_steps))
        self._jsonl_fh = None
        self._last_export_step = -1
        self._t0 = time.perf_counter()
        self._steps_recorded = 0
        self._last_rate = 0.0
        # Pre-create the hot instruments so the step loop never pays
        # the get-or-create dict probe for the common ones.
        self._steps_total = self.registry.counter("steps.total")
        self._step_hist = self.registry.histogram("step.seconds")
        self._mlups = self.registry.gauge("mlups")
        self._imbalance = self.registry.gauge("imbalance.max_over_mean")

    # -- recording: in-process backends ---------------------------------
    def record_step(self, dt_s: float, now: float | None = None) -> None:
        """Fold one completed coordinator-driven step into the session."""
        cluster = self.cluster
        now = time.perf_counter() if now is None else now
        self._steps_total.inc()
        self._step_hist.observe(dt_s)
        self._steps_recorded += 1
        cells = cluster.cells_total()
        if dt_s > 0:
            self._mlups.set(cells / dt_s / 1e6)
        busies = []
        step = cluster.time_step
        rss = rss_bytes()
        for rank, node in enumerate(cluster.nodes):
            busy_s = getattr(node, "busy_s", 0.0) or getattr(
                node, "compute_s", 0.0)
            busies.append(busy_s)
            self.registry.counter("rank.busy_seconds", rank=rank).inc(busy_s)
            # All in-process ranks share the coordinator's address space.
            self.registry.gauge("rank.rss_bytes", rank=rank).set(rss)
            self.health.observe(rank, now, step, busy=False,
                                step_seconds=dt_s, rss=rss)
        if busies:
            mean = sum(busies) / len(busies)
            if mean > 0:
                self._imbalance.set(max(busies) / mean)
        self.maybe_export()

    # -- recording: processes backend -----------------------------------
    def note_step_command(self, n: int) -> None:
        """Arm the watchdog: a step command is about to be broadcast."""
        self.health.note_command()

    def record_proc_batch(self, n: int, batch_dt_s: float) -> None:
        """Fold one completed n-step worker batch into the session."""
        self.health.note_done()
        self._steps_total.inc(n)
        per_step = batch_dt_s / max(1, n)
        for _ in range(min(n, 1)):
            self._step_hist.observe(per_step)
        self._steps_recorded += n
        cells = self.cluster.cells_total()
        if batch_dt_s > 0:
            self._mlups.set(cells * n / batch_dt_s / 1e6)
        rows = self.poll_health(observe_only=True)
        busies = [r["busy_seconds"] for r in rows if r["busy_seconds"] > 0]
        if busies and len(busies) == len(rows):
            mean = sum(busies) / len(busies)
            if mean > 0:
                self._imbalance.set(max(busies) / mean)
        for r in rows:
            self.registry.counter("rank.busy_seconds",
                                  rank=r["rank"]).inc(r["busy_seconds"])
            self.registry.gauge("rank.rss_bytes",
                                rank=r["rank"]).set(r["rss_bytes"])
        self.maybe_export()

    def poll_health(self, observe_only: bool = False):
        """Read the live shared-memory heartbeats (processes backend).

        Safe to call from any thread at any time — the health segments
        are single-writer scalar slots, so a mid-write read is at worst
        one transiently torn float, never a crash.  Returns the raw
        rows; unless ``observe_only``-only callers want them, the
        observations also land in the :class:`HealthMonitor`.
        """
        backend = self.cluster._proc_backend
        if backend is None:
            return []
        rows = backend.read_health()
        for r in rows:
            self.health.observe(r["rank"], r["hb_time"], r["step"],
                                busy=r["busy"],
                                step_seconds=r["step_seconds"],
                                rss=r["rss_bytes"])
        return rows

    def check_health(self) -> HealthReport:
        """Refresh heartbeats (processes backend) and run the watchdog."""
        self.poll_health()
        return self.health.check()

    # -- exposition ------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-ready snapshot of metrics + health + phase roll-up."""
        sync_counters(self.registry, self.cluster.counters)
        report = self.health.check()
        return {
            "t": time.time(),
            "step": self.cluster.time_step,
            "metrics": self.registry.snapshot(),
            "health": [r.as_dict() for r in report.rows],
            "phases": self.cluster.counters.summary(),
        }

    def maybe_export(self) -> None:
        if self.jsonl_path is None:
            return
        step = self.cluster.time_step
        if step - self._last_export_step < self.jsonl_every_steps:
            return
        self.export_jsonl()

    def export_jsonl(self) -> None:
        """Append one snapshot line to ``jsonl_path``."""
        if self.jsonl_path is None:
            return
        if self._jsonl_fh is None:
            self._jsonl_fh = open(self.jsonl_path, "a")
        self._jsonl_fh.write(json.dumps(self.snapshot()) + "\n")
        self._jsonl_fh.flush()
        self._last_export_step = self.cluster.time_step

    def to_prometheus(self) -> str:
        """Prometheus text exposition (phases synced first)."""
        sync_counters(self.registry, self.cluster.counters)
        return self.registry.to_prometheus()

    def status_text(self) -> str:
        """The live TTY status line: rate, MLUPS, imbalance, comm share."""
        elapsed = time.perf_counter() - self._t0
        rate = self._steps_recorded / elapsed if elapsed > 0 else 0.0
        text = (f"step {self.cluster.time_step:>6} | {rate:6.2f} steps/s "
                f"| {self._mlups.value:8.2f} MLUPS")
        if self._imbalance.value:
            text += f" | imb {self._imbalance.value:4.2f}"
        comm = self.comm_fraction()
        if comm is not None:
            text += f" | comm {comm:4.0%}"
        flagged = [r for r in self.health.check().rows
                   if r.status not in ("ok", "unknown")]
        if flagged:
            text += " | " + ",".join(f"rank{r.rank}:{r.status}"
                                     for r in flagged)
        return text

    def comm_fraction(self) -> float | None:
        """Share of step time spent in the halo exchange.

        Measured (counter seconds) when the run is numeric; modeled
        (``net_nonoverlap / total``) in timing-only mode; None before
        any step.
        """
        stats = self.cluster.counters.stats
        ex = stats.get("cluster.exchange")
        if ex is not None and ex.seconds:
            total = sum(st.seconds for name, st in stats.items()
                        if name.startswith("cluster."))
            return ex.seconds / total if total > 0 else None
        timing = self.cluster.last_timing
        if timing is not None and timing.total_s > 0:
            return timing.net_nonoverlap_s / timing.total_s
        return None

    def close(self) -> None:
        """Flush a final snapshot and release the JSONL stream."""
        if self.jsonl_path is not None and self.registry.enabled:
            if self.cluster.time_step != self._last_export_step:
                self.export_jsonl()
        if self._jsonl_fh is not None:
            self._jsonl_fh.close()
            self._jsonl_fh = None


# ---------------------------------------------------------------------------
# overhead measurement + the check-telemetry gate


def disabled_record_overhead_ns(calls: int = 20000) -> dict[str, float]:
    """Measured per-call cost (ns) of records on a *disabled* registry.

    Returns ``{"counter": ns, "gauge": ns, "histogram": ns}``; the
    check-telemetry gate asserts each stays under the microsecond
    budget (instrumentation is left in place permanently, like the
    disabled tracer spans).
    """
    reg = MetricsRegistry(enabled=False)
    c, g, h = reg.counter("noop"), reg.gauge("noop"), reg.histogram("noop")
    out = {}
    for label, record in (("counter", lambda: c.inc()),
                          ("gauge", lambda: g.set(1.0)),
                          ("histogram", lambda: h.observe(1.0))):
        t0 = time.perf_counter()
        for _ in range(calls):
            record()
        out[label] = (time.perf_counter() - t0) / calls * 1e9
    if c.value or g.value or h.count:
        raise AssertionError("disabled registry recorded values")
    return out


def _stalled_worker_check(sub_shape, arrangement, stall_timeout_s: float,
                          detect_timeout_s: float) -> dict:
    """Watchdog sub-gate: SIGSTOP one worker mid-command, expect a flag.

    Runs a 2-rank processes cluster with telemetry on, stops rank 0's
    OS process, issues a step from a helper thread (which blocks — the
    stalled rank never reaches the shared barrier), and polls the
    watchdog from this thread until rank 0 reports ``"stalled"``.  The
    worker is then resumed, the step completes, and the run must still
    finish healthy — detection must not perturb execution.
    """
    import signal
    import threading

    import numpy as np

    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM

    cfg = ClusterConfig(sub_shape=sub_shape, arrangement=arrangement,
                        tau=0.7, backend="processes")
    with CPUClusterLBM(cfg) as cluster:
        session = cluster.enable_telemetry(stall_timeout_s=stall_timeout_s)
        cluster.step(1)  # warm heartbeats
        victim = cluster._proc_backend.worker_pids()[0]
        stepped = threading.Event()

        def drive() -> None:
            cluster.step(1)
            stepped.set()

        os.kill(victim, signal.SIGSTOP)
        detected = None
        thread = threading.Thread(target=drive, daemon=True)
        try:
            thread.start()
            deadline = time.perf_counter() + detect_timeout_s
            while time.perf_counter() < deadline:
                report = session.check_health()
                row = report.rows[0]
                if row.status == "stalled":
                    detected = report
                    break
                time.sleep(0.05)
        finally:
            os.kill(victim, signal.SIGCONT)
        thread.join(timeout=30.0)
        if detected is None:
            raise AssertionError(
                "watchdog never flagged the SIGSTOPped worker as stalled")
        if not stepped.is_set():
            raise AssertionError("stalled step never completed after SIGCONT")
        final = session.check_health()
        if final.worst != "ok":
            raise AssertionError(
                f"cluster unhealthy after stall recovery: {final.summary()}")
        f = cluster.gather_distributions()
        if not np.all(np.isfinite(f)):
            raise AssertionError("non-finite state after stall recovery")
        return {"stalled_rank": 0, "statuses":
                [r.status for r in detected.rows]}


def run_telemetry_check(sub_shape=(6, 6, 4), arrangement=(2, 1, 1),
                        steps: int = 4, overhead_budget_us: float = 1.0,
                        stall_timeout_s: float = 0.4,
                        detect_timeout_s: float = 20.0) -> dict:
    """End-to-end telemetry gate used by ``python -m repro check-telemetry``.

    * steps a small cluster twice — monitored and unmonitored — on the
      serial *and* processes backends and requires bit-identical
      gathered distributions (telemetry observes, never perturbs);
    * requires live coverage on the monitored run: the step counter
      matches, every rank reported a heartbeat, and both the
      Prometheus and JSONL expositions pass their schema checks;
    * measures the disabled-registry record overhead and fails beyond
      ``overhead_budget_us`` per record;
    * SIGSTOPs a worker mid-command and requires the step watchdog to
      flag it as stalled, then a clean recovery.

    Returns a small report dict; raises ``AssertionError`` on any
    violation.
    """
    import io
    import tempfile

    import numpy as np

    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
    from repro.lbm.solver import LBMSolver

    shape = tuple(s * a for s, a in zip(sub_shape, arrangement))
    rng = np.random.default_rng(5)
    ref = LBMSolver(shape, tau=0.7)
    ref.initialize(rho=np.ones(shape, np.float32),
                   u=(0.02 * rng.standard_normal((3,) + shape)
                      ).astype(np.float32))
    f0 = ref.f.copy()
    n_ranks = int(np.prod(arrangement))

    report: dict = {"backends": {}}
    for backend in ("serial", "processes"):
        results = {}
        for monitored in (False, True):
            cfg = ClusterConfig(sub_shape=sub_shape, arrangement=arrangement,
                                tau=0.7, backend=backend)
            with tempfile.TemporaryDirectory() as tmp:
                jsonl = os.path.join(tmp, "telemetry.jsonl")
                with CPUClusterLBM(cfg) as cluster:
                    cluster.load_global_distributions(f0)
                    session = (cluster.enable_telemetry(jsonl_path=jsonl)
                               if monitored else None)
                    cluster.step(steps)
                    results[monitored] = cluster.gather_distributions().copy()
                    if session is None:
                        continue
                    snap = session.snapshot()
                    total = sum(
                        snap["metrics"]["counters"]["steps.total"].values())
                    if int(total) != steps:
                        raise AssertionError(
                            f"{backend}: steps.total {total} != {steps}")
                    health = session.check_health()
                    seen = {r.rank for r in health.rows
                            if r.status != "unknown"}
                    if seen != set(range(n_ranks)):
                        raise AssertionError(
                            f"{backend}: heartbeats for ranks {sorted(seen)}, "
                            f"expected {sorted(range(n_ranks))}")
                    prom = session.to_prometheus()
                    n_series = validate_prometheus(prom)
                    session.close()
                    with open(jsonl) as fh:
                        lines = [json.loads(line) for line in fh
                                 if line.strip()]
                    if not lines:
                        raise AssertionError(f"{backend}: no JSONL snapshots")
                    n_inst = 0
                    for obj in lines:
                        n_inst = validate_snapshot(obj)
                    report["backends"][backend] = {
                        "prometheus_series": n_series,
                        "jsonl_snapshots": len(lines),
                        "instruments": n_inst,
                        "ranks": sorted(seen),
                    }
        if not np.array_equal(results[False], results[True]):
            raise AssertionError(f"{backend}: telemetry perturbed the numerics")

    overhead = disabled_record_overhead_ns()
    report["disabled_overhead_ns"] = overhead
    worst = max(overhead.values())
    if worst > overhead_budget_us * 1e3:
        raise AssertionError(
            f"disabled-registry record overhead {worst:.0f} ns/call exceeds "
            f"the {overhead_budget_us * 1e3:.0f} ns budget "
            f"({overhead})")

    report["watchdog"] = _stalled_worker_check(
        sub_shape, arrangement, stall_timeout_s=stall_timeout_s,
        detect_timeout_s=detect_timeout_s)

    # A disabled StatusLine-style smoke: the status text renders without
    # a live session having stepped (defensive; cheap).
    buf = io.StringIO()
    line = StatusLine(stream=buf, min_interval_s=0.0)
    line.update("telemetry gate")
    line.close()
    return report
