"""Span-based step tracing across ranks, backends and the simulated net.

:mod:`repro.perf.counters` answers *how much* time each phase took in
aggregate; this module answers *when*: every kernel phase, cluster
exchange and simulated network message becomes a span — ``(name, rank,
step, start, end, metadata)`` — so a stepped run can be replayed as a
per-rank timeline.  That is the paper's own evaluation substrate: Table
1 is a per-step time decomposition and Fig 9's overlap argument is an
interval-intersection claim, both of which fall out of the recorded
spans (see :mod:`repro.perf.report` for the derived analytics).

Design rules
------------
* **Strict no-op when disabled.**  ``Tracer.span(...)`` on a disabled
  tracer returns a shared null context manager without allocating; the
  instrumented hot paths stay instrumented at ~a-function-call of cost
  (``python -m repro check-trace`` asserts this stays true).
* **Two clocks.**  Wall spans carry :func:`time.perf_counter` seconds;
  simulated-network events (SimMPI messages, the switch's scheduled
  exchange rounds) carry *simulated* seconds.  The Chrome exporter puts
  them in separate process groups so the timelines never mix scales.
* **Cross-process aggregation.**  Worker ranks record into their own
  tracer, drain plain tuples over the existing result pipes, and the
  coordinator re-bases them onto its own clock via the per-worker
  offset estimated at trace-enable time (:meth:`Tracer.extend`).
* **Thread-safe by construction.**  Recording is a single
  ``list.append`` (atomic under the GIL), so the overlap comm thread
  and the threads backend share one tracer without locks.

Exporters: :meth:`Tracer.write_chrome` emits Chrome trace-event JSON
(open in Perfetto / ``chrome://tracing``; one track per rank, one
coordinator track, one simulated-network group) and
:meth:`Tracer.write_jsonl` emits one JSON object per span for ad-hoc
analysis.  DESIGN.md §5e documents the format.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

#: Rank id of coordinator-level spans (driver phases, proc-step window).
COORDINATOR_RANK = -1
#: Rank id of simulated-network events (SimMPI messages, switch rounds).
NETWORK_RANK = -2

#: Wall-clock / simulated-clock discriminator values.
WALL_CLOCK = "wall"
SIM_CLOCK = "sim"


@dataclass
class SpanEvent:
    """One recorded span (or point event with ``t0 == t1``)."""

    name: str
    rank: int
    step: int
    t0: float
    t1: float
    clock: str = WALL_CLOCK
    meta: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    def as_tuple(self) -> tuple:
        """Pipe-friendly plain-tuple form (see :meth:`Tracer.drain`)."""
        return (self.name, self.rank, self.step, self.t0, self.t1,
                self.clock, self.meta)


class _NullSpan:
    """Shared do-nothing context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span context: captures perf_counter on enter/exit.

    Also captures the calling thread's CPU time (``time.thread_time``)
    as ``cpu_s`` metadata: on an oversubscribed host the wall-clock
    span of a compute phase includes scheduler time slices given to
    *other* ranks, while the thread-CPU delta is contention-immune —
    the load-balance analytics prefer it when present.
    """

    __slots__ = ("_tracer", "_name", "_rank", "_step", "_meta", "_t0",
                 "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, rank: int, step: int,
                 meta: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._rank = rank
        self._step = step
        self._meta = meta

    def __enter__(self):
        self._cpu0 = time.thread_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        t1 = time.perf_counter()
        self._meta["cpu_s"] = time.thread_time() - self._cpu0
        self._tracer.events.append(SpanEvent(
            self._name, self._rank, self._step, self._t0, t1,
            WALL_CLOCK, self._meta))
        return False


class Tracer:
    """Cheap span recorder shared by one process's instrumented layers.

    Parameters
    ----------
    enabled:
        When False (the instrumentation default via :data:`NULL_TRACER`)
        every recording entry point short-circuits before allocating.
    rank:
        Default rank attributed to spans recorded through this handle;
        :meth:`for_rank` derives per-rank views sharing the same event
        list, which is how one tracer serves a whole in-process cluster.
    """

    __slots__ = ("enabled", "events", "rank", "step")

    def __init__(self, enabled: bool = True,
                 rank: int = COORDINATOR_RANK) -> None:
        self.enabled = bool(enabled)
        self.events: list[SpanEvent] = []
        self.rank = int(rank)
        self.step = 0

    # -- recording ------------------------------------------------------
    def begin_step(self, step: int) -> None:
        """Set the step index stamped on spans that don't pass their own."""
        if self.enabled:
            self.step = int(step)

    def span(self, name: str, step: int | None = None,
             rank: int | None = None, **meta):
        """Context manager recording one wall-clock span.

        No-op (a shared null context, nothing allocated) when disabled.
        Extra keyword arguments become span metadata (``bytes=...``,
        ``cells=...``, ``kernel=...``).
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name,
                     self.rank if rank is None else rank,
                     self.step if step is None else step, meta)

    def add_span(self, name: str, t0: float, t1: float,
                 step: int | None = None, rank: int | None = None,
                 clock: str = WALL_CLOCK, **meta) -> None:
        """Record a span from already-measured timestamps."""
        if not self.enabled:
            return
        self.events.append(SpanEvent(
            name, self.rank if rank is None else rank,
            self.step if step is None else step,
            float(t0), float(t1), clock, meta))

    def instant(self, name: str, ts: float | None = None,
                step: int | None = None, rank: int | None = None,
                clock: str = WALL_CLOCK, **meta) -> None:
        """Record a zero-duration point event."""
        if not self.enabled:
            return
        t = time.perf_counter() if ts is None else float(ts)
        self.add_span(name, t, t, step=step, rank=rank, clock=clock, **meta)

    def message(self, src: int, dst: int, tag: int, nbytes: int,
                start_s: float, end_s: float, step: int | None = None,
                name: str = "mpi.msg", **meta) -> None:
        """Record one simulated-network message (simulated-clock span).

        ``nbytes`` is what actually crossed the wire; extra keyword
        arguments extend the metadata (compressed sends attach
        ``raw_bytes`` so bytes-on-wire vs payload stays auditable).
        """
        if not self.enabled:
            return
        self.events.append(SpanEvent(
            name, NETWORK_RANK, self.step if step is None else step,
            float(start_s), float(end_s), SIM_CLOCK,
            {"src": int(src), "dst": int(dst), "tag": int(tag),
             "bytes": int(nbytes), **meta}))

    def for_rank(self, rank: int) -> "Tracer":
        """A view with a different default rank, sharing this event list.

        Handed to per-rank solvers so their kernel-phase spans land on
        the right track; recording through a view toggles with the
        parent's ``enabled`` flag only if taken *after* enabling, so
        drivers create views inside ``enable_tracing``.
        """
        view = Tracer.__new__(Tracer)
        view.enabled = self.enabled
        view.events = self.events
        view.rank = int(rank)
        view.step = self.step
        return view

    # -- aggregation ----------------------------------------------------
    def drain(self) -> list[tuple]:
        """Detach all events as plain tuples (for pipes) and clear."""
        out = [e.as_tuple() for e in self.events]
        self.events.clear()
        return out

    def extend(self, raw_events, offset_s: float = 0.0) -> None:
        """Fold drained tuples back in, re-basing wall clocks.

        ``offset_s`` is the estimated difference between this tracer's
        :func:`time.perf_counter` epoch and the producer's (see
        ``ProcessBackend.set_tracing``); it is applied to wall-clock
        spans only — simulated-clock events share the one simulated
        timeline already.
        """
        for name, rank, step, t0, t1, clock, meta in raw_events:
            if clock == WALL_CLOCK:
                t0 += offset_s
                t1 += offset_s
            self.events.append(SpanEvent(name, rank, step, t0, t1,
                                         clock, dict(meta)))

    def clear(self) -> None:
        self.events.clear()

    # -- export ---------------------------------------------------------
    def to_chrome(self) -> dict:
        """Chrome trace-event JSON object (Perfetto-loadable).

        Layout: pid 1 groups the wall-clock tracks (tid 0 is the
        coordinator, tid ``rank + 1`` is each rank), pid 2 groups the
        simulated network (tid 0 the scheduled rounds, tid ``dst + 1``
        one lane per destination port so port serialization is
        visible).  Wall timestamps are re-based so the trace starts at
        zero; simulated timestamps are the simulated seconds themselves.
        Both are exported in microseconds, the trace-event unit.
        """
        wall = [e for e in self.events if e.clock == WALL_CLOCK]
        base = min((e.t0 for e in wall), default=0.0)
        out: list[dict] = [
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
             "args": {"name": "cluster (wall clock)"}},
            {"ph": "M", "name": "process_name", "pid": 2, "tid": 0,
             "args": {"name": "simulated network (switch clock)"}},
        ]
        named_tracks: set[tuple[int, int]] = set()

        def track(e: SpanEvent) -> tuple[int, int, str]:
            if e.clock == SIM_CLOCK:
                dst = e.meta.get("dst")
                if dst is None:
                    return 2, 0, "schedule"
                return 2, int(dst) + 1, f"port {dst}"
            if e.rank == COORDINATOR_RANK:
                return 1, 0, "coordinator"
            return 1, e.rank + 1, f"rank {e.rank}"

        for e in self.events:
            pid, tid, label = track(e)
            if (pid, tid) not in named_tracks:
                named_tracks.add((pid, tid))
                out.append({"ph": "M", "name": "thread_name",
                            "pid": pid, "tid": tid,
                            "args": {"name": label}})
            ts = (e.t0 - base) if e.clock == WALL_CLOCK else e.t0
            out.append({"ph": "X", "name": e.name, "pid": pid, "tid": tid,
                        "ts": ts * 1e6,
                        "dur": max(0.0, e.duration_s) * 1e6,
                        "args": {"step": e.step, "rank": e.rank, **e.meta}})
        return {"traceEvents": out,
                "displayTimeUnit": "ms",
                "otherData": {"generator": "repro.perf.trace",
                              "clock_base_s": base}}

    def write_chrome(self, path) -> None:
        """Write the Chrome trace-event JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)

    def write_jsonl(self, path) -> None:
        """Write one JSON object per span to ``path``."""
        with open(path, "w") as fh:
            for e in self.events:
                fh.write(json.dumps({
                    "name": e.name, "rank": e.rank, "step": e.step,
                    "t0": e.t0, "t1": e.t1, "clock": e.clock,
                    **({"meta": e.meta} if e.meta else {})}) + "\n")


#: Shared disabled tracer — the default target of every instrumented
#: layer, so un-traced runs never allocate a tracer of their own.
NULL_TRACER = Tracer(enabled=False)


def estimate_clock_offset(t_send: float, t_recv: float,
                          remote_now: float) -> float:
    """Midpoint estimate of (local clock − remote clock), in seconds.

    A command is sent at local time ``t_send``; the remote side replies
    with its own :func:`time.perf_counter` reading ``remote_now``; the
    reply lands at local time ``t_recv``.  Assuming the remote sampled
    its clock near the middle of the round trip, the offset to *add* to
    remote timestamps to land them on the local timeline is
    ``(t_send + t_recv) / 2 - remote_now`` (error bounded by half the
    round trip).  The sign is unconstrained: a remote clock ahead of the
    local one yields a negative offset, and clocks that drift between
    handshakes are tracked by re-estimating per handshake.  Used by
    ``ProcessBackend.set_tracing`` (span re-basing) and
    ``ProcessBackend.set_telemetry`` (heartbeat re-basing).
    """
    return 0.5 * (float(t_send) + float(t_recv)) - float(remote_now)


# -- validation ---------------------------------------------------------
def validate_chrome(obj: dict) -> int:
    """Schema-check a Chrome trace-event object; returns the span count.

    Raises ``ValueError`` on any malformed event.  Used by
    ``python -m repro check-trace`` on freshly exported traces.
    """
    events = obj.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    n_spans = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("ph", "name", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {i} missing {key!r}")
        if ev["ph"] == "X":
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)):
                    raise ValueError(f"event {i} has non-numeric {key!r}")
            if ev["dur"] < 0:
                raise ValueError(f"event {i} has negative duration")
            if "step" not in ev.get("args", {}):
                raise ValueError(f"event {i} missing args.step")
            n_spans += 1
        elif ev["ph"] not in ("M", "i", "I"):
            raise ValueError(f"event {i} has unsupported phase {ev['ph']!r}")
    if n_spans == 0:
        raise ValueError("trace contains no 'X' spans")
    return n_spans


def disabled_overhead_ns(calls: int = 20000) -> float:
    """Measured per-call cost (ns) of a span on a *disabled* tracer.

    The check-trace gate asserts this stays within a few microseconds
    — i.e. that leaving the instrumentation in place costs nothing.
    """
    tracer = Tracer(enabled=False)
    t0 = time.perf_counter()
    for _ in range(calls):
        with tracer.span("noop"):
            pass
    t1 = time.perf_counter()
    if tracer.events:
        raise AssertionError("disabled tracer recorded events")
    return (t1 - t0) / calls * 1e9


# -- the check-trace gate ----------------------------------------------
def run_trace_check(sub_shape=(6, 6, 4), arrangement=(2, 1, 1),
                    steps: int = 2, overhead_budget_us: float = 25.0,
                    ) -> dict:
    """End-to-end trace gate used by ``python -m repro check-trace``.

    * steps a small cluster twice — untraced and traced — and requires
      bit-identical gathered distributions (tracing must observe, never
      perturb);
    * requires one timeline track per rank in the traced run, on both
      the serial and the processes backend;
    * schema-validates the exported Chrome trace JSON;
    * measures the disabled-tracer span overhead and fails if it
      exceeds ``overhead_budget_us`` microseconds per call.

    Returns a small report dict; raises ``AssertionError`` on any
    violation.
    """
    import numpy as np

    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
    from repro.lbm.solver import LBMSolver

    shape = tuple(s * a for s, a in zip(sub_shape, arrangement))
    rng = np.random.default_rng(3)
    ref = LBMSolver(shape, tau=0.7)
    ref.initialize(rho=np.ones(shape, np.float32),
                   u=(0.02 * rng.standard_normal((3,) + shape)
                      ).astype(np.float32))
    f0 = ref.f.copy()
    n_ranks = int(np.prod(arrangement))

    report: dict = {"backends": {}}
    for backend in ("serial", "processes"):
        results = {}
        for traced in (False, True):
            cfg = ClusterConfig(sub_shape=sub_shape, arrangement=arrangement,
                                tau=0.7, backend=backend)
            with CPUClusterLBM(cfg) as cluster:
                cluster.load_global_distributions(f0)
                tracer = cluster.enable_tracing() if traced else None
                cluster.step(steps)
                results[traced] = cluster.gather_distributions().copy()
            if traced:
                ranks = {e.rank for e in tracer.events if e.rank >= 0}
                if ranks != set(range(n_ranks)):
                    raise AssertionError(
                        f"{backend}: expected spans for ranks "
                        f"{sorted(range(n_ranks))}, got {sorted(ranks)}")
                n_spans = validate_chrome(tracer.to_chrome())
                report["backends"][backend] = {
                    "spans": n_spans, "ranks": sorted(ranks)}
        if not np.array_equal(results[False], results[True]):
            raise AssertionError(
                f"{backend}: tracing perturbed the numerics")

    overhead_ns = disabled_overhead_ns()
    report["disabled_overhead_ns"] = overhead_ns
    if overhead_ns > overhead_budget_us * 1e3:
        raise AssertionError(
            f"disabled-tracer span overhead {overhead_ns:.0f} ns/call "
            f"exceeds the {overhead_budget_us:.0f} us budget")
    return report
