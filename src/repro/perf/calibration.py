"""Calibrated constants for the timing simulation, with provenance.

Two kinds of constants appear here:

* **Published numbers** quoted directly from the paper (marked
  ``[paper]`` with a section reference).
* **Fitted constants** (marked ``[fit]``): free parameters of the
  mechanistic models, chosen once so that the simulated Table 1 matches
  the published Table 1.  The fitting procedure is described next to
  each constant; EXPERIMENTS.md reports the residuals.

Nothing outside this module hard-codes a timing number.
"""

from __future__ import annotations

import math

from repro.gpu.specs import BusSpec

# ---------------------------------------------------------------------------
# GPU fragment-pipeline throughput
# ---------------------------------------------------------------------------
# [fit] Derived from two paper anchors for the 80^3 sub-domain on the
# GeForce FX 5800 Ultra (Table 1):
#   * whole step compute = 214 ms  -> 417.97 ns/cell total,
#   * inner-cell collision = 120 ms -> collide+macro ~ 129 ms at 80^3
#     (251.95 ns/cell).
# With the D3Q19 pass suite of repro.gpu.lbm_gpu declaring
#   collide+macro: 290 ALU + 20 fetches / cell,
#   stream+boundary: 60 ALU + 48 fetches / cell
# (one 19-link fetch set per phase: 4+4+4+4+3 stream, the same plus
# flags and own-value reads for bounce-back), solving the 2x2 system:
GPU_NS_PER_ALU = 0.6896
GPU_NS_PER_FETCH = 2.5977

#: [paper, Table 1] collision on inner cells "takes roughly 120 ms" for
#: an 80^3 sub-domain; this is the window available for overlapping
#: network communication with GPU computation.
INNER_COLLISION_MS_80CUBE = 120.0

#: [fit] Extra compute per active sub-domain border direction (faces +
#: edges), from the drift of Table 1's compute column (214 ms at 1 node
#: -> ~237 ms at >=12 nodes, i.e. ~3 ms for each of the up-to-8 border
#: directions of a 2D arrangement).  Physically: border-cell passes are
#: issued as separate small rectangles with worse fragment coherence.
#: Scaled by face area relative to the 80^3 reference face.
BORDER_COMPUTE_S_PER_DIR = 3.0e-3
BORDER_COMPUTE_REF_FACE_CELLS = 80 * 80

# ---------------------------------------------------------------------------
# GPU <-> host (AGP) transfers
# ---------------------------------------------------------------------------
#: [fit] Fixed pipeline-flush cost of a readback (glGetTexImage forces
#: the fragment pipeline to drain before the DMA starts).  From the
#: Table 1 "GPU and CPU Communication" column: 13 ms with one neighbour
#: face = flush + 128 KB upstream + one downstream write.
READBACK_FLUSH_S = 4.0e-3

#: [fit] Driver-effective fraction of the bus's peak upstream rate.
#: 128 KB/face at ~16 MB/s = 8 ms reproduces the 13 ms (1 face) and
#: ~50 ms (4 faces + 4 edges) anchor points; the 133 MB/s AGP *peak*
#: was never reached by 2004 drivers.
EFFECTIVE_UPSTREAM_FRACTION = 16.4e6 / 133e6

#: [fit] Driver-effective fraction of the peak downstream rate.
EFFECTIVE_DOWNSTREAM_FRACTION = 0.5

#: [fit] Fixed cost of one texture-update (downstream write) call.
UPLOAD_OVERHEAD_S = 0.9e-3

#: [fit] Per-diagonal-edge pack/unpack overhead: the N-sized edge
#: messages (Sec 4.3) occupy scattered texels, so each edge direction
#: costs an extra small gather/scatter pass plus a write.
EDGE_PACK_OVERHEAD_S = 1.5e-3


def effective_upstream_bytes_per_s(bus: BusSpec) -> float:
    """Driver-achievable GPU->host rate for ``bus``."""
    return bus.upstream_bytes_per_s * EFFECTIVE_UPSTREAM_FRACTION


def effective_downstream_bytes_per_s(bus: BusSpec) -> float:
    """Driver-achievable host->GPU rate for ``bus``."""
    return bus.downstream_bytes_per_s * EFFECTIVE_DOWNSTREAM_FRACTION


# ---------------------------------------------------------------------------
# Network (1 Gigabit Ethernet switch, MPI over TCP on Windows XP)
# ---------------------------------------------------------------------------
# The network model is
#     T_net = PHASE + sum_steps [ STEP_OVERHEAD + msg_bytes / BW_EFF
#                                 + STRAGGLER * pairs_in_step ]
#             + drift_penalty(total_pairs)
# Provenance: Sec 4.3 reports that (1) a third sender interrupting a
# busy node "may dramatically reduce the performance" and (2) patterns
# with more neighbours cost considerably more at equal volume -- i.e.
# fixed per-step and per-pair costs dominate over raw bandwidth.  The
# four constants below were fitted (least squares by hand) to the ten
# "Network Communication (Total)" values of Table 1; residuals are
# within ~13% (worst case n=4), see EXPERIMENTS.md.

#: [fit] Per-exchange-phase fixed cost: MPI progress/thread wakeup on
#: Windows XP's ~10 ms scheduler ticks, paid once per time step.
NET_PHASE_OVERHEAD_S = 28.0e-3

#: [fit] Fixed cost of one schedule step (connection service + MPI
#: envelope handling), excluding payload.
NET_STEP_OVERHEAD_S = 3.7e-3

#: [fit] Effective per-flow TCP throughput (vs 125 MB/s line rate).
NET_EFFECTIVE_BYTES_PER_S = 16.0e6

#: [fit] Straggler growth: expected extra step time per concurrent pair
#: (stall tails of many flows; the step ends at the max).
NET_STRAGGLER_S_PER_PAIR = 0.4e-3

#: [fit] Free-running drift/contention penalty.  Below ~24 nodes the
#: schedule keeps ports collision-free; beyond, accumulated drift makes
#: a third node hit a busy port often enough to matter.  Fitted to the
#: n = 28, 30, 32 rows of Table 1.
NET_DRIFT_COEF_S = 15.5e-3
NET_DRIFT_FREE_NODES = 24
NET_DRIFT_EXPONENT = 0.7


def drift_penalty_s(nodes: int) -> float:
    """Extra network time from schedule drift at ``nodes`` nodes."""
    excess = max(0, nodes - NET_DRIFT_FREE_NODES)
    return NET_DRIFT_COEF_S * excess ** NET_DRIFT_EXPONENT if excess else 0.0


#: [paper, Sec 4.3] MPI_Barrier per scheduled step helps below 16
#: nodes; the crossover of the what-if model is calibrated there.
BARRIER_HELPFUL_MAX_NODES = 16

# ---------------------------------------------------------------------------
# CPU cluster baseline
# ---------------------------------------------------------------------------
#: [paper, Table 1] 1420 ms per 80^3 step on one Xeon 2.4 GHz thread.
CPU_NS_PER_CELL = 1420e6 / 80 ** 3

#: [fit] CPU compute drift with border directions (1420 -> 1440 ms in
#: Table 1): boundary packing into MPI buffers on the compute thread.
CPU_BORDER_COMPUTE_S_PER_DIR = 2.5e-3

#: [paper, Sec 4.4] the CPU cluster overlaps network communication with
#: computation "by using a second thread"; its overlap window is the
#: whole compute time.

# ---------------------------------------------------------------------------
# Naive (unscheduled) communication baseline, for the Sec 4.3 ablation
# ---------------------------------------------------------------------------
#: [fit to the qualitative Sec 4.3 finding] When all nodes fire all
#: their sends at once (no schedule), the probability that a third node
#: interrupts an ongoing transfer grows with fan-out; each interruption
#: costs roughly a TCP stall.
NAIVE_INTERRUPT_STALL_S = 18.0e-3
NAIVE_INTERRUPT_PROB_PER_EXTRA_NEIGHBOR = 0.35


def lbm_step_compute_ns_per_cell() -> float:
    """Total modeled GPU compute per cell (the 417.97 ns/cell anchor)."""
    # collide+macro: 290 ALU + 20 fetches; stream+boundary: 60 ALU + 48.
    alu, fetch = 350, 68
    return alu * GPU_NS_PER_ALU + fetch * GPU_NS_PER_FETCH


def validate() -> None:
    """Internal consistency checks (run by the test suite)."""
    total = lbm_step_compute_ns_per_cell() * 80 ** 3 * 1e-9
    if not math.isclose(total, 0.214, rel_tol=0.01):
        raise AssertionError(f"compute anchor drifted: {total*1e3:.1f} ms != 214 ms")
    collide = (290 * GPU_NS_PER_ALU + 20 * GPU_NS_PER_FETCH) * 80 ** 3 * 1e-9
    if not math.isclose(collide, 0.129, rel_tol=0.02):
        raise AssertionError(f"collide anchor drifted: {collide*1e3:.1f} ms != 129 ms")
