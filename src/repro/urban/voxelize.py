"""Voxelization of the city model onto the LBM lattice (Sec 5).

The paper uses a 480x400x80 lattice at 3.8 m spacing; the rotated city
"occupies a lattice area of 440 x 300 on the ground".  The voxelizer
rasterises each rotated building footprint into the solid mask, adds
the ground plane, and reports occupancy statistics.

Rasterisation is vectorized: cell centres are inverse-rotated into
city coordinates once, then each building is an axis-aligned box test
against its lattice-frame bounding box.
"""

from __future__ import annotations

import numpy as np

from repro.urban.city import CityModel


def voxelize_city(city: CityModel, shape: tuple[int, int, int],
                  resolution_m: float, ground_layers: int = 1,
                  margin_cells: tuple[int, int] = (0, 0)) -> np.ndarray:
    """Rasterise ``city`` into a solid mask of ``shape``.

    Parameters
    ----------
    city:
        The city model (meters, with its own rotation).
    shape:
        Lattice shape (nx, ny, nz).
    resolution_m:
        Meters per lattice spacing (3.8 in the paper).
    ground_layers:
        Solid cells at the bottom of the domain (the ground).
    margin_cells:
        (x, y) offset of the city's rotated bounding box inside the
        lattice, leaving free inflow/outflow room.

    Returns
    -------
    numpy.ndarray
        Bool mask (nx, ny, nz), True = solid.
    """
    nx, ny, nz = shape
    solid = np.zeros(shape, dtype=bool)
    solid[:, :, :ground_layers] = True

    theta = np.deg2rad(city.rotation_deg)
    cos_t, sin_t = np.cos(theta), np.sin(theta)
    wx, wy = city.extent_m
    cx, cy = wx / 2.0, wy / 2.0

    # Rotated city bounding half-extent, to centre it in the lattice.
    half_w = (abs(cos_t) * wx + abs(sin_t) * wy) / 2.0
    half_d = (abs(sin_t) * wx + abs(cos_t) * wy) / 2.0
    off_x = margin_cells[0] + half_w / resolution_m
    off_y = margin_cells[1] + half_d / resolution_m

    # Lattice cell centres -> city coordinates (inverse rotation).
    xs = (np.arange(nx) + 0.5 - off_x) * resolution_m
    ys = (np.arange(ny) + 0.5 - off_y) * resolution_m
    X, Y = np.meshgrid(xs, ys, indexing="ij")
    # inverse rotate: city = R(-theta) @ lattice
    CXp = cos_t * X + sin_t * Y + cx
    CYp = -sin_t * X + cos_t * Y + cy

    for b in city.buildings:
        inside = ((CXp >= b.x0) & (CXp < b.x0 + b.w)
                  & (CYp >= b.y0) & (CYp < b.y0 + b.d))
        if not inside.any():
            continue
        top = ground_layers + int(round(b.height / resolution_m))
        top = min(top, nz)
        if top > ground_layers:
            solid[inside, ground_layers:top] = True
    return solid


def occupancy(solid: np.ndarray, ground_layers: int = 1) -> float:
    """Fraction of above-ground cells that are building-solid."""
    above = solid[:, :, ground_layers:]
    return float(above.mean())


def footprint_cells(solid: np.ndarray, ground_layers: int = 1) -> int:
    """Ground-level building footprint cell count."""
    if solid.shape[2] <= ground_layers:
        return 0
    return int(solid[:, :, ground_layers].sum())
