"""Urban airborne-dispersion application (Sec 5).

The paper simulates contaminant transport over a detailed polygonal
model of the Times Square area: ~1.66 km x 1.13 km, 91 blocks, roughly
850 buildings, rotated to align with the LBM domain axes, voxelized
onto a 480x400x80 lattice at 3.8 m spacing, driven by a northeasterly
wind imposed on the right side of the domain.

That proprietary city mesh is not available, so
:mod:`repro.urban.city` generates a *statistically similar* synthetic
Manhattan: a street grid forming the same number of blocks, lognormal
building heights, the same rotation into the lattice frame.  The flow
solver only ever sees the voxelized obstacle mask and boundary links,
so the substitution exercises the identical code paths
(:mod:`repro.urban.voxelize`), including the boundary-rectangle
coverage of Sec 4.2.

:mod:`repro.urban.dispersion` assembles the full scenario: city ->
solid mask -> wind inlet (:mod:`repro.urban.wind`) -> LBM spin-up ->
tracer release (Lowe-Succi transition probabilities), on either the
single-domain solver or the GPU cluster driver.
"""

from repro.urban.city import Building, CityModel, times_square_like
from repro.urban.voxelize import voxelize_city
from repro.urban.wind import northeasterly, power_law_profile
from repro.urban.dispersion import DispersionScenario

__all__ = [
    "Building", "CityModel", "times_square_like",
    "voxelize_city", "northeasterly", "power_law_profile",
    "DispersionScenario",
]
