"""Wind boundary conditions for the urban simulation (Sec 5).

"We simulate a northeasterly wind with a velocity boundary condition
on the right side of the LBM domain."

A *northeasterly* wind blows **from** the northeast; with the domain's
+x pointing east and +y north, it enters at the high-x (right) face
with a negative-x (and slightly negative-y) velocity.  Real urban
boundary layers are sheared, so :func:`power_law_profile` provides the
standard atmospheric power-law speed profile over height.
"""

from __future__ import annotations

import numpy as np


def power_law_profile(nz: int, u_ref: float, z_ref_frac: float = 0.5,
                      alpha: float = 0.25, ground_layers: int = 1) -> np.ndarray:
    """Power-law wind-speed magnitude per z level (lattice units).

    ``u(z) = u_ref * (z / z_ref)^alpha`` with alpha ~ 0.25 for urban
    terrain; zero inside the ground.
    """
    if not 0 < u_ref < 0.3:
        raise ValueError("u_ref should be a stable lattice velocity (<0.3)")
    z = np.arange(nz, dtype=np.float64) - ground_layers + 0.5
    z_ref = max(1.0, (nz - ground_layers) * z_ref_frac)
    u = u_ref * np.clip(z / z_ref, 0.0, None) ** alpha
    u[:ground_layers] = 0.0
    return np.clip(u, 0.0, 0.3)


def northeasterly(speed: float, bearing_deg: float = 45.0) -> np.ndarray:
    """Velocity vector of a wind *from* the given compass bearing.

    Bearing 45 deg = northeast; with +x east and +y north the flow
    vector points southwest: ``(-sin b, -cos b) * speed``.
    """
    b = np.deg2rad(bearing_deg)
    return np.array([-np.sin(b) * speed, -np.cos(b) * speed, 0.0])
