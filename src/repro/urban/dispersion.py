"""The complete dispersion scenario (Sec 5).

Assembles city -> voxelized obstacles -> wind inlet -> LBM run ->
tracer release.  Paper protocol: the D3Q19 BGK flow spins up (1000
steps at full scale), then "the pollution tracer particles begin to
propagate along the LBM lattice links according to transition
probabilities obtained from the LBM velocity distributions".

Works at three scales:

* **test scale** — a handful of buildings on a tiny lattice, solved on
  the single-domain reference solver (fast, exact);
* **demo scale** — a downscaled city on the numeric GPU cluster;
* **paper scale** — 480x400x80 on 30 nodes in ``timing_only`` mode,
  reproducing the 0.31 s/step headline (benchmarked in
  ``benchmarks/bench_dispersion.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cluster_lbm import ClusterConfig, GPUClusterLBM
from repro.lbm.lattice import D3Q19
from repro.lbm.solver import LBMSolver
from repro.lbm.tracers import TracerCloud
from repro.lbm.boundaries import EquilibriumVelocityInlet, OutflowBoundary
from repro.urban.city import CityModel, times_square_like
from repro.urban.voxelize import voxelize_city
from repro.urban.wind import northeasterly


@dataclass
class DispersionScenario:
    """A configured urban dispersion problem.

    Parameters
    ----------
    shape:
        Lattice shape (paper: (480, 400, 80)).
    resolution_m:
        Meters per lattice spacing (paper: 3.8).
    city:
        City model; a seeded Times-Square-like city by default.
    wind_speed:
        Inlet speed in lattice units (keep < 0.1 for accuracy).
    wind_bearing_deg:
        Compass bearing the wind blows *from* (45 = northeasterly).
    tau:
        BGK relaxation time.
    """

    shape: tuple[int, int, int] = (480, 400, 80)
    resolution_m: float = 3.8
    city: CityModel | None = None
    wind_speed: float = 0.05
    wind_bearing_deg: float = 45.0
    tau: float = 0.55
    ground_layers: int = 1

    def __post_init__(self) -> None:
        if self.city is None:
            self.city = times_square_like()
        self.wind = northeasterly(self.wind_speed, self.wind_bearing_deg)
        self._solid: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def solid(self) -> np.ndarray:
        """Voxelized obstacle mask (cached)."""
        if self._solid is None:
            self._solid = voxelize_city(self.city, self.shape,
                                        self.resolution_m,
                                        ground_layers=self.ground_layers)
        return self._solid

    @property
    def inlet(self) -> tuple:
        """Wind enters on the high-x ("right") face, per the paper."""
        return (0, "high", self.wind, 1.0)

    @property
    def outflow(self) -> tuple:
        return (0, "low")

    # ------------------------------------------------------------------
    def make_single_solver(self, **kwargs) -> LBMSolver:
        """Single-domain solver with the scenario's boundary conditions.

        Extra keyword arguments reach :class:`~repro.lbm.LBMSolver`
        unchanged — e.g. ``kernel="aa"`` for the in-place bounded
        sweep (the inlet/outflow closure folds into it, DESIGN.md
        §5i) or ``layout="auto"`` to let the measured autotuner pick
        the distribution layout.
        """
        bcs = [EquilibriumVelocityInlet(D3Q19, *self.inlet),
               OutflowBoundary(D3Q19, *self.outflow)]
        return LBMSolver(self.shape, self.tau, solid=self.solid,
                         boundaries=bcs, periodic=False, **kwargs)

    def make_cluster(self, arrangement, timing_only: bool = False,
                     **kwargs) -> GPUClusterLBM:
        """GPU-cluster driver for this scenario.

        The lattice must divide evenly over ``arrangement`` (the paper
        uses 30 nodes of 80^3 each for the 480x400x80 run — note
        480x400x80 / 80^3 = 6 x 5 x 1).  Extra keyword arguments reach
        :class:`~repro.core.cluster_lbm.ClusterConfig` unchanged, so
        ``decomposition="weighted"`` (or explicit ``cuts=``) sizes the
        per-rank blocks by the city's occupancy cost instead of equal
        boxes — the mixed dense/sparse rank population of a voxelized
        city is exactly the case the weighted cuts exist for.
        """
        for s, a in zip(self.shape, arrangement):
            if s % a:
                raise ValueError(
                    f"lattice {self.shape} not divisible by {arrangement}")
        sub = tuple(s // a for s, a in zip(self.shape, arrangement))
        cfg = ClusterConfig(
            sub_shape=sub, arrangement=tuple(arrangement), tau=self.tau,
            periodic=(False, False, False),
            timing_only=timing_only,
            solid=None if timing_only else self.solid,
            inlet=self.inlet, outflow=self.outflow, **kwargs)
        return GPUClusterLBM(cfg)

    def release_tracers(self, n: int, source_xy: tuple[int, int] | None = None,
                        source_height: int = 2, radius: int = 2,
                        seed: int = 7) -> TracerCloud:
        """A puff of ``n`` tracers near ground level at the source.

        Default source: street level at the domain centre (the paper
        releases contaminants within the city canyon).
        """
        rng = np.random.default_rng(seed)
        nx, ny, nz = self.shape
        sx, sy = source_xy if source_xy is not None else (nx // 2, ny // 2)
        pos = np.empty((n, 3), dtype=np.int64)
        placed = 0
        solid = self.solid
        while placed < n:
            cand = np.column_stack([
                rng.integers(sx - radius, sx + radius + 1, n),
                rng.integers(sy - radius, sy + radius + 1, n),
                rng.integers(self.ground_layers,
                             self.ground_layers + source_height + 1, n)])
            cand = np.clip(cand, 0, np.array(self.shape) - 1)
            ok = ~solid[cand[:, 0], cand[:, 1], cand[:, 2]]
            take = min(n - placed, int(ok.sum()))
            pos[placed:placed + take] = cand[ok][:take]
            placed += take
        return TracerCloud(D3Q19, pos, self.shape, periodic=False, rng=seed)
