"""Procedural Manhattan-style city model.

Substitute for the paper's proprietary Times Square mesh (see the
package docstring).  The generator is fully seeded and parameterised by
the same statistics the paper reports: footprint area, number of
blocks, approximate building count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Building:
    """An axis-aligned building in city coordinates (meters).

    ``x0 <= x < x0+w``, ``y0 <= y < y0+d``, height in meters.
    """

    x0: float
    y0: float
    w: float
    d: float
    height: float

    @property
    def footprint_m2(self) -> float:
        return self.w * self.d


@dataclass
class CityModel:
    """A rectangular city of street-grid blocks filled with buildings.

    Attributes
    ----------
    extent_m:
        (width, depth) of the modeled area in meters.
    blocks:
        List of block rectangles ``(x0, y0, w, d)``.
    buildings:
        All generated buildings.
    rotation_deg:
        Rotation applied when the city is placed in the LBM domain
        ("The urban model is rotated to align it with the LBM domain
        axes", Sec 5).
    """

    extent_m: tuple[float, float]
    blocks: list[tuple[float, float, float, float]] = field(default_factory=list)
    buildings: list[Building] = field(default_factory=list)
    rotation_deg: float = 0.0

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_buildings(self) -> int:
        return len(self.buildings)

    def height_stats(self) -> dict[str, float]:
        """Mean / max building height (meters)."""
        h = np.array([b.height for b in self.buildings])
        return {"mean": float(h.mean()), "max": float(h.max()),
                "p90": float(np.percentile(h, 90))}


def times_square_like(seed: int = 2004,
                      extent_m: tuple[float, float] = (1660.0, 1130.0),
                      blocks_grid: tuple[int, int] = (13, 7),
                      avenue_width_m: float = 30.0,
                      street_width_m: float = 18.0,
                      mean_height_m: float = 45.0,
                      sigma_height: float = 0.6,
                      max_height_m: float = 280.0,
                      rotation_deg: float = 29.0) -> CityModel:
    """Generate a synthetic Times-Square-area city.

    Defaults reproduce the paper's statistics: 1.66 km x 1.13 km,
    13 x 7 = 91 blocks, ~850 buildings (9-10 lots per block), lognormal
    heights with a midtown-Manhattan spread, and the ~29 degree
    rotation of the Manhattan grid against the cardinal LBM axes.
    """
    rng = np.random.default_rng(seed)
    wx, wy = extent_m
    nbx, nby = blocks_grid
    # Block cell sizes from the extent minus the street grid.
    bw = (wx - (nbx + 1) * avenue_width_m) / nbx
    bd = (wy - (nby + 1) * street_width_m) / nby
    if bw <= 0 or bd <= 0:
        raise ValueError("streets wider than the city")
    city = CityModel(extent_m=extent_m, rotation_deg=rotation_deg)
    for bx in range(nbx):
        for by in range(nby):
            x0 = avenue_width_m + bx * (bw + avenue_width_m)
            y0 = street_width_m + by * (bd + street_width_m)
            city.blocks.append((x0, y0, bw, bd))
            _fill_block(city, rng, x0, y0, bw, bd,
                        mean_height_m, sigma_height, max_height_m)
    return city


def _fill_block(city: CityModel, rng: np.random.Generator,
                x0: float, y0: float, bw: float, bd: float,
                mean_h: float, sigma_h: float, max_h: float) -> None:
    """Subdivide one block into lots and place a building per lot."""
    # Manhattan blocks are long and thin: split the long axis into more
    # lots.  2 x ~5 lots -> 9-10 buildings/block -> ~850 total.
    n_long = int(rng.integers(4, 7))
    n_short = 2
    lots_x, lots_y = (n_long, n_short) if bw >= bd else (n_short, n_long)
    lw, ld = bw / lots_x, bd / lots_y
    for ix in range(lots_x):
        for iy in range(lots_y):
            # Occasional empty lot (plaza) keeps the count near 850.
            if rng.random() < 0.04:
                continue
            inset_x = rng.uniform(0.03, 0.12) * lw
            inset_y = rng.uniform(0.03, 0.12) * ld
            h = float(np.clip(rng.lognormal(np.log(mean_h), sigma_h),
                              8.0, max_h))
            city.buildings.append(Building(
                x0=x0 + ix * lw + inset_x,
                y0=y0 + iy * ld + inset_y,
                w=lw - 2 * inset_x,
                d=ld - 2 * inset_y,
                height=h))
