"""Explicit 2D wave equation with proxy points — a second instance of
the Sec-6 "entire class of explicit methods on structured grids".

Leapfrog discretisation of ``u_tt = c^2 laplacian(u)``::

    u^{n+1} = 2 u^n - u^{n-1} + C^2 * laplacian(u^n)

with Courant number ``C = c dt/dx`` (stable for C <= 1/sqrt(2) in 2D).
Unlike the heat equation this scheme carries *two* time levels, so the
per-rank state is richer, but the communication pattern is the same
one-ring proxy exchange of Fig 14 — demonstrating that the framework
generalises across the explicit-method class, as the paper argues.
"""

from __future__ import annotations

import numpy as np

from repro.net.simmpi import SimCluster
from repro.solvers.heat import laplacian_interior


def step_reference(u_prev: np.ndarray, u: np.ndarray, courant2: float,
                   steps: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Single-domain leapfrog steps with fixed (u = 0) boundaries."""
    u_prev = u_prev.astype(np.float64, copy=True)
    u = u.astype(np.float64, copy=True)
    for _ in range(steps):
        padded = np.pad(u, 1, mode="constant")
        u_next = 2.0 * u - u_prev + courant2 * laplacian_interior(padded)
        u_prev, u = u, u_next
    return u_prev, u


def wave_energy(u_prev: np.ndarray, u: np.ndarray, courant2: float) -> float:
    """The discrete invariant of the leapfrog scheme.

    ``E = 1/2 ||u^n - u^{n-1}||^2 + (C^2/2) <grad u^n, grad u^{n-1}>``
    (note the *cross* product of consecutive levels — this, not the
    single-level energy, is what leapfrog conserves exactly).  Gradients
    include the Dirichlet boundary edges (zero padding).
    """
    ut = u - u_prev
    kinetic = 0.5 * float((ut * ut).sum())
    pa = np.pad(u, 1, mode="constant")
    pb = np.pad(u_prev, 1, mode="constant")
    potential = 0.0
    for axis in (0, 1):
        ga = np.diff(pa, axis=axis)
        gb = np.diff(pb, axis=axis)
        potential += float((ga * gb).sum())
    return kinetic + 0.5 * courant2 * potential


class DistributedWave2D:
    """Leapfrog wave equation on a (PX, PY) rank grid over SimMPI.

    Parameters
    ----------
    u0:
        Initial displacement (nx, ny); starts from rest (u_prev = u0).
    ranks:
        (PX, PY) arrangement; extents must divide.
    courant:
        Courant number C; must satisfy C <= 1/sqrt(2).
    """

    def __init__(self, u0: np.ndarray, ranks: tuple[int, int],
                 courant: float = 0.5) -> None:
        if not 0 < courant <= 1.0 / np.sqrt(2.0) + 1e-12:
            raise ValueError("courant must be in (0, 1/sqrt(2)] for stability")
        u0 = np.asarray(u0, dtype=np.float64)
        px, py = ranks
        if u0.shape[0] % px or u0.shape[1] % py:
            raise ValueError(f"{u0.shape} not divisible by ranks {ranks}")
        self.u0 = u0
        self.ranks = (int(px), int(py))
        self.courant2 = float(courant) ** 2

    def run(self, steps: int, cluster: SimCluster | None = None) -> np.ndarray:
        """Advance ``steps`` from rest; gather the displacement field."""
        px, py = self.ranks
        bx, by = self.u0.shape[0] // px, self.u0.shape[1] // py
        blocks = [self.u0[ix * bx:(ix + 1) * bx, iy * by:(iy + 1) * by].copy()
                  for iy in range(py) for ix in range(px)]
        c2 = self.courant2

        def coords(rank):
            return rank % px, rank // px

        def rank_of(ix, iy):
            return iy * px + ix

        def main(comm):
            ix, iy = coords(comm.rank)
            u = blocks[comm.rank]
            u_prev = u.copy()            # start from rest
            for _ in range(steps):
                pad = np.pad(u, 1, mode="constant")
                for axis in range(2):
                    lo = (rank_of(ix - 1, iy) if axis == 0 and ix > 0 else
                          rank_of(ix, iy - 1) if axis == 1 and iy > 0 else None)
                    hi = (rank_of(ix + 1, iy) if axis == 0 and ix < px - 1 else
                          rank_of(ix, iy + 1) if axis == 1 and iy < py - 1 else None)
                    tag_up, tag_dn = 30 + axis, 40 + axis
                    if hi is not None:
                        edge = u[-1, :] if axis == 0 else u[:, -1]
                        comm.Isend(np.ascontiguousarray(edge), dest=hi,
                                   tag=tag_up)
                    if lo is not None:
                        edge = u[0, :] if axis == 0 else u[:, 0]
                        comm.Isend(np.ascontiguousarray(edge), dest=lo,
                                   tag=tag_dn)
                    if lo is not None:
                        got = comm.Recv(source=lo, tag=tag_up)
                        if axis == 0:
                            pad[0, 1:-1] = got
                        else:
                            pad[1:-1, 0] = got
                    if hi is not None:
                        got = comm.Recv(source=hi, tag=tag_dn)
                        if axis == 0:
                            pad[-1, 1:-1] = got
                        else:
                            pad[1:-1, -1] = got
                u_next = 2.0 * u - u_prev + c2 * laplacian_interior(pad)
                u_prev, u = u, u_next
            return u

        cl = cluster if cluster is not None else SimCluster(px * py)
        parts = cl.run(main)
        out = np.empty_like(self.u0)
        for r, part in enumerate(parts):
            cx, cy = coords(r)
            out[cx * bx:(cx + 1) * bx, cy * by:(cy + 1) * by] = part
        return out
