"""Explicit finite differences with proxy points (Sec 6, Fig 14).

"To parallelize explicit methods on the GPU cluster, the domain can be
decomposed into local sub-domains ...  Non-local gather operations,
which involve accessing the data of neighbor points, can be achieved
as a local gather operation by adding proxy points at the computation
boundary to store the variables of neighbor points obtained over the
network."

:class:`DistributedHeat2D` solves the 2D heat equation
``u' = u + kappa * laplacian(u)`` on a 2D block decomposition over
:class:`~repro.net.SimCluster` ranks.  Each rank's array carries one
ring of *proxy points*; the per-step exchange refreshes them from the
owning neighbours, axis phase by axis phase (the Fig-7 order).
"""

from __future__ import annotations

import numpy as np

from repro.net.simmpi import SimCluster


def laplacian_interior(padded: np.ndarray) -> np.ndarray:
    """5-point Laplacian of the interior of a proxy-padded array."""
    return (padded[:-2, 1:-1] + padded[2:, 1:-1]
            + padded[1:-1, :-2] + padded[1:-1, 2:]
            - 4.0 * padded[1:-1, 1:-1])


def step_reference(u: np.ndarray, kappa: float, steps: int = 1) -> np.ndarray:
    """Single-domain explicit heat steps with insulated (zero-gradient)
    boundaries — the golden model."""
    u = u.astype(np.float64, copy=True)
    for _ in range(steps):
        padded = np.pad(u, 1, mode="edge")
        u = u + kappa * laplacian_interior(padded)
    return u


class DistributedHeat2D:
    """Explicit heat equation on a (PX, PY) rank grid.

    Parameters
    ----------
    u0:
        Initial field (nx, ny); extents must divide by the rank grid.
    ranks:
        (PX, PY) arrangement.
    kappa:
        Diffusivity; explicit stability needs ``kappa <= 0.25`` in 2D.
    """

    def __init__(self, u0: np.ndarray, ranks: tuple[int, int],
                 kappa: float = 0.2) -> None:
        if not 0 < kappa <= 0.25:
            raise ValueError("kappa must be in (0, 0.25] for stability")
        u0 = np.asarray(u0, dtype=np.float64)
        px, py = ranks
        if u0.shape[0] % px or u0.shape[1] % py:
            raise ValueError(f"{u0.shape} not divisible by ranks {ranks}")
        self.u0 = u0
        self.ranks = (int(px), int(py))
        self.kappa = float(kappa)

    def run(self, steps: int, cluster: SimCluster | None = None) -> np.ndarray:
        """Advance ``steps`` and gather the global field."""
        px, py = self.ranks
        n = px * py
        bx, by = self.u0.shape[0] // px, self.u0.shape[1] // py
        blocks = [self.u0[ix * bx:(ix + 1) * bx, iy * by:(iy + 1) * by].copy()
                  for iy in range(py) for ix in range(px)]
        kappa = self.kappa

        def coords(rank: int) -> tuple[int, int]:
            return rank % px, rank // px

        def rank_of(ix: int, iy: int) -> int:
            return iy * px + ix

        def main(comm):
            ix, iy = coords(comm.rank)
            me = blocks[comm.rank]
            for _ in range(steps):
                pad = np.pad(me, 1, mode="edge")  # proxy ring (edge = insulated)
                # Axis phases; directional shifts as in Fig 7.
                for axis, (ci, np_axis) in enumerate([(ix, px), (iy, py)]):
                    lo_nb = rank_of(ix - 1, iy) if axis == 0 and ix > 0 else (
                        rank_of(ix, iy - 1) if axis == 1 and iy > 0 else None)
                    hi_nb = rank_of(ix + 1, iy) if axis == 0 and ix < px - 1 else (
                        rank_of(ix, iy + 1) if axis == 1 and iy < py - 1 else None)
                    tag_up, tag_dn = 10 + axis, 20 + axis
                    if hi_nb is not None:
                        edge = me[-1, :] if axis == 0 else me[:, -1]
                        comm.Isend(np.ascontiguousarray(edge), dest=hi_nb, tag=tag_up)
                    if lo_nb is not None:
                        edge = me[0, :] if axis == 0 else me[:, 0]
                        comm.Isend(np.ascontiguousarray(edge), dest=lo_nb, tag=tag_dn)
                    if lo_nb is not None:
                        got = comm.Recv(source=lo_nb, tag=tag_up)
                        if axis == 0:
                            pad[0, 1:-1] = got
                        else:
                            pad[1:-1, 0] = got
                    if hi_nb is not None:
                        got = comm.Recv(source=hi_nb, tag=tag_dn)
                        if axis == 0:
                            pad[-1, 1:-1] = got
                        else:
                            pad[1:-1, -1] = got
                me = me + kappa * laplacian_interior(pad)
            return me

        cl = cluster if cluster is not None else SimCluster(n)
        parts = cl.run(main)
        out = np.empty_like(self.u0)
        for r, part in enumerate(parts):
            cx, cy = coords(r)
            out[cx * bx:(cx + 1) * bx, cy * by:(cy + 1) * by] = part
        return out
