"""Cellular automata on the simulated cluster (Sec 6).

A CA step is an explicit stencil update — exactly the communication
structure of the LBM: exchange a one-cell halo, update locally.  Each
rank runs as a :class:`~repro.net.SimCluster` thread and exchanges halo
columns with ``sendrecv`` in the paper's even/odd pairwise order.

Rules are vectorized callables ``rule(state, neighbours) -> state`` on
int8 arrays, where ``neighbours`` is the Moore neighbour sum (for
multi-state rules, the count of cells in state 1).
"""

from __future__ import annotations

import numpy as np

from repro.net.simmpi import SimCluster


def life_rule(state: np.ndarray, neighbours: np.ndarray) -> np.ndarray:
    """Conway's Game of Life: B3/S23."""
    born = (state == 0) & (neighbours == 3)
    survive = (state == 1) & ((neighbours == 2) | (neighbours == 3))
    return (born | survive).astype(np.int8)


def majority_rule(state: np.ndarray, neighbours: np.ndarray) -> np.ndarray:
    """Binary majority vote over the Moore neighbourhood (self included)."""
    return ((neighbours + state) >= 5).astype(np.int8)


def greenberg_hastings_rule(state: np.ndarray, neighbours: np.ndarray) -> np.ndarray:
    """Greenberg-Hastings excitable medium with 3 states:
    0 = quiescent (excited by any excited neighbour), 1 = excited,
    2 = refractory."""
    out = np.zeros_like(state)
    out[(state == 0) & (neighbours > 0)] = 1
    out[state == 1] = 2
    # refractory -> quiescent (stays 0)
    return out


def _moore_neighbour_sum(padded: np.ndarray) -> np.ndarray:
    """Count of state-1 Moore neighbours for the interior of a padded
    array (excludes the centre cell)."""
    ones = (padded == 1).astype(np.int8)
    total = np.zeros_like(ones[1:-1, 1:-1], dtype=np.int16)
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx == 0 and dy == 0:
                continue
            total += ones[1 + dx:padded.shape[0] - 1 + dx,
                          1 + dy:padded.shape[1] - 1 + dy]
    return total


def step_reference(state: np.ndarray, rule, periodic: bool = True) -> np.ndarray:
    """Single-domain CA step (the golden model)."""
    mode = "wrap" if periodic else "edge"
    padded = np.pad(state, 1, mode=mode)
    if not periodic:
        # Dead border instead of edge-replication for Life-like rules.
        padded = np.pad(state, 1, mode="constant")
    return rule(state, _moore_neighbour_sum(padded))


class DistributedCA:
    """A 2D cellular automaton decomposed over cluster ranks.

    Column-block decomposition (1D): rank r owns columns
    ``[r*w, (r+1)*w)``; each step exchanges one halo column with each
    neighbour (wrapping if periodic), then applies the rule locally —
    the Fig-6 pattern in its simplest form.

    Parameters
    ----------
    grid:
        Initial state, shape (nx, ny), int8.
    n_ranks:
        Cluster size; nx must divide evenly.
    rule:
        Vectorized CA rule.
    periodic:
        Torus vs dead-border world.
    """

    def __init__(self, grid: np.ndarray, n_ranks: int, rule=life_rule,
                 periodic: bool = True) -> None:
        grid = np.asarray(grid, dtype=np.int8)
        if grid.ndim != 2:
            raise ValueError("grid must be 2D")
        if grid.shape[0] % n_ranks:
            raise ValueError(f"nx={grid.shape[0]} not divisible by {n_ranks}")
        self.grid = grid
        self.n_ranks = int(n_ranks)
        self.rule = rule
        self.periodic = bool(periodic)

    def run(self, steps: int, cluster: SimCluster | None = None) -> np.ndarray:
        """Advance ``steps`` and return the gathered final grid."""
        nx, ny = self.grid.shape
        w = nx // self.n_ranks
        blocks = [self.grid[r * w:(r + 1) * w].copy() for r in range(self.n_ranks)]
        rule, periodic, n = self.rule, self.periodic, self.n_ranks

        def main(comm):
            me = blocks[comm.rank]
            left = (comm.rank - 1) % comm.size
            right = (comm.rank + 1) % comm.size
            for _ in range(steps):
                pad = np.zeros((me.shape[0] + 2, ny + 2), dtype=np.int8)
                pad[1:-1, 1:-1] = me
                # y halo is local (full columns owned by this rank).
                if periodic:
                    pad[1:-1, 0] = me[:, -1]
                    pad[1:-1, -1] = me[:, 0]
                # x halo over the network: two directional shift phases
                # (the per-axis step structure of Fig 7).
                if comm.size > 1:
                    send_right = periodic or comm.rank < comm.size - 1
                    send_left = periodic or comm.rank > 0
                    if send_right:
                        comm.Isend(np.ascontiguousarray(me[-1]), dest=right, tag=1)
                    if send_left:
                        comm.Isend(np.ascontiguousarray(me[0]), dest=left, tag=2)
                    if send_left:   # a right-shift message arrives from left
                        pad[0, 1:-1] = comm.Recv(source=left, tag=1)
                    if send_right:  # a left-shift message arrives from right
                        pad[-1, 1:-1] = comm.Recv(source=right, tag=2)
                elif periodic:
                    pad[0, 1:-1] = me[-1]
                    pad[-1, 1:-1] = me[0]
                # Corner halos, consistent with the row halos just set.
                if periodic:
                    pad[0, 0], pad[0, -1] = pad[0, -2], pad[0, 1]
                    pad[-1, 0], pad[-1, -1] = pad[-1, -2], pad[-1, 1]
                me = rule(me, _moore_neighbour_sum(pad))
            return me

        cl = cluster if cluster is not None else SimCluster(self.n_ranks)
        parts = cl.run(main)
        return np.concatenate(parts, axis=0)
