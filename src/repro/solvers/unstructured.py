"""Explicit methods on unstructured grids via indirection textures (Sec 6).

"For explicit methods on unstructured grids, the main challenge is to
represent the grid in textures.  If the grid connection does not
change during computation, the structure can be laid out in textures
in a preprocessing step.  The data associated with the grid points can
be laid out in textures in the order of point IDs.  Using indirection
textures, the texture coordinates of neighbors of each point can also
be stored.  Hence, accessing neighbor variables will require two
texture fetch operations."

:class:`IndirectionTextureGrid` packs an arbitrary fixed graph into
the simulated GPU exactly that way: a value texture in point-ID order,
an adjacency (indirection) texture holding neighbour *texture
coordinates*, and a fragment program doing fetch-coordinate /
fetch-value pairs to run one explicit diffusion (graph Laplacian
smoothing) step per pass.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import SimulatedGPU
from repro.gpu.fragment import FragmentProgram, Rect


def build_disk_mesh(rings: int = 6, seed: int = 0) -> tuple[np.ndarray, list[list[int]]]:
    """A small unstructured triangle-fan mesh on a disk.

    Returns (points (n, 2), adjacency lists).  Irregular valence makes
    it a genuine unstructured-grid test.
    """
    rng = np.random.default_rng(seed)
    pts = [(0.0, 0.0)]
    adj: list[list[int]] = [[]]
    prev_ring = [0]
    for r in range(1, rings + 1):
        k = 4 + 3 * r
        start = len(pts)
        for i in range(k):
            ang = 2 * np.pi * i / k + rng.uniform(-0.05, 0.05)
            rad = r / rings * (1 + rng.uniform(-0.03, 0.03))
            pts.append((rad * np.cos(ang), rad * np.sin(ang)))
            adj.append([])
        ring = list(range(start, start + k))
        for i, p in enumerate(ring):
            q = ring[(i + 1) % k]
            adj[p].append(q)
            adj[q].append(p)
            # connect to nearest point of the previous ring
            pp = np.array(pts[p])
            dists = [np.hypot(*(np.array(pts[o]) - pp)) for o in prev_ring]
            near = prev_ring[int(np.argmin(dists))]
            adj[p].append(near)
            adj[near].append(p)
        prev_ring = ring
    adj = [sorted(set(a)) for a in adj]
    return np.array(pts), adj


class IndirectionTextureGrid:
    """A fixed graph packed into value + indirection textures.

    Parameters
    ----------
    adjacency:
        Neighbour lists per point.
    device:
        Simulated GPU (fresh FX 5800 Ultra by default).
    width:
        Texture row width; points are packed row-major by ID ("in the
        order of point IDs").
    """

    def __init__(self, adjacency: list[list[int]],
                 device: SimulatedGPU | None = None, width: int = 64) -> None:
        self.n = len(adjacency)
        self.max_deg = max((len(a) for a in adjacency), default=0)
        if self.max_deg == 0:
            raise ValueError("graph has no edges")
        self.device = device if device is not None else SimulatedGPU()
        self.width = int(width)
        self.height = (self.n + self.width - 1) // self.width
        # Value texture: one stack slice, channel 0 holds the scalar.
        self.values = self.device.new_stack(self.width, self.height, 1, "values")
        # Indirection textures: per neighbour slot, (y, x) coords +
        # validity flag in channels 0..2.
        self.indirection = [
            self.device.new_stack(self.width, self.height, 1, f"indir{s}")
            for s in range(self.max_deg)]
        self.degree = np.zeros(self.n, dtype=np.int64)
        for pid, nbrs in enumerate(adjacency):
            self.degree[pid] = len(nbrs)
            py, px = divmod(pid, self.width)
            for s in range(self.max_deg):
                if s < len(nbrs):
                    ny, nx = divmod(nbrs[s], self.width)
                    self.indirection[s].data[0, py, px, 0] = ny
                    self.indirection[s].data[0, py, px, 1] = nx
                    self.indirection[s].data[0, py, px, 2] = 1.0
        self._program = self._build_program()

    def load(self, x: np.ndarray) -> None:
        """Upload point values (ID order) into the value texture."""
        x = np.asarray(x, dtype=np.float32)
        if x.shape != (self.n,):
            raise ValueError(f"expected ({self.n},) values")
        flat = np.zeros(self.width * self.height, dtype=np.float32)
        flat[:self.n] = x
        self.values.data[0, :, :, 0] = flat.reshape(self.height, self.width)

    def read(self) -> np.ndarray:
        """Read point values back (untimed host copy)."""
        return self.values.data[0, :, :, 0].reshape(-1)[:self.n].copy()

    def _build_program(self) -> FragmentProgram:
        indirection = self.indirection
        values = self.values

        def kernel(ctx):
            lam = np.float32(ctx.consts["lam"])
            own = ctx.fetch("values", channels=0)
            acc = np.zeros_like(own)
            deg = np.zeros_like(own)
            for s, ind in enumerate(indirection):
                # First fetch: the neighbour's texture coordinates.
                coords = ctx.fetch(f"indir{s}")
                ny = coords[..., 0].astype(np.int64)
                nx = coords[..., 1].astype(np.int64)
                valid = coords[..., 2] > 0
                # Second (dependent) fetch: the neighbour's value.
                ctx.fetch_count += 1
                vals = values.data[0, ny, nx, 0]
                acc += np.where(valid, vals, 0.0).astype(np.float32)
                deg += valid.astype(np.float32)
            safe = np.where(deg > 0, deg, np.float32(1.0))
            new = own + lam * (acc / safe - own)
            out = np.zeros(own.shape + (4,), dtype=np.float32)
            out[..., 0] = np.where(deg > 0, new, own)
            return out

        # Cost: per neighbour slot 2 fetches (indirection + dependent)
        # as the paper says, plus the own-value fetch.
        return FragmentProgram("unstructured-diffuse", kernel,
                               alu_ops=4 * self.max_deg + 6,
                               tex_fetches=2 * self.max_deg + 1)

    def smooth(self, steps: int = 1, lam: float = 0.5) -> None:
        """Run explicit graph-Laplacian diffusion passes on the GPU."""
        rect = Rect(0, self.height, 0, self.width)
        bindings = {"values": self.values}
        for s, ind in enumerate(self.indirection):
            bindings[f"indir{s}"] = ind
        for _ in range(steps):
            self.device.run_pass(self._program, self.values, bindings, rect,
                                 z_range=range(1), wrap=True,
                                 consts={"lam": lam})

    def reference_smooth(self, x: np.ndarray, adjacency: list[list[int]],
                         steps: int = 1, lam: float = 0.5) -> np.ndarray:
        """Plain-numpy golden model of :meth:`smooth`."""
        x = np.asarray(x, dtype=np.float32).copy()
        for _ in range(steps):
            new = x.copy()
            for pid, nbrs in enumerate(adjacency):
                if nbrs:
                    mean = np.float32(sum(x[n] for n in nbrs) / np.float32(len(nbrs)))
                    new[pid] = x[pid] + np.float32(lam) * (mean - x[pid])
            x = new
        return x
