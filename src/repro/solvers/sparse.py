"""Distributed sparse matrix-vector products (Sec 6, Fig 15).

"In each cluster node, the local matrix includes those matrix rows
which correspond to local points, and the local vector includes those
vector elements which correspond to the local and neighbor (proxy)
points ...  In each iteration step, the network communication is
needed to read the vector elements corresponding to neighbor points in
order to update proxy point elements in the local vector."

:class:`DistributedCSR` partitions the rows of a CSR matrix over
ranks, precomputes which remote vector elements each rank needs (its
proxy set) and which of its own elements each neighbour needs, and
exchanges exactly those per matvec — the O(1/N) communication ratio
the paper derives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.net.simmpi import SimCluster


def partition_rows(n: int, parts: int) -> list[range]:
    """Contiguous near-equal row blocks."""
    if parts < 1 or n < parts:
        raise ValueError(f"cannot split {n} rows into {parts} parts")
    base, extra = divmod(n, parts)
    out, start = [], 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


@dataclass
class _LocalSystem:
    """One rank's slice of the Fig-15 decomposition."""

    rows: range
    A_local: sparse.csr_matrix          # local rows x (local + proxy) cols
    local_to_global: np.ndarray         # columns of A_local in global ids
    proxy_owners: dict[int, np.ndarray]  # owner rank -> global ids needed
    serve: dict[int, np.ndarray]         # peer rank -> my global ids they need


class DistributedCSR:
    """A CSR matrix distributed by row blocks with proxy columns.

    Parameters
    ----------
    A:
        Square scipy CSR (or convertible) matrix.
    n_ranks:
        Number of ranks to partition over.
    """

    def __init__(self, A, n_ranks: int) -> None:
        A = sparse.csr_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise ValueError("matrix must be square")
        self.n = A.shape[0]
        self.n_ranks = int(n_ranks)
        self.row_blocks = partition_rows(self.n, self.n_ranks)
        self.owner_of = np.empty(self.n, dtype=np.int64)
        for r, block in enumerate(self.row_blocks):
            self.owner_of[block.start:block.stop] = r
        self.locals: list[_LocalSystem] = [self._build_local(A, r)
                                           for r in range(self.n_ranks)]
        # Fill each rank's serve lists from the others' proxy needs.
        for r, loc in enumerate(self.locals):
            for owner, ids in loc.proxy_owners.items():
                self.locals[owner].serve.setdefault(r, np.array([], dtype=np.int64))
                self.locals[owner].serve[r] = ids
        self.total_proxy_elements = sum(
            sum(len(v) for v in loc.proxy_owners.values()) for loc in self.locals)

    def _build_local(self, A: sparse.csr_matrix, rank: int) -> _LocalSystem:
        rows = self.row_blocks[rank]
        sub = A[rows.start:rows.stop, :].tocsr()
        needed = np.unique(sub.indices)  # columns referenced by local rows
        # Local points are the whole owned block (so x slices align).
        local_ids = np.arange(rows.start, rows.stop, dtype=np.int64)
        proxy_ids = np.array([g for g in needed
                              if not rows.start <= g < rows.stop], dtype=np.int64)
        cols = np.concatenate([local_ids, proxy_ids])
        col_pos = {g: i for i, g in enumerate(cols)}
        coo = sub.tocoo()
        A_local = sparse.csr_matrix(
            (coo.data, (coo.row, [col_pos[g] for g in coo.col])),
            shape=(len(rows), len(cols)))
        proxy_owners: dict[int, np.ndarray] = {}
        for g in proxy_ids:
            proxy_owners.setdefault(int(self.owner_of[g]), []).append(int(g))
        proxy_owners = {o: np.array(sorted(v), dtype=np.int64)
                        for o, v in proxy_owners.items()}
        return _LocalSystem(rows=rows, A_local=A_local, local_to_global=cols,
                            proxy_owners=proxy_owners, serve={})

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, cluster: SimCluster | None = None) -> np.ndarray:
        """Distributed ``A @ x`` (driver entry point, mostly for tests).

        Runs one SPMD matvec on a fresh cluster; iterative solvers use
        :meth:`spmd_matvec` inside their own rank functions to avoid
        respawning threads every iteration.
        """
        x = np.asarray(x, dtype=np.float64)

        def main(comm):
            xl = x[self.row_blocks[comm.rank].start:self.row_blocks[comm.rank].stop]
            return self.spmd_matvec(comm, xl.copy())

        cl = cluster if cluster is not None else SimCluster(self.n_ranks)
        parts = cl.run(main)
        return np.concatenate(parts)

    def spmd_matvec(self, comm, x_local: np.ndarray) -> np.ndarray:
        """One rank's side of the distributed matvec.

        ``x_local`` holds the rank's owned elements; proxy elements are
        fetched from their owners, then the local CSR multiply runs.
        """
        loc = self.locals[comm.rank]
        rows = loc.rows
        # Serve peers first (non-blocking), then collect proxies.
        for peer in sorted(loc.serve):
            ids = loc.serve[peer]
            comm.Isend(np.ascontiguousarray(x_local[ids - rows.start]),
                       dest=peer, tag=40)
        proxy_vals: dict[int, np.ndarray] = {}
        for owner in sorted(loc.proxy_owners):
            proxy_vals[owner] = comm.Recv(source=owner, tag=40)
        # Assemble the Fig-15 local vector: [owned | proxies].
        n_local = rows.stop - rows.start
        x_ext = np.empty(loc.A_local.shape[1], dtype=np.float64)
        x_ext[:n_local] = x_local
        pos = n_local
        # proxy ids were concatenated in the order of local_to_global.
        proxy_order = loc.local_to_global[n_local:]
        by_owner = {o: dict(zip(ids, proxy_vals[o]))
                    for o, ids in loc.proxy_owners.items()}
        for g in proxy_order:
            x_ext[pos] = by_owner[int(self.owner_of[g])][g]
            pos += 1
        return loc.A_local @ x_ext

    # -- convenience -------------------------------------------------------
    def local_x(self, x: np.ndarray, rank: int) -> np.ndarray:
        """Slice the owned part of a global vector."""
        r = self.row_blocks[rank]
        return np.asarray(x[r.start:r.stop], dtype=np.float64)

    def communication_ratio(self) -> float:
        """Proxy elements exchanged per local element per matvec —
        the O(1/N) of Sec 6."""
        return self.total_proxy_elements / self.n
