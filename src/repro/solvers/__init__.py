"""Other computations on the GPU cluster (Sec 6).

The paper argues the GPU cluster generalises beyond LBM and sketches
how; this package implements those sketches on the same substrates:

* :mod:`repro.solvers.ca` — cellular automata ("we expect that the GPU
  cluster computing can be applied to the entire class of explicit
  methods on structured grids and cellular automata as well"):
  Game-of-Life / majority / Greenberg-Hastings rules, decomposed over
  :class:`~repro.net.SimCluster` ranks with halo exchange.
* :mod:`repro.solvers.heat` — explicit finite differences on a
  structured grid with the proxy-point decomposition of Fig 14.
* :mod:`repro.solvers.sparse` — the local-matrix / local-vector
  decomposition of Fig 15 for distributed sparse matrix-vector
  products (proxy vector elements updated over the network each
  iteration).
* :mod:`repro.solvers.krylov` — Conjugate Gradient (Krueger &
  Westermann / Bolz et al. style), Jacobi, and red-black Gauss-Seidel
  running on the distributed matvec.
* :mod:`repro.solvers.unstructured` — explicit methods on unstructured
  grids via *indirection textures* on the simulated GPU ("accessing
  neighbor variables will require two texture fetch operations").
"""

from repro.solvers.ca import DistributedCA, life_rule, majority_rule, greenberg_hastings_rule
from repro.solvers.heat import DistributedHeat2D
from repro.solvers.sparse import DistributedCSR, partition_rows
from repro.solvers.krylov import conjugate_gradient, jacobi, red_black_gauss_seidel
from repro.solvers.unstructured import IndirectionTextureGrid, build_disk_mesh
from repro.solvers.wave import DistributedWave2D

__all__ = [
    "DistributedCA", "life_rule", "majority_rule", "greenberg_hastings_rule",
    "DistributedHeat2D", "DistributedWave2D",
    "DistributedCSR", "partition_rows",
    "conjugate_gradient", "jacobi", "red_black_gauss_seidel",
    "IndirectionTextureGrid", "build_disk_mesh",
]
