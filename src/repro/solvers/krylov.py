"""Distributed iterative solvers for ``A x = y`` (Sec 6).

"Krueger and Westermann [16] and Bolz et al. [3] have implemented
iterative methods for solving sparse linear systems such as conjugate
gradient and Gauss-Seidel on the GPU.  To scale their approach to the
GPU cluster ... the matrix and vector need to be decomposed so that
matrix vector multiplies can be executed in parallel."

All three solvers run SPMD over :class:`~repro.net.SimCluster` with
the Fig-15 distributed matvec of :class:`DistributedCSR`; dot products
use ``allreduce``.  Gauss-Seidel is the red-black (two-colour) variant
— the form that parallelizes, and the one used on GPUs.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.net.simmpi import SimCluster
from repro.solvers.sparse import DistributedCSR


def conjugate_gradient(dist: DistributedCSR, y: np.ndarray,
                       tol: float = 1e-8, maxiter: int = 500,
                       cluster: SimCluster | None = None
                       ) -> tuple[np.ndarray, int]:
    """Distributed CG for s.p.d. systems; returns (x, iterations)."""
    y = np.asarray(y, dtype=np.float64)

    def main(comm):
        yl = dist.local_x(y, comm.rank)
        xl = np.zeros_like(yl)
        rl = yl.copy()
        pl = rl.copy()
        rs = comm.allreduce(float(rl @ rl))
        it = 0
        for it in range(1, maxiter + 1):
            Ap = dist.spmd_matvec(comm, pl)
            pAp = comm.allreduce(float(pl @ Ap))
            if pAp <= 0:
                break
            alpha = rs / pAp
            xl += alpha * pl
            rl -= alpha * Ap
            rs_new = comm.allreduce(float(rl @ rl))
            if np.sqrt(rs_new) < tol:
                rs = rs_new
                break
            pl = rl + (rs_new / rs) * pl
            rs = rs_new
        return xl, it

    cl = cluster if cluster is not None else SimCluster(dist.n_ranks)
    parts = cl.run(main)
    x = np.concatenate([p[0] for p in parts])
    return x, parts[0][1]


def jacobi(dist: DistributedCSR, y: np.ndarray, diag: np.ndarray,
           tol: float = 1e-8, maxiter: int = 2000,
           cluster: SimCluster | None = None) -> tuple[np.ndarray, int]:
    """Distributed Jacobi iteration; ``diag`` is A's diagonal."""
    y = np.asarray(y, dtype=np.float64)
    diag = np.asarray(diag, dtype=np.float64)
    if (diag == 0).any():
        raise ValueError("Jacobi requires a nonzero diagonal")

    def main(comm):
        r = dist.row_blocks[comm.rank]
        yl = dist.local_x(y, comm.rank)
        dl = diag[r.start:r.stop]
        xl = np.zeros_like(yl)
        it = 0
        for it in range(1, maxiter + 1):
            Ax = dist.spmd_matvec(comm, xl)
            resid = yl - Ax
            rn = np.sqrt(comm.allreduce(float(resid @ resid)))
            if rn < tol:
                break
            xl = xl + resid / dl
        return xl, it

    cl = cluster if cluster is not None else SimCluster(dist.n_ranks)
    parts = cl.run(main)
    return np.concatenate([p[0] for p in parts]), parts[0][1]


def red_black_gauss_seidel(A, y: np.ndarray, color: np.ndarray,
                           n_ranks: int = 1, tol: float = 1e-8,
                           maxiter: int = 2000,
                           cluster: SimCluster | None = None
                           ) -> tuple[np.ndarray, int]:
    """Red-black Gauss-Seidel with a distributed matvec per colour.

    ``color`` is a 0/1 vector (a proper 2-colouring of A's graph, e.g.
    the checkerboard of a 5-point Laplacian): within one colour the
    updates are independent, which is what makes Gauss-Seidel run on
    data-parallel hardware.
    """
    A = sparse.csr_matrix(A)
    y = np.asarray(y, dtype=np.float64)
    color = np.asarray(color)
    diag = A.diagonal()
    if (diag == 0).any():
        raise ValueError("Gauss-Seidel requires a nonzero diagonal")
    off = A - sparse.diags(diag)
    dist = DistributedCSR(off, n_ranks)
    red = np.flatnonzero(color == 0)
    black = np.flatnonzero(color == 1)

    def main(comm):
        r = dist.row_blocks[comm.rank]
        sl = slice(r.start, r.stop)
        yl = y[sl]
        dl = diag[sl]
        xl = np.zeros_like(yl)
        local_red = red[(red >= r.start) & (red < r.stop)] - r.start
        local_black = black[(black >= r.start) & (black < r.stop)] - r.start
        it = 0
        for it in range(1, maxiter + 1):
            for group in (local_red, local_black):
                offx = dist.spmd_matvec(comm, xl)
                xl[group] = (yl[group] - offx[group]) / dl[group]
            # Convergence check on the true residual.
            offx = dist.spmd_matvec(comm, xl)
            resid = yl - (offx + dl * xl)
            rn = np.sqrt(comm.allreduce(float(resid @ resid)))
            if rn < tol:
                break
        return xl, it

    cl = cluster if cluster is not None else SimCluster(n_ranks)
    parts = cl.run(main)
    return np.concatenate([p[0] for p in parts]), parts[0][1]


def poisson_2d(n: int) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Standard 5-point 2D Poisson matrix on an n x n grid plus its
    checkerboard colouring — the canonical test system."""
    main = 4.0 * np.ones(n * n)
    side = -np.ones(n * n - 1)
    side[np.arange(1, n * n) % n == 0] = 0.0
    updown = -np.ones(n * n - n)
    A = sparse.diags([main, side, side, updown, updown],
                     [0, 1, -1, n, -n], format="csr")
    ij = np.arange(n * n)
    color = ((ij // n) + (ij % n)) % 2
    return A, color
