"""Streamline extraction (Fig 12).

"Figure 12 shows the velocity field visualized with streamlines ...
The blue color streamlines indicates that the direction of velocity is
approximately horizontal, while the white color indicates a vertical
component in the velocity as the flow passes over the buildings."

Streamlines are integrated through the (trilinear-interpolated)
velocity field with RK2 (midpoint) steps; each sample carries the
vertical-velocity fraction the paper maps to color.
"""

from __future__ import annotations

import numpy as np


def _trilinear(u: np.ndarray, pos: np.ndarray) -> np.ndarray:
    """Trilinear sample of a (3, nx, ny, nz) field at fractional pos."""
    shape = np.array(u.shape[1:])
    p = np.clip(pos, 0.0, shape - 1.001)
    i0 = p.astype(np.int64)
    frac = p - i0
    i1 = np.minimum(i0 + 1, shape - 1)
    out = np.zeros(3)
    for dx, wx in ((0, 1 - frac[0]), (1, frac[0])):
        for dy, wy in ((0, 1 - frac[1]), (1, frac[1])):
            for dz, wz in ((0, 1 - frac[2]), (1, frac[2])):
                idx = (i0[0] if dx == 0 else i1[0],
                       i0[1] if dy == 0 else i1[1],
                       i0[2] if dz == 0 else i1[2])
                out += wx * wy * wz * u[:, idx[0], idx[1], idx[2]]
    return out


def trace_streamline(u: np.ndarray, seed, n_steps: int = 200,
                     h: float = 0.5, solid: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Integrate one streamline with RK2.

    Returns (points (k, 3), vertical_fraction (k,)) where the fraction
    |u_z| / |u| is the paper's blue-to-white color coordinate.
    Integration stops at near-zero velocity, domain exit, or inside a
    building.
    """
    u = np.asarray(u)
    shape = np.array(u.shape[1:])
    pos = np.asarray(seed, dtype=np.float64).copy()
    pts, vert = [], []
    for _ in range(n_steps):
        if (pos < 0).any() or (pos > shape - 1).any():
            break
        cell = tuple(np.clip(pos.astype(np.int64), 0, shape - 1))
        if solid is not None and solid[cell]:
            break
        v = _trilinear(u, pos)
        speed = np.linalg.norm(v)
        if speed < 1e-8:
            break
        pts.append(pos.copy())
        vert.append(abs(v[2]) / speed)
        mid = pos + 0.5 * h * v / speed
        v2 = _trilinear(u, mid)
        s2 = np.linalg.norm(v2)
        if s2 < 1e-8:
            break
        pos = pos + h * v2 / s2
    return np.array(pts).reshape(-1, 3), np.array(vert)


def seed_streamlines(u: np.ndarray, n: int = 20, plane_axis: int = 0,
                     plane_frac: float = 0.9, z_frac: float = 0.3,
                     n_steps: int = 300, solid: np.ndarray | None = None,
                     rng=0) -> list[tuple[np.ndarray, np.ndarray]]:
    """Seed ``n`` streamlines on a plane (paper: near the inflow side;
    'Red points indicate streamline origins')."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    shape = np.array(u.shape[1:])
    lines = []
    for _ in range(n):
        seed = np.array([
            shape[0] * plane_frac,
            rng.uniform(0.05, 0.95) * shape[1],
            rng.uniform(0.5, 1.5) * z_frac * shape[2],
        ])
        seed[plane_axis] = shape[plane_axis] * plane_frac
        pts, vert = trace_streamline(u, seed, n_steps=n_steps, solid=solid)
        if len(pts) > 3:
            lines.append((pts, vert))
    return lines
