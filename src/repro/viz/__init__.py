"""Visualization of simulation results (Figs 12-13 analogues).

The paper renders its results off-line: streamlines colored by the
vertical velocity component (Fig 12) and volume-rendered contaminant
density (Fig 13).  This package produces the same artifacts with pure
numpy — streamline integration through the velocity field, and
emission-absorption / maximum-intensity volume splatting written as
portable PPM/PGM images (no plotting dependencies).
"""

from repro.viz.streamlines import trace_streamline, seed_streamlines
from repro.viz.volume import (
    max_intensity_projection,
    emission_absorption,
    write_pgm,
    write_ppm,
)

__all__ = [
    "trace_streamline", "seed_streamlines",
    "max_intensity_projection", "emission_absorption",
    "write_pgm", "write_ppm",
]
