"""On-line visualization by image compositing — the Sec 5 future work.

"A potential advantage of the GPU cluster is that the on-line
visualization is feasible and efficient.  Since the simulation results
already reside in the GPUs, each node could rapidly render its
contents, and the images could then be transferred through a specially
designed composing network to form the final image.  HP is already
developing new technology for its Sepia PCI cards, that can read out
data from the GPU through the DVI port and transfer them at a rate of
450-500 MB/second in its composing network."

Two halves, mirroring the repo's real-data/modeled-time split:

* **real compositing math** — each node renders its sub-volume slab to
  an (emission, transmittance) image pair; slabs combine front-to-back
  with the associative *over* operator, so the distributed result is
  *exactly* the single-volume rendering (tested);
* **a Sepia network model** — binary-swap compositing over the
  dedicated 450-500 MB/s ring, answering whether online visualization
  keeps up with the 0.31 s/step simulation (it does, comfortably).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Sec 5: Sepia-2A composing network, "450-500 MB/second".
SEPIA_BYTES_PER_S = 475e6
#: DVI readout of a rendered frame (same channel).
DVI_BYTES_PER_S = 475e6
#: Per-stage fixed cost of the compositing pipeline (frame sync).
SEPIA_STAGE_OVERHEAD_S = 0.4e-3


def render_slab(density: np.ndarray, axis: int = 0, absorption: float = 0.1
                ) -> tuple[np.ndarray, np.ndarray]:
    """Render one sub-volume slab to an (emission, transmittance) pair.

    Front-to-back emission-absorption along ``axis`` (front = low
    index).  Returns per-pixel accumulated emission C and remaining
    transmittance T; slabs compose with :func:`composite_pair`.
    """
    if density.ndim != 3:
        raise ValueError("density must be 3D")
    v = np.moveaxis(np.clip(density, 0.0, None), axis, 0)
    C = np.zeros(v.shape[1:], dtype=np.float64)
    T = np.ones(v.shape[1:], dtype=np.float64)
    for slab in v:
        alpha = 1.0 - np.exp(-absorption * slab)
        C += T * alpha * slab
        T *= (1.0 - alpha)
    return C, T


def composite_pair(front: tuple[np.ndarray, np.ndarray],
                   back: tuple[np.ndarray, np.ndarray]
                   ) -> tuple[np.ndarray, np.ndarray]:
    """The associative front-to-back *over* operator on (C, T) pairs."""
    Cf, Tf = front
    Cb, Tb = back
    return Cf + Tf * Cb, Tf * Tb


def composite_chain(pairs) -> tuple[np.ndarray, np.ndarray]:
    """Compose slabs ordered front to back."""
    pairs = list(pairs)
    if not pairs:
        raise ValueError("nothing to composite")
    out = pairs[0]
    for p in pairs[1:]:
        out = composite_pair(out, p)
    return out


def distributed_volume_render(density: np.ndarray, n_nodes: int,
                              axis: int = 0, absorption: float = 0.1
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Split the volume into per-node slabs, render each independently,
    and composite — the online-visualization data path."""
    n = density.shape[axis]
    if n % n_nodes:
        raise ValueError(f"axis extent {n} not divisible by {n_nodes}")
    w = n // n_nodes
    pairs = []
    for k in range(n_nodes):
        idx = [slice(None)] * 3
        idx[axis] = slice(k * w, (k + 1) * w)
        pairs.append(render_slab(density[tuple(idx)], axis=axis,
                                 absorption=absorption))
    return composite_chain(pairs)


# ---------------------------------------------------------------------------
# Sepia timing model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompositingTiming:
    """Per-frame cost decomposition of the online pipeline."""

    nodes: int
    image_bytes: int
    render_s: float
    readout_s: float
    composite_s: float

    @property
    def frame_s(self) -> float:
        return self.render_s + self.readout_s + self.composite_s

    @property
    def fps(self) -> float:
        return 1.0 / self.frame_s


def binary_swap_time(nodes: int, image_bytes: int) -> float:
    """Binary-swap compositing: log2(n) stages, each exchanging half of
    the previous image portion, then a final gather of 1/n images."""
    if nodes < 2:
        return 0.0
    stages = int(np.ceil(np.log2(nodes)))
    t = 0.0
    portion = image_bytes / 2.0
    for _ in range(stages):
        t += SEPIA_STAGE_OVERHEAD_S + portion / SEPIA_BYTES_PER_S
        portion /= 2.0
    # Final gather of n tiles of size image/n to the display node.
    t += SEPIA_STAGE_OVERHEAD_S + image_bytes / SEPIA_BYTES_PER_S
    return t


def online_visualization_timing(nodes: int = 30,
                                image_shape: tuple[int, int] = (640, 480),
                                samples_per_pixel: int = 80) -> CompositingTiming:
    """Frame-time estimate for rendering + Sepia compositing.

    Rendering is modeled as one fragment pass over the image with one
    texture fetch per volume sample (the per-node slab depth); readout
    via the DVI port; compositing via binary swap.
    """
    from repro.gpu.device import SimulatedGPU
    from repro.gpu.fragment import FragmentProgram

    image_bytes = image_shape[0] * image_shape[1] * 4 * 4  # RGBA float32
    dev = SimulatedGPU(enforce_memory=False)
    prog = FragmentProgram("volume-render", kernel=None,
                           alu_ops=2 * samples_per_pixel,
                           tex_fetches=samples_per_pixel)
    render_s = dev.pass_time_s(prog, image_shape[0] * image_shape[1])
    readout_s = image_bytes / DVI_BYTES_PER_S
    composite_s = binary_swap_time(nodes, image_bytes)
    return CompositingTiming(nodes=nodes, image_bytes=image_bytes,
                             render_s=render_s, readout_s=readout_s,
                             composite_s=composite_s)
