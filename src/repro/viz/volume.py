"""Volume rendering of the contaminant density (Fig 13).

"Figure 13 shows the dispersion simulation snapshot with volume
rendering of the contaminant density."

Two classic compositing modes over an axis-aligned view direction
(pure numpy — the 2004 cluster used VolumePro hardware for this, which
we happily replace with einsum):

* :func:`max_intensity_projection` — MIP;
* :func:`emission_absorption` — front-to-back alpha compositing.

Images are written as binary PGM/PPM, viewable everywhere without
adding a plotting dependency.
"""

from __future__ import annotations

import numpy as np


def max_intensity_projection(vol: np.ndarray, axis: int = 2) -> np.ndarray:
    """Maximum-intensity projection along ``axis``."""
    if vol.ndim != 3:
        raise ValueError("volume must be 3D")
    return vol.max(axis=axis)


def emission_absorption(vol: np.ndarray, axis: int = 2, absorption: float = 0.1,
                        flip: bool = False) -> np.ndarray:
    """Front-to-back emission-absorption compositing.

    ``vol`` is treated as emission density; per-slab opacity is
    ``1 - exp(-absorption * value)``.
    """
    if vol.ndim != 3:
        raise ValueError("volume must be 3D")
    v = np.moveaxis(vol, axis, 0)
    if flip:
        v = v[::-1]
    acc = np.zeros(v.shape[1:], dtype=np.float64)
    transmittance = np.ones(v.shape[1:], dtype=np.float64)
    for slab in v:
        alpha = 1.0 - np.exp(-absorption * np.clip(slab, 0.0, None))
        acc += transmittance * alpha * slab
        transmittance *= (1.0 - alpha)
        if (transmittance < 1e-4).all():
            break
    return acc


def _normalize(img: np.ndarray) -> np.ndarray:
    lo, hi = float(img.min()), float(img.max())
    if hi <= lo:
        return np.zeros_like(img, dtype=np.uint8)
    return ((img - lo) / (hi - lo) * 255.0).astype(np.uint8)


def write_pgm(path: str, img: np.ndarray) -> None:
    """Write a grayscale image (any float range) as binary PGM."""
    data = _normalize(np.asarray(img, dtype=np.float64))
    with open(path, "wb") as fh:
        fh.write(f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode())
        fh.write(data.tobytes())


def write_ppm(path: str, rgb: np.ndarray) -> None:
    """Write an (h, w, 3) image (floats in [0,1] or uint8) as binary PPM."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError("rgb must be (h, w, 3)")
    if rgb.dtype != np.uint8:
        rgb = (np.clip(rgb, 0.0, 1.0) * 255.0).astype(np.uint8)
    with open(path, "wb") as fh:
        fh.write(f"P6\n{rgb.shape[1]} {rgb.shape[0]}\n255\n".encode())
        fh.write(rgb.tobytes())


def colorize_vertical(vert: float) -> tuple[float, float, float]:
    """The paper's streamline color map: blue (horizontal flow) to
    white (strong vertical component)."""
    v = float(np.clip(vert, 0.0, 1.0))
    return (v, v, 1.0)
