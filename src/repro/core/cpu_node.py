"""One cluster node's CPU sub-domain — the paper's baseline (Sec 4.4).

The CPU implementation runs the same decomposed LBM in software on one
Xeon thread per node, with "the network communication time ...
overlapped with the computation by using a second thread": its overlap
window is the whole compute time, which is why Table 1's CPU column
shows computation only.

The numerics reuse the reference :class:`~repro.lbm.LBMSolver` (same
ghost-padded layout), so the CPU and GPU cluster paths are checked
against each other and against the single-domain solver.
"""

from __future__ import annotations

import time

import numpy as np

from repro.lbm.solver import LBMSolver
from repro.gpu.specs import XEON_2_4, CPUSpec
from repro.perf import calibration as cal


class CPUNode:
    """One sub-domain computed in software on a host CPU.

    Parameters mirror :class:`~repro.core.gpu_node.GPUNode`; see there.
    """

    def __init__(self, rank: int, sub_shape, tau: float, solid=None,
                 face_dirs=(), edge_dirs=(), timing_only: bool = False,
                 cpu_spec: CPUSpec = XEON_2_4, inlet=None, outflow=None,
                 force=None, use_sse: bool = False, kernel: str = "auto",
                 sparse_threshold: float = 0.5,
                 autotune: str = "heuristic", layout: str = "soa") -> None:
        self.rank = rank
        self.sub_shape = tuple(int(s) for s in sub_shape)
        self.tau = float(tau)
        self.face_dirs = list(face_dirs)
        self.edge_dirs = list(edge_dirs)
        self.timing_only = bool(timing_only)
        self.cpu_spec = cpu_spec
        self.use_sse = bool(use_sse)
        self._boundaries = []
        if timing_only:
            self.solver = None
        else:
            from repro.lbm.boundaries import EquilibriumVelocityInlet, OutflowBoundary
            from repro.lbm.lattice import D3Q19
            bcs = []
            if inlet is not None:
                axis, side, velocity, rho = inlet
                bcs.append(EquilibriumVelocityInlet(D3Q19, axis, side, velocity, rho))
            if outflow is not None:
                bcs.append(OutflowBoundary(D3Q19, *outflow))
            self.solver = LBMSolver(self.sub_shape, tau, solid=solid,
                                    boundaries=bcs, force=force, periodic=False,
                                    kernel=kernel,
                                    sparse_threshold=sparse_threshold,
                                    autotune=autotune, layout=layout)
            # The cluster driver steps this solver phase by phase
            # (collide / exchange / stream), which rules the
            # whole-step-only kernels (fused, AA single-domain stepping)
            # out of ``kernel="auto"`` selection.
            self.solver.phase_driven = True
            if kernel == "aa":
                # Forced AA: the driver owns the halo (forward exchange
                # on even steps, reverse scatter exchange on odd steps),
                # so the kernel may run without a periodic domain.
                from repro.lbm.aa import AAStepKernel
                self.solver.aa_halo_managed = True
                if not AAStepKernel.eligible(self.solver):
                    raise ValueError(
                        "kernel='aa' on a cluster rank requires a plain "
                        "BGK sub-domain whose boundary handlers the "
                        "rotated closure supports (inlet/outflow only)")
        self.compute_s = 0.0
        self.agp_s = 0.0           # always 0: no GPU on this path
        self.overlap_window_s = 0.0
        #: *Measured* wall seconds this rank spent computing during the
        #: last step (vs the modeled ``compute_s``).  Telemetry's
        #: per-rank imbalance gauge reads this; two perf_counter calls
        #: per phase keep it far below kernel cost.
        self.busy_s = 0.0

    # -- kernel report ----------------------------------------------------
    @property
    def solid_fraction(self) -> float:
        """Local solid occupancy (0.0 in timing-only mode)."""
        return 0.0 if self.solver is None else self.solver.solid_fraction

    @property
    def kernel_used(self) -> str:
        """Which hot path this rank's last step ran."""
        if self.solver is None:
            return "model"
        return self.solver.kernel_used or "unstepped"

    @property
    def kernel_reason(self) -> str | None:
        """Why the hot path was selected (heuristic vs measured probe)."""
        return None if self.solver is None else self.solver.kernel_reason

    @property
    def kernel_rates(self) -> dict | None:
        """Measured probe MLUPS per candidate (measured autotune only)."""
        return None if self.solver is None else self.solver.kernel_rates

    @property
    def kernel_layout(self) -> str:
        """Concrete memory layout of this rank's distribution array."""
        return "soa" if self.solver is None else self.solver.layout

    # -- geometry ---------------------------------------------------------
    @property
    def cells(self) -> int:
        return int(np.prod(self.sub_shape))

    def face_cells(self, axis: int) -> int:
        return int(np.prod([s for a, s in enumerate(self.sub_shape) if a != axis]))

    # -- timing model -------------------------------------------------------
    def _model_compute_s(self) -> float:
        ns = self.cpu_spec.lbm_ns_per_cell
        if self.use_sse:
            ns /= self.cpu_spec.sse_speedup
        t = self.cells * ns * 1e-9
        for (axis, _) in self.face_dirs:
            t += (cal.CPU_BORDER_COMPUTE_S_PER_DIR
                  * self.face_cells(axis) / cal.BORDER_COMPUTE_REF_FACE_CELLS)
        for (aa, _, ab, _) in self.edge_dirs:
            other = next(a for a in range(3) if a not in (aa, ab))
            t += cal.CPU_BORDER_COMPUTE_S_PER_DIR * self.sub_shape[other] / 80.0
        return t

    # -- per-step protocol ----------------------------------------------------
    def begin_step(self) -> None:
        self.compute_s = 0.0
        self.agp_s = 0.0
        self.overlap_window_s = 0.0
        self.busy_s = 0.0

    def collide_phase(self) -> None:
        """Collision (software); the second thread overlaps the network
        with the *entire* computation, so the window is set at finish."""
        if not self.timing_only:
            t0 = time.perf_counter()
            self.solver.collide()
            for b in self.solver.boundaries:
                b.pre_stream(self.solver.fg)
            self.busy_s += time.perf_counter() - t0

    # -- split collide (executed overlap protocol) ------------------------
    @property
    def overlap_safe(self) -> bool:
        """Whether the split protocol is bit-identical here.

        A ``pre_stream`` override could snapshot border populations, and
        the split path runs it after the exchange has already read the
        borders — so any boundary with a non-trivial ``pre_stream``
        forces the sequential protocol.
        """
        if self.timing_only:
            return True
        from repro.lbm.boundaries import Boundary
        return all(type(b).pre_stream is Boundary.pre_stream
                   for b in self.solver.boundaries)

    def collide_boundary_phase(self) -> None:
        """Collide the depth-1 shell so borders are exchange-ready."""
        if not self.timing_only:
            t0 = time.perf_counter()
            self.solver.collide_boundary()
            self.busy_s += time.perf_counter() - t0

    def collide_inner_phase(self) -> None:
        """Collide the inner core (runs while the exchange is in flight;
        touches no border or ghost memory)."""
        if not self.timing_only:
            t0 = time.perf_counter()
            self.solver.collide_inner()
            for b in self.solver.boundaries:
                b.pre_stream(self.solver.fg)
            self.busy_s += time.perf_counter() - t0

    # -- ghost-layer plumbing on the padded array ----------------------------
    def _layer_index(self, axis: int, side: str, ghost: bool) -> int:
        if side == "low":
            return 0 if ghost else 1
        return self.sub_shape[axis] + 1 if ghost else self.sub_shape[axis]

    def read_borders(self, axis: int,
                     out: dict[int, np.ndarray] | None = None) -> dict[int, np.ndarray]:
        """Copy both border faces along ``axis``.

        With ``out`` (a ``{-1: buf, 1: buf}`` pair of preallocated face
        arrays) the layers are copied in place, so the per-step halo
        exchange allocates nothing.
        """
        res: dict[int, np.ndarray] = {} if out is None else out
        for direction in (-1, 1):
            side = "low" if direction == -1 else "high"
            idx = self._layer_index(axis, side, ghost=False)
            sl = [slice(None)] * 4
            sl[1 + axis] = idx
            layer = self.solver.fg[tuple(sl)]
            if out is None:
                res[direction] = layer.copy()
            else:
                np.copyto(res[direction], layer)
        return res

    def read_packed(self, manifest, out: np.ndarray) -> np.ndarray:
        """Pack this rank's merged per-neighbor payload into ``out``.

        ``manifest`` is a :class:`~repro.core.halo.NeighborManifest`;
        the source layer (border for the forward modes, ghost shell for
        ``aa_reverse``) and link slots follow from it.  Allocation-free
        given a preallocated ``out``.
        """
        from repro.core.wire import pack_halo
        return pack_halo(self.solver.fg, self.sub_shape, manifest, out)

    def write_packed(self, manifest, buf: np.ndarray) -> None:
        """Unpack a neighbor's merged payload into this rank's shell.

        The sender's side-``s`` segment lands on this rank's side
        ``-s``: the ghost layer for the forward modes, the border layer
        (crossing fold) for ``aa_reverse``.
        """
        from repro.core.wire import unpack_halo
        unpack_halo(self.solver.fg, self.sub_shape, manifest, buf)

    def write_ghost(self, axis: int, direction: int, data: np.ndarray) -> None:
        side = "low" if direction == -1 else "high"
        idx = self._layer_index(axis, side, ghost=True)
        sl = [slice(None)] * 4
        sl[1 + axis] = idx
        self.solver.fg[tuple(sl)] = data

    def read_ghost_planes(self, axis: int,
                          out: dict[int, np.ndarray] | None = None,
                          ) -> dict[int, np.ndarray]:
        """Copy both ghost planes along ``axis`` (AA reverse exchange).

        After an AA odd phase the ghost shell holds post-collision
        populations scattered by border cells; they belong to the
        neighbouring sub-domain and are shipped there instead of being
        received (the mirror image of :meth:`read_borders`).
        """
        res: dict[int, np.ndarray] = {} if out is None else out
        for direction in (-1, 1):
            side = "low" if direction == -1 else "high"
            idx = self._layer_index(axis, side, ghost=True)
            sl = [slice(None)] * 4
            sl[1 + axis] = idx
            layer = self.solver.fg[tuple(sl)]
            if out is None:
                res[direction] = layer.copy()
            else:
                np.copyto(res[direction], layer)
        return res

    def write_border_crossing(self, axis: int, direction: int,
                              data: np.ndarray) -> None:
        """Fold a neighbour's ghost plane onto this rank's border layer.

        Only the link slots that actually cross the shared face
        (``c_i[axis] == -direction`` for the border at side
        ``direction``) are written — the rest of the border layer holds
        this rank's own just-scattered populations and must survive.
        Mirrors :func:`repro.lbm.streaming.fold_ghosts_periodic`.
        """
        slots = self._crossing_slots(axis, direction)
        side = "low" if direction == -1 else "high"
        idx = self._layer_index(axis, side, ghost=False)
        sl: list = [slice(None)] * 4
        sl[0] = slots
        sl[1 + axis] = idx
        self.solver.fg[tuple(sl)] = data[slots]

    def _crossing_slots(self, axis: int, direction: int) -> np.ndarray:
        cache = getattr(self, "_crossing_slot_cache", None)
        if cache is None:
            cache = self._crossing_slot_cache = {}
        key = (axis, direction)
        if key not in cache:
            c = self.solver.lattice.c
            cache[key] = np.flatnonzero(c[:, axis] == -direction)
        return cache[key]

    def fold_border_zero_gradient(self, axis: int, direction: int) -> None:
        """Zero-gradient closure of an AA odd scatter at a true edge.

        On a non-periodic cluster boundary face there is no neighbour
        to ship the outward-pushed crossing populations to; they fold
        back onto the border layer locally, exactly as the
        single-domain AA kernel's ghost fold does on a bounded box.
        """
        from repro.lbm.streaming import fold_face_zero_gradient
        fold_face_zero_gradient(self.solver.lattice, self.solver.fg,
                                axis, direction)

    def fill_ghost_zero_gradient(self, axis: int, direction: int) -> None:
        side = "low" if direction == -1 else "high"
        src = self._layer_index(axis, side, ghost=False)
        dst = self._layer_index(axis, side, ghost=True)
        sl_s = [slice(None)] * 4
        sl_d = [slice(None)] * 4
        sl_s[1 + axis] = src
        sl_d[1 + axis] = dst
        self.solver.fg[tuple(sl_d)] = self.solver.fg[tuple(sl_s)]

    def charge_transfers(self) -> None:
        """No GPU bus on the CPU path; MPI buffers are packed on the
        compute thread (folded into the border compute term)."""
        self.agp_s = 0.0

    def finish_step(self) -> None:
        if not self.timing_only:
            t0 = time.perf_counter()
            self.solver.stream()
            self.solver.post_stream()
            self.solver.time_step += 1
            self.busy_s += time.perf_counter() - t0
        self.compute_s = self._model_compute_s()
        self.overlap_window_s = self.compute_s
