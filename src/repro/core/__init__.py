"""The paper's contribution: parallel LBM on the GPU cluster (Sec 4.3).

* :mod:`repro.core.decomposition` — block decomposition of the lattice
  into per-node 3D sub-domains, with the paper's 2D node arrangements
  (Table 1) and 3D arrangements.
* :mod:`repro.core.halo` — the D3Q19 ghost-exchange plan: 5
  distributions per axial face, 1 per diagonal edge, and the byte
  accounting of Sec 4.3 (``5 N^2`` vs ``N``).
* :mod:`repro.core.schedule` — the contention-aware pairwise
  communication schedule of Fig 7 (2 steps per axis, indirect two-hop
  routing of diagonal traffic) plus the naive direct baseline.
* :mod:`repro.core.gpu_node` / :mod:`repro.core.cpu_node` — one
  sub-domain on a simulated GPU (texture passes, gather-into-one-
  texture readback over AGP) or on a host CPU (reference numpy solver,
  second-thread overlap).
* :mod:`repro.core.cluster_lbm` — the drivers: step the whole cluster,
  produce per-step timing decompositions (compute / GPU-CPU transfer /
  network, overlapped vs non-overlapping) in exactly the shape of
  Table 1, and — in numeric mode — bit-compare against the
  single-domain reference solver.
* :mod:`repro.core.shm` / :mod:`repro.core.procpool` — the
  ``backend="processes"`` execution backend: persistent per-rank
  worker processes whose distribution arrays and halo mailboxes live
  in shared memory (zero-copy exchange, barrier-synchronised steps).
"""

from repro.core.decomposition import BlockDecomposition, arrange_nodes_2d, arrange_nodes_3d
from repro.core.halo import HaloPlan
from repro.core.schedule import CommSchedule, naive_schedule
from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM, GPUClusterLBM, StepTiming
from repro.core.compression import HaloCompressor
from repro.core.procpool import ProcessBackend, run_equivalence_check
from repro.core.shm import leaked_segments
from repro.core.spmd import SPMDClusterLBM
from repro.core.thermal_cluster import DistributedThermalLBM

__all__ = [
    "BlockDecomposition", "arrange_nodes_2d", "arrange_nodes_3d",
    "HaloPlan", "CommSchedule", "naive_schedule",
    "ClusterConfig", "GPUClusterLBM", "CPUClusterLBM", "StepTiming",
    "HaloCompressor", "SPMDClusterLBM", "DistributedThermalLBM",
    "ProcessBackend", "run_equivalence_check", "leaked_segments",
]
