"""Lossless compression of halo traffic — the Sec 4.3 open idea.

"Another idea that we have not yet studied is to employ lossless
compression of transferred data by exploiting space coherence or data
coherence between computation steps."

This module implements and evaluates exactly that:

* **temporal delta prediction** — the border distributions change
  slowly between steps, so transmitting the difference against the
  previous step concentrates the float32 bit patterns (data coherence
  between computation steps).  The difference is taken between the raw
  *bit patterns* (uint32, mod-2^32 wrap), not between float values:
  float subtraction ``(a - p) + p`` is only bit-exact under
  Sterbenz-like conditions, while the integer form round-trips exactly
  for every input — a wire codec must never depend on the data being
  friendly;
* **spatial transposition** — grouping the 4 bytes of each float by
  significance across the face (space coherence) so the entropy coder
  sees long runs of near-identical exponent bytes;
* a **DEFLATE** entropy stage (zlib, the natural 2004-era choice).

:class:`HaloCompressor` is a real codec (compress/decompress round-trip
is exact and tested); :func:`compression_whatif` feeds the *measured*
ratio and the modeled compression CPU cost back into the cluster
timing model to answer the paper's open question — including the catch
that 2004-era DEFLATE throughput can eat the bandwidth it saves.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

#: Modeled single-core DEFLATE throughput on the cluster's Xeon 2.4 GHz
#: (level-1 zlib, ~2004): compression ~40 MB/s, decompression ~120 MB/s.
COMPRESS_BYTES_PER_S = 40e6
DECOMPRESS_BYTES_PER_S = 120e6

#: Wire-format sequence header on delta payloads (little-endian u64).
_SEQ_HEADER_BYTES = 8


class DeltaDesyncError(RuntimeError):
    """Sender/receiver delta histories no longer match.

    Delta mode is stateful: payload ``t`` decodes correctly only
    against the reconstruction of payload ``t-1``.  A dropped,
    duplicated or reordered message would otherwise corrupt every
    subsequent field *silently* — the arithmetic keeps working on the
    wrong base.  Each delta payload therefore carries a per-channel
    sequence number and a mismatch raises this error instead.
    """


def _byte_transpose(raw: bytes) -> bytes:
    """Group float32 bytes by significance position (space coherence)."""
    arr = np.frombuffer(raw, dtype=np.uint8)
    if arr.size % 4:
        return raw
    return arr.reshape(-1, 4).T.tobytes()


def _byte_untranspose(raw: bytes) -> bytes:
    arr = np.frombuffer(raw, dtype=np.uint8)
    if arr.size % 4:
        return raw
    return arr.reshape(4, -1).T.tobytes()


@dataclass
class CompressionStats:
    """Aggregate codec statistics."""

    raw_bytes: int = 0
    compressed_bytes: int = 0
    messages: int = 0

    @property
    def ratio(self) -> float:
        """compressed / raw (smaller is better)."""
        return (self.compressed_bytes / self.raw_bytes
                if self.raw_bytes else 1.0)


class HaloCompressor:
    """Per-channel lossless codec for halo messages.

    Parameters
    ----------
    mode:
        ``"delta"`` (temporal prediction + byte transpose + DEFLATE,
        the full Sec-4.3 idea), ``"plain"`` (transpose + DEFLATE only)
        or ``"none"``.
    level:
        zlib level (1 = the 2004-realistic fast setting).
    """

    MODES = ("delta", "plain", "none")

    def __init__(self, mode: str = "delta", level: int = 1) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}")
        self.mode = mode
        self.level = int(level)
        self._previous: dict = {}
        self._tx_seq: dict = {}
        self._rx_seq: dict = {}
        self.stats = CompressionStats()

    def compress(self, key, array: np.ndarray) -> bytes:
        """Encode one halo message; ``key`` identifies the channel
        (sender, axis, side) so temporal deltas track each face."""
        arr = np.ascontiguousarray(array, dtype=np.float32)
        raw = arr.tobytes()
        self.stats.raw_bytes += len(raw)
        self.stats.messages += 1
        if self.mode == "none":
            self.stats.compressed_bytes += len(raw)
            return raw
        if self.mode == "delta":
            prev = self._previous.get(key)
            if prev is not None and prev.shape == arr.shape:
                # Bit-space delta: exact for any floats (incl. inf/NaN).
                payload_arr = arr.view(np.uint32) - prev.view(np.uint32)
            else:
                payload_arr = arr
            self._previous[key] = arr.copy()
            seq = self._tx_seq.get(key, 0)
            self._tx_seq[key] = seq + 1
            header = seq.to_bytes(_SEQ_HEADER_BYTES, "little")
            raw_payload = payload_arr.tobytes()
            out = header + zlib.compress(_byte_transpose(raw_payload),
                                         self.level)
        else:
            out = zlib.compress(_byte_transpose(raw), self.level)
        self.stats.compressed_bytes += len(out)
        return out

    def decompress(self, key, payload: bytes, shape) -> np.ndarray:
        """Decode one halo message (must mirror the sender's history)."""
        if self.mode == "none":
            return np.frombuffer(payload, dtype=np.float32).reshape(shape).copy()
        if self.mode == "delta":
            seq = int.from_bytes(payload[:_SEQ_HEADER_BYTES], "little")
            expected = self._rx_seq.get(key, 0)
            if seq != expected:
                raise DeltaDesyncError(
                    f"delta channel {key!r}: received sequence {seq}, "
                    f"expected {expected} — a halo message was "
                    "dropped, duplicated or reordered; the decoded "
                    "field would silently diverge")
            self._rx_seq[key] = expected + 1
            payload = payload[_SEQ_HEADER_BYTES:]
        raw = _byte_untranspose(zlib.decompress(payload))
        arr = np.frombuffer(raw, dtype=np.float32).reshape(shape).copy()
        if self.mode == "delta":
            rx_key = ("rx", key)
            prev = self._previous.get(rx_key)
            if prev is not None and prev.shape == arr.shape:
                bits = arr.view(np.uint32) + prev.view(np.uint32)
                arr = bits.view(np.float32)
            self._previous[rx_key] = arr.copy()
        return arr

    def resync(self, key=None) -> None:
        """Recover a delta channel after a :class:`DeltaDesyncError`.

        Drops the temporal-prediction base and re-keys the sequence
        numbers (both directions) so the next payload is a full frame
        with sequence 0 again.  Both endpoints must resync the same
        channel — the protocol's recovery handshake is simply "on
        desync, both sides call ``resync(key)`` and retransmit".  With
        ``key=None`` every channel is reset (a full re-key, e.g. after
        reconnecting a transport).
        """
        if key is None:
            self._previous.clear()
            self._tx_seq.clear()
            self._rx_seq.clear()
            return
        self._previous.pop(key, None)
        self._previous.pop(("rx", key), None)
        self._tx_seq.pop(key, None)
        self._rx_seq.pop(key, None)

    def probe_ratio(self, key, array: np.ndarray) -> float:
        """Measured compressed/raw ratio for this message *without*
        committing channel state.

        Adaptive controllers probe disengaged channels periodically; a
        probe must not advance the delta history or sequence numbers,
        or the next genuinely compressed message would desync the
        receiver (which never saw the probe).
        """
        saved_prev = self._previous.get(key)
        saved_has_prev = key in self._previous
        saved_seq = self._tx_seq.get(key, 0)
        saved_has_seq = key in self._tx_seq
        saved_stats = (self.stats.raw_bytes, self.stats.compressed_bytes,
                       self.stats.messages)
        raw_nbytes = int(np.ascontiguousarray(array, np.float32).nbytes)
        payload = self.compress(key, array)
        if saved_has_prev:
            self._previous[key] = saved_prev
        else:
            self._previous.pop(key, None)
        if saved_has_seq:
            self._tx_seq[key] = saved_seq
        else:
            self._tx_seq.pop(key, None)
        (self.stats.raw_bytes, self.stats.compressed_bytes,
         self.stats.messages) = saved_stats
        return len(payload) / raw_nbytes if raw_nbytes else 1.0

    def cpu_seconds(self, nbytes_raw: int) -> float:
        """Modeled compress+decompress CPU cost for one message."""
        if self.mode == "none":
            return 0.0
        return (nbytes_raw / COMPRESS_BYTES_PER_S
                + nbytes_raw / DECOMPRESS_BYTES_PER_S)

    def compress_seconds(self, nbytes_raw: int) -> float:
        """Modeled sender-side DEFLATE CPU cost for one message."""
        if self.mode == "none":
            return 0.0
        return nbytes_raw / COMPRESS_BYTES_PER_S

    def decompress_seconds(self, nbytes_raw: int) -> float:
        """Modeled receiver-side INFLATE CPU cost for one message."""
        if self.mode == "none":
            return 0.0
        return nbytes_raw / DECOMPRESS_BYTES_PER_S


def measure_flow_halo_ratio(steps: int = 8, sub=(12, 12, 8),
                            mode: str = "delta") -> CompressionStats:
    """Run a real decomposed flow and compress its actual halo traffic.

    Uses the numeric GPU-cluster driver on a small obstacle flow and
    feeds every border layer of every step through the codec, so the
    reported ratio reflects genuine LBM data, not synthetic arrays.
    """
    from repro.core.cluster_lbm import ClusterConfig, GPUClusterLBM

    arrangement = (2, 2, 1)
    shape = tuple(s * a for s, a in zip(sub, arrangement))
    solid = np.zeros(shape, bool)
    solid[shape[0] // 3:shape[0] // 3 + 3, shape[1] // 2:, 1:4] = True
    cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.7,
                        solid=solid, force=(5e-6, 0, 0))
    cluster = GPUClusterLBM(cfg)
    codec = HaloCompressor(mode=mode)
    for _ in range(steps):
        cluster.step(1)
        for rank, node in enumerate(cluster.nodes):
            for axis in range(2):
                for side in ("low", "high"):
                    border = node.solver.get_border_layer(axis, side)
                    payload = codec.compress((rank, axis, side), border)
                    out = codec.decompress((rank, axis, side), payload,
                                           border.shape)
                    if not np.array_equal(out, border):
                        raise AssertionError("codec round-trip failed")
    return codec.stats


def compression_whatif(nodes: int = 32, sub_shape=(80, 80, 80),
                       ratio: float | None = None,
                       mode: str = "delta") -> dict:
    """Answer the paper's open question with the timing model.

    Network payloads shrink by the measured ``ratio``; each node pays
    the modeled DEFLATE CPU cost per face message.  Because the CPU is
    idle while the GPU computes (the same observation that enables
    overlap), the codec cost only matters when it exceeds the leftover
    CPU idle time — we conservatively charge it against the overlap
    window.
    """
    from repro.core.decomposition import BlockDecomposition, arrange_nodes_2d
    from repro.core.halo import HaloPlan
    from repro.core.schedule import CommSchedule
    from repro.net.switch import GigabitSwitch
    from repro.perf.model import cluster_timings

    if ratio is None:
        ratio = measure_flow_halo_ratio(mode=mode).ratio
    arrangement = arrange_nodes_2d(nodes)
    shape = tuple(s * a for s, a in zip(sub_shape, arrangement))
    decomp = BlockDecomposition(shape, arrangement,
                                periodic=(False, False, False))
    plan = HaloPlan(sub_shape)
    schedule = CommSchedule(decomp, plan)
    sw = GigabitSwitch()
    base_rounds = schedule.round_bytes()
    comp_rounds = [[max(64, int(b * ratio)) for b in r] for r in base_rounds]
    net_base = sw.phase_time(base_rounds, nodes)
    net_comp = sw.phase_time(comp_rounds, nodes)
    # Worst node: 4 face messages in/out.
    codec = HaloCompressor(mode=mode)
    cpu_cost = 4 * codec.cpu_seconds(plan.face_bytes(0))
    gpu, cpu = cluster_timings(nodes, sub_shape)
    window = gpu.overlap_window_s - cpu_cost
    nonoverlap_base = max(0.0, net_base - gpu.overlap_window_s)
    nonoverlap_comp = max(0.0, net_comp - max(0.0, window))
    total_base = gpu.compute_s + gpu.agp_s + nonoverlap_base
    total_comp = gpu.compute_s + gpu.agp_s + nonoverlap_comp
    return {
        "nodes": nodes,
        "ratio": ratio,
        "net_base_ms": net_base * 1e3,
        "net_compressed_ms": net_comp * 1e3,
        "codec_cpu_ms": cpu_cost * 1e3,
        "total_base_ms": total_base * 1e3,
        "total_compressed_ms": total_comp * 1e3,
        "worth_it": total_comp < total_base,
    }
