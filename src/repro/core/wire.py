"""Merged per-neighbor halo wire: packing runtime + adaptive codec.

:mod:`repro.core.halo` *describes* the merged wire protocol (one
:class:`~repro.core.halo.NeighborManifest` per neighbor per exchange
phase); this module *executes* it:

* :func:`pack_halo` / :func:`unpack_halo` walk a manifest's index
  table over a rank's padded distribution array, gathering every
  face/edge/rim slot bound for one neighbor into a single contiguous
  float32 buffer (and scattering a received buffer back).  Sender and
  receiver derive the same manifest deterministically, so the wire
  carries no framing — the Sec 4.4 "gather everything for one neighbor
  into one message" optimisation.
* :class:`AdaptiveCompressionController` wires the Sec 4.3
  :class:`~repro.core.compression.HaloCompressor` in *adaptively*: per
  channel it samples the measured compression ratio (state-preserving
  probes) against the modeled link bandwidth, engages
  delta+transpose+DEFLATE only while ``compress + send + decompress <
  send``, and re-probes periodically.  Decisions are surfaced through
  ``comm.*`` counters and the per-message trace metadata.

On a calibrated gigabit link the 2004-era DEFLATE throughput loses to
the wire (the honest answer to the paper's open question), so the
adaptive policy bypasses there; slow links (or ``policy="always"``,
used by the tests) engage it.  Compression is lossless either way, so
every policy stays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.compression import (COMPRESS_BYTES_PER_S,
                                    DECOMPRESS_BYTES_PER_S, HaloCompressor)
from repro.core.halo import NeighborManifest

__all__ = [
    "pack_halo", "unpack_halo", "AdaptiveCompressionController",
    "ChannelState", "run_exchange_check",
]


def _layer_index(sub_shape, axis: int, side: int, ghost: bool) -> int:
    """Padded-array index of one shell layer (mirrors CPUNode)."""
    if side == -1:
        return 0 if ghost else 1
    return sub_shape[axis] + 1 if ghost else sub_shape[axis]


def pack_halo(fg: np.ndarray, sub_shape, manifest: NeighborManifest,
              out: np.ndarray) -> np.ndarray:
    """Gather one neighbor's merged payload from ``fg`` into ``out``.

    The source layer is the *border* for the forward modes and the
    *ghost* shell for ``aa_reverse`` (the odd AA scatter leaves the
    neighbour's populations there).  ``out`` may be any array whose
    flattened size is ``manifest.total_floats``; per-link ``copyto``
    into views keeps the steady state allocation-free.
    """
    buf = out.reshape(-1)
    ghost = manifest.mode == "aa_reverse"
    axis = manifest.axis
    for seg in manifest.segments:
        idx = _layer_index(sub_shape, axis, seg.side, ghost)
        dst = buf[seg.offset:seg.offset + seg.floats].reshape(
            (len(seg.links),) + manifest.plane_shape)
        for j, q in enumerate(seg.links):
            sl: list = [q, slice(None), slice(None), slice(None)]
            sl[1 + axis] = idx
            np.copyto(dst[j], fg[tuple(sl)])
    return out


def unpack_halo(fg: np.ndarray, sub_shape, manifest: NeighborManifest,
                buf: np.ndarray) -> None:
    """Scatter a received merged payload into this rank's shell.

    A segment the sender packed from its side ``s`` lands on this
    rank's side ``-s``: the ghost layer for the forward modes, the
    border layer for ``aa_reverse`` (the crossing fold — only the
    carried link slots are written, the rest of the border holds this
    rank's own scattered populations and must survive).
    """
    flat = buf.reshape(-1)
    ghost = manifest.mode != "aa_reverse"
    axis = manifest.axis
    for seg in manifest.segments:
        idx = _layer_index(sub_shape, axis, -seg.side, ghost)
        src = flat[seg.offset:seg.offset + seg.floats].reshape(
            (len(seg.links),) + manifest.plane_shape)
        for j, q in enumerate(seg.links):
            sl: list = [q, slice(None), slice(None), slice(None)]
            sl[1 + axis] = idx
            fg[tuple(sl)] = src[j]


# -- adaptive compression ------------------------------------------------
@dataclass
class ChannelState:
    """Per-channel controller bookkeeping (one halo direction)."""

    engaged: bool = False
    ratio: float | None = None      # last measured compressed/raw
    since_probe: int = 0
    probes: int = 0
    messages: int = 0
    raw_bytes: int = 0
    wire_bytes: int = 0

    def as_dict(self) -> dict:
        return {"engaged": self.engaged, "ratio": self.ratio,
                "probes": self.probes, "messages": self.messages,
                "raw_bytes": self.raw_bytes, "wire_bytes": self.wire_bytes}


@dataclass
class WirePayload:
    """One encoded halo message: what goes on the wire plus accounting."""

    data: np.ndarray            # float32 (raw) or uint8 (compressed frame)
    raw_bytes: int
    compressed: bool
    compress_s: float = 0.0     # modeled sender-side codec CPU

    @property
    def wire_bytes(self) -> int:
        return int(self.data.nbytes)


class AdaptiveCompressionController:
    """Decide, per halo channel, whether compressing beats raw sends.

    The engage rule compares one message's modeled costs: raw costs
    ``B / bw``; compressed costs ``B / C + ratio * B / bw + B / D``
    (DEFLATE at ``C`` B/s on the sender, the shrunken payload on the
    wire, INFLATE at ``D`` B/s on the receiver).  Compression wins iff
    ``ratio < 1 - bw / C - bw / D`` — on fast links the codec can never
    pay for itself no matter how well it compresses, which the
    controller discovers without burning more than the probe budget.

    Parameters
    ----------
    policy:
        ``"adaptive"`` (probe and decide, the default), ``"always"``
        (force the codec on every message — tests and what-if runs), or
        ``"off"`` (pure pass-through).
    bandwidth_bytes_per_s:
        Modeled (or traced) link bandwidth the decision is priced
        against; default: the calibrated gigabit effective bandwidth.
    probe_interval:
        Messages between ratio re-probes on a bypassed channel — data
        coherence drifts as the flow evolves, so decisions are
        revisited.
    counters:
        Optional :class:`~repro.perf.counters.KernelCounters`; decisions
        and byte totals are recorded under ``comm.*`` metric names.
    """

    POLICIES = ("adaptive", "always", "off")

    def __init__(self, mode: str = "delta", level: int = 1,
                 policy: str = "adaptive",
                 bandwidth_bytes_per_s: float | None = None,
                 probe_interval: int = 64,
                 counters=None) -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}, "
                             f"got {policy!r}")
        if bandwidth_bytes_per_s is None:
            from repro.perf import calibration as cal
            bandwidth_bytes_per_s = cal.NET_EFFECTIVE_BYTES_PER_S
        self.codec = HaloCompressor(mode=mode, level=level)
        self.policy = policy
        self.bandwidth = float(bandwidth_bytes_per_s)
        self.probe_interval = int(probe_interval)
        self.counters = counters
        self.channels: dict = {}

    def worth_it(self, ratio: float) -> bool:
        """The engage rule: ``compress + send + decompress < send``."""
        bw = self.bandwidth
        return ratio < 1.0 - bw / COMPRESS_BYTES_PER_S \
            - bw / DECOMPRESS_BYTES_PER_S

    def _metric(self, name: str, value: float, calls: int = 1) -> None:
        if self.counters is not None:
            self.counters.metric(name, value, calls=calls)

    def encode(self, key, array: np.ndarray) -> WirePayload:
        """Encode one outbound halo message for channel ``key``.

        Returns the wire payload: a uint8 DEFLATE frame when the
        channel is engaged, the float32 array itself otherwise.  The
        codec's delta history only advances for messages actually
        shipped compressed (probes are state-preserving), so the
        receiver's mirrored state never desyncs across engage/bypass
        flips.
        """
        arr = np.ascontiguousarray(array, dtype=np.float32)
        st = self.channels.get(key)
        if st is None:
            st = self.channels[key] = ChannelState(
                engaged=self.policy == "always")
        st.messages += 1
        st.raw_bytes += arr.nbytes
        if self.policy == "off":
            st.wire_bytes += arr.nbytes
            self._metric("comm.bytes_raw", arr.nbytes)
            self._metric("comm.bytes_wire", arr.nbytes)
            return WirePayload(arr, arr.nbytes, False)
        if self.policy == "adaptive" and not st.engaged:
            st.since_probe += 1
            if st.ratio is None or st.since_probe >= self.probe_interval:
                st.ratio = self.codec.probe_ratio(key, arr)
                st.probes += 1
                st.since_probe = 0
                st.engaged = self.worth_it(st.ratio)
                self._metric("comm.compress.probes", 1)
        if st.engaged:
            payload = self.codec.compress(key, arr)
            st.ratio = len(payload) / arr.nbytes if arr.nbytes else 1.0
            if self.policy == "adaptive" and not self.worth_it(st.ratio):
                # Ratio drifted below break-even: bypass from the next
                # message on (this one ships compressed — the receiver's
                # delta history already advanced).
                st.engaged = False
                st.since_probe = 0
            frame = np.frombuffer(payload, dtype=np.uint8)
            st.wire_bytes += frame.nbytes
            self._metric("comm.bytes_raw", arr.nbytes)
            self._metric("comm.bytes_wire", frame.nbytes)
            self._metric("comm.compress.engaged", 1)
            self._metric("comm.compress.saved_bytes",
                         arr.nbytes - frame.nbytes)
            return WirePayload(frame, arr.nbytes, True,
                               compress_s=self.codec.compress_seconds(
                                   arr.nbytes))
        st.wire_bytes += arr.nbytes
        self._metric("comm.bytes_raw", arr.nbytes)
        self._metric("comm.bytes_wire", arr.nbytes)
        self._metric("comm.compress.bypass", 1)
        return WirePayload(arr, arr.nbytes, False)

    def decode(self, key, payload: np.ndarray, shape) -> np.ndarray:
        """Decode one inbound message (dtype discriminates the format).

        Raw sends arrive as float32 and pass through; compressed frames
        arrive as uint8 (the configuration is shared, so no wire
        framing is needed — the dtype *is* the discriminator).
        """
        if payload.dtype == np.uint8:
            return self.codec.decompress(key, payload.tobytes(), shape)
        return payload.reshape(shape)

    def decompress_seconds(self, raw_nbytes: int) -> float:
        """Modeled receiver-side codec CPU for one compressed message."""
        return self.codec.decompress_seconds(raw_nbytes)

    def resync(self, key=None) -> None:
        """Recover channel(s) after a delta desync (drop to raw, re-key)."""
        self.codec.resync(key)
        if key is None:
            for st in self.channels.values():
                st.engaged = self.policy == "always"
                st.ratio = None
                st.since_probe = 0
        else:
            st = self.channels.get(key)
            if st is not None:
                st.engaged = self.policy == "always"
                st.ratio = None
                st.since_probe = 0

    def decisions(self) -> dict:
        """Per-channel decision snapshot (for reports / span metadata)."""
        return {key: st.as_dict() for key, st in sorted(
            self.channels.items(), key=lambda kv: repr(kv[0]))}

    def summary(self) -> dict:
        """Aggregate wire statistics across all channels."""
        raw = sum(st.raw_bytes for st in self.channels.values())
        wire = sum(st.wire_bytes for st in self.channels.values())
        return {
            "policy": self.policy,
            "channels": len(self.channels),
            "engaged_channels": sum(
                1 for st in self.channels.values() if st.engaged),
            "messages": sum(st.messages for st in self.channels.values()),
            "probes": sum(st.probes for st in self.channels.values()),
            "raw_bytes": raw,
            "wire_bytes": wire,
            "ratio": wire / raw if raw else 1.0,
        }


# -- the check-exchange gate ---------------------------------------------
def _expected_wire_counts(decomp) -> tuple[int, int]:
    """(merged, perface) messages per step the decomposition implies.

    Merged: one message per distinct neighbor per axis phase (a
    periodic extent-2 axis has one both-sides message, self-wraps and
    zero-gradient edges are local).  Per-face: one message per face
    direction that has a peer.
    """
    merged = perface = 0
    for rank in range(decomp.n_nodes):
        for axis in range(3):
            lo = decomp.neighbor(rank, axis, -1)
            hi = decomp.neighbor(rank, axis, 1)
            if lo is not None and lo == hi:
                merged += 1
            else:
                merged += sum(1 for p in (lo, hi) if p is not None)
            perface += sum(1 for p in (lo, hi) if p is not None)
    return merged, perface


def run_exchange_check(sub_shape=(6, 6, 4), arrangement=(2, 2, 1),
                       steps: int = 4) -> dict:
    """End-to-end merged-wire gate (``python -m repro check-exchange``).

    * **Equivalence sweep**: the merged wire is bit-identical to the
      single-domain reference on the serial, threads and processes
      backends, with compression off *and* forced on, and the legacy
      per-face wire still matches too;
    * **AA protocol**: the merged forward/reverse exchange of the
      AA-pattern kernel reproduces the reference bits on the serial
      and processes backends, on the periodic torus *and* on a bounded
      box (true domain edges fill/fold locally instead of messaging);
    * **Message counts**: the executed SPMD/SimMPI program sends
      exactly one message per neighbor per exchange phase — asserted
      per ordered (src, dst, tag) channel from the per-message trace
      events — and strictly fewer envelopes than the per-face wire at
      identical numerics;
    * **Desync recovery**: a dropped compressed message raises
      :class:`~repro.core.compression.DeltaDesyncError` instead of
      silently corrupting the field, and a both-ends ``resync()``
      restores exact round-trips.

    Returns a report dict; raises ``AssertionError`` on any violation.
    """
    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
    from repro.core.compression import DeltaDesyncError
    from repro.core.decomposition import BlockDecomposition
    from repro.core.spmd import SPMDClusterLBM
    from repro.lbm.solver import LBMSolver
    from repro.net.simmpi import SimCluster
    from repro.perf.trace import Tracer

    steps += steps % 2  # the AA pair cadence needs an even count
    shape = tuple(s * a for s, a in zip(sub_shape, arrangement))
    rng = np.random.default_rng(17)
    ref = LBMSolver(shape, tau=0.7)
    ref.initialize(rho=np.ones(shape, np.float32),
                   u=(0.02 * rng.standard_normal((3,) + shape)
                      ).astype(np.float32))
    f0 = ref.f.copy()
    ref.step(steps)
    ref_f = ref.f.copy()

    report: dict = {"steps": steps, "variants": {}}

    # 1. Equivalence sweep: every backend/wire/compression combination
    #    must reproduce the single-domain bits exactly.
    variants = (
        ("serial", "merged", "off"),
        ("serial", "perface", "off"),
        ("serial", "merged", "always"),
        ("threads", "merged", "off"),
        ("processes", "merged", "off"),
    )
    for backend, wire, compression in variants:
        cfg = ClusterConfig(sub_shape=sub_shape, arrangement=arrangement,
                            tau=0.7, backend=backend, wire=wire,
                            compression=compression,
                            max_workers=2 if backend == "threads" else 1)
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(steps)
            got = cluster.gather_distributions()
            stats = {k: v for k, v in cluster.counters.summary().items()
                     if k.startswith("comm.")}
        label = f"{backend}/{wire}/{compression}"
        if not np.array_equal(got, ref_f):
            raise AssertionError(
                f"{label}: merged-wire exchange diverged from the "
                f"single-domain reference")
        report["variants"][label] = {"bit_identical": True,
                                     "comm": stats}

    # 2. AA-pattern forward/reverse exchange under merging — on the
    #    periodic torus and on a bounded box, where true domain edges
    #    take the local zero-gradient fill/fold instead of a message.
    ref_b = LBMSolver(shape, tau=0.7, periodic=False)
    ref_b.initialize(rho=np.ones(shape, np.float32))
    ref_b.f[...] = f0
    f0_b = ref_b.f.copy()
    ref_b.step(steps)
    ref_b_f = ref_b.f.copy()
    aa_cases = {"periodic": ((True,) * 3, f0, ref_f),
                "bounded": ((False,) * 3, f0_b, ref_b_f)}
    for case, (periodic, start, want) in aa_cases.items():
        for backend in ("serial", "processes"):
            cfg = ClusterConfig(sub_shape=sub_shape,
                                arrangement=arrangement,
                                tau=0.7, backend=backend, kernel="aa",
                                periodic=periodic)
            with CPUClusterLBM(cfg) as cluster:
                cluster.load_global_distributions(start)
                cluster.step(steps)
                got = cluster.gather_distributions()
            if not np.array_equal(got, want):
                raise AssertionError(
                    f"aa/{case}/{backend}: merged forward/reverse "
                    f"exchange diverged from the reference")
            report["variants"][f"aa/{case}/{backend}/merged"] = {
                "bit_identical": True}

    # 3. Executed message counts on the SPMD/SimMPI path.
    decomp = BlockDecomposition(shape, arrangement,
                                periodic=(True, True, True))
    want_merged, want_perface = _expected_wire_counts(decomp)
    counts: dict[str, int] = {}
    for wire in ("merged", "perface"):
        tracer = Tracer(enabled=True)
        sim = SimCluster(decomp.n_nodes, tracer=tracer)
        spmd = SPMDClusterLBM(decomp, tau=0.7, f0=f0, wire=wire)
        got, _ = spmd.run(steps, cluster=sim)
        if not np.array_equal(got, ref_f):
            raise AssertionError(f"spmd/{wire}: diverged from the reference")
        msgs = [e for e in tracer.events if e.name == "mpi.msg"]
        counts[wire] = len(msgs)
        if wire == "merged":
            if len(msgs) != want_merged * steps:
                raise AssertionError(
                    f"spmd/merged: expected {want_merged} messages/step "
                    f"(one per neighbor per phase), traced "
                    f"{len(msgs) / steps:.1f}")
            per_channel: dict[tuple, int] = {}
            for e in msgs:
                ch = (e.meta["src"], e.meta["dst"], e.meta["tag"])
                per_channel[ch] = per_channel.get(ch, 0) + 1
            bad = {ch: n for ch, n in per_channel.items() if n != steps}
            if bad:
                raise AssertionError(
                    f"spmd/merged: channels not sending exactly one "
                    f"message per step: {bad}")
    if counts["merged"] >= counts["perface"]:
        raise AssertionError(
            f"merged wire sent {counts['merged']} messages, per-face "
            f"{counts['perface']} — merging must strictly reduce envelopes")
    report["messages"] = {"merged": counts["merged"],
                          "perface": counts["perface"],
                          "merged_per_step": counts["merged"] // steps,
                          "perface_per_step": counts["perface"] // steps}

    # 4. Compressed SPMD run: bit-identical, and every compressed trace
    #    event carries raw_bytes so bytes-on-wire stays auditable.
    tracer = Tracer(enabled=True)
    sim = SimCluster(decomp.n_nodes, tracer=tracer)
    spmd = SPMDClusterLBM(decomp, tau=0.7, f0=f0, wire="merged",
                          compression="always")
    got, _ = spmd.run(steps, cluster=sim)
    if not np.array_equal(got, ref_f):
        raise AssertionError("spmd/merged/always: compression perturbed "
                             "the numerics")
    comp_msgs = [e for e in tracer.events
                 if e.name == "mpi.msg" and "raw_bytes" in e.meta]
    if not comp_msgs:
        raise AssertionError("spmd/merged/always: no compressed message "
                             "events traced")
    wire_b = sum(e.meta["bytes"] for e in comp_msgs)
    raw_b = sum(e.meta["raw_bytes"] for e in comp_msgs)
    summaries = [s for s in spmd.compression_summaries if s]
    report["compression"] = {
        "messages": len(comp_msgs),
        "wire_bytes": wire_b, "raw_bytes": raw_b,
        "ratio": wire_b / raw_b if raw_b else 1.0,
        "engaged_channels": sum(s["engaged_channels"] for s in summaries),
    }

    # 5. Desync detection + recovery on a compressed channel.
    tx = AdaptiveCompressionController(policy="always")
    rx = AdaptiveCompressionController(policy="always")
    key = (0, 1, 0)
    base = rng.standard_normal(600).astype(np.float32)
    for i in range(3):
        arr = base + np.float32(1e-3 * i)
        out = rx.decode(key, tx.encode(key, arr).data, arr.shape)
        if not np.array_equal(out, arr):
            raise AssertionError("compressed round-trip not exact")
    tx.encode(key, base + np.float32(0.5))  # dropped on the floor
    try:
        rx.decode(key, tx.encode(key, base + np.float32(0.6)).data,
                  base.shape)
    except DeltaDesyncError:
        pass
    else:
        raise AssertionError("dropped compressed message not detected")
    tx.resync(key)
    rx.resync(key)
    arr = base + np.float32(0.7)
    out = rx.decode(key, tx.encode(key, arr).data, arr.shape)
    if not np.array_equal(out, arr):
        raise AssertionError("resync did not restore exact round-trips")
    report["desync_recovery"] = True
    return report
