"""The D3Q19 ghost-exchange plan (Sec 4.3).

"If the sub-domain in a GPU node is a lattice of size N^3, the size of
the data that it sends to a nearest neighbor is 5N^2, while the data it
sends to a second-nearest neighbor has size of only N."

Pull-streaming across a sub-domain boundary needs, in the ghost layer
on side ``(axis, -1)``, exactly the distributions with positive
velocity along ``axis`` — five of the nineteen for any axis of D3Q19 —
and one diagonal distribution per edge ghost line.  :class:`HaloPlan`
enumerates those link sets and the message byte counts the network
model charges.

It also owns the **merged wire protocol** (Sec 4.4's "gather everything
bound for one neighbor into a single message"): a
:class:`NeighborManifest` lays out, for one neighbor along one axis,
every payload segment that rank needs — the five streaming links over
the *full padded cross-section*, so the rim lines that implement
two-hop diagonal routing ride along in the same buffer — at fixed
offsets in one contiguous array.  Packing and unpacking are pure
index-table walks over the manifest, and both ends derive the same
manifest deterministically, so no per-message framing is needed.

Three manifest modes cover every exchange the cluster performs:

``pull``
    The forward exchange of the double-buffered kernels: the sender's
    *border* layer feeds the receiver's *ghost* layer; side ``s``
    carries the links with ``c[axis] == s``.
``aa_forward``
    The forward exchange after an AA even phase (feeding the next odd
    gather): the in-place even sweep leaves the array in reversed-slot
    layout, so side ``s`` carries the links with ``c[axis] == -s``
    instead.
``aa_reverse``
    The post-odd-phase write-back: the sender's *ghost* layer (holding
    the odd scatter's overshoot) feeds the receiver's *border* layer;
    side ``s`` carries the crossing links ``c[axis] == s``.

A manifest always describes a *neighbor* message.  Faces on a
non-periodic cluster edge have no neighbor and never enter a manifest:
the drivers close them locally instead — zero-gradient ghost fill on
the forward modes, zero-gradient border fold
(:func:`repro.lbm.streaming.fold_face_zero_gradient`) after an AA odd
scatter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lbm.lattice import D3Q19, Lattice

FLOAT_BYTES = 4

#: Valid :meth:`HaloPlan.neighbor_manifest` modes.
PACK_MODES = ("pull", "aa_forward", "aa_reverse")


@dataclass(frozen=True)
class PackSegment:
    """One face payload inside a merged per-neighbor message.

    ``links`` are the D3Q19 slots this segment carries (ascending, so
    the order is deterministic on both ends) and ``offset``/``floats``
    locate it inside the neighbor's contiguous buffer.
    """

    side: int               # sender-side direction (+-1) along the axis
    links: tuple[int, ...]  # link slots carried, ascending
    offset: int             # float offset of this segment in the buffer
    floats: int             # len(links) * plane cells


@dataclass(frozen=True)
class NeighborManifest:
    """Index table for one merged per-neighbor halo message.

    All payloads a neighbor needs from this rank in one exchange phase
    — one segment per face side riding in the message (two when both
    axis directions map to the same peer) — laid out back to back in a
    single contiguous float32 buffer.  Each segment spans the *padded*
    cross-section of the axis (``plane_shape``), so edge/rim lines for
    the sequential-axis two-hop diagonal routing are carried in the
    same message rather than as separate edge sends.
    """

    mode: str
    axis: int
    segments: tuple[PackSegment, ...]
    plane_shape: tuple[int, ...]  # padded cross-section (rim included)
    total_floats: int

    @property
    def nbytes(self) -> int:
        return self.total_floats * FLOAT_BYTES

    @property
    def sides(self) -> tuple[int, ...]:
        return tuple(seg.side for seg in self.segments)


@dataclass(frozen=True)
class FaceMessage:
    """Bytes and links of one axial face message."""

    axis: int
    direction: int          # +1: sent toward increasing coordinate
    links: tuple[int, ...]  # the 5 link indices carried
    face_cells: int
    piggyback_edges: int    # number of edge lines forwarded (indirect routing)
    edge_cells: int

    @property
    def nbytes(self) -> int:
        """5 N^2 (+ piggybacked edge lines), as Sec 4.3 counts."""
        return (len(self.links) * self.face_cells
                + self.piggyback_edges * self.edge_cells) * FLOAT_BYTES


class HaloPlan:
    """Link sets and message sizes for one sub-domain shape.

    Parameters
    ----------
    sub_shape:
        The node's lattice block (nx, ny, nz).
    lattice:
        Velocity set (D3Q19).
    """

    def __init__(self, sub_shape, lattice: Lattice = D3Q19) -> None:
        self.sub_shape = tuple(int(s) for s in sub_shape)
        self.lattice = lattice
        # Link-set lookups are pure functions of the velocity set, but
        # the lattice computes them with fresh boolean scans; exchange
        # hot loops (schedule building, SPMD rank programs) ask for the
        # same handful of sets every step, so memoise them here.  The
        # cached arrays are frozen to keep callers from corrupting the
        # shared copies.
        self._face_links_cache: dict[tuple[int, int], np.ndarray] = {}
        self._edge_links_cache: dict[tuple[int, int, int, int], np.ndarray] = {}
        self._manifest_cache: dict[tuple, NeighborManifest] = {}

    def face_links(self, axis: int, direction: int) -> np.ndarray:
        """Link indices streaming out of the ``(axis, direction)`` face
        (the ones a neighbour's ghost layer needs).

        Cached per ``(axis, direction)``; the returned array is
        read-only and identical to a fresh lattice scan.
        """
        key = (int(axis), int(direction))
        cached = self._face_links_cache.get(key)
        if cached is not None:
            return cached
        if direction == 1:
            links = self.lattice.links_with_positive(axis)
        elif direction == -1:
            links = self.lattice.links_with_negative(axis)
        else:
            raise ValueError("direction must be +-1")
        links.flags.writeable = False
        self._face_links_cache[key] = links
        return links

    def edge_links(self, axis_a: int, dir_a: int, axis_b: int, dir_b: int) -> np.ndarray:
        """The single link streaming out through the signed edge
        (cached per signed edge; read-only)."""
        key = (int(axis_a), int(dir_a), int(axis_b), int(dir_b))
        cached = self._edge_links_cache.get(key)
        if cached is None:
            cached = self.lattice.edge_links(axis_a, dir_a, axis_b, dir_b)
            cached.flags.writeable = False
            self._edge_links_cache[key] = cached
        return cached

    # -- merged per-neighbor wire protocol ------------------------------
    def padded_face_shape(self, axis: int) -> tuple[int, ...]:
        """Cross-section of one padded layer normal to ``axis``
        (interior plus the two ghost rims of each remaining axis)."""
        return tuple(s + 2 for a, s in enumerate(self.sub_shape)
                     if a != axis)

    def pack_links(self, axis: int, side: int, mode: str = "pull") -> np.ndarray:
        """Link slots the ``(axis, side)`` payload carries under ``mode``.

        Always five links for D3Q19; which five depends on the array
        layout at exchange time (see the module docstring).  The
        returned array is cached and read-only.
        """
        if mode == "pull" or mode == "aa_reverse":
            return self.face_links(axis, side)
        if mode == "aa_forward":
            return self.face_links(axis, -side)
        raise ValueError(f"mode must be one of {PACK_MODES}, got {mode!r}")

    def neighbor_manifest(self, axis: int, sides, mode: str = "pull",
                          ) -> NeighborManifest:
        """The packing manifest for one neighbor along ``axis``.

        ``sides`` names the face directions riding in the message —
        usually one, both when the low and high neighbor are the same
        rank (periodic extent-2 axes).  Segment order is deterministic
        (side -1 first, links ascending) so sender and receiver agree
        on the layout without any wire framing.
        """
        key = (int(axis), tuple(sorted(int(s) for s in sides)), str(mode))
        cached = self._manifest_cache.get(key)
        if cached is not None:
            return cached
        if mode not in PACK_MODES:
            raise ValueError(f"mode must be one of {PACK_MODES}, got {mode!r}")
        if not key[1] or any(s not in (-1, 1) for s in key[1]):
            raise ValueError(f"sides must be a non-empty subset of (-1, 1), "
                             f"got {sides!r}")
        plane_shape = self.padded_face_shape(axis)
        cells = int(np.prod(plane_shape))
        segments: list[PackSegment] = []
        offset = 0
        for side in key[1]:
            links = tuple(int(i) for i in self.pack_links(axis, side, mode))
            floats = len(links) * cells
            segments.append(PackSegment(side=side, links=links,
                                        offset=offset, floats=floats))
            offset += floats
        manifest = NeighborManifest(mode=mode, axis=int(axis),
                                    segments=tuple(segments),
                                    plane_shape=plane_shape,
                                    total_floats=offset)
        self._manifest_cache[key] = manifest
        return manifest

    def wire_message_count(self, wire: str, piggyback_edges: int = 0) -> int:
        """Messages one neighbor pair exchanges per axis phase.

        ``"merged"`` pays per-message overhead once — the edge lines
        ride inside the face buffer.  ``"perface"`` models the
        unaggregated protocol: the face payload plus every piggybacked
        edge line as its own message.
        """
        if wire == "merged":
            return 1
        if wire == "perface":
            return 1 + int(piggyback_edges)
        raise ValueError(f"wire must be 'merged' or 'perface', got {wire!r}")

    def face_cells(self, axis: int) -> int:
        """Interior cells of a face normal to ``axis``."""
        dims = [s for a, s in enumerate(self.sub_shape) if a != axis]
        return int(np.prod(dims))

    def edge_cells(self, axis_a: int, axis_b: int) -> int:
        """Cells along the edge line shared by two face-normal axes."""
        (rem,) = [a for a in range(3) if a not in (axis_a, axis_b)]
        return self.sub_shape[rem]

    def face_message(self, axis: int, direction: int,
                     piggyback_edges: int = 0) -> FaceMessage:
        """Build the byte-accounted message for one face direction."""
        axis_b = next(a for a in range(3) if a != axis)
        return FaceMessage(
            axis=axis,
            direction=direction,
            links=tuple(int(i) for i in self.face_links(axis, direction)),
            face_cells=self.face_cells(axis),
            piggyback_edges=piggyback_edges,
            edge_cells=self.edge_cells(axis, axis_b),
        )

    def face_bytes(self, axis: int) -> int:
        """The headline 5 N^2 * 4 B of one face message (no piggyback)."""
        return 5 * self.face_cells(axis) * FLOAT_BYTES

    def edge_bytes(self, axis_a: int, axis_b: int) -> int:
        """The N * 4 B of one diagonal edge message."""
        return self.edge_cells(axis_a, axis_b) * FLOAT_BYTES

    def indirect_overhead_fraction(self, axis: int, n_piggyback: int) -> float:
        """Relative growth of a face message from carrying ``c`` edge
        lines: the paper's ``c / (5 N)`` for cubic sub-domains."""
        axis_b = next(a for a in range(3) if a != axis)
        return (n_piggyback * self.edge_cells(axis, axis_b)
                / (5.0 * self.face_cells(axis)))
