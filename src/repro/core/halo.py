"""The D3Q19 ghost-exchange plan (Sec 4.3).

"If the sub-domain in a GPU node is a lattice of size N^3, the size of
the data that it sends to a nearest neighbor is 5N^2, while the data it
sends to a second-nearest neighbor has size of only N."

Pull-streaming across a sub-domain boundary needs, in the ghost layer
on side ``(axis, -1)``, exactly the distributions with positive
velocity along ``axis`` — five of the nineteen for any axis of D3Q19 —
and one diagonal distribution per edge ghost line.  :class:`HaloPlan`
enumerates those link sets and the message byte counts the network
model charges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lbm.lattice import D3Q19, Lattice

FLOAT_BYTES = 4


@dataclass(frozen=True)
class FaceMessage:
    """Bytes and links of one axial face message."""

    axis: int
    direction: int          # +1: sent toward increasing coordinate
    links: tuple[int, ...]  # the 5 link indices carried
    face_cells: int
    piggyback_edges: int    # number of edge lines forwarded (indirect routing)
    edge_cells: int

    @property
    def nbytes(self) -> int:
        """5 N^2 (+ piggybacked edge lines), as Sec 4.3 counts."""
        return (len(self.links) * self.face_cells
                + self.piggyback_edges * self.edge_cells) * FLOAT_BYTES


class HaloPlan:
    """Link sets and message sizes for one sub-domain shape.

    Parameters
    ----------
    sub_shape:
        The node's lattice block (nx, ny, nz).
    lattice:
        Velocity set (D3Q19).
    """

    def __init__(self, sub_shape, lattice: Lattice = D3Q19) -> None:
        self.sub_shape = tuple(int(s) for s in sub_shape)
        self.lattice = lattice
        # Link-set lookups are pure functions of the velocity set, but
        # the lattice computes them with fresh boolean scans; exchange
        # hot loops (schedule building, SPMD rank programs) ask for the
        # same handful of sets every step, so memoise them here.  The
        # cached arrays are frozen to keep callers from corrupting the
        # shared copies.
        self._face_links_cache: dict[tuple[int, int], np.ndarray] = {}
        self._edge_links_cache: dict[tuple[int, int, int, int], np.ndarray] = {}

    def face_links(self, axis: int, direction: int) -> np.ndarray:
        """Link indices streaming out of the ``(axis, direction)`` face
        (the ones a neighbour's ghost layer needs).

        Cached per ``(axis, direction)``; the returned array is
        read-only and identical to a fresh lattice scan.
        """
        key = (int(axis), int(direction))
        cached = self._face_links_cache.get(key)
        if cached is not None:
            return cached
        if direction == 1:
            links = self.lattice.links_with_positive(axis)
        elif direction == -1:
            links = self.lattice.links_with_negative(axis)
        else:
            raise ValueError("direction must be +-1")
        links.flags.writeable = False
        self._face_links_cache[key] = links
        return links

    def edge_links(self, axis_a: int, dir_a: int, axis_b: int, dir_b: int) -> np.ndarray:
        """The single link streaming out through the signed edge
        (cached per signed edge; read-only)."""
        key = (int(axis_a), int(dir_a), int(axis_b), int(dir_b))
        cached = self._edge_links_cache.get(key)
        if cached is None:
            cached = self.lattice.edge_links(axis_a, dir_a, axis_b, dir_b)
            cached.flags.writeable = False
            self._edge_links_cache[key] = cached
        return cached

    def face_cells(self, axis: int) -> int:
        """Interior cells of a face normal to ``axis``."""
        dims = [s for a, s in enumerate(self.sub_shape) if a != axis]
        return int(np.prod(dims))

    def edge_cells(self, axis_a: int, axis_b: int) -> int:
        """Cells along the edge line shared by two face-normal axes."""
        (rem,) = [a for a in range(3) if a not in (axis_a, axis_b)]
        return self.sub_shape[rem]

    def face_message(self, axis: int, direction: int,
                     piggyback_edges: int = 0) -> FaceMessage:
        """Build the byte-accounted message for one face direction."""
        axis_b = next(a for a in range(3) if a != axis)
        return FaceMessage(
            axis=axis,
            direction=direction,
            links=tuple(int(i) for i in self.face_links(axis, direction)),
            face_cells=self.face_cells(axis),
            piggyback_edges=piggyback_edges,
            edge_cells=self.edge_cells(axis, axis_b),
        )

    def face_bytes(self, axis: int) -> int:
        """The headline 5 N^2 * 4 B of one face message (no piggyback)."""
        return 5 * self.face_cells(axis) * FLOAT_BYTES

    def edge_bytes(self, axis_a: int, axis_b: int) -> int:
        """The N * 4 B of one diagonal edge message."""
        return self.edge_cells(axis_a, axis_b) * FLOAT_BYTES

    def indirect_overhead_fraction(self, axis: int, n_piggyback: int) -> float:
        """Relative growth of a face message from carrying ``c`` edge
        lines: the paper's ``c / (5 N)`` for cubic sub-domains."""
        axis_b = next(a for a in range(3) if a != axis)
        return (n_piggyback * self.edge_cells(axis, axis_b)
                / (5.0 * self.face_cells(axis)))
