"""Shared-memory layout for the process-parallel cluster backend.

The ``backend="processes"`` driver (``repro.core.procpool``) runs one
persistent worker process per cluster rank.  Bulk lattice data never
crosses a pipe: every rank's distribution arrays and per-face halo
mailboxes live in :mod:`multiprocessing.shared_memory` segments, and
both sides work on zero-copy :class:`numpy.ndarray` views of the same
pages.  Pipes carry only small control tuples (step commands, timing
scalars, counter summaries).

Per-rank segments (all float32):

``fg``
    Two ghost-padded distribution buffers, shape
    ``(2, Q, nx+2, ny+2, nz+2)`` — the CPU worker rebinds its solver's
    double-buffered ``fg``/``_fg_next`` onto views of this segment, so
    the coordinator can gather the interior without any worker
    round-trip.  GPU workers keep their state in simulated textures and
    skip this segment.

``mail``
    The halo mailboxes: for each axis, ``(2 dirs, 2 slots, L, *face)``
    where ``face`` is the padded cross-section perpendicular to the
    axis and ``L`` is the per-message link count — :data:`MAIL_LINKS`
    (5) on the merged wire, where each mailbox *is* the neighbor's
    single merged message (only the links streaming across the face
    travel), or ``Q`` on the legacy per-face wire.  ``dirs`` indexes
    the outgoing face (-1 -> 0, +1 -> 1) and ``slots`` is double
    buffering by step parity: a rank may pack its step-``t`` borders
    into slot ``t % 2`` while a slower neighbour is still unpacking
    slot ``(t - 1) % 2``, which is what lets the exchange run with a
    single barrier per axis (between pack and unpack) and none between
    steps.

``stage``
    One unpadded block ``(Q, nx, ny, nz)`` used as a gather/load
    staging area by GPU workers (whose distributions live in simulated
    texture memory and need one explicit copy to become shareable).

``health``
    A tiny float64 heartbeat strip of :data:`HEALTH_SLOTS` scalars
    (``hb_time, step, busy, step_seconds, busy_seconds, rss_bytes``)
    the worker updates at step boundaries and the coordinator's
    telemetry watchdog reads *at any time* — including while a step
    command is outstanding, which is what makes live stall detection
    possible over a synchronous pipe protocol.  Single writer, aligned
    8-byte scalar slots: a torn read is at worst one transiently stale
    value, never corruption.

Segment names carry the creating process id
(``reproshm-<pid>-<token>-<kind><rank>``) so tests and the
``python -m repro check-procs`` gate can assert that a driver's
shutdown left nothing behind in ``/dev/shm`` (:func:`leaked_segments`).
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

#: Prefix of every segment this module creates.
SEGMENT_PREFIX = "reproshm"

#: dtype of all shared lattice data (matches the solvers).
SHM_DTYPE = np.dtype(np.float32)

#: Links per merged-wire mailbox: only the five D3Q19 distributions
#: streaming across a face cross the wire, so the merged mailboxes are
#: 5/19ths the size of the per-face ones.
MAIL_LINKS = 5

#: Scalar slots in the per-rank health segment (see module docstring):
#: ``hb_time, step, busy, step_seconds, busy_seconds, rss_bytes``.
HEALTH_SLOTS = 6

#: dtype of the health heartbeat strip — float64 so perf_counter
#: timestamps keep full precision and each slot is one aligned 8-byte
#: store.
HEALTH_DTYPE = np.dtype(np.float64)


def unique_token() -> str:
    """A short collision-resistant token for one driver's segments."""
    return secrets.token_hex(4)


def segment_name(token: str, kind: str, rank: int) -> str:
    """Canonical segment name (also the /dev/shm file name on Linux)."""
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{token}-{kind}{rank}"


def shm_root() -> Path | None:
    """Directory where POSIX shared memory appears, if inspectable."""
    root = Path("/dev/shm")
    return root if root.is_dir() else None


def leaked_segments(pid: int | None = None) -> list[str]:
    """Names of this module's segments still present in /dev/shm.

    With ``pid`` (default: current process) only segments created by
    that process are reported, so concurrent runs don't cross-talk.
    Returns ``[]`` on platforms without an inspectable shm directory.
    """
    root = shm_root()
    if root is None:
        return []
    prefix = f"{SEGMENT_PREFIX}-{os.getpid() if pid is None else pid}-"
    return sorted(p.name for p in root.iterdir() if p.name.startswith(prefix))


def _attach_untracks() -> bool:
    """Whether an attaching process must unregister from its tracker.

    Fork children share the coordinator's resource tracker, where
    registration is set-idempotent and the creator's ``unlink`` must
    remain the only unregister.  Spawn children run their *own*
    tracker, which would otherwise unlink segments it does not own
    when the child exits — those must untrack after attaching.
    """
    import multiprocessing as mp
    try:
        return mp.get_start_method(allow_none=True) == "spawn"
    except Exception:  # pragma: no cover - defensive
        return False


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker double-accounting.

    Only the creating coordinator owns the segment lifetime; see
    :func:`_attach_untracks` for why spawn children unregister.
    """
    seg = shared_memory.SharedMemory(name=name)
    if _attach_untracks():
        try:  # pragma: no cover - tracker internals vary across versions
            from multiprocessing import resource_tracker
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    return seg


# ---------------------------------------------------------------------------
# layout


def padded_shape(sub_shape, q: int) -> tuple[int, ...]:
    """Ghost-padded distribution shape ``(Q, nx+2, ny+2, nz+2)``."""
    return (q,) + tuple(int(s) + 2 for s in sub_shape)


def face_shape(sub_shape, axis: int, q: int,
               links: int | None = None) -> tuple[int, ...]:
    """One mailbox face: ``links`` link slots (default: all ``q``)
    over the padded cross-section."""
    return ((q if links is None else int(links),)
            + tuple(int(s) + 2 for a, s in enumerate(sub_shape) if a != axis))


def mail_links(wire: str, q: int) -> int:
    """Link slots per mailbox for one wire protocol."""
    if wire == "merged":
        return MAIL_LINKS
    if wire == "perface":
        return int(q)
    raise ValueError(f"wire must be 'merged' or 'perface', got {wire!r}")


def mailbox_nbytes(sub_shape, q: int, wire: str = "merged") -> int:
    """Total bytes of one rank's mailbox segment (3 axes x 2 dirs x 2 slots)."""
    links = mail_links(wire, q)
    total = 0
    for axis in range(3):
        total += 2 * 2 * int(np.prod(face_shape(sub_shape, axis, q, links)))
    return total * SHM_DTYPE.itemsize


class RankSegments:
    """One rank's shared segments plus the ndarray views into them.

    Create on the coordinator with :meth:`create` (which owns unlink),
    attach inside the worker with :meth:`attach` using the published
    ``names``.  Views:

    ``fg_bufs``
        ``(buf0, buf1)`` padded distribution buffers (CPU ranks only).
    ``mail``
        ``{axis: {direction: array(2 slots, Q, *face)}}``.
    ``stage``
        ``(Q, nx, ny, nz)`` staging block.
    ``health``
        ``(HEALTH_SLOTS,)`` float64 heartbeat strip.
    """

    def __init__(self, sub_shape, q: int, names: dict[str, str | None],
                 owner: bool, wire: str = "merged") -> None:
        self.sub_shape = tuple(int(s) for s in sub_shape)
        self.q = int(q)
        self.wire = wire
        self.links = mail_links(wire, self.q)
        self.names = dict(names)
        self.owner = bool(owner)
        self._segs: dict[str, shared_memory.SharedMemory] = {}
        self._closed = False
        try:
            for kind, name in self.names.items():
                if name is None:
                    continue
                if owner:
                    self._segs[kind] = shared_memory.SharedMemory(
                        name=name, create=True, size=self._nbytes(kind))
                    # Fresh pages are zero-filled by the OS, but be
                    # explicit: ghosts/mailboxes must start at 0.0.
                    np.frombuffer(self._segs[kind].buf, SHM_DTYPE)[:] = 0.0
                else:
                    self._segs[kind] = attach_segment(name)
        except Exception:
            self.close(unlink=owner)
            raise
        self.fg_bufs = self._fg_views()
        self.mail = self._mail_views()
        self.stage = self._stage_view()
        self.health = self._health_view()

    # -- sizes and views -------------------------------------------------
    def _nbytes(self, kind: str) -> int:
        if kind == "fg":
            return 2 * int(np.prod(padded_shape(self.sub_shape, self.q))) \
                * SHM_DTYPE.itemsize
        if kind == "mail":
            return mailbox_nbytes(self.sub_shape, self.q, self.wire)
        if kind == "stage":
            return self.q * int(np.prod(self.sub_shape)) * SHM_DTYPE.itemsize
        if kind == "health":
            return HEALTH_SLOTS * HEALTH_DTYPE.itemsize
        raise ValueError(f"unknown segment kind {kind!r}")

    def _fg_views(self) -> tuple[np.ndarray, np.ndarray] | None:
        seg = self._segs.get("fg")
        if seg is None:
            return None
        arr = np.ndarray((2,) + padded_shape(self.sub_shape, self.q),
                         dtype=SHM_DTYPE, buffer=seg.buf)
        return arr[0], arr[1]

    def _mail_views(self) -> dict[int, dict[int, np.ndarray]]:
        seg = self._segs["mail"]
        out: dict[int, dict[int, np.ndarray]] = {}
        offset = 0
        for axis in range(3):
            face = face_shape(self.sub_shape, axis, self.q, self.links)
            per_dir = {}
            for direction in (-1, 1):
                shape = (2,) + face    # (slot, Q, *face)
                per_dir[direction] = np.ndarray(
                    shape, dtype=SHM_DTYPE, buffer=seg.buf, offset=offset)
                offset += int(np.prod(shape)) * SHM_DTYPE.itemsize
            out[axis] = per_dir
        return out

    def _stage_view(self) -> np.ndarray | None:
        seg = self._segs.get("stage")
        if seg is None:
            return None
        return np.ndarray((self.q,) + self.sub_shape, dtype=SHM_DTYPE,
                          buffer=seg.buf)

    def _health_view(self) -> np.ndarray | None:
        seg = self._segs.get("health")
        if seg is None:
            return None
        return np.ndarray((HEALTH_SLOTS,), dtype=HEALTH_DTYPE,
                          buffer=seg.buf)

    def interior(self, buf_index: int) -> np.ndarray:
        """Interior (unpadded) view of one fg buffer."""
        fg = self.fg_bufs[buf_index]
        return fg[(slice(None),) + (slice(1, -1),) * 3]

    # -- lifecycle -------------------------------------------------------
    def close(self, unlink: bool | None = None) -> None:
        """Drop the views and close (and, for the owner, unlink) segments."""
        if self._closed:
            return
        self._closed = True
        # Views hold exported buffers; releasing them first lets close()
        # succeed without BufferError.
        self.fg_bufs = None
        self.mail = {}
        self.stage = None
        self.health = None
        do_unlink = self.owner if unlink is None else unlink
        for seg in self._segs.values():
            try:
                seg.close()
            except Exception:
                pass
            if do_unlink:
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
                except Exception:
                    pass
        self._segs = {}

    @classmethod
    def create(cls, rank: int, sub_shape, q: int, token: str,
               with_fg: bool, wire: str = "merged") -> "RankSegments":
        names = {
            "fg": segment_name(token, "fg", rank) if with_fg else None,
            "mail": segment_name(token, "mail", rank),
            "stage": segment_name(token, "stage", rank),
            "health": segment_name(token, "health", rank),
        }
        return cls(sub_shape, q, names, owner=True, wire=wire)

    @classmethod
    def attach(cls, names: dict[str, str | None], sub_shape,
               q: int, wire: str = "merged") -> "RankSegments":
        return cls(sub_shape, q, names, owner=False, wire=wire)


def unlink_segment_names(names) -> None:
    """Best-effort unlink of segments by name (crash-path cleanup).

    Used by the backend's :mod:`weakref` finalizer so that a driver
    that was never shut down still does not leak /dev/shm entries at
    interpreter exit.
    """
    for name in names:
        if name is None:
            continue
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        except Exception:
            continue
        try:
            seg.close()
            seg.unlink()
        except Exception:
            pass
