"""The contention-aware communication schedule (Sec 4.3, Fig 7).

"the communication is scheduled in multiple steps and in each step
certain pairs of nodes exchange data ... In the first step, all nodes
in the (2i)th columns exchange data with their neighbors to the left.
In the second step, these nodes exchange data with neighbors to the
right.  In the third and fourth steps, nodes in the (2i)th rows
exchange data with their neighbors above and below ...  we do not
allow direct data exchange diagonally between second-nearest
neighbors.  Instead, we transfer those data indirectly in a two-step
process."

:class:`CommSchedule` builds the per-axis pairwise steps for any 1D /
2D / 3D node arrangement (2 steps per axis for paths and even cycles,
3 for odd cycles — a proper matching decomposition, so no node talks
to two partners in the same step), computes each pair's message bytes
including the piggybacked diagonal traffic, and provides the byte
lists the :class:`~repro.net.switch.GigabitSwitch` prices.

:func:`naive_schedule` is the unscheduled baseline: every node fires
all its face *and* direct diagonal messages at once.

Pairs exist only where two blocks actually share a face: on a
non-periodic axis the wraparound pairing between the first and last
node is absent, so bounded domains schedule (and price) strictly fewer
exchanges — the boundary faces are closed locally by the drivers and
never touch the switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decomposition import BlockDecomposition
from repro.core.halo import HaloPlan


@dataclass(frozen=True)
class ExchangePair:
    """One bidirectional face exchange: ``lo`` owns the lower-coordinate
    block; bytes are per direction (symmetric for uniform blocks).
    ``messages`` counts the wire envelopes per direction: 1 on the
    merged wire, 1 + piggybacked edge lines on the per-face wire."""

    axis: int
    lo: int
    hi: int
    nbytes: int
    messages: int = 1


@dataclass
class ScheduleStep:
    """One synchronised step: disjoint pairs exchanging simultaneously."""

    axis: int
    pairs: list[ExchangePair] = field(default_factory=list)

    def validate_disjoint(self) -> None:
        seen: set[int] = set()
        for p in self.pairs:
            for r in (p.lo, p.hi):
                if r in seen:
                    raise ValueError(
                        f"node {r} appears twice in one schedule step")
                seen.add(r)


def _axis_matchings(n: int, periodic: bool) -> list[list[tuple[int, int]]]:
    """Decompose the adjacency of a 1D chain/cycle of ``n`` positions
    into matchings: the paper's even/odd steps, plus a third step for
    the odd-cycle wrap pair."""
    if n < 2:
        return []
    # The paper's convention: step A = even positions exchanging with the
    # lower neighbour, step B = even positions with the upper neighbour.
    step_a = [(i, i + 1) for i in range(1, n - 1, 2)]
    step_b = [(i, i + 1) for i in range(0, n - 1, 2)]
    steps = [s for s in (step_a, step_b) if s]
    if periodic and n > 2:
        wrap = (0, n - 1)
        placed = False
        for s in steps:
            used = {r for p in s for r in p}
            if not (wrap[0] in used or wrap[1] in used):
                s.append(wrap)
                placed = True
                break
        if not placed:
            steps.append([wrap])
    return steps


class CommSchedule:
    """Pairwise exchange schedule for a block decomposition.

    Parameters
    ----------
    decomp:
        The node arrangement / lattice partition.
    plan:
        Halo plan giving per-face and per-edge message sizes.
    indirect_diagonal:
        If True (the paper's design), diagonal traffic is piggybacked on
        axial messages (two hops); if False the naive direct pattern is
        produced by :func:`naive_schedule` instead.
    wire:
        ``"merged"`` (one message per neighbor per phase — face, rim
        and piggybacked edge lines ride one contiguous buffer) or
        ``"perface"`` (the face message plus one envelope per
        piggybacked edge line).  Total bytes are identical; only the
        per-message envelope count the switch prices differs.
    """

    def __init__(self, decomp: BlockDecomposition, plan: HaloPlan,
                 indirect_diagonal: bool = True, wire: str = "merged") -> None:
        if not indirect_diagonal:
            raise ValueError("use naive_schedule() for the direct pattern")
        if wire not in ("merged", "perface"):
            raise ValueError(f"wire must be 'merged' or 'perface', got {wire!r}")
        self.decomp = decomp
        self.plan = plan
        self.wire = wire
        self._plans: dict[tuple[int, int, int], HaloPlan] = {
            plan.sub_shape: plan}
        self.steps: list[ScheduleStep] = []
        self._build()
        for s in self.steps:
            s.validate_disjoint()

    def _plan_for(self, shape: tuple[int, int, int]) -> HaloPlan:
        """Halo plan for one block shape (cached; non-uniform cuts make
        message sizes pair-specific)."""
        cached = self._plans.get(shape)
        if cached is None:
            cached = HaloPlan(shape, lattice=self.plan.lattice)
            self._plans[shape] = cached
        return cached

    def _piggyback_count(self, axis: int) -> int:
        """Edge lines piggybacked per face message along ``axis``.

        An edge between axes (a, b), a < b, rides the axis-``a`` hop
        first and is forwarded on the axis-``b`` hop; each face message
        therefore carries the edge lines of every such route through
        it.  For a full 2D arrangement this is the paper's c in
        {1, 2}; for 3D up to 4.
        """
        arr = self.decomp.arrangement
        count = 0
        for other in range(3):
            if other == axis or arr[other] == 1:
                continue
            count += 2  # both signs of the other axis
        return count

    def _build(self) -> None:
        arr = self.decomp.arrangement
        uniform = self.decomp.uniform
        for axis in range(3):
            n = arr[axis]
            if n == 1:
                continue
            piggy = self._piggyback_count(axis)
            messages = 1 if self.wire == "merged" else 1 + piggy
            # Uniform decompositions keep the caller-supplied plan (one
            # message size per axis); non-uniform cuts price each pair
            # from the lower block's shape — the face cross-section is
            # shared with its neighbour by the per-axis cut positions.
            msg = (self.plan.face_message(axis, +1, piggyback_edges=piggy)
                   if uniform else None)
            for matching in _axis_matchings(n, self.decomp.periodic[axis]):
                step = ScheduleStep(axis=axis)
                for (ia, ib) in matching:
                    for coords_rest in self._perpendicular_coords(axis):
                        ca = self._insert(coords_rest, axis, ia)
                        cb = self._insert(coords_rest, axis, ib)
                        lo = self.decomp.rank_of(ca)
                        hi = self.decomp.rank_of(cb)
                        if msg is not None:
                            nbytes = msg.nbytes
                        else:
                            plan = self._plan_for(
                                self.decomp.block_shape(lo))
                            nbytes = plan.face_message(
                                axis, +1, piggyback_edges=piggy).nbytes
                        step.pairs.append(ExchangePair(
                            axis=axis, lo=lo, hi=hi, nbytes=nbytes,
                            messages=messages))
                if step.pairs:
                    self.steps.append(step)

    def _perpendicular_coords(self, axis: int):
        arr = self.decomp.arrangement
        others = [a for a in range(3) if a != axis]
        for i in range(arr[others[0]]):
            for j in range(arr[others[1]]):
                yield {others[0]: i, others[1]: j}

    @staticmethod
    def _insert(rest: dict, axis: int, value: int) -> tuple[int, int, int]:
        c = dict(rest)
        c[axis] = value
        return tuple(c[a] for a in range(3))

    # ------------------------------------------------------------------
    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def total_pairs(self) -> int:
        return sum(len(s.pairs) for s in self.steps)

    def round_bytes(self) -> list[list[int]]:
        """Per-step list of per-pair message sizes, for the switch model."""
        return [[p.nbytes for p in s.pairs] for s in self.steps]

    def round_messages(self) -> list[list[int]]:
        """Per-step list of per-pair envelope counts (parallel to
        :meth:`round_bytes`); the switch charges per-message overhead
        on these, which is where the merged wire's win shows up."""
        return [[p.messages for p in s.pairs] for s in self.steps]

    def pairs_for_axis(self, axis: int) -> list[ExchangePair]:
        """All exchanges along one axis, in schedule order."""
        return [p for s in self.steps if s.axis == axis for p in s.pairs]


def naive_schedule(decomp: BlockDecomposition, plan: HaloPlan) -> dict[int, list[tuple[int, int]]]:
    """The unscheduled direct pattern: sender -> [(dest, nbytes), ...].

    Every node fires all its face messages *and* direct diagonal
    messages simultaneously — the pattern whose interruptions Sec 4.3
    measured to be "considerably larger" at equal volume.  Feed to
    :meth:`GigabitSwitch.naive_time`.
    """
    sends: dict[int, list[tuple[int, int]]] = {}
    for rank in range(decomp.n_nodes):
        out: list[tuple[int, int]] = []
        for (axis, _), nb in decomp.face_neighbors(rank).items():
            out.append((nb, plan.face_bytes(axis)))
        for (aa, _, ab, _), nb in decomp.edge_neighbors(rank).items():
            out.append((nb, plan.edge_bytes(aa, ab)))
        sends[rank] = out
    return sends
