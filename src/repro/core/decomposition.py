"""Block domain decomposition (Sec 4.3, Fig 6).

"To scale LBM onto the GPU cluster, we choose to decompose the LBM
lattice space into sub-domains, each of which is a 3D block ...  each
GPU node computes one sub-domain."

The paper arranges nodes in 2D for the Table-1 study (e.g. 32 nodes as
8x4) and notes the implementation also supports 3D arrangements.  The
paper also observes that cube-shaped sub-domains minimise the
boundary-surface-to-volume ratio — :func:`surface_to_volume` supports
the sub-domain-shape ablation bench.

Beyond the paper's equal 80^3 boxes, the decomposition is
*rectilinear*: each axis may be cut into unequal extents (``cuts``),
so per-rank block sizes can follow a cost model instead of the
uniform grid (Feichtinger et al., arXiv:1007.1388 — patch-based load
balancing).  Because the cut positions are shared per axis across the
whole grid (a tensor-product partition), any two face neighbours still
have identical face cross-sections, which is what keeps the halo
exchange, mailbox layout and two-hop diagonal routing untouched.
:func:`partition_axis` computes a deterministic minimise-max
contiguous partition of a per-slab cost profile; the cost profiles
themselves come from :mod:`repro.core.balance`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def arrange_nodes_2d(n: int) -> tuple[int, int, int]:
    """The paper's 2D arrangement: ``W x H x 1`` with H the largest
    divisor of n at most sqrt(n) (reproduces 8x4 for 32, 6x5 for 30,
    7x4 for 28, ...)."""
    if n < 1:
        raise ValueError("need at least one node")
    h = max(d for d in range(1, int(math.isqrt(n)) + 1) if n % d == 0)
    return (n // h, h, 1)


def arrange_nodes_3d(n: int) -> tuple[int, int, int]:
    """Near-cubic 3D arrangement ``W x H x D`` (W >= H >= D)."""
    if n < 1:
        raise ValueError("need at least one node")
    best = (n, 1, 1)
    best_cost = float("inf")
    for d in range(1, int(round(n ** (1 / 3))) + 1):
        if n % d:
            continue
        m = n // d
        for h in range(d, int(math.isqrt(m)) + 1):
            if m % h:
                continue
            w = m // h
            if w < h:
                continue
            cost = (w - h) ** 2 + (h - d) ** 2 + (w - d) ** 2
            if cost < best_cost:
                best_cost = cost
                best = (w, h, d)
    return best


def surface_to_volume(shape: tuple[int, int, int]) -> float:
    """Boundary-surface-area to volume ratio of a block sub-domain."""
    nx, ny, nz = shape
    if min(nx, ny, nz) < 1:
        raise ValueError("degenerate sub-domain")
    return 2.0 * (nx * ny + ny * nz + nx * nz) / (nx * ny * nz)


def uniform_cuts(extent: int, parts: int) -> tuple[int, ...]:
    """Near-equal contiguous cuts of ``extent`` into ``parts`` chunks.

    Exact division reproduces the historic equal boxes; otherwise the
    remainder cells go to the first chunks (deterministic).
    """
    extent, parts = int(extent), int(parts)
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if extent < parts:
        raise ValueError(
            f"cannot cut extent {extent} into {parts} non-empty chunks")
    q, r = divmod(extent, parts)
    return tuple(q + 1 if i < r else q for i in range(parts))


def partition_axis(costs, parts: int, min_extent: int = 2) -> tuple[int, ...]:
    """Minimise-max contiguous partition of a 1D cost profile.

    Cuts ``costs`` (one entry per lattice plane along the axis) into
    ``parts`` contiguous chunks of at least ``min_extent`` planes so
    that the most expensive chunk is as cheap as possible.  Found by
    binary search on the max-chunk cost with a greedy feasibility
    check, so the result is deterministic for a fixed cost profile.

    A small uniform epsilon is added to every plane so zero-cost
    regions (e.g. all-solid slabs with zero modeled weight) are split
    near-equally instead of degenerating into minimum-width chunks.
    """
    costs = np.asarray(costs, dtype=np.float64).ravel()
    n = costs.size
    parts = int(parts)
    min_extent = int(min_extent)
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if min_extent < 1:
        raise ValueError(f"min_extent must be >= 1, got {min_extent}")
    if n < parts * min_extent:
        raise ValueError(
            f"cannot cut {n} planes into {parts} chunks of >= "
            f"{min_extent}: axis too short for the arrangement")
    if np.any(costs < 0):
        raise ValueError("plane costs must be non-negative")
    if parts == 1:
        return (n,)
    total = float(costs.sum())
    costs = costs + (total / n) * 1e-6 + 1e-12
    total = float(costs.sum())
    prefix = np.concatenate(([0.0], np.cumsum(costs)))

    def greedy(limit: float) -> tuple[int, ...] | None:
        """Largest-feasible chunks under ``limit``; None if infeasible."""
        cuts: list[int] = []
        start = 0
        for k in range(parts - 1):
            remaining = parts - 1 - k
            lo = start + min_extent
            hi = n - remaining * min_extent
            # Largest end with chunk cost <= limit, clamped to [lo, hi].
            end = int(np.searchsorted(prefix, prefix[start] + limit,
                                      side="right")) - 1
            end = min(end, hi)
            if end < lo:
                return None
            cuts.append(end - start)
            start = end
        if prefix[n] - prefix[start] > limit:
            return None
        cuts.append(n - start)
        return tuple(cuts)

    lo, hi = total / parts, total
    best = greedy(hi)
    assert best is not None  # the whole-cost limit is always feasible
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        cand = greedy(mid)
        if cand is None:
            lo = mid
        else:
            best, hi = cand, mid
    return best


def weighted_cuts(cost_field: np.ndarray, arrangement,
                  min_extent: int = 2) -> tuple[tuple[int, ...], ...]:
    """Per-axis cuts from a per-cell cost field (marginal sums).

    Each axis is partitioned independently on the field's marginal
    cost profile along that axis — the tensor-product restriction that
    keeps neighbour face shapes matched (see the module docstring).
    """
    cost = np.asarray(cost_field, dtype=np.float64)
    if cost.ndim != 3:
        raise ValueError(f"cost field must be 3D, got shape {cost.shape}")
    arrangement = tuple(int(a) for a in arrangement)
    cuts = []
    for axis in range(3):
        other = tuple(a for a in range(3) if a != axis)
        cuts.append(partition_axis(cost.sum(axis=other), arrangement[axis],
                                   min_extent=min_extent))
    return tuple(cuts)


@dataclass(frozen=True)
class NodeBlock:
    """One node's sub-domain: grid coordinates and lattice slab."""

    rank: int
    coords: tuple[int, int, int]
    lo: tuple[int, int, int]   # inclusive lattice start
    shape: tuple[int, int, int]

    @property
    def slices(self) -> tuple[slice, slice, slice]:
        return tuple(slice(l, l + s) for l, s in zip(self.lo, self.shape))

    @property
    def cells(self) -> int:
        return int(np.prod(self.shape))


class BlockDecomposition:
    """Partition a global lattice over a grid of nodes.

    Parameters
    ----------
    global_shape:
        Lattice shape (nx, ny, nz).  The paper uses uniform 80^3
        sub-domains; extents that do not divide the arrangement get
        near-equal default cuts instead of an error.
    arrangement:
        Node grid (W, H, D).
    periodic:
        Per-axis global periodicity (affects neighbour wrap).
    cuts:
        Optional per-axis chunk extents, three sequences whose lengths
        match the arrangement and whose sums match the global extents
        (e.g. from :func:`weighted_cuts`).  Default: :func:`uniform_cuts`
        per axis, which reproduces the historic equal boxes whenever
        the extents divide.
    """

    def __init__(self, global_shape, arrangement, periodic=(True, True, True),
                 cuts=None) -> None:
        self.global_shape = tuple(int(s) for s in global_shape)
        self.arrangement = tuple(int(a) for a in arrangement)
        if len(self.global_shape) != 3 or len(self.arrangement) != 3:
            raise ValueError("3D shapes required")
        for s, a in zip(self.global_shape, self.arrangement):
            if a < 1 or s < a:
                raise ValueError(
                    f"global shape {global_shape} too small for "
                    f"arrangement {arrangement}")
        self.periodic = tuple(bool(p) for p in periodic)
        if cuts is None:
            cuts = tuple(uniform_cuts(s, a) for s, a in
                         zip(self.global_shape, self.arrangement))
        self.cuts = self._validate_cuts(cuts)
        #: Per-axis block start offsets (len = arrangement[axis] + 1).
        self.offsets = tuple(
            tuple(np.concatenate(([0], np.cumsum(c))).astype(int))
            for c in self.cuts)
        #: Equal boxes on every axis?  (The historic layout.)
        self.uniform = all(len(set(c)) == 1 for c in self.cuts)
        #: The common block shape under uniform cuts, else None —
        #: callers that assume equal boxes must check.
        self.sub_shape = (tuple(c[0] for c in self.cuts)
                          if self.uniform else None)
        self.n_nodes = int(np.prod(self.arrangement))
        self.blocks = [self._make_block(r) for r in range(self.n_nodes)]

    def _validate_cuts(self, cuts) -> tuple[tuple[int, ...], ...]:
        if len(cuts) != 3:
            raise ValueError(f"cuts must have one sequence per axis, "
                             f"got {len(cuts)}")
        out = []
        for axis, (c, s, a) in enumerate(zip(cuts, self.global_shape,
                                             self.arrangement)):
            c = tuple(int(x) for x in c)
            if len(c) != a:
                raise ValueError(
                    f"axis {axis}: {len(c)} cuts for {a} node columns")
            if any(x < 1 for x in c):
                raise ValueError(f"axis {axis}: empty block in cuts {c}")
            if sum(c) != s:
                raise ValueError(
                    f"axis {axis}: cuts {c} sum to {sum(c)}, expected {s}")
            out.append(c)
        return tuple(out)

    # ------------------------------------------------------------------
    def block_shape(self, rank: int) -> tuple[int, int, int]:
        """The (possibly rank-specific) block shape of ``rank``."""
        return self.blocks[rank].shape

    def max_block_shape(self) -> tuple[int, int, int]:
        """Per-axis maximum block extents (buffer sizing bound)."""
        return tuple(max(c) for c in self.cuts)

    def cells_per_rank(self) -> list[int]:
        """Lattice cells owned by each rank."""
        return [b.cells for b in self.blocks]

    # ------------------------------------------------------------------
    def rank_of(self, coords: tuple[int, int, int]) -> int:
        """Node rank from grid coordinates (x fastest)."""
        w, h, d = self.arrangement
        cx, cy, cz = coords
        if not (0 <= cx < w and 0 <= cy < h and 0 <= cz < d):
            raise ValueError(f"coords {coords} outside arrangement {self.arrangement}")
        return cx + w * (cy + h * cz)

    def coords_of(self, rank: int) -> tuple[int, int, int]:
        """Grid coordinates of a rank."""
        w, h, _ = self.arrangement
        if not 0 <= rank < self.n_nodes:
            raise ValueError(f"rank {rank} out of range")
        return (rank % w, (rank // w) % h, rank // (w * h))

    def _make_block(self, rank: int) -> NodeBlock:
        coords = self.coords_of(rank)
        lo = tuple(self.offsets[axis][c] for axis, c in enumerate(coords))
        shape = tuple(self.cuts[axis][c] for axis, c in enumerate(coords))
        return NodeBlock(rank, coords, lo, shape)

    # ------------------------------------------------------------------
    def neighbor(self, rank: int, axis: int, direction: int) -> int | None:
        """Face neighbour rank along ``axis`` (+1/-1); None at a
        non-periodic global edge."""
        coords = list(self.coords_of(rank))
        coords[axis] += direction
        n = self.arrangement[axis]
        if not 0 <= coords[axis] < n:
            if not self.periodic[axis] or n == 1:
                return None
            coords[axis] %= n
        return self.rank_of(tuple(coords))

    def face_neighbors(self, rank: int) -> dict[tuple[int, int], int]:
        """All face neighbours: (axis, direction) -> rank."""
        out = {}
        for axis in range(3):
            if self.arrangement[axis] == 1:
                continue
            for direction in (-1, 1):
                nb = self.neighbor(rank, axis, direction)
                if nb is not None and nb != rank:
                    out[(axis, direction)] = nb
        return out

    def edge_neighbors(self, rank: int) -> dict[tuple[int, int, int, int], int]:
        """Diagonal (second-nearest) neighbours:
        (axis_a, dir_a, axis_b, dir_b) -> rank, axis_a < axis_b."""
        out = {}
        coords = self.coords_of(rank)
        for aa in range(3):
            for ab in range(aa + 1, 3):
                if self.arrangement[aa] == 1 or self.arrangement[ab] == 1:
                    continue
                for da in (-1, 1):
                    for db in (-1, 1):
                        c = list(coords)
                        c[aa] += da
                        c[ab] += db
                        ok = True
                        for ax in (aa, ab):
                            n = self.arrangement[ax]
                            if not 0 <= c[ax] < n:
                                if not self.periodic[ax]:
                                    ok = False
                                    break
                                c[ax] %= n
                        if not ok:
                            continue
                        nb = self.rank_of(tuple(c))
                        if nb != rank:
                            out[(aa, da, ab, db)] = nb
        return out

    def scatter_field(self, field: np.ndarray) -> list[np.ndarray]:
        """Split a global (per-cell) field into per-node blocks."""
        if field.shape[-3:] != self.global_shape:
            raise ValueError("field does not match global shape")
        return [np.ascontiguousarray(field[..., b.slices[0], b.slices[1], b.slices[2]])
                for b in self.blocks]

    def gather_field(self, parts: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-node blocks into the global field."""
        if len(parts) != self.n_nodes:
            raise ValueError("wrong number of parts")
        lead = parts[0].shape[:-3]
        out = np.empty(lead + self.global_shape, dtype=parts[0].dtype)
        for b, part in zip(self.blocks, parts):
            out[..., b.slices[0], b.slices[1], b.slices[2]] = part
        return out
