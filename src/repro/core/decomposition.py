"""Block domain decomposition (Sec 4.3, Fig 6).

"To scale LBM onto the GPU cluster, we choose to decompose the LBM
lattice space into sub-domains, each of which is a 3D block ...  each
GPU node computes one sub-domain."

The paper arranges nodes in 2D for the Table-1 study (e.g. 32 nodes as
8x4) and notes the implementation also supports 3D arrangements.  The
paper also observes that cube-shaped sub-domains minimise the
boundary-surface-to-volume ratio — :func:`surface_to_volume` supports
the sub-domain-shape ablation bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def arrange_nodes_2d(n: int) -> tuple[int, int, int]:
    """The paper's 2D arrangement: ``W x H x 1`` with H the largest
    divisor of n at most sqrt(n) (reproduces 8x4 for 32, 6x5 for 30,
    7x4 for 28, ...)."""
    if n < 1:
        raise ValueError("need at least one node")
    h = max(d for d in range(1, int(math.isqrt(n)) + 1) if n % d == 0)
    return (n // h, h, 1)


def arrange_nodes_3d(n: int) -> tuple[int, int, int]:
    """Near-cubic 3D arrangement ``W x H x D`` (W >= H >= D)."""
    if n < 1:
        raise ValueError("need at least one node")
    best = (n, 1, 1)
    best_cost = float("inf")
    for d in range(1, int(round(n ** (1 / 3))) + 1):
        if n % d:
            continue
        m = n // d
        for h in range(d, int(math.isqrt(m)) + 1):
            if m % h:
                continue
            w = m // h
            if w < h:
                continue
            cost = (w - h) ** 2 + (h - d) ** 2 + (w - d) ** 2
            if cost < best_cost:
                best_cost = cost
                best = (w, h, d)
    return best


def surface_to_volume(shape: tuple[int, int, int]) -> float:
    """Boundary-surface-area to volume ratio of a block sub-domain."""
    nx, ny, nz = shape
    if min(nx, ny, nz) < 1:
        raise ValueError("degenerate sub-domain")
    return 2.0 * (nx * ny + ny * nz + nx * nz) / (nx * ny * nz)


@dataclass(frozen=True)
class NodeBlock:
    """One node's sub-domain: grid coordinates and lattice slab."""

    rank: int
    coords: tuple[int, int, int]
    lo: tuple[int, int, int]   # inclusive lattice start
    shape: tuple[int, int, int]

    @property
    def slices(self) -> tuple[slice, slice, slice]:
        return tuple(slice(l, l + s) for l, s in zip(self.lo, self.shape))

    @property
    def cells(self) -> int:
        return int(np.prod(self.shape))


class BlockDecomposition:
    """Partition a global lattice over a grid of nodes.

    Parameters
    ----------
    global_shape:
        Lattice shape (nx, ny, nz); each extent must be divisible by
        the corresponding arrangement extent (the paper uses uniform
        80^3 sub-domains).
    arrangement:
        Node grid (W, H, D).
    periodic:
        Per-axis global periodicity (affects neighbour wrap).
    """

    def __init__(self, global_shape, arrangement, periodic=(True, True, True)) -> None:
        self.global_shape = tuple(int(s) for s in global_shape)
        self.arrangement = tuple(int(a) for a in arrangement)
        if len(self.global_shape) != 3 or len(self.arrangement) != 3:
            raise ValueError("3D shapes required")
        for s, a in zip(self.global_shape, self.arrangement):
            if a < 1 or s % a:
                raise ValueError(
                    f"global shape {global_shape} not divisible by {arrangement}")
        self.periodic = tuple(bool(p) for p in periodic)
        self.sub_shape = tuple(s // a for s, a in zip(self.global_shape, self.arrangement))
        self.n_nodes = int(np.prod(self.arrangement))
        self.blocks = [self._make_block(r) for r in range(self.n_nodes)]

    # ------------------------------------------------------------------
    def rank_of(self, coords: tuple[int, int, int]) -> int:
        """Node rank from grid coordinates (x fastest)."""
        w, h, d = self.arrangement
        cx, cy, cz = coords
        if not (0 <= cx < w and 0 <= cy < h and 0 <= cz < d):
            raise ValueError(f"coords {coords} outside arrangement {self.arrangement}")
        return cx + w * (cy + h * cz)

    def coords_of(self, rank: int) -> tuple[int, int, int]:
        """Grid coordinates of a rank."""
        w, h, _ = self.arrangement
        if not 0 <= rank < self.n_nodes:
            raise ValueError(f"rank {rank} out of range")
        return (rank % w, (rank // w) % h, rank // (w * h))

    def _make_block(self, rank: int) -> NodeBlock:
        coords = self.coords_of(rank)
        lo = tuple(c * s for c, s in zip(coords, self.sub_shape))
        return NodeBlock(rank, coords, lo, self.sub_shape)

    # ------------------------------------------------------------------
    def neighbor(self, rank: int, axis: int, direction: int) -> int | None:
        """Face neighbour rank along ``axis`` (+1/-1); None at a
        non-periodic global edge."""
        coords = list(self.coords_of(rank))
        coords[axis] += direction
        n = self.arrangement[axis]
        if not 0 <= coords[axis] < n:
            if not self.periodic[axis] or n == 1:
                return None
            coords[axis] %= n
        return self.rank_of(tuple(coords))

    def face_neighbors(self, rank: int) -> dict[tuple[int, int], int]:
        """All face neighbours: (axis, direction) -> rank."""
        out = {}
        for axis in range(3):
            if self.arrangement[axis] == 1:
                continue
            for direction in (-1, 1):
                nb = self.neighbor(rank, axis, direction)
                if nb is not None and nb != rank:
                    out[(axis, direction)] = nb
        return out

    def edge_neighbors(self, rank: int) -> dict[tuple[int, int, int, int], int]:
        """Diagonal (second-nearest) neighbours:
        (axis_a, dir_a, axis_b, dir_b) -> rank, axis_a < axis_b."""
        out = {}
        coords = self.coords_of(rank)
        for aa in range(3):
            for ab in range(aa + 1, 3):
                if self.arrangement[aa] == 1 or self.arrangement[ab] == 1:
                    continue
                for da in (-1, 1):
                    for db in (-1, 1):
                        c = list(coords)
                        c[aa] += da
                        c[ab] += db
                        ok = True
                        for ax in (aa, ab):
                            n = self.arrangement[ax]
                            if not 0 <= c[ax] < n:
                                if not self.periodic[ax]:
                                    ok = False
                                    break
                                c[ax] %= n
                        if not ok:
                            continue
                        nb = self.rank_of(tuple(c))
                        if nb != rank:
                            out[(aa, da, ab, db)] = nb
        return out

    def scatter_field(self, field: np.ndarray) -> list[np.ndarray]:
        """Split a global (per-cell) field into per-node blocks."""
        if field.shape[-3:] != self.global_shape:
            raise ValueError("field does not match global shape")
        return [np.ascontiguousarray(field[..., b.slices[0], b.slices[1], b.slices[2]])
                for b in self.blocks]

    def gather_field(self, parts: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-node blocks into the global field."""
        if len(parts) != self.n_nodes:
            raise ValueError("wrong number of parts")
        lead = parts[0].shape[:-3]
        out = np.empty(lead + self.global_shape, dtype=parts[0].dtype)
        for b, part in zip(self.blocks, parts):
            out[..., b.slices[0], b.slices[1], b.slices[2]] = part
        return out
