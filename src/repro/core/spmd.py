"""SPMD parallel LBM over SimMPI — the paper's actual software shape.

The coordinator-driven :class:`~repro.core.cluster_lbm.GPUClusterLBM`
is deterministic and convenient for timing sweeps, but the real system
"use[s] MPI for data transfer across the network during execution"
(Sec 3): every node runs the same program and exchanges halos with
point-to-point messages in the Fig-7 step order.  This module
implements that faithfully on :class:`~repro.net.SimCluster` threads:

* each rank owns one sub-domain (reference numpy solver);
* per time step: collide, then for each axis the two directional
  shift phases (even pairs, odd pairs — the schedule's matchings),
  then stream + boundaries;
* the diagonal (second-nearest) traffic crosses in two hops exactly as
  Sec 4.3 describes, because each axis phase forwards the ghost rims
  received from the previous axis.

The result is asserted identical to the single-domain reference (and
hence to the coordinator path).  The per-rank simulated clocks expose
the communication costs the switch model assigns to the real message
pattern — including contention if the schedule is violated.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import BlockDecomposition
from repro.lbm.solver import LBMSolver
from repro.net.simmpi import SimCluster

#: Tag base per axis/direction so concurrent phases never cross-match.
_TAG = {(0, -1): 100, (0, 1): 101, (1, -1): 110, (1, 1): 111,
        (2, -1): 120, (2, 1): 121}

#: Tag of a both-sides merged message (periodic extent-2 axes, where
#: the low and high neighbour are the same rank and the two faces ride
#: one wire buffer).
_MERGED_TAG = {0: 102, 1: 112, 2: 122}


class SPMDClusterLBM:
    """Run the decomposed LBM as an SPMD program on simulated ranks.

    Parameters
    ----------
    decomp:
        Block decomposition (defines ranks, neighbours, periodicity).
    tau:
        BGK relaxation time.
    solid:
        Optional global obstacle mask.
    f0:
        Optional global initial distributions.
    wire:
        ``"merged"`` (default) sends exactly one message per neighbor
        per exchange phase — the five crossing links over the full
        padded cross-section, rims included, in one contiguous buffer;
        ``"perface"`` is the legacy full-face wire.
    compression:
        ``"off"`` (default), ``"adaptive"`` (probe the measured ratio
        against the switch bandwidth, engage only when it pays), or
        ``"always"`` (force the codec).  Requires the merged wire;
        compressed frames travel as uint8 and the per-rank simulated
        clocks are charged the modeled codec CPU.
    """

    def __init__(self, decomp: BlockDecomposition, tau: float,
                 solid: np.ndarray | None = None,
                 f0: np.ndarray | None = None, wire: str = "merged",
                 compression: str = "off") -> None:
        if decomp.sub_shape is None:
            raise ValueError(
                "SPMDClusterLBM requires uniform cuts (the rank program "
                "indexes ghosts by a shared sub_shape); use the "
                "coordinator drivers for weighted decompositions")
        if wire not in ("merged", "perface"):
            raise ValueError(f"wire must be 'merged' or 'perface', got {wire!r}")
        if compression not in ("off", "adaptive", "always"):
            raise ValueError("compression must be 'off', 'adaptive' or "
                             f"'always', got {compression!r}")
        if compression != "off" and wire != "merged":
            raise ValueError("compression requires the merged wire")
        self.decomp = decomp
        self.tau = float(tau)
        self.wire = wire
        self.compression = compression
        #: Per-rank compression summaries from the last merged run
        #: (``None`` entries when compression is off).
        self.compression_summaries: list[dict | None] = []
        self.solids = (decomp.scatter_field(solid)
                       if solid is not None else [None] * decomp.n_nodes)
        self.f0_parts = decomp.scatter_field(f0) if f0 is not None else None

    # -- the per-rank program ------------------------------------------------
    def _rank_main(self, comm, steps: int):
        decomp = self.decomp
        rank = comm.rank
        solver = LBMSolver(decomp.sub_shape, self.tau,
                           solid=self.solids[rank], periodic=False)
        if self.f0_parts is not None:
            solver.f[...] = self.f0_parts[rank].astype(solver.dtype)

        def border(axis: int, direction: int) -> np.ndarray:
            idx = 1 if direction == -1 else decomp.sub_shape[axis]
            return np.ascontiguousarray(np.take(solver.fg, idx, axis=1 + axis))

        def set_ghost(axis: int, direction: int, data: np.ndarray) -> None:
            idx = 0 if direction == -1 else decomp.sub_shape[axis] + 1
            sl = [slice(None)] * 4
            sl[1 + axis] = idx
            solver.fg[tuple(sl)] = data

        for _ in range(steps):
            # Executed overlap (Sec 4.4): collide the boundary shell so
            # the axis-0 borders are ready, launch that axis's sends and
            # nonblocking receives, collide the inner core while the
            # messages are in flight, then complete the receives.  The
            # split collide is bit-identical to the full one, and the
            # inner pass touches neither borders nor ghosts.
            solver.collide_boundary()
            pending = []
            for direction in (1, -1):
                peer_out = decomp.neighbor(rank, 0, direction)
                peer_in = decomp.neighbor(rank, 0, -direction)
                tag = _TAG[(0, direction)]
                if peer_out is not None:
                    comm.Isend(border(0, direction), dest=peer_out, tag=tag)
                if peer_in is not None:
                    pending.append((direction, comm.Irecv(source=peer_in,
                                                          tag=tag)))
                elif decomp.periodic[0]:
                    # Single block along a periodic axis: self-wrap.
                    set_ghost(0, -direction, border(0, direction))
                else:
                    set_ghost(0, -direction, border(0, -direction))
            solver.collide_inner()
            for direction, req in pending:
                set_ghost(0, -direction, req.wait())
            # Remaining axis phases in the Fig-7 order.  Within a phase,
            # two directional shifts: send high border up / receive from
            # below, then the mirror — non-blocking sends make the
            # matchings deadlock-free for any arrangement.  Later-axis
            # borders forward the rims just received, so these phases
            # stay strictly after the axis-0 waits (two-hop routing).
            for axis in (1, 2):
                for direction in (1, -1):
                    peer_out = decomp.neighbor(rank, axis, direction)
                    peer_in = decomp.neighbor(rank, axis, -direction)
                    tag = _TAG[(axis, direction)]
                    if peer_out is not None:
                        comm.Isend(border(axis, direction), dest=peer_out,
                                   tag=tag)
                    if peer_in is not None:
                        data = comm.Recv(source=peer_in, tag=tag)
                        set_ghost(axis, -direction, data)
                    elif decomp.periodic[axis]:
                        # Single block along a periodic axis: self-wrap.
                        set_ghost(axis, -direction, border(axis, direction))
                    else:
                        set_ghost(axis, -direction,
                                  border(axis, -direction))  # zero-gradient
            solver.stream()
            solver.post_stream()
            solver.time_step += 1
        return solver.f.copy(), comm.clock_s

    # -- the per-rank program, merged wire ------------------------------------
    def _build_routes(self, plan, rank: int) -> list[dict]:
        """Per-axis wire routing for one rank, fixed for the run.

        ``pairs`` are real neighbours: each carries the outgoing
        manifest/tag (this rank's facing side) and the mirrored
        incoming manifest/tag (the peer packed *its* facing side, which
        is this rank's opposite — identical manifests under uniform
        cuts).  A periodic extent-2 axis has one both-sides pair; a
        periodic extent-1 axis self-wraps locally; a non-periodic edge
        falls back to the zero-gradient ghost fill.
        """
        decomp = self.decomp
        routes: list[dict] = []
        for axis in range(3):
            lo = decomp.neighbor(rank, axis, -1)
            hi = decomp.neighbor(rank, axis, 1)
            pairs: list[dict] = []
            wrap = None
            zeros: list[int] = []
            if lo is not None and lo == hi:
                m = plan.neighbor_manifest(axis, (-1, 1), "pull")
                pairs.append({"peer": lo, "send_m": m, "recv_m": m,
                              "send_tag": _MERGED_TAG[axis],
                              "recv_tag": _MERGED_TAG[axis],
                              "buf": np.empty(m.total_floats, np.float32)})
            else:
                for s, peer in ((-1, lo), (1, hi)):
                    if peer is not None:
                        sm = plan.neighbor_manifest(axis, (s,), "pull")
                        rm = plan.neighbor_manifest(axis, (-s,), "pull")
                        pairs.append({"peer": peer, "send_m": sm, "recv_m": rm,
                                      "send_tag": _TAG[(axis, s)],
                                      "recv_tag": _TAG[(axis, -s)],
                                      "buf": np.empty(sm.total_floats,
                                                      np.float32)})
                    elif decomp.periodic[axis]:
                        if wrap is None:
                            m = plan.neighbor_manifest(axis, (-1, 1), "pull")
                            wrap = {"m": m, "buf": np.empty(m.total_floats,
                                                            np.float32)}
                    else:
                        zeros.append(s)
            routes.append({"pairs": pairs, "wrap": wrap, "zeros": zeros})
        return routes

    def _rank_main_merged(self, comm, steps: int):
        from repro.core.halo import HaloPlan
        from repro.core.wire import (AdaptiveCompressionController,
                                     pack_halo, unpack_halo)

        decomp = self.decomp
        rank = comm.rank
        sub = decomp.sub_shape
        solver = LBMSolver(sub, self.tau,
                           solid=self.solids[rank], periodic=False)
        if self.f0_parts is not None:
            solver.f[...] = self.f0_parts[rank].astype(solver.dtype)
        plan = HaloPlan(sub)
        routes = self._build_routes(plan, rank)
        comp = None
        if self.compression != "off":
            comp = AdaptiveCompressionController(
                policy=self.compression,
                bandwidth_bytes_per_s=comm._cluster.switch.effective_bytes_per_s)

        def border(axis: int, direction: int) -> np.ndarray:
            idx = 1 if direction == -1 else sub[axis]
            return np.ascontiguousarray(np.take(solver.fg, idx, axis=1 + axis))

        def set_ghost(axis: int, direction: int, data: np.ndarray) -> None:
            idx = 0 if direction == -1 else sub[axis] + 1
            sl = [slice(None)] * 4
            sl[1 + axis] = idx
            solver.fg[tuple(sl)] = data

        def send_pair(axis: int, pair: dict) -> None:
            pack_halo(solver.fg, sub, pair["send_m"], pair["buf"])
            payload, meta = pair["buf"], None
            if comp is not None:
                wp = comp.encode((rank, pair["peer"], axis), pair["buf"])
                if wp.compress_s:
                    comm.compute(wp.compress_s)
                payload = wp.data
                if wp.compressed:
                    meta = {"raw_bytes": wp.raw_bytes}
            comm.Isend(payload, dest=pair["peer"], tag=pair["send_tag"],
                       meta=meta)

        def unpack_pair(axis: int, pair: dict, data: np.ndarray) -> None:
            m = pair["recv_m"]
            if comp is not None:
                if data.dtype == np.uint8:
                    comm.compute(comp.decompress_seconds(m.nbytes))
                data = comp.decode((pair["peer"], rank, axis), data,
                                   (m.total_floats,))
            unpack_halo(solver.fg, sub, m, data)

        def local_fills(axis: int) -> None:
            r = routes[axis]
            if r["wrap"] is not None:
                pack_halo(solver.fg, sub, r["wrap"]["m"], r["wrap"]["buf"])
                unpack_halo(solver.fg, sub, r["wrap"]["m"], r["wrap"]["buf"])
            for s in r["zeros"]:
                set_ghost(axis, s, border(axis, s))  # zero-gradient

        for _ in range(steps):
            # Same executed overlap as the per-face program: collide the
            # boundary shell, fire axis 0 (one merged message per
            # neighbor), collide the inner core while they fly, then
            # complete the receives.  Later axes forward the rims just
            # unpacked (two-hop diagonal routing) with blocking receives.
            solver.collide_boundary()
            pending = []
            for pair in routes[0]["pairs"]:
                send_pair(0, pair)
                pending.append((pair, comm.Irecv(source=pair["peer"],
                                                 tag=pair["recv_tag"])))
            local_fills(0)
            solver.collide_inner()
            for pair, req in pending:
                unpack_pair(0, pair, req.wait())
            for axis in (1, 2):
                for pair in routes[axis]["pairs"]:
                    send_pair(axis, pair)
                local_fills(axis)
                for pair in routes[axis]["pairs"]:
                    unpack_pair(axis, pair,
                                comm.Recv(source=pair["peer"],
                                          tag=pair["recv_tag"]))
            solver.stream()
            solver.post_stream()
            solver.time_step += 1
        return (solver.f.copy(), comm.clock_s,
                None if comp is None else comp.summary())

    # -- driver ---------------------------------------------------------------
    def run(self, steps: int, cluster: SimCluster | None = None
            ) -> tuple[np.ndarray, list[float]]:
        """Execute ``steps`` on all ranks; returns (global f, clocks)."""
        cl = cluster if cluster is not None else SimCluster(
            self.decomp.n_nodes)
        main = (self._rank_main_merged if self.wire == "merged"
                else self._rank_main)
        results = cl.run(main, steps)
        parts = [r[0] for r in results]
        clocks = [r[1] for r in results]
        self.compression_summaries = [r[2] if len(r) > 2 else None
                                      for r in results]
        return self.decomp.gather_field(parts), clocks
