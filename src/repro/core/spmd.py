"""SPMD parallel LBM over SimMPI — the paper's actual software shape.

The coordinator-driven :class:`~repro.core.cluster_lbm.GPUClusterLBM`
is deterministic and convenient for timing sweeps, but the real system
"use[s] MPI for data transfer across the network during execution"
(Sec 3): every node runs the same program and exchanges halos with
point-to-point messages in the Fig-7 step order.  This module
implements that faithfully on :class:`~repro.net.SimCluster` threads:

* each rank owns one sub-domain (reference numpy solver);
* per time step: collide, then for each axis the two directional
  shift phases (even pairs, odd pairs — the schedule's matchings),
  then stream + boundaries;
* the diagonal (second-nearest) traffic crosses in two hops exactly as
  Sec 4.3 describes, because each axis phase forwards the ghost rims
  received from the previous axis.

The result is asserted identical to the single-domain reference (and
hence to the coordinator path).  The per-rank simulated clocks expose
the communication costs the switch model assigns to the real message
pattern — including contention if the schedule is violated.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import BlockDecomposition
from repro.lbm.solver import LBMSolver
from repro.net.simmpi import SimCluster

#: Tag base per axis/direction so concurrent phases never cross-match.
_TAG = {(0, -1): 100, (0, 1): 101, (1, -1): 110, (1, 1): 111,
        (2, -1): 120, (2, 1): 121}


class SPMDClusterLBM:
    """Run the decomposed LBM as an SPMD program on simulated ranks.

    Parameters
    ----------
    decomp:
        Block decomposition (defines ranks, neighbours, periodicity).
    tau:
        BGK relaxation time.
    solid:
        Optional global obstacle mask.
    f0:
        Optional global initial distributions.
    """

    def __init__(self, decomp: BlockDecomposition, tau: float,
                 solid: np.ndarray | None = None,
                 f0: np.ndarray | None = None) -> None:
        if decomp.sub_shape is None:
            raise ValueError(
                "SPMDClusterLBM requires uniform cuts (the rank program "
                "indexes ghosts by a shared sub_shape); use the "
                "coordinator drivers for weighted decompositions")
        self.decomp = decomp
        self.tau = float(tau)
        self.solids = (decomp.scatter_field(solid)
                       if solid is not None else [None] * decomp.n_nodes)
        self.f0_parts = decomp.scatter_field(f0) if f0 is not None else None

    # -- the per-rank program ------------------------------------------------
    def _rank_main(self, comm, steps: int):
        decomp = self.decomp
        rank = comm.rank
        solver = LBMSolver(decomp.sub_shape, self.tau,
                           solid=self.solids[rank], periodic=False)
        if self.f0_parts is not None:
            solver.f[...] = self.f0_parts[rank].astype(solver.dtype)

        def border(axis: int, direction: int) -> np.ndarray:
            idx = 1 if direction == -1 else decomp.sub_shape[axis]
            return np.ascontiguousarray(np.take(solver.fg, idx, axis=1 + axis))

        def set_ghost(axis: int, direction: int, data: np.ndarray) -> None:
            idx = 0 if direction == -1 else decomp.sub_shape[axis] + 1
            sl = [slice(None)] * 4
            sl[1 + axis] = idx
            solver.fg[tuple(sl)] = data

        for _ in range(steps):
            # Executed overlap (Sec 4.4): collide the boundary shell so
            # the axis-0 borders are ready, launch that axis's sends and
            # nonblocking receives, collide the inner core while the
            # messages are in flight, then complete the receives.  The
            # split collide is bit-identical to the full one, and the
            # inner pass touches neither borders nor ghosts.
            solver.collide_boundary()
            pending = []
            for direction in (1, -1):
                peer_out = decomp.neighbor(rank, 0, direction)
                peer_in = decomp.neighbor(rank, 0, -direction)
                tag = _TAG[(0, direction)]
                if peer_out is not None:
                    comm.Isend(border(0, direction), dest=peer_out, tag=tag)
                if peer_in is not None:
                    pending.append((direction, comm.Irecv(source=peer_in,
                                                          tag=tag)))
                elif decomp.periodic[0]:
                    # Single block along a periodic axis: self-wrap.
                    set_ghost(0, -direction, border(0, direction))
                else:
                    set_ghost(0, -direction, border(0, -direction))
            solver.collide_inner()
            for direction, req in pending:
                set_ghost(0, -direction, req.wait())
            # Remaining axis phases in the Fig-7 order.  Within a phase,
            # two directional shifts: send high border up / receive from
            # below, then the mirror — non-blocking sends make the
            # matchings deadlock-free for any arrangement.  Later-axis
            # borders forward the rims just received, so these phases
            # stay strictly after the axis-0 waits (two-hop routing).
            for axis in (1, 2):
                for direction in (1, -1):
                    peer_out = decomp.neighbor(rank, axis, direction)
                    peer_in = decomp.neighbor(rank, axis, -direction)
                    tag = _TAG[(axis, direction)]
                    if peer_out is not None:
                        comm.Isend(border(axis, direction), dest=peer_out,
                                   tag=tag)
                    if peer_in is not None:
                        data = comm.Recv(source=peer_in, tag=tag)
                        set_ghost(axis, -direction, data)
                    elif decomp.periodic[axis]:
                        # Single block along a periodic axis: self-wrap.
                        set_ghost(axis, -direction, border(axis, direction))
                    else:
                        set_ghost(axis, -direction,
                                  border(axis, -direction))  # zero-gradient
            solver.stream()
            solver.post_stream()
            solver.time_step += 1
        return solver.f.copy(), comm.clock_s

    # -- driver ---------------------------------------------------------------
    def run(self, steps: int, cluster: SimCluster | None = None
            ) -> tuple[np.ndarray, list[float]]:
        """Execute ``steps`` on all ranks; returns (global f, clocks)."""
        cl = cluster if cluster is not None else SimCluster(
            self.decomp.n_nodes)
        results = cl.run(self._rank_main, steps)
        parts = [r[0] for r in results]
        clocks = [r[1] for r in results]
        return self.decomp.gather_field(parts), clocks
