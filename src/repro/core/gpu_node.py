"""One cluster node's GPU sub-domain (Secs 4.2-4.3).

A :class:`GPUNode` wraps a padded-mode :class:`~repro.gpu.GPULBMSolver`
on its own :class:`~repro.gpu.SimulatedGPU` and implements the node's
side of the cluster protocol:

* collide passes (with the inner/outer timing split that creates the
  ~120 ms overlap window of Sec 4.4);
* gather of all outgoing border distributions followed by a *single*
  readback over AGP ("we minimize the overhead of initializing the
  read operations", Sec 4.3);
* ghost uploads of data received from neighbours;
* stream + bounce-back passes.

In ``timing_only`` mode no numerics run: the node reports the same
timing decomposition from the closed-form model, allowing paper-scale
(80^3 x 32) sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import SimulatedGPU
from repro.gpu.fragment import FragmentProgram
from repro.gpu.lbm_gpu import GPULBMSolver
from repro.gpu.specs import AGP_8X, GEFORCE_FX_5800_ULTRA, BusSpec, GPUSpec
from repro.perf import calibration as cal

#: Declared per-fragment cost of the border gather/scatter passes that
#: pack outgoing distributions into the transfer texture (Sec 4.3).
GATHER_PROGRAM = FragmentProgram("gather", kernel=None, alu_ops=4, tex_fetches=2)


class GPUNode:
    """One sub-domain on one simulated GPU.

    Parameters
    ----------
    rank:
        Cluster rank (for diagnostics).
    sub_shape:
        The node's lattice block.
    tau:
        BGK relaxation time.
    solid:
        Local obstacle mask.
    face_dirs:
        Active face-exchange directions ``(axis, direction)``.
    edge_dirs:
        Active diagonal-edge directions (for AGP edge overhead).
    timing_only:
        Skip numerics, model timing only.
    """

    def __init__(self, rank: int, sub_shape, tau: float, solid=None,
                 face_dirs=(), edge_dirs=(), timing_only: bool = False,
                 gpu_spec: GPUSpec = GEFORCE_FX_5800_ULTRA,
                 bus: BusSpec = AGP_8X, inlet=None, outflow=None,
                 force=None) -> None:
        self.rank = rank
        self.sub_shape = tuple(int(s) for s in sub_shape)
        self.tau = float(tau)
        self.face_dirs = list(face_dirs)
        self.edge_dirs = list(edge_dirs)
        self.timing_only = bool(timing_only)
        self.device = SimulatedGPU(spec=gpu_spec, bus=bus,
                                   enforce_memory=not timing_only)
        if timing_only:
            self.solver = None
        else:
            self.solver = GPULBMSolver(self.sub_shape, tau, device=self.device,
                                       mode="padded", solid=solid, inlet=inlet,
                                       outflow=outflow, force=force)
        # Per-step timing buckets (seconds).
        self.compute_s = 0.0
        self.agp_s = 0.0
        self.overlap_window_s = 0.0
        # Kernel-report attributes: the GPU path has a single hot path
        # (the fragment-program passes), reported alongside the CPU
        # ranks' fused/sparse selection.
        self.kernel_used = "gpu"
        self.solid_fraction = (float(np.asarray(solid, dtype=bool).mean())
                               if solid is not None else 0.0)

    # -- geometry helpers -------------------------------------------------
    @property
    def cells(self) -> int:
        return int(np.prod(self.sub_shape))

    def inner_cells(self) -> int:
        return int(np.prod([max(0, s - 2) for s in self.sub_shape]))

    def face_cells(self, axis: int) -> int:
        return int(np.prod([s for a, s in enumerate(self.sub_shape) if a != axis]))

    # -- timing-model pieces ----------------------------------------------
    def _border_compute_s(self) -> float:
        """Fitted border-handling overhead: ~3 ms per border direction
        (faces and edges alike) at the 80^3 reference, scaled with the
        border size (see BORDER_COMPUTE_S_PER_DIR provenance)."""
        border = 0.0
        for (axis, _) in self.face_dirs:
            border += (cal.BORDER_COMPUTE_S_PER_DIR
                       * self.face_cells(axis) / cal.BORDER_COMPUTE_REF_FACE_CELLS)
        for (aa, _, ab, _) in self.edge_dirs:
            other = next(a for a in range(3) if a not in (aa, ab))
            border += cal.BORDER_COMPUTE_S_PER_DIR * self.sub_shape[other] / 80.0
        return border

    def _model_compute_s(self) -> float:
        base = self.cells * cal.lbm_step_compute_ns_per_cell() * 1e-9
        base /= self.device.spec.lbm_throughput_scale
        return base + self._border_compute_s()

    def _model_window_s(self) -> float:
        per_cell = (290 * cal.GPU_NS_PER_ALU + 20 * cal.GPU_NS_PER_FETCH) * 1e-9
        return self.inner_cells() * per_cell / self.device.spec.lbm_throughput_scale

    def _model_agp_s(self) -> float:
        if not self.face_dirs and not self.edge_dirs:
            return 0.0
        up_rate = cal.effective_upstream_bytes_per_s(self.device.bus)
        down_rate = cal.effective_downstream_bytes_per_s(self.device.bus)
        t = cal.READBACK_FLUSH_S
        for (axis, _) in self.face_dirs:
            nbytes = 5 * self.face_cells(axis) * 4
            t += nbytes / up_rate                       # single gathered read
            t += cal.UPLOAD_OVERHEAD_S + nbytes / down_rate
            t += 2 * self.device.pass_time_s(GATHER_PROGRAM, self.face_cells(axis))
        for _ in self.edge_dirs:
            t += cal.EDGE_PACK_OVERHEAD_S + cal.UPLOAD_OVERHEAD_S
        return t

    # -- per-step protocol --------------------------------------------------
    def begin_step(self) -> None:
        """Reset the step's timing buckets."""
        self.compute_s = 0.0
        self.agp_s = 0.0
        self.overlap_window_s = 0.0
        if not self.timing_only:
            self.device.reset_clock()

    def collide_phase(self) -> None:
        """Macro + collision passes; records the overlap window."""
        if self.timing_only:
            self.overlap_window_s = self._model_window_s()
            return
        before = self.device.clock_s
        self.solver.run_macro_pass()
        self.solver.run_collide_passes()
        collide_s = self.device.clock_s - before
        inner_frac = self.inner_cells() / self.cells
        self.overlap_window_s = collide_s * inner_frac

    # -- split collide (executed overlap protocol) ------------------------
    #: The split phases below are bit-identical to :meth:`collide_phase`,
    #: so the driver may overlap the exchange with the inner pass.
    overlap_safe = True

    def collide_boundary_phase(self) -> None:
        """Macro + collide over the depth-1 shell only ("multiple small
        rectangles", Sec 4.3).  After this the border layers hold their
        post-collision values, so the halo exchange can start while
        :meth:`collide_inner_phase` renders the core."""
        if self.timing_only:
            return
        for rect, zr in self.solver.split_pieces()[0]:
            self.solver.run_macro_pass(rect=rect, z_range=zr)
            self.solver.run_collide_passes(rect=rect, z_range=zr)

    def collide_inner_phase(self) -> None:
        """Macro + collide over the inner core; its device time *is* the
        modeled overlap window (macro + 5 collide passes over the inner
        cells — the same anchor as :meth:`_model_window_s`)."""
        if self.timing_only:
            self.overlap_window_s = self._model_window_s()
            return
        before = self.device.clock_s
        for rect, zr in self.solver.split_pieces()[1]:
            self.solver.run_macro_pass(rect=rect, z_range=zr)
            self.solver.run_collide_passes(rect=rect, z_range=zr)
        self.overlap_window_s = self.device.clock_s - before

    def read_borders(self, axis: int,
                     out: dict[int, np.ndarray] | None = None) -> dict[int, np.ndarray]:
        """Read both border faces along ``axis`` (numeric mode).

        With ``out`` (``{-1: buf, 1: buf}`` preallocated face arrays)
        the texture layers are gathered straight into the buffers.
        """
        res: dict[int, np.ndarray] = {} if out is None else out
        for direction in (-1, 1):
            side = "low" if direction == -1 else "high"
            res[direction] = self.solver.get_border_layer(
                axis, side, out=None if out is None else out[direction])
        return res

    def write_ghost(self, axis: int, direction: int, data: np.ndarray) -> None:
        """Install a received ghost face (numeric mode)."""
        side = "low" if direction == -1 else "high"
        self.solver.set_ghost_layer(data, axis, side)

    def read_packed(self, manifest, out: np.ndarray) -> np.ndarray:
        """Gather the merged per-neighbor payload from the textures.

        Only the pull protocol exists on the GPU path (AA is a CPU
        kernel), so the source is always the border layer; each segment
        gathers its five streaming links straight into the wire buffer.
        """
        if manifest.mode != "pull":
            raise ValueError("GPU ranks only run the pull exchange; "
                             f"got manifest mode {manifest.mode!r}")
        buf = out.reshape(-1)
        for seg in manifest.segments:
            side = "low" if seg.side == -1 else "high"
            view = buf[seg.offset:seg.offset + seg.floats].reshape(
                (len(seg.links),) + manifest.plane_shape)
            self.solver.get_border_layer(manifest.axis, side, out=view,
                                         links=seg.links)
        return out

    def write_packed(self, manifest, buf: np.ndarray) -> None:
        """Scatter a received merged payload into the ghost texels."""
        if manifest.mode != "pull":
            raise ValueError("GPU ranks only run the pull exchange; "
                             f"got manifest mode {manifest.mode!r}")
        flat = buf.reshape(-1)
        for seg in manifest.segments:
            side = "low" if -seg.side == -1 else "high"
            view = flat[seg.offset:seg.offset + seg.floats].reshape(
                (len(seg.links),) + manifest.plane_shape)
            self.solver.set_ghost_layer(view, manifest.axis, side,
                                        links=seg.links)

    def fill_ghost_zero_gradient(self, axis: int, direction: int) -> None:
        """Global non-periodic boundary: copy own border outward."""
        side = "low" if direction == -1 else "high"
        border = self.solver.get_border_layer(axis, side)
        self.solver.set_ghost_layer(border, axis, side)

    def charge_transfers(self) -> None:
        """Charge the step's AGP cost (gather passes + single readback +
        per-direction uploads), identically in both modes."""
        self.agp_s = self._model_agp_s()

    def finish_step(self) -> None:
        """Stream + boundary passes; close out compute accounting."""
        if self.timing_only:
            self.compute_s = self._model_compute_s()
            return
        self.solver.run_stream_passes()
        if self.solver.has_solid:
            self.solver.run_bounce_passes()
        if self.solver.inlet is not None:
            self.solver._apply_inlet()
        if self.solver.outflow is not None:
            self.solver._apply_outflow()
        # Everything charged on the device this step is compute; the AGP
        # bucket is modeled separately by charge_transfers().
        self.compute_s = self.device.clock_s + self._border_compute_s()
