"""Cost models for the weighted decomposition and the rebalance loop.

PR 4 made ranks deliberately heterogeneous — the sparse
fluid-compacted kernel steps ~2.2x faster than the dense paths at high
solid fraction — yet equal boxes give every rank the same cell count,
so the slowest dense rank sets the cluster step time.  Following the
patch-based balancing of Feichtinger et al. (arXiv:1007.1388), this
module turns two cost signals into the per-axis cut profiles that
:func:`repro.core.decomposition.weighted_cuts` partitions:

* **predicted** (:func:`occupancy_cost_field`) — per-cell cost from
  the global solid mask: 1.0 for fluid, :data:`DEFAULT_SOLID_COST_WEIGHT`
  for solid.  The weight is derived from the PR 6 autotuner's measured
  kernel rates: at 62% solid occupancy the sparse rank steps ~2.2x
  faster than a dense rank, so per-cell
  ``0.38 * 1.0 + 0.62 * w = 1 / 2.2`` gives ``w ~= 0.12``.
* **measured** (:func:`measured_cost_field`) — per-cell cost density
  from ``trace_imbalance_rows`` busy-time analytics of an actual run
  (``busy_s / cells`` spread over each rank's block).  This is the
  feedback signal of the rebalance loop: run, measure, re-cut.

:func:`run_balance_check` is the ``python -m repro check-balance``
gate: on a half-city/half-open domain with mixed dense/sparse ranks it
requires weighted cuts to be bit-identical to the single-domain
reference, to beat the uniform imbalance, and — after one measured
:meth:`rebalance` — to reach max/mean busy-time imbalance <= 1.1 on
the serial and processes backends.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import BlockDecomposition, weighted_cuts

#: Relative per-cell cost of a solid site vs a fluid site, derived from
#: the autotuner's measured sparse-vs-dense rates (see module docstring).
DEFAULT_SOLID_COST_WEIGHT = 0.12

#: Acceptance bar for the measured rebalanced imbalance (ROADMAP item 2).
IMBALANCE_TARGET = 1.1


def occupancy_cost_field(global_shape, solid=None,
                         solid_weight: float = DEFAULT_SOLID_COST_WEIGHT
                         ) -> np.ndarray:
    """Predicted per-cell step cost from the solid mask.

    With no mask every cell costs the same and the weighted cuts
    degenerate to the uniform ones.
    """
    global_shape = tuple(int(s) for s in global_shape)
    if solid is None:
        return np.ones(global_shape, dtype=np.float64)
    solid = np.asarray(solid, dtype=bool)
    if solid.shape != global_shape:
        raise ValueError(f"solid mask shape {solid.shape} != "
                         f"global lattice {global_shape}")
    return np.where(solid, float(solid_weight), 1.0)


def rate_for_row(row) -> float | None:
    """Measured probe rate for a kernel-report row's chosen pick.

    Autotune rates are keyed per (kernel, layout) pair — the bare
    kernel name for the SoA layout and ``"<kernel>/aos"`` for AoS (see
    :func:`repro.lbm.autotune.rate_key`) — so the lookup tries the
    pair key for the row's reported layout first and falls back to the
    bare kernel key, which also keeps pre-layout reports working.
    """
    rates = row.get("rates") or {}
    kernel = row.get("kernel")
    layout = row.get("layout", "soa")
    rate = rates.get(f"{kernel}/{layout}") if layout != "soa" else None
    return rate if rate else rates.get(kernel)


def rates_cost_field(decomp: BlockDecomposition, report_rows) -> np.ndarray:
    """Predicted per-cell cost from the autotuner's probe rates.

    ``report_rows`` is :meth:`kernel_report` output; a rank whose
    measured probe rates include its chosen kernel contributes a cost
    density of ``1 / rate`` (seconds per cell, up to the common MLUPS
    scale); ranks without probe data fall back to the mean density so
    they neither attract nor repel cells.
    """
    densities: dict[int, float | None] = {}
    for row in report_rows:
        rank = int(row["rank"])
        rate = rate_for_row(row)
        densities[rank] = (1.0 / float(rate)) if rate else None
    known = [d for d in densities.values() if d is not None]
    fallback = float(np.mean(known)) if known else 1.0
    cost = np.empty(decomp.global_shape, dtype=np.float64)
    for block in decomp.blocks:
        d = densities.get(block.rank)
        cost[block.slices] = fallback if d is None else d
    return cost


def measured_cost_field(decomp: BlockDecomposition, busy_s,
                        base: np.ndarray | None = None) -> np.ndarray:
    """Per-cell cost density from measured per-rank busy seconds.

    ``busy_s`` maps rank -> busy seconds (or is a dense sequence).
    Each block's total cost equals its measured busy time; *within* the
    block the cost follows ``base`` (typically the occupancy field, so
    a re-cut that moves a boundary into a denser or emptier region
    extrapolates sensibly) or is uniform when ``base`` is None — the
    finest attribution one busy-time scalar per rank supports.
    """
    if not isinstance(busy_s, dict):
        busy_s = {rank: t for rank, t in enumerate(busy_s)}
    missing = [b.rank for b in decomp.blocks if b.rank not in busy_s]
    if missing:
        raise ValueError(f"no busy-time signal for ranks {missing}")
    if base is not None:
        base = np.asarray(base, dtype=np.float64)
        if base.shape != decomp.global_shape:
            raise ValueError(f"base cost field shape {base.shape} != "
                             f"global lattice {decomp.global_shape}")
    cost = np.empty(decomp.global_shape, dtype=np.float64)
    for block in decomp.blocks:
        busy = float(busy_s[block.rank])
        if base is None:
            cost[block.slices] = busy / block.cells
        else:
            local = base[block.slices]
            total = float(local.sum())
            if total > 0.0:
                cost[block.slices] = local * (busy / total)
            else:
                cost[block.slices] = busy / block.cells
    return cost


def predicted_rank_costs(decomp: BlockDecomposition,
                         cost_field: np.ndarray) -> list[float]:
    """Per-rank total cost of a decomposition under a cost field."""
    cost = np.asarray(cost_field, dtype=np.float64)
    if cost.shape != decomp.global_shape:
        raise ValueError(f"cost field shape {cost.shape} != "
                         f"global lattice {decomp.global_shape}")
    return [float(cost[b.slices].sum()) for b in decomp.blocks]


def imbalance(values) -> float:
    """The headline max/mean factor (1.0 = perfect balance)."""
    values = [float(v) for v in values]
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    return (max(values) / mean) if mean > 0 else 0.0


def predicted_imbalance(decomp: BlockDecomposition,
                        cost_field: np.ndarray) -> float:
    """Modeled max/mean cost imbalance of ``decomp`` under the field."""
    return imbalance(predicted_rank_costs(decomp, cost_field))


# ---------------------------------------------------------------------------
# the check-balance gate
# ---------------------------------------------------------------------------

def _city_half_domain(shape) -> np.ndarray:
    """Dense voxelized city on the low-x half, open terrain on the rest.

    The split produces the mixed dense/sparse rank population the gate
    needs: with ranks arranged along x, the city ranks run the sparse
    kernel over mostly-solid blocks while the open ranks sweep nearly
    all-fluid blocks — the worst case for equal boxes.
    """
    from repro.urban.city import times_square_like
    from repro.urban.voxelize import voxelize_city

    nx, ny, nz = shape
    half = nx // 2
    city = voxelize_city(times_square_like(seed=7), (half, ny, nz),
                         resolution_m=24.0, ground_layers=2)
    solid = np.zeros(shape, dtype=bool)
    solid[:half] = city
    solid[half:, :, :1] = True    # bare ground plane downstream
    return solid

def run_balance_check(shape=(96, 40, 4), arrangement=(4, 1, 1),
                      steps: int = 8, threshold: float = IMBALANCE_TARGET,
                      backends=("serial", "processes"),
                      max_rebalances: int = 3) -> dict:
    """The ``python -m repro check-balance`` gate.

    For each backend: step a mixed dense/sparse voxelized-city domain
    under uniform cuts, then occupancy-weighted cuts, then close the
    loop — re-cut from each segment's *measured* per-rank busy time
    (up to ``max_rebalances`` run segments, stopping early once the
    target is met; iteration is the point, since moving a cut can flip
    a rank between the dense and sparse kernels).  Requires

    * bit-identical gathered distributions to the single-domain
      reference under every cut layout (the field advances through the
      segments, so each handoff is also the :meth:`rebalance`
      gather/reload path);
    * the weighted cuts to be non-uniform and the loop's best measured
      busy-time imbalance to improve on uniform;
    * the rebalanced imbalance to reach ``threshold`` (<= 1.1).

    Uses ``autotune="heuristic"`` so kernel choices (and hence the
    gate) are deterministic, and thread-CPU busy times (see
    :func:`~repro.perf.report.trace_imbalance_rows`) so the measured
    signal is contention-immune.  Raises AssertionError on any
    violation.
    """
    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
    from repro.lbm.solver import LBMSolver
    from repro.perf.report import trace_imbalance_rows

    shape = tuple(int(s) for s in shape)
    arrangement = tuple(int(a) for a in arrangement)
    solid = _city_half_domain(shape)
    rng = np.random.default_rng(17)
    ref = LBMSolver(shape, tau=0.7, solid=solid)
    u0 = (0.02 * rng.standard_normal((3,) + shape)).astype(np.float32)
    u0[:, solid] = 0.0
    ref.initialize(rho=np.ones(shape, np.float32), u=u0)
    # Reference checkpoints: segment k runs checkpoints[k] ->
    # checkpoints[k+1].  Uniform and weighted both replay segment 0;
    # rebalance iteration i continues from segment i's endpoint.
    checkpoints = [ref.f.copy()]
    for _ in range(1 + max_rebalances):
        ref.step(steps)
        checkpoints.append(ref.f.copy())

    sub = tuple(s // a for s, a in zip(shape, arrangement))
    report: dict = {"shape": shape, "arrangement": arrangement,
                    "steps": steps, "threshold": float(threshold),
                    "solid_fraction": float(solid.mean()), "backends": {}}
    for backend in backends:

        def run_segment(cfg_kwargs, segment, label):
            cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement,
                                tau=0.7, solid=solid, backend=backend,
                                autotune="heuristic", **cfg_kwargs)
            with CPUClusterLBM(cfg) as cluster:
                cluster.load_global_distributions(checkpoints[segment])
                # Warm up untraced (first-touch allocations, worker
                # spin-up) so busy times measure steady-state kernels.
                cluster.step(1)
                cluster.enable_tracing()
                cluster.step(steps - 1)
                if not np.array_equal(cluster.gather_distributions(),
                                      checkpoints[segment + 1]):
                    raise AssertionError(
                        f"{label} cuts diverged from the single-domain "
                        f"reference on backend {backend!r}")
                _, summary = trace_imbalance_rows(cluster.tracer)
                cuts = cluster.decomp.cuts
                rebal_cuts = cluster.rebalance_cuts()
            return cuts, summary["max_over_mean"], rebal_cuts

        uni_cuts, uni_imb, _ = run_segment({}, 0, "uniform")
        wei_cuts, wei_imb, next_cuts = run_segment(
            {"decomposition": "weighted"}, 0, "weighted")
        if wei_cuts == uni_cuts:
            raise AssertionError(
                "weighted decomposition produced uniform cuts on a "
                "mixed dense/sparse domain")
        # Close the loop: re-cut from each segment's measured busy time
        # and continue the run under the new cuts — what rebalance()
        # does between run segments — until the target is met.
        history = [float(wei_imb)]
        final_cuts = wei_cuts
        for i in range(max_rebalances):
            if history[-1] <= threshold:
                break
            final_cuts, imb, next_cuts = run_segment(
                {"cuts": next_cuts}, 1 + i, f"rebalance-{i + 1}")
            history.append(float(imb))
        best_imb = min(history)
        if best_imb > threshold:
            raise AssertionError(
                f"backend {backend!r}: busy-time imbalance after "
                f"{len(history) - 1} rebalance(s) is {history[-1]:.3f} "
                f"(history {[round(h, 3) for h in history]}) — did not "
                f"reach the {threshold:.2f} target (uniform was "
                f"{uni_imb:.3f})")
        if best_imb >= uni_imb:
            raise AssertionError(
                f"backend {backend!r}: weighted/rebalanced imbalance "
                f"{best_imb:.3f} did not improve on uniform {uni_imb:.3f}")
        report["backends"][backend] = {
            "uniform_cuts": uni_cuts, "weighted_cuts": wei_cuts,
            "rebalanced_cuts": final_cuts,
            "imbalance_uniform": float(uni_imb),
            "imbalance_weighted": float(wei_imb),
            "imbalance_rebalanced": float(history[-1]),
            "imbalance_history": history,
            "rebalances": len(history) - 1,
        }
    return report
