"""Process-parallel execution backend for the cluster drivers.

``ClusterConfig.backend = "processes"`` replaces the coordinator's
in-process node loop with one persistent OS process per cluster rank —
the shape of the paper's real cluster, where every node steps its
sub-domain concurrently.  NumPy's big collide/stream sweeps hold the
GIL, so threads cannot deliver that concurrency; processes can.

Protocol (see DESIGN.md §5c):

* **Spawn once.**  The driver creates the shared segments
  (:mod:`repro.core.shm`), builds one picklable :class:`WorkerSpec`
  per rank, and forks/spawns the workers at construction.  Workers
  build their own :class:`~repro.core.cpu_node.CPUNode` /
  :class:`~repro.core.gpu_node.GPUNode` from the spec — the
  coordinator holds only lightweight :class:`RankProxy` stand-ins.
* **Zero-copy stepping.**  A step command is a tiny tuple on a pipe.
  Inside the step, workers exchange halos through the shared
  mailboxes: per axis, each rank packs its two border faces into its
  own mailbox slot ``t % 2``, waits on the shared barrier, then
  unpacks its neighbours' opposite faces into its ghost layers.  The
  double-buffered slots make one barrier per axis sufficient: a rank
  may already pack step ``t+1`` (parity ``t+1 & 1``) while a slower
  neighbour still reads step ``t``'s slot.  Sequential axis order
  preserves the two-hop diagonal routing bit-for-bit.
* **Aggregated observability.**  Each step reply carries the rank's
  modeled timing buckets (``compute_s``/``agp_s``/``overlap_window_s``)
  and a :class:`~repro.perf.counters.KernelCounters` summary delta;
  the driver merges them so ``StepTiming`` and the perf counters look
  the same as under the serial backend.
* **Fail loudly, clean up always.**  A killed or hung worker breaks
  the shared barrier; the coordinator aborts it, drains the surviving
  ranks' error replies, and raises one aggregated ``RuntimeError``
  (mirroring ``SimCluster.run``).  ``shutdown()`` — also reachable via
  the driver's context manager — terminates workers and unlinks every
  segment; a :mod:`weakref` finalizer covers drivers that were never
  shut down.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import weakref
from dataclasses import dataclass, field
from threading import BrokenBarrierError

import numpy as np

from repro.core.shm import RankSegments, segment_name, unique_token, unlink_segment_names
from repro.gpu.specs import BusSpec, CPUSpec, GPUSpec
from repro.perf.counters import KernelCounters
from repro.perf.telemetry import MetricsRegistry, rss_bytes
from repro.perf.trace import Tracer, estimate_clock_offset

#: Fallback start method order: fork is cheap and keeps tests fast on
#: Linux; spawn is the portable fallback.
_START_METHODS = ("fork", "spawn")


def _mp_context():
    for method in _START_METHODS:
        if method in mp.get_all_start_methods():
            return mp.get_context(method)
    return mp.get_context()


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker needs to rebuild its rank's node.

    Pickled exactly once, at spawn; per-step traffic is scalars only.
    """

    rank: int
    n_ranks: int
    node_kind: str                      # "cpu" | "gpu"
    sub_shape: tuple[int, int, int]
    tau: float
    periodic: tuple[bool, bool, bool]
    neighbors: dict                     # (axis, direction) -> rank | None
    face_dirs: tuple
    edge_dirs: tuple
    solid: np.ndarray | None
    inlet: tuple | None
    outflow: tuple | None
    force: tuple | None
    use_sse: bool
    cpu_spec: CPUSpec
    gpu_spec: GPUSpec
    bus: BusSpec
    seg_names: dict                     # own {"fg","mail","stage"} names
    mail_names: tuple                   # every rank's mailbox segment name
    peer_sub_shapes: tuple              # every rank's block shape (may differ)
    barrier_timeout_s: float
    q: int = 19
    kernel: str = "auto"                # per-rank hot-path selection
    sparse_threshold: float = 0.5
    autotune: str = "heuristic"         # "heuristic" | "measured"
    wire: str = "merged"                # halo wire: "merged" | "perface"
    layout: str = "soa"                 # distribution layout: "soa" | "aos" | "auto"


class RankProxy:
    """Coordinator-side stand-in for a node running in a worker.

    Exposes exactly the per-step timing attributes the driver's
    ``StepTiming`` assembly reads from real nodes.
    """

    __slots__ = ("rank", "compute_s", "agp_s", "overlap_window_s",
                 "kernel_used", "solid_fraction", "kernel_reason",
                 "kernel_rates", "kernel_layout")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.compute_s = 0.0
        self.agp_s = 0.0
        self.overlap_window_s = 0.0
        self.kernel_used = "unstepped"
        self.solid_fraction = 0.0
        self.kernel_reason: str | None = None
        self.kernel_rates: dict | None = None
        self.kernel_layout = "soa"


def _build_node(spec: WorkerSpec):
    if spec.node_kind == "gpu":
        from repro.core.gpu_node import GPUNode
        return GPUNode(spec.rank, spec.sub_shape, spec.tau, solid=spec.solid,
                       face_dirs=list(spec.face_dirs),
                       edge_dirs=list(spec.edge_dirs), timing_only=False,
                       gpu_spec=spec.gpu_spec, bus=spec.bus,
                       inlet=spec.inlet, outflow=spec.outflow,
                       force=spec.force)
    from repro.core.cpu_node import CPUNode
    return CPUNode(spec.rank, spec.sub_shape, spec.tau, solid=spec.solid,
                   face_dirs=list(spec.face_dirs),
                   edge_dirs=list(spec.edge_dirs), timing_only=False,
                   cpu_spec=spec.cpu_spec, use_sse=spec.use_sse,
                   inlet=spec.inlet, outflow=spec.outflow, force=spec.force,
                   kernel=spec.kernel,
                   sparse_threshold=spec.sparse_threshold,
                   autotune=spec.autotune, layout=spec.layout)


class _Worker:
    """The persistent per-rank loop executed inside the worker process."""

    def __init__(self, spec: WorkerSpec, conn, barrier) -> None:
        self.spec = spec
        self.conn = conn
        self.barrier = barrier
        self.counters = KernelCounters()
        #: Per-rank span recorder; off until the coordinator sends a
        #: ("trace", True) command.  Spans are drained into every step
        #: reply and re-based onto the coordinator clock on merge.
        self.tracer = Tracer(enabled=False, rank=spec.rank)
        #: Per-rank live metrics; off until a ("telemetry", True)
        #: command.  Snapshot deltas ride every step reply and merge
        #: into the coordinator registry keyed by this rank.
        self.metrics = MetricsRegistry(enabled=False, rank=spec.rank)
        self.broken: str | None = None
        self.step_count = 0
        self.node = _build_node(spec)
        solver = getattr(self.node, "solver", None)
        if solver is not None and hasattr(solver, "tracer"):
            solver.tracer = self.tracer
        if solver is not None and hasattr(solver, "metrics"):
            solver.metrics = self.metrics
        # Attach own segments, then every peer's mailbox for unpacking.
        # Peer mailbox layouts follow the *peer's* block shape — equal
        # to ours only under uniform cuts.
        self.segs = RankSegments.attach(spec.seg_names, spec.sub_shape,
                                        spec.q, spec.wire)
        self.peer_mail: dict[int, RankSegments] = {spec.rank: self.segs}
        for peer in sorted({p for p in spec.neighbors.values()
                            if p is not None and p != spec.rank}):
            self.peer_mail[peer] = RankSegments.attach(
                {"fg": None, "mail": spec.mail_names[peer], "stage": None,
                 "health": None},
                spec.peer_sub_shapes[peer], spec.q, spec.wire)
        if spec.wire == "merged":
            # Packing manifests: a neighbour's cross-section always
            # matches ours under the tensor-product cuts, so this
            # rank's own plan describes both outgoing and incoming
            # merged payloads.
            from repro.core.halo import HaloPlan
            self.plan = HaloPlan(spec.sub_shape)
        # A non-SoA (or autotuned, hence rebindable) layout cannot live
        # on the shared segment: gathers/loads stage copies instead.
        self._fg_adopted = (spec.node_kind == "cpu"
                            and spec.layout == "soa")
        if self._fg_adopted:
            self._adopt_shared_fg()

    def _adopt_shared_fg(self) -> None:
        """Rebind the solver's double buffer onto the shared segment.

        After this the interior of the current buffer *is* the shared
        page set, so coordinator-side gather/load are plain memory
        reads/writes with no worker round-trip.
        """
        fg0, fg1 = self.segs.fg_bufs
        solver = self.node.solver
        fg0[...] = solver.fg
        solver.fg = fg0
        if self.spec.kernel == "aa":
            # The AA kernel is single-array: leave the lazy back
            # buffer unallocated (its absence is asserted by the
            # check-aa gate); the second shared buffer serves only as
            # the staging area for odd-parity gathers.
            return
        buf = solver._fg_next_buf
        fg1[...] = buf if buf is not None else 0.0
        solver._fg_next = fg1

    # -- halo exchange over shared mailboxes ----------------------------
    def _exchange(self) -> None:
        if self.spec.wire == "merged":
            self._exchange_merged()
            return
        if self.spec.kernel == "aa" and (self.step_count & 1):
            self._exchange_reverse()
            return
        node, spec = self.node, self.spec
        slot = self.step_count & 1
        own_mail = self.segs.mail
        for axis in range(3):
            node.read_borders(axis, out={-1: own_mail[axis][-1][slot],
                                         1: own_mail[axis][1][slot]})
            self._barrier_wait()
            for direction in (-1, 1):
                peer = spec.neighbors[(axis, direction)]
                if peer is None:
                    if spec.periodic[axis]:
                        node.write_ghost(axis, direction,
                                         own_mail[axis][-direction][slot])
                    else:
                        node.fill_ghost_zero_gradient(axis, direction)
                else:
                    node.write_ghost(
                        axis, direction,
                        self.peer_mail[peer].mail[axis][-direction][slot])

    def _exchange_merged(self) -> None:
        """Merged-wire exchange: each mailbox *is* one neighbor message.

        Per axis, each rank packs its two single-neighbor manifests
        (five face links over the full padded cross-section — rims
        included, so the two-hop diagonal routing still rides along)
        into its own 5-link mailboxes, waits on the shared barrier,
        then unpacks each neighbour's opposite mailbox through the
        mirrored manifest.  The mode follows the kernel/parity exactly
        like the coordinator backends: ``aa_reverse`` payloads are
        ghost planes folded onto the receiver's border (crossing links
        only — the manifest carries exactly those five), everything
        else is borders into ghosts.  Same double-buffered slots and
        one-barrier-per-axis cadence as the per-face wire.
        """
        node, spec = self.node, self.spec
        if spec.kernel == "aa":
            mode = "aa_reverse" if (self.step_count & 1) else "aa_forward"
        else:
            mode = "pull"
        slot = self.step_count & 1
        own_mail = self.segs.mail
        plan = self.plan
        for axis in range(3):
            for direction in (-1, 1):
                node.read_packed(
                    plan.neighbor_manifest(axis, (direction,), mode),
                    own_mail[axis][direction][slot])
            self._barrier_wait()
            for direction in (-1, 1):
                peer = spec.neighbors[(axis, direction)]
                if peer is None and not spec.periodic[axis]:
                    # True domain edge: zero-gradient fill on forward
                    # modes, local crossing-slot fold after an AA odd
                    # scatter (no neighbour to ship the pushes to).
                    if mode == "aa_reverse":
                        node.fold_border_zero_gradient(axis, direction)
                    else:
                        node.fill_ghost_zero_gradient(axis, direction)
                    continue
                # The peer at (axis, direction) packed its side
                # -direction; a periodic self-wrap reads this rank's
                # own opposite mailbox.
                mail = (own_mail if peer is None
                        else self.peer_mail[peer].mail)
                node.write_packed(
                    plan.neighbor_manifest(axis, (-direction,), mode),
                    mail[axis][-direction][slot])

    def _exchange_reverse(self) -> None:
        """Odd-step AA exchange: ghost planes travel back to owners.

        Mirror image of :meth:`_exchange` (see
        ``_ClusterLBMBase._exchange_reverse``): each rank mails its two
        ghost planes — holding the populations its border cells just
        scattered outward — and after the barrier folds the neighbours'
        (or, on a periodic self-wrap, its own) opposite ghost planes
        onto its border layers, crossing link slots only.  The same
        double-buffered slots and one-barrier-per-axis cadence apply.
        """
        node, spec = self.node, self.spec
        slot = self.step_count & 1
        own_mail = self.segs.mail
        for axis in range(3):
            node.read_ghost_planes(axis,
                                   out={-1: own_mail[axis][-1][slot],
                                        1: own_mail[axis][1][slot]})
            self._barrier_wait()
            for direction in (-1, 1):
                peer = spec.neighbors[(axis, direction)]
                if peer is None:
                    if not spec.periodic[axis]:
                        # True domain edge: fold the outward pushes
                        # back locally (zero-gradient closure).
                        node.fold_border_zero_gradient(axis, direction)
                        continue
                    node.write_border_crossing(
                        axis, direction, own_mail[axis][-direction][slot])
                else:
                    node.write_border_crossing(
                        axis, direction,
                        self.peer_mail[peer].mail[axis][-direction][slot])

    def _barrier_wait(self) -> None:
        if self.spec.n_ranks < 2:
            return
        try:
            self.barrier.wait(timeout=self.spec.barrier_timeout_s)
        except BrokenBarrierError:
            self.broken = ("halo barrier broken (a peer died or timed out "
                           f"after {self.spec.barrier_timeout_s:g}s)")
            raise

    def _step(self, n: int) -> dict:
        node, rec, tracer = self.node, self.counters, self.tracer
        tel = self.metrics.enabled
        health = self.segs.health if tel else None
        step_hist = self.metrics.histogram("step.seconds") if tel else None
        batch_busy = 0.0
        if health is not None:
            # Heartbeat slots (see shm.HEALTH_SLOTS): the coordinator
            # watchdog reads these live, so mark busy *before* work
            # starts and refresh hb_time at every step boundary.
            health[2] = 1.0
            health[0] = time.perf_counter()
        for _ in range(int(n)):
            t_it = time.perf_counter() if tel else 0.0
            tracer.begin_step(self.step_count)
            node.begin_step()
            with rec.phase("cluster.collide"), \
                    tracer.span("cluster.collide"):
                node.collide_phase()
            with rec.phase("cluster.exchange"), \
                    tracer.span("cluster.exchange"):
                self._exchange()
            node.charge_transfers()
            with rec.phase("cluster.finish"), \
                    tracer.span("cluster.finish"):
                node.finish_step()
            self.step_count += 1
            if tel:
                now = time.perf_counter()
                dt = now - t_it
                batch_busy += float(getattr(node, "busy_s", 0.0))
                step_hist.observe(dt)
                self.metrics.counter("worker.steps").inc()
                health[3] = dt
                health[1] = float(self.step_count)
                health[0] = now
        reply = {
            "compute_s": node.compute_s,
            "agp_s": node.agp_s,
            "overlap_window_s": node.overlap_window_s,
            "kernel_used": getattr(node, "kernel_used", "n/a"),
            "solid_fraction": float(getattr(node, "solid_fraction", 0.0)),
            "kernel_reason": getattr(node, "kernel_reason", None),
            "kernel_rates": getattr(node, "kernel_rates", None),
            "kernel_layout": getattr(node, "kernel_layout", "soa"),
            "counters": rec.summary(),
            "cur": self.step_count & 1,
        }
        if tracer.enabled:
            reply["spans"] = tracer.drain()
        if tel:
            reply["metrics"] = self.metrics.snapshot(reset=True)
            health[4] = batch_busy
            health[5] = float(rss_bytes())
            health[2] = 0.0
            health[0] = time.perf_counter()
        rec.reset()
        return reply

    def _gather(self) -> dict:
        cur = self.step_count & 1
        if self.spec.node_kind == "gpu":
            self.segs.stage[...] = self.node.solver.distributions()
        elif not self._fg_adopted:
            # Non-adopted layouts (AoS or autotuned): the solver's
            # array never lives on the shared segment, so stage a
            # canonical copy into the parity-matching shared buffer.
            solver = self.node.solver
            inner = (slice(None),) + tuple(slice(1, -1)
                                           for _ in solver.shape)
            self.segs.fg_bufs[cur][inner] = solver.f
        elif self.spec.kernel == "aa" and (self.step_count & 1):
            # Odd AA parity: the single shared array holds the rotated
            # mid-pair layout.  Stage the canonical read-only
            # reconstruction into the (otherwise unused) spare buffer
            # so the coordinator reads ordinary distributions.
            solver = self.node.solver
            fg1 = self.segs.fg_bufs[1]
            inner = (slice(None),) + tuple(slice(1, -1)
                                           for _ in solver.shape)
            fg1[inner] = solver.f
        else:
            # CPU distributions already live in the shared fg buffers.
            pass
        return {"cur": cur}

    def _load(self) -> dict:
        if self.spec.node_kind == "gpu":
            self.node.solver.load_distributions(np.array(self.segs.stage))
        elif not self._fg_adopted:
            # Mirror of the staged gather: the coordinator wrote the
            # shared interior; copy it into the solver's own array.
            solver = self.node.solver
            cur = self.step_count & 1
            inner = (slice(None),) + tuple(slice(1, -1)
                                           for _ in solver.shape)
            solver.f[...] = self.segs.fg_bufs[cur][inner].astype(
                solver.dtype, copy=False)
        return {}

    def _initialize(self, rho, u) -> dict:
        self.node.solver.initialize(rho=rho, u=u)
        return {}

    def _trace(self, enabled: bool) -> dict:
        """Toggle span recording; replies with this process's clock.

        The coordinator timestamps the command round-trip and uses the
        returned ``perf_counter`` reading to estimate this worker's
        clock offset (midpoint method), so merged spans land on the
        coordinator timeline.  On Linux ``perf_counter`` is the shared
        ``CLOCK_MONOTONIC``, making the offset ~0; the handshake keeps
        the re-basing correct where it is not.
        """
        self.tracer.enabled = bool(enabled)
        if not enabled:
            self.tracer.clear()
        return {"now": time.perf_counter()}

    def _telemetry(self, enabled: bool) -> dict:
        """Toggle live metrics; replies with this process's clock.

        Same midpoint clock handshake as :meth:`_trace` — the
        coordinator re-bases shared-memory heartbeat timestamps onto
        its own timeline with the estimated offset.  Enabling also
        writes an immediate baseline heartbeat so the watchdog never
        sees an all-zero strip.
        """
        self.metrics.enabled = bool(enabled)
        if not enabled:
            self.metrics.reset()
        else:
            health = self.segs.health
            if health is not None:
                health[1] = float(self.step_count)
                health[5] = float(rss_bytes())
                health[2] = 0.0
                health[0] = time.perf_counter()
        return {"now": time.perf_counter()}

    def run(self) -> None:
        parent = os.getppid()
        try:
            self.conn.send(("ready", self.spec.rank))
            while True:
                # Poll so an orphaned worker notices its coordinator
                # vanished instead of blocking on the pipe forever.
                if not self.conn.poll(1.0):
                    if os.getppid() != parent:
                        return
                    continue
                try:
                    msg = self.conn.recv()
                except EOFError:
                    return
                cmd = msg[0]
                if cmd == "shutdown":
                    self.conn.send(("bye", self.spec.rank))
                    return
                try:
                    if self.broken and cmd == "step":
                        raise RuntimeError(
                            f"worker rank {self.spec.rank} is broken: "
                            f"{self.broken}")
                    if cmd == "step":
                        payload = self._step(msg[1])
                    elif cmd == "gather":
                        payload = self._gather()
                    elif cmd == "load":
                        payload = self._load()
                    elif cmd == "initialize":
                        payload = self._initialize(msg[1], msg[2])
                    elif cmd == "trace":
                        payload = self._trace(msg[1])
                    elif cmd == "telemetry":
                        payload = self._telemetry(msg[1])
                    else:
                        raise ValueError(f"unknown command {cmd!r}")
                except BrokenBarrierError:
                    self.conn.send(("error", self.spec.rank, self.broken))
                except Exception as exc:  # noqa: BLE001 - forwarded whole
                    self.conn.send(("error", self.spec.rank,
                                    f"{type(exc).__name__}: {exc}"))
                else:
                    self.conn.send(("done", self.spec.rank, payload))
        finally:
            for segs in self.peer_mail.values():
                if segs is not self.segs:
                    segs.close(unlink=False)
            self.segs.close(unlink=False)
            try:
                self.conn.close()
            except Exception:
                pass


def _worker_main(spec: WorkerSpec, conn, barrier) -> None:
    """Module-level entry point (picklable under the spawn method)."""
    _Worker(spec, conn, barrier).run()


@dataclass
class _Failure:
    rank: int
    reason: str


class ProcessBackend:
    """Coordinator handle for the persistent worker pool.

    The driver owns exactly one of these when
    ``ClusterConfig.backend == "processes"``; all methods are
    synchronous (a command is sent to every worker and all replies are
    awaited), so shared buffers are never read or written concurrently
    by both sides.
    """

    def __init__(self, specs_args: list[dict], node_kind: str,
                 timeout_s: float = 60.0) -> None:
        self.node_kind = node_kind
        self.timeout_s = float(timeout_s)
        self.n_ranks = len(specs_args)
        self.broken: str | None = None
        self._closed = False
        self.token = unique_token()
        ctx = _mp_context()
        self.barrier = ctx.Barrier(self.n_ranks)
        self.segments: list[RankSegments] = []
        self.procs: list[mp.Process] = []
        self.conns = []
        self.proxies = [RankProxy(r) for r in range(self.n_ranks)]
        # Per-rank block shapes: equal boxes historically, but weighted
        # decomposition sizes each rank's segments independently.
        sub_shapes = tuple(tuple(int(s) for s in a["sub_shape"])
                           for a in specs_args)
        q = specs_args[0].get("q", 19)
        wire = specs_args[0].get("wire", "merged")
        # Ranks whose layout is not statically SoA never adopt the
        # shared fg segment, so loads need an explicit copy-back step.
        self._needs_load = (node_kind == "cpu" and any(
            a.get("layout", "soa") != "soa" for a in specs_args))
        mail_names = tuple(segment_name(self.token, "mail", r)
                           for r in range(self.n_ranks))
        try:
            for rank in range(self.n_ranks):
                self.segments.append(RankSegments.create(
                    rank, sub_shapes[rank], q, self.token,
                    with_fg=(node_kind == "cpu"), wire=wire))
            all_names = [seg.names[k] for seg in self.segments
                         for k in ("fg", "mail", "stage", "health")]
            self._finalizer = weakref.finalize(
                self, _crash_cleanup, list(self.procs), all_names)
            for rank, args in enumerate(specs_args):
                spec = WorkerSpec(
                    rank=rank, n_ranks=self.n_ranks, node_kind=node_kind,
                    seg_names=self.segments[rank].names,
                    mail_names=mail_names,
                    peer_sub_shapes=sub_shapes,
                    barrier_timeout_s=self.timeout_s, q=q, **args)
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(target=_worker_main,
                                   args=(spec, child_conn, self.barrier),
                                   name=f"lbm-rank{rank}", daemon=True)
                proc.start()
                child_conn.close()
                self.conns.append(parent_conn)
                self.procs.append(proc)
            # The finalizer captured an empty proc list above; refresh.
            self._finalizer.detach()
            self._finalizer = weakref.finalize(
                self, _crash_cleanup, list(self.procs), all_names)
            self._await_all()
        except Exception:
            self.shutdown()
            raise

    # -- low-level messaging --------------------------------------------
    def _require_usable(self) -> None:
        if self._closed:
            raise RuntimeError(
                "process backend has been shut down; create a new driver")
        if self.broken:
            raise RuntimeError(
                f"process backend is broken ({self.broken}); "
                "shut the driver down and create a new one")

    def _broadcast(self, msg: tuple) -> None:
        for rank, conn in enumerate(self.conns):
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                self._fail_fast([_Failure(rank, "pipe closed (worker died)")])

    def _await_all(self) -> list[dict]:
        """Collect one reply per rank; abort loudly if any rank dies.

        A dead worker is detected by process liveness, not by waiting
        out the barrier timeout: the coordinator aborts the shared
        barrier so surviving ranks fail fast, then aggregates every
        rank's failure into one error (the ``SimCluster.run`` shape).
        """
        payloads: list[dict | None] = [None] * self.n_ranks
        pending = set(range(self.n_ranks))
        failures: list[_Failure] = []
        aborted = False
        deadline = time.monotonic() + self.timeout_s
        while pending:
            progressed = False
            for rank in sorted(pending):
                conn = self.conns[rank]
                try:
                    has_msg = conn.poll(0.02)
                except (OSError, EOFError):
                    has_msg = False
                if has_msg:
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        failures.append(_Failure(
                            rank, "connection lost (worker died)"))
                        pending.discard(rank)
                        progressed = True
                        continue
                    kind = msg[0]
                    if kind == "error":
                        failures.append(_Failure(rank, msg[2]))
                    elif kind in ("done", "ready", "bye"):
                        payloads[rank] = msg[2] if len(msg) > 2 else {}
                    pending.discard(rank)
                    progressed = True
                elif not self.procs[rank].is_alive():
                    code = self.procs[rank].exitcode
                    failures.append(_Failure(
                        rank, f"worker died (exit code {code})"))
                    pending.discard(rank)
                    progressed = True
            if failures and not aborted:
                # Release peers blocked on the shared barrier so they
                # report instead of hanging out their full timeout.
                aborted = True
                try:
                    self.barrier.abort()
                except Exception:
                    pass
                deadline = time.monotonic() + 5.0
            if pending and not progressed and time.monotonic() > deadline:
                for rank in sorted(pending):
                    failures.append(_Failure(
                        rank, f"no reply within {self.timeout_s:g}s (hung)"))
                pending.clear()
        if failures:
            self._fail_fast(failures)
        return payloads  # type: ignore[return-value]

    def _fail_fast(self, failures: list[_Failure]) -> None:
        self.broken = "; ".join(f"rank {f.rank}: {f.reason}"
                                for f in failures)
        raise RuntimeError(f"process backend failed: {self.broken}")

    def _command(self, msg: tuple) -> list[dict]:
        self._require_usable()
        self._broadcast(msg)
        return self._await_all()

    # -- driver-facing API ----------------------------------------------
    def step(self, n: int) -> list[dict]:
        """Advance all ranks ``n`` steps; returns per-rank reply dicts."""
        payloads = self._command(("step", int(n)))
        for proxy, payload in zip(self.proxies, payloads):
            proxy.compute_s = payload["compute_s"]
            proxy.agp_s = payload["agp_s"]
            proxy.overlap_window_s = payload["overlap_window_s"]
            proxy.kernel_used = payload.get("kernel_used", "n/a")
            proxy.solid_fraction = payload.get("solid_fraction", 0.0)
            proxy.kernel_reason = payload.get("kernel_reason")
            proxy.kernel_rates = payload.get("kernel_rates")
            proxy.kernel_layout = payload.get("kernel_layout", "soa")
        return payloads

    def gather_parts(self) -> list[np.ndarray]:
        """Per-rank interior distribution blocks.

        CPU ranks are read straight out of the shared ``fg`` buffers
        (zero-copy views — consume before ``shutdown``); GPU ranks are
        staged by the workers first.
        """
        payloads = self._command(("gather",))
        parts = []
        for rank, seg in enumerate(self.segments):
            if self.node_kind == "cpu":
                parts.append(seg.interior(payloads[rank]["cur"]))
            else:
                parts.append(seg.stage)
        return parts

    def load_parts(self, parts: list[np.ndarray]) -> None:
        """Scatter per-rank interior blocks into the workers' solvers."""
        self._require_usable()
        if self.node_kind == "cpu":
            # Workers are idle between commands, so writing the shared
            # interior directly is race-free and copy-free.
            payloads = self._command(("gather",))
            for rank, seg in enumerate(self.segments):
                seg.interior(payloads[rank]["cur"])[...] = parts[rank]
            if self._needs_load:
                # Non-adopted ranks copy the staged interior back into
                # their own (differently laid out) arrays.
                self._command(("load",))
        else:
            for seg, part in zip(self.segments, parts):
                seg.stage[...] = part
            self._command(("load",))

    def initialize(self, rho, u) -> None:
        self._command(("initialize", rho, u))

    def set_tracing(self, enabled: bool) -> None:
        """Toggle span recording on every worker and sync their clocks.

        Each worker replies with its own ``perf_counter`` reading; the
        midpoint of the command round-trip estimates the per-worker
        clock offset used to re-base drained spans onto the
        coordinator timeline (error bounded by half the round-trip).
        """
        t_send = time.perf_counter()
        payloads = self._command(("trace", bool(enabled)))
        t_recv = time.perf_counter()
        self._trace_offsets = [estimate_clock_offset(t_send, t_recv, p["now"])
                               for p in payloads]

    def trace_offset(self, rank: int) -> float:
        """Coordinator-clock offset for ``rank``'s drained spans."""
        offsets = getattr(self, "_trace_offsets", None)
        return offsets[rank] if offsets else 0.0

    def set_telemetry(self, enabled: bool) -> None:
        """Toggle live metrics on every worker and sync their clocks.

        The same midpoint handshake as :meth:`set_tracing`; the
        per-worker offsets re-base shared-memory heartbeat timestamps
        (:meth:`read_health`) onto the coordinator timeline so watchdog
        ages are comparable across processes.
        """
        t_send = time.perf_counter()
        payloads = self._command(("telemetry", bool(enabled)))
        t_recv = time.perf_counter()
        self._telemetry_offsets = [
            estimate_clock_offset(t_send, t_recv, p["now"])
            for p in payloads]

    def telemetry_offset(self, rank: int) -> float:
        """Coordinator-clock offset for ``rank``'s heartbeats."""
        offsets = getattr(self, "_telemetry_offsets", None)
        return offsets[rank] if offsets else 0.0

    def read_health(self) -> list[dict]:
        """Live per-rank heartbeat rows, re-based to the coordinator clock.

        Reads the shared health strips directly — no pipe traffic and
        no worker cooperation required, so this is safe to call from
        any thread while a step command is outstanding (the whole point
        of a watchdog).  Ranks that never heartbeat are omitted.
        """
        rows = []
        for rank, seg in enumerate(self.segments):
            strip = seg.health
            if strip is None or strip[0] == 0.0:
                continue
            rows.append({
                "rank": rank,
                "hb_time": float(strip[0]) + self.telemetry_offset(rank),
                "step": int(strip[1]),
                "busy": bool(strip[2]),
                "step_seconds": float(strip[3]),
                "busy_seconds": float(strip[4]),
                "rss_bytes": int(strip[5]),
            })
        return rows

    def worker_pids(self) -> list[int | None]:
        return [p.pid for p in self.procs]

    # -- lifecycle -------------------------------------------------------
    def shutdown(self) -> None:
        """Stop workers and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for rank, conn in enumerate(self.conns):
            if self.procs[rank].is_alive():
                try:
                    conn.send(("shutdown",))
                except Exception:
                    pass
        deadline = time.monotonic() + 5.0
        for proc in self.procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self.conns:
            try:
                conn.close()
            except Exception:
                pass
        for seg in self.segments:
            seg.close(unlink=True)
        if getattr(self, "_finalizer", None) is not None:
            self._finalizer.detach()


def _crash_cleanup(procs, segment_names) -> None:
    """Finalizer: last-resort teardown for never-shut-down backends."""
    for proc in procs:
        try:
            if proc.is_alive():
                proc.terminate()
        except Exception:
            pass
    unlink_segment_names(segment_names)


def run_equivalence_check(sub_shape=(6, 6, 4), arrangement=(2, 1, 1),
                          steps: int = 2, seed: int = 0) -> None:
    """Tiny serial-vs-processes gate used by ``python -m repro verify``.

    Steps the same random initial state under ``backend="serial"`` and
    ``backend="processes"``, requires bit-identical gathered
    distributions, and fails on any leaked shared-memory segment or
    surviving worker process.  Raises ``AssertionError``/``RuntimeError``
    on any violation.
    """
    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
    from repro.core.shm import leaked_segments
    from repro.lbm.solver import LBMSolver

    shape = tuple(s * a for s, a in zip(sub_shape, arrangement))
    rng = np.random.default_rng(seed)
    ref = LBMSolver(shape, tau=0.7)
    ref.initialize(rho=np.ones(shape, np.float32),
                   u=(0.02 * rng.standard_normal((3,) + shape)).astype(np.float32))
    f0 = ref.f.copy()

    results = {}
    pids: list[int | None] = []
    for backend in ("serial", "processes"):
        cfg = ClusterConfig(sub_shape=sub_shape, arrangement=arrangement,
                            tau=0.7, backend=backend)
        with CPUClusterLBM(cfg) as cluster:
            cluster.load_global_distributions(f0)
            cluster.step(steps)
            results[backend] = cluster.gather_distributions().copy()
            if backend == "processes":
                pids = cluster._proc_backend.worker_pids()
    if not np.array_equal(results["serial"], results["processes"]):
        raise AssertionError(
            "process backend diverged from the serial backend")
    leaks = leaked_segments()
    if leaks:
        raise RuntimeError(f"leaked shared-memory segments: {leaks}")
    for pid in pids:
        if pid is None:
            continue
        try:
            os.kill(pid, 0)
        except (ProcessLookupError, PermissionError):
            continue
        raise RuntimeError(f"orphaned worker process survived: pid {pid}")
