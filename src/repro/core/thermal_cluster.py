"""Distributed hybrid thermal LBM — the HTLBM of Sec 4.1 on the cluster.

The paper develops the hybrid thermal model (MRT flow + finite
difference temperature, coupled through buoyancy and an energy term)
precisely for the machine this repo simulates; this module runs it
decomposed over cluster ranks:

* the MRT flow exchanges its D3Q19 halo exactly like the BGK solver
  (same 5-per-face link sets, same axis-phase order);
* the temperature field exchanges a one-cell scalar halo — the 7-point
  Laplacian and central gradients need faces only, no diagonal hops,
  which is why the paper can claim the HTLBM costs "only two
  additional matrix multiplications" and no new communication pattern;
* global domain edges reproduce the single-domain solver's boundary
  stencils exactly (one-sided gradients via linear-extrapolation
  ghosts, insulating Laplacian via replication ghosts), so the
  distributed run is bit-comparable to :class:`~repro.lbm.HybridThermalLBM`.
"""

from __future__ import annotations

import numpy as np

from repro.core.decomposition import BlockDecomposition
from repro.lbm.thermal import HybridThermalLBM


class DistributedThermalLBM:
    """Coordinator-driven distributed HTLBM.

    Parameters
    ----------
    decomp:
        Block decomposition.  Flow periodicity follows
        ``decomp.periodic``; the temperature field always uses the
        bounded (insulating) stencils of the reference model.
    tau, kappa, g_beta, t0, energy_coupling:
        As in :class:`~repro.lbm.HybridThermalLBM`.
    solid:
        Optional global obstacle mask.
    """

    def __init__(self, decomp: BlockDecomposition, tau: float,
                 kappa: float = 0.05, g_beta: float = 1e-4, t0: float = 0.0,
                 energy_coupling: float = 0.0,
                 solid: np.ndarray | None = None) -> None:
        if decomp.sub_shape is None:
            raise ValueError(
                "ThermalClusterLBM requires uniform cuts; weighted "
                "decompositions are a flow-cluster feature")
        self.decomp = decomp
        solids = (decomp.scatter_field(solid)
                  if solid is not None else [None] * decomp.n_nodes)
        self.models = [
            HybridThermalLBM(decomp.sub_shape, tau, kappa=kappa,
                             g_beta=g_beta, t0=t0,
                             energy_coupling=energy_coupling,
                             solid=solids[r])
            for r in range(decomp.n_nodes)]
        self.kappa = float(kappa)
        self.time_step = 0

    # -- state ------------------------------------------------------------
    def set_temperature(self, T: np.ndarray) -> None:
        """Scatter a global temperature field."""
        for m, part in zip(self.models, self.decomp.scatter_field(T)):
            m.set_temperature(part)

    def load_flow(self, f: np.ndarray) -> None:
        """Scatter global distributions."""
        for m, part in zip(self.models, self.decomp.scatter_field(f)):
            m.flow.f[...] = part.astype(m.flow.dtype)

    def gather_temperature(self) -> np.ndarray:
        return self.decomp.gather_field([m.T for m in self.models])

    def gather_flow(self) -> np.ndarray:
        return self.decomp.gather_field([m.flow.f.copy() for m in self.models])

    # -- halo plumbing ------------------------------------------------------
    def _exchange_flow(self) -> None:
        """Axis-phase D3Q19 halo exchange (same contract as the BGK
        cluster driver)."""
        decomp = self.decomp
        for axis in range(3):
            borders = {}
            for rank, m in enumerate(self.models):
                lo = np.take(m.flow.fg, 1, axis=1 + axis).copy()
                hi = np.take(m.flow.fg, decomp.sub_shape[axis], axis=1 + axis).copy()
                borders[rank] = {-1: lo, 1: hi}
            for rank, m in enumerate(self.models):
                for direction in (-1, 1):
                    peer = decomp.neighbor(rank, axis, direction)
                    idx = 0 if direction == -1 else decomp.sub_shape[axis] + 1
                    sl = [slice(None)] * 4
                    sl[1 + axis] = idx
                    if peer is None:
                        if decomp.periodic[axis]:
                            m.flow.fg[tuple(sl)] = borders[rank][-direction]
                        else:
                            m.flow.fg[tuple(sl)] = borders[rank][direction]
                    else:
                        m.flow.fg[tuple(sl)] = borders[peer][-direction]

    def _padded_temperature(self, rank: int, mode: str) -> np.ndarray:
        """One rank's T with a one-cell scalar halo.

        ``mode``: ``"grad"`` fills global-edge ghosts by linear
        extrapolation (making the central difference equal the
        reference's one-sided edge formula); ``"lap"`` fills them by
        replication (the reference's insulating Laplacian).
        """
        decomp = self.decomp
        T = self.models[rank].T
        pad = np.empty(tuple(s + 2 for s in T.shape), dtype=T.dtype)
        pad[1:-1, 1:-1, 1:-1] = T
        for axis in range(3):
            for direction in (-1, 1):
                # The temperature field is bounded regardless of flow
                # periodicity (the reference FD stencils never wrap), so
                # neighbours are looked up without wrap-around.
                coords = list(decomp.coords_of(rank))
                coords[axis] += direction
                if 0 <= coords[axis] < decomp.arrangement[axis]:
                    peer = decomp.rank_of(tuple(coords))
                else:
                    peer = None
                ghost_idx = 0 if direction == -1 else T.shape[axis] + 1
                sl = [slice(1, -1)] * 3
                sl[axis] = ghost_idx
                if peer is not None:
                    # neighbour's border plane facing us
                    nb = self.models[peer].T
                    take = nb.shape[axis] - 1 if direction == -1 else 0
                    pad[tuple(sl)] = np.take(nb, take, axis=axis)
                else:
                    edge = 0 if direction == -1 else T.shape[axis] - 1
                    inner = 1 if direction == -1 else T.shape[axis] - 2
                    e = np.take(T, edge, axis=axis)
                    if mode == "grad":
                        i = np.take(T, inner, axis=axis)
                        pad[tuple(sl)] = 2.0 * e - i
                    else:
                        pad[tuple(sl)] = e
        return pad

    def _temperature_step(self) -> None:
        """Advect-diffuse every rank's T with halo-aware stencils."""
        new_T = []
        for rank, m in enumerate(self.models):
            _, u = m.flow.macroscopic()
            pad_g = self._padded_temperature(rank, "grad")
            pad_l = self._padded_temperature(rank, "lap")
            inner = (slice(1, -1),) * 3
            adv = np.zeros_like(m.T)
            for axis in range(3):
                lo = [slice(1, -1)] * 3
                hi = [slice(1, -1)] * 3
                lo[axis] = slice(0, -2)
                hi[axis] = slice(2, None)
                grad = 0.5 * (pad_g[tuple(hi)] - pad_g[tuple(lo)])
                adv += u[axis].astype(np.float64) * grad
            lap = np.zeros_like(m.T)
            for axis in range(3):
                lo = [slice(1, -1)] * 3
                hi = [slice(1, -1)] * 3
                lo[axis] = slice(0, -2)
                hi[axis] = slice(2, None)
                lap += pad_l[tuple(hi)] + pad_l[tuple(lo)] - 2.0 * pad_l[inner]
            new_T.append(m.T + (-adv + self.kappa * lap))
        for m, T in zip(self.models, new_T):
            m.T[...] = T

    # -- the coupled step ------------------------------------------------------
    def step(self, n: int = 1) -> None:
        """Advance the coupled system, mirroring the reference order:
        energy source -> temperature -> flow -> buoyancy."""
        for _ in range(n):
            for m in self.models:
                if m.energy_coupling != 0.0:
                    m._energy_src[...] = m.energy_coupling * (m.T - m.t0)
            self._temperature_step()
            for m in self.models:
                m.flow.collide()
            self._exchange_flow()
            for m in self.models:
                m.flow.stream()
                m.flow.post_stream()
                m.flow.time_step += 1
                m._buoyancy()
            self.time_step += 1
