"""The GPU-cluster and CPU-cluster parallel LBM drivers (Secs 4.3-4.4).

:class:`GPUClusterLBM` orchestrates one :class:`~repro.core.gpu_node.GPUNode`
per cluster node through the paper's per-step protocol:

1. collision passes on every GPU (recording the inner-cell overlap
   window, ~120 ms at 80^3);
2. border gather + a single AGP readback per node, then the scheduled
   pairwise network exchange (Fig 7) with indirect two-hop routing of
   the diagonal traffic, then ghost uploads;
3. streaming + boundary passes;
4. a :class:`StepTiming` decomposition in exactly Table 1's columns:
   computation, GPU<->CPU communication, total network time, and the
   non-overlapping remainder ``max(0, T_net - T_window)``.

:class:`CPUClusterLBM` is the paper's baseline: the same decomposition
and schedule with software nodes whose second thread overlaps the whole
compute time.

Both drivers run in two modes: *numeric* (every value computed for
real; gather/compare against the single-domain reference solver) and
*timing-only* (paper-scale sweeps through the calibrated model).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.cpu_node import CPUNode
from repro.core.decomposition import (BlockDecomposition, arrange_nodes_2d,
                                      weighted_cuts)
from repro.core.gpu_node import GPUNode
from repro.core.halo import HaloPlan
from repro.core.procpool import ProcessBackend
from repro.core.schedule import CommSchedule
from repro.gpu.specs import AGP_8X, GEFORCE_FX_5800_ULTRA, XEON_2_4, BusSpec, CPUSpec, GPUSpec
from repro.net.switch import GigabitSwitch
from repro.perf.counters import KernelCounters
from repro.perf.telemetry import TelemetrySession
from repro.perf.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class StepTiming:
    """Per-step time decomposition, Table-1 shaped (seconds).

    The first five fields are *modeled* quantities (simulated clocks and
    the calibrated network model).  ``measured_window_s`` and
    ``measured_exchange_s`` are *wall-clock* observations of the
    executed overlap: how long the numeric halo exchange actually ran,
    and how much of it was hidden behind the concurrent inner-cell
    collide.  They are zero in timing-only mode, with ``overlap=False``,
    or on a single node, and are deliberately excluded from :meth:`ms`
    so the Table-1 view stays deterministic.
    """

    nodes: int
    compute_s: float
    agp_s: float
    net_total_s: float
    overlap_window_s: float
    measured_window_s: float = 0.0
    measured_exchange_s: float = 0.0

    @property
    def net_nonoverlap_s(self) -> float:
        """Network time the overlap window could not hide."""
        return max(0.0, self.net_total_s - self.overlap_window_s)

    @property
    def total_s(self) -> float:
        """The Table-1 'Total': compute + GPU/CPU transfer + remainder."""
        return self.compute_s + self.agp_s + self.net_nonoverlap_s

    def ms(self) -> dict[str, float]:
        """Milliseconds view for printing Table-1 rows."""
        return {
            "compute": self.compute_s * 1e3,
            "agp": self.agp_s * 1e3,
            "net_total": self.net_total_s * 1e3,
            "net_nonoverlap": self.net_nonoverlap_s * 1e3,
            "total": self.total_s * 1e3,
        }


@dataclass
class ClusterConfig:
    """Configuration shared by both cluster drivers.

    Attributes
    ----------
    sub_shape:
        Per-node sub-domain (the paper fixes 80^3 for Table 1).
    arrangement:
        Node grid (W, H, D); use :func:`arrange_nodes_2d` for the
        paper's 2D layouts.
    tau:
        BGK relaxation time.
    periodic:
        Global per-axis periodicity.
    timing_only:
        Skip numerics (paper-scale sweeps).
    solid:
        Optional *global* obstacle mask.
    inlet / outflow / force:
        Global boundary conditions, applied on the nodes that own the
        corresponding global boundary.
    backend:
        Execution backend for the per-node phases:

        * ``"serial"`` (default): the coordinator loop advances nodes
          one after another.
        * ``"threads"``: a :class:`ThreadPoolExecutor` of width
          ``max_workers`` steps the nodes concurrently.  Explicit
          opt-in only — see the ``max_workers`` caveat.
        * ``"processes"``: one persistent worker process per rank with
          shared-memory sub-domains and zero-copy halo mailboxes
          (:mod:`repro.core.procpool`) — the only backend whose ranks
          genuinely run in parallel on multi-core hosts.  Numeric mode
          only; ``overlap`` and ``max_workers`` are ignored (each rank
          is its own process, like the paper's cluster nodes).

        All three backends produce bit-identical distributions.
    max_workers:
        Thread-pool width for ``backend="threads"``.  GIL caveat: the
        NumPy collide/stream sweeps at per-node sizes hold the GIL for
        most of their runtime, so threads usually deliver *no* speedup
        over serial (the tracked benchmark measured 0.665 Mcells/s
        threaded vs 0.696 serial); that is why threads are an explicit
        opt-in spelling and ``max_workers`` is ignored under the
        default ``backend="serial"``.  Use ``backend="processes"`` for
        real multi-core scaling.
    overlap:
        When True (default), numeric multi-node steps *execute* the
        paper's Sec-4.4 overlap instead of merely modeling it: border
        cells collide first, the halo exchange runs on a dedicated
        communication thread while the inner cells collide, and the
        measured concurrency window is reported in
        :class:`StepTiming`.  Results are bit-identical to
        ``overlap=False`` (the split collide visits the same cells with
        the same arithmetic, and the exchange touches only border/ghost
        layers the inner pass never reads).
    kernel / sparse_threshold / autotune:
        Per-rank hot-path selection, forwarded to every CPU rank's
        :class:`~repro.lbm.LBMSolver`.  Under the default ``"auto"``
        each rank picks its own kernel; with ``autotune="measured"``
        (the cluster default) the choice comes from a short
        micro-benchmark of every eligible candidate on the rank's
        actual sub-domain (:mod:`repro.lbm.autotune`), while
        ``autotune="heuristic"`` keeps the pure solid-fraction rule:
        the sparse fluid-compacted kernel
        (:class:`~repro.lbm.SparseStepKernel`) when the *local* solid
        fraction reaches ``sparse_threshold``, the dense phase-split
        path otherwise.  ``kernel="aa"`` forces the swap-free
        AA-pattern kernel on every rank (CPU numeric ranks only; the
        driver plays the role of the kernel's ghost closure: forward
        halo exchange after even phases, reverse ghost scatter
        exchange after odd phases, with true domain-boundary faces on
        non-periodic axes folding locally through the zero-gradient
        crossing-slot rule instead of wrapping — see
        :func:`repro.lbm.streaming.fold_face_zero_gradient`; per-rank
        inlet/outflow handlers run through the rotated closure,
        :mod:`repro.lbm.esoteric`).  Every choice is bit-identical;
        :meth:`kernel_report` and the ``kernel.*`` counters record
        what each rank ran and why.
    layout:
        Physical distribution-array layout on every CPU rank:
        ``"soa"`` (default), ``"aos"`` or ``"auto"`` (each rank's
        measured autotuner probes both layouts for the
        layout-sensitive kernels and keeps the faster — see
        :class:`repro.lbm.LBMSolver` and :mod:`repro.lbm.autotune`).
        All layouts are bit-identical; :meth:`kernel_report` shows the
        per-rank choice.  GPU drivers require SoA, and non-SoA CPU
        ranks on the processes backend stage gathers/loads through a
        copy instead of adopting the shared buffers directly.
    wire:
        Halo wire protocol.  ``"merged"`` (default) gathers everything
        bound for one neighbor — the five streaming links over the full
        padded cross-section, rims included — into a single contiguous
        buffer, so each exchange phase moves exactly one message per
        neighbor (the paper's Sec-4.4 aggregation; the modeled switch
        charges per-message overhead once per neighbor).  ``"perface"``
        keeps the legacy full-plane protocol and models the
        unaggregated message counts (face + piggybacked edge lines
        charged separately), for comparison benchmarks.  Both are
        bit-identical numerically.
    compression:
        Adaptive lossless compression of the merged wire payloads
        (Sec 4.3's open question; requires ``wire="merged"``).
        ``"off"`` (default) ships raw float32.  ``"adaptive"`` runs the
        :class:`~repro.core.wire.AdaptiveCompressionController`: per
        channel it probes the measured delta+transpose+DEFLATE ratio
        against the modeled link bandwidth and engages the codec only
        while ``compress + send + decompress < send`` (on the
        calibrated gigabit link the 2004 DEFLATE loses, so it bypasses
        — that *is* the adaptive answer).  ``"always"`` forces the
        codec on every message.  Compression is lossless, so every
        setting is bit-identical; decisions surface as ``comm.*``
        counters.  The processes backend exchanges through shared
        memory (no wire), so its controller never engages.
    decomposition / cuts:
        How the global lattice is cut into per-rank blocks.
        ``decomposition="uniform"`` (default) keeps the paper's equal
        boxes.  ``"weighted"`` sizes the per-axis cuts by the
        occupancy cost model (:mod:`repro.core.balance`), so
        mostly-solid sparse ranks get bigger blocks and dense ranks
        smaller ones.  ``cuts`` pins explicit per-axis block extents
        (three sequences matching the arrangement and summing to the
        global extents) and overrides ``decomposition`` — this is how
        :meth:`rebalance` re-cuts from measured busy time.  Any cut
        layout is bit-identical to the single-domain reference (the
        cut positions are shared per axis, so neighbouring face shapes
        always match and the halo protocol is unchanged).
    """

    sub_shape: tuple[int, int, int]
    arrangement: tuple[int, int, int]
    tau: float = 0.6
    periodic: tuple[bool, bool, bool] = (True, True, True)
    timing_only: bool = False
    solid: np.ndarray | None = None
    inlet: tuple | None = None
    outflow: tuple | None = None
    force: tuple | None = None
    gpu_spec: GPUSpec = GEFORCE_FX_5800_ULTRA
    bus: BusSpec = AGP_8X
    cpu_spec: CPUSpec = XEON_2_4
    use_sse: bool = False
    switch: GigabitSwitch | None = None
    max_workers: int = 1
    overlap: bool = True
    backend: str = "serial"
    backend_timeout_s: float = 60.0
    kernel: str = "auto"
    sparse_threshold: float = 0.5
    autotune: str = "measured"
    layout: str = "soa"
    decomposition: str = "uniform"
    cuts: tuple | None = None
    wire: str = "merged"
    compression: str = "off"

    def __post_init__(self) -> None:
        if self.wire not in ("merged", "perface"):
            raise ValueError(
                f"wire must be 'merged' or 'perface', got {self.wire!r}")
        if self.compression not in ("off", "adaptive", "always"):
            raise ValueError(
                f"compression must be 'off', 'adaptive' or 'always', "
                f"got {self.compression!r}")
        if self.compression != "off" and self.wire != "merged":
            raise ValueError(
                "compression rides the merged wire protocol; set "
                "wire='merged' (the default) to enable it")
        if self.decomposition not in ("uniform", "weighted"):
            raise ValueError(
                f"decomposition must be 'uniform' or 'weighted', "
                f"got {self.decomposition!r}")
        if self.cuts is not None:
            if len(self.cuts) != 3:
                raise ValueError("cuts must have one sequence per axis")
            norm = []
            for axis, (c, s, a) in enumerate(zip(self.cuts, self.global_shape,
                                                 self.arrangement)):
                c = tuple(int(x) for x in c)
                if len(c) != a:
                    raise ValueError(
                        f"cuts axis {axis}: {len(c)} blocks for "
                        f"arrangement extent {a}")
                if any(x < 2 for x in c):
                    raise ValueError(
                        f"cuts axis {axis}: block extents must be >= 2 "
                        f"(ghost layers), got {c}")
                if sum(c) != s:
                    raise ValueError(
                        f"cuts axis {axis}: {c} sums to {sum(c)}, "
                        f"expected global extent {s}")
                norm.append(c)
            self.cuts = tuple(norm)
        if self.kernel not in ("auto", "fused", "sparse", "split", "aa"):
            raise ValueError(
                f"kernel must be 'auto', 'fused', 'sparse', 'split' or "
                f"'aa', got {self.kernel!r}")
        if self.autotune not in ("heuristic", "measured"):
            raise ValueError(
                f"autotune must be 'heuristic' or 'measured', "
                f"got {self.autotune!r}")
        if self.layout not in ("soa", "aos", "auto"):
            raise ValueError(
                f"layout must be 'soa', 'aos' or 'auto', "
                f"got {self.layout!r}")
        if not 0.0 <= float(self.sparse_threshold) <= 1.0:
            raise ValueError(
                f"sparse_threshold must be within [0, 1], "
                f"got {self.sparse_threshold}")
        if self.backend not in ("serial", "threads", "processes"):
            raise ValueError(
                f"backend must be 'serial', 'threads' or 'processes', "
                f"got {self.backend!r}")
        if self.backend == "processes" and self.timing_only:
            raise ValueError(
                "backend='processes' runs real numerics; use the default "
                "serial backend for timing_only sweeps")
        if self.backend_timeout_s <= 0:
            raise ValueError(
                f"backend_timeout_s must be > 0, got {self.backend_timeout_s}")
        if int(self.max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if len(self.sub_shape) != 3 or any(s < 2 for s in self.sub_shape):
            raise ValueError(f"sub_shape must be 3D with extents >= 2, "
                             f"got {self.sub_shape}")
        if len(self.arrangement) != 3 or any(a < 1 for a in self.arrangement):
            raise ValueError(f"bad arrangement {self.arrangement}")
        if self.tau <= 0.5:
            raise ValueError(f"tau must be > 0.5, got {self.tau}")
        for name, bc in (("inlet", self.inlet), ("outflow", self.outflow)):
            if bc is not None:
                axis = bc[0]
                if not 0 <= axis <= 2:
                    raise ValueError(f"{name} axis must be 0..2")
                if self.periodic[axis]:
                    raise ValueError(
                        f"{name} on axis {axis} conflicts with periodicity; "
                        f"set periodic[{axis}] = False")
        if self.solid is not None and np.asarray(self.solid).shape != self.global_shape:
            raise ValueError(
                f"solid mask shape {np.asarray(self.solid).shape} != global "
                f"lattice {self.global_shape}")

    @property
    def global_shape(self) -> tuple[int, int, int]:
        return tuple(s * a for s, a in zip(self.sub_shape, self.arrangement))

    @property
    def n_nodes(self) -> int:
        return int(np.prod(self.arrangement))


class _ClusterLBMBase:
    """Shared coordinator: decomposition, schedule, exchange, timing."""

    #: Which node class the processes backend's workers should build.
    node_kind = "cpu"

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.decomp = BlockDecomposition(config.global_shape, config.arrangement,
                                         periodic=config.periodic,
                                         cuts=self._resolve_cuts(config))
        self.plan = HaloPlan(self.decomp.max_block_shape())
        self.schedule = CommSchedule(self.decomp, self.plan,
                                     wire=config.wire)
        self.switch = config.switch if config.switch is not None else GigabitSwitch()
        solids = (self.decomp.scatter_field(config.solid)
                  if config.solid is not None else [None] * self.decomp.n_nodes)
        self._proc_backend: ProcessBackend | None = None
        if config.backend == "processes":
            self._proc_backend = ProcessBackend(
                [self._worker_spec_args(rank, solids[rank])
                 for rank in range(self.decomp.n_nodes)],
                node_kind=self.node_kind,
                timeout_s=config.backend_timeout_s)
            self.nodes = self._proc_backend.proxies
        else:
            self.nodes = [self._make_node(rank, solids[rank])
                          for rank in range(self.decomp.n_nodes)]
        self.time_step = 0
        self.last_timing: StepTiming | None = None
        self.counters = KernelCounters()
        self.tracer = NULL_TRACER
        self.telemetry: TelemetrySession | None = None
        self._halo_bytes = 0
        self._halo_msgs = 0
        self._executor: ThreadPoolExecutor | None = None
        self._comm_executor: ThreadPoolExecutor | None = None
        self._border_bufs: list[dict[int, dict[int, np.ndarray]]] | None = None
        # Merged-wire state (built lazily on the first exchange): the
        # per-rank HaloPlans (weighted cuts give each rank its own
        # shapes), the static per-axis routing table and the
        # preallocated per-neighbor wire buffers.
        self._rank_plans: list[HaloPlan] | None = None
        self._wire_routing: list[list[dict]] | None = None
        self._wire_bufs: list[dict] | None = None
        self._compressor = None
        if (config.compression != "off" and not config.timing_only
                and config.backend != "processes"):
            from repro.core.wire import AdaptiveCompressionController
            self._compressor = AdaptiveCompressionController(
                policy=config.compression,
                bandwidth_bytes_per_s=self.switch.effective_bytes_per_s,
                counters=self.counters)

    @staticmethod
    def _resolve_cuts(config: ClusterConfig):
        """Explicit cuts win; otherwise the occupancy-weighted model
        (when opted in) sizes the per-axis cuts; otherwise uniform."""
        if config.cuts is not None:
            return config.cuts
        if config.decomposition == "weighted":
            from repro.core.balance import occupancy_cost_field
            cost = occupancy_cost_field(config.global_shape, config.solid)
            return weighted_cuts(cost, config.arrangement, min_extent=2)
        return None

    def _worker_spec_args(self, rank: int, solid) -> dict:
        """The per-rank construction kwargs shipped to a worker process
        (everything :meth:`_make_node` would have used, minus the
        segment bookkeeping the backend adds itself)."""
        cfg = self.config
        bc = self._node_boundary_config(rank)
        return {
            "sub_shape": self.decomp.block_shape(rank),
            "tau": cfg.tau,
            "periodic": cfg.periodic,
            "neighbors": {(axis, direction):
                          self.decomp.neighbor(rank, axis, direction)
                          for axis in range(3) for direction in (-1, 1)},
            "face_dirs": tuple(self.decomp.face_neighbors(rank)),
            "edge_dirs": tuple(self.decomp.edge_neighbors(rank)),
            "solid": solid,
            "inlet": bc["inlet"],
            "outflow": bc["outflow"],
            "force": cfg.force,
            "use_sse": cfg.use_sse,
            "cpu_spec": cfg.cpu_spec,
            "gpu_spec": cfg.gpu_spec,
            "bus": cfg.bus,
            "kernel": cfg.kernel,
            "sparse_threshold": cfg.sparse_threshold,
            "autotune": cfg.autotune,
            "wire": cfg.wire,
            "layout": cfg.layout,
        }

    def kernel_report(self) -> list[dict]:
        """Per-rank hot-path choice and local solid occupancy.

        One row per rank — ``{"rank", "kernel", "layout",
        "solid_fraction", "reason", "rates", "block", "cells"}`` — for
        the timing summary: which kernel the rank's last step ran
        (``"aa"``, ``"sparse"``, ``"split"``, ``"fused"``, ``"gpu"``,
        or ``"unstepped"``/``"model"`` before the first numeric step),
        the concrete memory layout its distribution array currently
        has (``"soa"``/``"aos"`` — the autotuner's pick under
        ``layout="auto"``), the rank-local solid fraction, *why* the
        kernel was selected (forced / heuristic threshold / measured
        probe), for measured autotuning the probe's MLUPS per
        (kernel, layout) candidate (None otherwise), and the rank's
        block shape and cell count (unequal under weighted cuts — the
        load balancer's output).
        """
        return [{"rank": getattr(node, "rank", i),
                 "kernel": getattr(node, "kernel_used", "n/a"),
                 "layout": getattr(node, "kernel_layout", "soa"),
                 "solid_fraction": float(getattr(node, "solid_fraction", 0.0)),
                 "reason": getattr(node, "kernel_reason", None),
                 "rates": getattr(node, "kernel_rates", None),
                 "block": self.decomp.block_shape(i),
                 "cells": self.decomp.blocks[i].cells}
                for i, node in enumerate(self.nodes)]

    def balance_report(self) -> dict:
        """Chosen cuts plus predicted vs measured per-rank cost.

        Returns ``{"cuts", "uniform", "rows", "predicted_imbalance",
        "measured_imbalance"}``: per-rank block/cells/kernel with the
        occupancy-model predicted cost share (refined by the
        autotuner's measured kernel rates when a rank probed), and —
        when tracing is on and steps have run — the measured busy-time
        imbalance from :func:`repro.perf.report.trace_imbalance_rows`.
        """
        from repro.core.balance import (imbalance, occupancy_cost_field,
                                        predicted_rank_costs, rate_for_row)
        from repro.perf.report import trace_imbalance_rows

        cost = occupancy_cost_field(self.config.global_shape,
                                    self.config.solid)
        predicted = predicted_rank_costs(self.decomp, cost)
        rows = self.kernel_report()
        for row, pred in zip(rows, predicted):
            rate = rate_for_row(row)
            if rate:
                # The probe measured this rank's kernel throughput:
                # cells / MLUPS predicts its step seconds directly.
                pred = row["cells"] / (float(rate) * 1e6)
            row["predicted_cost"] = float(pred)
        measured_rows, summary = trace_imbalance_rows(self.tracer)
        busy = {r["rank"]: r["busy_ms"] for r in measured_rows}
        for row in rows:
            row["busy_ms"] = busy.get(row["rank"])
        return {
            "cuts": self.decomp.cuts,
            "uniform": self.decomp.uniform,
            "rows": rows,
            "predicted_imbalance": imbalance(
                [r["predicted_cost"] for r in rows]),
            "measured_imbalance": (summary["max_over_mean"]
                                   if measured_rows else None),
        }

    def rebalance_cuts(self, busy_s=None) -> tuple:
        """The re-cut the measured busy time asks for (no rebuild).

        ``busy_s`` maps rank -> busy seconds; when omitted it is taken
        from this driver's own trace
        (:func:`~repro.perf.report.trace_imbalance_rows`), which
        requires :meth:`enable_tracing` before stepping.
        """
        from repro.core.balance import (measured_cost_field,
                                        occupancy_cost_field)
        from repro.perf.report import trace_imbalance_rows

        if busy_s is None:
            rows, _ = trace_imbalance_rows(self.tracer)
            busy_s = {r["rank"]: r["busy_ms"] / 1e3 for r in rows}
            if len(busy_s) < self.decomp.n_nodes:
                raise ValueError(
                    "no measured busy time for every rank: call "
                    "enable_tracing() and step() first, or pass busy_s")
        # Occupancy gives the intra-block cost shape; the measured busy
        # time sets each block's total, so the re-cut extrapolates
        # sensibly when a boundary moves into denser/emptier terrain.
        base = occupancy_cost_field(self.config.global_shape,
                                    self.config.solid)
        cost = measured_cost_field(self.decomp, busy_s, base=base)
        return weighted_cuts(cost, self.decomp.arrangement, min_extent=2)

    def rebalance(self, busy_s=None):
        """Re-cut the decomposition from measured cost and carry on.

        The feedback half of the load-balance loop: take the measured
        per-rank busy time (from the attached tracer by default), build
        the cost-density field, compute new per-axis cuts, and — when
        they differ from the current ones — gather the distributions,
        build a fresh driver with ``cuts`` pinned, reload the state and
        shut this driver down.  Returns ``(driver, info)`` where
        ``driver`` is ``self`` when the cuts are already optimal.
        ``info`` records old/new cuts and the measured imbalance that
        drove the decision.  Under ``kernel="aa"`` only even step
        parities can rebalance (canonical layout requirement).
        """
        from dataclasses import replace

        from repro.perf.report import trace_imbalance_rows

        if self.config.timing_only:
            raise RuntimeError("rebalance needs numeric state; "
                               "timing_only drivers have none")
        if self.config.kernel == "aa" and (self.time_step & 1):
            raise ValueError(
                "cannot rebalance at odd AA parity; step to an even "
                "step count first")
        _, summary = trace_imbalance_rows(self.tracer)
        new_cuts = self.rebalance_cuts(busy_s=busy_s)
        info = {
            "old_cuts": self.decomp.cuts,
            "new_cuts": new_cuts,
            "measured_imbalance": summary["max_over_mean"],
            "changed": new_cuts != self.decomp.cuts,
        }
        if not info["changed"]:
            return self, info
        f = self.gather_distributions()
        time_step = self.time_step
        traced = self.tracer.enabled
        successor = type(self)(replace(self.config, cuts=new_cuts))
        self.shutdown()
        successor.load_global_distributions(f)
        successor.time_step = time_step
        if traced:
            # Fresh tracer: post-rebalance measurements start clean.
            successor.enable_tracing()
        return successor, info

    # -- tracing ----------------------------------------------------------
    def enable_tracing(self, tracer: Tracer | None = None) -> Tracer:
        """Attach a live span tracer to every layer of this driver.

        Coordinator phases, per-rank node phases, the per-rank solver
        kernel phases and the switch's scheduled exchange rounds all
        record into the one returned tracer (see
        :mod:`repro.perf.trace`).  On the processes backend the workers
        are switched into tracing mode over the command pipe and their
        spans are re-based onto the coordinator clock at each step
        reply.  Tracing is observational only: traced runs stay
        bit-identical to untraced ones (the check-trace gate enforces
        this).
        """
        self.tracer = tracer if tracer is not None else Tracer()
        self.switch.tracer = self.tracer
        self._halo_bytes = sum(sum(rnd) for rnd in self.schedule.round_bytes())
        self._halo_msgs = sum(sum(rnd)
                              for rnd in self.schedule.round_messages())
        if self._proc_backend is not None:
            self._proc_backend.set_tracing(True)
        else:
            for rank, node in enumerate(self.nodes):
                solver = getattr(node, "solver", None)
                if solver is not None and hasattr(solver, "tracer"):
                    solver.tracer = self.tracer.for_rank(rank)
        return self.tracer

    # -- live telemetry ----------------------------------------------------
    def enable_telemetry(self, **kwargs) -> TelemetrySession:
        """Attach live metrics and the health watchdog to this driver.

        Mirrors :meth:`enable_tracing`, but for the *live* layer (see
        :mod:`repro.perf.telemetry`): the step loop records step rate /
        MLUPS / per-rank imbalance into the session's
        :class:`~repro.perf.telemetry.MetricsRegistry`, per-rank solver
        instruments point at per-rank views of it, and on the processes
        backend the workers switch their own registries on over the
        command pipe (snapshot deltas merge at every step reply) and
        start heartbeating through the shared health segments, which is
        what the step watchdog reads.  Keyword arguments reach
        :class:`~repro.perf.telemetry.TelemetrySession` (e.g.
        ``jsonl_path=``, ``stall_timeout_s=``).  Telemetry is
        observational only: monitored runs stay bit-identical to
        unmonitored ones (the check-telemetry gate enforces this).
        """
        session = TelemetrySession(self, **kwargs)
        self.telemetry = session
        if self._proc_backend is not None:
            self._proc_backend.set_telemetry(True)
        else:
            for rank, node in enumerate(self.nodes):
                solver = getattr(node, "solver", None)
                if solver is not None and hasattr(solver, "metrics"):
                    solver.metrics = session.registry.for_rank(rank)
        return session

    # -- threaded node stepping -------------------------------------------
    def _run_on_nodes(self, method: str, span: str | None = None) -> None:
        """Invoke ``method`` on every node, threaded when opted in.

        Nodes only touch their own sub-domain state between exchanges,
        so the per-node phases are embarrassingly parallel.  The pool
        is used only under the explicit ``backend="threads"`` opt-in:
        numpy's big sweeps mostly hold the GIL at these sizes, so the
        threaded path exists for API parity and experimentation, not
        speed (see the ``ClusterConfig.max_workers`` caveat).
        """
        tracer = self.tracer
        if tracer.enabled and span is not None:
            step = self.time_step

            def call(rank: int, node) -> None:
                with tracer.span(span, step=step, rank=rank):
                    getattr(node, method)()
        else:
            def call(rank: int, node) -> None:
                getattr(node, method)()
        if (self.config.backend == "threads"
                and self.config.max_workers > 1 and len(self.nodes) > 1):
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=min(self.config.max_workers, len(self.nodes)),
                    thread_name_prefix="lbm-node")
            futures = [self._executor.submit(call, rank, node)
                       for rank, node in enumerate(self.nodes)]
            for fut in futures:
                fut.result()
        else:
            for rank, node in enumerate(self.nodes):
                call(rank, node)

    def shutdown(self) -> None:
        """Release thread pools, worker processes and shared memory
        (idempotent)."""
        if self.telemetry is not None:
            try:
                self.telemetry.close()
            except Exception:
                pass
            self.telemetry = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._comm_executor is not None:
            self._comm_executor.shutdown(wait=True)
            self._comm_executor = None
        if self._proc_backend is not None:
            self._proc_backend.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- node construction -------------------------------------------------
    def _node_boundary_config(self, rank: int) -> dict:
        """Which global BCs land on this node, in local terms."""
        cfg = self.config
        coords = self.decomp.coords_of(rank)
        out = {"inlet": None, "outflow": None}
        if cfg.inlet is not None:
            axis, side, velocity, rho = cfg.inlet
            edge = 0 if side == "low" else self.decomp.arrangement[axis] - 1
            if coords[axis] == edge:
                out["inlet"] = cfg.inlet
        if cfg.outflow is not None:
            axis, side = cfg.outflow
            edge = 0 if side == "low" else self.decomp.arrangement[axis] - 1
            if coords[axis] == edge:
                out["outflow"] = cfg.outflow
        return out

    def _make_node(self, rank: int, solid):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- the per-step protocol ----------------------------------------------
    def _exchange(self) -> None:
        """Numeric-mode halo exchange, axis phase by axis phase.

        The sequential axis order implements the paper's indirect
        two-hop diagonal routing: later-axis border layers include the
        ghost rims already received from earlier axes, so edge/corner
        data reaches second-nearest neighbours without direct diagonal
        messages.

        Under ``wire="merged"`` (the default) each rank moves one
        packed 5-link message per distinct neighbor per axis phase;
        ``wire="perface"`` keeps the legacy full-plane protocol.
        """
        cfg = self.config
        reverse = cfg.kernel == "aa" and (self.time_step & 1)
        if cfg.wire == "merged":
            if reverse:
                mode = "aa_reverse"
            elif cfg.kernel == "aa":
                mode = "aa_forward"
            else:
                mode = "pull"
            self._exchange_merged(mode)
            return
        self._ensure_border_bufs()
        if reverse:
            self._exchange_reverse()
            return
        for axis in range(3):
            borders = {rank: node.read_borders(axis,
                                               out=self._border_bufs[rank][axis])
                       for rank, node in enumerate(self.nodes)}
            for rank, node in enumerate(self.nodes):
                for direction in (-1, 1):
                    peer = self.decomp.neighbor(rank, axis, direction)
                    if peer is None:
                        if cfg.periodic[axis]:
                            node.write_ghost(axis, direction,
                                             borders[rank][-direction])
                        else:
                            node.fill_ghost_zero_gradient(axis, direction)
                    else:
                        node.write_ghost(axis, direction,
                                         borders[peer][-direction])

    def _ensure_wire_state(self) -> None:
        """Build the merged-wire routing table and buffers (once).

        The topology is static, so everything is precomputed: one
        :class:`HaloPlan` per rank (weighted cuts give unequal blocks;
        neighbouring cross-sections still match because the cut
        positions are shared per axis), and per (axis, rank) the
        outgoing sends — ``(peer, sides)`` with both sides merged into
        one message when the low and high neighbor are the same rank —
        plus the periodic self-wraps and zero-gradient fills.  Wire
        buffers are preallocated per (rank, axis, sides), so the
        steady-state exchange allocates nothing.
        """
        if self._wire_routing is not None:
            return
        cfg = self.config
        self._rank_plans = [HaloPlan(self.decomp.block_shape(rank))
                            for rank in range(len(self.nodes))]
        self._wire_routing = []
        self._wire_bufs = [dict() for _ in range(len(self.nodes))]
        n_bufs = 0
        for axis in range(3):
            per_rank = []
            for rank in range(len(self.nodes)):
                peers: dict[int, list[int]] = {}
                wraps: list[int] = []
                zeros: list[int] = []
                for direction in (-1, 1):
                    peer = self.decomp.neighbor(rank, axis, direction)
                    if peer is None:
                        if cfg.periodic[axis]:
                            wraps.append(direction)
                        else:
                            zeros.append(direction)
                    else:
                        peers.setdefault(peer, []).append(direction)
                sends = tuple((peer, tuple(sorted(dirs)))
                              for peer, dirs in sorted(peers.items()))
                entry = {"sends": sends, "wraps": tuple(sorted(wraps)),
                         "zeros": tuple(zeros)}
                per_rank.append(entry)
                side_groups = [sides for _, sides in sends]
                if entry["wraps"]:
                    side_groups.append(entry["wraps"])
                for sides in side_groups:
                    key = (axis, sides)
                    if key not in self._wire_bufs[rank]:
                        m = self._rank_plans[rank].neighbor_manifest(
                            axis, sides)
                        self._wire_bufs[rank][key] = np.empty(
                            m.total_floats, dtype=np.float32)
                        n_bufs += 1
            self._wire_routing.append(per_rank)
        if n_bufs:
            self.counters.alloc("exchange.wire_bufs", n_bufs)

    def _exchange_merged(self, mode: str) -> None:
        """One packed message per neighbor per axis phase (Sec 4.4).

        Every rank packs all its outgoing per-neighbor buffers for the
        axis *first* (preserving the snapshot semantics of the legacy
        path — no ghost write happens before every border read), then
        every message is delivered and unpacked.  Segments span the
        full padded cross-section, so the two-hop diagonal routing
        rides inside the merged buffers.  ``mode`` selects the link
        sets: ``"pull"`` for the double-buffered kernels,
        ``"aa_forward"``/``"aa_reverse"`` for the AA even/odd steps.
        """
        self._ensure_wire_state()
        comp = self._compressor
        rec = self.counters
        msgs = 0
        wire_bytes = 0
        for axis in range(3):
            routing = self._wire_routing[axis]
            packed: dict[tuple[int, int], tuple] = {}
            for rank, node in enumerate(self.nodes):
                entry = routing[rank]
                for peer, sides in entry["sends"]:
                    m = self._rank_plans[rank].neighbor_manifest(
                        axis, sides, mode)
                    buf = node.read_packed(
                        m, self._wire_bufs[rank][(axis, sides)])
                    packed[(rank, peer)] = (m, buf)
                if entry["wraps"]:
                    m = self._rank_plans[rank].neighbor_manifest(
                        axis, entry["wraps"], mode)
                    buf = node.read_packed(
                        m, self._wire_bufs[rank][(axis, entry["wraps"])])
                    packed[(rank, rank)] = (m, buf)
            for rank, node in enumerate(self.nodes):
                entry = routing[rank]
                for peer, _sides in entry["sends"]:
                    m, buf = packed[(peer, rank)]
                    msgs += 1
                    if comp is not None and peer != rank:
                        payload = comp.encode((peer, rank, axis), buf)
                        wire_bytes += payload.wire_bytes
                        buf = comp.decode((peer, rank, axis), payload.data,
                                          buf.shape)
                    else:
                        wire_bytes += buf.nbytes
                    node.write_packed(m, buf)
                if entry["wraps"]:
                    m, buf = packed[(rank, rank)]
                    node.write_packed(m, buf)
                for direction in entry["zeros"]:
                    if mode == "aa_reverse":
                        # True domain edge on an odd AA step: the
                        # outward-pushed crossing populations fold back
                        # locally as the zero-gradient closure instead
                        # of travelling to a neighbour.
                        node.fold_border_zero_gradient(axis, direction)
                    else:
                        node.fill_ghost_zero_gradient(axis, direction)
        if rec.enabled:
            rec.metric("comm.msgs", msgs)
            if comp is None:
                # The controller records its own byte metrics.
                rec.metric("comm.bytes_wire", wire_bytes, calls=msgs)

    def _ensure_border_bufs(self) -> None:
        """Preallocate the per-(rank, axis, direction) face buffers.

        Each exchange refills them in place instead of rebuilding a
        dict of fresh copies every axis phase.  The reverse (AA) path
        reuses the same buffers for ghost planes — identical shapes.
        Under non-uniform cuts the buffers are per-rank sized; the
        shared per-axis cut positions guarantee a neighbour's opposite
        face buffer always matches.
        """
        if self._border_bufs is not None:
            return
        self._border_bufs = []
        for rank in range(len(self.nodes)):
            sub = self.decomp.block_shape(rank)
            per_axis = {}
            for axis in range(3):
                face = (19,) + tuple(s + 2 for a, s in enumerate(sub)
                                     if a != axis)
                per_axis[axis] = {-1: np.empty(face, dtype=np.float32),
                                  1: np.empty(face, dtype=np.float32)}
            self._border_bufs.append(per_axis)
        self.counters.alloc("exchange.border_bufs", 6 * len(self.nodes))

    def _exchange_reverse(self) -> None:
        """Odd-step AA exchange: scatter ghost planes back to owners.

        After an AA odd phase each rank's ghost shell holds the
        post-collision populations its border cells pushed *outward*
        (``a_i(x + c_i)`` landing outside the sub-domain).  Those
        locations belong to the neighbouring rank, so the data flow is
        the mirror image of :meth:`_exchange`: ghost planes are read,
        and the face-*crossing* link slots are folded onto the
        neighbour's border layer (the distributed analogue of
        :func:`repro.lbm.streaming.fold_ghosts_periodic`).  Sequential
        axis order relays edge/corner contributions through the rims
        exactly like the forward path's two-hop diagonal routing.
        """
        for axis in range(3):
            ghosts = {rank: node.read_ghost_planes(
                          axis, out=self._border_bufs[rank][axis])
                      for rank, node in enumerate(self.nodes)}
            for rank, node in enumerate(self.nodes):
                for direction in (-1, 1):
                    peer = self.decomp.neighbor(rank, axis, direction)
                    if peer is None and not self.config.periodic[axis]:
                        # True domain edge: fold the outward-pushed
                        # crossing populations back locally (the
                        # zero-gradient closure of the bounded box).
                        node.fold_border_zero_gradient(axis, direction)
                        continue
                    # peer None with a periodic axis is a self-wrap.
                    source = rank if peer is None else peer
                    node.write_border_crossing(axis, direction,
                                               ghosts[source][-direction])

    def _overlap_capable(self) -> bool:
        """Whether this step may run the executed-overlap protocol."""
        return (self.config.overlap
                and not self.config.timing_only
                and all(getattr(node, "overlap_safe", False)
                        for node in self.nodes))

    def _timed_exchange(self) -> tuple[float, float]:
        """Run the halo exchange, returning its (start, end) wall times.

        Runs on the dedicated comm thread under the overlap protocol;
        the recorded span is what the overlap-efficiency analytics
        intersect with the concurrent inner-collide spans.
        """
        t0 = time.perf_counter()
        with self.counters.phase("cluster.exchange"):
            self._exchange()
        t1 = time.perf_counter()
        self.tracer.add_span("cluster.exchange", t0, t1,
                             step=self.time_step, bytes=self._halo_bytes,
                             wire=self.config.wire, msgs=self._halo_msgs)
        return t0, t1

    def step(self, n: int = 1) -> StepTiming:
        """Advance ``n`` time steps; returns the last step's timing.

        Numeric multi-node steps with ``config.overlap`` follow the
        executed Sec-4.4 protocol: collide the boundary shell, launch
        the halo exchange on the communication thread, collide the
        inner core concurrently, then wait for the exchange before
        streaming.  The wall-clock intersection of the exchange and the
        inner pass is reported as ``measured_window_s``.
        """
        if self._proc_backend is not None:
            return self._step_processes(n)
        timing = self.last_timing
        rec = self.counters
        overlapped = self._overlap_capable()
        tel = self.telemetry
        for _ in range(n):
            tel_t0 = time.perf_counter() if tel is not None else 0.0
            self.tracer.begin_step(self.time_step)
            for node in self.nodes:
                node.begin_step()
            measured_window = measured_exchange = 0.0
            if overlapped:
                with rec.phase("cluster.collide_boundary"):
                    self._run_on_nodes("collide_boundary_phase",
                                       span="cluster.collide_boundary")
                if self._comm_executor is None:
                    self._comm_executor = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix="lbm-comm")
                inner_t0 = time.perf_counter()
                fut = self._comm_executor.submit(self._timed_exchange)
                with rec.phase("cluster.collide_inner"):
                    self._run_on_nodes("collide_inner_phase",
                                       span="cluster.collide_inner")
                inner_t1 = time.perf_counter()
                ex_t0, ex_t1 = fut.result()
                measured_exchange = ex_t1 - ex_t0
                measured_window = max(0.0, (min(inner_t1, ex_t1)
                                            - max(inner_t0, ex_t0)))
            else:
                with rec.phase("cluster.collide"):
                    self._run_on_nodes("collide_phase",
                                       span="cluster.collide")
                if not self.config.timing_only:
                    ex_t0 = time.perf_counter()
                    with rec.phase("cluster.exchange"):
                        self._exchange()
                    self.tracer.add_span("cluster.exchange", ex_t0,
                                         time.perf_counter(),
                                         bytes=self._halo_bytes,
                                         wire=self.config.wire,
                                         msgs=self._halo_msgs)
            for node in self.nodes:
                node.charge_transfers()
            net_total = (self.switch.phase_time(
                             self.schedule.round_bytes(),
                             self.decomp.n_nodes,
                             round_messages=self.schedule.round_messages())
                         if self.decomp.n_nodes > 1 else 0.0)
            with rec.phase("cluster.finish"):
                self._run_on_nodes("finish_step", span="cluster.finish")
            timing = StepTiming(
                nodes=self.decomp.n_nodes,
                compute_s=max(nd.compute_s for nd in self.nodes),
                agp_s=max(nd.agp_s for nd in self.nodes),
                net_total_s=net_total,
                overlap_window_s=max(nd.overlap_window_s for nd in self.nodes),
                measured_window_s=measured_window,
                measured_exchange_s=measured_exchange,
            )
            self.time_step += 1
            if tel is not None:
                now = time.perf_counter()
                tel.record_step(now - tel_t0, now=now)
        self.last_timing = timing
        return timing

    def _step_processes(self, n: int) -> StepTiming:
        """Advance ``n`` steps on the persistent worker processes.

        One command round-trip per call: the workers run all ``n``
        steps (exchanging halos among themselves through the shared
        mailboxes), then reply with the last step's timing buckets and
        their per-phase counter deltas, which are merged into this
        driver's :class:`KernelCounters` (seconds are summed across
        ranks, so multi-rank phases read like CPU time).
        """
        tel = self.telemetry
        self.tracer.begin_step(self.time_step)
        if tel is not None:
            tel.note_step_command(n)
        t0 = time.perf_counter()
        with self.counters.phase("cluster.proc_step"):
            payloads = self._proc_backend.step(n)
        t1 = time.perf_counter()
        self.tracer.add_span("cluster.proc_step", t0, t1, steps=n)
        for rank, payload in enumerate(payloads):
            self.counters.merge(payload["counters"])
            spans = payload.get("spans")
            if spans:
                self.tracer.extend(
                    spans, offset_s=self._proc_backend.trace_offset(rank))
            if tel is not None and "metrics" in payload:
                tel.registry.merge(payload["metrics"])
        net_total = (self.switch.phase_time(
                         self.schedule.round_bytes(),
                         self.decomp.n_nodes,
                         round_messages=self.schedule.round_messages())
                     if self.decomp.n_nodes > 1 else 0.0)
        timing = StepTiming(
            nodes=self.decomp.n_nodes,
            compute_s=max(nd.compute_s for nd in self.nodes),
            agp_s=max(nd.agp_s for nd in self.nodes),
            net_total_s=net_total,
            overlap_window_s=max(nd.overlap_window_s for nd in self.nodes),
        )
        self.time_step += n
        self.last_timing = timing
        if tel is not None:
            tel.record_proc_batch(n, t1 - t0)
        return timing

    # -- observables -----------------------------------------------------------
    def _numeric_nodes(self):
        if self.config.timing_only:
            raise RuntimeError("no numeric state in timing_only mode")
        return self.nodes

    def gather_distributions(self) -> np.ndarray:
        """Assemble the global (19, nx, ny, nz) distribution field."""
        if self._proc_backend is not None:
            self._numeric_nodes()
            parts = self._proc_backend.gather_parts()
        else:
            parts = [self._node_distributions(nd) for nd in self._numeric_nodes()]
        return self.decomp.gather_field(parts)

    def gather_macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """Global (rho, u) fields."""
        from repro.lbm.macroscopic import macroscopic
        from repro.lbm.lattice import D3Q19
        f = self.gather_distributions()
        return macroscopic(D3Q19, f)

    def _node_distributions(self, node) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def cells_total(self) -> int:
        """Total lattice cells across the cluster."""
        return int(np.prod(self.config.global_shape))


class GPUClusterLBM(_ClusterLBMBase):
    """The paper's system: one simulated GPU per node (Sec 4.3)."""

    node_kind = "gpu"

    def __init__(self, config: ClusterConfig) -> None:
        if config.kernel == "aa":
            raise ValueError(
                "kernel='aa' is CPU-only: the simulated GPU pipeline "
                "has no AA halo protocol (use CPUClusterLBM)")
        if config.layout != "soa":
            raise ValueError(
                "layout overrides are CPU-only: the simulated GPU "
                "pipeline packs distributions into texture stacks "
                "(use CPUClusterLBM)")
        super().__init__(config)

    def _make_node(self, rank: int, solid):
        bc = self._node_boundary_config(rank)
        return GPUNode(rank, self.decomp.block_shape(rank), self.config.tau,
                       solid=solid,
                       face_dirs=list(self.decomp.face_neighbors(rank)),
                       edge_dirs=list(self.decomp.edge_neighbors(rank)),
                       timing_only=self.config.timing_only,
                       gpu_spec=self.config.gpu_spec, bus=self.config.bus,
                       inlet=bc["inlet"], outflow=bc["outflow"],
                       force=self.config.force)

    def _node_distributions(self, node) -> np.ndarray:
        return node.solver.distributions()

    def initialize(self, rho: float = 1.0, u=None) -> None:
        """Reset every node to equilibrium at (rho, u)."""
        if self._proc_backend is not None:
            self._numeric_nodes()
            self._proc_backend.initialize(rho, u)
            return
        for node in self._numeric_nodes():
            node.solver.initialize(rho=rho, u=u)

    def load_global_distributions(self, f: np.ndarray) -> None:
        """Scatter a global distribution field to the nodes."""
        parts = self.decomp.scatter_field(f)
        if self._proc_backend is not None:
            self._numeric_nodes()
            self._proc_backend.load_parts(parts)
            return
        for node, part in zip(self._numeric_nodes(), parts):
            node.solver.load_distributions(part)


class CPUClusterLBM(_ClusterLBMBase):
    """The paper's baseline: software LBM per node, second-thread
    overlap (Sec 4.4)."""

    node_kind = "cpu"

    def _make_node(self, rank: int, solid):
        bc = self._node_boundary_config(rank)
        return CPUNode(rank, self.decomp.block_shape(rank), self.config.tau,
                       solid=solid,
                       face_dirs=list(self.decomp.face_neighbors(rank)),
                       edge_dirs=list(self.decomp.edge_neighbors(rank)),
                       timing_only=self.config.timing_only,
                       cpu_spec=self.config.cpu_spec,
                       use_sse=self.config.use_sse,
                       inlet=bc["inlet"], outflow=bc["outflow"],
                       force=self.config.force,
                       kernel=self.config.kernel,
                       sparse_threshold=self.config.sparse_threshold,
                       autotune=self.config.autotune,
                       layout=self.config.layout)

    def _node_distributions(self, node) -> np.ndarray:
        return node.solver.f.copy()

    def load_global_distributions(self, f: np.ndarray) -> None:
        """Scatter a global distribution field to the nodes.

        Under ``kernel="aa"`` the ranks hold the rotated mid-pair
        layout at odd parity, so loading canonical distributions is
        only defined on even step counts (same as the reference
        solver's in-place layout after an even number of steps).
        """
        if self.config.kernel == "aa" and (self.time_step & 1):
            raise ValueError(
                "cannot load distributions at odd AA parity; step to an "
                "even step count first")
        parts = self.decomp.scatter_field(f)
        if self._proc_backend is not None:
            self._numeric_nodes()
            self._proc_backend.load_parts(parts)
            return
        for node, part in zip(self._numeric_nodes(), parts):
            node.solver.f[...] = part.astype(node.solver.dtype)
