"""Command-line interface: regenerate any paper artifact from a shell.

::

    python -m repro table1            # Table 1 rows vs published
    python -m repro table2            # Table 2 + supercomputer context
    python -m repro fig8|fig9|fig10   # the figures as ASCII series
    python -m repro strong            # Sec 4.4 fixed-problem scaling
    python -m repro whatif            # Sec 4.4 enhancements
    python -m repro cost              # Sec 3 accounting
    python -m repro dispersion        # Sec 5 headline (0.31 s/step)
    python -m repro trace             # traced cluster step -> Perfetto JSON + analytics
    python -m repro check-procs       # process-backend equivalence + leak gate
    python -m repro check-sparse      # sparse-kernel equivalence gate
    python -m repro check-aa          # AA-pattern kernel equivalence gate
    python -m repro check-trace       # trace schema + no-op overhead gate
    python -m repro check-balance     # weighted-decomposition load-balance gate
    python -m repro check-exchange    # merged-wire message-count + equivalence gate
    python -m repro check-telemetry   # live-telemetry bit-identity + watchdog gate
    python -m repro doctor            # shm leak audit + procpool smoke check
    python -m repro verify            # tier-1 tests + backend gates + regression guard

All output comes from the same row generators the benchmark harness
uses (`repro.perf.model`), so the CLI and `pytest benchmarks/` always
agree.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args) -> None:
    from repro.perf.model import PAPER_TABLE1, table1_rows
    print(f"{'nodes':>5} {'CPU':>6} {'GPUcmp':>7} {'AGP':>5} {'net':>6} "
          f"{'novl':>5} {'GPUtot':>7} {'spd':>6}   paper(tot/spd)")
    for r in table1_rows(args.nodes):
        ref = PAPER_TABLE1.get(r.nodes)
        p = f"{ref[4]}/{ref[5]:.2f}" if ref else "-"
        print(f"{r.nodes:>5} {r.cpu_total:>6.0f} {r.gpu_compute:>7.0f} "
              f"{r.gpu_agp:>5.0f} {r.net_total:>6.0f} "
              f"{r.net_nonoverlap:>5.0f} {r.gpu_total:>7.0f} "
              f"{r.speedup:>6.2f}   {p}")


def _cmd_table2(args) -> None:
    from repro.perf.comparisons import SUPERCOMPUTER_RESULTS
    from repro.perf.model import PAPER_TABLE2, table2_rows
    print(f"{'nodes':>5} {'Mcells/s':>9} {'speedup':>8} {'eff':>7}   paper")
    for r in table2_rows(args.nodes):
        ref = PAPER_TABLE2.get(r.nodes)
        sp = f"{r.speedup:.2f}" if r.speedup else "-"
        ef = f"{r.efficiency * 100:.1f}%" if r.efficiency else "-"
        print(f"{r.nodes:>5} {r.cells_per_s / 1e6:>9.2f} {sp:>8} {ef:>7}"
              f"   {ref[0] if ref else '-'}")
    print("\ncontext:")
    for s in SUPERCOMPUTER_RESULTS:
        print(f"  {s.mcells_per_s:>6.1f} Mcells/s  {s.system}")


def _cmd_fig(args, which: str) -> None:
    from repro.perf.model import cluster_timings, table2_rows
    if which == "fig8":
        print("nodes  net(ms)  overlapped  remainder")
        for n in args.nodes:
            if n < 2:
                continue
            gpu, _ = cluster_timings(n)
            ovl = min(gpu.net_total_s, gpu.overlap_window_s) * 1e3
            print(f"{n:>5} {gpu.net_total_s * 1e3:>8.0f} "
                  f"{'#' * int(ovl / 3):<32} {'!' * int(gpu.net_nonoverlap_s * 1e3 / 3)}")
    elif which == "fig9":
        from repro.perf.model import table1_rows
        for r in table1_rows(args.nodes):
            print(f"{r.nodes:>5} {r.speedup:5.2f} " + "*" * int(r.speedup * 8))
    else:
        for r in table2_rows(args.nodes):
            if r.efficiency:
                print(f"{r.nodes:>5} {r.efficiency * 100:5.1f}% "
                      + "=" * int(r.efficiency * 50))


def _cmd_strong(args) -> None:
    from repro.perf.model import strong_scaling_rows
    for r in strong_scaling_rows():
        print(f"{r['nodes']:>3} nodes {str(r['sub_shape']):>14}: "
              f"GPU {r['gpu_total_ms']:6.0f} ms, CPU {r['cpu_total_ms']:6.0f} ms, "
              f"speedup {r['speedup']:.2f}")


def _cmd_whatif(args) -> None:
    from repro.perf.whatif import enhancement_speedups, multi_gpu_per_node
    for label, v in enhancement_speedups().items():
        print(f"  {label:<40s} {v:5.2f}x")
    print("\nmultiple GPUs per node (PCI-Express):")
    for r in multi_gpu_per_node():
        print(f"  {r['gpus_per_node']} GPU(s)/node, {r['hosts']:>2} hosts: "
              f"net {r['net_total_ms']:6.1f} ms, total {r['total_ms']:6.1f} ms, "
              f"speedup {r['speedup_vs_cpu']:.2f}x")


def _cmd_cost(args) -> None:
    from repro.perf.cost import paper_cluster_cost
    c = paper_cluster_cost()
    print(f"GPU peak added:  {c.gpu_peak_gflops:6.1f} GFlops")
    print(f"cluster peak:    {c.total_peak_gflops:6.1f} GFlops")
    print(f"GPU price:      ${c.gpu_price_usd:,.0f}")
    print(f"MFlops/$:        {c.gpu_mflops_per_dollar:.1f}")


def _kernel_report_lines(cluster) -> list[str]:
    """Per-rank kernel choice / occupancy / reason rows for timing output."""
    lines = []
    for row in cluster.kernel_report():
        line = (f"  rank {row['rank']:>3}: kernel {row['kernel']:<9} "
                f"solid {row['solid_fraction']:.1%}")
        if row.get("reason"):
            line += f"  ({row['reason']})"
        lines.append(line)
    return lines


def _cmd_dispersion(args) -> None:
    from repro.urban import DispersionScenario
    scenario = DispersionScenario(shape=tuple(args.shape))
    cluster = scenario.make_cluster(tuple(args.arrangement), timing_only=True)
    tracer = cluster.enable_tracing() if args.trace else None
    session = status = None
    if args.live or args.telemetry_jsonl:
        from repro.perf.telemetry import StatusLine
        session = cluster.enable_telemetry(
            jsonl_path=args.telemetry_jsonl)
        if args.live:
            status = StatusLine()
    t = None
    for _ in range(max(1, args.steps)):
        t = cluster.step()
        if status is not None:
            status.update(session.status_text())
    if status is not None:
        status.update(session.status_text(), force=True)
        status.close()
    print(f"{scenario.shape} on {cluster.decomp.n_nodes} GPU nodes: "
          f"{t.total_s:.3f} s/step (paper: 0.31)")
    for k, v in t.ms().items():
        print(f"  {k:>14}: {v:7.1f} ms")
    print("per-rank kernels:")
    for line in _kernel_report_lines(cluster):
        print(line)
    if session is not None:
        from repro.perf.report import format_telemetry_summary
        print(format_telemetry_summary(session.snapshot()), end="")
        if args.telemetry_jsonl:
            session.close()
            print(f"wrote telemetry snapshots to {args.telemetry_jsonl}")
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print(f"wrote Chrome trace ({len(tracer.events)} spans, incl. the "
              f"simulated Fig-7 schedule) to {args.trace}")


def _cmd_trace(args) -> None:
    """Run one traced cluster/dispersion segment and export the spans.

    Steps a small voxelized-city cluster (mixed dense/sparse ranks) on
    the chosen backend with tracing on, then replays the same
    decomposition as an SPMD SimMPI program so the network track also
    carries executed per-message events (src/dst/tag/bytes on the
    simulated clock).  Writes Chrome-trace JSON + JSONL and prints the
    derived analytics.
    """
    import os

    from repro.core.cluster_lbm import ClusterConfig, CPUClusterLBM
    from repro.core.decomposition import BlockDecomposition
    from repro.core.spmd import SPMDClusterLBM
    from repro.net.simmpi import SimCluster
    from repro.perf.report import format_trace_analytics
    from repro.urban.city import times_square_like
    from repro.urban.voxelize import voxelize_city

    shape = tuple(args.shape)
    arrangement = tuple(args.arrangement)
    solid = voxelize_city(times_square_like(seed=7), shape,
                          resolution_m=24.0, ground_layers=1)
    sub = tuple(s // a for s, a in zip(shape, arrangement))
    cfg = ClusterConfig(sub_shape=sub, arrangement=arrangement, tau=0.6,
                        solid=solid, backend=args.backend,
                        max_workers=(2 if args.backend == "threads" else 1))
    import numpy as np

    from repro.lbm.solver import LBMSolver

    ref = LBMSolver(shape, tau=0.6, solid=solid)
    rng = np.random.default_rng(11)
    ref.initialize(rho=np.ones(shape, np.float32),
                   u=(0.02 * rng.standard_normal((3,) + shape)
                      ).astype(np.float32))
    with CPUClusterLBM(cfg) as cluster:
        cluster.load_global_distributions(ref.f)
        tracer = cluster.enable_tracing()
        cluster.step(args.steps)
    # Executed SimMPI pass over the same decomposition: per-message
    # events on the network track (the coordinator backends model the
    # schedule; this records the Fig-7 message pattern for real).
    decomp = BlockDecomposition(shape, arrangement,
                                periodic=(True, True, True))
    sim = SimCluster(decomp.n_nodes, tracer=tracer)
    SPMDClusterLBM(decomp, tau=0.6, solid=solid).run(1, cluster=sim)

    os.makedirs(args.out, exist_ok=True)
    chrome_path = os.path.join(args.out, "repro-trace.json")
    jsonl_path = os.path.join(args.out, "repro-trace.jsonl")
    tracer.write_chrome(chrome_path)
    tracer.write_jsonl(jsonl_path)
    print(f"{shape} on {decomp.n_nodes} ranks, backend={args.backend}, "
          f"{args.steps} traced steps: {len(tracer.events)} spans")
    print(f"  wrote {chrome_path} (open in Perfetto / chrome://tracing)")
    print(f"  wrote {jsonl_path}")
    print()
    print(format_trace_analytics(tracer))


def _cmd_check_procs(args) -> int:
    """Process-backend gate: serial-vs-processes bit equivalence, no
    leaked shared-memory segments, no orphaned worker processes."""
    from repro.core.procpool import run_equivalence_check

    run_equivalence_check(steps=args.steps)
    print("process backend OK: bit-identical to serial, "
          "no leaked segments, no orphaned workers")
    return 0


def _cmd_check_sparse(args) -> int:
    """Sparse-kernel gate: bit equivalence against the dense phase-split
    reference on a voxelized-city mask, single-domain and across
    cluster backends with mixed per-rank kernel selection."""
    from repro.lbm.sparse import run_sparse_equivalence_check

    report = run_sparse_equivalence_check(steps=args.steps)
    print(f"sparse kernel OK: bit-identical to the dense reference on a "
          f"{report['occupancy']:.0%}-solid city mask "
          f"(threshold {report['threshold']:.0%})")
    for backend, rows in report["backends"].items():
        print(f"  backend {backend}:")
        for row in rows:
            print(f"    rank {row['rank']:>3}: kernel {row['kernel']:<9} "
                  f"solid {row['solid_fraction']:.1%}")
    return 0


def _cmd_check_aa(args) -> int:
    """AA-kernel gate: the swap-free two-phase kernel is bit-identical
    to the reference on a voxelized-city mask after every step
    (macroscopic fields always, distributions via the odd-parity
    reconstruction), runs on one distribution array (no back buffer) —
    on a fully periodic box AND a bounded inlet/outflow box — and the
    cluster drivers' forward/reverse halo protocol reproduces the
    reference bits on the serial and processes backends."""
    from repro.lbm.aa import run_aa_equivalence_check

    report = run_aa_equivalence_check(steps=args.steps)
    print(f"aa kernel OK: bit-identical to the reference on a "
          f"{report['occupancy']:.0%}-solid city mask over "
          f"{args.steps} steps, single distribution array "
          f"(cases: {', '.join(report['cases'])})")
    for case, info in report["cases"].items():
        for backend, rows in info["backends"].items():
            print(f"  case {case}, backend {backend}:")
            for row in rows:
                print(f"    rank {row['rank']:>3}: "
                      f"kernel {row['kernel']:<9} "
                      f"layout {row.get('layout', 'soa'):<4} "
                      f"solid {row['solid_fraction']:.1%}")
    return 0


def _cmd_check_trace(args) -> int:
    """Trace gate: traced runs bit-identical to untraced on the serial
    and processes backends, one span track per rank, schema-valid
    Chrome-trace output, and ~zero disabled-tracer overhead."""
    from repro.perf.trace import run_trace_check

    report = run_trace_check()
    for backend, info in report["backends"].items():
        print(f"  backend {backend}: {info['spans']} spans, "
              f"ranks {info['ranks']}, chrome schema OK")
    print(f"trace OK: bit-identical numerics traced vs untraced, "
          f"disabled-span overhead "
          f"{report['disabled_overhead_ns']:.0f} ns/call")
    return 0


def _cmd_check_balance(args) -> int:
    """Load-balance gate: the occupancy-weighted cuts (and the
    trace-driven rebalance closing the loop) must beat uniform cuts
    and land under the imbalance target on a voxelized-city run, while
    staying bit-identical to the single-domain reference."""
    from repro.core.balance import run_balance_check

    report = run_balance_check(steps=args.steps, threshold=args.threshold)
    print(f"balance OK: {report['shape']} on {report['arrangement']} ranks, "
          f"target max/mean <= {report['threshold']:.2f}")
    for backend, info in report["backends"].items():
        path = " -> ".join(f"{h:.2f}" for h in info["imbalance_history"])
        print(f"  backend {backend}: imbalance uniform "
              f"{info['imbalance_uniform']:.2f}, weighted+rebalance "
              f"{path} ({info['rebalances']} rebalance(s), "
              f"bit-identical fields)")
        print(f"    weighted x-cuts {info['weighted_cuts'][0]}  "
              f"rebalanced x-cuts {info['rebalanced_cuts'][0]}")
    return 0


def _cmd_check_exchange(args) -> int:
    """Merged-wire gate: one message per neighbor per exchange phase
    (asserted from executed per-message trace events), bit-identical to
    the single-domain reference on every backend with compression on
    and off, AA forward/reverse under merging, and compressed-channel
    desync detection + resync recovery."""
    from repro.core.wire import run_exchange_check

    report = run_exchange_check(steps=args.steps)
    m = report["messages"]
    c = report["compression"]
    print(f"exchange OK: merged wire sends {m['merged_per_step']} "
          f"messages/step (one per neighbor per phase) vs "
          f"{m['perface_per_step']} per-face, bit-identical on:")
    for label in report["variants"]:
        print(f"  {label}")
    print(f"  compression: {c['messages']} messages, wire/raw ratio "
          f"{c['ratio']:.3f}, desync recovery OK")
    return 0


def _cmd_check_telemetry(args) -> int:
    """Telemetry gate: monitored runs bit-identical to unmonitored on
    the serial and processes backends, schema-valid Prometheus/JSONL
    exports, disabled-registry overhead within the microsecond budget,
    and the step watchdog flags (and survives) a SIGSTOPped worker."""
    from repro.perf.telemetry import run_telemetry_check

    report = run_telemetry_check(overhead_budget_us=args.budget_us)
    for backend, info in report["backends"].items():
        print(f"  backend {backend}: {info['prometheus_series']} prometheus "
              f"series, {info['jsonl_snapshots']} JSONL snapshots "
              f"({info['instruments']} instruments), heartbeats from "
              f"ranks {info['ranks']}")
    wd = report["watchdog"]
    print(f"  watchdog: SIGSTOPped rank {wd['stalled_rank']} flagged "
          f"({', '.join(wd['statuses'])}), run recovered bit-clean")
    worst = max(report["disabled_overhead_ns"].values())
    print(f"telemetry OK: bit-identical monitored vs unmonitored, "
          f"disabled-record overhead {worst:.0f} ns/call "
          f"(budget {args.budget_us * 1e3:.0f} ns)")
    return 0


def _cmd_doctor(args) -> int:
    """Environment health audit: leaked shared-memory segments from any
    previous run, plus a procpool spawn/step/teardown smoke check.
    Exits nonzero on leaks or a failed smoke check."""
    import os
    from pathlib import Path

    from repro.core.shm import SEGMENT_PREFIX, shm_root

    failures = 0
    root = shm_root()
    if root is None:
        print("shm audit: /dev/shm not inspectable on this platform "
              "(skipped)")
        stale = []
    else:
        stale = sorted(p.name for p in Path(root).iterdir()
                       if p.name.startswith(f"{SEGMENT_PREFIX}-"))
    if stale:
        # Segments from *any* pid: doctor audits the whole machine
        # state, not just this process (dead creators leak forever).
        print(f"shm audit: {len(stale)} stale segment(s) "
              f"with the {SEGMENT_PREFIX!r} prefix:")
        for name in stale:
            print(f"  /dev/shm/{name}")
        failures += 1
    else:
        print("shm audit: no stale segments")

    print("procpool smoke: spawning a 2-rank processes cluster ...")
    try:
        from repro.core.procpool import run_equivalence_check
        run_equivalence_check(steps=1)
    except Exception as exc:  # noqa: BLE001 - reported, not re-raised
        print(f"procpool smoke FAILED: {type(exc).__name__}: {exc}")
        failures += 1
    else:
        print("procpool smoke: spawn/step/teardown OK, bit-identical to "
              "serial, no leaks, no orphans")
    if failures:
        print(f"doctor: {failures} problem(s) found")
        return 1
    print("doctor: healthy")
    return 0


def _cmd_verify(args) -> int:
    """The repo's single verification gate: tier-1 pytest, the
    process-backend equivalence/leak gate, then the kernel-throughput
    regression guard (skippable for quick loops)."""
    import os
    import subprocess
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(root / "src") + os.pathsep
                         + env["PYTHONPATH"]) if env.get("PYTHONPATH") \
        else str(root / "src")
    stages: list[tuple[str, list[str]]] = [
        ("tier-1 tests", [sys.executable, "-m", "pytest", "-x", "-q"]),
        ("process-backend equivalence",
         [sys.executable, "-m", "repro", "check-procs"]),
        ("sparse-kernel equivalence",
         [sys.executable, "-m", "repro", "check-sparse"]),
        ("aa-kernel equivalence",
         [sys.executable, "-m", "repro", "check-aa"]),
        ("trace gate",
         [sys.executable, "-m", "repro", "check-trace"]),
        ("load-balance gate",
         [sys.executable, "-m", "repro", "check-balance"]),
        ("merged-exchange gate",
         [sys.executable, "-m", "repro", "check-exchange"]),
        ("telemetry gate",
         [sys.executable, "-m", "repro", "check-telemetry"]),
    ]
    if not args.skip_bench:
        stages.append(
            ("kernel regression guard",
             [sys.executable, str(root / "benchmarks" / "check_regression.py"),
              "--threshold", str(args.threshold)]))
    for label, cmd in stages:
        print(f"== {label} ==")
        rc = subprocess.call(cmd, cwd=str(root), env=env)
        if rc != 0:
            print(f"verify FAILED at {label} (exit {rc})")
            return rc
    print("verify OK")
    return 0


def _int_list(text: str) -> tuple[int, ...]:
    return tuple(int(x) for x in text.split(","))


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)
    default_nodes = "1,2,4,8,12,16,20,24,28,30,32"
    for name in ("table1", "table2", "fig8", "fig9", "fig10"):
        sp = sub.add_parser(name)
        sp.add_argument("--nodes", type=_int_list, default=_int_list(default_nodes))
    sub.add_parser("strong")
    sub.add_parser("whatif")
    sub.add_parser("cost")
    sp = sub.add_parser("dispersion")
    sp.add_argument("--shape", type=_int_list, default=(480, 400, 80))
    sp.add_argument("--arrangement", type=_int_list, default=(6, 5, 1))
    sp.add_argument("--steps", type=int, default=1,
                    help="steps to run (default 1)")
    sp.add_argument("--live", action="store_true",
                    help="live TTY status line (step rate, MLUPS, "
                         "imbalance, comm share) plus a telemetry "
                         "summary at the end")
    sp.add_argument("--telemetry-jsonl", default=None, metavar="PATH",
                    help="stream per-step telemetry snapshots (JSONL) "
                         "to PATH")
    sp.add_argument("--trace", default=None, metavar="PATH",
                    help="write a Chrome trace-event JSON of the step "
                         "(incl. the simulated network schedule) to PATH")
    sp = sub.add_parser("trace",
                        help="run a traced cluster step on any backend; "
                             "write Perfetto-loadable trace artifacts "
                             "and print the derived analytics")
    sp.add_argument("--backend", default="serial",
                    choices=("serial", "threads", "processes"))
    sp.add_argument("--steps", type=int, default=3)
    sp.add_argument("--shape", type=_int_list, default=(24, 20, 8))
    sp.add_argument("--arrangement", type=_int_list, default=(2, 2, 1))
    sp.add_argument("--out", default=".",
                    help="directory for repro-trace.json / .jsonl "
                         "(default: current directory)")
    sp = sub.add_parser("report")
    sp.add_argument("--out", default=None,
                    help="write markdown to a file instead of stdout")
    sp = sub.add_parser("check-procs",
                        help="process-backend equivalence and "
                             "shared-memory leak gate")
    sp.add_argument("--steps", type=int, default=2,
                    help="steps to compare (default 2)")
    sub.add_parser("check-trace",
                   help="trace-subsystem gate: schema-valid Chrome "
                        "output, per-rank tracks, bit-identical "
                        "numerics, ~zero disabled overhead")
    sp = sub.add_parser("check-sparse",
                        help="sparse-kernel equivalence gate on a "
                             "voxelized-city mask (single-domain + "
                             "mixed-kernel cluster backends)")
    sp.add_argument("--steps", type=int, default=3,
                    help="steps to compare (default 3)")
    sp = sub.add_parser("check-aa",
                        help="AA-pattern kernel equivalence gate on a "
                             "voxelized-city mask (single-domain + "
                             "cluster forward/reverse halo protocol)")
    sp.add_argument("--steps", type=int, default=4,
                    help="steps to compare (default 4, must be even)")
    sp = sub.add_parser("check-balance",
                        help="weighted-decomposition gate: occupancy "
                             "cuts + trace-driven rebalance beat "
                             "uniform cuts under the imbalance target, "
                             "bit-identical to the reference")
    sp.add_argument("--steps", type=int, default=8,
                    help="steps per segment (default 8)")
    sp.add_argument("--threshold", type=float, default=1.1,
                    help="max/mean busy-time imbalance target "
                         "(default 1.1)")
    sp = sub.add_parser("check-exchange",
                        help="merged-wire gate: one message per "
                             "neighbor per phase, bit-identical with "
                             "compression on/off, AA fwd/rev, desync "
                             "recovery")
    sp.add_argument("--steps", type=int, default=4,
                    help="steps to compare (default 4, rounded even)")
    sp = sub.add_parser("check-telemetry",
                        help="live-telemetry gate: monitored runs "
                             "bit-identical, schema-valid exports, "
                             "disabled overhead in budget, watchdog "
                             "catches a stalled worker")
    sp.add_argument("--budget-us", type=float, default=1.0,
                    help="disabled-record overhead budget in "
                         "microseconds per call (default 1.0)")
    sub.add_parser("doctor",
                   help="audit /dev/shm for stale segments and smoke-"
                        "test procpool spawn/step/teardown; exits "
                        "nonzero on leaks")
    sp = sub.add_parser("verify",
                        help="run the tier-1 tests, the process-backend "
                             "and sparse-kernel gates and the kernel "
                             "regression guard as one gate")
    sp.add_argument("--skip-bench", action="store_true",
                    help="run only the test suite")
    sp.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional throughput drop (default 0.25)")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    cmd = args.command
    if cmd == "table1":
        _cmd_table1(args)
    elif cmd == "table2":
        _cmd_table2(args)
    elif cmd in ("fig8", "fig9", "fig10"):
        _cmd_fig(args, cmd)
    elif cmd == "strong":
        _cmd_strong(args)
    elif cmd == "whatif":
        _cmd_whatif(args)
    elif cmd == "cost":
        _cmd_cost(args)
    elif cmd == "dispersion":
        _cmd_dispersion(args)
    elif cmd == "trace":
        _cmd_trace(args)
    elif cmd == "check-procs":
        return _cmd_check_procs(args)
    elif cmd == "check-sparse":
        return _cmd_check_sparse(args)
    elif cmd == "check-aa":
        return _cmd_check_aa(args)
    elif cmd == "check-trace":
        return _cmd_check_trace(args)
    elif cmd == "check-balance":
        return _cmd_check_balance(args)
    elif cmd == "check-exchange":
        return _cmd_check_exchange(args)
    elif cmd == "check-telemetry":
        return _cmd_check_telemetry(args)
    elif cmd == "doctor":
        return _cmd_doctor(args)
    elif cmd == "verify":
        return _cmd_verify(args)
    elif cmd == "report":
        from repro.perf.report import generate_report
        text = generate_report()
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"wrote {args.out}")
        else:
            print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
