"""repro — reproduction of "GPU Cluster for High Performance Computing".

Fan, Qiu, Kaufman, Yoakum-Stover (SC 2004): parallel lattice Boltzmann
flow simulation on a cluster of commodity GPUs, demonstrated with an
urban airborne-dispersion simulation of the Times Square area.

Subpackages
-----------
``repro.lbm``
    D3Q19 lattice Boltzmann numerics (BGK, MRT, hybrid thermal),
    boundaries, tracers — the flow model of Sec 4.1.
``repro.gpu``
    Simulated GeForce-FX-class GPU: textures, fragment programs, pixel
    buffer, AGP bus, timing model — the substrate of Secs 2-3, 4.2.
``repro.net``
    Simulated gigabit-switched cluster network and an in-process
    MPI-like message layer — the substrate of Secs 3, 4.3.
``repro.core``
    The paper's contribution: domain decomposition, communication
    schedules, and the GPU/CPU cluster LBM drivers (Secs 4.3-4.4).
``repro.perf``
    Calibrated performance models and the table/figure generators.
``repro.urban``
    Procedural city model, voxelization and dispersion app (Sec 5).
``repro.solvers``
    Cellular automata, explicit PDE, and distributed sparse linear
    solvers for the GPU cluster (Sec 6).
``repro.viz``
    Streamlines and volume splatting (Figs 12-13 analogues).
"""

__version__ = "1.0.0"

__all__ = ["lbm", "gpu", "net", "core", "perf", "urban", "solvers", "viz"]
