"""The D3Q19 LBM step as fragment programs on the simulated GPU (Sec 4.2).

"The LBM operations (e.g., streaming, collision, and boundary
conditions) are translated into fragment programs to be executed in the
rendering passes.  For each fragment in a given pass, the fragment
program fetches any required current lattice state information from the
appropriate textures, computes the LBM equations to evaluate the new
lattice states, and renders the results to a pixel buffer."

Pass suite per time step (declared per-fragment costs feed the timing
model; their totals are the anchors in ``repro.perf.calibration``):

=========  ======  =====  ========================================
pass       ALU     fetch  role
=========  ======  =====  ========================================
macro       40       5    rho, u from the 5 distribution stacks
collide x5  50       3    BGK relaxation for 4 links (+flags)
stream  x5   4       4    pull-propagation, per-channel offsets
bounce  x5   8       6    bounce-back at solid flags
=========  ======  =====  ========================================

Two layouts are supported:

* ``mode="wrap"`` — unpadded textures, toroidal fetches: the layout of
  the paper's single-GPU solver, whose memory ceiling reproduces the
  92^3 maximum lattice of Sec 2.
* ``mode="padded"`` — one ghost texel of padding per axis: the cluster
  layout of Sec 4.3, where ghost layers are written from data received
  over the network and border layers are gathered for readback.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import SimulatedGPU
from repro.gpu.fragment import FragmentProgram, Rect
from repro.gpu.packing import D3Q19Packing, N_DISTRIBUTION_STACKS, link_location, stack_links
from repro.gpu.texture import TextureStack
from repro.lbm.lattice import D3Q19
from repro.lbm.equilibrium import equilibrium_site

F32 = np.float32


class GPULBMSolver:
    """BGK D3Q19 LBM executing entirely through texture render passes.

    Parameters
    ----------
    shape:
        Lattice shape (nx, ny, nz).
    tau:
        BGK relaxation time.
    device:
        A :class:`SimulatedGPU`; a fresh FX 5800 Ultra by default.
    mode:
        ``"wrap"`` (periodic, unpadded) or ``"padded"`` (ghost shell,
        for cluster sub-domains).
    solid:
        Optional bool obstacle mask (nx, ny, nz).
    force:
        Optional constant body force.
    inlet:
        Optional ``(axis, side, velocity, rho)`` equilibrium inlet.
    outflow:
        Optional ``(axis, side)`` zero-gradient outlet.
    """

    def __init__(self, shape, tau: float, device: SimulatedGPU | None = None,
                 mode: str = "wrap", solid=None, force=None,
                 inlet=None, outflow=None) -> None:
        if len(shape) != 3:
            raise ValueError("GPULBMSolver is 3D (D3Q19)")
        if mode not in ("wrap", "padded"):
            raise ValueError(f"unknown mode {mode!r}")
        if tau <= 0.5:
            raise ValueError("tau must be > 0.5")
        self.lattice = D3Q19
        self.shape = tuple(int(s) for s in shape)
        self.tau = float(tau)
        self.omega = F32(1.0 / tau)
        self.mode = mode
        self.device = device if device is not None else SimulatedGPU()
        self.packing = D3Q19Packing()
        self.force = None if force is None else np.asarray(force, dtype=np.float64)
        self.inlet = inlet
        self.outflow = outflow

        nx, ny, nz = self.shape
        self.pad = 0 if mode == "wrap" else 1
        p = self.pad
        tw, th, td = nx + 2 * p, ny + 2 * p, nz + 2 * p
        dev = self.device
        self.f_stacks = [dev.new_stack(tw, th, td, name=f"f{s}")
                         for s in range(N_DISTRIBUTION_STACKS)]
        self.macro_stack = dev.new_stack(tw, th, td, name="macro")
        # The pixel buffer the passes render into before the copy-back
        # (counted against texture memory, per the paper's accounting).
        self.pbuffer = dev.new_stack(tw, th, td, name="pbuffer")
        self.solid = (np.zeros(self.shape, dtype=bool) if solid is None
                      else np.asarray(solid, dtype=bool))
        if self.solid.shape != self.shape:
            raise ValueError("solid mask shape mismatch")
        self.has_solid = bool(self.solid.any())
        # Boundary flags only exist when there are obstacles.  (The
        # paper stores boundary-link data in small per-slice rectangles
        # — see repro.gpu.boundary_rects — so obstacle-free lattices pay
        # no flag memory; this is what makes the 92^3 maximum of Sec 2.)
        if self.has_solid:
            self.flags_stack = dev.new_stack(tw, th, td, name="flags")
            self.flags_stack.data[p:td - p, p:th - p, p:tw - p, 0] = (
                self.solid.transpose(2, 1, 0).astype(F32))
        else:
            self.flags_stack = None

        self._rect = (Rect(0, th, 0, tw) if mode == "wrap"
                      else Rect(1, th - 1, 1, tw - 1))
        self._z_range = range(td) if mode == "wrap" else range(1, td - 1)
        self._wrap = mode == "wrap"
        self._split_pieces: tuple[list, list] | None = None
        self._programs = self._build_programs()
        self.time_step = 0
        self.initialize()

    # ------------------------------------------------------------------
    def initialize(self, rho: float = 1.0, u=None) -> None:
        """Load equilibrium distributions at (rho, u) into the textures."""
        uvec = np.zeros(3) if u is None else np.asarray(u, dtype=np.float64)
        feq = equilibrium_site(self.lattice, rho, uvec).astype(F32)
        f = np.broadcast_to(feq.reshape(19, 1, 1, 1), (19,) + self.shape).copy()
        self.load_distributions(f)
        self.time_step = 0

    def load_distributions(self, f: np.ndarray) -> None:
        """Pack a (19, nx, ny, nz) field into the distribution stacks."""
        if f.shape != (19,) + self.shape:
            raise ValueError(f"bad distribution shape {f.shape}")
        off = (self.pad,) * 3
        self.packing.pack_distributions(np.asarray(f, dtype=F32), self.f_stacks,
                                        offset=off)

    def distributions(self) -> np.ndarray:
        """Unpack the current distributions (host-side copy, untimed)."""
        return self.packing.unpack_distributions(self.f_stacks, self.shape,
                                                 offset=(self.pad,) * 3)

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """(rho, u) as of the last macro pass (host-side copy, untimed)."""
        return self.packing.unpack_macroscopic(self.macro_stack, self.shape,
                                               offset=(self.pad,) * 3)

    # -- fragment programs ----------------------------------------------
    def _build_programs(self) -> dict:
        lat = self.lattice
        c = lat.c.astype(F32)
        w = lat.w.astype(F32)
        omega = self.omega
        n_stacks = N_DISTRIBUTION_STACKS
        force_term = None
        if self.force is not None:
            force_term = ((c @ self.force.astype(F32)) * (F32(3.0) * w)).astype(F32)

        def macro_kernel(ctx):
            rho = None
            mom = [None, None, None]
            for s in range(n_stacks):
                tex = ctx.fetch(f"f{s}")
                for ch, link in enumerate(stack_links(s)):
                    v = tex[..., ch]
                    rho = v.copy() if rho is None else rho + v
                    for a in range(3):
                        if c[link, a] != 0:
                            t = c[link, a] * v
                            mom[a] = t if mom[a] is None else mom[a] + t
            out = np.empty(rho.shape + (4,), dtype=F32)
            safe = np.where(rho > 0, rho, F32(1.0))
            out[..., 0] = rho
            for a in range(3):
                out[..., 1 + a] = (mom[a] / safe) if mom[a] is not None else 0.0
            return out

        programs = {"macro": FragmentProgram("macro", macro_kernel, alu_ops=40,
                                             tex_fetches=5, batchable=True)}

        has_solid = self.has_solid

        def make_collide(s):
            links = stack_links(s)

            def collide_kernel(ctx):
                f = ctx.fetch(f"f{s}")
                mac = ctx.fetch("macro")
                fluid = (ctx.fetch("flags", channels=0) == 0.0
                         if has_solid else True)
                rho = mac[..., 0]
                u = mac[..., 1:4]
                usq = (u * u).sum(axis=-1)
                out = f.copy()
                for ch, link in enumerate(links):
                    cu = (u @ c[link])
                    feq = (w[link] * rho
                           * (F32(1.0) + F32(3.0) * cu + F32(4.5) * cu * cu
                              - F32(1.5) * usq))
                    new = f[..., ch] + omega * (feq - f[..., ch])
                    if force_term is not None and force_term[link] != 0.0:
                        new = new + force_term[link]
                    out[..., ch] = np.where(fluid, new, f[..., ch])
                return out

            return FragmentProgram(f"collide{s}", collide_kernel, alu_ops=50,
                                   tex_fetches=3 if has_solid else 2,
                                   batchable=True)

        def make_stream(s):
            links = stack_links(s)

            def stream_kernel(ctx):
                cols = []
                for link in links:
                    cx, cy, cz = (int(v) for v in lat.c[link])
                    cols.append(ctx.fetch(f"f{s}", dx=-cx, dy=-cy, dz=-cz,
                                          channels=link_location(link)[1]))
                while len(cols) < 4:
                    cols.append(np.zeros_like(cols[0]))
                return np.stack(cols, axis=-1)

            return FragmentProgram(f"stream{s}", stream_kernel, alu_ops=4,
                                   tex_fetches=len(links), batchable=True)

        def make_bounce(s):
            links = stack_links(s)

            def bounce_kernel(ctx):
                f = ctx.fetch(f"f{s}")
                solid = ctx.fetch("flags", channels=0) != 0.0
                out = f.copy()
                for ch, link in enumerate(links):
                    os_, och = link_location(int(lat.opp[link]))
                    opp_val = ctx.fetch(f"f{os_}", channels=och)
                    out[..., ch] = np.where(solid, opp_val, f[..., ch])
                return out

            return FragmentProgram(f"bounce{s}", bounce_kernel, alu_ops=8,
                                   tex_fetches=2 + len(links), batchable=True)

        for s in range(n_stacks):
            programs[f"collide{s}"] = make_collide(s)
            programs[f"stream{s}"] = make_stream(s)
            programs[f"bounce{s}"] = make_bounce(s)
        return programs

    # -- ghost-layer management (padded mode) -----------------------------
    def _check_padded(self) -> None:
        if self.mode != "padded":
            raise RuntimeError("ghost operations require mode='padded'")

    def set_ghost_layer(self, f_ghost: np.ndarray, axis: int, side: str,
                        links=None) -> None:
        """Write a ghost face received from a neighbour.

        ``f_ghost`` has the shape of the corresponding face of the
        *padded* array excluding the two ghost rims of the other axes
        being set separately — i.e. exactly ``(L,) + face_shape`` with
        face_shape the full padded cross-section, allowing edge/corner
        ghost texels to be included by the caller.  ``links`` selects
        which distribution slots the rows of ``f_ghost`` carry (default:
        all 19 in order) — the merged wire protocol ships only the five
        streaming links per face.
        """
        self._check_padded()
        nx, ny, nz = self.shape
        full = {0: (ny + 2, nz + 2), 1: (nx + 2, nz + 2), 2: (nx + 2, ny + 2)}[axis]
        link_ids = range(19) if links is None else list(links)
        if f_ghost.shape != (len(link_ids),) + full:
            raise ValueError(f"ghost face shape {f_ghost.shape} != "
                             f"{(len(link_ids),) + full}")
        idx_along = 0 if side == "low" else (self.shape[axis] + 1)
        for row, i in enumerate(link_ids):
            s, ch = link_location(int(i))
            data = self.f_stacks[s].data
            if axis == 0:
                data[:, :, idx_along, ch] = f_ghost[row].transpose(1, 0)
            elif axis == 1:
                data[:, idx_along, :, ch] = f_ghost[row].transpose(1, 0)
            else:
                data[idx_along, :, :, ch] = f_ghost[row].transpose(1, 0)

    def get_border_layer(self, axis: int, side: str,
                         out: np.ndarray | None = None,
                         links=None) -> np.ndarray:
        """Read the interior border face (L, full padded cross-section).

        Returns the post-collision distributions of the outermost
        interior layer, padded cross-section orientation matching
        :meth:`set_ghost_layer` so a neighbour can consume it directly.
        With ``out`` the face is gathered into the provided buffer
        (allocation-free exchange path); ``links`` restricts the gather
        to a subset of distribution slots (merged wire protocol).
        """
        self._check_padded()
        nx, ny, nz = self.shape
        full = {0: (ny + 2, nz + 2), 1: (nx + 2, nz + 2), 2: (nx + 2, ny + 2)}[axis]
        link_ids = range(19) if links is None else list(links)
        if out is None:
            out = np.empty((len(link_ids),) + full,
                           dtype=self.f_stacks[0].data.dtype)
        elif out.shape != (len(link_ids),) + full:
            raise ValueError(f"border face shape {out.shape} != "
                             f"{(len(link_ids),) + full}")
        idx_along = 1 if side == "low" else self.shape[axis]
        for row, i in enumerate(link_ids):
            s, ch = link_location(int(i))
            data = self.f_stacks[s].data
            if axis == 0:
                out[row] = data[:, :, idx_along, ch].transpose(1, 0)
            elif axis == 1:
                out[row] = data[:, idx_along, :, ch].transpose(1, 0)
            else:
                out[row] = data[idx_along, :, :, ch].transpose(1, 0)
        return out

    # -- boundary-layer passes --------------------------------------------
    def _apply_inlet(self) -> None:
        axis, side, velocity, rho = self.inlet
        feq = equilibrium_site(self.lattice, rho, velocity).astype(F32)
        self._write_layer_constant(axis, side, feq)

    def _write_layer_constant(self, axis: int, side: str, feq: np.ndarray) -> None:
        p = self.pad
        nx, ny, nz = self.shape
        idx_along = p if side == "low" else (self.shape[axis] - 1 + p)
        for i in range(19):
            s, ch = link_location(i)
            data = self.f_stacks[s].data
            sl = [slice(p, nz + p), slice(p, ny + p), slice(p, nx + p), ch]
            sl[2 - axis] = idx_along
            data[tuple(sl)] = feq[i]
        # Modeled cost: one small constant-fill pass per stack.
        face = {0: ny * nz, 1: nx * nz, 2: nx * ny}[axis]
        prog = FragmentProgram("inlet", lambda ctx: None, alu_ops=2, tex_fetches=0)
        self.device.charge("inlet", 5 * self.device.pass_time_s(prog, face))

    def _apply_outflow(self) -> None:
        axis, side = self.outflow
        p = self.pad
        nx, ny, nz = self.shape
        if side == "low":
            dst, src = p, p + 1
        else:
            dst, src = self.shape[axis] - 1 + p, self.shape[axis] - 2 + p
        for s in range(N_DISTRIBUTION_STACKS):
            data = self.f_stacks[s].data
            sl_d = [slice(p, nz + p), slice(p, ny + p), slice(p, nx + p), slice(None)]
            sl_s = list(sl_d)
            sl_d[2 - axis] = dst
            sl_s[2 - axis] = src
            data[tuple(sl_d)] = data[tuple(sl_s)]
        face = {0: ny * nz, 1: nx * nz, 2: nx * ny}[axis]
        prog = FragmentProgram("outflow", lambda ctx: None, alu_ops=2, tex_fetches=1)
        self.device.charge("outflow", 5 * self.device.pass_time_s(prog, face))

    # -- the step -----------------------------------------------------------
    def bindings(self) -> dict:
        b = {f"f{s}": self.f_stacks[s] for s in range(N_DISTRIBUTION_STACKS)}
        b["macro"] = self.macro_stack
        if self.flags_stack is not None:
            b["flags"] = self.flags_stack
        return b

    def run_macro_pass(self, rect=None, z_range=None) -> None:
        self.device.run_pass(self._programs["macro"], self.macro_stack,
                             self.bindings(), rect or self._rect,
                             z_range if z_range is not None else self._z_range,
                             wrap=self._wrap)

    # -- boundary/inner split (padded mode) -------------------------------
    def split_pieces(self) -> tuple[list, list]:
        """Texture-space pieces of the depth-1 shell and inner core.

        Returns ``(shell, inner)``, each a list of ``(rect, z_range)``
        covering the sub-domain interior; together they tile it exactly.
        The cluster driver renders macro+collide over the shell pieces
        first — the "multiple small rectangles" of the paper — so the
        border layers can be read back while the inner core is still
        colliding.  Empty pieces (thin domains) are dropped, so either
        list may be empty.
        """
        self._check_padded()
        if self._split_pieces is None:
            from repro.lbm.streaming import shell_partition
            slabs, core = shell_partition(self.shape, depth=1)
            p = self.pad

            def piece(region):
                sx, sy, sz = region
                if sx.stop <= sx.start or sy.stop <= sy.start or sz.stop <= sz.start:
                    return None
                return (Rect(sy.start + p, sy.stop + p, sx.start + p, sx.stop + p),
                        range(sz.start + p, sz.stop + p))

            shell = [pc for pc in map(piece, slabs) if pc is not None]
            inner = [pc for pc in (piece(core),) if pc is not None]
            self._split_pieces = (shell, inner)
        return self._split_pieces

    def run_collide_passes(self, z_range=None, rect=None, charge: bool = True) -> None:
        """Collision passes; sub-rectangles support the inner/outer split
        the cluster driver uses for communication overlap."""
        for s in range(N_DISTRIBUTION_STACKS):
            self.device.run_pass(self._programs[f"collide{s}"], self.f_stacks[s],
                                 self.bindings(), rect or self._rect,
                                 z_range if z_range is not None else self._z_range,
                                 wrap=self._wrap, charge=charge)

    def run_stream_passes(self) -> None:
        for s in range(N_DISTRIBUTION_STACKS):
            self.device.run_pass(self._programs[f"stream{s}"], self.f_stacks[s],
                                 self.bindings(), self._rect, self._z_range,
                                 wrap=self._wrap)

    def run_bounce_passes(self) -> None:
        # Bounce-back swaps opposite distributions across stacks, so all
        # five passes must read a consistent pre-swap snapshot.
        b = self.bindings()
        self.device.run_pass_group(
            [(self._programs[f"bounce{s}"], self.f_stacks[s], b)
             for s in range(N_DISTRIBUTION_STACKS)],
            self._rect, self._z_range, wrap=self._wrap)

    def fill_ghosts_periodic(self) -> None:
        """Padded-mode periodic wrap (used when no cluster is attached)."""
        self._check_padded()
        stacks_to_wrap = [self.f_stacks[s] for s in range(N_DISTRIBUTION_STACKS)]
        if self.flags_stack is not None:
            stacks_to_wrap.append(self.flags_stack)
        for stacks in stacks_to_wrap:
            d = stacks.data
            for ax in range(3):
                n = d.shape[ax]
                lo = [slice(None)] * 4
                hi = [slice(None)] * 4
                lo[ax], hi[ax] = 0, n - 2
                d[tuple(lo)] = d[tuple(hi)]
                lo[ax], hi[ax] = n - 1, 1
                d[tuple(lo)] = d[tuple(hi)]

    def step(self, n: int = 1) -> None:
        """Advance ``n`` time steps through the full pass suite."""
        for _ in range(n):
            self.run_macro_pass()
            self.run_collide_passes()
            if self.mode == "padded":
                self.fill_ghosts_periodic()
            self.run_stream_passes()
            if self.has_solid:
                self.run_bounce_passes()
            if self.inlet is not None:
                self._apply_inlet()
            if self.outflow is not None:
                self._apply_outflow()
            self.time_step += 1
