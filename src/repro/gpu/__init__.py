"""Simulated GPU substrate (Secs 2, 3, 4.2 of the paper).

No real GPU (or 2004-era AGP machine) is available, so this package
implements a functional + timing simulation of the hardware the paper
used:

* :mod:`repro.gpu.specs` — datasheet constants for the GeForce FX
  5800/5900 Ultra, GeForce 6800 Ultra, the host CPUs, and the AGP 8x /
  PCI-Express buses, with the paper's published numbers as provenance.
* :mod:`repro.gpu.texture` — texture memory accounting, 2D textures
  and stacks of 2D textures (the paper's volume layout, Fig 5).
* :mod:`repro.gpu.fragment` — fragment programs and the render-pass
  engine (programmable fragment stage of Fig 1): numpy-vectorized
  per-fragment kernels with gather (offset texture fetch), rendered
  into a pixel buffer and copied back to textures.
* :mod:`repro.gpu.device` — :class:`SimulatedGPU` tying the above
  together with a simulated clock charged per pass and per transfer.
* :mod:`repro.gpu.bus` — asymmetric AGP 8x model (2.1 GB/s down,
  133 MB/s up) and the PCI-Express x16 what-if (4 GB/s both ways).
* :mod:`repro.gpu.packing` — the D3Q19 packing of 19 distribution
  volumes into 5 RGBA texture stacks (Sec 4.2).
* :mod:`repro.gpu.boundary_rects` — per-Z-slice rectangle coverage of
  boundary regions (the paper's memory optimisation for boundary-link
  data).
* :mod:`repro.gpu.lbm_gpu` — the full texture-based LBM step
  (stream / collide / boundary as fragment programs), validated against
  the plain-numpy reference solver.

The *data path* here is executed for real; only the *clock* is modeled.
"""

from repro.gpu.specs import (
    AGP_8X,
    GEFORCE_6800_ULTRA,
    GEFORCE_FX_5800_ULTRA,
    GEFORCE_FX_5900_ULTRA,
    PCIE_X16,
    PENTIUM4_2_53,
    XEON_2_4,
    BusSpec,
    CPUSpec,
    GPUSpec,
)
from repro.gpu.texture import Texture2D, TextureMemory, TextureStack
from repro.gpu.fragment import FragmentProgram, RenderContext
from repro.gpu.device import SimulatedGPU
from repro.gpu.packing import D3Q19Packing
from repro.gpu.boundary_rects import BoundaryRectangles, cover_slice_with_rectangles
from repro.gpu.lbm_gpu import GPULBMSolver

__all__ = [
    "GPUSpec", "CPUSpec", "BusSpec",
    "GEFORCE_FX_5800_ULTRA", "GEFORCE_FX_5900_ULTRA", "GEFORCE_6800_ULTRA",
    "PENTIUM4_2_53", "XEON_2_4", "AGP_8X", "PCIE_X16",
    "TextureMemory", "Texture2D", "TextureStack",
    "FragmentProgram", "RenderContext",
    "SimulatedGPU", "D3Q19Packing",
    "BoundaryRectangles", "cover_slice_with_rectangles",
    "GPULBMSolver",
]
