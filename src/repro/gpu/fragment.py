"""Fragment programs and render passes.

Sec 2 of the paper: "Each computation step is implemented with a
user-defined fragment program which can include gather and mathematic
operations.  The results are encoded as pixel colors and rendered into
a pixel-buffer ... Results that are to be used in subsequent
calculations are copied to textures for temporary storage."

A :class:`FragmentProgram` declares its per-fragment cost (ALU ops and
texture fetches, used by the device's timing model) and provides a
numpy-vectorized kernel.  The kernel receives a :class:`RenderContext`
whose :meth:`~RenderContext.fetch` implements the *gather* operation:
reading a texel at an offset from the current fragment position —
including from neighbouring Z slices of a stack, which is how 3D
streaming is expressed on 2D textures.

The engine enforces the pipeline discipline (Sec 2): a pass may not
read its own render target; results land in a pixel buffer and are
copied (or swapped) into a texture after the full pass, which is what
makes same-stack dependencies (streaming!) hazard-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.gpu.texture import TextureStack


@dataclass(frozen=True)
class FragmentProgram:
    """A compiled fragment shader (Cg analogue).

    Attributes
    ----------
    name:
        For diagnostics and per-pass time accounting.
    kernel:
        ``kernel(ctx: RenderContext) -> (h, w, 4) float32`` computing
        the RGBA output for every fragment of the render rectangle.
    alu_ops:
        Arithmetic instructions executed per fragment (4-wide vector
        ops counted once, matching how Cg programs were counted).
    tex_fetches:
        Texture fetches per fragment (one RGBA texel per fetch).
    batchable:
        The kernel is elementwise over the leading array axes (no
        per-slice logic beyond fetch offsets), so the engine may render
        a contiguous block of Z slices in one invocation: ``fetch``
        returns ``(d, h, w, ...)`` arrays and the kernel must produce
        ``(d, h, w, 4)``.  Purely a simulator-speed optimisation — the
        committed texels and the modeled time are identical to the
        slice-by-slice loop.
    """

    name: str
    kernel: Callable
    alu_ops: int
    tex_fetches: int
    batchable: bool = False


class Rect:
    """Render rectangle in texture coordinates: rows [y0, y1), cols [x0, x1).

    The paper covers boundary regions with "multiple small rectangles";
    rectangles are also how the interior of a ghost-padded texture is
    addressed.
    """

    __slots__ = ("y0", "y1", "x0", "x1")

    def __init__(self, y0: int, y1: int, x0: int, x1: int) -> None:
        if y1 <= y0 or x1 <= x0:
            raise ValueError(f"empty rect ({y0},{y1},{x0},{x1})")
        self.y0, self.y1, self.x0, self.x1 = int(y0), int(y1), int(x0), int(x1)

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def fragments(self) -> int:
        return self.height * self.width

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Rect(y=[{self.y0},{self.y1}), x=[{self.x0},{self.x1}))"


class RenderContext:
    """Per-slice execution context handed to fragment kernels.

    Parameters
    ----------
    bindings:
        Name -> :class:`TextureStack` inputs.
    z:
        Output slice index within the target stack, or a contiguous
        ``range`` of slice indices when the engine batches a
        ``batchable`` program (fetches then return ``(d, h, w, ...)``).
    rect:
        Render rectangle (shared coordinate frame with all inputs).
    wrap:
        If True, fetches wrap toroidally in all three axes (periodic
        single-domain layout); if False, offsets index directly into
        the ghost-padded textures (out-of-range raises — the pass
        structure must guarantee validity, as a real shader must).
    consts:
        Uniform constants visible to the kernel.
    """

    def __init__(self, bindings: Mapping[str, TextureStack], z: int, rect: Rect,
                 wrap: bool, consts: Mapping | None = None) -> None:
        self._bindings = bindings
        self.z = z if isinstance(z, range) else int(z)
        self.rect = rect
        self.wrap = bool(wrap)
        self.consts = dict(consts or {})
        self.fetch_count = 0

    def fetch(self, name: str, dx: int = 0, dy: int = 0, dz: int = 0,
              channels=None) -> np.ndarray:
        """Gather: texel values at (fragment position + (dx, dy, dz)).

        Returns shape ``(h, w, 4)`` (or ``(h, w)`` / ``(h, w, k)`` when
        ``channels`` selects specific components).  With a batched
        ``z`` range, a leading depth axis is prepended.  Counted for
        the timing model via ``fetch_count``.
        """
        stack = self._bindings[name]
        self.fetch_count += 1
        r = self.rect
        batched = isinstance(self.z, range)
        if self.wrap:
            if batched:
                idx = (np.arange(self.z.start, self.z.stop) + dz) % stack.depth
                sl = stack.data[idx]
            else:
                sl = stack.data[(self.z + dz) % stack.depth]
            if dx or dy:
                sl = np.roll(sl, shift=(-dy, -dx), axis=(-3, -2))
            out = sl[..., r.y0:r.y1, r.x0:r.x1, :]
        else:
            if batched:
                z0, z1 = self.z.start + dz, self.z.stop + dz
                if z0 < 0 or z1 > stack.depth:
                    raise IndexError(
                        f"fetch from {name} slices [{z0},{z1}) outside stack "
                        f"depth {stack.depth}")
                zs = slice(z0, z1)
            else:
                zs = self.z + dz
                if not (0 <= zs < stack.depth):
                    raise IndexError(
                        f"fetch from {name} slice {zs} outside stack depth {stack.depth}")
            ys = slice(r.y0 + dy, r.y1 + dy)
            xs = slice(r.x0 + dx, r.x1 + dx)
            if ys.start < 0 or xs.start < 0 or ys.stop > stack.height or xs.stop > stack.width:
                raise IndexError(f"fetch offset ({dx},{dy}) leaves texture {name}")
            out = stack.data[zs, ys, xs]
        if channels is None:
            return out
        return out[..., channels]
