"""Packing D3Q19 state into RGBA texture stacks (Sec 4.2, Fig 5).

"To use the GPU vector operations and save storage space, we pack four
volumes into one stack of 2D textures ... Thus, the 19 distribution
values are packed into 5 stacks of textures.  Flow densities and flow
velocities at the lattice sites are packed into one stack of textures
in a similar fashion."

Per-cell device footprint of the packed layout:

====================  =========  ==========
stacks                 channels   bytes/cell
====================  =========  ==========
5 distribution stacks  20 (19+1)   80
1 macroscopic stack     4 (rho,u)  16
1 scratch stack         4          16
====================  =========  ==========
total                              112

which, against the FX 5800 Ultra's measured-usable ~86 MB, yields the
92^3 maximum lattice the paper reports (Sec 2) — verified in tests.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.texture import BYTES_PER_CHANNEL, CHANNELS, TextureStack
from repro.lbm.lattice import D3Q19, Lattice

#: Stacks needed for Q distributions at 4 channels each.
N_DISTRIBUTION_STACKS = 5

#: Device bytes per lattice cell of the full packed layout (5 f stacks
#: + macro stack + scratch stack, 4 float32 channels each).
PACKED_BYTES_PER_CELL = (N_DISTRIBUTION_STACKS + 2) * CHANNELS * BYTES_PER_CHANNEL


def link_location(i: int) -> tuple[int, int]:
    """Map D3Q19 link index -> (stack, channel)."""
    if not 0 <= i < 19:
        raise ValueError(f"link index {i} out of range")
    return divmod(i, CHANNELS)


def stack_links(stack: int) -> list[int]:
    """Link indices stored in ``stack`` (the last stack holds 3)."""
    if not 0 <= stack < N_DISTRIBUTION_STACKS:
        raise ValueError(f"stack index {stack} out of range")
    return [i for i in range(19) if i // CHANNELS == stack]


def max_cubic_lattice(usable_bytes: int) -> int:
    """Largest N such that an N^3 lattice fits the packed layout."""
    n = int(round((usable_bytes / PACKED_BYTES_PER_CELL) ** (1.0 / 3.0)))
    while (n + 1) ** 3 * PACKED_BYTES_PER_CELL <= usable_bytes:
        n += 1
    while n ** 3 * PACKED_BYTES_PER_CELL > usable_bytes:
        n -= 1
    return n


class D3Q19Packing:
    """Round-trip conversion between volume fields and texture stacks.

    The texture layout is ``stack.data[z, y, x, channel]``; volume
    fields use the solver convention ``field[x, y, z]``.
    """

    def __init__(self, lattice: Lattice = D3Q19) -> None:
        if lattice.Q != 19:
            raise ValueError("D3Q19Packing requires a 19-velocity lattice")
        self.lattice = lattice

    def pack_distributions(self, f: np.ndarray, stacks: list[TextureStack],
                           offset: tuple[int, int, int] = (0, 0, 0)) -> None:
        """Write distributions ``f`` (19, nx, ny, nz) into 5 stacks.

        ``offset`` places the volume inside larger (e.g. ghost-padded)
        textures.
        """
        if len(stacks) != N_DISTRIBUTION_STACKS:
            raise ValueError(f"need {N_DISTRIBUTION_STACKS} stacks")
        _, nx, ny, nz = f.shape
        ox, oy, oz = offset
        for i in range(19):
            s, ch = link_location(i)
            # f[i] is (x, y, z); texture wants (z, y, x).
            stacks[s].data[oz:oz + nz, oy:oy + ny, ox:ox + nx, ch] = (
                f[i].transpose(2, 1, 0))

    def unpack_distributions(self, stacks: list[TextureStack], shape,
                             offset: tuple[int, int, int] = (0, 0, 0)) -> np.ndarray:
        """Read distributions back out of the 5 stacks."""
        nx, ny, nz = shape
        ox, oy, oz = offset
        f = np.empty((19, nx, ny, nz), dtype=np.float32)
        for i in range(19):
            s, ch = link_location(i)
            f[i] = stacks[s].data[oz:oz + nz, oy:oy + ny, ox:ox + nx, ch].transpose(2, 1, 0)
        return f

    def pack_macroscopic(self, rho: np.ndarray, u: np.ndarray,
                         stack: TextureStack,
                         offset: tuple[int, int, int] = (0, 0, 0)) -> None:
        """Pack (rho, ux, uy, uz) into one RGBA stack."""
        nx, ny, nz = rho.shape
        ox, oy, oz = offset
        stack.data[oz:oz + nz, oy:oy + ny, ox:ox + nx, 0] = rho.transpose(2, 1, 0)
        for a in range(3):
            stack.data[oz:oz + nz, oy:oy + ny, ox:ox + nx, 1 + a] = (
                u[a].transpose(2, 1, 0))

    def unpack_macroscopic(self, stack: TextureStack, shape,
                           offset: tuple[int, int, int] = (0, 0, 0)):
        """Read (rho, u) back from the macroscopic stack."""
        nx, ny, nz = shape
        ox, oy, oz = offset
        rho = stack.data[oz:oz + nz, oy:oy + ny, ox:ox + nx, 0].transpose(2, 1, 0)
        u = np.empty((3, nx, ny, nz), dtype=np.float32)
        for a in range(3):
            u[a] = stack.data[oz:oz + nz, oy:oy + ny, ox:ox + nx, 1 + a].transpose(2, 1, 0)
        return rho, u
