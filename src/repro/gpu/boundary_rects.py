"""Rectangle coverage of boundary regions (Sec 4.2).

"since most links do not intersect the boundary surface, we do not
store boundary information for the whole lattice.  Instead, we cover
the boundary regions of each Z slice using multiple small rectangles.
Thus, we need to store the boundary information only inside those
rectangles in 2D textures."

:func:`cover_slice_with_rectangles` computes such a cover for one Z
slice with a greedy row-run + merge algorithm;
:class:`BoundaryRectangles` builds the per-slice covers for a whole
solid mask and reports the memory saving, which tests verify is large
for realistic city geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SliceRect:
    """A rectangle [y0, y1) x [x0, x1) within one Z slice."""

    y0: int
    y1: int
    x0: int
    x1: int

    @property
    def area(self) -> int:
        return (self.y1 - self.y0) * (self.x1 - self.x0)

    def contains(self, y: int, x: int) -> bool:
        return self.y0 <= y < self.y1 and self.x0 <= x < self.x1


def _row_runs(row: np.ndarray) -> list[tuple[int, int]]:
    """Maximal runs of True in a 1D bool array as (start, stop)."""
    idx = np.flatnonzero(row)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [idx.size - 1]))
    return [(int(idx[a]), int(idx[b]) + 1) for a, b in zip(starts, stops)]


def cover_slice_with_rectangles(mask: np.ndarray) -> list[SliceRect]:
    """Cover the True cells of a 2D mask with disjoint rectangles.

    Greedy algorithm: scan rows, compute runs, and extend a rectangle
    downward while the next row contains an identical run.  Produces a
    disjoint exact cover (every True cell in exactly one rectangle and
    no False cell included), which is what the boundary textures need.
    """
    if mask.ndim != 2:
        raise ValueError("mask must be 2D (one Z slice)")
    h = mask.shape[0]
    rects: list[SliceRect] = []
    open_rects: dict[tuple[int, int], int] = {}  # (x0, x1) -> y0
    prev: set[tuple[int, int]] = set()
    for y in range(h + 1):
        runs = set(_row_runs(mask[y])) if y < h else set()
        # Close rectangles whose run disappeared or changed.
        for span in prev - runs:
            rects.append(SliceRect(open_rects.pop(span), y, span[0], span[1]))
        # Open rectangles for new runs.
        for span in runs - prev:
            open_rects[span] = y
        prev = runs
    return rects


class BoundaryRectangles:
    """Per-Z-slice rectangle covers for a 3D boundary-region mask.

    Parameters
    ----------
    boundary_mask:
        Bool array ``(nx, ny, nz)``, True where boundary-link data must
        be stored (typically: fluid cells adjacent to solid).
    """

    def __init__(self, boundary_mask: np.ndarray) -> None:
        if boundary_mask.ndim != 3:
            raise ValueError("boundary_mask must be 3D")
        self.shape = boundary_mask.shape
        nx, ny, nz = self.shape
        self.per_slice: list[list[SliceRect]] = []
        for z in range(nz):
            # Slice in (y, x) texture orientation.
            self.per_slice.append(cover_slice_with_rectangles(boundary_mask[:, :, z].T))
        self.boundary_cells = int(boundary_mask.sum())

    @property
    def covered_cells(self) -> int:
        """Total cells inside rectangles (== boundary cells: exact cover)."""
        return sum(r.area for rects in self.per_slice for r in rects)

    @property
    def n_rectangles(self) -> int:
        return sum(len(r) for r in self.per_slice)

    def memory_fraction(self) -> float:
        """Texture memory needed relative to storing the full lattice."""
        total = self.shape[0] * self.shape[1] * self.shape[2]
        return self.covered_cells / total if total else 0.0


def boundary_region(solid: np.ndarray) -> np.ndarray:
    """Fluid cells with at least one solid face/edge neighbour.

    This is the region whose boundary-link flags the GPU must store.
    """
    if solid.ndim != 3:
        raise ValueError("solid must be 3D")
    near = np.zeros_like(solid)
    for ax in range(3):
        for sh in (1, -1):
            near |= np.roll(solid, sh, axis=ax)
    return near & ~solid
