"""Texture memory, 2D textures, and stacks of 2D textures.

Sec 2: "the data are laid out as texel colors in textures"; Sec 4.2 /
Fig 5: volumes with the resolution of the LBM lattice are packed four
at a time into the RGBA channels of "a stack of 2D textures".

:class:`TextureMemory` is an allocator that enforces the on-board
memory budget, letting tests reproduce the paper's observation that a
128 MB FX 5800 Ultra can hold at most a 92^3 lattice (Sec 2).
"""

from __future__ import annotations

import numpy as np

BYTES_PER_CHANNEL = 4  # 32-bit float components (Sec 1: "single-precision
                       # 32bit floating point capabilities")
CHANNELS = 4           # RGBA


class OutOfTextureMemory(MemoryError):
    """Raised when an allocation exceeds the device's texture memory."""


class TextureMemory:
    """Byte-accounted allocator for GPU texture memory.

    Parameters
    ----------
    capacity_bytes:
        Total allocatable bytes (use the spec's ``usable_lattice_bytes``
        to model the practically usable portion).
    """

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = int(capacity_bytes)
        self.allocated_bytes = 0
        self._live: set[int] = set()

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    def allocate(self, nbytes: int, what: str = "texture") -> int:
        """Reserve ``nbytes``; returns an allocation handle."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("negative allocation")
        if self.allocated_bytes + nbytes > self.capacity_bytes:
            raise OutOfTextureMemory(
                f"cannot allocate {nbytes} B for {what}: "
                f"{self.allocated_bytes}/{self.capacity_bytes} B in use")
        self.allocated_bytes += nbytes
        handle = id(object())
        token = (handle, nbytes)
        self._live.add(token[0])
        self._sizes = getattr(self, "_sizes", {})
        self._sizes[handle] = nbytes
        return handle

    def free(self, handle: int) -> None:
        """Release an allocation."""
        sizes = getattr(self, "_sizes", {})
        if handle not in sizes:
            raise KeyError("unknown or already-freed texture handle")
        self.allocated_bytes -= sizes.pop(handle)
        self._live.discard(handle)


class Texture2D:
    """A single RGBA float32 2D texture.

    Data layout is ``(height, width, 4)`` C-contiguous — texels are
    adjacent in x, matching the fragment pipeline's access pattern.
    """

    def __init__(self, memory: TextureMemory, width: int, height: int,
                 name: str = "tex") -> None:
        self.width = int(width)
        self.height = int(height)
        self.name = name
        self.nbytes = self.width * self.height * CHANNELS * BYTES_PER_CHANNEL
        self._memory = memory
        self._handle = memory.allocate(self.nbytes, what=name)
        self.data = np.zeros((self.height, self.width, CHANNELS), dtype=np.float32)

    def release(self) -> None:
        """Free the texture's memory."""
        if self._handle is not None:
            self._memory.free(self._handle)
            self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Texture2D({self.name}, {self.width}x{self.height})"


class TextureStack:
    """A stack of 2D textures representing up to four packed volumes.

    Shape convention: ``data[z, y, x, channel]``.  Depth is the number
    of Z slices of the (possibly ghost-padded) lattice.
    """

    def __init__(self, memory: TextureMemory, width: int, height: int,
                 depth: int, name: str = "stack") -> None:
        self.width = int(width)
        self.height = int(height)
        self.depth = int(depth)
        self.name = name
        self.nbytes = self.width * self.height * self.depth * CHANNELS * BYTES_PER_CHANNEL
        self._memory = memory
        self._handle = memory.allocate(self.nbytes, what=name)
        self.data = np.zeros((self.depth, self.height, self.width, CHANNELS),
                             dtype=np.float32)

    def release(self) -> None:
        """Free the stack's memory."""
        if self._handle is not None:
            self._memory.free(self._handle)
            self._handle = None

    def slice(self, z: int) -> np.ndarray:
        """View of one 2D texture of the stack, shape (h, w, 4)."""
        return self.data[z]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TextureStack({self.name}, {self.width}x{self.height}"
                f"x{self.depth})")
