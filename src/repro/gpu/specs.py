"""Hardware datasheets, with the paper's published numbers as provenance.

Every constant that the performance model depends on is defined here
with a comment naming the paper section (or the calibration experiment)
it comes from, so the reproduction's assumptions are auditable in one
place.  Derived throughputs (e.g. ns/cell for an 80^3 LBM step) live in
``repro.perf.calibration``.
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1_000_000          # decimal MB, as GPU marketing (and the paper) use
MiB = 1 << 20
GB = 1_000_000_000


@dataclass(frozen=True)
class GPUSpec:
    """A graphics card, as seen by the simulator.

    Attributes
    ----------
    name:
        Marketing name.
    fragment_pipes:
        Parallel fragment processors ("up to 16 fragments ... processed
        in parallel", Sec 2).
    core_clock_hz:
        Fragment-pipeline clock.
    fragment_gflops:
        Peak 4-wide MAD throughput of the fragment stage; the paper
        quotes 16 GFlops for the FX 5800 Ultra (Sec 3) and ~40 GFlops
        observed for the 6800 Ultra (Sec 1).
    texture_memory_bytes:
        On-board memory (128 MB for the FX 5800 Ultra).
    usable_lattice_bytes:
        Portion actually allocatable for lattice data; the paper
        measured "at most 86 MB" on the 128 MB FX 5800 Ultra, yielding
        a 92^3 maximum lattice (Sec 2).  Calibrated so that exactly
        92^3 fits under the packed-layout footprint of 112 B/cell
        (see ``repro.gpu.packing``).
    memory_bandwidth_gbps:
        On-board texture memory bandwidth (35.2 GB/s quoted for the
        6800 Ultra; 16 GB/s datasheet for the FX 5800 Ultra).
    lbm_throughput_scale:
        Relative LBM fragment throughput vs the FX 5800 Ultra; used to
        derive per-pass timing for the other cards (5900 Ultra treated
        as equal-generation ~1.0; 6800 Ultra "at least 2.5 times
        faster", Sec 4.4).
    price_usd:
        Street price the paper quotes ($399 in April 2003 for the
        FX 5800 Ultra).
    """

    name: str
    fragment_pipes: int
    core_clock_hz: float
    fragment_gflops: float
    texture_memory_bytes: int
    usable_lattice_bytes: int
    memory_bandwidth_gbps: float
    lbm_throughput_scale: float
    price_usd: float


@dataclass(frozen=True)
class CPUSpec:
    """A host CPU for the software LBM baseline.

    ``lbm_ns_per_cell`` is the calibrated single-thread D3Q19 BGK cost
    (no SSE, as in the paper's comparison): the Xeon 2.4 GHz value is
    fixed by Table 1 (1420 ms for an 80^3 sub-domain = 2773 ns/cell);
    the P4 2.53 GHz value is fixed by the Sec 4.2 single-GPU result
    (FX 5900 Ultra about 8x faster).
    """

    name: str
    clock_hz: float
    peak_gflops: float
    lbm_ns_per_cell: float
    sse_speedup: float = 2.5   # Sec 4.4: SSE "about 2 to 3 times faster"


@dataclass(frozen=True)
class BusSpec:
    """GPU <-> host bus with asymmetric bandwidth (Sec 3).

    ``overhead_s`` is the fixed per-transfer initialisation cost (the
    paper minimises the number of read operations precisely because
    this overhead is large).
    """

    name: str
    downstream_bytes_per_s: float   # host -> GPU
    upstream_bytes_per_s: float     # GPU -> host (readback)
    overhead_s: float

    def downstream_time(self, nbytes: int) -> float:
        """Seconds to push ``nbytes`` to the GPU."""
        return self.overhead_s + nbytes / self.downstream_bytes_per_s

    def upstream_time(self, nbytes: int) -> float:
        """Seconds to read ``nbytes`` back from the GPU."""
        return self.overhead_s + nbytes / self.upstream_bytes_per_s


# --------------------------------------------------------------------------
# GPUs
# --------------------------------------------------------------------------

#: The cluster's GPU: nVIDIA GeForce FX 5800 Ultra ($399, April 2003).
GEFORCE_FX_5800_ULTRA = GPUSpec(
    name="GeForce FX 5800 Ultra",
    fragment_pipes=8,               # 4x2 architecture
    core_clock_hz=500e6,
    fragment_gflops=16.0,           # Sec 3: "theoretical peak of 16 Gflops"
    texture_memory_bytes=128 * MB,
    usable_lattice_bytes=87_300_000,  # "at most 86 MB" measured; see class doc
    memory_bandwidth_gbps=16.0,
    lbm_throughput_scale=1.0,
    price_usd=399.0,
)

#: Used for the Sec 4.2 single-GPU comparison (8x over a P4 2.53 GHz).
GEFORCE_FX_5900_ULTRA = GPUSpec(
    name="GeForce FX 5900 Ultra",
    fragment_pipes=8,
    core_clock_hz=450e6,
    fragment_gflops=16.0,
    texture_memory_bytes=256 * MB,
    usable_lattice_bytes=180_000_000,
    memory_bandwidth_gbps=27.2,
    lbm_throughput_scale=1.0,       # same generation; see CPUSpec doc
    price_usd=499.0,
)

#: Sec 1/4.4: "observed to reach 40 GFlops", "at least 2.5 times faster".
GEFORCE_6800_ULTRA = GPUSpec(
    name="GeForce 6800 Ultra",
    fragment_pipes=16,
    core_clock_hz=400e6,
    fragment_gflops=40.0,
    texture_memory_bytes=256 * MB,
    usable_lattice_bytes=180_000_000,
    memory_bandwidth_gbps=35.2,     # Sec 1
    lbm_throughput_scale=2.5,
    price_usd=499.0,
)

# --------------------------------------------------------------------------
# CPUs
# --------------------------------------------------------------------------

#: Cluster node CPU (one of the two Xeons used for the CPU baseline).
#: 1420 ms per 80^3 step (Table 1) -> 1420e6 ns / 512000 cells.
XEON_2_4 = CPUSpec(
    name="Pentium Xeon 2.4 GHz",
    clock_hz=2.4e9,
    peak_gflops=5.0,                # Sec 3: the dual "reaches approximately
                                    # 10 Gflops" -> 5 per processor
    lbm_ns_per_cell=1420e6 / (80 ** 3),
)

#: Sec 4.2 baseline: "Pentium IV 2.53GHz without using SSE instructions".
#: Calibrated so FX 5900 Ultra / P4 = 8x.
PENTIUM4_2_53 = CPUSpec(
    name="Pentium 4 2.53 GHz",
    clock_hz=2.53e9,
    peak_gflops=5.06,
    lbm_ns_per_cell=8.0 * 417.97,   # 8 x the FX-class per-cell cost
)

# --------------------------------------------------------------------------
# Buses
# --------------------------------------------------------------------------

#: Sec 3: "2.1GB/sec peak for downstream and 133MB/sec peak for upstream".
#: The per-transfer overhead is calibrated (with the gather-pass cost in
#: ``repro.perf.calibration``) against the Table 1 "GPU and CPU
#: Communication" column (13 ms with one neighbour, ~50 ms plateau).
AGP_8X = BusSpec(
    name="AGP 8x",
    downstream_bytes_per_s=2.1e9,
    upstream_bytes_per_s=133e6,
    overhead_s=1.0e-3,
)

#: Sec 3: "a graphics card can communicate with the system at 4GB/sec in
#: both upstream and downstream directions" — the what-if of Sec 4.4.
PCIE_X16 = BusSpec(
    name="PCI-Express x16",
    downstream_bytes_per_s=4.0e9,
    upstream_bytes_per_s=4.0e9,
    overhead_s=0.2e-3,
)
