"""The simulated GPU device.

Combines texture memory, the fragment-pass engine and the host bus into
one object with a *simulated clock*: every render pass and every
GPU<->host transfer advances ``clock_s`` according to the timing model
calibrated in :mod:`repro.perf.calibration`.  The numerics are executed
for real; only time is modeled.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.gpu.fragment import FragmentProgram, Rect, RenderContext
from repro.gpu.specs import AGP_8X, GEFORCE_FX_5800_ULTRA, BusSpec, GPUSpec
from repro.gpu.texture import TextureMemory, TextureStack


class SimulatedGPU:
    """A programmable GPU with a byte-accounted memory and a modeled clock.

    Parameters
    ----------
    spec:
        The card (default: the cluster's GeForce FX 5800 Ultra).
    bus:
        Host bus (default AGP 8x, Sec 3).
    enforce_memory:
        If False, the texture-memory budget is not enforced (useful for
        running paper-scale sub-domains whose *timing* is modeled while
        numerics run at full precision on the host's RAM).
    """

    def __init__(self, spec: GPUSpec = GEFORCE_FX_5800_ULTRA,
                 bus: BusSpec = AGP_8X, enforce_memory: bool = True) -> None:
        # Imported here to avoid a package cycle (perf imports gpu.specs).
        from repro.perf import calibration as cal

        self.spec = spec
        self.bus = bus
        self.cal = cal
        capacity = spec.usable_lattice_bytes if enforce_memory else 1 << 62
        self.memory = TextureMemory(capacity)
        self.clock_s = 0.0
        self.pass_seconds: dict[str, float] = defaultdict(float)
        self.pass_counts: dict[str, int] = defaultdict(int)
        self.bytes_up = 0
        self.bytes_down = 0

    # -- resources ------------------------------------------------------
    def new_stack(self, width: int, height: int, depth: int,
                  name: str = "stack") -> TextureStack:
        """Allocate a stack of 2D textures in device memory."""
        return TextureStack(self.memory, width, height, depth, name=name)

    # -- timing ---------------------------------------------------------
    def pass_time_s(self, program: FragmentProgram, fragments: int) -> float:
        """Modeled duration of a pass over ``fragments`` fragments.

        Per-fragment cost = alu_ops * NS_PER_ALU + tex_fetches *
        NS_PER_FETCH, scaled by the card's relative LBM throughput.
        The two constants are calibrated so that the full D3Q19 pass
        suite reproduces the paper's 214 ms / 80^3 step on the FX 5800
        Ultra (see ``repro.perf.calibration``).
        """
        per_frag_ns = (program.alu_ops * self.cal.GPU_NS_PER_ALU
                       + program.tex_fetches * self.cal.GPU_NS_PER_FETCH)
        return fragments * per_frag_ns * 1e-9 / self.spec.lbm_throughput_scale

    def charge(self, name: str, seconds: float) -> None:
        """Advance the device clock, attributing time to ``name``."""
        self.clock_s += seconds
        self.pass_seconds[name] += seconds

    # -- render ---------------------------------------------------------
    @staticmethod
    def _batch_range(program: FragmentProgram, z_range):
        """The contiguous ``range`` to render in one batched kernel call,
        or None when the program (or the z iteration) requires the
        slice-by-slice loop."""
        if (program.batchable and isinstance(z_range, range)
                and z_range.step == 1 and len(z_range) > 1):
            return z_range
        return None

    def run_pass(self, program: FragmentProgram, target: TextureStack,
                 bindings, rect: Rect, z_range=None, wrap: bool = False,
                 consts=None, charge: bool = True) -> None:
        """Execute one render pass.

        For every slice in ``z_range`` the kernel renders ``rect`` into
        an off-screen buffer; all outputs are committed to ``target``
        only after the whole pass, enforcing the no-read-own-target
        pipeline rule even across slices (required by Z streaming).
        ``batchable`` programs render a contiguous ``z_range`` in a
        single kernel invocation — same texels, same modeled time,
        far less simulator overhead.

        ``target`` may also appear in ``bindings`` *as input*: kernels
        read the pre-pass contents.
        """
        if z_range is None:
            z_range = range(target.depth)
        zb = self._batch_range(program, z_range)
        if zb is not None:
            ctx = RenderContext(bindings, zb, rect, wrap=wrap, consts=consts)
            out = np.asarray(program.kernel(ctx), dtype=np.float32)
            expected = (len(zb), rect.height, rect.width, 4)
            if out.shape != expected:
                raise ValueError(
                    f"pass {program.name!r} produced {out.shape}, expected {expected}")
            target.data[zb.start:zb.stop, rect.y0:rect.y1, rect.x0:rect.x1] = out
            n = len(zb) * rect.fragments
        else:
            pending: list[tuple[int, np.ndarray]] = []
            for z in z_range:
                ctx = RenderContext(bindings, z, rect, wrap=wrap, consts=consts)
                out = program.kernel(ctx)
                out = np.asarray(out, dtype=np.float32)
                expected = (rect.height, rect.width, 4)
                if out.shape != expected:
                    raise ValueError(
                        f"pass {program.name!r} produced {out.shape}, expected {expected}")
                pending.append((z, out))
            for z, out in pending:
                target.data[z, rect.y0:rect.y1, rect.x0:rect.x1] = out
            n = len(pending) * rect.fragments
        if charge:
            self.charge(program.name, self.pass_time_s(program, n))
        self.pass_counts[program.name] += 1

    def run_pass_group(self, passes, rect: Rect, z_range=None, wrap: bool = False,
                       consts=None) -> None:
        """Run several passes against a *consistent snapshot* of state.

        ``passes`` is a list of ``(program, target, bindings)``.  All
        kernels read pre-group texture contents; outputs are committed
        only after every pass has run.  Models rendering each pass to
        its own pixel buffer before any copy-back — required when
        passes exchange data between stacks (e.g. bounce-back swaps
        opposite distributions living in different stacks).
        """
        if not passes:
            return
        first_target = passes[0][1]
        if z_range is None:
            z_range = range(first_target.depth)
        elif not isinstance(z_range, range):
            z_range = list(z_range)  # re-iterable across the pass list
        pending = []
        for program, target, bindings in passes:
            zb = self._batch_range(program, z_range)
            if zb is not None:
                ctx = RenderContext(bindings, zb, rect, wrap=wrap, consts=consts)
                out = np.asarray(program.kernel(ctx), dtype=np.float32)
                expected = (len(zb), rect.height, rect.width, 4)
                if out.shape != expected:
                    raise ValueError(
                        f"pass {program.name!r} produced {out.shape}, expected {expected}")
                outs = [(zb, out)]
                n = len(zb) * rect.fragments
            else:
                outs = []
                for z in z_range:
                    ctx = RenderContext(bindings, z, rect, wrap=wrap, consts=consts)
                    out = np.asarray(program.kernel(ctx), dtype=np.float32)
                    expected = (rect.height, rect.width, 4)
                    if out.shape != expected:
                        raise ValueError(
                            f"pass {program.name!r} produced {out.shape}, expected {expected}")
                    outs.append((z, out))
                n = len(outs) * rect.fragments
            pending.append((program, target, outs, n))
        for program, target, outs, n in pending:
            for z, out in outs:
                zi = slice(z.start, z.stop) if isinstance(z, range) else z
                target.data[zi, rect.y0:rect.y1, rect.x0:rect.x1] = out
            self.charge(program.name, self.pass_time_s(program, n))
            self.pass_counts[program.name] += 1

    # -- host transfers ---------------------------------------------------
    def readback(self, array: np.ndarray, label: str = "readback") -> float:
        """GPU -> host transfer (glGetTexImage analogue).

        Charges the calibrated *effective* upstream cost: a fixed
        pipeline-flush overhead plus bytes at the driver-effective rate
        (far below the 133 MB/s AGP peak, which is itself an order of
        magnitude below downstream — Sec 3).  Returns seconds charged.
        """
        nbytes = array.nbytes
        self.bytes_up += nbytes
        t = self.cal.READBACK_FLUSH_S + nbytes / self.cal.effective_upstream_bytes_per_s(self.bus)
        self.charge(label, t)
        return t

    def upload(self, array: np.ndarray, label: str = "upload") -> float:
        """Host -> GPU transfer (texture update). Returns seconds charged."""
        nbytes = array.nbytes
        self.bytes_down += nbytes
        t = self.cal.UPLOAD_OVERHEAD_S + nbytes / self.cal.effective_downstream_bytes_per_s(self.bus)
        self.charge(label, t)
        return t

    # -- reporting --------------------------------------------------------
    def timing_report(self) -> dict[str, float]:
        """Seconds attributed to each pass/transfer label so far."""
        return dict(self.pass_seconds)

    def reset_clock(self) -> None:
        """Zero the clock and per-label accounting (keeps memory state)."""
        self.clock_s = 0.0
        self.pass_seconds.clear()
        self.pass_counts.clear()
        self.bytes_up = 0
        self.bytes_down = 0
