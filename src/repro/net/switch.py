"""Timing model of the 1 Gigabit Ethernet switch (Secs 3, 4.3).

The paper's two experimental findings about this network (Sec 4.3):

1. "During the time when a node is sending data to another node, if a
   third node tries to send data to either of those nodes, the
   interruption will break the smooth data transfer and may
   dramatically reduce the performance."
2. "Assuming the total communication data size is the same, a
   simulation in which each node transfers data to more neighbors has
   a considerably larger communication time than a simulation in which
   each node transfers to fewer neighbors."

Hence the scheduled pairwise exchange (Fig 7).  This module provides:

* :meth:`GigabitSwitch.round_time` — duration of one schedule step in
  which disjoint node pairs exchange messages simultaneously;
* :meth:`GigabitSwitch.phase_time` — a full exchange phase (the
  per-time-step communication): fixed phase overhead + the scheduled
  rounds + the free-running drift penalty at large node counts;
* :meth:`GigabitSwitch.naive_time` — the unscheduled all-at-once
  baseline, where fan-out causes interruptions (finding 1/2 above);
* :meth:`GigabitSwitch.reserve` — port reservation for the threaded
  :class:`~repro.net.simmpi.SimComm` point-to-point path, where
  contention emerges from overlapping reservations rather than a
  closed-form penalty.

All constants are calibrated in :mod:`repro.perf.calibration` against
the "Network Communication" column of Table 1.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.perf import calibration as cal
from repro.perf.trace import NETWORK_RANK, NULL_TRACER, SIM_CLOCK


@dataclass(frozen=True)
class RoundTiming:
    """Timing decomposition of one scheduled exchange round."""

    n_pairs: int
    max_bytes: int
    seconds: float


class GigabitSwitch:
    """The cluster's 1 Gb/s-per-port switch.

    Parameters
    ----------
    effective_bytes_per_s:
        Achievable per-flow throughput (default: the calibrated
        TCP-over-1GbE value, far below the 125 MB/s line rate).
    message_overhead_scale, phase_overhead_scale, drift_scale:
        Multipliers on the calibrated per-message envelope overhead,
        fixed per-phase overhead and free-running drift penalty.  The
        GbE defaults are 1.0; faster fabrics (e.g. Myrinet's OS-bypass
        stack) shrink these without replacing the timing structure, so
        subclasses keep the base tracing behaviour.
    """

    def __init__(self, effective_bytes_per_s: float | None = None,
                 message_overhead_scale: float = 1.0,
                 phase_overhead_scale: float = 1.0,
                 drift_scale: float = 1.0) -> None:
        self.effective_bytes_per_s = (
            cal.NET_EFFECTIVE_BYTES_PER_S if effective_bytes_per_s is None
            else float(effective_bytes_per_s))
        self.message_overhead_scale = float(message_overhead_scale)
        self.phase_overhead_scale = float(phase_overhead_scale)
        self.drift_scale = float(drift_scale)
        # Port reservation state for the threaded point-to-point path.
        self._lock = threading.Lock()
        self._port_free_at: dict[int, float] = {}
        self.contention_events = 0
        #: Span tracer (:mod:`repro.perf.trace`).  When enabled,
        #: :meth:`phase_time` records each scheduled exchange round as
        #: a simulated-clock span, making the Fig-7 communication
        #: schedule visible per step on the network track.
        self.tracer = NULL_TRACER
        self._trace_clock_s = 0.0

    # -- scheduled (round-based) path -----------------------------------
    def message_time(self, nbytes: int, messages: int = 1) -> float:
        """One pair transfer: per-envelope overhead + payload at the
        effective rate.  ``messages`` counts the wire envelopes the
        bytes are split over (1 on the merged wire — the default keeps
        the calibrated single-message expression bit-identical; the
        per-face wire pays the envelope overhead once per face/edge
        message)."""
        if messages == 1:
            return (self.message_overhead_scale * cal.NET_STEP_OVERHEAD_S
                    + nbytes / self.effective_bytes_per_s)
        return (messages * self.message_overhead_scale * cal.NET_STEP_OVERHEAD_S
                + nbytes / self.effective_bytes_per_s)

    def round_time(self, pair_bytes: list[int],
                   pair_messages: list[int] | None = None) -> RoundTiming:
        """One schedule step: disjoint pairs exchange simultaneously.

        The step ends when the slowest pair finishes; concurrent flows
        add straggler time (stall tails), which is the calibrated
        per-pair term.  ``pair_messages`` (parallel to ``pair_bytes``)
        charges per-envelope overhead when a pair splits its bytes over
        several messages; omitted, every pair is one envelope (the
        original calibrated model, bit-identical).
        """
        if not pair_bytes:
            return RoundTiming(0, 0, 0.0)
        worst = max(pair_bytes)
        if pair_messages is None:
            slowest = self.message_time(worst)
        else:
            slowest = max(self.message_time(b, m)
                          for b, m in zip(pair_bytes, pair_messages))
        secs = slowest + cal.NET_STRAGGLER_S_PER_PAIR * len(pair_bytes)
        return RoundTiming(len(pair_bytes), worst, secs)

    def phase_time(self, rounds: list[list[int]], nodes: int,
                   round_messages: list[list[int]] | None = None) -> float:
        """A full exchange phase: ``rounds`` is a list of per-step
        pair-byte lists (``round_messages``, when given, the parallel
        per-pair envelope counts).  Adds the fixed phase overhead and,
        beyond the calibrated drift-free node count, the free-running
        drift penalty of Table 1's 28-32 node rows."""
        if round_messages is None:
            paired = [(r, None) for r in rounds if r]
        else:
            paired = [(r, m) for r, m in zip(rounds, round_messages) if r]
        if not paired:
            return 0.0
        tr = self.tracer
        t = self.phase_overhead_scale * cal.NET_PHASE_OVERHEAD_S
        sim_t = self._trace_clock_s + t
        for r, m in paired:
            rt = self.round_time(r, m)
            t += rt.seconds
            if tr.enabled:
                tr.add_span("net.round", sim_t, sim_t + rt.seconds,
                            rank=NETWORK_RANK, clock=SIM_CLOCK,
                            pairs=rt.n_pairs, max_bytes=rt.max_bytes)
                sim_t += rt.seconds
        t += self.drift_scale * cal.drift_penalty_s(nodes)
        if tr.enabled:
            tr.add_span("net.phase", self._trace_clock_s,
                        self._trace_clock_s + t,
                        rank=NETWORK_RANK, clock=SIM_CLOCK,
                        rounds=len(paired), nodes=nodes)
            self._trace_clock_s += t
        return t

    # -- unscheduled baseline (Sec 4.3 ablation) --------------------------
    def naive_time(self, sends: dict[int, list[tuple[int, int]]], nodes: int,
                   ) -> float:
        """All nodes fire all their sends at once (no schedule).

        ``sends`` maps sender -> list of (dest, nbytes).  Each
        destination port serializes its incoming messages; every
        message beyond the first arriving at a busy port pays the
        interruption stall with the calibrated probability (expected
        value used — the model is deterministic).
        """
        port_time: dict[int, float] = {}
        interruptions = 0.0
        for src in sorted(sends):
            fan_out = len(sends[src])
            for dst, nbytes in sends[src]:
                busy = port_time.get(dst, 0.0)
                if busy > 0.0:
                    interruptions += (cal.NAIVE_INTERRUPT_PROB_PER_EXTRA_NEIGHBOR
                                      * cal.NAIVE_INTERRUPT_STALL_S)
                extra = (fan_out - 1) * (cal.NAIVE_INTERRUPT_PROB_PER_EXTRA_NEIGHBOR
                                         * cal.NAIVE_INTERRUPT_STALL_S)
                port_time[dst] = busy + self.message_time(nbytes) + extra
        if not port_time:
            return 0.0
        return (self.phase_overhead_scale * cal.NET_PHASE_OVERHEAD_S
                + max(port_time.values()) + interruptions
                + self.drift_scale * cal.drift_penalty_s(nodes))

    # -- threaded point-to-point path -------------------------------------
    def reserve(self, dst: int, ready_s: float, nbytes: int) -> tuple[float, float]:
        """Reserve the destination ingress port for one message.

        Returns (start, end) in simulated seconds.  If the port is busy
        past ``ready_s`` the transfer waits (that wait *is* the
        interruption cost of Sec 4.3's first finding) and a contention
        event is counted.
        """
        duration = self.message_time(nbytes)
        with self._lock:
            free = self._port_free_at.get(dst, 0.0)
            start = max(ready_s, free)
            if free > ready_s:
                self.contention_events += 1
            end = start + duration
            self._port_free_at[dst] = end
            return start, end

    def reset(self) -> None:
        """Clear port reservations, counters and the trace clock."""
        with self._lock:
            self._port_free_at.clear()
            self.contention_events = 0
            self._trace_clock_s = 0.0
