"""SimMPI — an in-process, thread-per-rank message-passing layer.

The paper "use[s] MPI for data transfer across the network during
execution" (Sec 3).  With no multi-host cluster available, SimMPI runs
each rank as a thread and carries numpy buffers through in-memory
mailboxes, while a :class:`~repro.net.switch.GigabitSwitch` advances
per-rank *simulated clocks* so communication costs match the modeled
network.

The API follows the mpi4py idioms the guides recommend: upper-case
``Send``/``Recv`` take numpy arrays (buffer-like, copied exactly once
at the send side, as a real MPI would serialize them), and collectives
(`barrier`, `allreduce`, `gather`, `bcast`, `alltoall`) synchronise the
simulated clocks the way a real implementation's semantics would.

Example
-------
>>> from repro.net import SimCluster
>>> def main(comm):
...     import numpy as np
...     data = np.full(4, comm.rank, dtype=np.float64)
...     right = (comm.rank + 1) % comm.size
...     left = (comm.rank - 1) % comm.size
...     got = comm.sendrecv(data, dest=right, source=left)
...     return float(got[0])
>>> SimCluster(4).run(main)
[3.0, 0.0, 1.0, 2.0]
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.net.switch import GigabitSwitch
from repro.perf import calibration as cal
from repro.perf.trace import NULL_TRACER, Tracer

#: Per-rank cost of one barrier (flat-tree MPI over TCP), multiplied by
#: log2(size); small against the calibrated message costs.
BARRIER_BASE_S = 0.5e-3


@dataclass
class _Envelope:
    payload: np.ndarray
    arrival_s: float


class _Mailboxes:
    """Tag- and peer-addressed mailboxes shared by all ranks.

    A plain dict keyed by ``(src, dst, tag)``: probing a key never
    materialises a mailbox, and a deque drained to empty is dropped, so
    the table stays bounded by the number of in-flight messages (a
    ``defaultdict`` here grows by one empty deque per key ever probed).
    """

    def __init__(self) -> None:
        self._boxes: dict[tuple[int, int, int], deque] = {}
        self._cond = threading.Condition()

    def put(self, src: int, dst: int, tag: int, env: _Envelope) -> None:
        with self._cond:
            self._boxes.setdefault((src, dst, tag), deque()).append(env)
            self._cond.notify_all()

    def probe(self, src: int, dst: int, tag: int) -> bool:
        """True if a message is waiting (never allocates a mailbox)."""
        with self._cond:
            return bool(self._boxes.get((src, dst, tag)))

    def get(self, src: int, dst: int, tag: int, timeout: float) -> _Envelope:
        key = (src, dst, tag)
        with self._cond:
            ok = self._cond.wait_for(lambda: self._boxes.get(key), timeout=timeout)
            if not ok:
                raise TimeoutError(
                    f"rank {dst} timed out receiving from {src} (tag {tag})")
            box = self._boxes[key]
            env = box.popleft()
            if not box:
                del self._boxes[key]
            return env


class Request:
    """Handle for a nonblocking SimMPI operation (mpi4py-style).

    For a receive, :meth:`wait` blocks for the message, advances the
    owner's simulated clock to the arrival time priced by the switch,
    and returns the payload — so any ``compute`` the rank performed
    between ``Irecv`` and ``wait`` genuinely hides network time, which
    is exactly the paper's Sec-4.4 overlap.  Send requests complete
    immediately (the NIC drains in the background) and ``wait`` returns
    None.
    """

    __slots__ = ("_comm", "_source", "_tag", "_done", "_payload")

    def __init__(self, comm: "SimComm", source: int | None = None,
                 tag: int = 0) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = source is None
        self._payload = None

    def test(self) -> bool:
        """True if :meth:`wait` would not block."""
        if self._done:
            return True
        return self._comm._cluster.mail.probe(self._source, self._comm.rank,
                                              self._tag)

    def wait(self):
        """Complete the operation; returns the payload (None for sends)."""
        if self._done:
            return self._payload
        comm = self._comm
        env = comm._cluster.mail.get(self._source, comm.rank, self._tag,
                                     timeout=comm._cluster.timeout_s)
        comm.clock_s = max(comm.clock_s, env.arrival_s)
        self._payload = env.payload
        self._done = True
        return self._payload


class SimComm:
    """Per-rank communicator handle (one per thread)."""

    def __init__(self, cluster: "SimCluster", rank: int) -> None:
        self._cluster = cluster
        self.rank = rank
        self.size = cluster.size
        self.clock_s = 0.0

    # -- local time -------------------------------------------------------
    def compute(self, seconds: float) -> None:
        """Advance this rank's simulated clock by modeled work."""
        if seconds < 0:
            raise ValueError("negative compute time")
        self.clock_s += seconds

    # -- point to point -----------------------------------------------------
    def Send(self, array: np.ndarray, dest: int, tag: int = 0,
             meta: dict | None = None) -> None:
        """Blocking buffer send; advances the sender past the transfer.

        ``meta`` (e.g. ``{"raw_bytes": n}`` for compressed halo frames)
        is merged into the traced message event.
        """
        arr = np.ascontiguousarray(array)
        start, end = self._cluster.switch.reserve(dest, self.clock_s, arr.nbytes)
        self.clock_s = end
        self._cluster.tracer.message(self.rank, dest, tag, arr.nbytes,
                                     start, end, **(meta or {}))
        self._cluster.mail.put(self.rank, dest, tag,
                               _Envelope(arr.copy(), arrival_s=end))

    def Recv(self, source: int, tag: int = 0) -> np.ndarray:
        """Blocking receive; the receiver's clock advances to arrival."""
        env = self._cluster.mail.get(source, self.rank, tag,
                                     timeout=self._cluster.timeout_s)
        self.clock_s = max(self.clock_s, env.arrival_s)
        return env.payload

    def Isend(self, array: np.ndarray, dest: int, tag: int = 0,
              meta: dict | None = None) -> Request:
        """Non-blocking send: the payload leaves now, the sender only
        pays the envelope overhead (the NIC DMAs in the background)."""
        arr = np.ascontiguousarray(array)
        start, end = self._cluster.switch.reserve(dest, self.clock_s, arr.nbytes)
        self.clock_s += cal.NET_STEP_OVERHEAD_S
        self._cluster.tracer.message(self.rank, dest, tag, arr.nbytes,
                                     start, end, **(meta or {}))
        self._cluster.mail.put(self.rank, dest, tag,
                               _Envelope(arr.copy(), arrival_s=end))
        return Request(self)

    def Irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive: posting is free; the clock only
        advances to the switch-priced arrival at ``Request.wait``, so
        compute performed in between overlaps the transfer."""
        return Request(self, source=source, tag=tag)

    def Waitall(self, requests) -> list:
        """Complete every request; returns their payloads in order."""
        return [req.wait() for req in requests]

    def sendrecv(self, array: np.ndarray, dest: int, source: int | None = None,
                 tag: int = 0, meta: dict | None = None) -> np.ndarray:
        """Simultaneous exchange (the Fig-7 pairwise primitive).

        Full duplex: the send and the receive overlap, so the cost is a
        single message time, not two.
        """
        if source is None:
            source = dest
        arr = np.ascontiguousarray(array)
        start, end = self._cluster.switch.reserve(dest, self.clock_s, arr.nbytes)
        self._cluster.tracer.message(self.rank, dest, tag, arr.nbytes,
                                     start, end, **(meta or {}))
        self._cluster.mail.put(self.rank, dest, tag, _Envelope(arr.copy(), end))
        env = self._cluster.mail.get(source, self.rank, tag,
                                     timeout=self._cluster.timeout_s)
        self.clock_s = max(end, env.arrival_s)
        return env.payload

    # -- collectives ----------------------------------------------------
    def _coll_hops(self) -> int:
        """Tree depth of a collective: 0 on a single rank (a collective
        with no peers touches no wire and must cost no network time)."""
        return int(np.ceil(np.log2(self.size))) if self.size > 1 else 0

    def barrier(self) -> None:
        """Synchronise all ranks; clocks advance to the global maximum
        plus the modeled barrier cost."""
        cost = BARRIER_BASE_S * max(1, self._coll_hops()) if self.size > 1 else 0.0
        t, _ = self._cluster._collective_sync(self.clock_s)
        self.clock_s = t + cost

    def allreduce(self, value, op=np.add):
        """Reduce a scalar/array across ranks; everyone gets the result."""
        t, vals = self._cluster._collective_sync(self.clock_s,
                                                 payload=(self.rank, value))
        ordered = [v for _, v in sorted(vals, key=lambda p: p[0])]
        out = ordered[0]
        for v in ordered[1:]:
            out = op(out, v)
        self.clock_s = t + self._msg_cost_for(out) * self._coll_hops()
        return out

    def gather(self, value, root: int = 0):
        """Gather per-rank values to ``root`` (None elsewhere)."""
        t, vals = self._cluster._collective_sync(self.clock_s,
                                                 payload=(self.rank, value))
        self.clock_s = t + (self._msg_cost_for(value) if self.size > 1 else 0.0)
        if self.rank == root:
            return [v for _, v in sorted(vals, key=lambda p: p[0])]
        return None

    def allgather(self, value):
        """Gather per-rank values everywhere."""
        t, vals = self._cluster._collective_sync(self.clock_s,
                                                 payload=(self.rank, value))
        self.clock_s = t + self._msg_cost_for(value) * self._coll_hops()
        return [v for _, v in sorted(vals, key=lambda p: p[0])]

    def bcast(self, value, root: int = 0):
        """Broadcast ``value`` from ``root``."""
        t, vals = self._cluster._collective_sync(self.clock_s,
                                                 payload=(self.rank, value))
        out = dict(vals)[root]
        self.clock_s = t + self._msg_cost_for(out) * self._coll_hops()
        return out

    def _msg_cost_for(self, value) -> float:
        nbytes = value.nbytes if hasattr(value, "nbytes") else 8
        return self._cluster.switch.message_time(nbytes)


class SimCluster:
    """Run an SPMD function on ``size`` simulated ranks.

    Parameters
    ----------
    size:
        Number of ranks (nodes).
    switch:
        Shared :class:`GigabitSwitch`; a fresh one by default.
    timeout_s:
        Wall-clock receive timeout — turns deadlocks into errors.
    """

    def __init__(self, size: int, switch: GigabitSwitch | None = None,
                 timeout_s: float = 60.0,
                 tracer: Tracer | None = None) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.switch = switch if switch is not None else GigabitSwitch()
        #: Span tracer: every Send/Isend/sendrecv records a
        #: simulated-clock message event (src, dst, tag, bytes,
        #: switch-priced start/end) when enabled.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.mail = _Mailboxes()
        self.timeout_s = timeout_s
        self._barrier = threading.Barrier(size)
        self._sync_lock = threading.Lock()
        self._sync_max = 0.0
        self._payloads: list = []

    def _collective_sync(self, clock_s: float, payload=None) -> tuple[float, list]:
        """Internal rendezvous: accumulate clocks/payloads, wait for all
        ranks, snapshot, then reset for the next collective.  Returns
        ``(max_clock, payload_snapshot)``."""
        with self._sync_lock:
            self._sync_max = max(self._sync_max, clock_s)
            if payload is not None:
                self._payloads.append(payload)
        self._barrier.wait()
        t = self._sync_max
        vals = list(self._payloads)
        self._barrier.wait()
        # Every thread resets (idempotent); the barriers around the reset
        # guarantee no thread is still reading / already accumulating.
        with self._sync_lock:
            self._sync_max = 0.0
            self._payloads = []
        self._barrier.wait()
        return t, vals

    def run(self, main, *args) -> list:
        """Execute ``main(comm, *args)`` on every rank; returns a list
        of per-rank results.

        Failure semantics: *every* rank's real exception (anything but
        the ``BrokenBarrierError`` fallout of another rank's abort) is
        collected into one aggregated :class:`RuntimeError`, chained
        from the first of them; ranks that neither return nor raise
        within the join deadline raise instead of leaving ``None``
        results behind silently.  The cluster resets its barrier, sync
        and mailbox state on entry, so it remains usable after a failed
        run.
        """
        # A failed run leaves the barrier aborted and possibly stale
        # sync/mailbox state behind; reset so the cluster is reusable.
        self._barrier = threading.Barrier(self.size)
        self._sync_max = 0.0
        self._payloads = []
        self.mail = _Mailboxes()

        results: list = [None] * self.size
        errors: list = [None] * self.size
        comms = [SimComm(self, r) for r in range(self.size)]
        barrier = self._barrier

        def runner(r: int) -> None:
            try:
                results[r] = main(comms[r], *args)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors[r] = exc
                # Unblock peers waiting on this rank.
                barrier.abort()

        threads = [threading.Thread(target=runner, args=(r,), daemon=True)
                   for r in range(self.size)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + self.timeout_s * 2
        for t in threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        hung = [r for r, t in enumerate(threads) if t.is_alive()]
        real = [(r, e) for r, e in enumerate(errors)
                if e is not None and not isinstance(e, threading.BrokenBarrierError)]
        broken = [(r, e) for r, e in enumerate(errors) if e is not None]
        failed = real or broken
        if failed:
            parts = [f"rank {r} failed: {err!r}" for r, err in failed]
            if hung:
                parts.append(f"ranks {hung} still running at join deadline")
            raise RuntimeError("; ".join(parts)) from failed[0][1]
        if hung:
            raise RuntimeError(
                f"ranks {hung} hung: no result or exception within "
                f"{self.timeout_s * 2:.1f}s join deadline")
        self.clocks = [c.clock_s for c in comms]
        return results
