"""SimMPI — an in-process, thread-per-rank message-passing layer.

The paper "use[s] MPI for data transfer across the network during
execution" (Sec 3).  With no multi-host cluster available, SimMPI runs
each rank as a thread and carries numpy buffers through in-memory
mailboxes, while a :class:`~repro.net.switch.GigabitSwitch` advances
per-rank *simulated clocks* so communication costs match the modeled
network.

The API follows the mpi4py idioms the guides recommend: upper-case
``Send``/``Recv`` take numpy arrays (buffer-like, copied exactly once
at the send side, as a real MPI would serialize them), and collectives
(`barrier`, `allreduce`, `gather`, `bcast`, `alltoall`) synchronise the
simulated clocks the way a real implementation's semantics would.

Example
-------
>>> from repro.net import SimCluster
>>> def main(comm):
...     import numpy as np
...     data = np.full(4, comm.rank, dtype=np.float64)
...     right = (comm.rank + 1) % comm.size
...     left = (comm.rank - 1) % comm.size
...     got = comm.sendrecv(data, dest=right, source=left)
...     return float(got[0])
>>> SimCluster(4).run(main)
[3.0, 0.0, 1.0, 2.0]
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from dataclasses import dataclass

import numpy as np

from repro.net.switch import GigabitSwitch
from repro.perf import calibration as cal

#: Per-rank cost of one barrier (flat-tree MPI over TCP), multiplied by
#: log2(size); small against the calibrated message costs.
BARRIER_BASE_S = 0.5e-3


@dataclass
class _Envelope:
    payload: np.ndarray
    arrival_s: float


class _Mailboxes:
    """Tag- and peer-addressed mailboxes shared by all ranks."""

    def __init__(self) -> None:
        self._boxes: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self._cond = threading.Condition()

    def put(self, src: int, dst: int, tag: int, env: _Envelope) -> None:
        with self._cond:
            self._boxes[(src, dst, tag)].append(env)
            self._cond.notify_all()

    def get(self, src: int, dst: int, tag: int, timeout: float) -> _Envelope:
        key = (src, dst, tag)
        with self._cond:
            ok = self._cond.wait_for(lambda: self._boxes[key], timeout=timeout)
            if not ok:
                raise TimeoutError(
                    f"rank {dst} timed out receiving from {src} (tag {tag})")
            return self._boxes[key].popleft()


class SimComm:
    """Per-rank communicator handle (one per thread)."""

    def __init__(self, cluster: "SimCluster", rank: int) -> None:
        self._cluster = cluster
        self.rank = rank
        self.size = cluster.size
        self.clock_s = 0.0

    # -- local time -------------------------------------------------------
    def compute(self, seconds: float) -> None:
        """Advance this rank's simulated clock by modeled work."""
        if seconds < 0:
            raise ValueError("negative compute time")
        self.clock_s += seconds

    # -- point to point -----------------------------------------------------
    def Send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        """Blocking buffer send; advances the sender past the transfer."""
        arr = np.ascontiguousarray(array)
        start, end = self._cluster.switch.reserve(dest, self.clock_s, arr.nbytes)
        self.clock_s = end
        self._cluster.mail.put(self.rank, dest, tag,
                               _Envelope(arr.copy(), arrival_s=end))

    def Recv(self, source: int, tag: int = 0) -> np.ndarray:
        """Blocking receive; the receiver's clock advances to arrival."""
        env = self._cluster.mail.get(source, self.rank, tag,
                                     timeout=self._cluster.timeout_s)
        self.clock_s = max(self.clock_s, env.arrival_s)
        return env.payload

    def Isend(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        """Non-blocking send: the payload leaves now, the sender only
        pays the envelope overhead (the NIC DMAs in the background)."""
        arr = np.ascontiguousarray(array)
        start, end = self._cluster.switch.reserve(dest, self.clock_s, arr.nbytes)
        self.clock_s += cal.NET_STEP_OVERHEAD_S
        self._cluster.mail.put(self.rank, dest, tag,
                               _Envelope(arr.copy(), arrival_s=end))

    def sendrecv(self, array: np.ndarray, dest: int, source: int | None = None,
                 tag: int = 0) -> np.ndarray:
        """Simultaneous exchange (the Fig-7 pairwise primitive).

        Full duplex: the send and the receive overlap, so the cost is a
        single message time, not two.
        """
        if source is None:
            source = dest
        arr = np.ascontiguousarray(array)
        start, end = self._cluster.switch.reserve(dest, self.clock_s, arr.nbytes)
        self._cluster.mail.put(self.rank, dest, tag, _Envelope(arr.copy(), end))
        env = self._cluster.mail.get(source, self.rank, tag,
                                     timeout=self._cluster.timeout_s)
        self.clock_s = max(end, env.arrival_s)
        return env.payload

    # -- collectives ----------------------------------------------------
    def barrier(self) -> None:
        """Synchronise all ranks; clocks advance to the global maximum
        plus the modeled barrier cost."""
        cost = BARRIER_BASE_S * max(1, int(np.ceil(np.log2(max(2, self.size)))))
        t, _ = self._cluster._collective_sync(self.clock_s)
        self.clock_s = t + cost

    def allreduce(self, value, op=np.add):
        """Reduce a scalar/array across ranks; everyone gets the result."""
        t, vals = self._cluster._collective_sync(self.clock_s,
                                                 payload=(self.rank, value))
        ordered = [v for _, v in sorted(vals, key=lambda p: p[0])]
        out = ordered[0]
        for v in ordered[1:]:
            out = op(out, v)
        self.clock_s = t + self._msg_cost_for(out) * np.ceil(np.log2(max(2, self.size)))
        return out

    def gather(self, value, root: int = 0):
        """Gather per-rank values to ``root`` (None elsewhere)."""
        t, vals = self._cluster._collective_sync(self.clock_s,
                                                 payload=(self.rank, value))
        self.clock_s = t + self._msg_cost_for(value)
        if self.rank == root:
            return [v for _, v in sorted(vals, key=lambda p: p[0])]
        return None

    def allgather(self, value):
        """Gather per-rank values everywhere."""
        t, vals = self._cluster._collective_sync(self.clock_s,
                                                 payload=(self.rank, value))
        self.clock_s = t + self._msg_cost_for(value) * np.ceil(np.log2(max(2, self.size)))
        return [v for _, v in sorted(vals, key=lambda p: p[0])]

    def bcast(self, value, root: int = 0):
        """Broadcast ``value`` from ``root``."""
        t, vals = self._cluster._collective_sync(self.clock_s,
                                                 payload=(self.rank, value))
        out = dict(vals)[root]
        self.clock_s = t + self._msg_cost_for(out) * np.ceil(np.log2(max(2, self.size)))
        return out

    def _msg_cost_for(self, value) -> float:
        nbytes = value.nbytes if hasattr(value, "nbytes") else 8
        return self._cluster.switch.message_time(nbytes)


class SimCluster:
    """Run an SPMD function on ``size`` simulated ranks.

    Parameters
    ----------
    size:
        Number of ranks (nodes).
    switch:
        Shared :class:`GigabitSwitch`; a fresh one by default.
    timeout_s:
        Wall-clock receive timeout — turns deadlocks into errors.
    """

    def __init__(self, size: int, switch: GigabitSwitch | None = None,
                 timeout_s: float = 60.0) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.switch = switch if switch is not None else GigabitSwitch()
        self.mail = _Mailboxes()
        self.timeout_s = timeout_s
        self._barrier = threading.Barrier(size)
        self._sync_lock = threading.Lock()
        self._sync_max = 0.0
        self._payloads: list = []

    def _collective_sync(self, clock_s: float, payload=None) -> tuple[float, list]:
        """Internal rendezvous: accumulate clocks/payloads, wait for all
        ranks, snapshot, then reset for the next collective.  Returns
        ``(max_clock, payload_snapshot)``."""
        with self._sync_lock:
            self._sync_max = max(self._sync_max, clock_s)
            if payload is not None:
                self._payloads.append(payload)
        self._barrier.wait()
        t = self._sync_max
        vals = list(self._payloads)
        self._barrier.wait()
        # Every thread resets (idempotent); the barriers around the reset
        # guarantee no thread is still reading / already accumulating.
        with self._sync_lock:
            self._sync_max = 0.0
            self._payloads = []
        self._barrier.wait()
        return t, vals

    def run(self, main, *args) -> list:
        """Execute ``main(comm, *args)`` on every rank; returns a list
        of per-rank results (exceptions re-raised with rank context)."""
        results: list = [None] * self.size
        errors: list = [None] * self.size
        comms = [SimComm(self, r) for r in range(self.size)]

        def runner(r: int) -> None:
            try:
                results[r] = main(comms[r], *args)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors[r] = exc
                # Unblock peers waiting on this rank.
                self._barrier.abort()

        threads = [threading.Thread(target=runner, args=(r,), daemon=True)
                   for r in range(self.size)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=self.timeout_s * 2)
        real = [(r, e) for r, e in enumerate(errors)
                if e is not None and not isinstance(e, threading.BrokenBarrierError)]
        broken = [(r, e) for r, e in enumerate(errors) if e is not None]
        for r, err in real or broken:
            raise RuntimeError(f"rank {r} failed: {err!r}") from err
        self.clocks = [c.clock_s for c in comms]
        return results
