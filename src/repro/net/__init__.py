"""Simulated cluster network (Secs 3 and 4.3).

The paper's cluster is 32 HP PCs on a 1 Gigabit Ethernet switch, using
MPI (and, for the paper's own network experiments, raw TCP sockets).
Neither the machines nor the switch are available, so this package
simulates them:

* :mod:`repro.net.switch` — the switch timing model: per-port
  bandwidth, per-message and per-round overheads, straggler growth with
  concurrent pairs, the drift penalty past ~24 free-running nodes, and
  the interruption cost that makes *unscheduled* communication slow
  (the Sec 4.3 findings).  Constants live in
  ``repro.perf.calibration`` with their fits documented.
* :mod:`repro.net.simmpi` — an in-process, thread-per-rank message
  passing layer with an mpi4py-like API (``Send``/``Recv``/
  ``sendrecv``/``barrier``/``allreduce``/...) whose simulated clocks
  are advanced by the switch model.  The Sec-6 solvers run on it.

Determinism note: the round-based entry points used by the LBM cluster
driver are fully deterministic; the threaded point-to-point API is
deterministic in message *content* and in all the invariants the tests
check, while exact interleavings under contention may vary as on a real
cluster.
"""

from repro.net.switch import GigabitSwitch, RoundTiming
from repro.net.simmpi import SimCluster, SimComm

__all__ = ["GigabitSwitch", "RoundTiming", "SimCluster", "SimComm"]
