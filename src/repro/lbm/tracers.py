"""Go-with-the-flow tracer particles (Lowe & Succi [19]).

Sec 5 of the paper: "the pollution tracer particles begin to propagate
along the LBM lattice links according to transition probabilities
obtained from the LBM velocity distributions."

Each tracer sits on a lattice site; at every step it hops along link
``i`` with probability ``p_i = f_i / rho`` evaluated at its site.  The
rest link (probability ``f_0 / rho``) keeps it in place.  Because the
``f_i`` are non-negative and sum to ``rho``, this is a proper
categorical distribution; the ensemble mean drift equals the local
fluid velocity, so a cloud of tracers advects and disperses with the
flow — exactly the contaminant transport model of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice
from repro.lbm.macroscopic import density


class TracerCloud:
    """A set of tracer particles hopping on the lattice.

    Parameters
    ----------
    lattice:
        Velocity set.
    positions:
        Integer start sites, shape ``(n, D)``.
    shape:
        Grid shape; used for clipping / periodic wrap.
    periodic:
        If True particles wrap around; otherwise they clamp at the
        domain boundary (and effectively deposit there).
    rng:
        ``numpy.random.Generator`` or seed.
    """

    def __init__(self, lattice: Lattice, positions, shape, periodic: bool = False,
                 rng=0) -> None:
        self.lattice = lattice
        self.shape = np.asarray(shape, dtype=np.int64)
        self.positions = np.asarray(positions, dtype=np.int64).copy()
        if self.positions.ndim != 2 or self.positions.shape[1] != lattice.D:
            raise ValueError(f"positions must be (n, {lattice.D})")
        if ((self.positions < 0) | (self.positions >= self.shape)).any():
            raise ValueError("tracer positions outside grid")
        self.periodic = bool(periodic)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    def __len__(self) -> int:
        return self.positions.shape[0]

    def transition_probabilities(self, f: np.ndarray) -> np.ndarray:
        """Per-particle link probabilities ``p_i = f_i / rho``, shape (Q, n)."""
        idx = tuple(self.positions[:, a] for a in range(self.lattice.D))
        fi = f[(slice(None),) + idx].astype(np.float64)
        fi = np.clip(fi, 0.0, None)
        rho = fi.sum(axis=0)
        rho = np.where(rho > 0, rho, 1.0)
        return fi / rho

    def step(self, f: np.ndarray, substeps: int = 1) -> None:
        """Advance all tracers ``substeps`` hops using field ``f``."""
        for _ in range(substeps):
            p = self.transition_probabilities(f)
            cdf = np.cumsum(p, axis=0)
            # Guard against float round-off leaving cdf[-1] slightly < 1.
            cdf[-1] = 1.0
            r = self.rng.random(self.positions.shape[0])
            choice = (r[None, :] < cdf).argmax(axis=0)
            self.positions += self.lattice.c[choice]
            if self.periodic:
                self.positions %= self.shape
            else:
                np.clip(self.positions, 0, self.shape - 1, out=self.positions)

    def concentration(self) -> np.ndarray:
        """Histogram of tracer counts per lattice site (the contaminant
        density volume that Sec 5 volume-renders)."""
        conc = np.zeros(tuple(self.shape), dtype=np.float64)
        np.add.at(conc, tuple(self.positions[:, a] for a in range(self.lattice.D)), 1.0)
        return conc

    def center_of_mass(self) -> np.ndarray:
        """Mean tracer position (used to check mean drift == velocity)."""
        return self.positions.mean(axis=0)
