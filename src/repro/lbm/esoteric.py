"""Rotated (esoteric-twist-style) boundary closure for the AA kernel.

The swap-free AA kernel (:mod:`repro.lbm.aa`) leaves the single
distribution array in a *rotated* layout mid-pair: after the even
phase, location ``(p, y)`` holds the post-stream population
``F_opp(p)(y - c_p)`` of the step just completed.  Geier & Schönherr's
esoteric-twist observation is that boundary conditions need no second
array either — any post-stream condition can be imposed directly on
the rotated storage by writing through the layout bijection.

The bijection: the canonical post-stream value ``F_i(x)`` lives at
location ``(opp(i), x - c_i)`` when ``x`` is fluid.  At solid ``x``
the even phase stored a plain (un-reversed) copy, so the canonical
slot ``i`` of a solid site lives at ``(i, x + c_i)`` — equivalently,
location ``(opp(i), x - c_i)`` owns slot ``opp(i)`` there.  Hence the
single write rule used throughout this module:

    to impose ``T_i(x)`` for all ``i``, write into ``(opp(i), x - c_i)``
    the value ``T_i(x)`` when ``x`` is fluid and ``T_opp(i)(x)`` when
    ``x`` is solid.

Because the rule writes whole-Q layers through a per-site permutation,
sequential handler application on the rotated storage is bit-identical
to sequential application on the canonical array — which is exactly
the reference solver's ``post_stream``.  Writes whose target leaves
the interior land in the ghost shell; single-domain they are dead (the
even phase reads interior sites only), on a cluster they are precisely
the boundary-image slots the reverse exchange ships (solid sites'
slots survive the next odd scatter, fluid sites' are overwritten by
it — both by construction hold what the neighbour needs).

Supported handlers are the dispersion scenario's open boundaries:
:class:`~repro.lbm.boundaries.EquilibriumVelocityInlet` (imposes the
face equilibrium — a scatter-only write) and
:class:`~repro.lbm.boundaries.OutflowBoundary` (zero-gradient copy —
gather the source layer canonically, scatter it into the face layer).
Full-way bounce-back was already folded into the even phase's reversed
writes; the bounded-face zero-gradient closure of faces *without* a
handler is the crossing-slot fold in
:func:`repro.lbm.streaming.fold_ghosts_zero_gradient`.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.boundaries import EquilibriumVelocityInlet, OutflowBoundary

#: Boundary handler types the rotated applicator can fold into the
#: in-place AA sweeps.  Anything else makes the AA kernel ineligible.
SUPPORTED_BOUNDARY_TYPES = (EquilibriumVelocityInlet, OutflowBoundary)


def boundaries_supported(boundaries) -> bool:
    """Whether every handler can run through the rotated applicator."""
    return all(isinstance(b, SUPPORTED_BOUNDARY_TYPES) for b in boundaries)


class _LayerPlan:
    """Precomputed geometry for one handler's face layer.

    ``region`` addresses the layer in padded coordinates with explicit
    non-negative bounds (an int along the face axis, ``slice(1, n-1)``
    elsewhere) so shifting by a lattice velocity stays a plain integer
    adjustment.  ``lsolid``/``lfluid`` are the layer's obstacle masks,
    or ``None`` when the layer is solid-free and plain assignments
    suffice.
    """

    __slots__ = ("region", "lsolid", "lfluid")

    def __init__(self, solver, axis: int, layer_padded: int) -> None:
        D = solver.lattice.D
        region: list = [slice(1, solver.fg.shape[1 + a] - 1) for a in range(D)]
        region[axis] = layer_padded
        self.region = tuple(region)
        interior_idx: list = [slice(None)] * D
        interior_idx[axis] = layer_padded - 1
        lsolid = solver.solid[tuple(interior_idx)]
        if lsolid.any():
            self.lsolid = lsolid
            self.lfluid = ~lsolid
        else:
            self.lsolid = None
            self.lfluid = None


class RotatedBoundaryApplicator:
    """Applies a solver's boundary handlers on the rotated AA layout.

    Built lazily by :class:`repro.lbm.aa.AAStepKernel` the first time a
    bounded-domain even phase completes; reused every pair of steps.
    """

    def __init__(self, kernel) -> None:
        solver = kernel.solver
        if not boundaries_supported(solver.boundaries):
            unsupported = [type(b).__name__ for b in solver.boundaries
                           if not isinstance(b, SUPPORTED_BOUNDARY_TYPES)]
            raise TypeError(
                f"rotated AA boundary closure supports "
                f"{[t.__name__ for t in SUPPORTED_BOUNDARY_TYPES]}, "
                f"got {unsupported}")
        self.solver = solver
        lat = solver.lattice
        self.Q = lat.Q
        self.c = lat.c
        self.opp = [int(o) for o in lat.opp]
        self._plans = [self._build(b) for b in solver.boundaries]

    # -- geometry ------------------------------------------------------
    def _build(self, handler):
        axis = handler.axis
        n = self.solver.fg.shape[1 + axis]
        face = 1 if handler.side == "low" else n - 2
        if isinstance(handler, EquilibriumVelocityInlet):
            return ("inlet", handler, _LayerPlan(self.solver, axis, face), None)
        src = face + (1 if handler.side == "low" else -1)
        return ("outflow", handler,
                _LayerPlan(self.solver, axis, face),
                _LayerPlan(self.solver, axis, src))

    def _shifted(self, region, q: int) -> tuple:
        """``region`` translated by ``-c_q`` (padded coords stay valid)."""
        out = []
        for a, r in enumerate(region):
            d = int(self.c[q, a])
            if isinstance(r, slice):
                out.append(slice(r.start - d, r.stop - d))
            else:
                out.append(r - d)
        return tuple(out)

    # -- primitives ----------------------------------------------------
    def _gather(self, plan: _LayerPlan) -> np.ndarray:
        """Canonical post-stream values of a layer, read rotated.

        ``v_i(x) = storage(opp(i), x - c_i)`` for fluid ``x``; at solid
        sites the canonical slot sits mirrored, so a final opposite-slot
        swap restores the raw canonical values there too.
        """
        fg = self.solver.fg
        first = fg[(self.opp[0],) + self._shifted(plan.region, 0)]
        out = np.empty((self.Q,) + first.shape, dtype=fg.dtype)
        out[0] = first
        for q in range(1, self.Q):
            out[q] = fg[(self.opp[q],) + self._shifted(plan.region, q)]
        if plan.lsolid is not None:
            out[:, plan.lsolid] = out[self.opp][:, plan.lsolid]
        return out

    def _scatter(self, plan: _LayerPlan, values) -> None:
        """Impose canonical values ``values[i]`` on a layer, writing rotated.

        ``values`` indexes per slot (array rows or scalars).  The write
        rule (module docstring) sends ``T_i`` to ``(opp(i), x - c_i)``
        at fluid sites and ``T_opp(i)`` there at solid sites.
        """
        fg = self.solver.fg
        for q in range(self.Q):
            dst = fg[(self.opp[q],) + self._shifted(plan.region, q)]
            if plan.lsolid is None:
                dst[...] = values[q]
            else:
                np.copyto(dst, values[q], where=plan.lfluid)
                np.copyto(dst, values[self.opp[q]], where=plan.lsolid)

    # -- application ---------------------------------------------------
    def apply(self) -> None:
        """Run every handler, in declaration order, on the rotated storage."""
        dtype = self.solver.fg.dtype
        for kind, handler, dst_plan, src_plan in self._plans:
            if kind == "inlet":
                self._scatter(dst_plan, handler._feq.astype(dtype))
            else:
                self._scatter(dst_plan, self._gather(src_plan))
