"""BGK (single-relaxation-time) collision.

Between streaming steps, the Bhatnager-Gross-Krook model redistributes
momentum statistically, driving each site toward local equilibrium
while conserving mass and momentum (Sec 4.1)::

    f_i <- f_i - (f_i - f_i^eq) / tau

Kinematic viscosity relates to the relaxation time by
``nu = cs^2 (tau - 1/2)``.

An optional body force is applied with the simple forcing that adds
``w_i * 3 (c_i . F)`` to each distribution, shifting momentum by F per
step; this is first-order accurate and sufficient for the steady
channel flows used in validation and for buoyancy coupling in the
hybrid thermal model.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.equilibrium import equilibrium
from repro.lbm.lattice import Lattice
from repro.lbm.macroscopic import macroscopic


def viscosity_to_tau(nu: float, cs2: float = 1.0 / 3.0) -> float:
    """Relaxation time for a target kinematic viscosity (lattice units)."""
    return nu / cs2 + 0.5


def tau_to_viscosity(tau: float, cs2: float = 1.0 / 3.0) -> float:
    """Kinematic viscosity produced by relaxation time ``tau``."""
    return cs2 * (tau - 0.5)


class BGKCollision:
    """Single-relaxation-time collision operator.

    Parameters
    ----------
    lattice:
        Velocity set.
    tau:
        Relaxation time; must exceed 1/2 for positive viscosity.
    force:
        Optional constant body force per unit mass, length-D sequence.
    """

    def __init__(self, lattice: Lattice, tau: float, force=None) -> None:
        if tau <= 0.5:
            raise ValueError(f"tau must be > 0.5 for stability, got {tau}")
        self.lattice = lattice
        self.tau = float(tau)
        self.omega = 1.0 / self.tau
        self.force = None if force is None else np.asarray(force, dtype=np.float64)
        if self.force is not None and self.force.shape != (lattice.D,):
            raise ValueError(f"force must have shape ({lattice.D},)")
        self._feq_bufs: dict[tuple, np.ndarray] = {}
        self._force_add_cache: tuple[np.dtype, np.ndarray] | None = None
        self.counters = None  # optional KernelCounters, set by the owning solver

    def _force_add(self, dtype: np.dtype) -> np.ndarray:
        """Per-direction forcing increment ``w_i * 3 (c_i . F)``, cached.

        The vector only depends on the (fixed) force and the dtype, so
        it is computed once instead of rebuilding three temporaries per
        step.  The fused kernel reuses the same cached values, keeping
        both paths bit-identical.
        """
        cached = self._force_add_cache
        if cached is not None and cached[0] == dtype:
            return cached[1]
        c = self.lattice.c.astype(dtype)
        w = self.lattice.w.astype(dtype)
        cf = (c @ self.force.astype(dtype)) * (3.0 * w)
        add = cf.astype(dtype)
        self._force_add_cache = (np.dtype(dtype), add)
        return add

    @property
    def viscosity(self) -> float:
        """Kinematic viscosity in lattice units."""
        return tau_to_viscosity(self.tau, self.lattice.cs2)

    def __call__(self, f: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Collide in place.

        Parameters
        ----------
        f:
            Distributions, shape ``(Q,) + grid``; modified in place.
        mask:
            Optional boolean fluid mask (True = collide).  Solid sites
            keep their pre-collision distributions so that bounce-back
            can swap them afterwards.
        """
        lat = self.lattice
        rho, u = macroscopic(lat, f)
        # Keyed by shape so the split boundary/inner collide (several
        # distinct slab shapes per step) stays allocation-free too.
        key = (f.shape, f.dtype)
        buf = self._feq_bufs.get(key)
        if buf is None:
            buf = self._feq_bufs[key] = np.empty_like(f)
            if self.counters is not None:
                self.counters.alloc("collision.feq_buf")
        feq = equilibrium(lat, rho, u, out=buf)
        omega = f.dtype.type(self.omega)
        if mask is not None and mask.all():
            # All-fluid mask: the three full-field fancy-indexed copies
            # of the masked path would be pure overhead.
            mask = None
        if mask is None:
            f += omega * (feq - f)
        else:
            if self.counters is not None:
                self.counters.alloc("collision.masked_gather", 3)
            f[:, mask] += omega * (feq[:, mask] - f[:, mask])
        if self.force is not None:
            add = self._force_add(f.dtype).reshape((lat.Q,) + (1,) * (f.ndim - 1))
            if mask is None:
                f += add
            else:
                f[:, mask] += np.broadcast_to(add, f.shape)[:, mask]
        return f
