"""Multiple-Relaxation-Time (MRT) collision for D3Q19.

Sec 4.1 of the paper notes that the hybrid thermal LBM abandons BGK for
the more stable MRT collision model of d'Humieres et al. [8].  The MRT
operator transforms distributions to 19 moments, relaxes each moment
toward its equilibrium at its own rate, and transforms back::

    f <- f - M^-1 S (M f - m_eq)

The moment basis and equilibria follow d'Humieres, Ginzburg, Krafczyk,
Lallemand & Luo, "Multiple-relaxation-time lattice Boltzmann models in
three dimensions" (2002).  When every relaxation rate equals ``1/tau``
the operator reduces exactly to BGK with the same tau (tested).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import D3Q19, Lattice
from repro.lbm.macroscopic import density, momentum

#: Names of the 19 moments in basis order.
MOMENT_NAMES = (
    "rho", "e", "epsilon",
    "jx", "qx", "jy", "qy", "jz", "qz",
    "3pxx", "3pixx", "pww", "piww",
    "pxy", "pyz", "pxz",
    "mx", "my", "mz",
)

#: Indices of the conserved moments (density and momentum).
CONSERVED = (0, 3, 5, 7)


def mrt_matrix(lattice: Lattice = D3Q19) -> np.ndarray:
    """The 19x19 moment transform matrix ``M`` (integer entries).

    Rows are the Gram-Schmidt polynomial basis of d'Humieres et al.
    evaluated on the link velocities.
    """
    if lattice.name != "D3Q19":
        raise ValueError("MRT basis implemented for D3Q19 only")
    c = lattice.c.astype(np.float64)
    cx, cy, cz = c[:, 0], c[:, 1], c[:, 2]
    c2 = cx * cx + cy * cy + cz * cz
    rows = [
        np.ones_like(cx),                       # rho
        19.0 * c2 - 30.0,                       # e (energy)
        (21.0 * c2 * c2 - 53.0 * c2 + 24.0) / 2.0,  # epsilon (energy^2)
        cx,                                     # jx
        (5.0 * c2 - 9.0) * cx,                  # qx (energy flux)
        cy,                                     # jy
        (5.0 * c2 - 9.0) * cy,                  # qy
        cz,                                     # jz
        (5.0 * c2 - 9.0) * cz,                  # qz
        3.0 * cx * cx - c2,                     # 3 p_xx
        (3.0 * c2 - 5.0) * (3.0 * cx * cx - c2),  # 3 pi_xx
        cy * cy - cz * cz,                      # p_ww
        (3.0 * c2 - 5.0) * (cy * cy - cz * cz),   # pi_ww
        cx * cy,                                # p_xy
        cy * cz,                                # p_yz
        cx * cz,                                # p_xz
        (cy * cy - cz * cz) * cx,               # m_x
        (cz * cz - cx * cx) * cy,               # m_y
        (cx * cx - cy * cy) * cz,               # m_z
    ]
    return np.array(rows)


def default_rates(tau: float) -> np.ndarray:
    """Standard relaxation-rate vector for viscosity-setting ``tau``.

    Shear-viscosity moments (p_xx, p_ww, p_xy, p_yz, p_xz) relax at
    ``1/tau``; conserved moments at 0; the remaining kinetic moments use
    the stability-optimised rates of d'Humieres et al. (2002).
    """
    s_nu = 1.0 / tau
    s = np.zeros(19)
    s[1] = 1.19        # e
    s[2] = 1.4         # epsilon
    s[4] = s[6] = s[8] = 1.2   # q
    s[9] = s[11] = s[13] = s[14] = s[15] = s_nu
    s[10] = s[12] = 1.4        # pi
    s[16] = s[17] = s[18] = 1.98
    return s


def moment_equilibrium(lattice: Lattice, rho: np.ndarray, j: np.ndarray,
                       rho0: float = 1.0) -> np.ndarray:
    """Equilibrium moments ``m_eq`` (shape ``(19,) + grid``).

    Uses the constants (w_e = 3, w_ej = -11/2, w_xx = -1/2) that make
    ``m_eq == M f_eq^BGK`` with ``j = rho u`` and the ``1/rho0``
    linearisation replaced by ``1/rho`` (so the identity is exact; see
    tests).  ``rho0`` is retained for the incompressible variant.
    """
    jx, jy, jz = j[0], j[1], j[2]
    j2 = jx * jx + jy * jy + jz * jz
    inv = 1.0 / np.where(rho > 0, rho, rho.dtype.type(rho0))
    meq = np.zeros((19,) + rho.shape, dtype=rho.dtype)
    meq[0] = rho
    meq[1] = -11.0 * rho + 19.0 * inv * j2
    meq[2] = 3.0 * rho - 5.5 * inv * j2
    meq[3] = jx
    meq[4] = (-2.0 / 3.0) * jx
    meq[5] = jy
    meq[6] = (-2.0 / 3.0) * jy
    meq[7] = jz
    meq[8] = (-2.0 / 3.0) * jz
    meq[9] = inv * (2.0 * jx * jx - (jy * jy + jz * jz))
    meq[10] = -0.5 * meq[9]
    meq[11] = inv * (jy * jy - jz * jz)
    meq[12] = -0.5 * meq[11]
    meq[13] = inv * (jx * jy)
    meq[14] = inv * (jy * jz)
    meq[15] = inv * (jx * jz)
    # m_x, m_y, m_z equilibria are zero.
    return meq


class MRTCollision:
    """MRT collision operator for D3Q19.

    Parameters
    ----------
    lattice:
        Must be D3Q19.
    tau:
        Relaxation time controlling shear viscosity.
    rates:
        Optional explicit 19-vector of relaxation rates ``s``; overrides
        the default stability-optimised set.
    energy_source:
        Optional callable ``grid -> array`` returning an energy source
        term added to the ``e`` moment after relaxation; this is the
        coupling hook the hybrid thermal LBM uses ("coupled to the MRT
        LBM via an energy term", Sec 4.1).
    """

    def __init__(self, lattice: Lattice, tau: float,
                 rates: np.ndarray | None = None,
                 energy_source=None) -> None:
        if lattice.name != "D3Q19":
            raise ValueError("MRTCollision supports D3Q19 only")
        if tau <= 0.5:
            raise ValueError(f"tau must be > 0.5, got {tau}")
        self.lattice = lattice
        self.tau = float(tau)
        self.M = mrt_matrix(lattice)
        self.Minv = np.linalg.inv(self.M)
        s = default_rates(tau) if rates is None else np.asarray(rates, dtype=np.float64)
        if s.shape != (19,):
            raise ValueError("rates must be a 19-vector")
        if np.abs(s[list(CONSERVED)]).max() > 0:
            raise ValueError("conserved moments must have zero relaxation rate")
        self.s = s
        self.energy_source = energy_source
        # Precompute M^-1 diag(s) M for a single matmul per step.
        self._relax = self.Minv @ np.diag(self.s) @ self.M

    @property
    def viscosity(self) -> float:
        """Shear viscosity set by the p_xx/p_xy relaxation rate."""
        return (1.0 / 3.0) * (self.tau - 0.5)

    def __call__(self, f: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Collide in place (same contract as :class:`BGKCollision`)."""
        lat = self.lattice
        dtype = f.dtype
        grid = f.shape[1:]
        fw = f.reshape(19, -1)
        rho = density(f).reshape(-1)
        j = momentum(lat, f).reshape(3, -1)
        meq = moment_equilibrium(lat, rho, j)
        # f <- f - M^-1 S (M f - meq)
        m = self.M.astype(dtype) @ fw
        dm = m - meq
        delta = (self.Minv.astype(dtype) @ (self.s.astype(dtype)[:, None] * dm))
        if mask is None:
            fw -= delta
        else:
            flat = mask.reshape(-1)
            fw[:, flat] -= delta[:, flat]
        if self.energy_source is not None:
            src = np.asarray(self.energy_source(grid), dtype=dtype).reshape(-1)
            # Inject into the energy moment: f += M^-1 e_1 src
            col = self.Minv[:, 1].astype(dtype)[:, None]
            if mask is None:
                fw += col * src[None, :]
            else:
                flat = mask.reshape(-1)
                fw[:, flat] += col * src[None, flat]
        return f
