"""Fused collide–stream hot path over preallocated workspace buffers.

The paper's core engineering message (Secs 4.2–4.3) is that LBM
throughput comes from *fusing* the per-step passes and keeping all
state resident: distributions packed into textures, rendering passes
merged, communication overlapped with the inner-cell work.  The
reference numpy solver historically did the opposite — fresh
``rho``/``u``/``feq`` temporaries per step, three full-field
fancy-indexed copies in the masked collision, and 19 slice tuples
rebuilt per streaming call.

:class:`FusedStepKernel` performs macroscopic → equilibrium → BGK
relax → pull-stream in a single sweep per direction over preallocated
scratch buffers.  Per time step it allocates nothing (after warm-up)
and touches each distribution array once, instead of once for
collision and once for streaming.

Bit-exactness contract
----------------------
The fused pipeline is **bit-identical** to the phase-split pipeline
(``collide`` → ``fill_ghosts`` → ``stream`` → ``post_stream``).  The
distributed cluster drivers interleave the halo exchange between the
phase-split collide and stream, and the equality tests in
``tests/test_cluster_numeric.py`` compare them against
``LBMSolver.step()`` with ``np.array_equal`` — so every floating-point
operation here replicates the reference op sequence exactly:

* moments use the same ``sum``/``einsum`` reductions as
  :func:`repro.lbm.macroscopic.macroscopic` (identical per-site
  accumulation order);
* the equilibrium expression applies the binary operations of
  :func:`repro.lbm.equilibrium.equilibrium` in the same order (only
  commuted where IEEE-754 guarantees identical rounding);
* the relaxation computes ``f + omega * (feq - f)`` exactly as the
  unfused ``f += omega * (feq - f)``;
* ghost sites are *relaxed locally* instead of copied post-collision:
  a ghost cell holds a bit-exact copy of its source interior cell, and
  BGK relaxation is pointwise-deterministic, so relaxing the copy
  yields the same bits as copying the relaxed value;
* solid sites keep their pre-collision distributions by restoring them
  from the old array after the full-field relax (the restore is an
  exact copy, unlike folding the identity through the relaxation).

Eligibility: BGK collision only (MRT and the Smagorinsky operator keep
the phase-split path) and no boundary handler that overrides
``pre_stream`` (the Bouzidi snapshot needs the intermediate
post-collision field, which fusion never materialises).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice
from repro.lbm.macroscopic import sum_over_links
from repro.lbm.streaming import interior, pull_slice_table


def build_solid_padded(solver, pshape) -> np.ndarray:
    """Solid mask on the padded grid, ghost shell included.

    Ghost cells are marked solid exactly when their source interior
    cell is solid, mirroring the solver's ghost fill (periodic wrap
    or zero-gradient edge copy, same axis order), so kernels that
    relax the full padded field and restore solids afterwards keep
    pre-collision values on every solid *image* too.  Shared by the
    fused and AA kernels.
    """
    D = len(pshape)
    sp = np.zeros(pshape, dtype=bool)
    sp[tuple(slice(1, -1) for _ in range(D))] = solver.solid
    for ax in range(D):
        n = sp.shape[ax]
        lo = [slice(None)] * D
        src = [slice(None)] * D
        if solver.periodic:
            lo[ax], src[ax] = 0, n - 2
            sp[tuple(lo)] = sp[tuple(src)]
            lo[ax], src[ax] = n - 1, 1
            sp[tuple(lo)] = sp[tuple(src)]
        else:
            lo[ax], src[ax] = 0, 1
            sp[tuple(lo)] = sp[tuple(src)]
            lo[ax], src[ax] = n - 1, n - 2
            sp[tuple(lo)] = sp[tuple(src)]
    return sp


class FusedStepKernel:
    """Single-pass collide+stream kernel bound to one ``LBMSolver``.

    The kernel owns a per-solver workspace (``rho``, ``j``, ``u`` and
    per-direction scratch planes, all on the *padded* grid) plus the
    precomputed pull-streaming slice table, so stepping performs no
    array allocation.

    Parameters
    ----------
    solver:
        The owning :class:`~repro.lbm.solver.LBMSolver`.  Must use a
        plain :class:`~repro.lbm.collision.BGKCollision` operator; see
        :meth:`eligible`.
    """

    def __init__(self, solver) -> None:
        from repro.lbm.collision import BGKCollision
        if type(solver.collision) is not BGKCollision:
            raise TypeError("FusedStepKernel requires a plain BGKCollision")
        lat: Lattice = solver.lattice
        dtype = solver.dtype
        pshape = solver.fg.shape[1:]
        self.solver = solver
        self.lattice = lat
        self.omega = dtype.type(solver.collision.omega)
        # dtype'd lattice constants (same casts as the unfused kernels).
        self._c = lat.c.astype(dtype)
        self._w = lat.w.astype(dtype)
        self._one = dtype.type(1.0)
        self._zero = dtype.type(0.0)
        self._inv_cs2 = dtype.type(1.0 / lat.cs2)
        self._half_inv_cs4 = dtype.type(0.5 / lat.cs2 ** 2)
        self._half_inv_cs2 = dtype.type(0.5 / lat.cs2)
        # Preallocated workspace, all on the padded grid.
        self.rho = np.empty(pshape, dtype)
        self.j = np.empty((lat.D,) + pshape, dtype)
        self.u = np.empty((lat.D,) + pshape, dtype)
        self.usq = np.empty(pshape, dtype)
        self._cu = np.empty(pshape, dtype)
        self._expr = np.empty(pshape, dtype)
        self._wr = np.empty(pshape, dtype)
        self._bool = np.empty(pshape, bool)
        # Precomputed streaming slices and solid image on the padded grid.
        self._dst = interior(lat.D)
        self._src = pull_slice_table(lat, pshape)
        self.solid_padded = (self._build_solid_padded(solver, pshape)
                             if solver.solid.any() else None)
        if solver.counters is not None:
            n_bufs = 8 + (1 if self.solid_padded is not None else 0)
            solver.counters.alloc("fused.workspace", n_bufs)

    # ------------------------------------------------------------------
    @staticmethod
    def eligible(solver) -> bool:
        """True if ``solver`` can run the fused pipeline.

        Requires a plain BGK collision operator and boundary handlers
        without a ``pre_stream`` override (those need the intermediate
        post-collision field that fusion skips).
        """
        from repro.lbm.boundaries import Boundary
        from repro.lbm.collision import BGKCollision
        if type(solver.collision) is not BGKCollision:
            return False
        return all(type(b).pre_stream is Boundary.pre_stream
                   for b in solver.boundaries)

    @staticmethod
    def _build_solid_padded(solver, pshape) -> np.ndarray:
        """See :func:`build_solid_padded` (kept as a method for callers)."""
        return build_solid_padded(solver, pshape)

    # ------------------------------------------------------------------
    def _moments(self) -> None:
        """Density and velocity on the padded grid, allocation-free.

        Replicates :func:`~repro.lbm.macroscopic.macroscopic` bit-for-
        bit: same axis-0 reduction for ``rho``, same einsum for the
        momentum, same guarded division semantics for ``u``.
        """
        fg = self.solver.fg
        rho, j, u = self.rho, self.j, self.u
        usq, wr, bl = self.usq, self._wr, self._bool
        sum_over_links(fg, out=rho)
        np.einsum("qa,q...->a...", self._c, fg, out=j)
        np.greater(rho, 0, out=bl)
        if bl.all():
            np.divide(j, rho, out=u)
        else:
            # safe = where(rho > 0, rho, 1); u = j / safe; u[rho <= 0] = 0
            # (masked writes via copyto-where: the boolean fancy-indexed
            # spellings wr[bl] = ... / u[:, bl] = 0 allocate an index
            # list per call, which on a solid-heavy domain means fresh
            # temporaries every step).
            np.copyto(wr, rho)
            np.logical_not(bl, out=bl)
            np.copyto(wr, self._one, where=bl)
            np.divide(j, wr, out=u)
            np.less_equal(rho, 0, out=bl)
            np.copyto(u, self._zero, where=bl)
        np.einsum("a...,a...->...", u, u, out=usq)
        usq *= self._half_inv_cs2   # the - 1.5 u.u term, shared by all i

    def relax_stream(self) -> None:
        """One fused pass: equilibrium, BGK relax, pull-stream, swap.

        ``fill_ghosts`` must already have run (ghosts are relaxed in
        place of receiving post-collision copies).  Direction by
        direction the relaxed padded plane is materialised once in a
        scratch buffer and immediately streamed into the interior of
        the back buffer, so each ``f_i`` is touched exactly once.
        """
        s = self.solver
        self._moments()
        fg, out = s.fg, s._fg_next
        collision = s.collision
        add = (collision._force_add(fg.dtype)
               if collision.force is not None else None)
        cu, expr, wr = self._cu, self._expr, self._wr
        rho, usq = self.rho, self.usq
        for i in range(self.lattice.Q):
            # feq_i = (w_i rho) * (1 + 3 cu + (4.5 cu) cu - 1.5 usq),
            # evaluated in the reference op order of equilibrium().
            np.einsum("a,a...->...", self._c[i], self.u, out=cu)
            np.multiply(cu, self._half_inv_cs4, out=expr)
            expr *= cu
            cu *= self._inv_cs2
            cu += self._one
            expr += cu
            expr -= usq
            np.multiply(rho, self._w[i], out=wr)
            np.multiply(wr, expr, out=expr)
            # f + omega * (feq - f), the exact unfused relaxation.
            fgi = fg[i]
            np.subtract(expr, fgi, out=expr)
            expr *= self.omega
            expr += fgi
            if add is not None:
                expr += add[i]
            if self.solid_padded is not None:
                # Solid sites (and their ghost images) keep their
                # pre-collision distributions for bounce-back.
                np.copyto(expr, fgi, where=self.solid_padded)
            out[(i,) + self._dst] = expr[self._src[i]]
        s.fg, s._fg_next = out, fg

    def step_once(self) -> None:
        """Advance the bound solver one time step through the fused path."""
        s = self.solver
        rec = s.counters
        if rec is not None and rec.enabled:
            rec.add("kernel.fused", 0.0)
            with rec.phase("fused.ghosts"):
                s.fill_ghosts()
            with rec.phase("fused.relax_stream"):
                self.relax_stream()
            with rec.phase("fused.post_stream"):
                s.post_stream()
        else:
            s.fill_ghosts()
            self.relax_stream()
            s.post_stream()
