"""Lattice velocity sets (D3Q19, D2Q9).

The paper uses the D3Q19 lattice (Fig 4): one rest velocity, 6 axial
nearest-neighbour links and 12 second-nearest minor-diagonal links.
Each link ``i`` carries a velocity distribution ``f_i``.

The ordering chosen here groups the 18 moving directions so that the
axial links come first (indices 1..6) followed by the diagonal links
(7..18); this matches the cluster halo-exchange logic which treats
axial-face traffic (5 distributions per face) and diagonal-edge
traffic (1 distribution per edge) differently, exactly as Sec 4.3 of
the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Lattice:
    """An LBM velocity set.

    Attributes
    ----------
    name:
        Conventional name, e.g. ``"D3Q19"``.
    c:
        Integer link velocities, shape ``(Q, D)``.
    w:
        Quadrature weights, shape ``(Q,)``; sums to 1.
    cs2:
        Squared lattice speed of sound (1/3 for the standard sets).
    """

    name: str
    c: np.ndarray
    w: np.ndarray
    cs2: float = 1.0 / 3.0
    opp: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        c = np.asarray(self.c, dtype=np.int64)
        w = np.asarray(self.w, dtype=np.float64)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "w", w)
        object.__setattr__(self, "opp", self._compute_opposites())
        self.validate()

    # ------------------------------------------------------------------
    @property
    def Q(self) -> int:
        """Number of discrete velocities."""
        return self.c.shape[0]

    @property
    def D(self) -> int:
        """Spatial dimension."""
        return self.c.shape[1]

    def _compute_opposites(self) -> np.ndarray:
        opp = np.full(self.c.shape[0], -1, dtype=np.int64)
        for i, ci in enumerate(self.c):
            for j, cj in enumerate(self.c):
                if np.array_equal(ci, -cj):
                    opp[i] = j
                    break
        return opp

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the isotropy constraints every LBM velocity set must obey.

        Raises ``ValueError`` if the weights/velocities are inconsistent;
        these identities are what make the lattice recover Navier-Stokes
        in the hydrodynamic limit (Sec 4.1).
        """
        w, c, cs2 = self.w, self.c.astype(np.float64), self.cs2
        if abs(w.sum() - 1.0) > 1e-12:
            raise ValueError(f"{self.name}: weights sum to {w.sum()}, not 1")
        # First moment must vanish.
        m1 = np.einsum("q,qa->a", w, c)
        if np.abs(m1).max() > 1e-12:
            raise ValueError(f"{self.name}: first moment nonzero: {m1}")
        # Second moment must equal cs2 * identity.
        m2 = np.einsum("q,qa,qb->ab", w, c, c)
        if np.abs(m2 - cs2 * np.eye(self.D)).max() > 1e-12:
            raise ValueError(f"{self.name}: second moment anisotropic:\n{m2}")
        if (self.opp < 0).any():
            raise ValueError(f"{self.name}: velocity set not symmetric")

    # ------------------------------------------------------------------
    def links_with_positive(self, axis: int) -> np.ndarray:
        """Indices of links whose velocity component along ``axis`` is +1.

        For D3Q19 and any axis this returns 5 links: this is the origin of
        the ``5 N^2`` face-message size in Sec 4.3.
        """
        return np.nonzero(self.c[:, axis] > 0)[0]

    def links_with_negative(self, axis: int) -> np.ndarray:
        """Indices of links whose velocity component along ``axis`` is -1."""
        return np.nonzero(self.c[:, axis] < 0)[0]

    def edge_links(self, axis_a: int, sign_a: int, axis_b: int, sign_b: int) -> np.ndarray:
        """Indices of diagonal links pointing into the (axis_a, axis_b) edge.

        For D3Q19 there is exactly one such link per signed edge: this is
        the ``N``-sized diagonal message of Sec 4.3.
        """
        sel = (self.c[:, axis_a] == sign_a) & (self.c[:, axis_b] == sign_b)
        other = [a for a in range(self.D) if a not in (axis_a, axis_b)]
        for a in other:
            sel &= self.c[:, a] == 0
        return np.nonzero(sel)[0]


def _make_d3q19() -> Lattice:
    c = [
        (0, 0, 0),
        # 6 axial nearest-neighbour links
        (1, 0, 0), (-1, 0, 0),
        (0, 1, 0), (0, -1, 0),
        (0, 0, 1), (0, 0, -1),
        # 12 minor-diagonal second-nearest links
        (1, 1, 0), (-1, -1, 0), (1, -1, 0), (-1, 1, 0),
        (1, 0, 1), (-1, 0, -1), (1, 0, -1), (-1, 0, 1),
        (0, 1, 1), (0, -1, -1), (0, 1, -1), (0, -1, 1),
    ]
    w = [1.0 / 3.0] + [1.0 / 18.0] * 6 + [1.0 / 36.0] * 12
    return Lattice("D3Q19", np.array(c), np.array(w))


def _make_d2q9() -> Lattice:
    c = [
        (0, 0),
        (1, 0), (-1, 0), (0, 1), (0, -1),
        (1, 1), (-1, -1), (1, -1), (-1, 1),
    ]
    w = [4.0 / 9.0] + [1.0 / 9.0] * 4 + [1.0 / 36.0] * 4
    return Lattice("D2Q9", np.array(c), np.array(w))


#: The lattice the paper's flow model uses (Fig 4).
D3Q19 = _make_d3q19()

#: Two-dimensional set used by tests and the Sec-6 solver examples.
D2Q9 = _make_d2q9()
