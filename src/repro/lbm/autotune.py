"""Measured per-domain kernel autotuning for ``kernel="auto"``.

The solid-fraction heuristic the solver shipped with picks a *plausible*
kernel, but the GPGPU tuning literature (Habich et al., arXiv:1112.0850;
Calore et al., arXiv:1703.00185) is unambiguous that the best
kernel/layout choice is machine- and sub-domain-dependent: the
crossover between dense, sparse-compacted and AA-pattern streaming
moves with obstacle geometry, grid shape and cache sizes.  This module
replaces guessing with a short micro-benchmark.

``choose_kernel(solver)`` probes every *eligible* candidate kernel
(``aa``, ``fused``, ``sparse``, ``split``) for a few warm-up plus timed
steps on (a crop of) the solver's actual domain — same dtype, same
solid mask, same relaxation time — and picks the fastest.  Decisions
are cached per ``(shape, dtype, solid-fraction bucket, candidate set,
periodicity, phase-driven)`` so a cluster with many same-shaped ranks
(or repeated runs in one process) probes once per distinct
configuration, not once per rank.

Determinism: micro-benchmarks jitter, so the raw argmax would flap on
near ties.  The winner is instead the *first* kernel in a fixed
priority order (:data:`PRIORITY` — most memory-frugal first) whose
measured rate is within :data:`MARGIN` of the best; only a decisive
(>8%) win can displace an earlier-priority kernel.  All candidates are
bit-identical, so a flapped choice can never change physics — only the
wall clock.

Probe cost is bounded by :data:`PROBE_MAX_CELLS`: over-size domains are
probed on a corner crop (halving the longest axis until under the
bound), which preserves the solid-geometry character that drives the
dense/sparse crossover while keeping the probe a few percent of a
100-step run (recorded as ``autotune_overhead`` in the benchmarks).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

#: Probe crops the domain (halving the longest axis) until at or under
#: this many cells.
PROBE_MAX_CELLS = 48000
#: Un-timed steps per candidate (kernel construction, cache warm-up).
WARM_STEPS = 2
#: Timed steps per candidate (even so the AA pair cadence is complete).
TIMED_STEPS = 2
#: Timing repetitions per candidate; the best (minimum) time is kept,
#: so a scheduler preemption during one repetition cannot make a fast
#: kernel look slow (micro-benchmarks must be robust to noise, not
#: averaged into it).
TIMING_REPS = 3
#: A candidate must beat the best rate times this to displace an
#: earlier-priority kernel.
MARGIN = 0.92
#: Tie-break order: prefer the smaller-working-set kernel.
PRIORITY = ("aa", "fused", "sparse", "split")
#: Sparse compaction only pays once a real fraction of sites is solid;
#: below this the candidate is not even probed.
SPARSE_PROBE_MIN_FRACTION = 0.25


@dataclass(frozen=True)
class KernelChoice:
    """A resolved autotune decision."""
    kernel: str
    reason: str
    #: Measured MLUPS per candidate (empty when no probe was needed).
    rates: dict[str, float] = field(default_factory=dict)
    probed: bool = False

    def cost_density(self) -> float | None:
        """Measured seconds-per-cell of the chosen kernel, or None.

        This is the probe-rate signal the weighted decomposition
        consumes (:func:`repro.core.balance.rates_cost_field`): a rank
        whose chosen kernel probed at ``r`` MLUPS costs ``1 / (r *
        1e6)`` seconds per lattice cell, so faster (sparse) ranks
        attract proportionally more cells when cuts are sized.
        """
        rate = self.rates.get(self.kernel)
        if not rate or rate <= 0.0:
            return None
        return 1.0 / (float(rate) * 1e6)


_CACHE: dict[tuple, KernelChoice] = {}


def clear_autotune_cache() -> None:
    """Drop all cached decisions (tests / benchmark isolation)."""
    _CACHE.clear()


def still_eligible(solver, kind: str) -> bool:
    """Whether a previously chosen kernel can still run on ``solver``.

    Re-checked every step because eligibility can drift after the probe
    (e.g. a boundary handler appended post-construction).
    """
    from repro.lbm.aa import AAStepKernel
    from repro.lbm.fused import FusedStepKernel
    from repro.lbm.sparse import SparseStepKernel
    if kind == "split":
        return True
    if kind == "fused":
        return (solver.fused and not solver.phase_driven
                and FusedStepKernel.eligible(solver))
    if kind == "sparse":
        return SparseStepKernel.eligible(solver)
    if kind == "aa":
        return (not solver.phase_driven and AAStepKernel.eligible(solver))
    return False


def candidate_kernels(solver) -> tuple[str, ...]:
    """Eligible probe candidates for ``solver``, in priority order.

    ``split`` is always a candidate (it is every kernel's fallback).
    Whole-step-only kernels (``fused``, ``aa``) are excluded when the
    solver is phase-driven by a cluster driver, and ``fused=False``
    keeps its historic meaning as an escape hatch to phase-split.
    ``sparse`` is considered only once the solid fraction could
    plausibly pay for compaction (:data:`SPARSE_PROBE_MIN_FRACTION`).
    """
    from repro.lbm.sparse import SparseStepKernel
    cands = [k for k in ("aa", "fused") if still_eligible(solver, k)]
    if (SparseStepKernel.eligible(solver)
            and solver.solid_fraction >= SPARSE_PROBE_MIN_FRACTION):
        cands.append("sparse")
    cands.append("split")
    return tuple(cands)


def _probe_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    """Crop ``shape`` (halving the longest axis) to the probe budget."""
    dims = list(shape)
    while int(np.prod(dims)) > PROBE_MAX_CELLS:
        ax = int(np.argmax(dims))
        if dims[ax] <= 2:
            break
        dims[ax] = max(2, dims[ax] // 2)
    return tuple(dims)


def _cache_key(solver, cands: tuple[str, ...]) -> tuple:
    bucket = int(round(solver.solid_fraction * 20))
    return (solver.shape, str(solver.dtype), bucket, cands,
            solver.periodic, solver.phase_driven)


def _probe_rates(solver, cands: tuple[str, ...]) -> dict[str, float]:
    """Measured MLUPS per candidate on a crop of the solver's domain."""
    from repro.lbm.solver import LBMSolver
    pshape = _probe_shape(solver.shape)
    crop = tuple(slice(0, n) for n in pshape)
    solid = np.ascontiguousarray(solver.solid[crop])
    cells = float(np.prod(pshape))
    rates: dict[str, float] = {}
    for cand in cands:
        probe = LBMSolver(pshape, tau=solver.collision.tau, solid=solid,
                          periodic=True, dtype=solver.dtype, kernel=cand,
                          sparse_threshold=solver.sparse_threshold,
                          autotune="heuristic")
        probe.counters.enabled = False
        probe.step(WARM_STEPS)
        dt = float("inf")
        for _ in range(TIMING_REPS):
            t0 = time.perf_counter()
            probe.step(TIMED_STEPS)
            dt = min(dt, time.perf_counter() - t0)
        rates[cand] = cells * TIMED_STEPS / max(dt, 1e-9) / 1e6
    return rates


def choose_kernel(solver) -> KernelChoice:
    """Resolve the measured kernel choice for ``solver`` (cached).

    Single-candidate configurations (e.g. non-BGK collision, or a
    phase-driven rank whose solid fraction rules sparse out) skip the
    probe entirely — the autotuner never costs anything when there is
    no decision to make.
    """
    cands = candidate_kernels(solver)
    rec = solver.counters
    live = rec is not None and rec.enabled
    if len(cands) == 1:
        return KernelChoice(cands[0],
                            f"measured: only candidate is {cands[0]!r}")
    key = _cache_key(solver, cands)
    cached = _CACHE.get(key)
    if cached is not None:
        if live:
            rec.add("autotune.cached", 0.0)
        return cached
    if live:
        with rec.phase("autotune.probe"):
            rates = _probe_rates(solver, cands)
    else:
        rates = _probe_rates(solver, cands)
    best = max(rates.values())
    winner = next(k for k in PRIORITY
                  if k in rates and rates[k] >= MARGIN * best)
    detail = ", ".join(f"{k}={rates[k]:.1f}" for k in rates)
    choice = KernelChoice(
        winner, f"measured: probe on {_probe_shape(solver.shape)} "
                f"picked {winner!r} (MLUPS: {detail})",
        rates=rates, probed=True)
    _CACHE[key] = choice
    return choice
